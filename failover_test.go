package bg3

import (
	"fmt"
	"testing"
	"time"
)

// TestDBFailover exercises the public failover surface: a replicated DB
// promotes a new leader in place, every acknowledged write survives, new
// writes land under the bumped epoch, attached replicas re-bootstrap onto
// the new leader, and the epoch/failover counters surface in Stats.
func TestDBFailover(t *testing.T) {
	db := openDB(t, &Options{Replicated: true, ReplicaPollInterval: time.Millisecond})
	for i := 0; i < 30; i++ {
		if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(100 + i), Type: ETypeFollow,
			Props: Properties{{Name: "n", Value: []byte(fmt.Sprint(i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Failover(); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := db.Epoch(); got != 1 {
		t.Fatalf("Epoch = %d, want 1", got)
	}
	if got := db.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}

	for i := 0; i < 30; i++ {
		e, ok, err := db.GetEdge(1, ETypeFollow, VertexID(100+i))
		if err != nil || !ok {
			t.Fatalf("edge %d after failover: ok=%v err=%v", i, ok, err)
		}
		if v, _ := e.Props.Get("n"); string(v) != fmt.Sprint(i) {
			t.Fatalf("edge %d = %q", i, v)
		}
	}
	if err := db.AddEdge(Edge{Src: 2, Dst: 200, Type: ETypeFollow}); err != nil {
		t.Fatalf("write on promoted leader: %v", err)
	}

	// The replica re-bootstrapped during Failover; one sync later it serves
	// the post-failover write.
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rep.GetEdge(2, ETypeFollow, 200); err != nil || !ok {
		t.Fatalf("post-failover write on replica: ok=%v err=%v", ok, err)
	}

	st := db.Stats()
	if st.Replication.Epoch != 1 || st.Replication.Failovers != 1 {
		t.Fatalf("Stats replication = %+v", st.Replication)
	}

	// A second failover stacks: epochs are monotonic across promotions.
	if err := db.Failover(); err != nil {
		t.Fatalf("second failover: %v", err)
	}
	if got := db.Epoch(); got != 2 {
		t.Fatalf("Epoch after second failover = %d, want 2", got)
	}
	if _, ok, _ := db.GetEdge(2, ETypeFollow, 200); !ok {
		t.Fatal("write lost across second failover")
	}
}

// TestDBFailoverNotReplicated pins the guard: failover needs the WAL
// pipeline.
func TestDBFailoverNotReplicated(t *testing.T) {
	db := openDB(t, nil)
	if err := db.Failover(); err != ErrNotReplicated {
		t.Fatalf("err = %v, want ErrNotReplicated", err)
	}
	if db.Epoch() != 0 || db.Failovers() != 0 {
		t.Fatal("non-replicated DB reports failover state")
	}
}

// TestClusterDBFailover promotes one shard's leader through the public
// cluster API: the shard keeps serving routed reads and writes, the other
// shards are untouched, and the counters advance.
func TestClusterDBFailover(t *testing.T) {
	c, err := OpenCluster(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	for i := 1; i <= 40; i++ {
		if err := c.AddEdge(Edge{Src: VertexID(i), Dst: 1, Type: ETypeFollow,
			Props: Properties{{Name: "n", Value: []byte{byte(i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Failover(0); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if c.ShardEpoch(0) != 1 {
		t.Fatalf("ShardEpoch(0) = %d, want 1", c.ShardEpoch(0))
	}
	for i := 1; i <= 40; i++ {
		e, ok, err := c.GetEdge(VertexID(i), ETypeFollow, 1)
		if err != nil || !ok {
			t.Fatalf("edge %d after shard failover: ok=%v err=%v", i, ok, err)
		}
		if v, _ := e.Props.Get("n"); len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("edge %d = %x", i, v)
		}
	}
	for i := 41; i <= 60; i++ {
		if err := c.AddEdge(Edge{Src: VertexID(i), Dst: 2, Type: ETypeFollow}); err != nil {
			t.Fatalf("post-failover write %d: %v", i, err)
		}
	}
}
