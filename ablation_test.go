package bg3_test

// Ablation benchmarks for the design choices DESIGN.md §3 calls out:
// forest splitting on/off, GC policy, group-commit window, and replica
// cache size. Each reports the quantity the choice trades off.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	bg3 "bg3"
	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/forest"
	"bg3/internal/gc"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// BenchmarkAblationForestSplit compares hot-owner write throughput with the
// forest enabled vs a single shared tree, under contended concurrent
// writers (the §3.2.1 design choice).
func BenchmarkAblationForestSplit(b *testing.B) {
	for _, mode := range []struct {
		name      string
		threshold int
	}{{"single-tree", 0}, {"forest", 64}} {
		b.Run(mode.name, func(b *testing.B) {
			st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
			m := bwtree.NewMapping(0, false)
			fo, err := forest.New(m, st, forest.Config{
				Tree:           bwtree.Config{MaxPageEntries: 64},
				SplitThreshold: mode.threshold,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			const workers = 8
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					zipf := rand.NewZipf(rng, 1.2, 1, 1023)
					key := make([]byte, 8)
					for i := 0; i < per; i++ {
						owner := forest.OwnerID(zipf.Uint64()*workers + uint64(w))
						for j := range key {
							key[j] = byte(i >> (8 * j))
						}
						if err := fo.Put(owner, key, key); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.ReportMetric(float64(fo.Stats().Trees), "trees")
		})
	}
}

// BenchmarkAblationGCPolicy compares the write amplification of the three
// reclamation policies under identical churn (the §3.3 design choice).
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, p := range []gc.Policy{gc.FIFO{}, gc.DirtyRatio{}, gc.WorkloadAware{MinRate: 0.8}} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := storage.Open(&storage.Options{ExtentSize: 16 << 10})
				locs := map[uint64]storage.Loc{}
				payload := make([]byte, 512)
				for k := 0; k < 2048; k++ {
					loc, err := st.Append(storage.StreamBase, uint64(k), payload)
					if err != nil {
						b.Fatal(err)
					}
					locs[uint64(k)] = loc
				}
				r := gc.NewReclaimer(st, storage.StreamBase, p, func(tag uint64, old, new storage.Loc) bool {
					if locs[tag] != old {
						return false
					}
					locs[tag] = new
					return true
				})
				rng := rand.New(rand.NewSource(1))
				for round := 0; round < 16; round++ {
					for k := 0; k < 256; k++ {
						tag := uint64(rng.Intn(1024)) // hot half churns
						st.Invalidate(locs[tag])
						loc, err := st.Append(storage.StreamBase, tag, payload)
						if err != nil {
							b.Fatal(err)
						}
						locs[tag] = loc
					}
					if _, err := r.RunOnce(4); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Stats().BytesMoved)/(1<<20), "MB-moved")
			}
		})
	}
}

// BenchmarkAblationCommitWindow sweeps the group-commit window: larger
// windows batch more records per storage round trip (fewer, bigger
// appends) at the cost of per-write latency.
func BenchmarkAblationCommitWindow(b *testing.B) {
	for _, window := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("window-%v", window), func(b *testing.B) {
			st := storage.Open(&storage.Options{
				ExtentSize:   1 << 20,
				WriteLatency: time.Millisecond,
			})
			w := wal.NewWriter(st)
			l := replication.NewGroupCommitLogger(w, window, 0)
			defer l.Stop()
			const writers = 32
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/writers + 1
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := l.Log(&wal.Record{Type: wal.RecordPut, Key: []byte("k")}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			batches, records := l.BatchStats()
			if batches > 0 {
				b.ReportMetric(float64(records)/float64(batches), "records/batch")
			}
		})
	}
}

// BenchmarkAblationReplicaCache sweeps the RO page-cache size against a
// fixed working set: the miss rate (storage reads per query) is the price
// of memory frugality on follower nodes.
func BenchmarkAblationReplicaCache(b *testing.B) {
	for _, cache := range []int{8, 64, 0 /* unlimited */} {
		name := fmt.Sprint(cache)
		if cache == 0 {
			name = "unlimited"
		}
		b.Run("cache-"+name, func(b *testing.B) {
			st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
			rw, err := replication.NewRWNode(st, replication.RWOptions{
				Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 64}},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rw.Stop()
			const sources = 512
			for i := 0; i < 16_384; i++ {
				if err := rw.AddEdge(bg3.Edge{
					Src: bg3.VertexID(i % sources), Dst: bg3.VertexID(i), Type: bg3.ETypeFollow,
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := rw.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			ro := replication.NewRONode(st, time.Millisecond, cache)
			defer ro.Stop()
			if !ro.WaitVisible(rw.LastLSN(), 10*time.Second) {
				b.Fatal("replica lagging")
			}
			rng := rand.New(rand.NewSource(3))
			st.ResetIOStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := bg3.VertexID(rng.Intn(sources))
				if err := ro.Replica().Neighbors(src, bg3.ETypeFollow, 16,
					func(bg3.VertexID, bg3.Properties) bool { return true }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Stats().ReadOps)/float64(b.N), "storage-reads/query")
		})
	}
}
