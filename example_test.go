package bg3_test

import (
	"fmt"
	"log"
	"sort"

	bg3 "bg3"
)

// Example demonstrates the minimal write/read cycle.
func Example() {
	db, err := bg3.Open(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.AddEdge(bg3.Edge{Src: 1, Dst: 2, Type: bg3.ETypeFollow}); err != nil {
		log.Fatal(err)
	}
	if err := db.AddEdge(bg3.Edge{Src: 1, Dst: 3, Type: bg3.ETypeFollow}); err != nil {
		log.Fatal(err)
	}
	deg, _ := db.Degree(1, bg3.ETypeFollow)
	fmt.Println("degree:", deg)
	// Output: degree: 2
}

// ExampleDB_Neighbors shows ordered adjacency iteration.
func ExampleDB_Neighbors() {
	db, _ := bg3.Open(nil)
	defer db.Close()
	for _, dst := range []bg3.VertexID{30, 10, 20} {
		if err := db.AddEdge(bg3.Edge{Src: 1, Dst: dst, Type: bg3.ETypeLike}); err != nil {
			log.Fatal(err)
		}
	}
	db.Neighbors(1, bg3.ETypeLike, 0, func(dst bg3.VertexID, _ bg3.Properties) bool {
		fmt.Println(dst)
		return true
	})
	// Output:
	// 10
	// 20
	// 30
}

// ExampleDB_FindCycles shows transfer-loop detection, the risk-control
// primitive.
func ExampleDB_FindCycles() {
	db, _ := bg3.Open(nil)
	defer db.Close()
	for _, e := range [][2]bg3.VertexID{{1, 2}, {2, 3}, {3, 1}} {
		if err := db.AddEdge(bg3.Edge{Src: e[0], Dst: e[1], Type: bg3.ETypeTransfer}); err != nil {
			log.Fatal(err)
		}
	}
	cycles, _ := db.FindCycles(1, bg3.ETypeTransfer, 4, 0)
	fmt.Println("cycles:", len(cycles), cycles[0])
	// Output: cycles: 1 [1 2 3]
}

// ExampleDB_OpenReplica shows a strongly consistent read-only replica.
func ExampleDB_OpenReplica() {
	db, _ := bg3.Open(&bg3.Options{Replicated: true})
	defer db.Close()
	replica, err := db.OpenReplica()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.AddEdge(bg3.Edge{Src: 7, Dst: 8, Type: bg3.ETypeFollow}); err != nil {
		log.Fatal(err)
	}
	if err := replica.Sync(); err != nil {
		log.Fatal(err)
	}
	deg, _ := replica.Degree(7, bg3.ETypeFollow)
	fmt.Println("replica sees degree:", deg)
	// Output: replica sees degree: 1
}

// ExampleDB_KHop shows bounded multi-hop expansion.
func ExampleDB_KHop() {
	db, _ := bg3.Open(nil)
	defer db.Close()
	for _, e := range [][2]bg3.VertexID{{1, 2}, {2, 3}, {3, 4}} {
		if err := db.AddEdge(bg3.Edge{Src: e[0], Dst: e[1], Type: bg3.ETypeFollow}); err != nil {
			log.Fatal(err)
		}
	}
	reached, _ := db.KHop(1, bg3.ETypeFollow, 2, 0)
	var ids []int
	for v := range reached {
		ids = append(ids, int(v))
	}
	sort.Ints(ids)
	fmt.Println("within 2 hops:", ids)
	// Output: within 2 hops: [2 3]
}
