package bg3

import (
	"fmt"

	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/shard"
)

// ShardedDB is a horizontally partitioned BG3 deployment (§3.1): the
// vertex space is split by hash across Options.Shards shard groups, each
// a full single-leader engine with its own shared-storage volume, WAL
// stream, group committer, MVCC epoch clock, and failover machinery.
// Writes route to the owning shard (batches fan out as per-shard commit
// groups); consistent cross-shard reads pin a per-shard epoch vector (a
// consistent cut) and traversals run scatter-gather over it.
//
// All methods are safe for concurrent use.
type ShardedDB struct {
	opts  Options
	group *shard.Group
}

var (
	_ graph.Store      = (*ShardedDB)(nil)
	_ graph.BatchStore = (*ShardedDB)(nil)
)

// OpenSharded creates an in-process sharded BG3 database with
// opts.Shards shard groups (nil opts or Shards <= 1: one shard). Sharded
// mode always runs the replicated write path — each shard needs a WAL
// stream to own an epoch clock.
func OpenSharded(opts *Options) (*ShardedDB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.Replicated = true
	g, err := shard.Open(o.Shards, o.storageOptions(), o.rwOptions())
	if err != nil {
		return nil, fmt.Errorf("bg3: open sharded: %w", err)
	}
	return &ShardedDB{opts: o, group: g}, nil
}

// Close stops every shard's committer, flusher, and engine.
func (db *ShardedDB) Close() { db.group.Close() }

// Shards returns the shard count.
func (db *ShardedDB) Shards() int { return db.group.Shards() }

// Group exposes the shard group for tests and tooling.
func (db *ShardedDB) Group() *shard.Group { return db.group }

// Metrics returns the group-level metrics registry (routing fan-out,
// scatter-gather counters, snapshot accounting, failovers).
func (db *ShardedDB) Metrics() *metrics.Registry { return db.group.Metrics() }

// AddVertex writes the vertex on its owning shard.
func (db *ShardedDB) AddVertex(v Vertex) error { return db.group.AddVertex(v) }

// GetVertex reads the vertex from its owning shard (latest state).
func (db *ShardedDB) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return db.group.GetVertex(id, typ)
}

// AddEdge writes the edge on its source's owning shard.
func (db *ShardedDB) AddEdge(e Edge) error { return db.group.AddEdge(e) }

// GetEdge reads one edge from its source's owning shard (latest state).
func (db *ShardedDB) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return db.group.GetEdge(src, typ, dst)
}

// DeleteEdge removes the edge on its source's owning shard.
func (db *ShardedDB) DeleteEdge(src VertexID, typ EdgeType, dst VertexID) error {
	return db.group.DeleteEdge(src, typ, dst)
}

// Neighbors streams src's out-neighbors from its owning shard (latest
// state), with callback-scoped Properties validity.
func (db *ShardedDB) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return db.group.Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree on its owning shard.
func (db *ShardedDB) Degree(src VertexID, typ EdgeType) (int, error) {
	return db.group.Degree(src, typ)
}

// ApplyBatch commits the batch atomically — across shards. A batch
// touching one shard commits as that shard's ordinary group-commit; a
// multi-shard batch runs a lightweight two-phase commit over the
// per-shard group committers (prepare intents on every participant,
// commit decision on the coordinator's stream, then apply), so readers
// never observe half a batch at any pinned cut and recovery resolves
// in-doubt prepares from the coordinator's durable prefix. An error
// wrapping shard.ErrTxnAborted means the transaction aborted cleanly
// (nothing applied anywhere) and the batch can simply be retried.
func (db *ShardedDB) ApplyBatch(muts []Mutation) error { return db.group.ApplyBatch(muts) }

// ShardOutcome reports one shard's fate in a batch: committed, aborted,
// fenced by a concurrent failover, skipped (not touched), or unknown.
type ShardOutcome = shard.ShardOutcome

// ApplyBatchEx is ApplyBatch with per-shard outcomes: one entry per
// shard, index-aligned with the shard order, covering the fate of every
// participant even when the batch fails partway (no silent partial
// fan-out). The error is nil only when every touched shard committed.
func (db *ShardedDB) ApplyBatchEx(muts []Mutation) ([]ShardOutcome, error) {
	return db.group.ApplyBatchEx(muts)
}

// ShardSnapshot is a consistent cross-shard cut: one pinned read epoch
// per shard. Every read through it observes each shard exactly at that
// shard's pinned group-commit boundary — a scatter-gather traversal
// never sees a torn cross-shard state, no matter how many writes commit
// or which leaders fail over while it is open.
//
// It holds every shard's MVCC retention floor down until closed; close
// it promptly. Safe for concurrent readers; Close is idempotent.
type ShardSnapshot struct {
	snap *shard.Snapshot
	db   *ShardedDB
}

var _ graph.Reader = (*ShardSnapshot)(nil)

// Snapshot pins each shard's current released read epoch and returns the
// cut. The caller must Close it.
func (db *ShardedDB) Snapshot() *ShardSnapshot {
	return &ShardSnapshot{snap: db.group.Snapshot(), db: db}
}

// SnapshotAt re-attaches a cut from an encoded epoch vector (see
// ShardSnapshot.Vector). It fails closed: truncated or corrupt vectors,
// wrong shard counts, components ahead of a shard's released horizon,
// retired below its retention floor, or naming mid-group LSNs are all
// rejected with no pins leaked. The original snapshot must stay open
// until the re-attach returns, or its epochs may retire.
func (db *ShardedDB) SnapshotAt(vector []byte) (*ShardSnapshot, error) {
	v, err := shard.DecodeVector(vector)
	if err != nil {
		return nil, err
	}
	snap, err := db.group.SnapshotAt(v)
	if err != nil {
		return nil, err
	}
	return &ShardSnapshot{snap: snap, db: db}, nil
}

// Epochs returns the pinned epoch vector: component i is shard i's
// group-commit boundary.
func (s *ShardSnapshot) Epochs() []uint64 {
	v := s.snap.Epochs()
	out := make([]uint64, len(v))
	for i, e := range v {
		out[i] = uint64(e)
	}
	return out
}

// Vector returns the cut as a checksummed wire-format vector that
// SnapshotAt on another handle over the same shards can re-pin.
func (s *ShardSnapshot) Vector() []byte { return s.snap.Epochs().Encode() }

// Close releases every shard's pin. Idempotent.
func (s *ShardSnapshot) Close() { s.snap.Close() }

// GetVertex reads the vertex at its owner's pinned horizon.
func (s *ShardSnapshot) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return s.snap.GetVertex(id, typ)
}

// GetEdge reads one edge at its source owner's pinned horizon.
func (s *ShardSnapshot) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return s.snap.GetEdge(src, typ, dst)
}

// Neighbors streams src's out-neighbors at its owner's pinned horizon.
func (s *ShardSnapshot) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return s.snap.Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree at its owner's pinned horizon.
func (s *ShardSnapshot) Degree(src VertexID, typ EdgeType) (int, error) {
	return s.snap.Degree(src, typ)
}

// KHop expands hops levels from start over the cut, scatter-gather: each
// hop splits the frontier by owner, issues batched per-shard reads in
// parallel (perVertexLimit pushed down into each shard's scan), and
// merges. The reached set is exactly what the serial traversal over this
// snapshot would return.
func (s *ShardSnapshot) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	var st shard.ScatterStats
	reached, err := s.snap.KHopScatter(start, typ, hops, perVertexLimit, &st)
	s.db.group.ObserveScatter(st)
	return reached, err
}

// MatchPattern finds embeddings of p anchored at the seeds over the cut,
// scattering independent seeds across workers.
func (s *ShardSnapshot) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	return s.snap.MatchPattern(p, seeds, maxMatches)
}

// FindCycles enumerates simple cycles through start over the cut,
// scattering independent first-hop branches across workers.
func (s *ShardSnapshot) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	return s.snap.FindCycles(start, typ, maxLen, maxCycles)
}

// KHop is the one-shot traversal: it pins a cut, runs the scatter-gather
// expansion, and releases the cut — one traversal, one consistent
// cross-shard boundary vector.
func (db *ShardedDB) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	s := db.Snapshot()
	defer s.Close()
	return s.KHop(start, typ, hops, perVertexLimit)
}

// MatchPattern pins a cut and matches over it.
func (db *ShardedDB) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	s := db.Snapshot()
	defer s.Close()
	return s.MatchPattern(p, seeds, maxMatches)
}

// FindCycles pins a cut and enumerates cycles over it.
func (db *ShardedDB) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	s := db.Snapshot()
	defer s.Close()
	return s.FindCycles(start, typ, maxLen, maxCycles)
}

// Failover fences shard i's leader and promotes a replacement rebuilt
// from the shard's durable state. Other shards keep serving; snapshots
// pinned on the deposed leader stay exact (their horizons exclude
// anything the fence cut off).
func (db *ShardedDB) Failover(i int) error {
	if i < 0 || i >= db.group.Shards() {
		return fmt.Errorf("bg3: failover: shard %d out of range [0,%d)", i, db.group.Shards())
	}
	return db.group.Failover(i)
}

// ShardedStats is a point-in-time summary of a sharded deployment.
type ShardedStats struct {
	// Shards is the shard-group count.
	Shards int `json:"shards"`
	// Epochs is each shard's released read epoch (its consistent-cut
	// component at sampling time).
	Epochs []uint64 `json:"epochs"`
	// LastLSNs is each shard's assigned-LSN horizon.
	LastLSNs []uint64 `json:"last_lsns"`
	// Failovers counts leader replacements across all shards.
	Failovers int64 `json:"failovers"`
	// BatchesRouted counts ApplyBatch calls fanned out by the router.
	BatchesRouted int64 `json:"batches_routed"`
	// BatchFanoutMean is the mean number of shards touched per batch.
	BatchFanoutMean float64 `json:"batch_fanout_mean"`
	// ScatterHops / ScatterShardReads count scatter-gather hop rounds and
	// the parallel per-shard reads they issued.
	ScatterHops       int64 `json:"scatter_hops"`
	ScatterShardReads int64 `json:"scatter_shard_reads"`
	// Snapshots counts consistent cuts taken; SnapshotRejects counts
	// vectors refused fail-closed by SnapshotAt.
	Snapshots       int64 `json:"snapshots"`
	SnapshotRejects int64 `json:"snapshot_rejects"`
	// Txns counts multi-shard transactions started (2PC path);
	// TxnCommits and TxnAborts their decisions. TxnResolved counts
	// in-doubt prepares settled by a failover's resolution pass, and
	// TxnReapplied how many of those re-applied a committed payload.
	Txns         int64 `json:"txns"`
	TxnCommits   int64 `json:"txn_commits"`
	TxnAborts    int64 `json:"txn_aborts"`
	TxnResolved  int64 `json:"txn_resolved"`
	TxnReapplied int64 `json:"txn_reapplied"`
}

// Stats samples the sharded deployment.
func (db *ShardedDB) Stats() ShardedStats {
	g := db.group
	snap := g.Metrics().Snapshot()
	st := ShardedStats{
		Shards:   g.Shards(),
		Epochs:   make([]uint64, 0, g.Shards()),
		LastLSNs: g.Cluster().LastLSNs(),
	}
	for _, e := range g.ReadEpochs() {
		st.Epochs = append(st.Epochs, uint64(e))
	}
	st.Failovers = snap["shard.failovers"].Value
	st.BatchesRouted = snap["shard.batches_routed"].Value
	st.ScatterHops = snap["shard.scatter_hops"].Value
	st.ScatterShardReads = snap["shard.scatter_shard_reads"].Value
	st.Snapshots = snap["shard.snapshots"].Value
	st.SnapshotRejects = snap["shard.snapshot_rejects"].Value
	st.Txns = snap["shard.txns"].Value
	st.TxnCommits = snap["shard.txn_commits"].Value
	st.TxnAborts = snap["shard.txn_aborts"].Value
	st.TxnResolved = snap["shard.txn_indoubt_resolved"].Value
	st.TxnReapplied = snap["shard.txn_resolve_reapplied"].Value
	if h := snap["shard.batch_fanout"].IntHistogram; h != nil {
		st.BatchFanoutMean = h.Mean
	}
	return st
}
