module bg3

go 1.24
