package bg3

import (
	"time"

	"bg3/internal/graph"
	"bg3/internal/pattern"
	"bg3/internal/replication"
)

// WriteSnapshot persists a snapshot of the database's durable shape so
// that future replicas bootstrap without replaying the whole WAL, and so
// TrimWAL can drop the covered WAL prefix. Only valid on a replicated DB.
func (db *DB) WriteSnapshot() error {
	if db.leader() == nil {
		return ErrNotReplicated
	}
	_, err := db.leader().WriteSnapshot()
	return err
}

// TrimWAL drops the WAL prefix covered by the most recent snapshot,
// returning the number of extents freed. Replicas attached before the
// snapshot are unaffected; replicas opened afterwards bootstrap from the
// snapshot automatically.
func (db *DB) TrimWAL() int {
	if db.leader() == nil {
		return 0
	}
	return db.leader().TrimWAL()
}

// Replica is a read-only BG3 node attached to a replicated DB. It tails
// the write-ahead log on the shared store and serves strongly consistent
// reads: any write acknowledged by the DB becomes visible on every
// replica within the WAL shipping delay, with no data loss regardless of
// network conditions (§3.4).
type Replica struct {
	ro *replication.RONode
}

// OpenReplica attaches a new read-only replica. The DB must have been
// opened with Options.Replicated.
func (db *DB) OpenReplica() (*Replica, error) {
	if db.leader() == nil {
		return nil, ErrNotReplicated
	}
	interval := db.opts.ReplicaPollInterval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	// Bootstrap from the latest snapshot when one exists (falls back to a
	// full WAL replay otherwise).
	ro, err := replication.NewRONodeFromSnapshot(db.store, interval, db.opts.ReplicaCacheCapacity)
	if err != nil {
		return nil, err
	}
	r := &Replica{ro: ro}
	db.mu.Lock()
	db.replicas = append(db.replicas, r)
	db.mu.Unlock()
	return r, nil
}

// Stop detaches the replica and halts its WAL tailing.
func (r *Replica) Stop() { r.ro.Stop() }

// AppliedLSN returns the highest WAL LSN this replica has applied.
func (r *Replica) AppliedLSN() uint64 { return uint64(r.ro.AppliedLSN()) }

// Resyncs returns how many times the replica re-bootstrapped from a
// snapshot after a WAL trim or lost extent outran its tailing.
func (r *Replica) Resyncs() int64 { return r.ro.Resyncs() }

// Sync synchronously drains the WAL so subsequent reads reflect every
// write the DB has acknowledged so far.
func (r *Replica) Sync() error { return r.ro.Poll() }

// GetVertex fetches a vertex.
func (r *Replica) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return r.ro.Replica().GetVertex(id, typ)
}

// GetEdge fetches one edge.
func (r *Replica) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return r.ro.Replica().GetEdge(src, typ, dst)
}

// Neighbors streams src's out-neighbors, like DB.Neighbors.
func (r *Replica) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return r.ro.Replica().Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree for the given edge type.
func (r *Replica) Degree(src VertexID, typ EdgeType) (int, error) {
	return r.ro.Replica().Degree(src, typ)
}

// KHop expands hops levels of out-neighbors from start on the replica.
func (r *Replica) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	return graph.KHop(r.ro.Replica().AsStore(), start, typ, hops, perVertexLimit)
}

// MatchPattern runs subgraph matching on the replica — the scale-out
// read path of the financial-risk-control workload.
func (r *Replica) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	return pattern.Match(r.ro.Replica().AsStore(), p, seeds, maxMatches)
}

// FindCycles runs loop detection on the replica.
func (r *Replica) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	return pattern.FindCycles(r.ro.Replica().AsStore(), start, typ, maxLen, maxCycles)
}
