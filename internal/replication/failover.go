package replication

import (
	"fmt"
	"time"

	"bg3/internal/metrics"
	"bg3/internal/storage"
)

// Promote turns a read-only follower into the new leader after the old one
// crashed or must be deposed — the missing half of the paper's single-RW,
// many-RO architecture (§3.4). The sequence is the BtrLog one:
//
//  1. Fence. Claim a fresh epoch on the WAL stream (AdvanceStreamEpoch).
//     From this instant the shared store rejects every append carrying the
//     old leader's token with ErrFenced, so a deposed leader that is still
//     running — or merely slow — cannot extend the log. Its writer
//     fail-stops on the first rejected append and every in-flight commit
//     surfaces the error to its caller instead of being silently lost.
//  2. Drain. Stop the follower's poll loop and synchronously replay the
//     durable WAL tail. Everything the old leader persisted before the
//     fence is acknowledged-or-in-doubt state and must survive; after the
//     fence the tail is frozen, so one drain reads all of it.
//  3. Rebuild. Reconstruct a live RW engine from the durable state
//     (snapshot + WAL suffix — the RecoverRWNode machinery) with a writer
//     holding exactly the claimed epoch, resume the LSN sequence past the
//     highest durable record, and publish a fresh snapshot so followers can
//     bootstrap onto the new leader's page-ID space.
//
// The follower keeps serving reads from its caught-up replica after Promote
// returns; followers attached to the old leader should call Resync to adopt
// the new leader's snapshot. Like RecoverRWNode, Promote requires at least
// one snapshot on the store. If a competing promotion claims a higher epoch
// concurrently, exactly one candidate ends up able to append — the loser's
// node fails with an error wrapping storage.ErrFenced on its first write.
func Promote(ro *RONode, opts RWOptions) (*RWNode, error) {
	if ro == nil {
		return nil, fmt.Errorf("replication: promote: nil follower")
	}
	st := ro.store
	epoch, err := st.AdvanceStreamEpoch(storage.StreamWAL)
	if err != nil {
		return nil, fmt.Errorf("replication: promote: fence: %w", err)
	}
	ro.Stop()
	if err := ro.Poll(); err != nil {
		return nil, fmt.Errorf("replication: promote: drain: %w", err)
	}
	rw, err := recoverRWNodeAtEpoch(st, opts, epoch)
	if err != nil {
		return nil, fmt.Errorf("replication: promote: %w", err)
	}
	metrics.Faults.Recoveries.Inc()
	return rw, nil
}

// Failover deposes the shard's current leader and installs a freshly
// promoted one on the same store: best-effort snapshot (so the promotion
// has a bootstrap point even if none was ever written — skipped when the
// old leader is already dead or fenced), attach a transient follower,
// Promote it, stop the old leader, swap. Writes routed to the shard during
// the switch fail with errors wrapping storage.ErrFenced or
// wal.ErrWriterFailed rather than being silently dropped; the caller
// retries against the new leader.
func (c *Cluster) Failover(shard int) error {
	c.mu.RLock()
	if shard < 0 || shard >= len(c.shards) {
		c.mu.RUnlock()
		return fmt.Errorf("replication: failover: no shard %d", shard)
	}
	old := c.shards[shard]
	st := c.stores[shard]
	c.mu.RUnlock()

	_, _ = old.WriteSnapshot()
	ro, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		return fmt.Errorf("replication: failover shard %d: %w", shard, err)
	}
	rw, err := Promote(ro, old.opts)
	if err != nil {
		return fmt.Errorf("replication: failover shard %d: %w", shard, err)
	}

	c.mu.Lock()
	if c.shards == nil || c.shards[shard] != old {
		// The cluster stopped or another failover won the shard meanwhile;
		// this leader has been fenced out already.
		c.mu.Unlock()
		rw.Stop()
		return fmt.Errorf("replication: failover shard %d: %w", shard, storage.ErrFenced)
	}
	c.shards[shard] = rw
	c.mu.Unlock()
	old.Stop()
	c.failovers.Add(1)
	return nil
}

// Failovers returns how many shard leaders have been replaced.
func (c *Cluster) Failovers() int64 { return c.failovers.Load() }

// ShardEpoch returns the WAL fence epoch the shard's current leader
// appends under.
func (c *Cluster) ShardEpoch(shard int) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if shard < 0 || shard >= len(c.shards) {
		return 0
	}
	return c.shards[shard].Epoch()
}
