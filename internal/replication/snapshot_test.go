package replication

import (
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
)

func TestSnapshotBootstrapMatchesFullReplay(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{
		Engine: core.Options{SplitThreshold: 50, Tree: bwtree.Config{MaxPageEntries: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	// Phase 1: data before the snapshot, including a forest migration.
	for i := 0; i < 120; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 7, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	for src := 0; src < 10; src++ {
		if err := rw.AddEdge(graph.Edge{Src: graph.VertexID(src), Dst: 999, Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.AddVertex(graph.Vertex{ID: 7, Type: graph.VTypeUser,
		Props: graph.Properties{{Name: "n", Value: []byte("hot")}}}); err != nil {
		t.Fatal(err)
	}

	horizon, err := rw.WriteSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if horizon == 0 {
		t.Fatal("snapshot horizon is zero")
	}

	// Phase 2: more writes after the snapshot.
	for i := 120; i < 160; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 7, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}

	// A replica bootstrapped from the snapshot and one replaying the full
	// WAL must agree on everything.
	snapRO, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer snapRO.Stop()
	fullRO := NewRONode(st, time.Millisecond, 0)
	defer fullRO.Stop()

	lsn := rw.LastLSN()
	if !snapRO.WaitVisible(lsn, 2*time.Second) || !fullRO.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("replicas lagging")
	}
	for _, ro := range []*RONode{snapRO, fullRO} {
		if deg, err := ro.Replica().Degree(7, graph.ETypeLike); err != nil || deg != 160 {
			t.Fatalf("degree = %d %v, want 160", deg, err)
		}
		if v, ok, _ := ro.Replica().GetVertex(7, graph.VTypeUser); !ok {
			t.Fatal("vertex missing")
		} else if n, _ := v.Props.Get("n"); string(n) != "hot" {
			t.Fatalf("props = %+v", v.Props)
		}
		for src := 0; src < 10; src++ {
			if _, ok, _ := ro.Replica().GetEdge(graph.VertexID(src), graph.ETypeFollow, 999); !ok {
				t.Fatalf("edge %d->999 missing", src)
			}
		}
	}
}

func TestSnapshotWithoutSnapshotFallsBack(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	if err := rw.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeFollow}); err != nil {
		t.Fatal(err)
	}
	ro, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Stop()
	if !ro.WaitVisible(rw.LastLSN(), 2*time.Second) {
		t.Fatal("fallback replica lagging")
	}
	if _, ok, _ := ro.Replica().GetEdge(1, graph.ETypeFollow, 2); !ok {
		t.Fatal("edge missing via fallback replay")
	}
}

func TestTrimWALAfterSnapshot(t *testing.T) {
	// Small WAL extents so trimming has something to drop (and small pages
	// so base images fit the extents).
	st := storage.Open(&storage.Options{ExtentSize: 1 << 10})
	rw, err := NewRWNode(st, RWOptions{
		Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 16, MaxInnerEntries: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	for i := 0; i < 500; i++ {
		if err := rw.AddEdge(graph.Edge{Src: graph.VertexID(i % 5), Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rw.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	if rw.TrimWAL() == 0 {
		t.Fatal("trim dropped nothing despite a covering snapshot")
	}
	// Post-trim writes still replicate; a new snapshot-bootstrapped
	// replica sees everything.
	for i := 500; i < 550; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	ro, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Stop()
	if !ro.WaitVisible(rw.LastLSN(), 2*time.Second) {
		t.Fatal("replica lagging after trim")
	}
	for src := 0; src < 5; src++ {
		deg, err := ro.Replica().Degree(graph.VertexID(src), graph.ETypeFollow)
		if err != nil {
			t.Fatal(err)
		}
		want := 100
		if src == 1 {
			want = 150
		}
		if deg != want {
			t.Fatalf("degree(%d) = %d, want %d", src, deg, want)
		}
	}
	if err := ro.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimWithoutSnapshotIsNoop(t *testing.T) {
	st := storage.Open(nil)
	rw, err := NewRWNode(st, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	if got := rw.TrimWAL(); got != 0 {
		t.Fatalf("trim without snapshot dropped %d extents", got)
	}
}

func TestRepeatedSnapshots(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 14})
	rw, err := NewRWNode(st, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	var lastHorizon uint64
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			if err := rw.AddEdge(graph.Edge{
				Src: graph.VertexID(round), Dst: graph.VertexID(i), Type: graph.ETypeLike,
			}); err != nil {
				t.Fatal(err)
			}
		}
		h, err := rw.WriteSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if uint64(h) <= lastHorizon {
			t.Fatalf("horizon not monotonic: %d then %d", lastHorizon, h)
		}
		lastHorizon = uint64(h)
	}
	// The newest snapshot wins.
	ro, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Stop()
	if !ro.WaitVisible(rw.LastLSN(), 2*time.Second) {
		t.Fatal("replica lagging")
	}
	for round := 0; round < 3; round++ {
		deg, err := ro.Replica().Degree(graph.VertexID(round), graph.ETypeLike)
		if err != nil || deg != 100 {
			t.Fatalf("round %d degree = %d %v", round, deg, err)
		}
	}
}

func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				done <- n
				return
			default:
				if err := rw.AddEdge(graph.Edge{
					Src: 9, Dst: graph.VertexID(n), Type: graph.ETypeFollow,
				}); err == nil {
					n++
				}
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := rw.WriteSnapshot(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	total := <-done

	ro, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Stop()
	if !ro.WaitVisible(rw.LastLSN(), 2*time.Second) {
		t.Fatal("replica lagging")
	}
	deg, err := ro.Replica().Degree(9, graph.ETypeFollow)
	if err != nil || deg != total {
		t.Fatalf("degree = %d %v, want %d", deg, err, total)
	}
}

func TestRecoverRWNode(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{
		Engine: core.Options{SplitThreshold: 30, Tree: bwtree.Config{MaxPageEntries: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: durable state under a snapshot (includes a forest
	// migration so the owner directory must survive recovery).
	for i := 0; i < 80; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 5, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	for src := 0; src < 4; src++ {
		if err := rw.AddEdge(graph.Edge{Src: graph.VertexID(src), Dst: 1000, Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rw.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: a WAL suffix past the snapshot — data records, a deletion,
	// and another migration (new tree + owner assignment in the suffix).
	for i := 80; i < 120; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 5, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.DeleteEdge(5, graph.ETypeLike, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ { // owner 6 crosses the threshold post-snapshot
		if err := rw.AddEdge(graph.Edge{Src: 6, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: stop pipelines without a final checkpoint or snapshot.
	rw.Stop()

	// Recover on the same store.
	rec, err := RecoverRWNode(st, RWOptions{
		Engine: core.Options{SplitThreshold: 30, Tree: bwtree.Config{MaxPageEntries: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	if deg, err := rec.Degree(5, graph.ETypeLike); err != nil || deg != 119 {
		t.Fatalf("recovered degree(5) = %d %v, want 119", deg, err)
	}
	if _, ok, _ := rec.GetEdge(5, graph.ETypeLike, 0); ok {
		t.Fatal("deleted edge resurrected by recovery")
	}
	if deg, err := rec.Degree(6, graph.ETypeLike); err != nil || deg != 40 {
		t.Fatalf("recovered degree(6) = %d %v, want 40", deg, err)
	}
	for src := 0; src < 4; src++ {
		if _, ok, _ := rec.GetEdge(graph.VertexID(src), graph.ETypeFollow, 1000); !ok {
			t.Fatalf("edge %d->1000 lost in recovery", src)
		}
	}

	// The recovered node keeps working: new writes, checkpoints, replicas.
	for i := 120; i < 140; i++ {
		if err := rec.AddEdge(graph.Edge{Src: 5, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ro := NewRONode(st, time.Millisecond, 0)
	defer ro.Stop()
	if !ro.WaitVisible(rec.LastLSN(), 2*time.Second) {
		t.Fatal("replica lagging behind recovered node")
	}
	// NOTE: a full-replay replica would replay pre-crash records too; the
	// degree check below therefore uses a fresh snapshot bootstrap.
	if _, err := rec.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	snapRO, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer snapRO.Stop()
	if !snapRO.WaitVisible(rec.LastLSN(), 2*time.Second) {
		t.Fatal("snapshot replica lagging")
	}
	if deg, err := snapRO.Replica().Degree(5, graph.ETypeLike); err != nil || deg != 139 {
		t.Fatalf("replica degree(5) = %d %v, want 139", deg, err)
	}
}

func TestRecoverWithoutSnapshotFails(t *testing.T) {
	st := storage.Open(nil)
	if _, err := RecoverRWNode(st, RWOptions{}); err == nil {
		t.Fatal("recovery without a snapshot succeeded")
	}
}
