package replication

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

func testRWOpts() RWOptions {
	return RWOptions{Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 32}}}
}

// TestPromote is the happy path: a leader writes, a follower catches up, a
// promotion fences the leader out and the successor serves everything the
// old leader acknowledged — including the WAL tail past the snapshot — and
// accepts new writes under the bumped epoch while the deposed leader's
// writes fail explicitly.
func TestPromote(t *testing.T) {
	st := storage.Open(nil)
	defer st.Close()
	old, err := NewRWNode(st, testRWOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer old.Stop()

	put := func(n *RWNode, dst graph.VertexID, val string) error {
		return n.AddEdge(graph.Edge{Src: 1, Dst: dst, Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: "p", Value: []byte(val)}}})
	}
	for i := 0; i < 10; i++ {
		if err := put(old, graph.VertexID(i), fmt.Sprintf("pre%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := old.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	// A WAL tail beyond the snapshot: the promotion drain must carry it over.
	for i := 10; i < 15; i++ {
		if err := put(old, graph.VertexID(i), fmt.Sprintf("tail%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	ro, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	next, err := Promote(ro, testRWOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer next.Stop()

	if next.Epoch() != 1 {
		t.Fatalf("promoted epoch = %d, want 1", next.Epoch())
	}
	for i := 0; i < 15; i++ {
		want := fmt.Sprintf("pre%d", i)
		if i >= 10 {
			want = fmt.Sprintf("tail%d", i)
		}
		e, ok, err := next.GetEdge(1, graph.ETypeFollow, graph.VertexID(i))
		if err != nil || !ok {
			t.Fatalf("edge %d after promotion: ok=%v err=%v", i, ok, err)
		}
		if v, _ := e.Props.Get("p"); string(v) != want {
			t.Fatalf("edge %d = %q, want %q", i, v, want)
		}
	}

	if err := put(old, 99, "zombie"); !errors.Is(err, storage.ErrFenced) && !errors.Is(err, wal.ErrWriterFailed) {
		t.Fatalf("deposed leader write err = %v, want a fencing error", err)
	}
	if err := put(next, 20, "post"); err != nil {
		t.Fatalf("promoted leader write: %v", err)
	}
	if _, ok, _ := next.GetEdge(1, graph.ETypeFollow, 99); ok {
		t.Fatal("zombie write visible on the promoted leader")
	}

	// A follower bootstrapped after the promotion (new snapshot, new
	// page-ID space) agrees with the new leader.
	tail, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Stop()
	if err := tail.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tail.Replica().GetEdge(1, graph.ETypeFollow, 20); err != nil || !ok {
		t.Fatalf("post-failover write not visible to follower: ok=%v err=%v", ok, err)
	}
}

// TestPromoteNilFollower pins the argument contract.
func TestPromoteNilFollower(t *testing.T) {
	if _, err := Promote(nil, testRWOpts()); err == nil {
		t.Fatal("Promote(nil) succeeded")
	}
}

// TestClusterFailover swaps one shard's leader in place: writes routed to
// the shard keep working after the failover, the other shards are
// untouched, and the epoch/failover counters advance.
func TestClusterFailover(t *testing.T) {
	c, err := NewCluster(2, nil, testRWOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Write through the routing layer so both shards hold data.
	for i := 1; i <= 40; i++ {
		e := graph.Edge{Src: graph.VertexID(i), Dst: 1, Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: "p", Value: []byte{byte(i)}}}}
		if err := c.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.Failover(1); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if got := c.ShardEpoch(1); got != 1 {
		t.Fatalf("ShardEpoch(1) = %d, want 1", got)
	}
	if got := c.ShardEpoch(0); got != 0 {
		t.Fatalf("ShardEpoch(0) = %d, want 0 (untouched shard)", got)
	}

	// Every pre-failover write is still readable through the router, and
	// new writes land on whichever leader now owns the shard.
	for i := 1; i <= 40; i++ {
		e, ok, err := c.GetEdge(graph.VertexID(i), graph.ETypeFollow, 1)
		if err != nil || !ok {
			t.Fatalf("edge %d after failover: ok=%v err=%v", i, ok, err)
		}
		if v, _ := e.Props.Get("p"); len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("edge %d = %x", i, v)
		}
	}
	for i := 41; i <= 60; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: 2, Type: graph.ETypeFollow}); err != nil {
			t.Fatalf("post-failover write %d: %v", i, err)
		}
	}

	if err := c.Failover(5); err == nil {
		t.Fatal("failover of a nonexistent shard succeeded")
	}
}
