package replication

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/mvcc"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// RWOptions configures a read-write node.
type RWOptions struct {
	// Engine options; FlushMode is forced to FlushAsync and the Logger is
	// installed by NewRWNode.
	Engine core.Options

	// CommitWindow is the group-commit accumulation window (0: immediate).
	CommitWindow time.Duration

	// MaxBatch caps a commit batch and doubles as the size trigger that
	// cuts a flush before the window elapses (0: 64).
	MaxBatch int

	// QueueDepth bounds the committer's pending queue; writers beyond it
	// block until a flush makes room (0: 4096).
	QueueDepth int

	// PipelineDepth is how many sealed WAL group appends the committer
	// keeps in flight concurrently; acks still release strictly in LSN
	// order (0 or 1: serial, one append at a time).
	PipelineDepth int

	// AdaptivePipeline lets the committer resize its effective depth and
	// window between 1 and PipelineDepth based on queue-stall pressure and
	// group fill.
	AdaptivePipeline bool

	// FlushInterval drives the background dirty-page flusher; 0 disables
	// the background thread (call Checkpoint manually).
	FlushInterval time.Duration

	// FlushThreshold additionally triggers a flush when this many dirty
	// pages accumulate (0: interval only) — the paper's "once the
	// accumulated dirty pages reach a specific threshold".
	FlushThreshold int
}

// RWNode is BG3's read-write node: a core.Engine in async-flush mode whose
// every modification is group-committed to the WAL, plus the background
// flusher that persists dirty pages and publishes checkpoints. Writes go
// through the node (not the engine directly) so checkpoint LSNs are
// computed against a quiesced write pipeline.
type RWNode struct {
	engine *core.Engine
	store  *storage.Store
	writer *wal.Writer
	logger *GroupCommitLogger
	opts   RWOptions

	// applyBarrier serializes checkpoint horizon computation against
	// in-flight writes: writers hold it shared across (WAL log + memory
	// apply), the flusher takes it exclusively for an instant to establish
	// "every committed LSN is applied and dirty-marked".
	applyBarrier sync.RWMutex

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu          sync.Mutex
	checkpoints int64
	lastCkpt    wal.LSN

	snap snapshotState
}

// NewRWNode creates the RW node on a shared store.
func NewRWNode(st *storage.Store, opts RWOptions) (*RWNode, error) {
	writer := wal.NewWriter(st)
	// The epoch clock advances at each group's ack release, so a writer
	// that saw its commit return can immediately pin an epoch covering its
	// own write.
	src := mvcc.NewSource(0)
	logger := wal.NewGroupCommitter(writer, wal.GroupCommitterOptions{
		MaxDelay:      opts.CommitWindow,
		MaxBatch:      opts.MaxBatch,
		QueueDepth:    opts.QueueDepth,
		PipelineDepth: opts.PipelineDepth,
		AdaptiveDepth: opts.AdaptivePipeline,
		OnRelease:     func(last wal.LSN) { src.Advance(mvcc.Epoch(last)) },
	})
	src.Advance(mvcc.Epoch(logger.LastLSN()))
	opts.Engine.Tree.FlushMode = bwtree.FlushAsync
	opts.Engine.Logger = logger
	opts.Engine.Epochs = src
	engine, err := core.NewWithStore(st, opts.Engine)
	if err != nil {
		logger.Stop()
		return nil, err
	}
	n := &RWNode{
		engine: engine,
		store:  st,
		writer: writer,
		logger: logger,
		opts:   opts,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n.registerMetrics(engine.Metrics())
	if opts.FlushInterval > 0 {
		go n.flushLoop()
	} else {
		close(n.done)
	}
	return n, nil
}

// registerMetrics wires the WAL pipeline into the node's registry: append
// and commit latency, checkpoint cadence.
func (n *RWNode) registerMetrics(r *metrics.Registry) {
	n.writer.RegisterMetrics(r)
	n.logger.RegisterMetrics(r)
	r.CounterFunc("wal.checkpoints", n.Checkpoints)
	r.GaugeFunc("wal.last_checkpoint_lsn", func() int64 { return int64(n.lastCheckpoint()) })
	r.GaugeFunc("replication.epoch", func() int64 { return int64(n.writer.Epoch()) })
}

// Engine exposes the underlying engine (stats, GC).
func (n *RWNode) Engine() *core.Engine { return n.engine }

// Writer exposes the WAL writer (experiments).
func (n *RWNode) Writer() *wal.Writer { return n.writer }

// Logger exposes the group-commit logger (stats, experiments).
func (n *RWNode) Logger() *GroupCommitLogger { return n.logger }

// LastLSN returns the most recently assigned WAL LSN — the horizon an RO
// node must reach to observe every write acknowledged so far.
func (n *RWNode) LastLSN() wal.LSN { return n.logger.LastLSN() }

// Epoch returns the WAL fence epoch this leader appends under (0 on a
// store that never failed over).
func (n *RWNode) Epoch() uint64 { return n.writer.Epoch() }

// Stop halts the flusher and the commit pipeline.
func (n *RWNode) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
	n.logger.Stop()
	n.engine.Close()
}

func (n *RWNode) flushLoop() {
	defer close(n.done)
	// Tick at a fraction of the flush interval so the dirty-page
	// threshold is noticed promptly between interval flushes.
	tick := n.opts.FlushInterval / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			due := time.Since(last) >= n.opts.FlushInterval ||
				(n.opts.FlushThreshold > 0 && n.engine.DirtyCount() >= n.opts.FlushThreshold)
			if due {
				// Errors mean the store is closing; the loop keeps
				// ticking until stopped.
				_ = n.Checkpoint()
				last = time.Now()
			}
		}
	}
}

// Checkpoint flushes all dirty pages and appends a checkpoint record
// declaring the flushed horizon (§3.4 steps 7–8). Safe to call manually
// when no background flusher runs.
func (n *RWNode) Checkpoint() error {
	// Quiesce in-flight writes so "assigned LSN" implies "applied and
	// dirty-marked" (writers hold the barrier shared across LSN
	// assignment + memory apply + dirty-marking).
	n.applyBarrier.Lock()
	ckptLSN := n.logger.LastLSN()
	n.applyBarrier.Unlock()

	updates, err := n.engine.FlushDirty()
	if err != nil {
		return err
	}
	// Pages GC relocated since the last checkpoint must also reach the
	// replicas, or their old locations would dangle once the condemned
	// extents are released.
	updates = append(updates, n.engine.Mapping().TakeRelocated()...)
	if len(updates) == 0 && ckptLSN == n.lastCheckpoint() {
		return nil // nothing new
	}
	if err := n.appendCheckpoint(ckptLSN, updates); err != nil {
		return err
	}
	n.mu.Lock()
	n.checkpoints++
	n.lastCkpt = ckptLSN
	n.mu.Unlock()
	return nil
}

// appendCheckpoint publishes a checkpoint, chunking the mapping updates so
// each WAL record fits an extent. Replicas apply repeated checkpoint
// records with the same horizon idempotently.
func (n *RWNode) appendCheckpoint(ckptLSN wal.LSN, updates []bwtree.MappingUpdate) error {
	// Rough per-update encoded size: ids(16) + base loc(17) + delta count
	// and a handful of delta locs. Cap chunks well under the extent size.
	maxPer := (n.store.ExtentSize() - 512) / 64
	if maxPer < 8 {
		maxPer = 8
	}
	for start := 0; ; start += maxPer {
		end := start + maxPer
		if end > len(updates) {
			end = len(updates)
		}
		chunk := updates[start:end]
		if _, err := n.logger.Log(&wal.Record{
			Type:    wal.RecordCheckpoint,
			CkptLSN: ckptLSN,
			Value:   bwtree.EncodeMappingUpdates(chunk),
		}); err != nil {
			return err
		}
		if end >= len(updates) {
			return nil
		}
	}
}

func (n *RWNode) lastCheckpoint() wal.LSN {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastCkpt
}

// Checkpoints returns the number of checkpoints published.
func (n *RWNode) Checkpoints() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.checkpoints
}

// Write-path wrappers: graph.Store's mutating half, wrapped in the apply
// barrier.

// AddVertex writes a vertex through the replicated pipeline.
func (n *RWNode) AddVertex(v graph.Vertex) error {
	n.applyBarrier.RLock()
	defer n.applyBarrier.RUnlock()
	return n.engine.AddVertex(v)
}

// AddEdge writes an edge through the replicated pipeline.
func (n *RWNode) AddEdge(e graph.Edge) error {
	n.applyBarrier.RLock()
	defer n.applyBarrier.RUnlock()
	return n.engine.AddEdge(e)
}

// DeleteEdge deletes an edge through the replicated pipeline.
func (n *RWNode) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	n.applyBarrier.RLock()
	defer n.applyBarrier.RUnlock()
	return n.engine.DeleteEdge(src, typ, dst)
}

// ApplyBatch applies a group of mutations through the replicated pipeline,
// committed as shared WAL groups (see core.Engine.ApplyBatch). The whole
// batch holds the apply barrier once, so a checkpoint horizon never cuts a
// batch in half between LSN assignment and memory apply.
func (n *RWNode) ApplyBatch(muts []graph.Mutation) error {
	n.applyBarrier.RLock()
	defer n.applyBarrier.RUnlock()
	return n.engine.ApplyBatch(muts)
}

// Read methods delegate to the engine directly (the RW node serves reads
// from its own memory).

// GetVertex reads a vertex.
func (n *RWNode) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return n.engine.GetVertex(id, typ)
}

// GetEdge reads an edge.
func (n *RWNode) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return n.engine.GetEdge(src, typ, dst)
}

// Neighbors streams out-neighbors.
func (n *RWNode) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return n.engine.Neighbors(src, typ, limit, fn)
}

// Degree returns out-degree.
func (n *RWNode) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return n.engine.Degree(src, typ)
}

var _ graph.Store = (*RWNode)(nil)

// RONode is a read-only node: a core.Replica fed by a WAL tailing loop.
// When tailing hits a hole — an LSN gap after a WAL trim outran this
// follower, or a lost WAL extent — the node resynchronizes by
// re-bootstrapping from the latest snapshot instead of serving a view with
// missing writes.
type RONode struct {
	store    *storage.Store
	cacheCap int

	// reader and minLSN are touched only under pollMu; minLSN skips records
	// a snapshot bootstrap already covers.
	reader *wal.Reader
	minLSN wal.LSN

	// pollMu serializes WAL polls: the background loop and manual Poll
	// calls share one reader cursor and must apply records in LSN order.
	pollMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// mu guards the fields below; replica is swapped wholesale by a resync.
	mu      sync.Mutex
	replica *core.Replica
	lastErr error
	resyncs int64
}

// NewRONode attaches a replica to the shared store, polling the WAL every
// interval. cacheCapacity bounds the replica's page cache (0 = unlimited).
func NewRONode(st *storage.Store, interval time.Duration, cacheCapacity int) *RONode {
	n := &RONode{
		store:    st,
		cacheCap: cacheCapacity,
		replica:  core.NewReplica(st, cacheCapacity),
		reader:   wal.NewReader(st),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go n.pollLoop(interval)
	return n
}

func (n *RONode) pollLoop(interval time.Duration) {
	defer close(n.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			if err := n.Poll(); err != nil {
				n.mu.Lock()
				n.lastErr = err
				n.mu.Unlock()
			}
		}
	}
}

// Poll synchronously drains the WAL into the replica, one commit group at
// a time: each group is applied as a unit before the replica's high LSN
// advances past it, so a reader gated on WaitVisible never observes part
// of a leader batch. Torn entries and retry duplicates are absorbed by the
// reader; on a log hole (LSN gap or lost WAL extent) the node applies what
// it read and then resyncs from the latest snapshot.
func (n *RONode) Poll() error {
	n.pollMu.Lock()
	defer n.pollMu.Unlock()
	groups, err := n.reader.PollGroups()
	rep := n.Replica()
	for _, grp := range groups {
		if n.minLSN > 0 {
			// A group can straddle the snapshot horizon; replay only the
			// suffix the snapshot does not cover.
			filtered := grp[:0]
			for _, r := range grp {
				if r.LSN > n.minLSN {
					filtered = append(filtered, r)
				}
			}
			if grp = filtered; len(grp) == 0 {
				continue
			}
		}
		if aerr := rep.ApplyGroup(grp); aerr != nil {
			return aerr
		}
	}
	if err != nil {
		var gap *wal.GapError
		if errors.As(err, &gap) || errors.Is(err, storage.ErrExtentLost) {
			if rerr := n.resyncLocked(); rerr != nil {
				return fmt.Errorf("replication: follower hit %v and resync failed: %w", err, rerr)
			}
			return nil
		}
		return err
	}
	return nil
}

// Resync re-bootstraps the follower from the latest snapshot. A failover
// publishes a new snapshot whose physical page-ID space differs from the
// deposed leader's, so followers attached before the failover call this to
// switch onto the new leader's bootstrap point instead of tailing records
// that reference pages they never mapped.
func (n *RONode) Resync() error {
	n.pollMu.Lock()
	defer n.pollMu.Unlock()
	return n.resyncLocked()
}

// resyncLocked re-bootstraps the follower from the latest snapshot: fresh
// replica, fresh reader at the snapshot's WAL cursor. Caller holds pollMu.
func (n *RONode) resyncLocked() error {
	state, meta, found, err := LoadLatestSnapshot(n.store)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("replication: resync: no snapshot on store")
	}
	replica := core.NewReplica(n.store, n.cacheCap)
	if err := replica.LoadSnapshot(state, meta.horizon); err != nil {
		return err
	}
	reader := wal.NewReaderAt(n.store, meta.walCursor)
	reader.SetBase(meta.horizon)
	n.reader = reader
	n.minLSN = meta.horizon
	n.mu.Lock()
	n.replica = replica
	n.resyncs++
	n.mu.Unlock()
	metrics.Faults.Recoveries.Inc()
	return nil
}

// AppliedLSN returns the highest WAL LSN the follower has applied — the
// leader's LastLSN minus this is the replication lag (Fig. 13).
func (n *RONode) AppliedLSN() wal.LSN { return n.Replica().HighLSN() }

// Resyncs returns how many times the follower re-bootstrapped from a
// snapshot after hitting a log hole.
func (n *RONode) Resyncs() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.resyncs
}

// Err returns the last background polling error, if any.
func (n *RONode) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr
}

// Stop halts the polling loop.
func (n *RONode) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

// Replica exposes the underlying replica for reads. The pointer is
// re-fetched per call: a resync replaces the replica wholesale.
func (n *RONode) Replica() *core.Replica {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.replica
}

// WaitVisible blocks until the replica has incorporated WAL records up to
// lsn or the timeout elapses; it reports whether the horizon was reached.
// Used to measure leader-follower synchronization latency (Fig. 13).
func (n *RONode) WaitVisible(lsn wal.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.Replica().HighLSN() >= lsn {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return n.Replica().HighLSN() >= lsn
}

// LoggerStats exposes the group-commit batch counters (experiments).
func (n *RWNode) LoggerStats() (batches, records int64) { return n.logger.BatchStats() }
