package replication

import (
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
)

// Cluster is a multi-RW deployment (§3.1): write requests are distributed
// across distinct RW nodes by hashing the source vertex, each RW node owns
// its own shared-storage volume and WAL, and read-only nodes attach per
// shard. The Cluster itself implements graph.Store for the write/serve
// path; ReadView bundles one RO node per shard for scale-out reads.
type Cluster struct {
	// mu guards shards: Failover swaps a shard's leader in place while
	// routed writes keep arriving. stores is immutable after construction.
	mu     sync.RWMutex
	shards []*RWNode
	stores []*storage.Store

	failovers atomic.Int64
}

// NewCluster creates n RW shards with identical options. storageOpts may
// be nil for defaults.
func NewCluster(n int, storageOpts *storage.Options, opts RWOptions) (*Cluster, error) {
	if n < 1 {
		n = 1
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		var so storage.Options
		if storageOpts != nil {
			so = *storageOpts
		}
		st := storage.Open(&so)
		rw, err := NewRWNode(st, opts)
		if err != nil {
			c.Stop()
			st.Close()
			return nil, err
		}
		c.shards = append(c.shards, rw)
		c.stores = append(c.stores, st)
	}
	return c, nil
}

// Stop halts every shard.
func (c *Cluster) Stop() {
	c.mu.Lock()
	shards, stores := c.shards, c.stores
	c.shards = nil
	c.stores = nil
	c.mu.Unlock()
	for i, rw := range shards {
		rw.Stop()
		stores[i].Close()
	}
}

// Shards returns the number of RW nodes.
func (c *Cluster) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.shards)
}

// shardAt returns the current leader of shard i.
func (c *Cluster) shardAt(i int) *RWNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shards[i]
}

// Leader returns the current leader of shard i. Failover may replace it
// at any moment; callers that need a stable leader for a sequence of
// operations should take it once and accept ErrFenced from a deposed one.
func (c *Cluster) Leader(i int) *RWNode { return c.shardAt(i) }

// Store returns shard i's shared-storage volume. Stores are immutable
// across failovers (a promoted leader reopens the same volume), so this
// is the stable handle for WAL replay and chaos oracles.
func (c *Cluster) Store(i int) *storage.Store {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stores[i]
}

// ReadEpochs samples every shard's released read epoch, index-aligned
// with the shard order. The components are sampled one shard at a time —
// consistency of the vector comes from each component being a released
// group boundary of its own WAL stream, not from cross-shard atomicity.
func (c *Cluster) ReadEpochs() []uint64 {
	out := make([]uint64, c.Shards())
	for i := range out {
		out[i] = uint64(c.shardAt(i).Engine().ReadEpoch())
	}
	return out
}

// shard routes a vertex to its owning RW node (Fibonacci hashing).
func (c *Cluster) shard(id graph.VertexID) *RWNode {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := uint64(id) * 0x9E3779B97F4A7C15
	return c.shards[h%uint64(len(c.shards))]
}

func (c *Cluster) shardIndex(id graph.VertexID) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(c.shards)))
}

// AddVertex implements graph.Store.
func (c *Cluster) AddVertex(v graph.Vertex) error { return c.shard(v.ID).AddVertex(v) }

// GetVertex implements graph.Store.
func (c *Cluster) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return c.shard(id).GetVertex(id, typ)
}

// AddEdge implements graph.Store: edges live with their source vertex.
func (c *Cluster) AddEdge(e graph.Edge) error { return c.shard(e.Src).AddEdge(e) }

// GetEdge implements graph.Store.
func (c *Cluster) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return c.shard(src).GetEdge(src, typ, dst)
}

// DeleteEdge implements graph.Store.
func (c *Cluster) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	return c.shard(src).DeleteEdge(src, typ, dst)
}

// Neighbors implements graph.Store.
func (c *Cluster) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return c.shard(src).Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Store.
func (c *Cluster) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return c.shard(src).Degree(src, typ)
}

var _ graph.Store = (*Cluster)(nil)

// Checkpoint checkpoints every shard.
func (c *Cluster) Checkpoint() error {
	for i, n := 0, c.Shards(); i < n; i++ {
		if err := c.shardAt(i).Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// LastLSNs returns each shard's assigned-LSN horizon, index-aligned with
// the shard order.
func (c *Cluster) LastLSNs() []uint64 {
	out := make([]uint64, c.Shards())
	for i := range out {
		out[i] = uint64(c.shardAt(i).LastLSN())
	}
	return out
}

// ReadView is one read-only node per shard, routing reads by the same
// hash as the cluster routes writes. Multiple ReadViews scale read
// throughput, each with strong consistency against its shard's WAL.
type ReadView struct {
	cluster *Cluster
	ros     []*RONode
}

// OpenReadView attaches one RO node to every shard.
func (c *Cluster) OpenReadView(pollInterval time.Duration, cacheCapacity int) (*ReadView, error) {
	v := &ReadView{cluster: c}
	for _, st := range c.stores {
		ro, err := NewRONodeFromSnapshot(st, pollInterval, cacheCapacity)
		if err != nil {
			v.Stop()
			return nil, err
		}
		v.ros = append(v.ros, ro)
	}
	return v, nil
}

// Stop detaches every RO node.
func (v *ReadView) Stop() {
	for _, ro := range v.ros {
		ro.Stop()
	}
	v.ros = nil
}

// Sync drains every shard's WAL so subsequent reads observe everything
// the cluster has acknowledged.
func (v *ReadView) Sync() error {
	for _, ro := range v.ros {
		if err := ro.Poll(); err != nil {
			return err
		}
	}
	return nil
}

// WaitVisible blocks until every shard replica reaches its shard's current
// horizon or the timeout elapses.
func (v *ReadView) WaitVisible(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for i, ro := range v.ros {
		lsn := v.cluster.shardAt(i).LastLSN()
		rem := time.Until(deadline)
		if rem <= 0 || !ro.WaitVisible(lsn, rem) {
			return false
		}
	}
	return true
}

func (v *ReadView) replica(src graph.VertexID) *core.Replica {
	return v.ros[v.cluster.shardIndex(src)].Replica()
}

// GetVertex reads a vertex from the owning shard's replica.
func (v *ReadView) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return v.replica(id).GetVertex(id, typ)
}

// GetEdge reads one edge.
func (v *ReadView) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return v.replica(src).GetEdge(src, typ, dst)
}

// Neighbors streams out-neighbors.
func (v *ReadView) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return v.replica(src).Neighbors(src, typ, limit, fn)
}

// Degree returns out-degree.
func (v *ReadView) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return v.replica(src).Degree(src, typ)
}

// AsStore returns a read-only graph.Store view for traversal helpers and
// pattern matching across shards.
func (v *ReadView) AsStore() graph.Store { return roView{v} }

type roView struct{ v *ReadView }

func (s roView) AddVertex(graph.Vertex) error { return errViewReadOnly }
func (s roView) AddEdge(graph.Edge) error     { return errViewReadOnly }
func (s roView) DeleteEdge(graph.VertexID, graph.EdgeType, graph.VertexID) error {
	return errViewReadOnly
}
func (s roView) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return s.v.GetVertex(id, typ)
}
func (s roView) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return s.v.GetEdge(src, typ, dst)
}
func (s roView) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return s.v.Neighbors(src, typ, limit, fn)
}
func (s roView) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return s.v.Degree(src, typ)
}

type viewError string

func (e viewError) Error() string { return string(e) }

const errViewReadOnly = viewError("replication: read view is read-only")
