package replication

import (
	"time"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/netsim"
)

// ForwardingCluster models the previous-generation ByteGraph's
// leader-follower synchronization (§2.3): write commands are forwarded
// asynchronously from the RW node to every RO node over the datacenter
// network and replayed there. The path is fire-and-forget; packet loss
// silently drops updates, which is why it provides only eventual
// consistency — the behaviour the Fig. 12 recall experiment quantifies.
type ForwardingCluster struct {
	leader    graph.Store
	followers []graph.Store
	links     []*netsim.Link
}

// NewForwardingCluster wires a leader store to follower stores through
// lossy links. followers[i] receives commands over links[i].
func NewForwardingCluster(leader graph.Store, followers []graph.Store, links []*netsim.Link) *ForwardingCluster {
	if len(followers) != len(links) {
		panic("replication: followers and links must pair up")
	}
	return &ForwardingCluster{leader: leader, followers: followers, links: links}
}

// AddEdge applies the edge on the leader and forwards the command to every
// follower (asynchronously, like Gremlin command forwarding).
func (c *ForwardingCluster) AddEdge(e graph.Edge) error {
	if err := c.leader.AddEdge(e); err != nil {
		return err
	}
	for i, link := range c.links {
		f := c.followers[i]
		link.Send(func() { _ = f.AddEdge(e) })
	}
	return nil
}

// AddVertex applies and forwards a vertex insert.
func (c *ForwardingCluster) AddVertex(v graph.Vertex) error {
	if err := c.leader.AddVertex(v); err != nil {
		return err
	}
	for i, link := range c.links {
		f := c.followers[i]
		link.Send(func() { _ = f.AddVertex(v) })
	}
	return nil
}

// Leader returns the leader store.
func (c *ForwardingCluster) Leader() graph.Store { return c.leader }

// Follower returns follower i.
func (c *ForwardingCluster) Follower(i int) graph.Store { return c.followers[i] }

// LinkStats aggregates the links' loss accounting.
func (c *ForwardingCluster) LinkStats() netsim.LinkStats {
	var out netsim.LinkStats
	for _, l := range c.links {
		s := l.Stats()
		out.Sent += s.Sent
		out.Dropped += s.Dropped
		out.Delivered += s.Delivered
	}
	return out
}

// Recall measures, for each follower, the fraction of the given edges it
// can read — the Fig. 12 metric. wait allows in-flight deliveries to land
// before measuring.
func (c *ForwardingCluster) Recall(edges []graph.Edge, wait time.Duration) []float64 {
	time.Sleep(wait)
	out := make([]float64, len(c.followers))
	for i, f := range c.followers {
		found := 0
		for _, e := range edges {
			if _, ok, _ := f.GetEdge(e.Src, e.Type, e.Dst); ok {
				found++
			}
		}
		if len(edges) > 0 {
			out[i] = float64(found) / float64(len(edges))
		}
	}
	return out
}

// WALRecall measures the same metric for a BG3 RW/RO pair: the fraction of
// edges an RO node can read after polling. Shared-storage WAL shipping is
// immune to packet loss, so this is 1.0 by construction; the experiment
// verifies it end to end.
func WALRecall(ro *core.Replica, edges []graph.Edge) float64 {
	if len(edges) == 0 {
		return 1
	}
	found := 0
	for _, e := range edges {
		if _, ok, _ := ro.GetEdge(e.Src, e.Type, e.Dst); ok {
			found++
		}
	}
	return float64(found) / float64(len(edges))
}
