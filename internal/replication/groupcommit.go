// Package replication implements BG3's I/O-efficient leader–follower
// synchronization (§3.4) and the legacy command-forwarding mechanism of
// the previous-generation ByteGraph, which it is compared against in the
// Fig. 12–14 experiments.
//
// The BG3 path: the RW node writes every modification to a WAL on shared
// storage through a group-commit logger (one storage round trip covers a
// whole batch of records); RO nodes tail the WAL and lazily replay it.
// Dirty pages are flushed by a background thread and announced through
// checkpoint records carrying mapping-table updates, after which RO nodes
// discard the replayed WAL prefix. Because the WAL lives on strongly
// consistent shared storage, an RO node never misses a write — unlike the
// legacy path, which forwards commands over a lossy network.
package replication

import (
	"errors"
	"sync"
	"time"

	"bg3/internal/metrics"
	"bg3/internal/wal"
)

// ErrLoggerStopped is returned for records caught in a logger shutdown.
var ErrLoggerStopped = errors.New("replication: group-commit logger stopped")

// commitReq is one record awaiting group commit.
type commitReq struct {
	rec  *wal.Record
	at   time.Time // when the record was enqueued; commit latency base
	done chan error
}

// GroupCommitLogger batches WAL records into single storage appends and is
// the node's LSN authority. LogAsync assigns the LSN immediately — callers
// hold their page latch only for that instant — and returns a wait
// function that blocks until the record's batch is durable; Log is the
// synchronous convenience wrapper. Concurrent callers share one storage
// round trip, which is how the RW node sustains tens of thousands of
// writes per second against millisecond-latency cloud storage.
type GroupCommitLogger struct {
	w        *wal.Writer
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	nextLSN wal.LSN
	pending []commitReq
	wake    chan struct{}
	stopped bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	statsMu sync.Mutex
	batches int64
	records int64

	commitLat metrics.Histogram // enqueue to durable, per record
}

// NewGroupCommitLogger starts the committer goroutine. window is how long
// the committer waits to accumulate a batch after the first record arrives
// (0: commit as soon as the queue drains); maxBatch caps batch size
// (0: 512).
func NewGroupCommitLogger(w *wal.Writer, window time.Duration, maxBatch int) *GroupCommitLogger {
	if maxBatch <= 0 {
		maxBatch = 512
	}
	l := &GroupCommitLogger{
		w:        w,
		window:   window,
		maxBatch: maxBatch,
		nextLSN:  w.NextLSN(),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go l.run()
	return l
}

// LogAsync assigns the next LSN to rec, enqueues it for group commit, and
// returns the LSN plus a wait function that blocks until the record is
// durable. Enqueue order equals LSN order, so the WAL on storage is always
// LSN-sorted.
func (l *GroupCommitLogger) LogAsync(rec *wal.Record) (wal.LSN, func() error) {
	req := commitReq{rec: rec, at: time.Now(), done: make(chan error, 1)}
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return 0, func() error { return ErrLoggerStopped }
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.pending = append(l.pending, req)
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return rec.LSN, func() error { return <-req.done }
}

// Log implements bwtree.WALLogger: enqueue and wait for durability.
func (l *GroupCommitLogger) Log(rec *wal.Record) (wal.LSN, error) {
	lsn, wait := l.LogAsync(rec)
	if err := wait(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// LastLSN returns the most recently assigned LSN (0 if none).
func (l *GroupCommitLogger) LastLSN() wal.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

func (l *GroupCommitLogger) run() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.failPending(ErrLoggerStopped)
			return
		case <-l.wake:
		}
		// Let a batch accumulate for the window, then drain up to
		// maxBatch records per storage append until the queue is empty.
		if l.window > 0 {
			timer := time.NewTimer(l.window)
			select {
			case <-timer.C:
			case <-l.stop:
				timer.Stop()
				l.failPending(ErrLoggerStopped)
				return
			}
		}
		for {
			l.mu.Lock()
			n := len(l.pending)
			if n == 0 {
				l.mu.Unlock()
				break
			}
			if n > l.maxBatch {
				n = l.maxBatch
			}
			batch := make([]commitReq, n)
			copy(batch, l.pending[:n])
			l.pending = append(l.pending[:0], l.pending[n:]...)
			l.mu.Unlock()

			recs := make([]*wal.Record, n)
			for i, req := range batch {
				recs[i] = req.rec
			}
			err := l.w.AppendAssigned(recs)
			now := time.Now()
			for _, req := range batch {
				l.commitLat.Observe(now.Sub(req.at))
				req.done <- err
			}
			l.statsMu.Lock()
			l.batches++
			l.records += int64(n)
			l.statsMu.Unlock()
		}
	}
}

func (l *GroupCommitLogger) failPending(err error) {
	l.mu.Lock()
	l.stopped = true
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()
	for _, req := range pending {
		req.done <- err
	}
}

// Stop terminates the committer. Pending records fail.
func (l *GroupCommitLogger) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// BatchStats returns (batches committed, records committed).
func (l *GroupCommitLogger) BatchStats() (int64, int64) {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return l.batches, l.records
}

// CommitLatency returns the enqueue-to-durable latency histogram. It covers
// the full client-visible commit wait: the group window plus the storage
// append (and its retries).
func (l *GroupCommitLogger) CommitLatency() *metrics.Histogram { return &l.commitLat }

// RegisterMetrics exposes the logger's accounting under the "wal." prefix,
// next to the writer's per-append metrics.
func (l *GroupCommitLogger) RegisterMetrics(r *metrics.Registry) {
	r.RegisterHistogram("wal.commit_us", &l.commitLat)
	r.CounterFunc("wal.commit_batches", func() int64 { b, _ := l.BatchStats(); return b })
	r.CounterFunc("wal.commit_records", func() int64 { _, n := l.BatchStats(); return n })
	r.GaugeFunc("wal.last_lsn", func() int64 { return int64(l.LastLSN()) })
}
