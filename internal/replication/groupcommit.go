// Package replication implements BG3's I/O-efficient leader–follower
// synchronization (§3.4) and the legacy command-forwarding mechanism of
// the previous-generation ByteGraph, which it is compared against in the
// Fig. 12–14 experiments.
//
// The BG3 path: the RW node writes every modification to a WAL on shared
// storage through a group committer (one storage round trip covers a
// whole batch of records); RO nodes tail the WAL and lazily replay it,
// one commit group at a time. Dirty pages are flushed by a background
// thread and announced through checkpoint records carrying mapping-table
// updates, after which RO nodes discard the replayed WAL prefix. Because
// the WAL lives on strongly consistent shared storage, an RO node never
// misses a write — unlike the legacy path, which forwards commands over a
// lossy network.
package replication

import (
	"time"

	"bg3/internal/wal"
)

// ErrLoggerStopped is returned for records caught in a logger shutdown.
// It is the committer's stop error; errors.Is and == both match.
var ErrLoggerStopped = wal.ErrCommitterStopped

// GroupCommitLogger is the node-facing name for the WAL group committer,
// which moved into internal/wal so the engine and the forest can depend on
// it without importing replication.
type GroupCommitLogger = wal.GroupCommitter

// NewGroupCommitLogger starts a committer goroutine. window is how long
// the committer waits to accumulate a batch after the first record arrives
// (0: commit as soon as the queue drains); maxBatch caps batch size and
// doubles as the size trigger that cuts a flush early (0: 64).
func NewGroupCommitLogger(w *wal.Writer, window time.Duration, maxBatch int) *GroupCommitLogger {
	return wal.NewGroupCommitter(w, wal.GroupCommitterOptions{
		MaxDelay: window,
		MaxBatch: maxBatch,
	})
}
