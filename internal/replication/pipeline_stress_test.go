package replication

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// TestStressPipelinedCommitRacingPromote is the promotion-fence stress test
// with the commit pipeline wide open: 32 writer goroutines hammer a leader
// whose committer keeps up to 4 group appends in flight over slow storage,
// and a follower is promoted mid-pipeline (run under -race). On top of the
// serial test's contract, this pins the pipelined failure mode:
//
//   - the pipeline genuinely overlapped appends (mean in-flight > 1), so
//     the fence really did land with several groups outstanding;
//   - groups that were durable behind the fence-rejected one (post-gap
//     debris) are never resurrected — the promotion's epoch bump fences
//     them, and the delivered WAL stays a gapless LSN sequence;
//   - a follower replaying the post-failover WAL matches the promoted
//     leader exactly (model-oracle equivalence).
func TestStressPipelinedCommitRacingPromote(t *testing.T) {
	const writers = 32

	st := storage.Open(&storage.Options{WriteLatency: 500 * time.Microsecond})
	defer st.Close()
	opts := RWOptions{
		Engine:        core.Options{Tree: bwtree.Config{MaxPageEntries: 32}},
		CommitWindow:  100 * time.Microsecond,
		MaxBatch:      8,
		PipelineDepth: 4,
	}
	old, err := NewRWNode(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Stop()
	if _, err := old.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}

	edgeKey := func(src, dst graph.VertexID) string { return fmt.Sprintf("e|%d|%d", src, dst) }

	// Each writer owns src 200+w: its model slice is race-free. Writers run
	// until the fence rejects them; the rejected op is in-doubt.
	type writerResult struct {
		model      map[string][]byte
		inDoubt    string
		inDoubtVal []byte
		err        error
	}
	results := make([]writerResult, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		results[w].model = make(map[string][]byte)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := graph.VertexID(200 + w)
			for i := 0; ; i++ {
				dst := graph.VertexID(i % 64)
				val := []byte{byte(w), byte(i), byte(i >> 8)}
				err := old.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeFollow,
					Props: graph.Properties{{Name: "p", Value: val}}})
				if err != nil {
					results[w].err = err
					results[w].inDoubt = edgeKey(src, dst)
					results[w].inDoubtVal = val
					return
				}
				results[w].model[edgeKey(src, dst)] = val
			}
		}(w)
	}

	// Let the pipeline fill, then promote a follower over the old leader
	// while several group appends are in flight.
	time.Sleep(10 * time.Millisecond)
	ro, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	next, err := Promote(ro, opts)
	if err != nil {
		t.Fatalf("promote under pipelined write load: %v", err)
	}
	defer next.Stop()
	wg.Wait()

	// One epoch for the promotion itself, one more if its recovery found
	// durable post-gap debris from the killed pipeline and bumped the epoch
	// to fence it.
	if e := next.Epoch(); e != 1 && e != 2 {
		t.Fatalf("promoted epoch = %d, want 1 (clean tail) or 2 (debris fenced)", e)
	}
	if mean := old.Logger().InflightUtilization().Mean(); mean <= 1 {
		t.Errorf("old leader's mean in-flight groups = %.2f, want > 1: the promotion never raced a full pipeline", mean)
	}
	acked := 0
	for w := range results {
		r := &results[w]
		if r.err == nil {
			t.Fatalf("writer %d stopped without an error; the fence let it run forever", w)
		}
		if !errors.Is(r.err, storage.ErrFenced) && !errors.Is(r.err, wal.ErrWriterFailed) {
			t.Fatalf("writer %d racing the fence got %v; want ErrFenced or ErrWriterFailed", w, r.err)
		}
		acked += len(r.model)
	}
	if acked == 0 {
		t.Fatal("no write was ever acknowledged before the fence; the race is vacuous")
	}
	t.Logf("fence cut off %d writers after %d acked writes; epoch %d, mean in-flight %.2f",
		writers, acked, next.Epoch(), old.Logger().InflightUtilization().Mean())

	// Post-failover workload on the new leader, on dsts disjoint from the
	// racing writes.
	postModel := make(map[string][]byte)
	for w := 0; w < writers; w++ {
		src := graph.VertexID(200 + w)
		for i := 0; i < 8; i++ {
			dst := graph.VertexID(64 + i)
			val := []byte{'n', byte(w), byte(i)}
			if err := next.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeFollow,
				Props: graph.Properties{{Name: "p", Value: val}}}); err != nil {
				t.Fatalf("post-failover write: %v", err)
			}
			postModel[edgeKey(src, dst)] = val
		}
	}

	// Every acked write survives; the single fence-rejected op per writer is
	// in-doubt (its data record may have been durable in the gapless prefix
	// while a later record of the same op was cut off); anything else is a
	// phantom — in particular, nothing from a fenced post-gap debris group
	// may ever surface.
	engine := next.Engine()
	for w := range results {
		r := &results[w]
		src := graph.VertexID(200 + w)
		seen := make(map[string][]byte)
		err := engine.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			seen[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range r.model {
			got, ok := seen[k]
			if !ok {
				t.Fatalf("writer %d: acked write %q lost across pipelined promotion", w, k)
			}
			if string(got) != string(want) &&
				!(k == r.inDoubt && string(got) == string(r.inDoubtVal)) {
				t.Fatalf("writer %d: acked write %q = %x, want %x", w, k, got, want)
			}
		}
		for k, got := range seen {
			if _, ok := r.model[k]; ok {
				continue
			}
			if _, ok := postModel[k]; ok {
				continue
			}
			if k == r.inDoubt && string(got) == string(r.inDoubtVal) {
				continue // the in-doubt op landed in the gapless prefix; legal
			}
			t.Fatalf("writer %d: phantom edge %q = %x (debris resurrected or never acked)", w, k, got)
		}
	}

	// The durable log through a reader: delivery is a gapless LSN sequence
	// up to the promoted committer's head. Unlike the serial test, fenced
	// skips are legal here — they are exactly the post-gap debris groups the
	// epoch bump retired — but the delivered sequence must not show a seam.
	reader := wal.NewReader(st)
	reader.SetBase(0)
	groups, err := reader.PollGroups()
	if err != nil {
		t.Fatal(err)
	}
	var lsn wal.LSN
	for _, grp := range groups {
		for _, rec := range grp {
			lsn++
			if rec.LSN != lsn {
				t.Fatalf("WAL record has LSN %d, want %d: sequence must stay gapless across the fence", rec.LSN, lsn)
			}
		}
	}
	if last := next.LastLSN(); lsn != last {
		t.Fatalf("WAL delivered %d records but the promoted committer assigned up to LSN %d", lsn, last)
	}
	if reader.Epoch() != next.Epoch() {
		t.Fatalf("log tail epoch = %d, want %d", reader.Epoch(), next.Epoch())
	}
	t.Logf("replayed %d records; %d fenced debris records skipped", lsn, reader.FencedSkips())

	// Model-oracle replay: a follower bootstraps from the promotion's
	// snapshot and drains the post-failover WAL tail; its state must match
	// the promoted leader's exactly.
	follower, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	if err := follower.Poll(); err != nil {
		t.Fatal(err)
	}
	replica := follower.Replica()
	for w := 0; w < writers; w++ {
		src := graph.VertexID(200 + w)
		fromReplica := make(map[string][]byte)
		err := replica.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			fromReplica[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		fromLeader := make(map[string][]byte)
		err = engine.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			fromLeader[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(fromReplica) != len(fromLeader) {
			t.Fatalf("src %d: replay has %d edges, leader has %d", src, len(fromReplica), len(fromLeader))
		}
		for k, v := range fromLeader {
			if string(fromReplica[k]) != string(v) {
				t.Fatalf("src %d: replayed %q = %x, leader has %x", src, k, fromReplica[k], v)
			}
		}
	}
}
