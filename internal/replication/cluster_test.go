package replication

import (
	"testing"
	"time"

	"bg3/internal/graph"
)

func newTestCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(shards, nil, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterShardsWrites(t *testing.T) {
	c := newTestCluster(t, 3)
	for i := 0; i < 120; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	// Every shard received a share (Fibonacci hashing over sequential IDs).
	lsns := c.LastLSNs()
	if len(lsns) != 3 {
		t.Fatalf("shards = %d", len(lsns))
	}
	for i, l := range lsns {
		if l == 0 {
			t.Fatalf("shard %d received no writes", i)
		}
	}
	// Reads through the cluster see everything.
	for i := 0; i < 120; i++ {
		if _, ok, _ := c.GetEdge(graph.VertexID(i), graph.ETypeFollow, graph.VertexID(i+1)); !ok {
			t.Fatalf("edge %d lost", i)
		}
	}
}

func TestReadViewStrongConsistency(t *testing.T) {
	c := newTestCluster(t, 2)
	view, err := c.OpenReadView(time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Stop()

	for i := 0; i < 200; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID(i), Type: graph.ETypeTransfer}); err != nil {
			t.Fatal(err)
		}
	}
	if err := view.Sync(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for src := 0; src < 10; src++ {
		deg, err := view.Degree(graph.VertexID(src), graph.ETypeTransfer)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Degree(graph.VertexID(src), graph.ETypeTransfer)
		if err != nil {
			t.Fatal(err)
		}
		if deg != want {
			t.Fatalf("src %d: view %d vs cluster %d", src, deg, want)
		}
		total += deg
	}
	if total != 200 {
		t.Fatalf("total = %d", total)
	}
	// The read-only adapter rejects writes.
	if err := view.AsStore().AddEdge(graph.Edge{Src: 1, Dst: 2, Type: 1}); err == nil {
		t.Fatal("read view accepted a write")
	}
}

func TestReadViewCrossShardTraversal(t *testing.T) {
	c := newTestCluster(t, 4)
	// A chain whose hops land on different shards.
	for i := 0; i < 12; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	view, err := c.OpenReadView(time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Stop()
	if !view.WaitVisible(2 * time.Second) {
		t.Fatal("view lagging")
	}
	reached, err := graph.KHop(view.AsStore(), 0, graph.ETypeFollow, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 12 {
		t.Fatalf("cross-shard traversal reached %d, want 12", len(reached))
	}
}

func TestReadViewAfterSnapshots(t *testing.T) {
	c := newTestCluster(t, 2)
	for i := 0; i < 100; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i % 6), Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	for _, rw := range c.shards {
		if _, err := rw.WriteSnapshot(); err != nil {
			t.Fatal(err)
		}
		rw.TrimWAL()
	}
	// Views opened after snapshot+trim bootstrap from the snapshots.
	view, err := c.OpenReadView(time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Stop()
	if !view.WaitVisible(2 * time.Second) {
		t.Fatal("view lagging")
	}
	total := 0
	for src := 0; src < 6; src++ {
		d, err := view.Degree(graph.VertexID(src), graph.ETypeLike)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
}
