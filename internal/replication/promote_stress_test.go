package replication

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// TestStressPromotionFencesConcurrentWriters races a promotion against 16
// writer goroutines that keep hammering the old leader (run under -race).
// The contract checked end to end:
//
//   - every write acknowledged by the old leader survives onto the promoted
//     leader — the fence cannot revoke an ack;
//   - every writer racing the fence observes an explicit error wrapping
//     storage.ErrFenced (first loser) or wal.ErrWriterFailed (after the
//     writer fail-stops) — never a silent drop, never a late ack;
//   - the one write per writer that the fence rejected is in-doubt, exactly
//     like a crash: its data record may have committed durably before a
//     structural record (a page split) hit the fence, so it may surface
//     with its own value — but nothing beyond that one op ever appears;
//   - the durable WAL stays a gapless LSN sequence across the epoch bump
//     with no zombie records for a reader to skip, and a follower replaying
//     the post-failover WAL from the promotion's snapshot reproduces
//     exactly the promoted leader's state plus the post-failover workload.
func TestStressPromotionFencesConcurrentWriters(t *testing.T) {
	const writers = 16

	st := storage.Open(&storage.Options{WriteLatency: 100 * time.Microsecond})
	defer st.Close()
	opts := RWOptions{
		Engine:       core.Options{Tree: bwtree.Config{MaxPageEntries: 32}},
		CommitWindow: 100 * time.Microsecond,
		MaxBatch:     32,
	}
	old, err := NewRWNode(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Stop()
	if _, err := old.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}

	edgeKey := func(src, dst graph.VertexID) string { return fmt.Sprintf("e|%d|%d", src, dst) }

	// Each writer owns src 100+w and dsts [0,64): its model slice is
	// race-free. Writers run until the fence rejects them — with no faults
	// injected, the only possible error is the promotion's fence.
	type writerResult struct {
		model      map[string][]byte // acked writes: must all survive
		inDoubt    string            // key of the op the fence rejected: maybe-semantics
		inDoubtVal []byte
		err        error
	}
	results := make([]writerResult, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		results[w].model = make(map[string][]byte)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := graph.VertexID(100 + w)
			for i := 0; ; i++ {
				dst := graph.VertexID(i % 64)
				val := []byte{byte(w), byte(i), byte(i >> 8)}
				err := old.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeFollow,
					Props: graph.Properties{{Name: "p", Value: val}}})
				if err != nil {
					results[w].err = err
					results[w].inDoubt = edgeKey(src, dst)
					results[w].inDoubtVal = val
					return
				}
				results[w].model[edgeKey(src, dst)] = val
			}
		}(w)
	}

	// Let the writers build up state, then promote a follower over them.
	time.Sleep(5 * time.Millisecond)
	ro, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	next, err := Promote(ro, opts)
	if err != nil {
		t.Fatalf("promote under write load: %v", err)
	}
	defer next.Stop()
	wg.Wait()

	if next.Epoch() != 1 {
		t.Fatalf("promoted epoch = %d, want 1", next.Epoch())
	}
	acked := 0
	for w := range results {
		r := &results[w]
		if r.err == nil {
			t.Fatalf("writer %d stopped without an error; the fence let it run forever", w)
		}
		if !errors.Is(r.err, storage.ErrFenced) && !errors.Is(r.err, wal.ErrWriterFailed) {
			t.Fatalf("writer %d racing the fence got %v; want ErrFenced or ErrWriterFailed", w, r.err)
		}
		acked += len(r.model)
	}
	if acked == 0 {
		t.Fatal("no write was ever acknowledged before the fence; the race is vacuous")
	}
	t.Logf("fence cut off %d writers after %d acked writes", writers, acked)

	// Post-failover workload on the new leader: the log must keep growing
	// under the new epoch, on dsts disjoint from the racing writes.
	postModel := make(map[string][]byte)
	for w := 0; w < writers; w++ {
		src := graph.VertexID(100 + w)
		for i := 0; i < 8; i++ {
			dst := graph.VertexID(64 + i)
			val := []byte{'n', byte(w), byte(i)}
			if err := next.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeFollow,
				Props: graph.Properties{{Name: "p", Value: val}}}); err != nil {
				t.Fatalf("post-failover write: %v", err)
			}
			postModel[edgeKey(src, dst)] = val
		}
	}

	// Every acked write survives; the single fence-rejected op per writer is
	// in-doubt — absent, holding an earlier acked value, or holding its own
	// value (its data record beat the fence, a structural record did not).
	// Anything else visible is a phantom.
	engine := next.Engine()
	for w := range results {
		r := &results[w]
		src := graph.VertexID(100 + w)
		seen := make(map[string][]byte)
		err := engine.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			seen[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range r.model {
			got, ok := seen[k]
			if !ok {
				t.Fatalf("writer %d: acked write %q lost across promotion", w, k)
			}
			if string(got) != string(want) &&
				!(k == r.inDoubt && string(got) == string(r.inDoubtVal)) {
				t.Fatalf("writer %d: acked write %q = %x, want %x", w, k, got, want)
			}
		}
		for k, got := range seen {
			if _, ok := r.model[k]; ok {
				continue
			}
			if _, ok := postModel[k]; ok {
				continue
			}
			if k == r.inDoubt && string(got) == string(r.inDoubtVal) {
				continue // the in-doubt op landed; legal
			}
			t.Fatalf("writer %d: phantom edge %q = %x (never acked by anyone)", w, k, got)
		}
	}

	// The durable log: gapless LSNs across the epoch bump, zero zombie
	// records (the storage fence admits nothing stale — reader-side skipping
	// is pure defense in depth), and a group-by-group replay into a fresh
	// replica that matches the promoted leader exactly.
	reader := wal.NewReader(st)
	groups, err := reader.PollGroups()
	if err != nil {
		t.Fatal(err)
	}
	var lsn wal.LSN
	for _, grp := range groups {
		for _, rec := range grp {
			lsn++
			if rec.LSN != lsn {
				t.Fatalf("WAL record has LSN %d, want %d: sequence must stay gapless across the fence", rec.LSN, lsn)
			}
		}
	}
	if last := next.LastLSN(); lsn != last {
		t.Fatalf("WAL holds %d records but the promoted committer assigned up to LSN %d", lsn, last)
	}
	if reader.FencedSkips() != 0 {
		t.Fatalf("durable WAL contains %d zombie records; the storage fence leaked bytes", reader.FencedSkips())
	}
	if reader.Epoch() != 1 {
		t.Fatalf("log tail epoch = %d, want 1", reader.Epoch())
	}

	// The model-oracle replay: a follower bootstraps from the promotion's
	// snapshot (the same way every real RO node adopts a new leader) and
	// drains the post-failover WAL tail; its state must match the promoted
	// leader's exactly, for every writer's keyspace.
	follower, err := NewRONodeFromSnapshot(st, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Stop()
	if err := follower.Poll(); err != nil {
		t.Fatal(err)
	}
	replica := follower.Replica()
	for w := 0; w < writers; w++ {
		src := graph.VertexID(100 + w)
		fromReplica := make(map[string][]byte)
		err := replica.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			fromReplica[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		fromLeader := make(map[string][]byte)
		err = engine.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			fromLeader[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(fromReplica) != len(fromLeader) {
			t.Fatalf("src %d: replay has %d edges, leader has %d", src, len(fromReplica), len(fromLeader))
		}
		for k, v := range fromLeader {
			if string(fromReplica[k]) != string(v) {
				t.Fatalf("src %d: replayed %q = %x, leader has %x", src, k, fromReplica[k], v)
			}
		}
	}
}

// TestStressConcurrentPromotions races several promotion attempts over the
// same store (run under -race): every attempt either wins a unique epoch or
// fails with an error wrapping storage.ErrFenced, and afterwards exactly
// one leader — the highest epoch — can append.
func TestStressConcurrentPromotions(t *testing.T) {
	st := storage.Open(nil)
	defer st.Close()
	opts := RWOptions{Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 32}}}
	seed, err := NewRWNode(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	seed.Stop()

	const attempts = 4
	nodes := make([]*RWNode, attempts)
	errs := make([]error, attempts)
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ro, err := NewRONodeFromSnapshot(st, time.Hour, 0)
			if err != nil {
				errs[i] = err
				return
			}
			nodes[i], errs[i] = Promote(ro, opts)
		}(i)
	}
	wg.Wait()

	// Each candidate holds a distinct epoch. The losers' engines are live
	// but fenced: their first append must fail explicitly. The candidate
	// holding the store's final epoch must still accept writes.
	final := st.StreamEpoch(storage.StreamWAL)
	winners := 0
	seen := make(map[uint64]bool)
	for i := 0; i < attempts; i++ {
		if errs[i] != nil {
			if !errors.Is(errs[i], storage.ErrFenced) {
				t.Fatalf("attempt %d failed oddly: %v", i, errs[i])
			}
			continue
		}
		n := nodes[i]
		defer n.Stop()
		if seen[n.Epoch()] {
			t.Fatalf("two promotions claim epoch %d", n.Epoch())
		}
		seen[n.Epoch()] = true
		werr := n.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeFollow})
		if n.Epoch() == final {
			winners++
			if werr != nil {
				t.Fatalf("final-epoch leader cannot write: %v", werr)
			}
		} else if werr == nil {
			t.Fatalf("deposed candidate at epoch %d (final %d) still appends", n.Epoch(), final)
		} else if !errors.Is(werr, storage.ErrFenced) && !errors.Is(werr, wal.ErrWriterFailed) {
			t.Fatalf("deposed candidate failed oddly: %v", werr)
		}
	}
	if winners != 1 {
		t.Fatalf("%d candidates can append; exactly one epoch may write", winners)
	}
}
