package replication

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
)

// TestPropertyReplicaEquivalence drives a replicated RW node with random
// operations interleaved with random checkpoints and snapshots, then
// verifies that a WAL-replay replica AND a snapshot-bootstrapped replica
// both agree exactly with the primary on every vertex's adjacency.
func TestPropertyReplicaEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
		rw, err := NewRWNode(st, RWOptions{
			Engine: core.Options{
				SplitThreshold: 20,
				Tree:           bwtree.Config{MaxPageEntries: 8, ConsolidateNum: 3},
			},
		})
		if err != nil {
			return false
		}
		defer rw.Stop()

		model := map[graph.VertexID]map[graph.VertexID]bool{}
		const vertices = 24
		for i := 0; i < 400; i++ {
			src := graph.VertexID(rng.Intn(vertices))
			dst := graph.VertexID(rng.Intn(vertices))
			switch rng.Intn(10) {
			case 0:
				if err := rw.DeleteEdge(src, graph.ETypeLike, dst); err != nil {
					return false
				}
				delete(model[src], dst)
			case 1:
				if err := rw.Checkpoint(); err != nil {
					return false
				}
			case 2:
				if _, err := rw.WriteSnapshot(); err != nil {
					return false
				}
			default:
				if err := rw.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeLike}); err != nil {
					return false
				}
				if model[src] == nil {
					model[src] = map[graph.VertexID]bool{}
				}
				model[src][dst] = true
			}
		}

		check := func(ro *RONode) bool {
			defer ro.Stop()
			if !ro.WaitVisible(rw.LastLSN(), 5*time.Second) {
				return false
			}
			for src := graph.VertexID(0); src < vertices; src++ {
				got := map[graph.VertexID]bool{}
				if err := ro.Replica().Neighbors(src, graph.ETypeLike, 0,
					func(d graph.VertexID, _ graph.Properties) bool {
						got[d] = true
						return true
					}); err != nil {
					return false
				}
				want := model[src]
				if len(got) != len(want) {
					return false
				}
				for d := range want {
					if !got[d] {
						return false
					}
				}
			}
			return true
		}

		full := NewRONode(st, time.Millisecond, 0)
		snap, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
		if err != nil {
			return false
		}
		return check(full) && check(snap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestRWNodeSurvivesStoreClose exercises the failure path: once the shared
// store refuses appends, writes fail cleanly and the node still shuts down.
func TestRWNodeSurvivesStoreClose(t *testing.T) {
	st := storage.Open(nil)
	rw, err := NewRWNode(st, RWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	var sawErr bool
	for i := 0; i < 5; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(100 + i), Type: graph.ETypeFollow}); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("writes succeeded against a closed store")
	}
	// Reads of in-memory state keep working.
	if deg, err := rw.Degree(1, graph.ETypeFollow); err != nil || deg < 20 {
		t.Fatalf("degree = %d %v", deg, err)
	}
	rw.Stop() // must not hang or panic
}

// TestROToleratesWALGap verifies that a replica attached after a TrimWAL
// (bootstrapping from the snapshot) never sees the trimmed prefix as an
// error and converges with later writes.
func TestROToleratesWALGap(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 11})
	rw, err := NewRWNode(st, RWOptions{
		Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 16, MaxInnerEntries: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	for round := 0; round < 4; round++ {
		for i := 0; i < 150; i++ {
			if err := rw.AddEdge(graph.Edge{
				Src: graph.VertexID(round), Dst: graph.VertexID(i), Type: graph.ETypeLike,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rw.WriteSnapshot(); err != nil {
			t.Fatal(err)
		}
		rw.TrimWAL()
	}
	ro, err := NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Stop()
	if !ro.WaitVisible(rw.LastLSN(), 5*time.Second) {
		t.Fatal("replica lagging")
	}
	for round := 0; round < 4; round++ {
		deg, err := ro.Replica().Degree(graph.VertexID(round), graph.ETypeLike)
		if err != nil || deg != 150 {
			t.Fatalf("round %d degree = %d %v", round, deg, err)
		}
	}
	if err := ro.Err(); err != nil {
		t.Fatal(fmt.Errorf("replica poll error: %w", err))
	}
}
