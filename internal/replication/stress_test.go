package replication

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// TestConcurrentWritersGroupCommitStress runs 32 writer goroutines — each on
// a disjoint keyspace, interleaving AddEdge, DeleteEdge, AddVertex, and
// ApplyBatch — against one RW node while reader goroutines scan, then checks
// the write pipeline end to end (run under -race):
//
//   - the durable WAL is gapless: LSNs 1..N with no holes or duplicates;
//   - replaying the WAL group-by-group into a fresh replica reproduces
//     exactly the state of a flat map[string][]byte model oracle;
//   - commits coalesced: mean group size > 4 with 32 writers against
//     storage write latency (the paper's write-side amortization).
func TestConcurrentWritersGroupCommitStress(t *testing.T) {
	const writers = 32
	opsPer := 32
	if testing.Short() {
		opsPer = 12
	}

	st := storage.Open(&storage.Options{WriteLatency: 200 * time.Microsecond})
	node, err := NewRWNode(st, RWOptions{
		Engine: core.Options{SplitThreshold: 24, Tree: bwtree.Config{MaxPageEntries: 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	edgeKey := func(src, dst graph.VertexID) string { return fmt.Sprintf("e|%d|%d", src, dst) }
	vertexKey := func(id graph.VertexID) string { return fmt.Sprintf("v|%d", id) }

	// Each writer owns src vertex 100+w, so its slice of the oracle is
	// race-free; the slices merge into one flat model after quiesce.
	models := make([]map[string][]byte, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		models[w] = make(map[string][]byte)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*977 + 1))
			src := graph.VertexID(100 + w)
			model := models[w]
			props := func(tag byte, i int) graph.Properties {
				return graph.Properties{{Name: "p", Value: []byte{tag, byte(i), byte(w)}}}
			}
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(4) {
				case 0: // single edge put
					dst := graph.VertexID(rng.Intn(64))
					ps := props('s', i)
					if err := node.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeFollow, Props: ps}); err != nil {
						t.Error(err)
						return
					}
					model[edgeKey(src, dst)] = ps[0].Value
				case 1: // single edge delete (possibly of a key never written)
					dst := graph.VertexID(rng.Intn(64))
					if err := node.DeleteEdge(src, graph.ETypeFollow, dst); err != nil {
						t.Error(err)
						return
					}
					delete(model, edgeKey(src, dst))
				case 2: // vertex put
					ps := props('v', i)
					if err := node.AddVertex(graph.Vertex{ID: src, Type: graph.VTypeUser, Props: ps}); err != nil {
						t.Error(err)
						return
					}
					model[vertexKey(src)] = ps[0].Value
				default: // batch: 4..11 mixed mutations, one commit group
					n := 4 + rng.Intn(8)
					muts := make([]graph.Mutation, 0, n)
					for j := 0; j < n; j++ {
						dst := graph.VertexID(rng.Intn(64))
						if rng.Intn(4) == 0 {
							muts = append(muts, graph.DeleteEdgeMut(src, graph.ETypeFollow, dst))
						} else {
							muts = append(muts, graph.AddEdgeMut(graph.Edge{
								Src: src, Dst: dst, Type: graph.ETypeFollow, Props: props(byte(j), i),
							}))
						}
					}
					if err := node.ApplyBatch(muts); err != nil {
						t.Error(err)
						return
					}
					for _, m := range muts {
						if m.Kind == graph.MutDeleteEdge {
							delete(model, edgeKey(src, m.Edge.Dst))
						} else {
							model[edgeKey(src, m.Edge.Dst)] = m.Edge.Props[0].Value
						}
					}
				}
			}
		}(w)
	}

	// Readers scan live state while the writers run; results are not
	// asserted (the view legitimately moves), only that reads never fail
	// and never race.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(r) + 5000))
			for {
				select {
				case <-stopRead:
					return
				default:
					time.Sleep(200 * time.Microsecond)
				}
				src := graph.VertexID(100 + rng.Intn(writers))
				if err := node.Neighbors(src, graph.ETypeFollow, 16, func(graph.VertexID, graph.Properties) bool { return true }); err != nil {
					t.Error(err)
					return
				}
				if _, err := node.Degree(src, graph.ETypeFollow); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	if t.Failed() {
		close(stopRead)
		readWG.Wait()
		return
	}

	// Phase 2: steady state. Phase 1 deliberately provokes migrations, whose
	// copy records commit synchronously one-by-one and drag the whole-run
	// group-size mean down; here 32 writers upsert their own vertex in
	// lockstep — no migrations, no structural records — and the coalescing
	// factor is measured over exactly this window via flush-counter deltas.
	b1, r1 := node.LoggerStats()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := graph.VertexID(100 + w)
			for i := 0; i < 24; i++ {
				ps := graph.Properties{{Name: "p", Value: []byte{'2', byte(i), byte(w)}}}
				if err := node.AddVertex(graph.Vertex{ID: src, Type: graph.VTypeUser, Props: ps}); err != nil {
					t.Error(err)
					return
				}
				models[w][vertexKey(src)] = ps[0].Value
			}
		}(w)
	}
	wg.Wait()
	b2, r2 := node.LoggerStats()
	close(stopRead)
	readWG.Wait()
	if t.Failed() {
		return
	}

	// Acceptance: with 32 concurrent writers against storage write latency,
	// commits must actually coalesce.
	if b2 == b1 {
		t.Fatal("steady-state phase issued no flushes")
	}
	if mean := float64(r2-r1) / float64(b2-b1); mean <= 4 {
		t.Errorf("steady-state mean group size = %.2f, want > 4 with %d writers", mean, writers)
	}

	// Quiesced. The WAL must be a gapless LSN sequence.
	recs, err := wal.NewReader(st).Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no WAL records after stress run")
	}
	for i, rec := range recs {
		if rec.LSN != wal.LSN(i+1) {
			t.Fatalf("WAL record %d has LSN %d: sequence must be gapless", i, rec.LSN)
		}
	}
	if last := node.LastLSN(); wal.LSN(len(recs)) != last {
		t.Fatalf("WAL holds %d records but the committer assigned up to LSN %d", len(recs), last)
	}

	// Replay the WAL group-by-group into a fresh replica and compare it
	// against the merged flat oracle.
	oracle := make(map[string][]byte)
	for _, m := range models {
		for k, v := range m {
			oracle[k] = v
		}
	}
	replica := core.NewReplica(st, 0)
	groups, err := wal.NewReader(st).PollGroups()
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range groups {
		if err := replica.ApplyGroup(grp); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := replica.HighLSN(), wal.LSN(len(recs)); got != want {
		t.Fatalf("replica HighLSN = %d, want %d", got, want)
	}

	got := make(map[string][]byte)
	for w := 0; w < writers; w++ {
		src := graph.VertexID(100 + w)
		err := replica.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, ps graph.Properties) bool {
			v, _ := ps.Get("p")
			got[edgeKey(src, dst)] = bytes.Clone(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if v, ok, err := replica.GetVertex(src, graph.VTypeUser); err != nil {
			t.Fatal(err)
		} else if ok {
			pv, _ := v.Props.Get("p")
			got[vertexKey(src)] = pv
		}
	}
	for k, want := range oracle {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("oracle key %q missing from replayed replica", k)
		}
		if string(gv) != string(want) {
			t.Fatalf("key %q = %x in replica, oracle says %x", k, gv, want)
		}
		delete(got, k)
	}
	for k := range got {
		t.Fatalf("replica holds %q which the oracle never committed", k)
	}
}
