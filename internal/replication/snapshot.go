package replication

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/forest"
	"bg3/internal/metrics"
	"bg3/internal/mvcc"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Snapshots let fresh RO nodes attach without replaying the WAL from the
// beginning, and let the RW node truncate the WAL prefix the snapshot
// covers. A snapshot is a group of records in the meta stream — one per
// tree plus a footer — identified by a generation number; the footer
// records the WAL horizon (every record at or below it is reflected in the
// snapshot) and the WAL cursor a bootstrapping replica should tail from.

const (
	snapRecTree   = 1
	snapRecFooter = 2
)

// Snapshot records are sealed with a CRC32 prefix before they hit the meta
// stream: a torn tail-of-extent append persists only a prefix of the
// record, and without a checksum that garbage is indistinguishable from a
// short-but-valid record. Readers drop records whose checksum does not
// cover their payload exactly, the same way the WAL drops torn frames.
func sealSnapRecord(payload []byte) []byte {
	out := make([]byte, 0, 4+len(payload))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// openSnapRecord returns the payload of a sealed record, or ok=false for
// torn or foreign data.
func openSnapRecord(data []byte) (payload []byte, ok bool) {
	if len(data) < 5 {
		return nil, false
	}
	if crc32.ChecksumIEEE(data[4:]) != binary.LittleEndian.Uint32(data) {
		return nil, false
	}
	return data[4:], true
}

// metaRetry bounds the retries a snapshot write spends absorbing transient
// storage failures. A snapshot that still fails is harmless — its footer
// never lands, so the previous snapshot stays authoritative — but cheap
// retries keep the snapshot cadence under fault injection.
func metaRetry() storage.RetryPolicy {
	p := storage.DefaultRetry
	p.OnRetry = func(int, error) { metrics.Faults.Retries.Inc() }
	return p
}

// appendMeta appends one sealed snapshot record with bounded retry.
func appendMeta(st *storage.Store, gen uint64, payload []byte) error {
	return metaRetry().Do("replication: snapshot append", func() error {
		_, err := st.Append(storage.StreamMeta, gen, sealSnapRecord(payload))
		return err
	})
}

// snapshotMeta is the decoded footer.
type snapshotMeta struct {
	generation uint64
	horizon    wal.LSN
	treeCount  int
	walCursor  storage.Cursor
}

func appendLoc(buf []byte, l storage.Loc) []byte {
	buf = append(buf, byte(l.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Extent))
	buf = binary.LittleEndian.AppendUint32(buf, l.Offset)
	buf = binary.LittleEndian.AppendUint32(buf, l.Length)
	return buf
}

func readLoc(buf []byte) (storage.Loc, []byte, error) {
	if len(buf) < 17 {
		return storage.Loc{}, nil, fmt.Errorf("replication: truncated loc in snapshot")
	}
	l := storage.Loc{
		Stream: storage.StreamID(buf[0]),
		Extent: storage.ExtentID(binary.LittleEndian.Uint64(buf[1:])),
		Offset: binary.LittleEndian.Uint32(buf[9:]),
		Length: binary.LittleEndian.Uint32(buf[13:]),
	}
	return l, buf[17:], nil
}

// encodeTreeSnapshot: kind[1] gen[8] tree[8] hasOwner[1] owner[8] init[1]
// nleaves[4] { loLen[2] lo base[17] nd[2] deltas[17]* }*
func encodeTreeSnapshot(gen uint64, ts core.TreeSnapshot, isInit bool) []byte {
	buf := []byte{snapRecTree}
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts.Tree))
	if ts.HasOwner {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts.Owner))
	if isInit {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts.Leaves)))
	for _, lf := range ts.Leaves {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lf.Lo)))
		buf = append(buf, lf.Lo...)
		buf = appendLoc(buf, lf.Base)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lf.Deltas)))
		for _, d := range lf.Deltas {
			buf = appendLoc(buf, d)
		}
	}
	return buf
}

func decodeTreeSnapshot(buf []byte) (gen uint64, ts core.TreeSnapshot, isInit bool, err error) {
	if len(buf) < 31 || buf[0] != snapRecTree {
		return 0, ts, false, fmt.Errorf("replication: malformed tree snapshot record")
	}
	gen = binary.LittleEndian.Uint64(buf[1:])
	ts.Tree = bwtree.TreeID(binary.LittleEndian.Uint64(buf[9:]))
	ts.HasOwner = buf[17] == 1
	ts.Owner = forest.OwnerID(binary.LittleEndian.Uint64(buf[18:]))
	isInit = buf[26] == 1
	n := binary.LittleEndian.Uint32(buf[27:])
	buf = buf[31:]
	for i := uint32(0); i < n; i++ {
		if len(buf) < 2 {
			return 0, ts, false, fmt.Errorf("replication: truncated leaf %d", i)
		}
		loLen := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		if len(buf) < int(loLen) {
			return 0, ts, false, fmt.Errorf("replication: truncated leaf lo %d", i)
		}
		var lf bwtree.LeafInfo
		if loLen > 0 {
			lf.Lo = append([]byte(nil), buf[:loLen]...)
		}
		buf = buf[loLen:]
		lf.Base, buf, err = readLoc(buf)
		if err != nil {
			return 0, ts, false, err
		}
		if len(buf) < 2 {
			return 0, ts, false, fmt.Errorf("replication: truncated delta count %d", i)
		}
		nd := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		for j := uint16(0); j < nd; j++ {
			var d storage.Loc
			d, buf, err = readLoc(buf)
			if err != nil {
				return 0, ts, false, err
			}
			lf.Deltas = append(lf.Deltas, d)
		}
		// Page ID travels in the leaf's Page field appended after deltas in
		// LeafInfo; encode/decode it explicitly below.
		ts.Leaves = append(ts.Leaves, lf)
	}
	return gen, ts, isInit, nil
}

// encodeFooter: kind[1] gen[8] horizon[8] treeCount[4] curExt[8] curIdx[4]
func encodeFooter(m snapshotMeta) []byte {
	buf := []byte{snapRecFooter}
	buf = binary.LittleEndian.AppendUint64(buf, m.generation)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.horizon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.treeCount))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.walCursor.Extent))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.walCursor.Index))
	return buf
}

func decodeFooter(buf []byte) (snapshotMeta, error) {
	if len(buf) != 33 || buf[0] != snapRecFooter {
		return snapshotMeta{}, fmt.Errorf("replication: malformed snapshot footer")
	}
	return snapshotMeta{
		generation: binary.LittleEndian.Uint64(buf[1:]),
		horizon:    wal.LSN(binary.LittleEndian.Uint64(buf[9:])),
		treeCount:  int(binary.LittleEndian.Uint32(buf[17:])),
		walCursor: storage.Cursor{
			Extent: storage.ExtentID(binary.LittleEndian.Uint64(buf[21:])),
			Index:  int(binary.LittleEndian.Uint32(buf[29:])),
		},
	}, nil
}

// snapshotState is tracked per RW node for TrimWAL.
type snapshotState struct {
	mu sync.Mutex
	// attemptGen is bumped before each snapshot attempt so a failed
	// attempt's stray records can never share a generation with a later
	// complete snapshot; lastGen tracks the last published generation.
	attemptGen uint64
	lastGen    uint64
	lastMeta   snapshotMeta
	hasSnap    bool
	snapCount  int64
}

// WriteSnapshot quiesces writes, flushes dirty pages, and persists a full
// snapshot of the engine's durable shape to the meta stream, returning the
// WAL horizon it reflects. Fresh RO nodes created with
// NewRONodeFromSnapshot bootstrap from the latest snapshot; TrimWAL can
// afterwards drop the WAL prefix it covers.
func (n *RWNode) WriteSnapshot() (wal.LSN, error) {
	// Quiesce: with the barrier held exclusively, every assigned LSN is
	// applied, and FlushDirty makes the durable state equal memory.
	n.applyBarrier.Lock()
	horizon := n.logger.LastLSN()
	updates, err := n.engine.FlushDirty()
	if err != nil {
		n.applyBarrier.Unlock()
		return 0, err
	}
	state := n.engine.SnapshotState()
	cursor := n.store.TailCursor(storage.StreamWAL)
	n.applyBarrier.Unlock()

	// Publish the flush to existing replicas as a normal checkpoint.
	if err := n.appendCheckpoint(horizon, updates); err != nil {
		return 0, err
	}

	// Generations are unique per attempt (not per horizon): a snapshot
	// aborted by a storage fault leaves durable tree records behind, and a
	// retry at the same horizon must not mix with them.
	n.snap.mu.Lock()
	if n.snap.attemptGen < n.snap.lastGen {
		n.snap.attemptGen = n.snap.lastGen
	}
	if n.snap.attemptGen < uint64(horizon) {
		n.snap.attemptGen = uint64(horizon)
	}
	n.snap.attemptGen++
	gen := n.snap.attemptGen
	n.snap.mu.Unlock()
	// Large trees are chunked so every record fits an extent.
	budget := n.store.ExtentSize() - 256
	if budget < 1024 {
		budget = 1024
	}
	records := 0
	for _, ts := range state.Trees {
		for _, chunk := range chunkLeaves(ts.Leaves, budget) {
			part := ts
			part.Leaves = chunk
			buf := encodeTreeSnapshot(gen, part, ts.Tree == state.Init)
			buf = appendLeafPageIDs(buf, chunk)
			if err := appendMeta(n.store, gen, buf); err != nil {
				return 0, err
			}
			records++
		}
	}
	meta := snapshotMeta{
		generation: gen,
		horizon:    horizon,
		treeCount:  records,
		walCursor:  cursor,
	}
	if err := appendMeta(n.store, gen, encodeFooter(meta)); err != nil {
		return 0, err
	}
	n.snap.mu.Lock()
	n.snap.lastGen = gen
	n.snap.lastMeta = meta
	n.snap.hasSnap = true
	n.snap.snapCount++
	n.snap.mu.Unlock()
	return horizon, nil
}

// chunkLeaves splits a leaf directory into chunks whose encoded size stays
// within budget (at least one leaf per chunk).
func chunkLeaves(leaves []bwtree.LeafInfo, budget int) [][]bwtree.LeafInfo {
	var out [][]bwtree.LeafInfo
	var cur []bwtree.LeafInfo
	size := 64 // record header
	for _, lf := range leaves {
		leafSize := 2 + len(lf.Lo) + 17 + 2 + 17*len(lf.Deltas) + 8
		if len(cur) > 0 && size+leafSize > budget {
			out = append(out, cur)
			cur, size = nil, 64
		}
		cur = append(cur, lf)
		size += leafSize
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// appendLeafPageIDs appends the page IDs of each leaf (kept out of the
// main record layout for backwards-compatible decoding).
func appendLeafPageIDs(buf []byte, leaves []bwtree.LeafInfo) []byte {
	for _, lf := range leaves {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(lf.Page))
	}
	return buf
}

// TrimWAL drops every sealed WAL extent fully covered by the most recent
// snapshot. RO nodes that attached before the snapshot are unaffected
// (their cursors are past the trimmed prefix); new RO nodes must bootstrap
// from the snapshot.
func (n *RWNode) TrimWAL() (dropped int) {
	n.snap.mu.Lock()
	meta, ok := n.snap.lastMeta, n.snap.hasSnap
	n.snap.mu.Unlock()
	if !ok {
		return 0
	}
	return len(n.store.DropBefore(storage.StreamWAL, meta.walCursor.Extent))
}

// LoadLatestSnapshot scans the meta stream for the newest complete
// snapshot and decodes it. found is false when no snapshot exists. Records
// whose checksum fails — torn tails of snapshot attempts aborted by a
// storage fault — are skipped: an aborted attempt never published its
// footer, so dropping its debris can never drop a published snapshot.
func LoadLatestSnapshot(st *storage.Store) (state core.SnapshotState, meta snapshotMeta, found bool, err error) {
	entries, _, err := st.Scan(storage.StreamMeta, storage.Cursor{}, 0)
	if err != nil {
		return state, meta, false, err
	}
	payloads := make([][]byte, len(entries))
	for i, e := range entries {
		if p, ok := openSnapRecord(e.Data); ok {
			payloads[i] = p
		}
	}
	// Find the newest footer.
	var best snapshotMeta
	footerIdx := -1
	for i, p := range payloads {
		if len(p) == 0 || p[0] != snapRecFooter {
			continue
		}
		m, err := decodeFooter(p)
		if err != nil {
			return state, meta, false, err
		}
		if footerIdx < 0 || m.generation > best.generation {
			best = m
			footerIdx = i
		}
	}
	if footerIdx < 0 {
		return state, meta, false, nil
	}
	// Collect the footer's own tree records: the treeCount generation-
	// tagged records written immediately before it. Walking back from the
	// footer keeps debris of earlier attempts that happen to share the
	// generation (possible only across a recovery) out of the snapshot.
	idxs := make([]int, 0, best.treeCount)
	for i := footerIdx - 1; i >= 0 && len(idxs) < best.treeCount; i-- {
		p := payloads[i]
		if len(p) == 0 || p[0] != snapRecTree || entries[i].Tag != best.generation {
			continue
		}
		idxs = append(idxs, i)
	}
	if len(idxs) != best.treeCount {
		return state, meta, false, fmt.Errorf("replication: snapshot %d incomplete: %d/%d records",
			best.generation, len(idxs), best.treeCount)
	}
	for i := len(idxs) - 1; i >= 0; i-- { // restore write order
		p := payloads[idxs[i]]
		gen, ts, isInit, err := decodeTreeSnapshot(p)
		if err != nil {
			return state, meta, false, err
		}
		if gen != best.generation {
			return state, meta, false, fmt.Errorf("replication: snapshot record generation %d under footer %d", gen, best.generation)
		}
		// Recover the page IDs appended after the main layout.
		if err := recoverLeafPageIDs(p, &ts); err != nil {
			return state, meta, false, err
		}
		if isInit {
			state.Init = ts.Tree
		}
		// Chunks of one tree are written consecutively: merge with the
		// previous entry when the tree matches.
		if n := len(state.Trees); n > 0 && state.Trees[n-1].Tree == ts.Tree {
			state.Trees[n-1].Leaves = append(state.Trees[n-1].Leaves, ts.Leaves...)
		} else {
			state.Trees = append(state.Trees, ts)
		}
	}
	return state, best, true, nil
}

// recoverLeafPageIDs reads the trailing page-ID array of a tree record.
func recoverLeafPageIDs(buf []byte, ts *core.TreeSnapshot) error {
	need := 8 * len(ts.Leaves)
	if len(buf) < need {
		return fmt.Errorf("replication: snapshot record missing page IDs")
	}
	tail := buf[len(buf)-need:]
	for i := range ts.Leaves {
		ts.Leaves[i].Page = bwtree.PageID(binary.LittleEndian.Uint64(tail[i*8:]))
	}
	return nil
}

// NewRONodeFromSnapshot attaches a replica bootstrapped from the latest
// snapshot: it installs the snapshot state and tails the WAL from the
// snapshot's cursor, skipping records the snapshot already reflects. If no
// snapshot exists it behaves like NewRONode (full WAL replay).
func NewRONodeFromSnapshot(st *storage.Store, interval time.Duration, cacheCapacity int) (*RONode, error) {
	state, meta, found, err := LoadLatestSnapshot(st)
	if err != nil {
		return nil, err
	}
	if !found {
		return NewRONode(st, interval, cacheCapacity), nil
	}
	replica := core.NewReplica(st, cacheCapacity)
	if err := replica.LoadSnapshot(state, meta.horizon); err != nil {
		return nil, err
	}
	reader := wal.NewReaderAt(st, meta.walCursor)
	reader.SetBase(meta.horizon)
	n := &RONode{
		store:    st,
		cacheCap: cacheCapacity,
		replica:  replica,
		reader:   reader,
		minLSN:   meta.horizon,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go n.pollLoop(interval)
	return n, nil
}

// RecoverRWNode reconstructs a read-write node on an existing store after
// a restart: the engine rebuilds from the latest snapshot, the WAL suffix
// beyond the snapshot replays logically, the WAL writer resumes past the
// highest existing LSN, a fresh snapshot is written (the recovered engine
// has a new physical page-ID space, so replicas must bootstrap from it —
// use NewRONodeFromSnapshot), and the node then serves reads and writes as
// usual. An error is returned when the store holds no snapshot (a fresh
// store should use NewRWNode).
func RecoverRWNode(st *storage.Store, opts RWOptions) (*RWNode, error) {
	return recoverRWNodeAtEpoch(st, opts, st.StreamEpoch(storage.StreamWAL))
}

// recoverRWNodeAtEpoch is RecoverRWNode with an explicit WAL fence token.
// Plain recovery passes the stream's current epoch; a promotion passes the
// epoch it claimed when it fenced, so a candidate that lost a concurrent
// promotion race fails ErrFenced on its first append instead of silently
// adopting the winner's token.
func recoverRWNodeAtEpoch(st *storage.Store, opts RWOptions, epoch uint64) (*RWNode, error) {
	state, meta, found, err := LoadLatestSnapshot(st)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("replication: recover: no snapshot on store")
	}
	opts.Engine.Tree.FlushMode = bwtree.FlushAsync
	src := mvcc.NewSource(0)
	engineOpts := opts.Engine
	engineOpts.Logger = nil
	engineOpts.Epochs = src
	engine, err := core.RecoverWithStore(st, engineOpts, state)
	if err != nil {
		return nil, err
	}

	// Replay the WAL suffix (records the snapshot does not cover). Torn
	// tails and retry duplicates are tolerated; an LSN gap aborts the
	// recovery — it would mean acknowledged writes are missing.
	reader := wal.NewReaderAt(st, meta.walCursor)
	maxLSN, err := engine.ReplayWAL(reader, meta.horizon)
	if err != nil {
		return nil, err
	}
	if reader.PendingGroups() > 0 {
		// The log tail holds debris from a failed pipelined commit: durable
		// groups past the gapless prefix whose writers were never
		// acknowledged. The new tenure reuses their LSNs, so bump the fence
		// epoch once more — readers then order the debris before the first
		// new-epoch append and discard it wholesale, instead of resurrecting
		// never-acked records or mistaking the reused LSNs for duplicates.
		epoch, err = st.AdvanceStreamEpoch(storage.StreamWAL)
		if err != nil {
			return nil, err
		}
	}

	writer := wal.NewWriterFromEpoch(st, maxLSN+1, epoch)
	logger := wal.NewGroupCommitter(writer, wal.GroupCommitterOptions{
		MaxDelay:      opts.CommitWindow,
		MaxBatch:      opts.MaxBatch,
		QueueDepth:    opts.QueueDepth,
		PipelineDepth: opts.PipelineDepth,
		AdaptiveDepth: opts.AdaptivePipeline,
		OnRelease:     func(last wal.LSN) { src.Advance(mvcc.Epoch(last)) },
	})
	// Everything replayed is released by definition: seed the clock at the
	// recovered durable horizon so the first pinned snapshot sees it all.
	src.Advance(mvcc.Epoch(maxLSN))
	engine.AttachLogger(logger)

	n := &RWNode{
		engine: engine,
		store:  st,
		writer: writer,
		logger: logger,
		opts:   opts,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n.snap.lastMeta = meta
	n.snap.lastGen = meta.generation
	n.snap.hasSnap = true
	n.registerMetrics(engine.Metrics())
	if opts.FlushInterval > 0 {
		go n.flushLoop()
	} else {
		close(n.done)
	}
	// The replayed engine has fresh page IDs; old WAL records reference
	// the pre-crash ones. A new snapshot makes the recovered state the
	// bootstrap point, so replicas attached from here (always via
	// NewRONodeFromSnapshot after a recovery) see one coherent ID space.
	if _, err := n.WriteSnapshot(); err != nil {
		n.Stop()
		return nil, err
	}
	return n, nil
}
