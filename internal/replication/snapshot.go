package replication

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/forest"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Snapshots let fresh RO nodes attach without replaying the WAL from the
// beginning, and let the RW node truncate the WAL prefix the snapshot
// covers. A snapshot is a group of records in the meta stream — one per
// tree plus a footer — identified by a generation number; the footer
// records the WAL horizon (every record at or below it is reflected in the
// snapshot) and the WAL cursor a bootstrapping replica should tail from.

const (
	snapRecTree   = 1
	snapRecFooter = 2
)

// snapshotMeta is the decoded footer.
type snapshotMeta struct {
	generation uint64
	horizon    wal.LSN
	treeCount  int
	walCursor  storage.Cursor
}

func appendLoc(buf []byte, l storage.Loc) []byte {
	buf = append(buf, byte(l.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Extent))
	buf = binary.LittleEndian.AppendUint32(buf, l.Offset)
	buf = binary.LittleEndian.AppendUint32(buf, l.Length)
	return buf
}

func readLoc(buf []byte) (storage.Loc, []byte, error) {
	if len(buf) < 17 {
		return storage.Loc{}, nil, fmt.Errorf("replication: truncated loc in snapshot")
	}
	l := storage.Loc{
		Stream: storage.StreamID(buf[0]),
		Extent: storage.ExtentID(binary.LittleEndian.Uint64(buf[1:])),
		Offset: binary.LittleEndian.Uint32(buf[9:]),
		Length: binary.LittleEndian.Uint32(buf[13:]),
	}
	return l, buf[17:], nil
}

// encodeTreeSnapshot: kind[1] gen[8] tree[8] hasOwner[1] owner[8] init[1]
// nleaves[4] { loLen[2] lo base[17] nd[2] deltas[17]* }*
func encodeTreeSnapshot(gen uint64, ts core.TreeSnapshot, isInit bool) []byte {
	buf := []byte{snapRecTree}
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts.Tree))
	if ts.HasOwner {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts.Owner))
	if isInit {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ts.Leaves)))
	for _, lf := range ts.Leaves {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lf.Lo)))
		buf = append(buf, lf.Lo...)
		buf = appendLoc(buf, lf.Base)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lf.Deltas)))
		for _, d := range lf.Deltas {
			buf = appendLoc(buf, d)
		}
	}
	return buf
}

func decodeTreeSnapshot(buf []byte) (gen uint64, ts core.TreeSnapshot, isInit bool, err error) {
	if len(buf) < 31 || buf[0] != snapRecTree {
		return 0, ts, false, fmt.Errorf("replication: malformed tree snapshot record")
	}
	gen = binary.LittleEndian.Uint64(buf[1:])
	ts.Tree = bwtree.TreeID(binary.LittleEndian.Uint64(buf[9:]))
	ts.HasOwner = buf[17] == 1
	ts.Owner = forest.OwnerID(binary.LittleEndian.Uint64(buf[18:]))
	isInit = buf[26] == 1
	n := binary.LittleEndian.Uint32(buf[27:])
	buf = buf[31:]
	for i := uint32(0); i < n; i++ {
		if len(buf) < 2 {
			return 0, ts, false, fmt.Errorf("replication: truncated leaf %d", i)
		}
		loLen := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		if len(buf) < int(loLen) {
			return 0, ts, false, fmt.Errorf("replication: truncated leaf lo %d", i)
		}
		var lf bwtree.LeafInfo
		if loLen > 0 {
			lf.Lo = append([]byte(nil), buf[:loLen]...)
		}
		buf = buf[loLen:]
		lf.Base, buf, err = readLoc(buf)
		if err != nil {
			return 0, ts, false, err
		}
		if len(buf) < 2 {
			return 0, ts, false, fmt.Errorf("replication: truncated delta count %d", i)
		}
		nd := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		for j := uint16(0); j < nd; j++ {
			var d storage.Loc
			d, buf, err = readLoc(buf)
			if err != nil {
				return 0, ts, false, err
			}
			lf.Deltas = append(lf.Deltas, d)
		}
		// Page ID travels in the leaf's Page field appended after deltas in
		// LeafInfo; encode/decode it explicitly below.
		ts.Leaves = append(ts.Leaves, lf)
	}
	return gen, ts, isInit, nil
}

// encodeFooter: kind[1] gen[8] horizon[8] treeCount[4] curExt[8] curIdx[4]
func encodeFooter(m snapshotMeta) []byte {
	buf := []byte{snapRecFooter}
	buf = binary.LittleEndian.AppendUint64(buf, m.generation)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.horizon))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.treeCount))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.walCursor.Extent))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.walCursor.Index))
	return buf
}

func decodeFooter(buf []byte) (snapshotMeta, error) {
	if len(buf) != 33 || buf[0] != snapRecFooter {
		return snapshotMeta{}, fmt.Errorf("replication: malformed snapshot footer")
	}
	return snapshotMeta{
		generation: binary.LittleEndian.Uint64(buf[1:]),
		horizon:    wal.LSN(binary.LittleEndian.Uint64(buf[9:])),
		treeCount:  int(binary.LittleEndian.Uint32(buf[17:])),
		walCursor: storage.Cursor{
			Extent: storage.ExtentID(binary.LittleEndian.Uint64(buf[21:])),
			Index:  int(binary.LittleEndian.Uint32(buf[29:])),
		},
	}, nil
}

// snapshotState is tracked per RW node for TrimWAL.
type snapshotState struct {
	mu        sync.Mutex
	lastGen   uint64
	lastMeta  snapshotMeta
	hasSnap   bool
	snapCount int64
}

// WriteSnapshot quiesces writes, flushes dirty pages, and persists a full
// snapshot of the engine's durable shape to the meta stream, returning the
// WAL horizon it reflects. Fresh RO nodes created with
// NewRONodeFromSnapshot bootstrap from the latest snapshot; TrimWAL can
// afterwards drop the WAL prefix it covers.
func (n *RWNode) WriteSnapshot() (wal.LSN, error) {
	// Quiesce: with the barrier held exclusively, every assigned LSN is
	// applied, and FlushDirty makes the durable state equal memory.
	n.applyBarrier.Lock()
	horizon := n.logger.LastLSN()
	updates, err := n.engine.FlushDirty()
	if err != nil {
		n.applyBarrier.Unlock()
		return 0, err
	}
	state := n.engine.SnapshotState()
	cursor := n.store.TailCursor(storage.StreamWAL)
	n.applyBarrier.Unlock()

	// Publish the flush to existing replicas as a normal checkpoint.
	if err := n.appendCheckpoint(horizon, updates); err != nil {
		return 0, err
	}

	gen := uint64(horizon) // horizons are unique and monotonic per node
	// Large trees are chunked so every record fits an extent.
	budget := n.store.ExtentSize() - 256
	if budget < 1024 {
		budget = 1024
	}
	records := 0
	for _, ts := range state.Trees {
		for _, chunk := range chunkLeaves(ts.Leaves, budget) {
			part := ts
			part.Leaves = chunk
			buf := encodeTreeSnapshot(gen, part, ts.Tree == state.Init)
			buf = appendLeafPageIDs(buf, chunk)
			if _, err := n.store.Append(storage.StreamMeta, gen, buf); err != nil {
				return 0, err
			}
			records++
		}
	}
	meta := snapshotMeta{
		generation: gen,
		horizon:    horizon,
		treeCount:  records,
		walCursor:  cursor,
	}
	if _, err := n.store.Append(storage.StreamMeta, gen, encodeFooter(meta)); err != nil {
		return 0, err
	}
	n.snap.mu.Lock()
	n.snap.lastGen = gen
	n.snap.lastMeta = meta
	n.snap.hasSnap = true
	n.snap.snapCount++
	n.snap.mu.Unlock()
	return horizon, nil
}

// chunkLeaves splits a leaf directory into chunks whose encoded size stays
// within budget (at least one leaf per chunk).
func chunkLeaves(leaves []bwtree.LeafInfo, budget int) [][]bwtree.LeafInfo {
	var out [][]bwtree.LeafInfo
	var cur []bwtree.LeafInfo
	size := 64 // record header
	for _, lf := range leaves {
		leafSize := 2 + len(lf.Lo) + 17 + 2 + 17*len(lf.Deltas) + 8
		if len(cur) > 0 && size+leafSize > budget {
			out = append(out, cur)
			cur, size = nil, 64
		}
		cur = append(cur, lf)
		size += leafSize
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// appendLeafPageIDs appends the page IDs of each leaf (kept out of the
// main record layout for backwards-compatible decoding).
func appendLeafPageIDs(buf []byte, leaves []bwtree.LeafInfo) []byte {
	for _, lf := range leaves {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(lf.Page))
	}
	return buf
}

// TrimWAL drops every sealed WAL extent fully covered by the most recent
// snapshot. RO nodes that attached before the snapshot are unaffected
// (their cursors are past the trimmed prefix); new RO nodes must bootstrap
// from the snapshot.
func (n *RWNode) TrimWAL() (dropped int) {
	n.snap.mu.Lock()
	meta, ok := n.snap.lastMeta, n.snap.hasSnap
	n.snap.mu.Unlock()
	if !ok {
		return 0
	}
	return len(n.store.DropBefore(storage.StreamWAL, meta.walCursor.Extent))
}

// LoadLatestSnapshot scans the meta stream for the newest complete
// snapshot and decodes it. found is false when no snapshot exists.
func LoadLatestSnapshot(st *storage.Store) (state core.SnapshotState, meta snapshotMeta, found bool, err error) {
	entries, _, err := st.Scan(storage.StreamMeta, storage.Cursor{}, 0)
	if err != nil {
		return state, meta, false, err
	}
	// Find the newest footer, then collect its generation's tree records.
	var best snapshotMeta
	for _, e := range entries {
		if len(e.Data) > 0 && e.Data[0] == snapRecFooter {
			m, err := decodeFooter(e.Data)
			if err != nil {
				return state, meta, false, err
			}
			if !found || m.generation > best.generation {
				best = m
				found = true
			}
		}
	}
	if !found {
		return state, meta, false, nil
	}
	chunks := 0
	for _, e := range entries {
		if len(e.Data) == 0 || e.Data[0] != snapRecTree || e.Tag != best.generation {
			continue
		}
		gen, ts, isInit, err := decodeTreeSnapshot(e.Data)
		if err != nil {
			return state, meta, false, err
		}
		if gen != best.generation {
			continue
		}
		// Recover the page IDs appended after the main layout.
		if err := recoverLeafPageIDs(e.Data, &ts); err != nil {
			return state, meta, false, err
		}
		if isInit {
			state.Init = ts.Tree
		}
		// Chunks of one tree are written consecutively: merge with the
		// previous entry when the tree matches.
		if n := len(state.Trees); n > 0 && state.Trees[n-1].Tree == ts.Tree {
			state.Trees[n-1].Leaves = append(state.Trees[n-1].Leaves, ts.Leaves...)
		} else {
			state.Trees = append(state.Trees, ts)
		}
		chunks++
	}
	if chunks != best.treeCount {
		return state, meta, false, fmt.Errorf("replication: snapshot %d incomplete: %d/%d records",
			best.generation, chunks, best.treeCount)
	}
	return state, best, true, nil
}

// recoverLeafPageIDs reads the trailing page-ID array of a tree record.
func recoverLeafPageIDs(buf []byte, ts *core.TreeSnapshot) error {
	need := 8 * len(ts.Leaves)
	if len(buf) < need {
		return fmt.Errorf("replication: snapshot record missing page IDs")
	}
	tail := buf[len(buf)-need:]
	for i := range ts.Leaves {
		ts.Leaves[i].Page = bwtree.PageID(binary.LittleEndian.Uint64(tail[i*8:]))
	}
	return nil
}

// NewRONodeFromSnapshot attaches a replica bootstrapped from the latest
// snapshot: it installs the snapshot state and tails the WAL from the
// snapshot's cursor, skipping records the snapshot already reflects. If no
// snapshot exists it behaves like NewRONode (full WAL replay).
func NewRONodeFromSnapshot(st *storage.Store, interval time.Duration, cacheCapacity int) (*RONode, error) {
	state, meta, found, err := LoadLatestSnapshot(st)
	if err != nil {
		return nil, err
	}
	if !found {
		return NewRONode(st, interval, cacheCapacity), nil
	}
	replica := core.NewReplica(st, cacheCapacity)
	if err := replica.LoadSnapshot(state, meta.horizon); err != nil {
		return nil, err
	}
	n := &RONode{
		replica: replica,
		reader:  wal.NewReaderAt(st, meta.walCursor),
		minLSN:  meta.horizon,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go n.pollLoop(interval)
	return n, nil
}

// RecoverRWNode reconstructs a read-write node on an existing store after
// a restart: the engine rebuilds from the latest snapshot, the WAL suffix
// beyond the snapshot replays logically, the WAL writer resumes past the
// highest existing LSN, a fresh snapshot is written (the recovered engine
// has a new physical page-ID space, so replicas must bootstrap from it —
// use NewRONodeFromSnapshot), and the node then serves reads and writes as
// usual. An error is returned when the store holds no snapshot (a fresh
// store should use NewRWNode).
func RecoverRWNode(st *storage.Store, opts RWOptions) (*RWNode, error) {
	state, meta, found, err := LoadLatestSnapshot(st)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("replication: recover: no snapshot on store")
	}
	opts.Engine.Tree.FlushMode = bwtree.FlushAsync
	engineOpts := opts.Engine
	engineOpts.Logger = nil
	engine, err := core.RecoverWithStore(st, engineOpts, state)
	if err != nil {
		return nil, err
	}

	// Replay the WAL suffix (records the snapshot does not cover).
	reader := wal.NewReaderAt(st, meta.walCursor)
	recs, err := reader.Poll()
	if err != nil {
		return nil, err
	}
	maxLSN := meta.horizon
	for _, rec := range recs {
		if rec.LSN <= meta.horizon {
			continue
		}
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
		if err := engine.ReplayRecord(rec); err != nil {
			return nil, fmt.Errorf("replication: recover: replay LSN %d: %w", rec.LSN, err)
		}
	}

	writer := wal.NewWriterFrom(st, maxLSN+1)
	logger := NewGroupCommitLogger(writer, opts.CommitWindow, opts.MaxBatch)
	engine.AttachLogger(logger)

	n := &RWNode{
		engine: engine,
		store:  st,
		writer: writer,
		logger: logger,
		opts:   opts,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	n.snap.lastMeta = meta
	n.snap.lastGen = meta.generation
	n.snap.hasSnap = true
	if opts.FlushInterval > 0 {
		go n.flushLoop()
	} else {
		close(n.done)
	}
	// The replayed engine has fresh page IDs; old WAL records reference
	// the pre-crash ones. A new snapshot makes the recovered state the
	// bootstrap point, so replicas attached from here (always via
	// NewRONodeFromSnapshot after a recovery) see one coherent ID space.
	if _, err := n.WriteSnapshot(); err != nil {
		n.Stop()
		return nil, err
	}
	return n, nil
}
