package replication

import (
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/netsim"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

func TestGroupCommitAssignsAllLSNs(t *testing.T) {
	st := storage.Open(nil)
	w := wal.NewWriter(st)
	l := NewGroupCommitLogger(w, 0, 0)
	defer l.Stop()

	var wg sync.WaitGroup
	const workers, per = 8, 50
	lsns := make(chan wal.LSN, workers*per)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				lsn, err := l.Log(&wal.Record{Type: wal.RecordPut, Key: []byte("k")})
				if err != nil {
					t.Error(err)
					return
				}
				lsns <- lsn
			}
		}()
	}
	wg.Wait()
	close(lsns)
	seen := map[wal.LSN]bool{}
	for lsn := range lsns {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("LSNs = %d, want %d", len(seen), workers*per)
	}
	// Reading the WAL back yields all records in LSN order.
	recs, err := wal.NewReader(st).Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("WAL records = %d", len(recs))
	}
	for i, r := range recs {
		if r.LSN != wal.LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestGroupCommitBatches(t *testing.T) {
	st := storage.Open(&storage.Options{WriteLatency: 2 * time.Millisecond})
	w := wal.NewWriter(st)
	l := NewGroupCommitLogger(w, 0, 0)
	defer l.Stop()

	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Log(&wal.Record{Type: wal.RecordPut}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	batches, records := l.BatchStats()
	if records != n {
		t.Fatalf("records = %d, want %d", records, n)
	}
	if batches >= n {
		t.Fatalf("batches = %d: no batching happened under concurrency", batches)
	}
}

func newPair(t *testing.T, rwOpts RWOptions, pollInterval time.Duration) (*RWNode, *RONode, *storage.Store) {
	t.Helper()
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, rwOpts)
	if err != nil {
		t.Fatal(err)
	}
	ro := NewRONode(st, pollInterval, 0)
	t.Cleanup(func() {
		ro.Stop()
		rw.Stop()
	})
	return rw, ro, st
}

func TestRWROEndToEnd(t *testing.T) {
	rw, ro, _ := newPair(t, RWOptions{}, time.Millisecond)
	if err := rw.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i + 10), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatalf("RO never reached LSN %d (at %d)", lsn, ro.Replica().HighLSN())
	}
	if deg, err := ro.Replica().Degree(1, graph.ETypeFollow); err != nil || deg != 100 {
		t.Fatalf("RO degree = %d %v", deg, err)
	}
	if _, ok, _ := ro.Replica().GetVertex(1, graph.VTypeUser); !ok {
		t.Fatal("RO missing vertex")
	}
	if err := ro.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesROBuffers(t *testing.T) {
	rw, ro, _ := newPair(t, RWOptions{}, time.Millisecond)
	for i := 0; i < 200; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 2, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging")
	}
	if ro.Replica().BufferedRecords() == 0 {
		t.Fatal("expected lazy-replay backlog before checkpoint")
	}
	if err := rw.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckLSN := rw.LastLSN()
	if !ro.WaitVisible(ckLSN, 2*time.Second) {
		t.Fatal("RO missed checkpoint")
	}
	if got := ro.Replica().BufferedRecords(); got != 0 {
		t.Fatalf("RO buffer after checkpoint = %d records", got)
	}
	if deg, _ := ro.Replica().Degree(2, graph.ETypeLike); deg != 200 {
		t.Fatalf("RO degree after checkpoint = %d", deg)
	}
}

func TestBackgroundFlusherCheckpoints(t *testing.T) {
	rw, ro, _ := newPair(t, RWOptions{
		FlushInterval:  2 * time.Millisecond,
		FlushThreshold: 16,
	}, time.Millisecond)
	for i := 0; i < 300; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 3, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && rw.Checkpoints() == 0 {
		time.Sleep(time.Millisecond)
	}
	if rw.Checkpoints() == 0 {
		t.Fatal("background flusher never checkpointed")
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging after background checkpoints")
	}
	if deg, _ := ro.Replica().Degree(3, graph.ETypeFollow); deg != 300 {
		t.Fatalf("RO degree = %d", deg)
	}
}

func TestMultipleROsStayConsistent(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{FlushInterval: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	var ros []*RONode
	for i := 0; i < 3; i++ {
		ro := NewRONode(st, time.Millisecond, 0)
		defer ro.Stop()
		ros = append(ros, ro)
	}
	const writers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rw.AddEdge(graph.Edge{
					Src: graph.VertexID(w + 1), Dst: graph.VertexID(i), Type: graph.ETypeFollow,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lsn := rw.LastLSN()
	for i, ro := range ros {
		if !ro.WaitVisible(lsn, 2*time.Second) {
			t.Fatalf("RO %d lagging", i)
		}
		for w := 0; w < writers; w++ {
			deg, err := ro.Replica().Degree(graph.VertexID(w+1), graph.ETypeFollow)
			if err != nil || deg != per {
				t.Fatalf("RO %d: degree(%d) = %d %v", i, w+1, deg, err)
			}
		}
		if err := ro.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALSyncSurvivesForestMigration(t *testing.T) {
	rw, ro, _ := newPair(t, RWOptions{
		Engine: core.Options{SplitThreshold: 20, Tree: bwtree.Config{MaxPageEntries: 8}},
	}, time.Millisecond)
	// Push one owner over the forest threshold so a migration happens in
	// the replicated pipeline.
	for i := 0; i < 60; i++ {
		if err := rw.AddEdge(graph.Edge{Src: 9, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	if rw.Engine().Forest().Stats().Migrations == 0 {
		t.Fatal("no migration happened")
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging")
	}
	if deg, err := ro.Replica().Degree(9, graph.ETypeLike); err != nil || deg != 60 {
		t.Fatalf("RO degree after migration = %d %v", deg, err)
	}
}

func newSimpleEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestForwardingClusterLosesDataUnderPacketLoss(t *testing.T) {
	leader := newSimpleEngine(t)
	followers := []graph.Store{newSimpleEngine(t), newSimpleEngine(t)}
	links := []*netsim.Link{
		netsim.NewLink(0.3, 0, 0, 1),
		netsim.NewLink(0.0, 0, 0, 2),
	}
	c := NewForwardingCluster(leader, followers, links)
	var edges []graph.Edge
	for i := 0; i < 500; i++ {
		e := graph.Edge{Src: graph.VertexID(i % 10), Dst: graph.VertexID(i), Type: graph.ETypeTransfer}
		if err := c.AddEdge(e); err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	recalls := c.Recall(edges, 10*time.Millisecond)
	if recalls[0] > 0.85 || recalls[0] < 0.5 {
		t.Fatalf("lossy follower recall = %.3f, want ~0.7", recalls[0])
	}
	if recalls[1] != 1.0 {
		t.Fatalf("lossless follower recall = %.3f, want 1.0", recalls[1])
	}
	// The leader itself has everything.
	for _, e := range edges[:20] {
		if _, ok, _ := c.Leader().GetEdge(e.Src, e.Type, e.Dst); !ok {
			t.Fatal("leader lost its own write")
		}
	}
}

func TestWALRecallIsPerfect(t *testing.T) {
	rw, ro, _ := newPair(t, RWOptions{}, time.Millisecond)
	var edges []graph.Edge
	for i := 0; i < 300; i++ {
		e := graph.Edge{Src: graph.VertexID(i % 7), Dst: graph.VertexID(i), Type: graph.ETypeTransfer}
		if err := rw.AddEdge(e); err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging")
	}
	if recall := WALRecall(ro.Replica(), edges); recall != 1.0 {
		t.Fatalf("WAL recall = %.3f, want 1.0", recall)
	}
}

func TestSyncLatencyBounded(t *testing.T) {
	// With injected storage latency, leader-follower sync latency is
	// roughly write-latency + poll interval and independent of load —
	// the Fig. 13 shape in miniature.
	st := storage.Open(&storage.Options{
		ExtentSize:   1 << 16,
		WriteLatency: time.Millisecond,
	})
	rw, err := NewRWNode(st, RWOptions{CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	ro := NewRONode(st, 2*time.Millisecond, 0)
	defer ro.Stop()

	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		if err := rw.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
		lsn := rw.LastLSN()
		if !ro.WaitVisible(lsn, time.Second) {
			t.Fatalf("edge %d never visible", i)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	if worst > 500*time.Millisecond {
		t.Fatalf("worst sync latency = %v, want bounded", worst)
	}
}

func TestROPageCacheBounded(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	rw, err := NewRWNode(st, RWOptions{
		Engine: core.Options{Tree: bwtree.Config{MaxPageEntries: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()
	ro := NewRONode(st, time.Millisecond, 4) // tiny RO cache
	defer ro.Stop()
	for i := 0; i < 400; i++ {
		if err := rw.AddEdge(graph.Edge{Src: graph.VertexID(i % 20), Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging")
	}
	for src := 0; src < 20; src++ {
		deg, err := ro.Replica().Degree(graph.VertexID(src), graph.ETypeFollow)
		if err != nil || deg != 20 {
			t.Fatalf("degree(%d) = %d %v", src, deg, err)
		}
	}
}

func TestCheckpointHorizonNeverOverclaims(t *testing.T) {
	// Hammer writes while checkpointing concurrently; every checkpoint
	// must describe a state the RO can rely on (verified by the RO ending
	// fully consistent with zero buffered records after a final quiesced
	// checkpoint).
	rw, ro, _ := newPair(t, RWOptions{}, time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = rw.Checkpoint()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := rw.AddEdge(graph.Edge{Src: graph.VertexID(i % 5), Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := rw.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lsn := rw.LastLSN()
	if !ro.WaitVisible(lsn, 2*time.Second) {
		t.Fatal("RO lagging")
	}
	for src := 0; src < 5; src++ {
		deg, err := ro.Replica().Degree(graph.VertexID(src), graph.ETypeLike)
		if err != nil || deg != 100 {
			t.Fatalf("degree(%d) = %d %v, want 100", src, deg, err)
		}
	}
	if got := ro.Replica().BufferedRecords(); got != 0 {
		t.Fatalf("buffered records after final checkpoint = %d", got)
	}
}

func TestGroupCommitWindowBatches(t *testing.T) {
	// With a window, sequential single-writer commits still amortize: the
	// committer waits out the window, so records arriving within it share
	// one batch.
	st := storage.Open(nil)
	w := wal.NewWriter(st)
	l := NewGroupCommitLogger(w, 5*time.Millisecond, 0)
	defer l.Stop()

	var wg sync.WaitGroup
	const writers = 16
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Log(&wal.Record{Type: wal.RecordPut}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	batches, records := l.BatchStats()
	if records != writers {
		t.Fatalf("records = %d", records)
	}
	if batches != 1 {
		t.Fatalf("batches = %d, want 1 (all writers inside one window)", batches)
	}
}

func TestGroupCommitStopFailsPending(t *testing.T) {
	st := storage.Open(&storage.Options{WriteLatency: 50 * time.Millisecond})
	w := wal.NewWriter(st)
	l := NewGroupCommitLogger(w, 20*time.Millisecond, 0)

	errc := make(chan error, 1)
	go func() {
		_, err := l.Log(&wal.Record{Type: wal.RecordPut})
		errc <- err
	}()
	time.Sleep(time.Millisecond)
	l.Stop()
	select {
	case err := <-errc:
		// Either the record committed before Stop or it failed with the
		// shutdown error — it must not hang.
		if err != nil && err != ErrLoggerStopped {
			t.Fatalf("unexpected error %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Log hung across Stop")
	}
	// Logging after Stop fails immediately.
	if _, err := l.Log(&wal.Record{Type: wal.RecordPut}); err == nil {
		t.Fatal("Log after Stop succeeded")
	}
}
