package gc

import (
	"fmt"
	"testing"
	"time"

	"bg3/internal/storage"
)

// figure5Usage builds the paper's Figure 5 scenario at time t1:
//
//   - Extent A: hot, fragmentation 3/5, high update gradient (a new video
//     accumulating likes — its remaining pages will die soon).
//   - Extent B: fragmentation 3/5, all data expiring at t2 (TTL).
//   - Extent C: cold, fragmentation 2/5, gradient ~0.
func figure5Usage(t1 time.Time) []storage.ExtentUsage {
	return []storage.ExtentUsage{
		{Extent: 1, Sealed: true, ValidRecords: 2, InvalidRecords: 3, ValidBytes: 2048,
			LastUpdate: t1, UpdateGradient: 2.0}, // A
		{Extent: 2, Sealed: true, ValidRecords: 2, InvalidRecords: 3, ValidBytes: 2048,
			LastUpdate: t1.Add(-9 * time.Minute), UpdateGradient: 0}, // B (TTL 10m: expires in 1m)
		{Extent: 3, Sealed: true, ValidRecords: 3, InvalidRecords: 2, ValidBytes: 3072,
			LastUpdate: t1.Add(-2 * time.Minute), UpdateGradient: 0}, // C (stable survivors)
	}
}

func TestDirtyRatioPicksMostFragmented(t *testing.T) {
	t1 := time.Unix(10000, 0)
	picks := DirtyRatio{}.Pick(figure5Usage(t1), 1, t1)
	if len(picks) != 1 || (picks[0] != 1 && picks[0] != 2) {
		t.Fatalf("dirty-ratio picked %v, want extent A(1) or B(2) at frag 3/5", picks)
	}
}

func TestWorkloadAwarePrefersColdExtent(t *testing.T) {
	t1 := time.Unix(10000, 0)
	// No TTL configured: the policy should avoid the hot extent A and pick
	// among the cold ones (B or C) by fragmentation — B at 3/5 wins.
	picks := WorkloadAware{}.Pick(figure5Usage(t1), 1, t1)
	if len(picks) != 1 || picks[0] != 2 {
		t.Fatalf("workload-aware picked %v, want cold extent B(2)", picks)
	}
}

func TestWorkloadAwareTTLBypass(t *testing.T) {
	t1 := time.Unix(10000, 0)
	// With a 10-minute TTL, extent B expires in one minute: bypass it and
	// take the other cold extent C despite its lower fragmentation.
	p := WorkloadAware{TTL: 10 * time.Minute}
	picks := p.Pick(figure5Usage(t1), 1, t1)
	if len(picks) != 1 || picks[0] != 3 {
		t.Fatalf("workload-aware+ttl picked %v, want extent C(3)", picks)
	}
	// Asking for more: A (hot) is still eligible after the cold ones.
	picks = p.Pick(figure5Usage(t1), 3, t1)
	if len(picks) != 2 || picks[0] != 3 || picks[1] != 1 {
		t.Fatalf("workload-aware+ttl picked %v, want [C(3) A(1)]", picks)
	}
}

func TestFIFOPicksOldest(t *testing.T) {
	t1 := time.Unix(10000, 0)
	picks := FIFO{}.Pick(figure5Usage(t1), 2, t1)
	if len(picks) != 2 || picks[0] != 1 || picks[1] != 2 {
		t.Fatalf("fifo picked %v, want [1 2]", picks)
	}
}

func TestPoliciesSkipUnsealedAndClean(t *testing.T) {
	t1 := time.Unix(0, 0)
	usage := []storage.ExtentUsage{
		{Extent: 1, Sealed: false, ValidRecords: 1, InvalidRecords: 5}, // active
		{Extent: 2, Sealed: true, ValidRecords: 6, InvalidRecords: 0},  // clean
	}
	for _, p := range []Policy{FIFO{}, DirtyRatio{}, WorkloadAware{}} {
		if picks := p.Pick(usage, 5, t1); len(picks) != 0 {
			t.Fatalf("%s picked %v from unsealed/clean extents", p.Name(), picks)
		}
	}
}

func TestDirtyRatioMinRate(t *testing.T) {
	t1 := time.Unix(0, 0)
	usage := []storage.ExtentUsage{
		{Extent: 1, Sealed: true, ValidRecords: 9, InvalidRecords: 1}, // 10% frag
	}
	if picks := (DirtyRatio{MinRate: 0.5}).Pick(usage, 1, t1); len(picks) != 0 {
		t.Fatalf("picked %v below MinRate", picks)
	}
	if picks := (DirtyRatio{MinRate: 0.05}).Pick(usage, 1, t1); len(picks) != 1 {
		t.Fatalf("picked %v, want extent 1", picks)
	}
}

func TestGradientBucketMonotone(t *testing.T) {
	prev := gradientBucket(0)
	if prev != 0 {
		t.Fatalf("bucket(0) = %d, want 0", prev)
	}
	for _, g := range []float64{0.05, 0.2, 0.5, 1, 3, 10, 100, 1e6} {
		b := gradientBucket(g)
		if b < prev {
			t.Fatalf("bucket not monotone at %f: %d < %d", g, b, prev)
		}
		prev = b
	}
}

func TestReclaimerRunOnce(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 64})
	// Track owner locations so relocation is observable.
	locs := map[uint64]storage.Loc{}
	for i := 0; i < 16; i++ {
		loc, err := st.Append(storage.StreamBase, uint64(i), []byte("12345678"))
		if err != nil {
			t.Fatal(err)
		}
		locs[uint64(i)] = loc
	}
	// Invalidate half of the records in the older extents.
	for i := 0; i < 8; i += 2 {
		st.Invalidate(locs[uint64(i)])
		delete(locs, uint64(i))
	}
	r := NewReclaimer(st, storage.StreamBase, DirtyRatio{}, func(tag uint64, old, new storage.Loc) bool {
		if locs[tag] != old {
			return false
		}
		locs[tag] = new
		return true
	})
	moved, err := r.RunOnce(2)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
	stats := r.Stats()
	if stats.BytesMoved != moved || stats.Runs != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Every surviving record remains readable at its tracked location.
	for tag, loc := range locs {
		if _, err := st.Read(loc); err != nil {
			t.Fatalf("tag %d unreadable after reclaim: %v", tag, err)
		}
	}
	if st.Stats().ExtentsReclaimed == 0 {
		t.Fatal("no extents reclaimed")
	}
}

func TestReclaimerTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	st := storage.Open(&storage.Options{ExtentSize: 64, Now: clock})
	for i := 0; i < 16; i++ {
		if _, err := st.Append(storage.StreamBase, uint64(i), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReclaimer(st, storage.StreamBase, WorkloadAware{TTL: 10 * time.Second}, nil)
	r.TTL = 10 * time.Second
	r.Now = clock

	// Before expiry: nothing moved (extents are fully valid, policies skip
	// clean extents) and nothing expired.
	moved, err := r.RunOnce(4)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || r.Stats().ExtentsExpired != 0 {
		t.Fatalf("premature reclamation: moved=%d expired=%d", moved, r.Stats().ExtentsExpired)
	}
	// After expiry: extents drop wholesale with zero bytes moved — the
	// Table 2 "+TTL => 0 MB/s" behaviour.
	now = now.Add(time.Minute)
	moved, err = r.RunOnce(4)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("TTL expiry moved %d bytes, want 0", moved)
	}
	if r.Stats().ExtentsExpired == 0 {
		t.Fatal("no extents expired")
	}
}

func TestReclaimerBackground(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 64})
	var locs []storage.Loc
	for i := 0; i < 32; i++ {
		loc, _ := st.Append(storage.StreamDelta, uint64(i), []byte("12345678"))
		locs = append(locs, loc)
	}
	for i := 0; i < 32; i += 2 {
		st.Invalidate(locs[i])
	}
	r := NewReclaimer(st, storage.StreamDelta, DirtyRatio{}, func(tag uint64, old, new storage.Loc) bool { return true })
	r.Start(time.Millisecond, 2)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.Stats().Runs >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	if r.Stats().Runs < 3 {
		t.Fatalf("background runs = %d, want >= 3", r.Stats().Runs)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[Policy]string{
		FIFO{}:                          "fifo",
		DirtyRatio{}:                    "dirty-ratio",
		WorkloadAware{}:                 "workload-aware",
		WorkloadAware{TTL: time.Minute}: "workload-aware+ttl",
	}
	for p, want := range cases {
		if got := p.Name(); got != want {
			t.Fatalf("name = %q, want %q", got, want)
		}
	}
}

// TestWorkloadAwareAvoidsHotExtentUnderChurn builds a real store with a
// hot extent (records still dying) and a cold extent (stable survivors)
// at the same fragmentation, and verifies that dirty-ratio is indifferent
// while the update-gradient policy defers the hot extent — the mechanism
// behind the Table 2 (left) write-amplification reduction, which the
// bench harness measures end to end.
func TestWorkloadAwareAvoidsHotExtentUnderChurn(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	st := storage.Open(&storage.Options{ExtentSize: 256, Now: clock})
	payload := func(i int) []byte { return []byte(fmt.Sprintf("payload-%03d-xxxxxxxxxxxxxxxx", i)) }

	// Extent 0: cold — filled, fragmented once, then silent.
	var coldLocs, hotLocs []storage.Loc
	for i := 0; i < 9; i++ {
		loc, _ := st.Append(storage.StreamBase, uint64(i), payload(i))
		coldLocs = append(coldLocs, loc)
	}
	now = now.Add(time.Second)
	for i := 0; i < 4; i++ {
		st.Invalidate(coldLocs[i])
	}
	// Extent 1: hot — filled later, then invalidations keep arriving in
	// bursts right up to the decision point.
	for i := 9; i < 18; i++ {
		loc, _ := st.Append(storage.StreamBase, uint64(i), payload(i))
		hotLocs = append(hotLocs, loc)
	}
	// Roll over to a third extent so the hot one seals.
	if _, err := st.Append(storage.StreamBase, 99, payload(99)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		now = now.Add(500 * time.Millisecond)
		st.Invalidate(hotLocs[i])
	}
	// Let the cold extent go quiet for a long while.
	now = now.Add(30 * time.Second)
	for i := 4; i < 5; i++ { // one more fresh hot invalidation
		st.Invalidate(hotLocs[i])
	}
	now = now.Add(100 * time.Millisecond)

	usage := st.Usage(storage.StreamBase)
	if len(usage) < 2 {
		t.Fatalf("extents = %d, want >= 2", len(usage))
	}
	coldID, hotID := usage[0].Extent, usage[1].Extent
	if usage[0].UpdateGradient >= usage[1].UpdateGradient {
		t.Fatalf("gradient cold=%f hot=%f, want cold < hot",
			usage[0].UpdateGradient, usage[1].UpdateGradient)
	}

	awarePicks := WorkloadAware{}.Pick(usage, 1, now)
	if len(awarePicks) != 1 || awarePicks[0] != coldID {
		t.Fatalf("workload-aware picked %v, want cold extent %d", awarePicks, coldID)
	}
	// Dirty-ratio picks the hot extent: at 5/9 invalid it is more
	// fragmented than the cold one at 4/9, even though its survivors are
	// about to die (the wasted I/O the paper calls out).
	dirtyPicks := DirtyRatio{}.Pick(usage, 1, now)
	if len(dirtyPicks) != 1 || dirtyPicks[0] != hotID {
		t.Fatalf("dirty-ratio picked %v, want hot extent %d", dirtyPicks, hotID)
	}
}
