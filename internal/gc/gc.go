// Package gc implements space reclamation for BG3's append-only storage
// (§3.3). Out-of-place updates leave invalid records behind; reclamation
// rewrites an extent's surviving records to the stream tail and drops the
// extent. Which extent to reclaim is the whole game: every byte moved is
// background write amplification.
//
// Three policies are provided:
//
//   - FIFO: the traditional Bw-tree queue — always reclaim the oldest
//     extent.
//   - DirtyRatio: ArkDB's baseline — reclaim the extent with the highest
//     fragmentation (invalid-record) rate.
//   - WorkloadAware: BG3's Algorithm 2 — prefer extents with the smallest
//     update gradient (cold data whose remaining records will stay valid),
//     break ties by fragmentation rate, and skip extents that TTL will
//     soon expire wholesale (moving them would waste I/O on doomed data).
package gc

import (
	"sort"
	"time"

	"bg3/internal/storage"
)

// Policy selects extents for reclamation from a usage snapshot.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Pick returns up to n extent IDs to reclaim, most urgent first.
	Pick(usage []storage.ExtentUsage, n int, now time.Time) []storage.ExtentID
}

// sealedCandidates filters a usage snapshot down to sealed extents that
// contain at least one invalid record (reclaiming a fully valid extent
// moves every byte for zero space gain).
func sealedCandidates(usage []storage.ExtentUsage) []storage.ExtentUsage {
	out := make([]storage.ExtentUsage, 0, len(usage))
	for _, u := range usage {
		if u.Sealed && u.InvalidRecords > 0 {
			out = append(out, u)
		}
	}
	return out
}

// FIFO reclaims the oldest sealed extents first.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Pick implements Policy.
func (FIFO) Pick(usage []storage.ExtentUsage, n int, _ time.Time) []storage.ExtentID {
	cands := sealedCandidates(usage)
	sort.Slice(cands, func(i, j int) bool { return cands[i].Extent < cands[j].Extent })
	return takeIDs(cands, n)
}

// DirtyRatio reclaims the most fragmented sealed extents first (the ArkDB
// baseline of Table 2). MinRate filters extents not worth touching.
type DirtyRatio struct {
	// MinRate is the minimum fragmentation rate an extent must reach to be
	// considered (default 0: any invalid record qualifies).
	MinRate float64
}

// Name implements Policy.
func (DirtyRatio) Name() string { return "dirty-ratio" }

// Pick implements Policy.
func (p DirtyRatio) Pick(usage []storage.ExtentUsage, n int, _ time.Time) []storage.ExtentID {
	cands := sealedCandidates(usage)
	filtered := cands[:0]
	for _, u := range cands {
		if u.FragmentationRate() >= p.MinRate {
			filtered = append(filtered, u)
		}
	}
	sort.Slice(filtered, func(i, j int) bool {
		fi, fj := filtered[i].FragmentationRate(), filtered[j].FragmentationRate()
		if fi != fj {
			return fi > fj
		}
		return filtered[i].Extent < filtered[j].Extent
	})
	return takeIDs(filtered, n)
}

// WorkloadAware is Algorithm 2: extents are bucketed by update gradient
// (coarsely quantized, so "the extents with the smallest gradient" form a
// group rather than a single winner), buckets are visited coldest first,
// and within a bucket the highest fragmentation rate wins. Extents whose
// TTL expiry is imminent are bypassed entirely.
type WorkloadAware struct {
	// MinRate filters extents below this fragmentation rate (default 0).
	MinRate float64

	// TTL is the workload's data lifetime. Zero means the workload never
	// expires data and the TTL bypass is inactive.
	TTL time.Duration

	// TTLBypassMargin widens the bypass window: an extent expiring within
	// TTL+margin of its last update is left to die naturally. The margin
	// defaults to TTL/4 when zero.
	TTLBypassMargin time.Duration
}

// Name implements Policy.
func (p WorkloadAware) Name() string {
	if p.TTL > 0 {
		return "workload-aware+ttl"
	}
	return "workload-aware"
}

// gradientBucket quantizes an update gradient (invalid records per second)
// into a coarse coldness class: 0 for frozen extents, then doubling bands.
func gradientBucket(g float64) int {
	if g <= 0 {
		return 0
	}
	b := 1
	for threshold := 0.1; g > threshold && b < 32; threshold *= 2 {
		b++
	}
	return b
}

// Pick implements Policy.
func (p WorkloadAware) Pick(usage []storage.ExtentUsage, n int, now time.Time) []storage.ExtentID {
	cands := sealedCandidates(usage)
	filtered := cands[:0]
	margin := p.TTLBypassMargin
	if p.TTL > 0 && margin == 0 {
		margin = p.TTL / 4
	}
	for _, u := range cands {
		if u.FragmentationRate() < p.MinRate {
			continue
		}
		if p.TTL > 0 {
			expiry := u.LastUpdate.Add(p.TTL)
			if !now.Add(margin).Before(expiry) {
				continue // about to expire wholesale; moving it wastes I/O
			}
		}
		filtered = append(filtered, u)
	}
	sort.Slice(filtered, func(i, j int) bool {
		// Fully dead extents reclaim for free — no byte can be wasted on
		// them — so they outrank every gradient consideration.
		di, dj := filtered[i].ValidRecords == 0, filtered[j].ValidRecords == 0
		if di != dj {
			return di
		}
		bi, bj := gradientBucket(filtered[i].UpdateGradient), gradientBucket(filtered[j].UpdateGradient)
		if bi != bj {
			return bi < bj // coldest bucket first (line 2 of Algorithm 2)
		}
		fi, fj := filtered[i].FragmentationRate(), filtered[j].FragmentationRate()
		if fi != fj {
			return fi > fj // highest fragmentation within the bucket (line 3)
		}
		return filtered[i].Extent < filtered[j].Extent
	})
	return takeIDs(filtered, n)
}

func takeIDs(cands []storage.ExtentUsage, n int) []storage.ExtentID {
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]storage.ExtentID, 0, n)
	for _, u := range cands[:n] {
		out = append(out, u.Extent)
	}
	return out
}
