package gc

import (
	"sync"
	"time"

	"bg3/internal/storage"
)

// Reclaimer drives a Policy against one stream of a store, either on
// demand (RunOnce) or from a background goroutine (Start/Stop). It also
// drives TTL expiry, the zero-cost reclamation path.
type Reclaimer struct {
	store    *storage.Store
	stream   storage.StreamID
	policy   Policy
	relocate storage.RelocateFunc

	// TTL expires whole extents without moving data; zero disables it.
	TTL time.Duration

	// Now supplies timestamps (tests inject a fake clock). Nil = time.Now.
	Now func() time.Time

	// Pins, when set, reports the wall-clock start of the oldest live MVCC
	// pin (typically *mvcc.Source). Extents whose contents changed after
	// that instant are skipped: their invalidated records may still back a
	// pinned snapshot's stable images or retained deltas, and reclaiming
	// them would drop history a reader at an older horizon needs.
	Pins interface {
		OldestPinTime() (time.Time, bool)
	}

	// Blocks, when set, reports the extents currently backing packed edge
	// blocks (typically *bwtree.Mapping). Those extents are treated as
	// pinned until the block is superseded: the parts are immutable and
	// invalidated wholesale on rebuild, so relocating them buys nothing.
	Blocks interface {
		BlockExtents(stream storage.StreamID) map[storage.ExtentID]struct{}
	}

	mu          sync.Mutex
	bytesMoved  int64
	runs        int64
	expired     int64
	pinDeferred int64
	blockPinned int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReclaimer returns a reclaimer for one stream. relocate repoints
// owners of moved records (typically bwtree.Mapping.Relocate).
func NewReclaimer(store *storage.Store, stream storage.StreamID, policy Policy, relocate storage.RelocateFunc) *Reclaimer {
	return &Reclaimer{
		store:    store,
		stream:   stream,
		policy:   policy,
		relocate: relocate,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (r *Reclaimer) now() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now()
}

// RunOnce expires TTL-dead extents, then reclaims up to n extents chosen
// by the policy. It returns the bytes moved by this cycle.
func (r *Reclaimer) RunOnce(n int) (int64, error) {
	now := r.now()
	if r.TTL > 0 {
		dropped := r.store.DropExpired(r.stream, now.Add(-r.TTL))
		r.mu.Lock()
		r.expired += int64(len(dropped))
		r.mu.Unlock()
	}
	usage := r.store.Usage(r.stream)
	if r.Pins != nil {
		if oldest, ok := r.Pins.OldestPinTime(); ok {
			kept := usage[:0]
			deferred := int64(0)
			for _, u := range usage {
				if u.LastUpdate.After(oldest) {
					deferred++
					continue
				}
				kept = append(kept, u)
			}
			usage = kept
			if deferred > 0 {
				r.mu.Lock()
				r.pinDeferred += deferred
				r.mu.Unlock()
			}
		}
	}
	if r.Blocks != nil {
		if pinned := r.Blocks.BlockExtents(r.stream); len(pinned) > 0 {
			kept := usage[:0]
			deferred := int64(0)
			for _, u := range usage {
				if _, ok := pinned[u.Extent]; ok {
					deferred++
					continue
				}
				kept = append(kept, u)
			}
			usage = kept
			if deferred > 0 {
				r.mu.Lock()
				r.blockPinned += deferred
				r.mu.Unlock()
			}
		}
	}
	ids := r.policy.Pick(usage, n, now)
	var moved int64
	for _, id := range ids {
		m, err := r.store.Reclaim(r.stream, id, r.relocate)
		moved += m
		if err != nil && err != storage.ErrReclaimed {
			return moved, err
		}
	}
	r.mu.Lock()
	r.bytesMoved += moved
	r.runs++
	r.mu.Unlock()
	return moved, nil
}

// Start launches a background loop reclaiming batch extents every
// interval until Stop is called.
func (r *Reclaimer) Start(interval time.Duration, batch int) {
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				// Reclamation errors here mean the store is closing; the
				// loop simply keeps ticking until stopped.
				_, _ = r.RunOnce(batch)
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit. Safe to
// call multiple times; a reclaimer that was never started must not call
// Stop.
func (r *Reclaimer) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// ReclaimerStats is a snapshot of a reclaimer's accounting.
type ReclaimerStats struct {
	BytesMoved     int64 // background bytes rewritten by reclamation
	Runs           int64
	ExtentsExpired int64 // extents dropped for free by TTL
	PinDeferred    int64 // extent picks skipped because a pinned snapshot may need them
	BlockPinned    int64 // extent picks skipped because a live edge block backs them
}

// Stats returns a snapshot.
func (r *Reclaimer) Stats() ReclaimerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReclaimerStats{BytesMoved: r.bytesMoved, Runs: r.runs, ExtentsExpired: r.expired, PinDeferred: r.pinDeferred, BlockPinned: r.blockPinned}
}
