package shard

import (
	"math/rand"
	"testing"

	"bg3/internal/mvcc"
)

// 2PC state-machine property test (ISSUE 10): random interleavings of
// prepare / decide / failover / recover over a fake storage, driving the
// real mvcc.Source epoch clocks and the real txnManager, and asserting
// after every step that no shard's released epoch exposes an undecided
// prepare — visible transaction data always belongs to a committed
// transaction and is visible completely or not at all per shard.
//
// The fake mirrors the real protocol's moving parts: one epoch clock and
// append-only log per shard (every append is durable and releases a
// group boundary), epoch holds spanning prepare → apply, a coordinator
// commit record as the durable decision, and failovers that replace the
// shard's clock with a fresh one at the durable horizon (old holds die
// with the deposed leader) followed by an in-doubt resolution pass.

type fakeKind uint8

const (
	fkPrepare fakeKind = iota + 1
	fkCommit
	fkAbort
	fkApplied
	fkData
)

type fakeRec struct {
	lsn  uint64
	kind fakeKind
	txn  uint64
	idx  int // data slot within the sub-batch
}

type fakeShard struct {
	src     *mvcc.Source
	nextLSN uint64
	log     []fakeRec
}

// append durably logs one record and releases it as a group boundary
// (the committer's OnRelease). While a hold is live the release defers.
func (s *fakeShard) append(k fakeKind, txn uint64, idx int) uint64 {
	s.nextLSN++
	s.log = append(s.log, fakeRec{lsn: s.nextLSN, kind: k, txn: txn, idx: idx})
	s.src.Advance(mvcc.Epoch(s.nextLSN))
	return s.nextLSN
}

// subSize is the number of data slots each participant applies per
// transaction — two, so a torn apply is detectable.
const subSize = 2

type ptxn struct {
	id        uint64
	parts     []int
	coord     int
	prepOrder int // next parts index to prepare
	holds     map[int]*mvcc.Hold
	decided   bool
	committed bool
	appliedBy map[int]bool // participant fully applied (driver or resolution)
	done      bool
}

type pharness struct {
	t      *testing.T
	rng    *rand.Rand
	shards []*fakeShard
	mgr    *txnManager
	txns   map[uint64]*ptxn
	active []*ptxn
	nextID uint64

	// decisions records every settled transaction (true = commit); a
	// transaction absent here is undecided.
	decisions map[uint64]bool

	// coverage counters (aggregated across seeds by the caller)
	commits, aborts, forceAborts, resolveApplies int
}

func newPHarness(t *testing.T, rng *rand.Rand, nShards int) *pharness {
	h := &pharness{
		t: t, rng: rng, mgr: newTxnManager(),
		txns: make(map[uint64]*ptxn), decisions: make(map[uint64]bool),
	}
	for i := 0; i < nShards; i++ {
		h.shards = append(h.shards, &fakeShard{src: mvcc.NewSource(0)})
	}
	return h
}

func (h *pharness) startTxn() {
	n := 2 + h.rng.Intn(len(h.shards)-1)
	perm := h.rng.Perm(len(h.shards))[:n]
	parts := append([]int(nil), perm...)
	for i := range parts { // ascending, like SplitBatch's output
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	h.nextID++
	t := &ptxn{
		id: h.nextID, parts: parts, coord: parts[0],
		holds: make(map[int]*mvcc.Hold), appliedBy: make(map[int]bool),
	}
	h.mgr.begin(t.id)
	h.txns[t.id] = t
	h.active = append(h.active, t)
}

// stepTxn advances one transaction by one protocol step.
func (h *pharness) stepTxn(t *ptxn) {
	switch {
	case t.prepOrder < len(t.parts):
		// Prepare the next participant: hold its clock, log the intent.
		s := t.parts[t.prepOrder]
		t.prepOrder++
		t.holds[s] = h.shards[s].src.Hold()
		h.shards[s].append(fkPrepare, t.id, 0)
	case !t.decided:
		t.decided = true
		if !h.mgr.tryDecide(t.id) {
			// Force-aborted by a failover's resolution pass.
			t.committed = false
			h.decisions[t.id] = false
			h.forceAborts++
			h.abortTxn(t)
			return
		}
		if h.rng.Intn(4) == 0 { // coordinator chooses abort
			t.committed = false
			h.decisions[t.id] = false
			h.mgr.decide(t.id, false)
			h.aborts++
			h.abortTxn(t)
			return
		}
		h.shards[t.coord].append(fkCommit, t.id, 0)
		h.decisions[t.id] = true
		h.mgr.decide(t.id, true)
		t.committed = true
		h.commits++
	default:
		// Apply the next pending participant, or finish.
		for _, s := range t.parts {
			if t.appliedBy[s] {
				continue
			}
			sh := h.shards[s]
			hold := sh.src.Hold() // fresh hold: the leader may have changed
			for idx := 0; idx < subSize; idx++ {
				sh.append(fkData, t.id, idx)
			}
			sh.append(fkApplied, t.id, 0)
			hold.Release()
			if ph := t.holds[s]; ph != nil {
				ph.Release()
			}
			t.appliedBy[s] = true
			return
		}
		h.finishTxn(t)
	}
}

// abortTxn logs abort markers on every prepared participant and settles.
func (h *pharness) abortTxn(t *ptxn) {
	for i := 0; i < t.prepOrder; i++ {
		h.shards[t.parts[i]].append(fkAbort, t.id, 0)
	}
	h.finishTxn(t)
}

func (h *pharness) finishTxn(t *ptxn) {
	for _, hold := range t.holds {
		hold.Release()
	}
	h.mgr.end(t.id)
	t.done = true
	for i, a := range h.active {
		if a == t {
			h.active = append(h.active[:i], h.active[i+1:]...)
			break
		}
	}
}

// failover replaces shard s's epoch clock with a fresh one at the
// durable horizon (the promoted leader's recovery point) and runs the
// in-doubt resolution pass, exactly like Group.Failover.
func (h *pharness) failover(s int) {
	sh := h.shards[s]
	sh.src = mvcc.NewSource(mvcc.Epoch(sh.nextLSN))
	// In-doubt scan: durable prepares with no local outcome marker.
	resolved := make(map[uint64]bool)
	var indoubt []uint64
	for _, r := range sh.log {
		switch r.kind {
		case fkAbort, fkApplied:
			resolved[r.txn] = true
		}
	}
	for _, r := range sh.log {
		if r.kind == fkPrepare && !resolved[r.txn] {
			indoubt = append(indoubt, r.txn)
			resolved[r.txn] = true // dedup
		}
	}
	for _, id := range indoubt {
		committed, known := h.mgr.resolveLive(id)
		if !known {
			// Consult the coordinator's durable prefix.
			t := h.txns[id]
			for _, r := range h.shards[t.coord].log {
				if r.kind == fkCommit && r.txn == id {
					committed = true
				}
			}
		} else if !committed {
			h.decisions[id] = false
		}
		if committed {
			hold := sh.src.Hold()
			for idx := 0; idx < subSize; idx++ {
				sh.append(fkData, id, idx)
			}
			sh.append(fkApplied, id, 0)
			hold.Release()
			h.resolveApplies++
			if t := h.txns[id]; t != nil && !t.done {
				t.appliedBy[s] = true
			}
		} else {
			sh.append(fkAbort, id, 0)
		}
	}
}

// checkInvariant asserts, for every shard at its currently released
// epoch: any visible transaction data belongs to a committed
// transaction, and per (transaction, shard) the data slots are visible
// completely or not at all.
func (h *pharness) checkInvariant(when string) {
	h.t.Helper()
	for s, sh := range h.shards {
		e := uint64(sh.src.Current())
		visible := make(map[uint64]map[int]bool)
		for _, r := range sh.log {
			if r.kind == fkData && r.lsn <= e {
				if visible[r.txn] == nil {
					visible[r.txn] = make(map[int]bool)
				}
				visible[r.txn][r.idx] = true
			}
		}
		for id, idxs := range visible {
			committed, decided := h.decisions[id]
			if !decided {
				h.t.Fatalf("%s: shard %d epoch %d exposes data of undecided txn %d", when, s, e, id)
			}
			if !committed {
				h.t.Fatalf("%s: shard %d epoch %d exposes data of aborted txn %d", when, s, e, id)
			}
			if len(idxs) != subSize {
				h.t.Fatalf("%s: shard %d epoch %d exposes torn txn %d: %d of %d slots",
					when, s, e, id, len(idxs), subSize)
			}
		}
	}
}

func TestTxnStateMachineProperty(t *testing.T) {
	seeds := 40
	actions := 300
	if testing.Short() {
		seeds, actions = 10, 150
	}
	var commits, aborts, forceAborts, resolveApplies int
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		h := newPHarness(t, rng, 4)
		for a := 0; a < actions; a++ {
			switch {
			case len(h.active) == 0 || (len(h.active) < 3 && rng.Intn(3) == 0):
				h.startTxn()
			case rng.Intn(10) == 0:
				h.failover(rng.Intn(len(h.shards)))
			default:
				h.stepTxn(h.active[rng.Intn(len(h.active))])
			}
			h.checkInvariant("mid-run")
		}
		// Drain: finish every active transaction, then recover every
		// shard once more so nothing stays in doubt.
		for len(h.active) > 0 {
			h.stepTxn(h.active[0])
			h.checkInvariant("drain")
		}
		for s := range h.shards {
			h.failover(s)
			h.checkInvariant("final recover")
		}
		// Durable completeness: every committed transaction has all its
		// slots on every participant; aborted ones have none anywhere.
		for id, txn := range h.txns {
			committed := h.decisions[id]
			for _, s := range txn.parts {
				got := make(map[int]bool)
				for _, r := range h.shards[s].log {
					if r.kind == fkData && r.txn == id {
						got[r.idx] = true
					}
				}
				if committed && len(got) != subSize {
					t.Fatalf("seed %d: committed txn %d incomplete on shard %d: %d slots", seed, id, s, len(got))
				}
				if !committed && len(got) != 0 {
					t.Fatalf("seed %d: aborted txn %d left %d data slots on shard %d", seed, id, len(got), s)
				}
			}
		}
		commits += h.commits
		aborts += h.aborts
		forceAborts += h.forceAborts
		resolveApplies += h.resolveApplies
	}
	// The interleavings must actually exercise every protocol path.
	if commits == 0 || aborts == 0 || forceAborts == 0 || resolveApplies == 0 {
		t.Fatalf("coverage too thin: commits=%d aborts=%d forceAborts=%d resolveApplies=%d",
			commits, aborts, forceAborts, resolveApplies)
	}
}
