package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/mvcc"
	"bg3/internal/pattern"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

func openTestGroup(t *testing.T, shards int) *Group {
	t.Helper()
	g, err := Open(shards,
		&storage.Options{ExtentSize: 32 << 10, ReclaimGrace: time.Hour},
		replication.RWOptions{
			Engine: core.Options{
				Tree: bwtree.Config{
					Policy:         bwtree.ReadOptimized,
					MaxPageEntries: 16,
					ConsolidateNum: 4,
				},
				SplitThreshold: 0,
			},
			CommitWindow:  50 * time.Microsecond,
			MaxBatch:      16,
			PipelineDepth: 4,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// seedRandomGraph writes a deterministic pseudo-random graph through the
// group's batched path and returns the edge set.
func seedRandomGraph(t *testing.T, g *Group, seed int64, vertices, edges int) map[[2]graph.VertexID]struct{} {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	present := make(map[[2]graph.VertexID]struct{})
	var muts []graph.Mutation
	for len(present) < edges {
		src := graph.VertexID(1 + rng.Intn(vertices))
		dst := graph.VertexID(1 + rng.Intn(vertices))
		if src == dst {
			continue
		}
		if _, dup := present[[2]graph.VertexID{src, dst}]; dup {
			continue
		}
		present[[2]graph.VertexID{src, dst}] = struct{}{}
		muts = append(muts, graph.AddEdgeMut(graph.Edge{
			Src: src, Dst: dst, Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: "v", Value: []byte(fmt.Sprint(len(present)))}},
		}))
		if len(muts) == 32 {
			if err := g.ApplyBatch(muts); err != nil {
				t.Fatal(err)
			}
			muts = muts[:0]
		}
	}
	if len(muts) > 0 {
		if err := g.ApplyBatch(muts); err != nil {
			t.Fatal(err)
		}
	}
	return present
}

// TestGroupFanOutAndRoutedReads proves the write fan-out: a multi-shard
// batch decomposes into per-shard commit groups whose union is exactly
// the input, and every edge is readable back through routed reads, the
// snapshot, and each shard's own leader.
func TestGroupFanOutAndRoutedReads(t *testing.T) {
	g := openTestGroup(t, 4)
	edges := seedRandomGraph(t, g, 42, 64, 300)

	snap := g.Snapshot()
	defer snap.Close()
	for e := range edges {
		if _, ok, err := g.GetEdge(e[0], graph.ETypeFollow, e[1]); err != nil || !ok {
			t.Fatalf("routed GetEdge(%d->%d) = %v, %v", e[0], e[1], ok, err)
		}
		if _, ok, err := snap.GetEdge(e[0], graph.ETypeFollow, e[1]); err != nil || !ok {
			t.Fatalf("snapshot GetEdge(%d->%d) = %v, %v", e[0], e[1], ok, err)
		}
		// The owning leader holds the edge; every other shard must not.
		owner := g.Router().Owner(e[0])
		for i := 0; i < g.Shards(); i++ {
			_, ok, err := g.Leader(i).GetEdge(e[0], graph.ETypeFollow, e[1])
			if err != nil {
				t.Fatal(err)
			}
			if ok != (i == owner) {
				t.Fatalf("edge %d->%d visible on shard %d, owner is %d", e[0], e[1], i, owner)
			}
		}
	}

	st := g.Metrics().Snapshot()
	if st["shard.batches_routed"].Value == 0 {
		t.Fatal("no batches counted")
	}
	if h := st["shard.batch_fanout"].IntHistogram; h == nil || h.Max < 2 {
		t.Fatalf("expected multi-shard fan-out, histogram: %+v", h)
	}
}

// TestScatterGatherMatchesSerial is the traversal-equivalence oracle:
// KHop, MatchPattern, and FindCycles over the cut must return exactly
// what the serial helpers return when run over the same snapshot as a
// plain graph.Reader — shard count must be unobservable.
func TestScatterGatherMatchesSerial(t *testing.T) {
	for _, shards := range []int{1, 4} {
		g := openTestGroup(t, shards)
		seedRandomGraph(t, g, 7, 48, 400)

		snap := g.Snapshot()
		for _, start := range []graph.VertexID{1, 7, 23, 48} {
			for _, hops := range []int{1, 2, 3, 5} {
				for _, limit := range []int{0, 3} {
					want, err := graph.KHop(snap, start, graph.ETypeFollow, hops, limit)
					if err != nil {
						t.Fatal(err)
					}
					var stats ScatterStats
					got, err := snap.KHopScatter(start, graph.ETypeFollow, hops, limit, &stats)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("shards=%d KHop(%d,%d,%d): scatter %d vertices, serial %d",
							shards, start, hops, limit, len(got), len(want))
					}
					if len(want) > 0 && stats.Hops == 0 {
						t.Fatal("scatter stats recorded no hops")
					}
				}
			}
		}

		p := pattern.Pattern{N: 3, Edges: []pattern.PEdge{
			{From: 0, To: 1, Type: graph.ETypeFollow},
			{From: 1, To: 2, Type: graph.ETypeFollow},
		}}
		seeds := make([]graph.VertexID, 0, 48)
		for v := graph.VertexID(1); v <= 48; v++ {
			seeds = append(seeds, v)
		}
		for _, max := range []int{0, 1, 17} {
			want, err := pattern.Match(snap, p, seeds, max)
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.MatchPattern(p, seeds, max)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d MatchPattern(max=%d): scatter %d, serial %d", shards, max, len(got), len(want))
			}
		}

		for _, start := range []graph.VertexID{1, 23} {
			for _, max := range []int{0, 5} {
				want, err := pattern.FindCycles(snap, start, graph.ETypeFollow, 4, max)
				if err != nil {
					t.Fatal(err)
				}
				got, err := snap.FindCycles(start, graph.ETypeFollow, 4, max)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d FindCycles(%d,max=%d): scatter %d, serial %d",
						shards, start, max, len(got), len(want))
				}
			}
		}
		snap.Close()
		g.Close()
	}
}

// TestSnapshotVectorRoundTrip covers the consistent-cut transfer path:
// a sampled vector re-pins the identical cut while the original is open,
// and every failure mode rejects fail-closed with no pins leaked.
func TestSnapshotVectorRoundTrip(t *testing.T) {
	g := openTestGroup(t, 4)
	seedRandomGraph(t, g, 3, 32, 120)

	orig := g.Snapshot()
	defer orig.Close()
	vec := orig.Epochs()

	// Writer moves on: the cut must still pin the old boundary vector.
	seedRandomGraph(t, g, 4, 32, 60)

	buf := vec.Encode()
	decoded, err := DecodeVector(buf)
	if err != nil {
		t.Fatalf("decode round-trip: %v", err)
	}
	if !reflect.DeepEqual(decoded, vec) {
		t.Fatalf("decode(encode(v)) = %v, want %v", decoded, vec)
	}

	re, err := g.SnapshotAt(decoded)
	if err != nil {
		t.Fatalf("SnapshotAt: %v", err)
	}
	if !reflect.DeepEqual(re.Epochs(), vec) {
		t.Fatalf("re-attached epochs %v, want %v", re.Epochs(), vec)
	}
	// The re-attached cut and the original see the same graph even though
	// later writes landed.
	for _, start := range []graph.VertexID{1, 9, 30} {
		want, err := graph.KHop(orig, start, graph.ETypeFollow, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.KHop(start, graph.ETypeFollow, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("re-attached cut diverges from original at %d", start)
		}
	}
	re.Close()

	// Future component: ahead of the released horizon → rejected.
	future := append(Vector(nil), vec...)
	future[2] += 1 << 40
	if _, err := g.SnapshotAt(future); !errors.Is(err, ErrBadVector) {
		t.Fatalf("future vector err = %v, want ErrBadVector", err)
	}

	// Wrong shard count → rejected.
	if _, err := g.SnapshotAt(vec[:3]); !errors.Is(err, ErrBadVector) {
		t.Fatalf("short vector err = %v, want ErrBadVector", err)
	}

	// Mid-group LSN: released but not a boundary → mvcc.ErrNotBoundary
	// (or retired if the floor moved past it). Probe a few offsets; at
	// least one non-boundary LSN must exist below the current epochs.
	cur := g.ReadEpochs()
	rejected := false
	for delta := mvcc.Epoch(1); delta < 8 && !rejected; delta++ {
		if cur[0] < delta {
			break
		}
		mid := append(Vector(nil), cur...)
		mid[0] = cur[0] - delta
		snap, err := g.SnapshotAt(mid)
		if err == nil {
			snap.Close() // happened to hit a boundary; keep probing
			continue
		}
		rejected = true
		if !errors.Is(err, mvcc.ErrNotBoundary) && !errors.Is(err, mvcc.ErrRetiredEpoch) {
			t.Fatalf("mid-group vector err = %v", err)
		}
	}

	// Stale vector: after the original cut closes and the floor advances,
	// the old epochs retire and re-attach fails closed.
	orig.Close()
	if _, err := g.SnapshotAt(vec); err == nil {
		t.Fatal("re-attach after release should fail (epochs retired)")
	} else if !errors.Is(err, mvcc.ErrRetiredEpoch) && !errors.Is(err, mvcc.ErrNotBoundary) {
		t.Fatalf("stale vector err = %v", err)
	}

	// No pins may leak from any rejection above.
	for i := 0; i < g.Shards(); i++ {
		if n := g.Leader(i).Engine().Epochs().PinnedCount(); n != 0 {
			t.Fatalf("shard %d leaked %d pins", i, n)
		}
	}
}

// TestVectorDecodeFailsClosed hand-corrupts SSV1 buffers: every
// structural defect must reject.
func TestVectorDecodeFailsClosed(t *testing.T) {
	valid := Vector{10, 20, 30, 40}.Encode()
	if _, err := DecodeVector(valid); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}

	reseal := func(b []byte) []byte {
		body := b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
	}

	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[:len(valid)-5],
		"trailing":  append(append([]byte(nil), valid...), 0),
		"bad-magic": func() []byte { b := append([]byte(nil), valid...); b[0] ^= 0xFF; return b }(),
		"bad-version": func() []byte {
			b := append([]byte(nil), valid...)
			b[4] = 9
			return reseal(b)
		}(),
		"bad-crc": func() []byte { b := append([]byte(nil), valid...); b[len(b)-1] ^= 0xFF; return b }(),
		"zero-count": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[5:], 0)
			return reseal(b)
		}(),
		"count-mismatch": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[5:], 3)
			return reseal(b)
		}(),
		"duplicate-shard": func() []byte {
			b := append([]byte(nil), valid...)
			// Second entry claims shard 0 again.
			binary.LittleEndian.PutUint16(b[7+10:], 0)
			return reseal(b)
		}(),
		"shard-out-of-range": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[7:], 7)
			return reseal(b)
		}(),
	}
	for name, buf := range cases {
		if _, err := DecodeVector(buf); !errors.Is(err, ErrBadVector) {
			t.Errorf("%s: err = %v, want ErrBadVector", name, err)
		}
	}
}
