package shard

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"bg3/internal/graph"
	"bg3/internal/wal"
)

func testPayload() *TxnPayload {
	return &TxnPayload{
		Txn:   7,
		Fence: 3,
		Coord: 1,
		Shard: 2,
		Parts: []int{1, 2, 5},
		Muts: []graph.Mutation{
			graph.AddVertexMut(graph.Vertex{
				ID: 11, Type: graph.VTypeUser,
				Props: graph.Properties{{Name: "n", Value: []byte("alice")}},
			}),
			graph.AddEdgeMut(graph.Edge{
				Src: 11, Dst: 22, Type: graph.ETypeFollow,
				Props: graph.Properties{{Name: "w", Value: []byte{1, 2, 3}}},
			}),
			graph.DeleteEdgeMut(11, graph.ETypeLike, 33),
		},
	}
}

// The TPC1 codec round-trips every mutation kind and re-encodes
// canonically.
func TestPrepareCodecRoundTrip(t *testing.T) {
	p := testPayload()
	buf := EncodePrepare(p)
	got, err := DecodePreparePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", p, got)
	}
	if re := EncodePrepare(got); string(re) != string(buf) {
		t.Fatal("re-encode is not canonical")
	}
	// Edge case: mutations without properties.
	p2 := &TxnPayload{
		Txn: 1, Coord: 0, Shard: 0, Parts: []int{0, 3},
		Muts: []graph.Mutation{graph.AddEdgeMut(graph.Edge{Src: 1, Dst: 2, Type: 1})},
	}
	got2, err := DecodePreparePayload(EncodePrepare(p2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p2, got2) {
		t.Fatalf("no-props round trip mismatch: %+v vs %+v", p2, got2)
	}
}

// Every structural defect is rejected fail-closed.
func TestPrepareDecodeFailClosed(t *testing.T) {
	valid := EncodePrepare(testPayload())
	reseal := func(b []byte) []byte { // recompute the CRC after a mutation
		p, err := DecodePreparePayload(b)
		if err != nil {
			return b
		}
		return EncodePrepare(p)
	}
	_ = reseal
	cases := map[string][]byte{
		"empty":     nil,
		"torn":      valid[:len(valid)-7],
		"bad magic": append([]byte("NOPE"), valid[4:]...),
		"trailing":  append(append([]byte(nil), valid...), 0),
	}
	// Bit flips anywhere must be caught (CRC).
	for _, off := range []int{0, 5, 9, 21, 30, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x40
		cases[fmt.Sprintf("bit flip @%d", off)] = flipped
	}
	// Semantic defects, CRC-valid: rebuild through the encoder.
	bad := testPayload()
	bad.Txn = 0
	cases["zero txn id"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Parts = []int{2, 1, 5}
	cases["unsorted participants"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Parts = []int{2, 2, 5}
	cases["duplicate participant"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Coord = 9
	cases["coordinator not a participant"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Shard = 9
	cases["shard not a participant"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Muts = nil
	cases["empty sub-batch"] = EncodePrepare(bad)
	bad = testPayload()
	bad.Muts = []graph.Mutation{{Kind: 99}}
	cases["unknown mutation kind"] = EncodePrepare(bad)
	for name, buf := range cases {
		if _, err := DecodePreparePayload(buf); !errors.Is(err, ErrBadPrepare) {
			t.Errorf("%s: err = %v, want ErrBadPrepare", name, err)
		}
	}
	if _, err := DecodePreparePayload(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

// DecodePrepareRecord binds the payload to its carrying record: txn id
// and fence epoch must match the record's TreeID and stamped epoch.
func TestDecodePrepareRecordCrossChecks(t *testing.T) {
	p := testPayload()
	buf := EncodePrepare(p)
	rec := &wal.Record{Type: wal.RecordTxnPrepare, TreeID: p.Txn, Epoch: p.Fence, Value: buf}
	if _, err := DecodePrepareRecord(rec); err != nil {
		t.Fatalf("matching record rejected: %v", err)
	}
	wrongTxn := &wal.Record{Type: wal.RecordTxnPrepare, TreeID: p.Txn + 1, Epoch: p.Fence, Value: buf}
	if _, err := DecodePrepareRecord(wrongTxn); !errors.Is(err, ErrBadPrepare) {
		t.Fatalf("txn mismatch: err = %v, want ErrBadPrepare", err)
	}
	wrongEpoch := &wal.Record{Type: wal.RecordTxnPrepare, TreeID: p.Txn, Epoch: p.Fence + 1, Value: buf}
	if _, err := DecodePrepareRecord(wrongEpoch); !errors.Is(err, ErrBadPrepare) {
		t.Fatalf("epoch mismatch: err = %v, want ErrBadPrepare", err)
	}
	wrongType := &wal.Record{Type: wal.RecordPut, TreeID: p.Txn, Epoch: p.Fence, Value: buf}
	if _, err := DecodePrepareRecord(wrongType); !errors.Is(err, ErrBadPrepare) {
		t.Fatalf("type mismatch: err = %v, want ErrBadPrepare", err)
	}
}

// The manager's resolution rules: unknown transactions fall through to
// the durable prefix, preparing ones force-abort (and the owner's
// tryDecide then fails), decided ones report their decision.
func TestTxnManagerResolution(t *testing.T) {
	m := newTxnManager()
	if _, known := m.resolveLive(1); known {
		t.Fatal("unknown txn reported as known")
	}
	// Force-abort while preparing.
	m.begin(2)
	committed, known := m.resolveLive(2)
	if !known || committed {
		t.Fatalf("resolveLive(preparing) = (%v,%v), want abort/known", committed, known)
	}
	if m.tryDecide(2) {
		t.Fatal("tryDecide succeeded after force-abort")
	}
	m.end(2)
	// Normal decide paths.
	m.begin(3)
	if !m.tryDecide(3) {
		t.Fatal("tryDecide failed on preparing txn")
	}
	m.decide(3, true)
	if committed, known := m.resolveLive(3); !known || !committed {
		t.Fatalf("resolveLive(committed) = (%v,%v)", committed, known)
	}
	m.end(3)
	// A resolver hitting a mid-decision txn waits for the decision.
	m.begin(4)
	if !m.tryDecide(4) {
		t.Fatal("tryDecide failed")
	}
	got := make(chan bool, 1)
	go func() {
		committed, _ := m.resolveLive(4)
		got <- committed
	}()
	m.decide(4, true)
	if committed := <-got; !committed {
		t.Fatal("resolver waiting on deciding txn saw abort, decision was commit")
	}
}

// findCrossShardPair returns two vertex ids owned by different shards,
// the first owned by the lower-indexed shard.
func findCrossShardPair(r *Router) (a, b graph.VertexID) {
	a = 1
	for id := graph.VertexID(2); ; id++ {
		if r.Owner(id) != r.Owner(a) {
			if r.Owner(id) < r.Owner(a) {
				return id, a
			}
			return a, id
		}
	}
}

func crossShardBatch(a, b graph.VertexID, tag string) []graph.Mutation {
	props := graph.Properties{{Name: "t", Value: []byte(tag)}}
	return []graph.Mutation{
		graph.AddEdgeMut(graph.Edge{Src: a, Dst: 1000, Type: graph.ETypeFollow, Props: props}),
		graph.AddEdgeMut(graph.Edge{Src: b, Dst: 1000, Type: graph.ETypeFollow, Props: props}),
	}
}

// A committed multi-shard batch leaves the full 2PC record trail on the
// durable prefix — prepares on both owners, the commit decision on the
// coordinator, applied markers everywhere — and the data is readable.
// Single-shard batches leave zero transaction records (the PR 9 fast
// path is untouched).
func TestApplyBatchTwoPhaseCommit(t *testing.T) {
	g := openTestGroup(t, 4)
	a, b := findCrossShardPair(g.Router())
	sa, sb := g.Router().Owner(a), g.Router().Owner(b)
	if err := g.ApplyBatch(crossShardBatch(a, b, "x")); err != nil {
		t.Fatal(err)
	}
	// Single-shard control batch.
	if err := g.ApplyBatch([]graph.Mutation{
		graph.AddEdgeMut(graph.Edge{Src: a, Dst: 2000, Type: graph.ETypeFollow}),
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []graph.VertexID{a, b} {
		if _, ok, err := g.GetEdge(id, graph.ETypeFollow, 1000); err != nil || !ok {
			t.Fatalf("edge %d->1000 missing after commit (ok=%v err=%v)", id, ok, err)
		}
	}
	states := make(map[int]*shardTxnState)
	for _, s := range []int{sa, sb} {
		st, err := scanShardTxns(g.Store(s))
		if err != nil {
			t.Fatal(err)
		}
		states[s] = st
	}
	var txn uint64
	for id := range states[sa].prepares {
		txn = id
	}
	if txn == 0 {
		t.Fatalf("no prepare on shard %d", sa)
	}
	for _, s := range []int{sa, sb} {
		st := states[s]
		if len(st.prepares) != 1 {
			t.Fatalf("shard %d has %d prepares, want 1 (single-shard batch leaked records?)", s, len(st.prepares))
		}
		p := st.prepares[txn]
		if p == nil {
			t.Fatalf("shard %d missing prepare for txn %d", s, txn)
		}
		if p.Coord != sa || p.Shard != s || !reflect.DeepEqual(p.Parts, []int{sa, sb}) {
			t.Fatalf("shard %d payload membership = coord %d shard %d parts %v", s, p.Coord, p.Shard, p.Parts)
		}
		if !st.resolved[txn] {
			t.Fatalf("shard %d has no applied marker for txn %d", s, txn)
		}
		if len(st.inDoubt()) != 0 {
			t.Fatalf("shard %d still in doubt: %v", s, st.inDoubt())
		}
	}
	if !states[sa].commits[txn] {
		t.Fatalf("coordinator %d has no durable commit for txn %d", sa, txn)
	}
	if states[sb].commits[txn] {
		t.Fatalf("participant %d logged a commit decision", sb)
	}
}

// A coordinator killed between prepare and commit aborts the
// transaction: the batch applies nowhere, both shards end with abort
// markers, and the error carries per-shard outcomes and unwraps to
// ErrTxnAborted.
func TestTxnCoordinatorKilledBeforeCommitAborts(t *testing.T) {
	g := openTestGroup(t, 4)
	a, b := findCrossShardPair(g.Router())
	sa, sb := g.Router().Owner(a), g.Router().Owner(b)
	g.SetTxnStageHook(func(stage TxnStage, txn uint64, parts []int) {
		if stage == StagePrepared {
			if err := g.Failover(sa); err != nil {
				t.Errorf("failover: %v", err)
			}
		}
	})
	outcomes, err := g.ApplyBatchEx(crossShardBatch(a, b, "doomed"))
	g.SetTxnStageHook(nil)
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("err = %v, want ErrTxnAborted", err)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err %T does not carry a BatchError", err)
	}
	for _, s := range []int{sa, sb} {
		if outcomes[s].State != OutcomeAborted {
			t.Fatalf("shard %d outcome %v, want aborted", s, outcomes[s].State)
		}
	}
	for _, id := range []graph.VertexID{a, b} {
		if _, ok, _ := g.GetEdge(id, graph.ETypeFollow, 1000); ok {
			t.Fatalf("aborted txn visible on owner of %d", id)
		}
	}
	for _, s := range []int{sa, sb} {
		st, err := scanShardTxns(g.Store(s))
		if err != nil {
			t.Fatal(err)
		}
		if len(st.inDoubt()) != 0 {
			t.Fatalf("shard %d left in doubt after abort: %v", s, st.inDoubt())
		}
		if st.commits[0] || len(st.commits) != 0 {
			t.Fatalf("shard %d has a commit decision after abort", s)
		}
	}
	// The group keeps working: retrying the batch commits it.
	if err := g.ApplyBatch(crossShardBatch(a, b, "retry")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []graph.VertexID{a, b} {
		if _, ok, err := g.GetEdge(id, graph.ETypeFollow, 1000); err != nil || !ok {
			t.Fatalf("retried batch missing on owner of %d (ok=%v err=%v)", id, ok, err)
		}
	}
}

// A participant killed after the decision still converges: the commit is
// durable on the coordinator, so the apply retries against the new
// leader (or the failover's resolution pass re-applies the prepare) and
// the batch ends fully applied on every owner.
func TestTxnParticipantKilledAfterDecisionApplies(t *testing.T) {
	g := openTestGroup(t, 4)
	a, b := findCrossShardPair(g.Router())
	sb := g.Router().Owner(b)
	g.SetTxnStageHook(func(stage TxnStage, txn uint64, parts []int) {
		if stage == StageDecided {
			if err := g.Failover(sb); err != nil {
				t.Errorf("failover: %v", err)
			}
		}
	})
	err := g.ApplyBatch(crossShardBatch(a, b, "decided"))
	g.SetTxnStageHook(nil)
	if err != nil {
		// The apply may have lost the race with the fence entirely; the
		// resolution pass must still have completed the commit.
		t.Logf("apply returned %v; verifying resolution applied the batch", err)
	}
	for _, id := range []graph.VertexID{a, b} {
		if _, ok, gerr := g.GetEdge(id, graph.ETypeFollow, 1000); gerr != nil || !ok {
			t.Fatalf("committed txn missing on owner of %d (ok=%v err=%v)", id, ok, gerr)
		}
	}
	for _, s := range []int{g.Router().Owner(a), sb} {
		st, serr := scanShardTxns(g.Store(s))
		if serr != nil {
			t.Fatal(serr)
		}
		if len(st.inDoubt()) != 0 {
			t.Fatalf("shard %d in doubt after commit: %v", s, st.inDoubt())
		}
	}
}

// ApplyBatchEx returns per-shard outcomes on success too: touched shards
// report committed, untouched ones skipped.
func TestApplyBatchExOutcomes(t *testing.T) {
	g := openTestGroup(t, 4)
	a, b := findCrossShardPair(g.Router())
	sa, sb := g.Router().Owner(a), g.Router().Owner(b)
	outcomes, err := g.ApplyBatchEx(crossShardBatch(a, b, "ok"))
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(outcomes))
	}
	for i, o := range outcomes {
		want := OutcomeSkipped
		if i == sa || i == sb {
			want = OutcomeCommitted
		}
		if o.Shard != i || o.State != want {
			t.Fatalf("outcome[%d] = {%d %v}, want {%d %v}", i, o.Shard, o.State, i, want)
		}
	}
	// Single-shard fast path through the Ex surface.
	outcomes, err = g.ApplyBatchEx([]graph.Mutation{
		graph.AddEdgeMut(graph.Edge{Src: a, Dst: 3000, Type: graph.ETypeFollow}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		want := OutcomeSkipped
		if i == sa {
			want = OutcomeCommitted
		}
		if o.State != want {
			t.Fatalf("single-shard outcome[%d] = %v, want %v", i, o.State, want)
		}
	}
}
