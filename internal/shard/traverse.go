package shard

import (
	"runtime"
	"sync"

	"bg3/internal/graph"
	"bg3/internal/pattern"
)

// Scatter-gather traversal over a pinned cut.
//
// Every primitive here returns exactly what its serial counterpart
// (graph.KHop / pattern.Match / pattern.FindCycles over the Snapshot as
// a plain graph.Reader) would return:
//
//   - KHop's reached set depends only on the frontier *sets* and each
//     vertex's first perVertexLimit neighbors (delivered in key order by
//     the forest scan), not on frontier iteration order — dedup against
//     `visited` only skips re-adding a vertex, it never consumes limit.
//     So gathering per-shard edge lists in parallel and merging them
//     serially is order-insensitive.
//   - Match's per-seed result lists are independent (seed order only
//     decides concatenation), so seeds scatter across workers, each
//     capped at maxMatches, and the gather concatenates in seed order
//     and truncates — the serial output is exactly that prefix.
//   - FindCycles' first-hop branches are independent simple-cycle
//     enumerations (every cycle through start passes through exactly one
//     first hop), so branches scatter the same way.

// KHop runs breadth-first expansion over the cut: each hop splits the
// frontier by owner, issues one batched per-shard read per owner in
// parallel (ReadView.NeighborsMany, perVertexLimit pushed down into each
// shard's scan), and merges the per-shard edge lists into the next
// frontier.
func (s *Snapshot) KHop(start graph.VertexID, typ graph.EdgeType, hops, perVertexLimit int) (map[graph.VertexID]struct{}, error) {
	return s.KHopScatter(start, typ, hops, perVertexLimit, nil)
}

// ScatterStats accumulates scatter-gather observations for one
// traversal: hop rounds expanded and parallel per-shard reads issued.
type ScatterStats struct {
	Hops       int // frontier rounds expanded
	ShardReads int // parallel per-shard batched reads issued
}

// KHopScatter is KHop with an observation hook: when stats is non-nil it
// accumulates the hop rounds and per-shard reads the expansion issued.
func (s *Snapshot) KHopScatter(start graph.VertexID, typ graph.EdgeType, hops, perVertexLimit int, stats *ScatterStats) (map[graph.VertexID]struct{}, error) {
	visited := map[graph.VertexID]struct{}{start: {}}
	frontier := []graph.VertexID{start}
	reached := make(map[graph.VertexID]struct{})

	type shardEdges struct {
		dsts []graph.VertexID
		err  error
	}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		if stats != nil {
			stats.Hops++
		}
		parts := s.router.SplitFrontier(frontier)
		results := make([]shardEdges, len(parts))
		var wg sync.WaitGroup
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			if stats != nil {
				stats.ShardReads++
			}
			wg.Add(1)
			go func(i int, part []graph.VertexID) {
				defer wg.Done()
				res := &results[i]
				res.err = s.views[i].NeighborsMany(part, typ, perVertexLimit,
					func(_, dst graph.VertexID, _ graph.Properties) bool {
						res.dsts = append(res.dsts, dst)
						return true
					})
			}(i, part)
		}
		wg.Wait()
		var next []graph.VertexID
		for i := range results {
			if results[i].err != nil {
				return reached, results[i].err
			}
			for _, dst := range results[i].dsts {
				if _, seen := visited[dst]; !seen {
					visited[dst] = struct{}{}
					reached[dst] = struct{}{}
					next = append(next, dst)
				}
			}
		}
		frontier = next
	}
	return reached, nil
}

// scatterWorkers bounds traversal fan-out concurrency.
func scatterWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// matchScatter runs pattern.Match seed-by-seed across workers. Each
// seed's sub-search is capped at maxMatches (a seed can never contribute
// more), results concatenate in seed order and truncate to maxMatches —
// byte-for-byte the serial matcher's output.
func (s *Snapshot) matchScatter(p pattern.Pattern, seeds []graph.VertexID, maxMatches int) ([][]graph.VertexID, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) <= 1 {
		return pattern.Match(s, p, seeds, maxMatches)
	}
	type seedResult struct {
		matches [][]graph.VertexID
		err     error
	}
	results := make([]seedResult, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, scatterWorkers(len(seeds)))
	for i, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, seed graph.VertexID) {
			defer func() { <-sem; wg.Done() }()
			r := &results[i]
			r.matches, r.err = pattern.Match(s, p, []graph.VertexID{seed}, maxMatches)
		}(i, seed)
	}
	wg.Wait()
	var out [][]graph.VertexID
	for i := range results {
		out = append(out, results[i].matches...)
		if maxMatches > 0 && len(out) >= maxMatches {
			return out[:maxMatches], nil
		}
		if results[i].err != nil {
			return out, results[i].err
		}
	}
	return out, nil
}

// cyclesScatter enumerates simple cycles through start by scattering the
// independent first-hop branches across workers; gather concatenates in
// branch order and truncates to maxCycles — exactly the serial DFS
// output.
func (s *Snapshot) cyclesScatter(start graph.VertexID, typ graph.EdgeType, maxLen, maxCycles int) ([][]graph.VertexID, error) {
	if maxLen < 2 {
		return nil, nil
	}
	var branches []graph.VertexID
	if err := s.Neighbors(start, typ, 0, func(dst graph.VertexID, _ graph.Properties) bool {
		if dst != start { // self-loops are not simple cycles here
			branches = append(branches, dst)
		}
		return true
	}); err != nil {
		return nil, err
	}
	if len(branches) <= 1 {
		return pattern.FindCycles(s, start, typ, maxLen, maxCycles)
	}
	type branchResult struct {
		cycles [][]graph.VertexID
		err    error
	}
	results := make([]branchResult, len(branches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, scatterWorkers(len(branches)))
	for i, first := range branches {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, first graph.VertexID) {
			defer func() { <-sem; wg.Done() }()
			r := &results[i]
			r.cycles, r.err = s.cyclesFrom(start, first, typ, maxLen, maxCycles)
		}(i, first)
	}
	wg.Wait()
	var out [][]graph.VertexID
	for i := range results {
		out = append(out, results[i].cycles...)
		if maxCycles > 0 && len(out) >= maxCycles {
			return out[:maxCycles], nil
		}
		if results[i].err != nil {
			return out, results[i].err
		}
	}
	return out, nil
}

// cyclesFrom enumerates simple cycles start → first → ... → start, the
// per-branch unit of cyclesScatter. The DFS mirrors pattern.FindCycles
// exactly, seeded with a two-vertex path.
func (s *Snapshot) cyclesFrom(start, first graph.VertexID, typ graph.EdgeType, maxLen, maxCycles int) ([][]graph.VertexID, error) {
	var out [][]graph.VertexID
	path := []graph.VertexID{start, first}
	onPath := map[graph.VertexID]bool{start: true, first: true}
	var dfs func(cur graph.VertexID) error
	dfs = func(cur graph.VertexID) error {
		if maxCycles > 0 && len(out) >= maxCycles {
			return nil
		}
		var nexts []graph.VertexID
		if err := s.Neighbors(cur, typ, 0, func(dst graph.VertexID, _ graph.Properties) bool {
			nexts = append(nexts, dst)
			return true
		}); err != nil {
			return err
		}
		for _, nxt := range nexts {
			if nxt == start && len(path) >= 2 {
				out = append(out, append([]graph.VertexID(nil), path...))
				if maxCycles > 0 && len(out) >= maxCycles {
					return nil
				}
				continue
			}
			if onPath[nxt] || len(path) >= maxLen {
				continue
			}
			path = append(path, nxt)
			onPath[nxt] = true
			if err := dfs(nxt); err != nil {
				return err
			}
			onPath[nxt] = false
			path = path[:len(path)-1]
		}
		return nil
	}
	if err := dfs(first); err != nil {
		return out, err
	}
	return out, nil
}
