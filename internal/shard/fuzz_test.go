package shard

import (
	"bytes"
	"errors"
	"testing"

	"bg3/internal/mvcc"
)

// FuzzShardSnapshotVector fuzzes the SSV1 epoch-vector decoder — the one
// input a sharded deployment accepts from outside the process. Properties:
//
//   - DecodeVector never panics, whatever the bytes;
//   - anything it accepts is canonical: re-encoding reproduces the input
//     byte for byte (there is exactly one wire form per vector);
//   - accepted vectors are structurally sound (1..MaxVectorShards
//     components), and validation against a released horizon stays
//     fail-closed: any component ahead of its shard rejects with
//     mvcc.ErrFutureEpoch, wrong-length horizons reject outright.
func FuzzShardSnapshotVector(f *testing.F) {
	f.Add([]byte{})
	f.Add(Vector{7}.Encode())
	f.Add(Vector{1, 2, 3, 4}.Encode())
	valid := Vector{10, 0, 1 << 40, 25}.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated trailer
	f.Add(valid[:vectorHeaderLen])

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVector(data)
		if err != nil {
			if !errors.Is(err, ErrBadVector) {
				t.Fatalf("decode error %v does not wrap ErrBadVector", err)
			}
			return
		}
		if len(v) < 1 || len(v) > MaxVectorShards {
			t.Fatalf("decoder accepted %d components", len(v))
		}
		if re := v.Encode(); !bytes.Equal(re, data) {
			t.Fatalf("accepted vector is not canonical:\n in  %x\n out %x", data, re)
		}

		// Exact released horizon: always valid.
		released := make([]uint64, len(v))
		for i, e := range v {
			released[i] = uint64(e)
		}
		if err := v.ValidateAgainst(released); err != nil {
			t.Fatalf("vector rejected against its own horizon: %v", err)
		}

		// Any nonzero component is ahead of an all-zero horizon: the stale
		// shard must reject with ErrFutureEpoch, fail closed.
		ahead := false
		for _, e := range v {
			if e > 0 {
				ahead = true
			}
		}
		if ahead {
			if err := v.ValidateAgainst(make([]uint64, len(v))); !errors.Is(err, mvcc.ErrFutureEpoch) {
				t.Fatalf("component ahead of horizon: err = %v, want ErrFutureEpoch", err)
			}
		}

		// Shard-count mismatch rejects regardless of values.
		if err := v.ValidateAgainst(make([]uint64, len(v)+1)); err == nil {
			t.Fatal("wrong-length horizon accepted")
		}
	})
}
