package shard

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Cross-shard two-phase commit (ISSUE 10).
//
// A multi-shard batch is decomposed by the Router and committed with a
// lightweight 2PC layered on the per-shard group committers:
//
//  1. PREPARE: every participant logs one RecordTxnPrepare on its own
//     stream whose Value is the TPC1 payload below — the participant's
//     entire sub-batch as a logical redo intent plus the transaction's
//     membership. The record rides the ordinary group-commit envelope
//     (no extra fsync, full pipeline depth). Nothing is applied to
//     memory, so an undecided prepare is invisible at every epoch by
//     construction; an mvcc hold additionally freezes the shard's
//     published read horizon across the window.
//  2. DECIDE: once every prepare is durable the coordinator (the lowest
//     touched shard) logs RecordTxnCommit on its stream. Any prepare
//     failure decides abort instead (RecordTxnAbort, best effort — the
//     protocol is presumed-abort, so a lost abort record is still an
//     abort).
//  3. APPLY: each participant re-applies its sub-batch through the
//     normal data path (idempotent upserts/deletes) and logs a local
//     RecordTxnApplied marker; only then is the client acked.
//
// In-doubt resolution: a durable prepare with no local Applied/Abort
// marker is resolved by consulting, in order, the live transaction
// manager (force-aborting transactions still preparing, waiting out
// ones mid-decision) and the coordinator's durable WAL prefix — a
// durable RecordTxnCommit means commit, anything else means abort.
// Only the gapless prefix counts: a commit record stranded past a
// pipeline hole is never delivered by recovery, matching the committer's
// maybe-semantics for unacknowledged appends.

// TxnPayload is the decoded TPC1 prepare payload: one participant's
// sub-batch plus the transaction membership needed to resolve it.
type TxnPayload struct {
	// Txn is the group-unique transaction id (nonzero). The carrying WAL
	// record's TreeID field holds the same id for cheap scans.
	Txn uint64
	// Fence is the participant writer's WAL fence epoch at prepare time.
	// It must match the carrying record's stamped epoch — a mismatch
	// means the payload was spliced across leader tenures.
	Fence uint64
	// Coord is the coordinator shard (always a participant).
	Coord int
	// Shard is the participant this prepare belongs to.
	Shard int
	// Parts lists every participant shard, strictly ascending.
	Parts []int
	// Muts is this participant's sub-batch, in input order.
	Muts []graph.Mutation
}

// TPC1 wire format (little endian, like SSV1):
//
//	magic[4]="TPC1" version[1]=1
//	txn[8] fence[8] coord[2] shard[2]
//	nparts[2] { part[2] }*        (strictly ascending; coord and shard present)
//	nmuts[4]  { mut }*            (>= 1)
//	crc32[4]LE over everything before it (IEEE)
//
// One mutation:
//
//	kind[1]
//	  add-vertex: id[8] vtype[2] plen[4] props
//	  add-edge:   src[8] dst[8] etype[2] plen[4] props
//	  del-edge:   src[8] dst[8] etype[2]
//
// props is graph.EncodeProps output and must be canonical (re-encoding
// the decoded list reproduces the bytes). Decoding fails closed on any
// structural defect; an accepted payload re-encodes byte-identically.
const (
	txnMagic   = "TPC1"
	txnVersion = 1

	txnHeaderLen  = 4 + 1 + 8 + 8 + 2 + 2 + 2
	txnTrailerLen = 4
)

// ErrBadPrepare reports an undecodable or inconsistent prepare payload.
var ErrBadPrepare = errors.New("shard: bad txn prepare payload")

// EncodePrepare serializes the payload in the TPC1 wire format.
func EncodePrepare(p *TxnPayload) []byte {
	buf := make([]byte, 0, txnHeaderLen+len(p.Parts)*2+len(p.Muts)*32+txnTrailerLen)
	buf = append(buf, txnMagic...)
	buf = append(buf, txnVersion)
	buf = binary.LittleEndian.AppendUint64(buf, p.Txn)
	buf = binary.LittleEndian.AppendUint64(buf, p.Fence)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Coord))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(p.Shard))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.Parts)))
	for _, s := range p.Parts {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Muts)))
	for _, m := range p.Muts {
		buf = append(buf, byte(m.Kind))
		switch m.Kind {
		case graph.MutAddVertex:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Vertex.ID))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(m.Vertex.Type))
			props := graph.EncodeProps(m.Vertex.Props)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(props)))
			buf = append(buf, props...)
		case graph.MutAddEdge:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Edge.Src))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Edge.Dst))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(m.Edge.Type))
			props := graph.EncodeProps(m.Edge.Props)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(props)))
			buf = append(buf, props...)
		case graph.MutDeleteEdge:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Edge.Src))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Edge.Dst))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(m.Edge.Type))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodePreparePayload parses and validates a TPC1 payload, failing
// closed on truncation, trailing bytes, checksum mismatch, unknown
// kinds, non-canonical property encodings, and any membership defect
// (zero txn id, unsorted or duplicate participants, coordinator or
// owning shard missing from the participant list).
func DecodePreparePayload(buf []byte) (*TxnPayload, error) {
	if len(buf) < txnHeaderLen+4+txnTrailerLen {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBadPrepare, len(buf))
	}
	if string(buf[:4]) != txnMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPrepare)
	}
	if buf[4] != txnVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadPrepare, buf[4])
	}
	body := buf[:len(buf)-txnTrailerLen]
	sum := binary.LittleEndian.Uint32(buf[len(buf)-txnTrailerLen:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadPrepare)
	}
	p := &TxnPayload{
		Txn:   binary.LittleEndian.Uint64(body[5:]),
		Fence: binary.LittleEndian.Uint64(body[13:]),
		Coord: int(binary.LittleEndian.Uint16(body[21:])),
		Shard: int(binary.LittleEndian.Uint16(body[23:])),
	}
	if p.Txn == 0 {
		return nil, fmt.Errorf("%w: zero txn id", ErrBadPrepare)
	}
	nparts := int(binary.LittleEndian.Uint16(body[25:]))
	if nparts == 0 || nparts > MaxVectorShards {
		return nil, fmt.Errorf("%w: %d participants", ErrBadPrepare, nparts)
	}
	rest := body[txnHeaderLen:]
	if len(rest) < nparts*2+4 {
		return nil, fmt.Errorf("%w: truncated participant list", ErrBadPrepare)
	}
	p.Parts = make([]int, nparts)
	coordOK, shardOK := false, false
	for i := range p.Parts {
		s := int(binary.LittleEndian.Uint16(rest[i*2:]))
		if i > 0 && s <= p.Parts[i-1] {
			return nil, fmt.Errorf("%w: participants not strictly ascending", ErrBadPrepare)
		}
		p.Parts[i] = s
		coordOK = coordOK || s == p.Coord
		shardOK = shardOK || s == p.Shard
	}
	if !coordOK {
		return nil, fmt.Errorf("%w: coordinator %d not a participant", ErrBadPrepare, p.Coord)
	}
	if !shardOK {
		return nil, fmt.Errorf("%w: shard %d not a participant", ErrBadPrepare, p.Shard)
	}
	rest = rest[nparts*2:]
	nmuts := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if nmuts == 0 {
		return nil, fmt.Errorf("%w: empty sub-batch", ErrBadPrepare)
	}
	if uint64(nmuts) > uint64(len(rest)) { // every mutation is >= 1 byte
		return nil, fmt.Errorf("%w: %d mutations in %d bytes", ErrBadPrepare, nmuts, len(rest))
	}
	p.Muts = make([]graph.Mutation, 0, nmuts)
	for i := uint32(0); i < nmuts; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: truncated mutation %d", ErrBadPrepare, i)
		}
		kind := graph.MutationKind(rest[0])
		rest = rest[1:]
		var m graph.Mutation
		m.Kind = kind
		switch kind {
		case graph.MutAddVertex:
			if len(rest) < 14 {
				return nil, fmt.Errorf("%w: truncated vertex mutation %d", ErrBadPrepare, i)
			}
			m.Vertex.ID = graph.VertexID(binary.LittleEndian.Uint64(rest))
			m.Vertex.Type = graph.VertexType(binary.LittleEndian.Uint16(rest[8:]))
			plen := binary.LittleEndian.Uint32(rest[10:])
			rest = rest[14:]
			props, rem, err := decodeCanonicalProps(rest, plen, i)
			if err != nil {
				return nil, err
			}
			m.Vertex.Props = props
			rest = rem
		case graph.MutAddEdge:
			if len(rest) < 22 {
				return nil, fmt.Errorf("%w: truncated edge mutation %d", ErrBadPrepare, i)
			}
			m.Edge.Src = graph.VertexID(binary.LittleEndian.Uint64(rest))
			m.Edge.Dst = graph.VertexID(binary.LittleEndian.Uint64(rest[8:]))
			m.Edge.Type = graph.EdgeType(binary.LittleEndian.Uint16(rest[16:]))
			plen := binary.LittleEndian.Uint32(rest[18:])
			rest = rest[22:]
			props, rem, err := decodeCanonicalProps(rest, plen, i)
			if err != nil {
				return nil, err
			}
			m.Edge.Props = props
			rest = rem
		case graph.MutDeleteEdge:
			if len(rest) < 18 {
				return nil, fmt.Errorf("%w: truncated delete mutation %d", ErrBadPrepare, i)
			}
			m.Edge.Src = graph.VertexID(binary.LittleEndian.Uint64(rest))
			m.Edge.Dst = graph.VertexID(binary.LittleEndian.Uint64(rest[8:]))
			m.Edge.Type = graph.EdgeType(binary.LittleEndian.Uint16(rest[16:]))
			rest = rest[18:]
		default:
			return nil, fmt.Errorf("%w: unknown mutation kind %d", ErrBadPrepare, kind)
		}
		p.Muts = append(p.Muts, m)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPrepare, len(rest))
	}
	return p, nil
}

// decodeCanonicalProps decodes a length-prefixed property list and
// insists on canonical encoding: the decoded list must re-encode to the
// exact input bytes, so an accepted payload round-trips byte-identically.
func decodeCanonicalProps(rest []byte, plen uint32, i uint32) (graph.Properties, []byte, error) {
	if uint64(plen) > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("%w: truncated properties in mutation %d", ErrBadPrepare, i)
	}
	raw := rest[:plen]
	props, err := graph.DecodeProps(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: mutation %d: %v", ErrBadPrepare, i, err)
	}
	if enc := graph.EncodeProps(props); len(enc) != len(raw) || string(enc) != string(raw) {
		return nil, nil, fmt.Errorf("%w: non-canonical properties in mutation %d", ErrBadPrepare, i)
	}
	return props, rest[plen:], nil
}

// DecodePrepareRecord decodes a RecordTxnPrepare and cross-checks the
// payload against the carrying record: the record's TreeID must equal
// the payload's txn id and its stamped epoch the payload's fence epoch.
// A mismatch means the payload was spliced from another transaction or
// leader tenure and the record is rejected.
func DecodePrepareRecord(rec *wal.Record) (*TxnPayload, error) {
	if rec.Type != wal.RecordTxnPrepare {
		return nil, fmt.Errorf("%w: record type %v", ErrBadPrepare, rec.Type)
	}
	p, err := DecodePreparePayload(rec.Value)
	if err != nil {
		return nil, err
	}
	if p.Txn != rec.TreeID {
		return nil, fmt.Errorf("%w: payload txn %d, record txn %d", ErrBadPrepare, p.Txn, rec.TreeID)
	}
	if p.Fence != rec.Epoch {
		return nil, fmt.Errorf("%w: payload fence %d, record epoch %d", ErrBadPrepare, p.Fence, rec.Epoch)
	}
	return p, nil
}

// txnPhase is a live transaction's protocol state in the group-level
// manager. Transitions: preparing → deciding → committed | aborted; a
// resolution pass force-aborts a transaction still preparing (its
// coordinator has not started deciding, so abort is safe) and waits out
// one mid-decision (the commit record's durability is about to be
// known).
type txnPhase int

const (
	txnPreparing txnPhase = iota
	txnDeciding
	txnCommitted
	txnAborted
)

// txnManager tracks in-flight cross-shard transactions so a concurrent
// failover's resolution pass never guesses against a decision that is
// being made on another goroutine.
type txnManager struct {
	mu   sync.Mutex
	cond *sync.Cond
	txns map[uint64]txnPhase
}

func newTxnManager() *txnManager {
	m := &txnManager{txns: make(map[uint64]txnPhase)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *txnManager) begin(txn uint64) {
	m.mu.Lock()
	m.txns[txn] = txnPreparing
	m.mu.Unlock()
}

// tryDecide moves preparing → deciding and reports whether the caller
// owns the decision; false means a resolution pass already force-aborted
// the transaction.
func (m *txnManager) tryDecide(txn uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.txns[txn] != txnPreparing {
		return false
	}
	m.txns[txn] = txnDeciding
	return true
}

func (m *txnManager) decide(txn uint64, committed bool) {
	m.mu.Lock()
	if committed {
		m.txns[txn] = txnCommitted
	} else {
		m.txns[txn] = txnAborted
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// end forgets a finished transaction. After this, resolution falls back
// to the coordinator's durable prefix — which is authoritative by then.
func (m *txnManager) end(txn uint64) {
	m.mu.Lock()
	delete(m.txns, txn)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// resolveLive resolves an in-doubt transaction against live state:
// known=false means the manager has no record (consult the coordinator's
// durable prefix). A transaction still preparing is force-aborted — its
// coordinator cannot have logged a commit yet, and after this its
// tryDecide fails, so the prepare fan-out aborts too. One mid-decision is
// waited out.
func (m *txnManager) resolveLive(txn uint64) (committed, known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		phase, ok := m.txns[txn]
		if !ok {
			return false, false
		}
		switch phase {
		case txnPreparing:
			m.txns[txn] = txnAborted
			m.cond.Broadcast()
			return false, true
		case txnCommitted:
			return true, true
		case txnAborted:
			return false, true
		case txnDeciding:
			m.cond.Wait()
		}
	}
}

// newTxnSalt draws a random starting point for the transaction id
// counter so ids from different Group instances over the same stores
// never collide.
func newTxnSalt() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a fixed odd constant; ids stay unique within the
		// process, which is what correctness needs.
		return fibMul
	}
	return binary.LittleEndian.Uint64(b[:])
}

// shardTxnState summarizes one shard's durable transaction records, as
// recovery sees them: only the gapless WAL prefix counts.
type shardTxnState struct {
	// prepares maps txn id → decoded payload for every durable prepare.
	prepares map[uint64]*TxnPayload
	// resolved holds txn ids with a local Applied or Abort marker.
	resolved map[uint64]bool
	// commits holds txn ids with a durable commit decision (this shard
	// acting as coordinator).
	commits map[uint64]bool
}

// inDoubt returns the txn ids with a durable prepare and no local
// resolution marker, i.e. the ones recovery must resolve.
func (s *shardTxnState) inDoubt() []uint64 {
	var ids []uint64
	for txn := range s.prepares {
		if !s.resolved[txn] {
			ids = append(ids, txn)
		}
	}
	return ids
}

// scanShardTxns reads a shard's durable WAL prefix and extracts its
// transaction control records. A pipeline hole ends the prefix: records
// stranded past it are never delivered by recovery (the reader bumps the
// stream epoch over the debris), so they do not count as durable here
// either. Undecodable prepare payloads are rejected fail-closed — the
// transaction resolves as abort, never as a guess.
func scanShardTxns(st *storage.Store) (*shardTxnState, error) {
	state := &shardTxnState{
		prepares: make(map[uint64]*TxnPayload),
		resolved: make(map[uint64]bool),
		commits:  make(map[uint64]bool),
	}
	reader := wal.NewReader(st)
	for {
		groups, err := reader.PollGroups()
		for _, grp := range groups {
			for _, rec := range grp {
				switch rec.Type {
				case wal.RecordTxnPrepare:
					if p, derr := DecodePrepareRecord(rec); derr == nil {
						state.prepares[rec.TreeID] = p
					}
				case wal.RecordTxnCommit:
					state.commits[rec.TreeID] = true
				case wal.RecordTxnAbort, wal.RecordTxnApplied:
					state.resolved[rec.TreeID] = true
				}
			}
		}
		if err != nil {
			var gap *wal.GapError
			if errors.As(err, &gap) || errors.Is(err, storage.ErrExtentLost) {
				return state, nil // durable prefix ends here
			}
			return nil, err
		}
		if len(groups) == 0 {
			return state, nil
		}
	}
}
