package shard

import (
	"math/rand"
	"testing"

	"bg3/internal/graph"
)

// mutKey is a comparable identity for the test's mutations (none carry
// properties, so kind + endpoints identify one).
type mutKey struct {
	kind graph.MutationKind
	id   graph.VertexID
	dst  graph.VertexID
	et   graph.EdgeType
	vt   graph.VertexType
}

func keyOf(m graph.Mutation) mutKey {
	if m.Kind == graph.MutAddVertex {
		return mutKey{kind: m.Kind, id: m.Vertex.ID, vt: m.Vertex.Type}
	}
	return mutKey{kind: m.Kind, id: m.Edge.Src, dst: m.Edge.Dst, et: m.Edge.Type}
}

// TestRouterProperties is the ISSUE 9 router property test: for random
// vertex sets and shard counts, routing is total, stable under re-route,
// and every multi-shard batch decomposes into per-shard groups whose
// union is exactly the input — no duplicate, no drop.
func TestRouterProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed9))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(32)
		r := NewRouter(n)
		if r.Shards() != n {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}

		ids := make([]graph.VertexID, 1+rng.Intn(512))
		for i := range ids {
			// Mix small sequential IDs with arbitrary 64-bit ones.
			if rng.Intn(2) == 0 {
				ids[i] = graph.VertexID(rng.Intn(1000))
			} else {
				ids[i] = graph.VertexID(rng.Uint64())
			}
		}

		// Total + stable: every vertex gets exactly one in-range owner and
		// re-routing gives the same answer, including via a fresh router.
		r2 := NewRouter(n)
		for _, id := range ids {
			s := r.Owner(id)
			if s < 0 || s >= n {
				t.Fatalf("Owner(%d) = %d out of range [0,%d)", id, s, n)
			}
			if again := r.Owner(id); again != s {
				t.Fatalf("Owner(%d) unstable: %d then %d", id, s, again)
			}
			if other := r2.Owner(id); other != s {
				t.Fatalf("Owner(%d) differs across routers: %d vs %d", id, s, other)
			}
		}

		// Batch decomposition: union of the per-shard groups == input.
		muts := make([]graph.Mutation, len(ids))
		for i, id := range ids {
			switch rng.Intn(3) {
			case 0:
				muts[i] = graph.AddVertexMut(graph.Vertex{ID: id, Type: graph.VTypeUser})
			case 1:
				muts[i] = graph.AddEdgeMut(graph.Edge{Src: id, Dst: graph.VertexID(rng.Uint64()), Type: graph.ETypeFollow})
			default:
				muts[i] = graph.DeleteEdgeMut(id, graph.ETypeFollow, graph.VertexID(rng.Uint64()))
			}
		}
		parts := r.SplitBatch(muts)
		if len(parts) != n {
			t.Fatalf("SplitBatch returned %d groups, want %d", len(parts), n)
		}
		total := 0
		seen := make(map[mutKey][]int) // mutation -> input indexes (multiset)
		for i, m := range muts {
			k := keyOf(m)
			seen[k] = append(seen[k], i)
		}
		for s, part := range parts {
			prev := -1
			for _, m := range part {
				if r.Owner(routeKey(m)) != s {
					t.Fatalf("shard %d group holds mutation owned by %d", s, r.Owner(routeKey(m)))
				}
				k := keyOf(m)
				idxs := seen[k]
				if len(idxs) == 0 {
					t.Fatalf("shard %d delivered a mutation not in the input (duplicate or fabricated): %+v", s, m)
				}
				// Relative input order is preserved within a shard group:
				// consume the earliest remaining index and require ascent.
				if idxs[0] < prev {
					t.Fatalf("shard %d group out of input order", s)
				}
				prev = idxs[0]
				seen[k] = idxs[1:]
				total++
			}
		}
		if total != len(muts) {
			t.Fatalf("groups deliver %d mutations, input had %d", total, len(muts))
		}
		for k, idxs := range seen {
			if len(idxs) != 0 {
				t.Fatalf("mutation dropped by SplitBatch: %+v", k)
			}
		}

		// Frontier split mirrors the same properties for plain vertex sets.
		fparts := r.SplitFrontier(ids)
		count := 0
		for s, part := range fparts {
			for _, id := range part {
				if r.Owner(id) != s {
					t.Fatalf("frontier shard %d holds vertex owned by %d", s, r.Owner(id))
				}
				count++
			}
		}
		if count != len(ids) {
			t.Fatalf("frontier split delivers %d vertices, input had %d", count, len(ids))
		}
	}
}

// TestRouterSingleShardFastPath pins the no-copy fast path: a batch that
// routes entirely to one shard is passed through as the identical slice.
func TestRouterSingleShardFastPath(t *testing.T) {
	r := NewRouter(4)
	// Find three vertices on the same shard.
	var ids []graph.VertexID
	want := -1
	for id := graph.VertexID(1); len(ids) < 3; id++ {
		s := r.Owner(id)
		if want == -1 {
			want = s
		}
		if s == want {
			ids = append(ids, id)
		}
	}
	muts := []graph.Mutation{
		graph.AddVertexMut(graph.Vertex{ID: ids[0], Type: graph.VTypeUser}),
		graph.AddEdgeMut(graph.Edge{Src: ids[1], Dst: 999, Type: graph.ETypeFollow}),
		graph.DeleteEdgeMut(ids[2], graph.ETypeFollow, 999),
	}
	parts := r.SplitBatch(muts)
	for s, part := range parts {
		if s == want {
			if len(part) != len(muts) || &part[0] != &muts[0] {
				t.Fatalf("single-shard batch not passed through as-is")
			}
			continue
		}
		if len(part) != 0 {
			t.Fatalf("shard %d unexpectedly received %d mutations", s, len(part))
		}
	}
}
