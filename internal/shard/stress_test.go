package shard

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// TestStressShardedWritersFailover is the ISSUE 9 -race stress leg: 32
// writers hammer a 4-shard group with multi-shard batches while readers
// sample consistent cuts and one shard's leader is killed mid-run. The
// contract checked end to end:
//
//   - a writer racing the failover sees an explicit error wrapping
//     storage.ErrFenced or wal.ErrWriterFailed — never a silent drop —
//     and a bounded retry against the promoted leader succeeds;
//   - every shard's epoch vector component is monotone across every
//     sample, including across the promotion (the recovered clock starts
//     at the durable boundary, never behind the released horizon);
//   - after quiescing, every acked write is readable through the routed
//     path, and each shard's durable WAL delivers a gapless LSN sequence
//     1..LastLSN (zombie groups stranded by the fence mid-pipeline are
//     purged by the reader, never delivered).
func TestStressShardedWritersFailover(t *testing.T) {
	const (
		writers  = 32
		shards   = 4
		rounds   = 40
		edgesPer = 4
		readers  = 3
		victim   = 1
	)
	g := openTestGroup(t, shards)

	var (
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
		auxWG    sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Each writer owns srcs {w*100+1 .. w*100+edgesPer} — spread across
	// shards by the hash, so nearly every batch fans out — and versions
	// its edges so readers can assert time never runs backwards.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for n := 0; n < rounds; n++ {
				muts := make([]graph.Mutation, 0, edgesPer)
				for d := 0; d < edgesPer; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: graph.VertexID(w*100 + d + 1), Dst: graph.VertexID(9000 + n),
						Type: graph.ETypeFollow,
						Props: graph.Properties{{
							Name: "ver", Value: []byte(strconv.Itoa(n)),
						}},
					}))
				}
				// Retry the fenced window: the failover promotes a new
				// leader on the same durable state, and mutations are
				// idempotent upserts, so replaying the batch is safe.
				deadline := time.Now().Add(10 * time.Second)
				for {
					err := g.ApplyBatch(muts)
					if err == nil {
						break
					}
					if !errors.Is(err, storage.ErrFenced) && !errors.Is(err, wal.ErrWriterFailed) &&
						!errors.Is(err, wal.ErrCommitterStopped) {
						fail(fmt.Errorf("writer %d: non-fence error: %w", w, err))
						return
					}
					if time.Now().After(deadline) {
						fail(fmt.Errorf("writer %d: still fenced after failover: %w", w, err))
						return
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(w)
	}

	// Readers sample the released epoch vector and pin full cuts; each
	// vector component must be monotone across samples and failovers.
	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			last := make(Vector, shards)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vec := g.ReadEpochs()
				for i, e := range vec {
					if e < last[i] {
						fail(fmt.Errorf("shard %d epoch ran backwards: %d after %d", i, e, last[i]))
						return
					}
					last[i] = e
				}
				snap := g.Snapshot()
				for i, e := range snap.Epochs() {
					if e < vec[i] {
						fail(fmt.Errorf("shard %d pinned cut %d behind sampled release %d", i, e, vec[i]))
						snap.Close()
						return
					}
				}
				snap.Close()
			}
		}()
	}

	// Kill one shard leader mid-run.
	time.Sleep(2 * time.Millisecond)
	if err := g.Failover(victim); err != nil {
		t.Fatalf("failover: %v", err)
	}

	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if got := g.Cluster().Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}

	// Quiesced: every acked write visible through the routed read path.
	for w := 0; w < writers; w++ {
		for d := 0; d < edgesPer; d++ {
			src := graph.VertexID(w*100 + d + 1)
			n, err := g.Degree(src, graph.ETypeFollow)
			if err != nil {
				t.Fatal(err)
			}
			if n != rounds {
				var got []graph.VertexID
				g.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, _ graph.Properties) bool {
					got = append(got, dst)
					return true
				})
				t.Fatalf("src %d (shard %d): degree %d, want %d; dsts %v",
					src, g.Router().Owner(src), n, rounds, got)
			}
		}
	}

	// Each shard's durable WAL must be a gapless prefix: LSNs 1..N with
	// no zombie records behind the fence, and N matching the committer's
	// assigned horizon.
	lastLSNs := g.Cluster().LastLSNs()
	for i := 0; i < shards; i++ {
		reader := wal.NewReader(g.Store(i))
		groups, err := reader.PollGroups()
		if err != nil {
			t.Fatalf("shard %d: replay: %v", i, err)
		}
		var lsn wal.LSN
		for _, grp := range groups {
			for _, rec := range grp {
				lsn++
				if rec.LSN != lsn {
					t.Fatalf("shard %d: WAL record LSN %d, want %d: durable prefix has a gap", i, rec.LSN, lsn)
				}
			}
		}
		if uint64(lsn) != lastLSNs[i] {
			t.Fatalf("shard %d: WAL holds %d records, committer assigned up to %d", i, lsn, lastLSNs[i])
		}
		if skips := reader.FencedSkips(); skips != 0 {
			// Expected with a pipelined committer: a later in-flight group
			// can land durably while an earlier one is cut off by the
			// fence. Those records are beyond the old epoch's contiguous
			// prefix, so the reader purges them and the promoted leader
			// reuses their LSNs — the gapless checks above prove none
			// leaked into the delivered sequence.
			t.Logf("shard %d: %d fence-purged zombie records (pipelined in-flight at failover)", i, skips)
		}
		if i == victim && reader.Epoch() == 0 {
			t.Fatalf("shard %d: log tail epoch 0 after a failover", i)
		}
	}

	// Pin accounting: no reader leaked a cut.
	for i := 0; i < shards; i++ {
		if n := g.Leader(i).Engine().Epochs().PinnedCount(); n != 0 {
			t.Fatalf("shard %d: %d pins leaked", i, n)
		}
	}
}
