// Package shard partitions the vertex space across N shard groups, each
// with its own WAL stream, group committer, MVCC epoch clock, and
// leader/follower set (BG3 §3.1 multi-RW deployments). A Router maps
// every vertex to exactly one shard; a Group fans batched writes out as
// per-shard commit groups; a Snapshot pins one released read epoch per
// shard (a consistent cut) and runs KHop/MatchPattern/FindCycles as
// scatter-gather over the pinned vector — each hop resolves the
// frontier's owners, issues per-shard reads in parallel, and merges
// results with perVertexLimit pushdown intact.
package shard

import "bg3/internal/graph"

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64 / φ, odd). The
// same constant routes writes in the replication cluster and the Fig. 8
// simulation cluster, so a vertex written through any path lands on the
// same shard.
const fibMul = 0x9E3779B97F4A7C15

// Router maps vertices to shards by Fibonacci hashing. Routing is total
// (every VertexID has exactly one owner) and stable (a pure function of
// the ID and the shard count). The zero value routes everything to shard
// 0; use NewRouter.
type Router struct {
	n int
}

// NewRouter returns a router over n shards (n < 1 is clamped to 1).
func NewRouter(n int) *Router {
	if n < 1 {
		n = 1
	}
	return &Router{n: n}
}

// Shards returns the shard count.
func (r *Router) Shards() int {
	if r.n < 1 {
		return 1
	}
	return r.n
}

// Owner returns the shard owning id.
func (r *Router) Owner(id graph.VertexID) int {
	return int((uint64(id) * fibMul) % uint64(r.Shards()))
}

// routeKey returns the vertex whose owner decides where a mutation
// lives: vertices route by their own ID, edges by their source (edges
// are stored in the source vertex's adjacency, so the edge and its
// endpoint stay colocated).
func routeKey(m graph.Mutation) graph.VertexID {
	if m.Kind == graph.MutAddVertex {
		return m.Vertex.ID
	}
	return m.Edge.Src
}

// SplitBatch decomposes a batch into per-shard groups, index-aligned
// with the shard order; shards the batch does not touch get a nil slice.
// Relative order within each group is the input order, and the
// concatenation of the groups is a permutation of the input — no
// mutation is duplicated or dropped (the router property test pins this
// down). Each group commits as one atomic, durable WAL group on its
// shard; the batch as a whole is NOT atomic across shards.
func (r *Router) SplitBatch(muts []graph.Mutation) [][]graph.Mutation {
	parts := make([][]graph.Mutation, r.Shards())
	if len(muts) == 0 {
		return parts
	}
	// Fast path: single-shard batches (the common case for workloads that
	// batch around one entity) avoid any per-shard allocation.
	first := r.Owner(routeKey(muts[0]))
	single := true
	for _, m := range muts[1:] {
		if r.Owner(routeKey(m)) != first {
			single = false
			break
		}
	}
	if single {
		parts[first] = muts
		return parts
	}
	for _, m := range muts {
		s := r.Owner(routeKey(m))
		parts[s] = append(parts[s], m)
	}
	return parts
}

// Coordinator elects the coordinator shard for a split batch: the
// lowest-index touched shard. The election is deterministic — any node
// replaying the same split picks the same coordinator — and the
// coordinator is always a participant, so its commit decision rides the
// same stream as its own prepare.
func (r *Router) Coordinator(parts [][]graph.Mutation) int {
	for i, part := range parts {
		if len(part) > 0 {
			return i
		}
	}
	return 0
}

// SplitFrontier groups a traversal frontier by owning shard, preserving
// the input order within each group — the scatter half of one hop.
func (r *Router) SplitFrontier(ids []graph.VertexID) [][]graph.VertexID {
	parts := make([][]graph.VertexID, r.Shards())
	for _, id := range ids {
		s := r.Owner(id)
		parts[s] = append(parts[s], id)
	}
	return parts
}
