package shard

import (
	"bytes"
	"errors"
	"testing"

	"bg3/internal/graph"
	"bg3/internal/wal"
)

// FuzzDecodePrepareRecord fuzzes the TPC1 prepare-record decoder — the
// bytes recovery trusts when resolving in-doubt transactions. The record
// metadata (txn id, stamped epoch) fuzzes alongside the payload so the
// cross-checks are exercised too. Properties:
//
//   - DecodePrepareRecord never panics, whatever the bytes;
//   - every rejection wraps ErrBadPrepare (callers resolve fail-closed
//     as abort, never guess);
//   - anything accepted is canonical — re-encoding the decoded payload
//     reproduces the input byte for byte — and structurally sound: the
//     payload's txn/fence match the carrying record, the participant
//     list is strictly ascending with the coordinator and owning shard
//     present, and the sub-batch is non-empty with known mutation kinds.
//
// The checked-in corpus under testdata/fuzz covers the interesting
// shapes: a valid prepare, torn/truncated payloads, single-bit flips,
// wrong-epoch and wrong-txn-id cross-check mismatches, and a duplicate
// participant entry.
func FuzzDecodePrepareRecord(f *testing.F) {
	valid := EncodePrepare(&TxnPayload{
		Txn: 7, Fence: 3, Coord: 0, Shard: 2, Parts: []int{0, 2},
		Muts: []graph.Mutation{
			{Kind: graph.MutAddEdge, Edge: graph.Edge{
				Src: 11, Dst: 22, Type: 1,
				Props: graph.Properties{{Name: "w", Value: []byte("x")}},
			}},
		},
	})
	f.Add([]byte{}, uint64(7), uint64(3))
	f.Add(valid, uint64(7), uint64(3))
	f.Add(valid, uint64(7), uint64(4))                // wrong stamped epoch
	f.Add(valid, uint64(8), uint64(3))                // wrong record txn id
	f.Add(valid[:len(valid)-6], uint64(7), uint64(3)) // torn tail
	f.Add(valid[:txnHeaderLen], uint64(7), uint64(3))
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // bit flip inside the txn id
	f.Add(flipped, uint64(7), uint64(3))
	dup := EncodePrepare(&TxnPayload{
		Txn: 9, Fence: 1, Coord: 1, Shard: 1, Parts: []int{1, 1},
		Muts: []graph.Mutation{
			{Kind: graph.MutDeleteEdge, Edge: graph.Edge{Src: 5, Dst: 6, Type: 2}},
		},
	})
	f.Add(dup, uint64(9), uint64(1)) // duplicate participant (not ascending)

	f.Fuzz(func(t *testing.T, data []byte, recTxn, recEpoch uint64) {
		rec := &wal.Record{
			Type:   wal.RecordTxnPrepare,
			TreeID: recTxn,
			Epoch:  recEpoch,
			Value:  data,
		}
		p, err := DecodePrepareRecord(rec)
		if err != nil {
			if !errors.Is(err, ErrBadPrepare) {
				t.Fatalf("decode error %v does not wrap ErrBadPrepare", err)
			}
			return
		}
		if p.Txn == 0 || p.Txn != recTxn || p.Fence != recEpoch {
			t.Fatalf("accepted payload fails cross-checks: txn=%d (rec %d) fence=%d (rec %d)",
				p.Txn, recTxn, p.Fence, recEpoch)
		}
		if len(p.Parts) == 0 || len(p.Parts) > MaxVectorShards {
			t.Fatalf("accepted payload with %d participants", len(p.Parts))
		}
		coordOK, shardOK := false, false
		for i, s := range p.Parts {
			if i > 0 && s <= p.Parts[i-1] {
				t.Fatalf("accepted participants not strictly ascending: %v", p.Parts)
			}
			coordOK = coordOK || s == p.Coord
			shardOK = shardOK || s == p.Shard
		}
		if !coordOK || !shardOK {
			t.Fatalf("accepted payload with coord/shard outside membership: coord=%d shard=%d parts=%v",
				p.Coord, p.Shard, p.Parts)
		}
		if len(p.Muts) == 0 {
			t.Fatal("accepted payload with empty sub-batch")
		}
		for i, m := range p.Muts {
			switch m.Kind {
			case graph.MutAddVertex, graph.MutAddEdge, graph.MutDeleteEdge:
			default:
				t.Fatalf("accepted unknown mutation kind %d at %d", m.Kind, i)
			}
		}
		if re := EncodePrepare(p); !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, re)
		}

		// The same bytes under a wrong stamp must reject: a spliced
		// payload never resolves.
		wrong := &wal.Record{Type: wal.RecordTxnPrepare, TreeID: recTxn + 1, Epoch: recEpoch, Value: data}
		if _, err := DecodePrepareRecord(wrong); !errors.Is(err, ErrBadPrepare) {
			t.Fatalf("txn-id mismatch accepted: %v", err)
		}
		wrong = &wal.Record{Type: wal.RecordTxnPrepare, TreeID: recTxn, Epoch: recEpoch + 1, Value: data}
		if _, err := DecodePrepareRecord(wrong); !errors.Is(err, ErrBadPrepare) {
			t.Fatalf("epoch mismatch accepted: %v", err)
		}
	})
}
