package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/mvcc"
	"bg3/internal/pattern"
)

// Vector is a pinned cross-shard epoch vector: component i is the
// released group-commit boundary shard i was pinned at. Together the
// components name one consistent cut — each shard's state is a gapless
// WAL prefix ending exactly at its component.
type Vector []mvcc.Epoch

// Vector wire format ("SSV1"):
//
//	magic[4]="SSV1" version[1]=1 count[2]LE
//	count x { shard[2]LE epoch[8]LE }   (shards strictly ascending, < count)
//	crc32[4]LE over everything before it (IEEE)
//
// Decoding fails closed: truncated input, trailing bytes, bad magic or
// version, a zero or oversized count, duplicate / out-of-range / unsorted
// shard entries, and checksum mismatches are all rejected. Stale or
// future epochs are rejected later, at pin time (ValidateAgainst /
// mvcc.PinAt) — the decoder cannot know any source's horizon.
const (
	vectorMagic   = "SSV1"
	vectorVersion = 1
	// MaxVectorShards bounds a decoded vector's shard count; real
	// deployments are orders of magnitude smaller.
	MaxVectorShards = 4096

	vectorHeaderLen  = 4 + 1 + 2
	vectorEntryLen   = 2 + 8
	vectorTrailerLen = 4
)

// ErrBadVector reports an undecodable or inconsistent epoch vector.
var ErrBadVector = errors.New("shard: bad snapshot vector")

// Encode serializes the vector in the SSV1 wire format.
func (v Vector) Encode() []byte {
	buf := make([]byte, 0, vectorHeaderLen+len(v)*vectorEntryLen+vectorTrailerLen)
	buf = append(buf, vectorMagic...)
	buf = append(buf, vectorVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(v)))
	for i, e := range v {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(i))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeVector parses and validates an SSV1 epoch vector, failing closed
// on any structural defect.
func DecodeVector(buf []byte) (Vector, error) {
	if len(buf) < vectorHeaderLen+vectorEntryLen+vectorTrailerLen {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrBadVector, len(buf))
	}
	if string(buf[:4]) != vectorMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadVector)
	}
	if buf[4] != vectorVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadVector, buf[4])
	}
	n := int(binary.LittleEndian.Uint16(buf[5:]))
	if n == 0 {
		return nil, fmt.Errorf("%w: empty vector", ErrBadVector)
	}
	if n > MaxVectorShards {
		return nil, fmt.Errorf("%w: %d shards exceeds limit %d", ErrBadVector, n, MaxVectorShards)
	}
	want := vectorHeaderLen + n*vectorEntryLen + vectorTrailerLen
	if len(buf) != want {
		return nil, fmt.Errorf("%w: length %d, want %d for %d shards", ErrBadVector, len(buf), want, n)
	}
	body := buf[:len(buf)-vectorTrailerLen]
	sum := binary.LittleEndian.Uint32(buf[len(buf)-vectorTrailerLen:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadVector)
	}
	v := make(Vector, n)
	off := vectorHeaderLen
	for i := 0; i < n; i++ {
		shard := int(binary.LittleEndian.Uint16(body[off:]))
		if shard != i {
			// Covers duplicates, gaps, out-of-range ids, and reordering in
			// one check: a complete vector lists shards 0..n-1 in order.
			return nil, fmt.Errorf("%w: entry %d names shard %d", ErrBadVector, i, shard)
		}
		v[i] = mvcc.Epoch(binary.LittleEndian.Uint64(body[off+2:]))
		off += vectorEntryLen
	}
	return v, nil
}

// ValidateAgainst checks the vector against a group's sampled released
// epochs before any pin is attempted: the shard counts must match and no
// component may be ahead of its shard's released horizon (a vector from
// the future is forged or misrouted). Epochs at or behind the horizon
// still fail closed at pin time if their history has been folded
// (mvcc.ErrRetiredEpoch) or they are not group boundaries.
func (v Vector) ValidateAgainst(released []uint64) error {
	if len(v) != len(released) {
		return fmt.Errorf("%w: vector has %d shards, group has %d", ErrBadVector, len(v), len(released))
	}
	for i, e := range v {
		if uint64(e) > released[i] {
			return fmt.Errorf("%w: shard %d epoch %d ahead of released horizon %d: %w",
				ErrBadVector, i, e, released[i], mvcc.ErrFutureEpoch)
		}
	}
	return nil
}

// Snapshot is a consistent cross-shard cut: one pinned ReadView per
// shard, every read routed to the owner and evaluated at that shard's
// pinned horizon. It implements graph.Reader, so single-threaded
// traversal helpers run against it unchanged; KHop/MatchPattern/
// FindCycles on the snapshot itself run scatter-gather (traverse.go)
// and return exactly what the serial helpers would.
//
// A Snapshot holds every shard's retention floor down until closed;
// close it promptly. Safe for concurrent readers; Close is idempotent.
type Snapshot struct {
	router *Router
	views  []*core.ReadView
}

var _ graph.Reader = (*Snapshot)(nil)

// Epochs returns the pinned epoch vector (component i = shard i's
// group-commit boundary).
func (s *Snapshot) Epochs() Vector {
	v := make(Vector, len(s.views))
	for i, view := range s.views {
		v[i] = view.Epoch()
	}
	return v
}

// View returns shard i's pinned read view (the per-shard gather unit).
func (s *Snapshot) View(i int) *core.ReadView { return s.views[i] }

// Shards returns the number of shards in the cut.
func (s *Snapshot) Shards() int { return len(s.views) }

// Close releases every shard's pin. Idempotent; safe on nil.
func (s *Snapshot) Close() {
	if s == nil {
		return
	}
	for _, v := range s.views {
		v.Close()
	}
}

func (s *Snapshot) view(id graph.VertexID) *core.ReadView {
	return s.views[s.router.Owner(id)]
}

// GetVertex implements graph.Reader at the owner's pinned horizon.
func (s *Snapshot) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return s.view(id).GetVertex(id, typ)
}

// GetEdge implements graph.Reader at the source owner's pinned horizon.
func (s *Snapshot) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return s.view(src).GetEdge(src, typ, dst)
}

// Neighbors implements graph.Reader at the source owner's pinned
// horizon, with callback-scoped Properties validity.
func (s *Snapshot) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return s.view(src).Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Reader at the source owner's pinned horizon.
func (s *Snapshot) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return s.view(src).Degree(src, typ)
}

// MatchPattern runs the backtracking matcher over the cut, scattering
// independent seeds across workers (traverse.go). Results are identical
// to pattern.Match over this snapshot as a plain Reader.
func (s *Snapshot) MatchPattern(p pattern.Pattern, seeds []graph.VertexID, maxMatches int) ([][]graph.VertexID, error) {
	return s.matchScatter(p, seeds, maxMatches)
}

// FindCycles enumerates simple cycles through start over the cut,
// scattering independent first-hop branches across workers
// (traverse.go). Results are identical to pattern.FindCycles over this
// snapshot as a plain Reader.
func (s *Snapshot) FindCycles(start graph.VertexID, typ graph.EdgeType, maxLen, maxCycles int) ([][]graph.VertexID, error) {
	return s.cyclesScatter(start, typ, maxLen, maxCycles)
}
