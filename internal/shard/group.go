package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/mvcc"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Group is N shard groups behind one Router: each shard is a full
// single-leader deployment (its own shared-storage volume, WAL stream,
// group committer, MVCC epoch clock, and failover machinery from the
// replication package), and the Group fans writes out by vertex hash.
//
// Reads through the Group's graph.Store methods are latest-state reads
// on the owning shard's leader; consistent cross-shard reads go through
// Snapshot / SnapshotAt.
type Group struct {
	router  *Router
	cluster *replication.Cluster
	reg     *metrics.Registry

	txnSeq    atomic.Uint64 // transaction id counter, randomly salted
	mgr       *txnManager
	stageHook func(stage TxnStage, txn uint64, parts []int) // test fault injection

	batches     metrics.Counter // ApplyBatch calls routed
	fanout      metrics.IntHistogram
	scatterHops metrics.Counter // scatter-gather hop rounds issued
	shardReads  metrics.Counter // per-shard parallel reads issued
	snapshots   metrics.Counter // consistent cuts taken
	pinRejects  metrics.Counter // SnapshotAt vectors refused (fail closed)

	txns        metrics.Counter // multi-shard 2PC transactions started
	txnCommits  metrics.Counter // transactions decided commit
	txnAborts   metrics.Counter // transactions decided abort
	txnResolved metrics.Counter // in-doubt prepares resolved after failover
	txnReapply  metrics.Counter // resolutions that re-applied a committed payload
}

// Open creates a group of n shards with identical options. storageOpts
// may be nil for defaults; each shard opens its own store.
func Open(n int, storageOpts *storage.Options, rw replication.RWOptions) (*Group, error) {
	c, err := replication.NewCluster(n, storageOpts, rw)
	if err != nil {
		return nil, err
	}
	g := &Group{router: NewRouter(n), cluster: c, reg: metrics.NewRegistry(), mgr: newTxnManager()}
	g.txnSeq.Store(newTxnSalt())
	g.registerMetrics()
	return g, nil
}

func (g *Group) registerMetrics() {
	r := g.reg
	r.RegisterCounter("shard.batches_routed", &g.batches)
	r.RegisterIntHistogram("shard.batch_fanout", &g.fanout)
	r.RegisterCounter("shard.scatter_hops", &g.scatterHops)
	r.RegisterCounter("shard.scatter_shard_reads", &g.shardReads)
	r.RegisterCounter("shard.snapshots", &g.snapshots)
	r.RegisterCounter("shard.snapshot_rejects", &g.pinRejects)
	r.RegisterCounter("shard.txns", &g.txns)
	r.RegisterCounter("shard.txn_commits", &g.txnCommits)
	r.RegisterCounter("shard.txn_aborts", &g.txnAborts)
	r.RegisterCounter("shard.txn_indoubt_resolved", &g.txnResolved)
	r.RegisterCounter("shard.txn_resolve_reapplied", &g.txnReapply)
	r.CounterFunc("shard.failovers", g.cluster.Failovers)
	r.GaugeFunc("shard.shards", func() int64 { return int64(g.router.Shards()) })
}

// Metrics returns the group-level registry (per-shard engines and
// committers keep their own registries, reachable via Leader).
func (g *Group) Metrics() *metrics.Registry { return g.reg }

// Router returns the vertex → shard mapping.
func (g *Group) Router() *Router { return g.router }

// Cluster returns the underlying replication cluster (per-shard leaders,
// stores, and failover).
func (g *Group) Cluster() *replication.Cluster { return g.cluster }

// Shards returns the shard count.
func (g *Group) Shards() int { return g.router.Shards() }

// Leader returns shard i's current leader.
func (g *Group) Leader(i int) *replication.RWNode { return g.cluster.Leader(i) }

// Store returns shard i's shared-storage volume.
func (g *Group) Store(i int) *storage.Store { return g.cluster.Store(i) }

// Failover fences shard i's leader and promotes a replacement built
// from the shard's durable state; other shards are untouched. After the
// promotion an in-doubt resolution pass settles every durable prepare on
// the shard with no local outcome marker: transactions whose coordinator
// holds a durable commit are re-applied (idempotently) and marked
// applied, all others abort (presumed abort).
func (g *Group) Failover(i int) error {
	if err := g.cluster.Failover(i); err != nil {
		return err
	}
	return g.resolveInDoubt(i)
}

// Close stops every shard.
func (g *Group) Close() { g.cluster.Stop() }

// owner returns the leader currently owning id.
func (g *Group) owner(id graph.VertexID) *replication.RWNode {
	return g.cluster.Leader(g.router.Owner(id))
}

// AddVertex implements graph.Store on the owning shard.
func (g *Group) AddVertex(v graph.Vertex) error { return g.owner(v.ID).AddVertex(v) }

// GetVertex implements graph.Store on the owning shard.
func (g *Group) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return g.owner(id).GetVertex(id, typ)
}

// AddEdge implements graph.Store on the source's owning shard.
func (g *Group) AddEdge(e graph.Edge) error { return g.owner(e.Src).AddEdge(e) }

// GetEdge implements graph.Store on the source's owning shard.
func (g *Group) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return g.owner(src).GetEdge(src, typ, dst)
}

// DeleteEdge implements graph.Store on the source's owning shard.
func (g *Group) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	return g.owner(src).DeleteEdge(src, typ, dst)
}

// Neighbors implements graph.Store on the source's owning shard.
func (g *Group) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return g.owner(src).Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Store on the source's owning shard.
func (g *Group) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return g.owner(src).Degree(src, typ)
}

var (
	_ graph.Store      = (*Group)(nil)
	_ graph.BatchStore = (*Group)(nil)
)

// OutcomeState classifies one shard's result for a batch.
type OutcomeState uint8

const (
	// OutcomeSkipped: the batch had no mutations for this shard.
	OutcomeSkipped OutcomeState = iota
	// OutcomeCommitted: the shard's sub-batch is durable and applied.
	OutcomeCommitted
	// OutcomeAborted: the transaction aborted; nothing from this batch is
	// (or will become) durable on the shard. Safe to retry the batch.
	OutcomeAborted
	// OutcomeFenced: the shard's leader was fenced mid-operation; for an
	// aborted transaction this names the shard that caused the abort.
	OutcomeFenced
	// OutcomeUnknown: the decision is commit but this shard's apply did
	// not complete here — the post-failover resolution pass finishes it
	// from the durable prepare. Reads may briefly miss the sub-batch.
	OutcomeUnknown
)

// String names the state.
func (s OutcomeState) String() string {
	switch s {
	case OutcomeSkipped:
		return "skipped"
	case OutcomeCommitted:
		return "committed"
	case OutcomeAborted:
		return "aborted"
	case OutcomeFenced:
		return "fenced"
	case OutcomeUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(s))
	}
}

// ShardOutcome is one shard's result for a batch.
type ShardOutcome struct {
	Shard int
	State OutcomeState
	Err   error // the shard's own failure, when it had one
}

// ErrTxnAborted reports a cross-shard transaction aborted by a
// concurrent failover's resolution pass before the commit decision was
// logged. The batch applied on no shard; retrying it is safe.
var ErrTxnAborted = errors.New("shard: txn aborted by failover resolution")

// BatchError carries per-shard outcomes for a failed batch, so callers
// can tell committed shards from fenced and in-doubt ones instead of
// guessing from a joined error string. Unwrap exposes the first
// underlying cause (storage.ErrFenced etc. stay errors.Is-able).
type BatchError struct {
	// Txn is the transaction id for multi-shard batches, 0 for the
	// single-shard fast path.
	Txn uint64
	// Outcomes has one entry per shard, index-aligned with the group.
	Outcomes []ShardOutcome
	// Cause is the first underlying shard failure.
	Cause error
}

// Error summarizes the non-skipped outcomes.
func (e *BatchError) Error() string {
	s := fmt.Sprintf("shard batch failed (txn %d):", e.Txn)
	for _, o := range e.Outcomes {
		if o.State == OutcomeSkipped {
			continue
		}
		s += fmt.Sprintf(" %d=%s", o.Shard, o.State)
	}
	return fmt.Sprintf("%s: %v", s, e.Cause)
}

// Unwrap exposes the first underlying cause.
func (e *BatchError) Unwrap() error { return e.Cause }

// TxnStage names a point in the 2PC protocol at which a fault-injection
// hook may run (tests kill leaders between stages).
type TxnStage int

const (
	// StagePrepared: every participant's PREPARE is durable; the commit
	// decision has not been logged yet. A leader killed here leaves the
	// transaction in doubt.
	StagePrepared TxnStage = iota + 1
	// StageDecided: the decision is settled (commit durable on the
	// coordinator, or abort chosen); participants have not applied yet.
	StageDecided
)

// SetTxnStageHook installs a fault-injection hook called on the
// transaction goroutine at each TxnStage. Install before issuing writes;
// tests use it to kill coordinators and participants between prepare and
// commit.
func (g *Group) SetTxnStageHook(fn func(stage TxnStage, txn uint64, parts []int)) {
	g.stageHook = fn
}

// ApplyBatch commits the batch atomically across shards. Mutations are
// decomposed by owner (SplitBatch); a batch touching one shard commits
// as that shard's ordinary group-commit (the PR 9 fast path, no extra
// records), while a multi-shard batch runs the 2PC protocol in txn.go:
// prepare on every participant, commit decision on the coordinator's
// stream, then per-shard apply — all riding the existing group-commit
// envelopes. The batch is all-or-nothing across shards: after any crash
// or failover, recovery resolves in-doubt prepares against the
// coordinator's durable prefix, so no prefix of the shards can commit
// alone. Failures return a *BatchError with per-shard outcomes.
func (g *Group) ApplyBatch(muts []graph.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	g.batches.Inc()
	parts := g.router.SplitBatch(muts)
	touched := 0
	last := -1
	for i, part := range parts {
		if len(part) > 0 {
			touched++
			last = i
		}
	}
	g.fanout.Observe(int64(touched))
	if touched == 1 {
		return g.applyShard(last, parts[last])
	}
	_, err := g.applyTxn(parts)
	return err
}

// ApplyBatchEx is ApplyBatch returning per-shard outcomes (one entry per
// shard, index-aligned) even on success.
func (g *Group) ApplyBatchEx(muts []graph.Mutation) ([]ShardOutcome, error) {
	outcomes := make([]ShardOutcome, g.Shards())
	for i := range outcomes {
		outcomes[i] = ShardOutcome{Shard: i, State: OutcomeSkipped}
	}
	if len(muts) == 0 {
		return outcomes, nil
	}
	g.batches.Inc()
	parts := g.router.SplitBatch(muts)
	touched := 0
	last := -1
	for i, part := range parts {
		if len(part) > 0 {
			touched++
			last = i
		}
	}
	g.fanout.Observe(int64(touched))
	if touched == 1 {
		err := g.applyShard(last, parts[last])
		outcomes[last] = ShardOutcome{Shard: last, State: classifyShardErr(err), Err: err}
		return outcomes, err
	}
	return g.applyTxn(parts)
}

// classifyShardErr maps a single-shard apply error to an outcome state.
func classifyShardErr(err error) OutcomeState {
	switch {
	case err == nil:
		return OutcomeCommitted
	case errors.Is(err, storage.ErrFenced), errors.Is(err, wal.ErrWriterFailed),
		errors.Is(err, wal.ErrCommitterStopped):
		return OutcomeFenced
	default:
		return OutcomeUnknown
	}
}

func isFenceErr(err error) bool {
	return errors.Is(err, storage.ErrFenced) || errors.Is(err, wal.ErrWriterFailed) ||
		errors.Is(err, wal.ErrCommitterStopped)
}

func (g *Group) applyShard(i int, part []graph.Mutation) error {
	return g.cluster.Leader(i).ApplyBatch(part)
}

// applyTxn runs the cross-shard 2PC protocol for a batch split across
// two or more shards (see the protocol comment in txn.go). It returns
// one outcome per shard; the error is nil only when every participant
// committed and applied.
func (g *Group) applyTxn(parts [][]graph.Mutation) ([]ShardOutcome, error) {
	txn := g.txnSeq.Add(1)
	var members []int
	for i, part := range parts {
		if len(part) > 0 {
			members = append(members, i)
		}
	}
	coord := g.router.Coordinator(parts)
	outcomes := make([]ShardOutcome, len(parts))
	for i := range outcomes {
		outcomes[i] = ShardOutcome{Shard: i, State: OutcomeSkipped}
	}
	g.txns.Inc()
	g.mgr.begin(txn)
	defer g.mgr.end(txn)

	// Phase 1 — prepare: log the sub-batch as a logical redo intent on
	// every participant, in parallel, each riding its shard's ordinary
	// group-commit pipeline. An epoch hold taken before the prepare
	// freezes the shard's published read horizon until the transaction
	// settles, so no reader ever pins an epoch inside the window.
	type prepState struct {
		node *replication.RWNode
		hold *mvcc.Hold
		err  error
	}
	preps := make([]*prepState, len(parts))
	var wg sync.WaitGroup
	for _, i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := g.cluster.Leader(i)
			ps := &prepState{node: node, hold: node.Engine().Epochs().Hold()}
			payload := EncodePrepare(&TxnPayload{
				Txn:   txn,
				Fence: node.Epoch(),
				Coord: coord,
				Shard: i,
				Parts: members,
				Muts:  parts[i],
			})
			_, ps.err = node.Logger().Log(&wal.Record{
				Type:   wal.RecordTxnPrepare,
				TreeID: txn,
				PageID: uint64(coord),
				Value:  payload,
			})
			preps[i] = ps
		}(i)
	}
	wg.Wait()
	defer func() {
		for _, ps := range preps {
			if ps != nil {
				ps.hold.Release()
			}
		}
	}()

	var cause error
	for _, i := range members {
		if err := preps[i].err; err != nil && cause == nil {
			cause = fmt.Errorf("shard %d prepare: %w", i, err)
		}
	}
	if cause == nil && g.stageHook != nil {
		g.stageHook(StagePrepared, txn, members)
	}

	// Phase 2 — decide. Prepare failures and a force-abort from a
	// concurrent failover's resolution pass both decide abort; otherwise
	// the coordinator logs the commit decision on its own stream. A
	// failed commit append is an abort: fenced and torn appends are never
	// durable, and a record stranded past a pipeline hole is outside the
	// gapless prefix recovery delivers.
	committed := false
	if cause == nil {
		if !g.mgr.tryDecide(txn) {
			cause = fmt.Errorf("txn %d: %w", txn, ErrTxnAborted)
		} else if _, err := g.cluster.Leader(coord).Logger().Log(&wal.Record{
			Type:   wal.RecordTxnCommit,
			TreeID: txn,
			PageID: uint64(coord),
		}); err != nil {
			cause = fmt.Errorf("shard %d commit decision: %w", coord, err)
		} else {
			committed = true
		}
	}
	g.mgr.decide(txn, committed)
	if g.stageHook != nil {
		g.stageHook(StageDecided, txn, members)
	}

	if !committed {
		g.txnAborts.Inc()
		// Best-effort abort markers: the protocol is presumed-abort, so a
		// lost marker only means a later resolution pass re-derives the
		// same answer from the coordinator's prefix.
		for _, i := range members {
			ps := preps[i]
			outcomes[i] = ShardOutcome{Shard: i, State: OutcomeAborted}
			if ps.err != nil {
				outcomes[i].Err = ps.err
				if isFenceErr(ps.err) {
					outcomes[i].State = OutcomeFenced
				}
				continue
			}
			_, _ = ps.node.Logger().Log(&wal.Record{
				Type:   wal.RecordTxnAbort,
				TreeID: txn,
				PageID: uint64(coord),
			})
		}
		return outcomes, &BatchError{Txn: txn, Outcomes: outcomes, Cause: cause}
	}
	g.txnCommits.Inc()

	// Phase 3 — apply: each participant re-applies its sub-batch through
	// the normal data path and logs a local applied marker. A fence here
	// means a failover is racing us; its resolution pass re-applies the
	// decided payload from the durable prepare, so retry against the new
	// leader (replays are idempotent upserts/deletes).
	for _, i := range members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := g.applyDecided(i, parts[i], txn, coord)
			state := OutcomeCommitted
			if err != nil {
				state = OutcomeUnknown
			}
			outcomes[i] = ShardOutcome{Shard: i, State: state, Err: err}
		}(i)
	}
	wg.Wait()
	cause = nil
	for _, i := range members {
		if err := outcomes[i].Err; err != nil && cause == nil {
			cause = fmt.Errorf("shard %d apply: %w", i, err)
		}
	}
	if cause != nil {
		return outcomes, &BatchError{Txn: txn, Outcomes: outcomes, Cause: cause}
	}
	return outcomes, nil
}

// applyDecided applies one participant's decided sub-batch and logs its
// applied marker, retrying across a racing failover. Its own epoch hold
// makes the apply atomic for readers even when the participant's leader
// changed after prepare (the prepare hold pinned the old leader's clock).
func (g *Group) applyDecided(i int, part []graph.Mutation, txn uint64, coord int) error {
	var lastErr error
	for attempt := 0; attempt < 6; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
		}
		node := g.cluster.Leader(i)
		hold := node.Engine().Epochs().Hold()
		err := node.ApplyBatch(part)
		if err == nil {
			_, err = node.Logger().Log(&wal.Record{
				Type:   wal.RecordTxnApplied,
				TreeID: txn,
				PageID: uint64(coord),
			})
		}
		hold.Release()
		if err == nil {
			return nil
		}
		lastErr = err
		if !isFenceErr(err) {
			return err
		}
	}
	return lastErr
}

// resolveInDoubt settles every durable prepare on shard i that has no
// local outcome marker. Authority order: the live transaction manager
// first (force-aborting transactions still preparing, waiting out one
// mid-decision), then the coordinator's durable WAL prefix — a durable
// commit means commit, anything else aborts (presumed abort).
func (g *Group) resolveInDoubt(i int) error {
	state, err := scanShardTxns(g.cluster.Store(i))
	if err != nil {
		return err
	}
	coordScans := make(map[int]*shardTxnState)
	coordScans[i] = state
	for _, txn := range state.inDoubt() {
		p := state.prepares[txn]
		committed, known := g.mgr.resolveLive(txn)
		if !known {
			cs := coordScans[p.Coord]
			if cs == nil {
				if cs, err = scanShardTxns(g.cluster.Store(p.Coord)); err != nil {
					return err
				}
				coordScans[p.Coord] = cs
			}
			committed = cs.commits[txn]
		}
		node := g.cluster.Leader(i)
		if committed {
			hold := node.Engine().Epochs().Hold()
			aerr := node.ApplyBatch(p.Muts)
			if aerr == nil {
				_, aerr = node.Logger().Log(&wal.Record{
					Type:   wal.RecordTxnApplied,
					TreeID: txn,
					PageID: uint64(p.Coord),
				})
			}
			hold.Release()
			if aerr != nil {
				return fmt.Errorf("shard %d resolve txn %d: %w", i, txn, aerr)
			}
			g.txnReapply.Inc()
		} else {
			_, _ = node.Logger().Log(&wal.Record{
				Type:   wal.RecordTxnAbort,
				TreeID: txn,
				PageID: uint64(p.Coord),
			})
		}
		g.txnResolved.Inc()
	}
	return nil
}

// ObserveScatter folds one traversal's scatter-gather counts into the
// group's metrics.
func (g *Group) ObserveScatter(st ScatterStats) {
	g.scatterHops.Add(int64(st.Hops))
	g.shardReads.Add(int64(st.ShardReads))
}

// ReadEpochs samples every shard's released read epoch as a Vector.
func (g *Group) ReadEpochs() Vector {
	raw := g.cluster.ReadEpochs()
	v := make(Vector, len(raw))
	for i, e := range raw {
		v[i] = mvcc.Epoch(e)
	}
	return v
}

// Snapshot takes a consistent cut: it samples each shard's released
// read epoch and pins that boundary on the shard, one shard at a time.
// Component i is a gapless prefix of shard i's WAL ending at a group
// boundary; the vector as a whole is the cut every subsequent hop routes
// at. A failover racing the cut is harmless: a view pinned on a deposed
// leader still reads its shard's released prefix exactly (fenced
// in-flight writes were never released, so the pinned horizon excludes
// them).
func (g *Group) Snapshot() *Snapshot {
	views := make([]*core.ReadView, g.Shards())
	for i := range views {
		views[i] = g.cluster.Leader(i).Engine().View()
	}
	g.snapshots.Inc()
	return &Snapshot{router: g.router, views: views}
}

// SnapshotAt re-attaches a previously sampled cut, pinning each shard at
// the vector's component. It fails closed — a structurally invalid
// vector, a component ahead of its shard's released horizon, one whose
// history has been folded past the retention floor, or one naming a
// mid-group LSN all reject the whole cut with no pins leaked.
func (g *Group) SnapshotAt(v Vector) (*Snapshot, error) {
	if err := v.ValidateAgainst(g.cluster.ReadEpochs()); err != nil {
		g.pinRejects.Inc()
		return nil, err
	}
	views := make([]*core.ReadView, len(v))
	for i, e := range v {
		view, err := g.cluster.Leader(i).Engine().ViewAt(e)
		if err != nil {
			for _, pinned := range views[:i] {
				pinned.Close()
			}
			g.pinRejects.Inc()
			return nil, fmt.Errorf("shard %d epoch %d: %w", i, e, err)
		}
		views[i] = view
	}
	g.snapshots.Inc()
	return &Snapshot{router: g.router, views: views}, nil
}
