package shard

import (
	"fmt"
	"sync"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/mvcc"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

// Group is N shard groups behind one Router: each shard is a full
// single-leader deployment (its own shared-storage volume, WAL stream,
// group committer, MVCC epoch clock, and failover machinery from the
// replication package), and the Group fans writes out by vertex hash.
//
// Reads through the Group's graph.Store methods are latest-state reads
// on the owning shard's leader; consistent cross-shard reads go through
// Snapshot / SnapshotAt.
type Group struct {
	router  *Router
	cluster *replication.Cluster
	reg     *metrics.Registry

	batches     metrics.Counter // ApplyBatch calls routed
	fanout      metrics.IntHistogram
	scatterHops metrics.Counter // scatter-gather hop rounds issued
	shardReads  metrics.Counter // per-shard parallel reads issued
	snapshots   metrics.Counter // consistent cuts taken
	pinRejects  metrics.Counter // SnapshotAt vectors refused (fail closed)
}

// Open creates a group of n shards with identical options. storageOpts
// may be nil for defaults; each shard opens its own store.
func Open(n int, storageOpts *storage.Options, rw replication.RWOptions) (*Group, error) {
	c, err := replication.NewCluster(n, storageOpts, rw)
	if err != nil {
		return nil, err
	}
	g := &Group{router: NewRouter(n), cluster: c, reg: metrics.NewRegistry()}
	g.registerMetrics()
	return g, nil
}

func (g *Group) registerMetrics() {
	r := g.reg
	r.RegisterCounter("shard.batches_routed", &g.batches)
	r.RegisterIntHistogram("shard.batch_fanout", &g.fanout)
	r.RegisterCounter("shard.scatter_hops", &g.scatterHops)
	r.RegisterCounter("shard.scatter_shard_reads", &g.shardReads)
	r.RegisterCounter("shard.snapshots", &g.snapshots)
	r.RegisterCounter("shard.snapshot_rejects", &g.pinRejects)
	r.CounterFunc("shard.failovers", g.cluster.Failovers)
	r.GaugeFunc("shard.shards", func() int64 { return int64(g.router.Shards()) })
}

// Metrics returns the group-level registry (per-shard engines and
// committers keep their own registries, reachable via Leader).
func (g *Group) Metrics() *metrics.Registry { return g.reg }

// Router returns the vertex → shard mapping.
func (g *Group) Router() *Router { return g.router }

// Cluster returns the underlying replication cluster (per-shard leaders,
// stores, and failover).
func (g *Group) Cluster() *replication.Cluster { return g.cluster }

// Shards returns the shard count.
func (g *Group) Shards() int { return g.router.Shards() }

// Leader returns shard i's current leader.
func (g *Group) Leader(i int) *replication.RWNode { return g.cluster.Leader(i) }

// Store returns shard i's shared-storage volume.
func (g *Group) Store(i int) *storage.Store { return g.cluster.Store(i) }

// Failover fences shard i's leader and promotes a replacement built
// from the shard's durable state; other shards are untouched.
func (g *Group) Failover(i int) error { return g.cluster.Failover(i) }

// Close stops every shard.
func (g *Group) Close() { g.cluster.Stop() }

// owner returns the leader currently owning id.
func (g *Group) owner(id graph.VertexID) *replication.RWNode {
	return g.cluster.Leader(g.router.Owner(id))
}

// AddVertex implements graph.Store on the owning shard.
func (g *Group) AddVertex(v graph.Vertex) error { return g.owner(v.ID).AddVertex(v) }

// GetVertex implements graph.Store on the owning shard.
func (g *Group) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return g.owner(id).GetVertex(id, typ)
}

// AddEdge implements graph.Store on the source's owning shard.
func (g *Group) AddEdge(e graph.Edge) error { return g.owner(e.Src).AddEdge(e) }

// GetEdge implements graph.Store on the source's owning shard.
func (g *Group) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return g.owner(src).GetEdge(src, typ, dst)
}

// DeleteEdge implements graph.Store on the source's owning shard.
func (g *Group) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	return g.owner(src).DeleteEdge(src, typ, dst)
}

// Neighbors implements graph.Store on the source's owning shard.
func (g *Group) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return g.owner(src).Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Store on the source's owning shard.
func (g *Group) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return g.owner(src).Degree(src, typ)
}

var (
	_ graph.Store      = (*Group)(nil)
	_ graph.BatchStore = (*Group)(nil)
)

// ApplyBatch fans the batch out as per-shard commit groups: mutations
// are decomposed by owner (SplitBatch) and each non-empty group commits
// on its shard in parallel as one atomic, durable WAL group. The union
// of the groups is exactly the input, but the batch is NOT atomic across
// shards — a shard mid-failover can fence its group while the others
// land; the error names the first failed shard and the caller may retry
// the whole batch (replays are idempotent upserts/deletes).
func (g *Group) ApplyBatch(muts []graph.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	g.batches.Inc()
	parts := g.router.SplitBatch(muts)
	touched := 0
	last := -1
	for i, part := range parts {
		if len(part) > 0 {
			touched++
			last = i
		}
	}
	g.fanout.Observe(int64(touched))
	if touched == 1 {
		return g.applyShard(last, parts[last])
	}
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []graph.Mutation) {
			defer wg.Done()
			errs[i] = g.applyShard(i, part)
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

func (g *Group) applyShard(i int, part []graph.Mutation) error {
	return g.cluster.Leader(i).ApplyBatch(part)
}

// ObserveScatter folds one traversal's scatter-gather counts into the
// group's metrics.
func (g *Group) ObserveScatter(st ScatterStats) {
	g.scatterHops.Add(int64(st.Hops))
	g.shardReads.Add(int64(st.ShardReads))
}

// ReadEpochs samples every shard's released read epoch as a Vector.
func (g *Group) ReadEpochs() Vector {
	raw := g.cluster.ReadEpochs()
	v := make(Vector, len(raw))
	for i, e := range raw {
		v[i] = mvcc.Epoch(e)
	}
	return v
}

// Snapshot takes a consistent cut: it samples each shard's released
// read epoch and pins that boundary on the shard, one shard at a time.
// Component i is a gapless prefix of shard i's WAL ending at a group
// boundary; the vector as a whole is the cut every subsequent hop routes
// at. A failover racing the cut is harmless: a view pinned on a deposed
// leader still reads its shard's released prefix exactly (fenced
// in-flight writes were never released, so the pinned horizon excludes
// them).
func (g *Group) Snapshot() *Snapshot {
	views := make([]*core.ReadView, g.Shards())
	for i := range views {
		views[i] = g.cluster.Leader(i).Engine().View()
	}
	g.snapshots.Inc()
	return &Snapshot{router: g.router, views: views}
}

// SnapshotAt re-attaches a previously sampled cut, pinning each shard at
// the vector's component. It fails closed — a structurally invalid
// vector, a component ahead of its shard's released horizon, one whose
// history has been folded past the retention floor, or one naming a
// mid-group LSN all reject the whole cut with no pins leaked.
func (g *Group) SnapshotAt(v Vector) (*Snapshot, error) {
	if err := v.ValidateAgainst(g.cluster.ReadEpochs()); err != nil {
		g.pinRejects.Inc()
		return nil, err
	}
	views := make([]*core.ReadView, len(v))
	for i, e := range v {
		view, err := g.cluster.Leader(i).Engine().ViewAt(e)
		if err != nil {
			for _, pinned := range views[:i] {
				pinned.Close()
			}
			g.pinRejects.Inc()
			return nil, fmt.Errorf("shard %d epoch %d: %w", i, e, err)
		}
		views[i] = view
	}
	g.snapshots.Inc()
	return &Snapshot{router: g.router, views: views}, nil
}
