package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bg3/internal/graph"
)

// TestGenPrepareCorpus regenerates the checked-in fuzz corpus. Guarded.
func TestGenPrepareCorpus(t *testing.T) {
	if os.Getenv("BG3_GEN_CORPUS") == "" {
		t.Skip("set BG3_GEN_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodePrepareRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	valid := EncodePrepare(&TxnPayload{
		Txn: 7, Fence: 3, Coord: 0, Shard: 2, Parts: []int{0, 2},
		Muts: []graph.Mutation{
			{Kind: graph.MutAddEdge, Edge: graph.Edge{
				Src: 11, Dst: 22, Type: 1,
				Props: graph.Properties{{Name: "w", Value: []byte("x")}},
			}},
			{Kind: graph.MutAddVertex, Vertex: graph.Vertex{
				ID: 11, Type: 4,
				Props: graph.Properties{{Name: "name", Value: []byte("a")}},
			}},
		},
	})
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-2] ^= 0x01
	dup := EncodePrepare(&TxnPayload{
		Txn: 9, Fence: 1, Coord: 1, Shard: 1, Parts: []int{1, 1},
		Muts: []graph.Mutation{
			{Kind: graph.MutDeleteEdge, Edge: graph.Edge{Src: 5, Dst: 6, Type: 2}},
		},
	})
	cases := []struct {
		name       string
		data       []byte
		txn, epoch uint64
	}{
		{"valid", valid, 7, 3},
		{"wrong-epoch", valid, 7, 4},
		{"wrong-txn-id", valid, 8, 3},
		{"torn-tail", valid[:len(valid)-6], 7, 3},
		{"torn-header", valid[:txnHeaderLen], 7, 3},
		{"bit-flip-txn", flipped, 7, 3},
		{"bit-flip-crc", crcFlip, 7, 3},
		{"duplicate-participant", dup, 9, 1},
		{"empty", nil, 7, 3},
	}
	for _, c := range cases {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nuint64(%d)\nuint64(%d)\n", c.data, c.txn, c.epoch)
		if err := os.WriteFile(filepath.Join(dir, c.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
