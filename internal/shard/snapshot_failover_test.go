package shard

import (
	"errors"
	"testing"

	"bg3/internal/graph"
)

// readTag reads the cross-shard batch's edge tag through a snapshot on
// both owners, reporting what each side sees ("" = absent).
func readTag(t *testing.T, snap *Snapshot, a, b graph.VertexID, dst graph.VertexID) (ta, tb string) {
	t.Helper()
	get := func(src graph.VertexID) string {
		e, ok, err := snap.GetEdge(src, graph.ETypeFollow, dst)
		if err != nil {
			t.Fatalf("GetEdge(%d): %v", src, err)
		}
		if !ok {
			return ""
		}
		v, _ := e.Props.Get("t")
		return string(v)
	}
	return get(a), get(b)
}

// A snapshot vector pinned before a participant failover keeps reading
// the same consistent cut afterwards (ISSUE 10 satellite): the deposed
// leader's pinned views still serve their released prefix exactly — no
// state written after the pin, no half of any transaction, including one
// force-aborted by the failover itself. Re-attaching the pre-failover
// vector with SnapshotAt either reproduces that exact cut or fails
// closed; it never yields a different answer.
func TestSnapshotPinnedBeforeFailoverReadsConsistentCut(t *testing.T) {
	g := openTestGroup(t, 4)
	a, b := findCrossShardPair(g.Router())
	sb := g.Router().Owner(b)

	// v1: a committed cross-shard transaction, then pin the cut.
	if err := g.ApplyBatch(crossShardBatch(a, b, "v1")); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	defer snap.Close()
	vec := append(Vector(nil), snap.Epochs()...)
	if ta, tb := readTag(t, snap, a, b, 1000); ta != "v1" || tb != "v1" {
		t.Fatalf("pinned cut reads %q/%q, want v1/v1", ta, tb)
	}

	// v2 commits after the pin; then a third transaction is killed by a
	// participant failover between prepare and commit, and a fourth
	// commits against the promoted leader.
	if err := g.ApplyBatch(crossShardBatch(a, b, "v2")); err != nil {
		t.Fatal(err)
	}
	g.SetTxnStageHook(func(stage TxnStage, txn uint64, members []int) {
		if stage == StagePrepared {
			g.SetTxnStageHook(nil)
			if err := g.Failover(sb); err != nil {
				t.Errorf("failover shard %d: %v", sb, err)
			}
		}
	})
	err := g.ApplyBatch(crossShardBatch(a, b, "v3"))
	if !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("txn racing participant failover: err = %v, want ErrTxnAborted", err)
	}
	if err := g.ApplyBatch(crossShardBatch(a, b, "v4")); err != nil {
		t.Fatalf("batch after failover: %v", err)
	}

	// The pre-failover pin is undisturbed: still v1 on both shards, no
	// bleed-through from v2/v4 and nothing from the aborted v3.
	if ta, tb := readTag(t, snap, a, b, 1000); ta != "v1" || tb != "v1" {
		t.Fatalf("cut changed under failover: reads %q/%q, want v1/v1", ta, tb)
	}
	if got := snap.Epochs(); len(got) != len(vec) {
		t.Fatalf("vector length changed: %v -> %v", vec, got)
	} else {
		for i := range vec {
			if got[i] != vec[i] {
				t.Fatalf("pinned vector drifted: %v -> %v", vec, got)
			}
		}
	}

	// A fresh cut observes the post-failover state: v4 on both sides —
	// all-or-nothing held through the kill.
	fresh := g.Snapshot()
	defer fresh.Close()
	if ta, tb := readTag(t, fresh, a, b, 1000); ta != "v4" || tb != "v4" {
		t.Fatalf("fresh cut reads %q/%q, want v4/v4", ta, tb)
	}

	// Re-attaching the pre-failover vector is all-or-nothing too: the
	// promoted leader's epoch history may not reach back to the old
	// boundary (fail closed, no pins leaked), but a success must read
	// the identical v1 cut.
	reat, err := g.SnapshotAt(vec)
	if err == nil {
		defer reat.Close()
		if ta, tb := readTag(t, reat, a, b, 1000); ta != "v1" || tb != "v1" {
			t.Fatalf("re-attached cut reads %q/%q, want v1/v1", ta, tb)
		}
	}
}
