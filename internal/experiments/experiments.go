// Package experiments implements the reproduction harness for every table
// and figure in BG3's evaluation (§4). Each experiment is a pure function
// from a parameter struct to structured rows plus a printed, paper-style
// table, so the same code backs both `go test -bench` targets and the
// bg3-bench command. DESIGN.md §2 maps experiments to paper artifacts;
// EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Scale selects how much work an experiment does. Benches use Small so a
// full `go test -bench .` stays quick; bg3-bench defaults to Medium.
type Scale int

// Scales.
const (
	Small Scale = iota
	Medium
	Large
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// pick returns the value for the scale.
func pick[T any](s Scale, small, medium, large T) T {
	switch s {
	case Small:
		return small
	case Medium:
		return medium
	default:
		return large
	}
}

// table prints rows as an aligned table.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func kqps(v float64) string { return fmt.Sprintf("%.1fK", v/1000) }

func mb(v int64) string { return fmt.Sprintf("%.1fMB", float64(v)/(1<<20)) }
