package experiments

import (
	"fmt"
	"io"
	"time"

	"bg3/internal/bytegraph"
	"bg3/internal/graph"
	"bg3/internal/netsim"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

// Fig12Row is one recall measurement: the fraction of leader writes a
// follower can read, per synchronization mechanism and packet loss rate.
type Fig12Row struct {
	System   string
	LossRate float64
	Recall   float64
}

// Fig12Recall reproduces Fig. 12: ByteGraph's command forwarding loses
// data in proportion to packet loss (paper: 0.98 / 0.91 / 0.83 at 1 / 5 /
// 10%), while BG3's shared-storage WAL shipping delivers recall 1.0 at
// every loss rate.
func Fig12Recall(s Scale, lossRates []float64, out io.Writer) []Fig12Row {
	if len(lossRates) == 0 {
		lossRates = []float64{0.01, 0.02, 0.05, 0.10}
	}
	edgesN := pick(s, 2_000, 20_000, 100_000)

	var rows []Fig12Row
	for _, loss := range lossRates {
		// Legacy ByteGraph: leader + follower are real ByteGraph stores,
		// linked by a lossy asynchronous forwarding channel.
		leader := bytegraph.New(bytegraph.Config{})
		follower := bytegraph.New(bytegraph.Config{})
		link := netsim.NewLink(loss, 0, 0, int64(loss*1000)+1)
		cl := replication.NewForwardingCluster(leader, []graph.Store{follower}, []*netsim.Link{link})
		edges := make([]graph.Edge, 0, edgesN)
		for i := 0; i < edgesN; i++ {
			e := graph.Edge{Src: graph.VertexID(i % 97), Dst: graph.VertexID(i), Type: graph.ETypeTransfer}
			if err := cl.AddEdge(e); err != nil {
				panic(err)
			}
			edges = append(edges, e)
		}
		recall := cl.Recall(edges, 20*time.Millisecond)[0]
		rows = append(rows, Fig12Row{System: "ByteGraph (forwarding)", LossRate: loss, Recall: recall})

		// BG3: WAL over shared storage. The network loss rate is irrelevant
		// by construction — the WAL never traverses the lossy link — so the
		// same loss parameter yields recall 1.0.
		st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
		rw, err := replication.NewRWNode(st, replication.RWOptions{})
		if err != nil {
			panic(err)
		}
		ro := replication.NewRONode(st, time.Millisecond, 0)
		for _, e := range edges {
			if err := rw.AddEdge(e); err != nil {
				panic(err)
			}
		}
		lsn := rw.LastLSN()
		ro.WaitVisible(lsn, 10*time.Second)
		recall = replication.WALRecall(ro.Replica(), edges)
		ro.Stop()
		rw.Stop()
		rows = append(rows, Fig12Row{System: "BG3 (WAL on shared storage)", LossRate: loss, Recall: recall})
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 12: follower recall vs packet loss ==\n")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{r.System, fmt.Sprintf("%.0f%%", r.LossRate*100), fmt.Sprintf("%.3f", r.Recall)})
		}
		table(out, []string{"system", "packet loss", "recall"}, tr)
		fmt.Fprintln(out, "paper shape: forwarding recall ~ (1 - loss); BG3 recall = 1.0 at every loss rate")
	}
	return rows
}
