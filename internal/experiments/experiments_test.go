package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// The experiment smoke tests run every harness at Small scale and assert
// the paper's qualitative shapes — who wins, which direction the deltas
// point — not absolute numbers.

func TestFig9Shape(t *testing.T) {
	var buf bytes.Buffer
	res := Fig9ReadAmplification(Small, &buf)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	sled, bg3 := res[0], res[1]
	if bg3.Amplification >= sled.Amplification {
		t.Fatalf("read-optimized amp %.2f >= traditional %.2f", bg3.Amplification, sled.Amplification)
	}
	if bg3.Amplification > 2.01 {
		t.Fatalf("read-optimized amp %.2f, must be <= 2 (1 base + <=1 delta)", bg3.Amplification)
	}
	if sled.Amplification <= 1.0 {
		t.Fatalf("traditional amp %.2f, expected chains > 1", sled.Amplification)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("missing table output")
	}
}

func TestFig10Shape(t *testing.T) {
	res := Fig10WriteBandwidth(Small, nil)
	sled, bg3 := res[0], res[1]
	if bg3.BytesWritten <= sled.BytesWritten {
		t.Fatalf("read-optimized bytes %d <= traditional %d", bg3.BytesWritten, sled.BytesWritten)
	}
	// The overhead should be modest (paper: +9.3%), not multiplicative.
	ratio := float64(bg3.BytesWritten) / float64(sled.BytesWritten)
	if ratio > 3.0 {
		t.Fatalf("write overhead ratio = %.2f, unreasonably large", ratio)
	}
}

func TestFig11Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("relative throughput is distorted by race-detector instrumentation")
	}
	rows := Fig11ForestScaling(Small, []int{1, 64, 8192}, nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Trees != 1 {
		t.Fatalf("first config trees = %d, want 1", rows[0].Trees)
	}
	if !(rows[1].WriteQPS > rows[0].WriteQPS) {
		t.Fatalf("QPS did not grow when the hot head got dedicated trees: %v", rows)
	}
	if !(rows[2].MemoryBytes > rows[0].MemoryBytes) {
		t.Fatalf("memory did not grow with trees: %v", rows)
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2SpaceReclamation(Small, nil)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	fifoFollow, dirtyFollow, awareFollow := rows[0], rows[1], rows[2]
	dirtyTTL, awareTTL := rows[3], rows[4]
	// The robust orderings: the gradient policy clearly beats the
	// traditional FIFO queue and stays comparable to the greedy
	// dirty-ratio baseline (the paper's 16% edge over dirty-ratio is
	// within run-to-run noise at laptop scale; see EXPERIMENTS.md).
	if awareFollow.MBPerSec > 0.7*fifoFollow.MBPerSec {
		t.Fatalf("workload-aware %.2f MB/s vs FIFO %.2f MB/s: expected a clear win",
			awareFollow.MBPerSec, fifoFollow.MBPerSec)
	}
	if awareFollow.MBPerSec > 1.4*dirtyFollow.MBPerSec {
		t.Fatalf("workload-aware %.2f MB/s vs dirty-ratio %.2f MB/s: expected comparable",
			awareFollow.MBPerSec, dirtyFollow.MBPerSec)
	}
	// The +TTL policy must move (almost) nothing and expire extents for
	// free, while dirty-ratio keeps moving doomed data.
	if awareTTL.MovedBytes > dirtyTTL.MovedBytes/4 {
		t.Fatalf("+TTL moved %d bytes vs dirty-ratio %d", awareTTL.MovedBytes, dirtyTTL.MovedBytes)
	}
	if awareTTL.Expired == 0 {
		t.Fatal("+TTL expired no extents")
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12Recall(Small, []float64{0.02, 0.10}, nil)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.System, "BG3"):
			if r.Recall != 1.0 {
				t.Fatalf("BG3 recall = %.3f at loss %.2f, want 1.0", r.Recall, r.LossRate)
			}
		default:
			want := 1 - r.LossRate
			if r.Recall > want+0.03 || r.Recall < want-0.05 {
				t.Fatalf("forwarding recall = %.3f at loss %.2f, want ~%.2f", r.Recall, r.LossRate, want)
			}
		}
	}
	// More loss, less recall for forwarding.
	if rows[0].Recall <= rows[2].Recall {
		t.Fatalf("recall did not fall with loss: %.3f then %.3f", rows[0].Recall, rows[2].Recall)
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13SyncLatency(Small, []int{300, 900}, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SyncLatency <= 0 {
			t.Fatalf("sync latency missing: %+v", r)
		}
	}
	// Flatness: tripling the write load must not triple the latency.
	if rows[1].SyncLatency > 3*rows[0].SyncLatency {
		t.Fatalf("latency not flat: %v -> %v", rows[0].SyncLatency, rows[1].SyncLatency)
	}
}

func TestFig14Shape(t *testing.T) {
	rows := Fig14ROScaling(Small, []int{1, 2}, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].ReadQPS <= rows[0].ReadQPS {
		t.Fatalf("read QPS did not grow with RO nodes: %v", rows)
	}
	for _, r := range rows {
		if r.SyncLatency <= 0 {
			t.Fatalf("sync latency missing: %+v", r)
		}
	}
}

func TestCostShape(t *testing.T) {
	rows := StorageCost(Small, nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	bg3, bg := rows[0], rows[1]
	if bg3.RelativeCost >= bg.RelativeCost {
		t.Fatalf("BG3 cost %.0f >= ByteGraph cost %.0f", bg3.RelativeCost, bg.RelativeCost)
	}
	saving := 1 - bg3.RelativeCost/bg.RelativeCost
	if saving < 0.5 {
		t.Fatalf("saving = %.1f%%, want a large reduction (paper ~80%%)", saving*100)
	}
}

func TestFig8VerticalShape(t *testing.T) {
	if raceEnabled {
		t.Skip("relative throughput is distorted by race-detector instrumentation")
	}
	rows := Fig8Vertical(Small, []int{4, 8}, nil)
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[string(r.Workload)+"/"+string(r.System)+"/"+itoa(r.Scale)] = r.Throughput
	}
	for _, wl := range AllWorkloads {
		bg3 := byKey[string(wl)+"/BG3/8"]
		nep := byKey[string(wl)+"/Neptune-sim/8"]
		if bg3 <= nep {
			t.Fatalf("%s: BG3 %.0f <= Neptune-sim %.0f at 8 vCPUs", wl, bg3, nep)
		}
	}
}

func itoa(i int) string { return fmt.Sprint(i) }
