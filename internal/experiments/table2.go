package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/forest"
	"bg3/internal/gc"
	"bg3/internal/storage"
)

// Table2Row is one cell pair of Table 2: the background bandwidth consumed
// by space reclamation under a given policy.
type Table2Row struct {
	Workload   string
	Policy     string
	MovedBytes int64
	Duration   time.Duration
	MBPerSec   float64 // both streams
	// BaseMBPerSec isolates the base-page stream, where page lifetimes
	// are heterogeneous and policy choice matters most. The delta stream
	// is near-degenerate under the read-optimized tree (every merged
	// delta supersedes its predecessor almost immediately), so any policy
	// reclaims it almost for free.
	BaseMBPerSec float64
	Expired      int64 // extents freed by TTL without movement
}

// runRiskControlGC drives the ingest-only risk-control workload through a
// full forest while a background reclaimer runs, and reports how many
// bytes reclamation moved.
//
// ttl is the data's lifetime as seen by the application; reclaimerTTL is
// what the reclaimer knows about it. The TTL-unaware baseline
// (dirty-ratio, as in ByteGraph) gets reclaimerTTL = 0: it cannot drop
// whole extents and keeps relocating data that is about to expire — the
// wasted bandwidth Table 2 quantifies.
func runRiskControlGC(policy gc.Policy, ttl, reclaimerTTL time.Duration, s Scale, seed int64) Table2Row {
	st := storage.Open(&storage.Options{
		ExtentSize:    64 << 10,
		GradientDecay: 200 * time.Millisecond,
	})
	m := bwtree.NewMapping(0, false)
	fo, err := forest.New(m, st, forest.Config{
		Tree:           bwtree.Config{MaxPageEntries: 32, ConsolidateNum: 5},
		SplitThreshold: 128,
	}, nil)
	if err != nil {
		panic(err)
	}
	// Space-pressure-driven reclamation: each stream is held to a fixed
	// extent budget, exactly like a capacity-bounded production deployment.
	// Both policies therefore reclaim the same *space* over the run; what
	// differs — and what Table 2 reports — is how many bytes they must
	// move to do it.
	const extentBudget = 48
	gcStop := make(chan struct{})
	var gcWG sync.WaitGroup
	reclaimers := map[storage.StreamID]*gc.Reclaimer{}
	for _, stream := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
		r := gc.NewReclaimer(st, stream, policy, m.Relocate)
		r.TTL = reclaimerTTL
		reclaimers[stream] = r
		gcWG.Add(1)
		go func(stream storage.StreamID, r *gc.Reclaimer) {
			defer gcWG.Done()
			for {
				select {
				case <-gcStop:
					return
				default:
				}
				if len(st.Usage(stream)) > extentBudget {
					if _, err := r.RunOnce(4); err != nil {
						return
					}
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}(stream, r)
	}

	owners := pick(s, 200, 1_000, 5_000)
	// Writes are paced (the paper's Table 2 runs at a fixed 40K QPS) so
	// extents live long enough to age through the trend cycle; the write
	// cap is only a runaway bound.
	targetQPS := pick(s, 30_000, 40_000, 40_000)
	writes := pick(s, 2_000_000, 10_000_000, 50_000_000)
	duration := pick(s, 1200*time.Millisecond, 3*time.Second, 8*time.Second)

	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(owners-1))
	val := make([]byte, 24)
	start := time.Now()
	i := 0
	perSlot := targetQPS / 1000 // 1ms pacing slots
	slotStart := time.Now()
	inSlot := 0
	for time.Since(start) < duration {
		if inSlot >= perSlot {
			if rem := time.Millisecond - time.Since(slotStart); rem > 0 {
				time.Sleep(rem)
			}
			slotStart = time.Now()
			inSlot = 0
		}
		inSlot++
		// Fresh inserts (reconciliation records), power-law owners.
		owner := forest.OwnerID(zipf.Uint64())
		key := key64(uint64(i))
		if err := fo.Put(owner, key, val); err != nil {
			panic(err)
		}
		i++
		if i >= writes {
			break
		}
	}
	// Let the background reclaimers finish the story: the data must get a
	// chance to age out (or, for the TTL-unaware baseline, to keep being
	// relocated).
	if rem := duration - time.Since(start); rem > 0 {
		time.Sleep(rem)
	}
	time.Sleep(2 * ttl)
	elapsed := time.Since(start)
	close(gcStop)
	gcWG.Wait()
	stats := st.Stats()
	baseMoved := reclaimers[storage.StreamBase].Stats().BytesMoved
	return Table2Row{
		Policy:       policy.Name(),
		MovedBytes:   stats.GCBytesMoved,
		Duration:     elapsed,
		MBPerSec:     float64(stats.GCBytesMoved) / (1 << 20) / elapsed.Seconds(),
		BaseMBPerSec: float64(baseMoved) / (1 << 20) / elapsed.Seconds(),
		Expired:      stats.ExtentsExpired,
	}
}

// Table2SpaceReclamation reproduces Table 2: background write bandwidth of
// dirty-ratio vs gradient on the follow workload (paper: 15 vs 12.5 MB/s,
// a 16% reduction) and of dirty-ratio vs +TTL on risk control (paper: 8 vs
// 0 MB/s).
func Table2SpaceReclamation(s Scale, out io.Writer) []Table2Row {
	const riskTTL = 150 * time.Millisecond
	rows := []Table2Row{}

	// Workload 1: the controlled page-rewrite driver (see table2_follow.go).
	// FIFO is the traditional Bw-tree strategy §3.3 starts from; dirty
	// ratio is the ArkDB baseline of the paper's table; the gradient
	// policy adds Algorithm 2 on top. The fragmentation floor keeps the
	// gradient policy from compacting barely fragmented cold extents.
	rows = append(rows, runFollowGC(gc.FIFO{}, s, 1))
	rows = append(rows, runFollowGC(gc.DirtyRatio{}, s, 1))
	rows = append(rows, runFollowGC(gc.WorkloadAware{MinRate: 0.8}, s, 1))

	// Workload 2: the baseline is TTL-unaware — no extent expiry, keeps
	// moving data.
	r := runRiskControlGC(gc.DirtyRatio{}, riskTTL, 0, s, 2)
	r.Workload = "risk-control (workload 2)"
	rows = append(rows, r)
	// With a short TTL every extent is destined to expire soon; the paper's
	// "+TTL" strategy forgoes reclamation entirely and waits, so the bypass
	// margin covers the whole TTL window.
	r = runRiskControlGC(gc.WorkloadAware{TTL: riskTTL, TTLBypassMargin: riskTTL}, riskTTL, riskTTL, s, 2)
	r.Workload = "risk-control (workload 2)"
	rows = append(rows, r)

	if out != nil {
		fmt.Fprintf(out, "\n== Table 2: space reclamation policies (background GC bandwidth) ==\n")
		var tr [][]string
		for _, row := range rows {
			tr = append(tr, []string{row.Workload, row.Policy, f2(row.MBPerSec) + " MB/s",
				mb(row.MovedBytes), fmt.Sprint(row.Expired)})
		}
		table(out, []string{"workload", "policy", "bwd occupation", "bytes moved", "extents expired"}, tr)
		if rows[1].MBPerSec > 0 {
			fmt.Fprintf(out, "workload 1: vs dirty-ratio, gradient changes background writes by %+.1f%% (paper: -16%%); vs FIFO by %+.1f%%\n",
				100*(rows[2].MBPerSec/rows[1].MBPerSec-1), 100*(rows[2].MBPerSec/rows[0].MBPerSec-1))
		}
		fmt.Fprintf(out, "workload 2: +TTL moved %s vs dirty-ratio %s (paper: 0 vs 8 MB/s)\n",
			mb(rows[4].MovedBytes), mb(rows[3].MovedBytes))
	}
	return rows
}
