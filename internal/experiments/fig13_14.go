package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

// syncEnv is the shared configuration of the Fig. 13/14 experiments: a
// millisecond-latency shared store (like ByteDance's internal cloud
// storage), a group-commit window, and periodic RO polling. The paper's
// ~120ms latency is dominated by exactly these terms — WAL write latency
// plus RO log read cadence — so the reproduced latency is flat in load by
// the same mechanism, though its absolute value reflects our constants.
type syncEnv struct {
	writeLatency time.Duration
	readLatency  time.Duration
	commitWindow time.Duration
	pollInterval time.Duration
}

func syncEnvFor(s Scale) syncEnv {
	return syncEnv{
		writeLatency: pick(s, time.Millisecond, 2*time.Millisecond, 2*time.Millisecond),
		readLatency:  pick(s, 200*time.Microsecond, 500*time.Microsecond, 500*time.Microsecond),
		commitWindow: pick(s, 10*time.Millisecond, 40*time.Millisecond, 40*time.Millisecond),
		pollInterval: pick(s, 10*time.Millisecond, 40*time.Millisecond, 40*time.Millisecond),
	}
}

func (e syncEnv) open(roCount, roCache int) (*replication.RWNode, []*replication.RONode) {
	st := storage.Open(&storage.Options{
		ExtentSize:   1 << 20,
		WriteLatency: e.writeLatency,
		ReadLatency:  e.readLatency,
	})
	rw, err := replication.NewRWNode(st, replication.RWOptions{
		CommitWindow:  e.commitWindow,
		FlushInterval: 200 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	ros := make([]*replication.RONode, roCount)
	for i := range ros {
		ros[i] = replication.NewRONode(st, e.pollInterval, roCache)
	}
	return rw, ros
}

// offerWrites drives paced writes at targetQPS until stop closes. Each
// write blocks on group commit (tens of ms), so enough concurrent clients
// are spawned to sustain the offered rate — as the paper's client pools
// do. Returns the achieved write count.
func offerWrites(rw *replication.RWNode, targetQPS int, workers int, stop <-chan struct{}, seed int64) *atomic.Int64 {
	var count atomic.Int64
	// A client completes roughly one write per commit window; size the
	// pool so the target rate is reachable, capped to keep goroutine
	// counts sane.
	if need := targetQPS / 15; need > workers {
		workers = need
	}
	if workers > 1024 {
		workers = 1024
	}
	perWorker := targetQPS / workers
	if perWorker < 1 {
		perWorker = 1
	}
	interval := time.Second / time.Duration(perWorker)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-ticker.C:
					_ = rw.AddEdge(graph.Edge{
						Src:  graph.VertexID(rng.Intn(1000)),
						Dst:  graph.VertexID(rng.Uint64()),
						Type: graph.ETypeTransfer,
					})
					count.Add(1)
				}
			}
		}(w)
	}
	return &count
}

// measureSyncLatency issues probe writes and times how long each takes to
// become visible on the RO node.
func measureSyncLatency(rw *replication.RWNode, ro *replication.RONode, probes int) time.Duration {
	var total time.Duration
	ok := 0
	for i := 0; i < probes; i++ {
		start := time.Now()
		if err := rw.AddEdge(graph.Edge{
			Src: graph.VertexID(5_000_000 + i), Dst: graph.VertexID(i), Type: graph.ETypeTransfer,
		}); err != nil {
			continue
		}
		lsn := rw.LastLSN()
		if ro.WaitVisible(lsn, 5*time.Second) {
			total += time.Since(start)
			ok++
		}
	}
	if ok == 0 {
		return 0
	}
	return total / time.Duration(ok)
}

// Fig13Row is one point of the sync-latency-vs-write-load curve.
type Fig13Row struct {
	TargetWriteQPS int
	AchievedQPS    float64
	SyncLatency    time.Duration
}

// Fig13SyncLatency reproduces Fig. 13: leader-follower latency stays flat
// (paper: ~120ms) as the write load rises, because WAL shipping cost is
// independent of the page-flush backlog.
func Fig13SyncLatency(s Scale, loads []int, out io.Writer) []Fig13Row {
	env := syncEnvFor(s)
	if len(loads) == 0 {
		loads = pick(s,
			[]int{500, 1000, 2000},
			[]int{1000, 2000, 4000, 6000},
			[]int{2000, 4000, 8000, 12000},
		)
	}
	probes := pick(s, 4, 10, 20)
	var rows []Fig13Row
	for _, load := range loads {
		rw, ros := env.open(1, 0)
		stop := make(chan struct{})
		count := offerWrites(rw, load, 4, stop, 11)
		start := time.Now()
		lat := measureSyncLatency(rw, ros[0], probes)
		elapsed := time.Since(start)
		close(stop)
		achieved := float64(count.Load()) / elapsed.Seconds()
		for _, ro := range ros {
			ro.Stop()
		}
		rw.Stop()
		rows = append(rows, Fig13Row{TargetWriteQPS: load, AchievedQPS: achieved, SyncLatency: lat})
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 13: leader-follower latency vs write throughput ==\n")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{kqps(float64(r.TargetWriteQPS)), kqps(r.AchievedQPS),
				fmt.Sprintf("%.1fms", float64(r.SyncLatency.Microseconds())/1000)})
		}
		table(out, []string{"target write QPS", "achieved", "sync latency"}, tr)
		fmt.Fprintln(out, "paper shape: latency flat (~120ms) from 10K to 60K write QPS; ours is flat around commit-window + WAL-write + poll terms")
	}
	return rows
}

// Fig14Row is one point of the RO scale-out experiment.
type Fig14Row struct {
	RONodes     int
	ReadQPS     float64 // aggregate across RO nodes (ROPS)
	SyncLatency time.Duration
}

// Fig14ROScaling reproduces Fig. 14: with the write load fixed, read
// throughput grows as RO nodes are added (paper: 65K -> 118K -> 134K for
// 1 -> 2 -> 4 followers, i.e. sublinear) while sync latency stays stable.
func Fig14ROScaling(s Scale, roCounts []int, out io.Writer) []Fig14Row {
	env := syncEnvFor(s)
	if len(roCounts) == 0 {
		roCounts = []int{1, 2, 4}
	}
	writeQPS := pick(s, 500, 1000, 2000)
	preload := pick(s, 10_000, 60_000, 120_000)
	const sources = 2000
	readFor := pick(s, 300*time.Millisecond, time.Second, 3*time.Second)
	probes := pick(s, 3, 8, 16)

	var rows []Fig14Row
	for _, n := range roCounts {
		// RO caches are bounded well below the working set so most reads
		// pay the shared-store read latency: per-node capacity is then
		// latency-bound (as on real follower machines), and adding
		// followers adds capacity.
		rw, ros := env.open(n, 16)
		// Preload concurrently so group commit amortizes the WAL latency.
		var plg sync.WaitGroup
		const loaders = 32
		for l := 0; l < loaders; l++ {
			plg.Add(1)
			go func(l int) {
				defer plg.Done()
				for i := l; i < preload; i += loaders {
					if err := rw.AddEdge(graph.Edge{
						Src: graph.VertexID(i % sources), Dst: graph.VertexID(i), Type: graph.ETypeTransfer,
					}); err != nil {
						panic(err)
					}
				}
			}(l)
		}
		plg.Wait()
		if err := rw.Checkpoint(); err != nil {
			panic(err)
		}
		lsn := rw.LastLSN()
		for _, ro := range ros {
			ro.WaitVisible(lsn, 10*time.Second)
		}

		stop := make(chan struct{})
		offerWrites(rw, writeQPS, 2, stop, 13)

		// Each RO node serves read clients flat out.
		var reads atomic.Int64
		var wg sync.WaitGroup
		readStop := make(chan struct{})
		for i, ro := range ros {
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(seed int64, ro *replication.RONode) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-readStop:
							return
						default:
						}
						src := graph.VertexID(rng.Intn(sources))
						_ = ro.Replica().Neighbors(src, graph.ETypeTransfer, 16,
							func(graph.VertexID, graph.Properties) bool { return true })
						reads.Add(1)
					}
				}(int64(i*10+c), ro)
			}
		}
		readStart := time.Now()
		lat := measureSyncLatency(rw, ros[0], probes)
		if rem := readFor - time.Since(readStart); rem > 0 {
			time.Sleep(rem)
		}
		elapsed := time.Since(readStart)
		close(readStop)
		wg.Wait()
		close(stop)
		readQPS := float64(reads.Load()) / elapsed.Seconds()
		for _, ro := range ros {
			ro.Stop()
		}
		rw.Stop()
		rows = append(rows, Fig14Row{RONodes: n, ReadQPS: readQPS, SyncLatency: lat})
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 14: RO scale-out at fixed write load ==\n")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{fmt.Sprintf("1M%dF", r.RONodes), kqps(r.ReadQPS),
				fmt.Sprintf("%.1fms", float64(r.SyncLatency.Microseconds())/1000)})
		}
		table(out, []string{"config", "read QPS (ROPS)", "MF-LTCY"}, tr)
		fmt.Fprintln(out, "paper shape: ROPS grows sublinearly with followers (65K->118K->134K) while sync latency stays ~flat")
	}
	return rows
}
