package experiments

import (
	"fmt"
	"io"

	"bg3/internal/bwtree"
	"bg3/internal/bytegraph"
	"bg3/internal/core"
	"bg3/internal/gc"
	"bg3/internal/lsm"
	"bg3/internal/workload"
)

// CostRow summarizes the storage-cost model for one system.
type CostRow struct {
	System        System
	LiveBytes     int64   // user-visible resident data
	ResidentBytes int64   // bytes actually occupying media (incl. garbage)
	WrittenBytes  int64   // total device writes (foreground + GC/compaction)
	WriteAmp      float64 // written / live
	Redundancy    float64 // copies (replication or erasure overhead)
	PricePerGB    float64 // relative media price
	RelativeCost  float64 // resident * redundancy * price (normalized later)
}

// Cost model constants, documented in EXPERIMENTS.md. ByteGraph's LSM KV
// runs on 3-way-replicated NVMe; BG3 runs on erasure-coded (~1.5x) shared
// cloud storage whose per-GB price is roughly a third of local NVMe — the
// paper's "switching to shared cloud storage further reduces the cost per
// bit".
const (
	lsmRedundancy   = 3.0
	lsmPricePerGB   = 3.0
	cloudRedundancy = 1.5
	cloudPricePerGB = 1.0
)

// StorageCost reproduces the §4.2 storage-cost comparison: the same
// follow-style write workload runs on both engines; we measure live data,
// resident bytes, and total device writes, then apply the media cost
// model. The paper reports ~80% average storage-cost saving for BG3.
func StorageCost(s Scale, out io.Writer) []CostRow {
	vertices := pick(s, 2_000, 20_000, 100_000)
	edges := pick(s, 20_000, 200_000, 1_000_000)

	// BG3: forest + workload-aware GC on append-only shared storage.
	bg3eng, err := core.New(core.Options{
		Tree:           bwtree.Config{MaxPageEntries: 64, ConsolidateNum: 10},
		SplitThreshold: 512,
		GCPolicy:       gc.WorkloadAware{},
	})
	if err != nil {
		panic(err)
	}
	if err := workload.Preload(bg3eng, workload.PreloadSpec{
		Vertices: vertices, Edges: edges, Type: 1, Seed: 5,
	}); err != nil {
		panic(err)
	}
	// Steady-state reclamation so resident bytes reflect GC'd storage.
	for i := 0; i < 8; i++ {
		if _, err := bg3eng.RunGC(16); err != nil {
			panic(err)
		}
	}
	bs := bg3eng.Store().Stats()
	bg3Row := CostRow{
		System:    SysBG3,
		LiveBytes: bs.LiveBytes,
		// Capacity is provisioned against live data at steady state:
		// garbage is reclaimable by GC and extent slack is reusable, so
		// the cost model charges live bytes (same basis as the LSM row).
		ResidentBytes: bs.LiveBytes,
		WrittenBytes:  bs.BytesWritten,
		Redundancy:    cloudRedundancy,
		PricePerGB:    cloudPricePerGB,
	}
	bg3eng.Close()

	// ByteGraph: edge trees over the LSM KV.
	bgs := bytegraph.New(bytegraph.Config{KV: lsm.Config{MemtableBytes: 128 << 10}})
	if err := workload.Preload(bgs, workload.PreloadSpec{
		Vertices: vertices, Edges: edges, Type: 1, Seed: 5,
	}); err != nil {
		panic(err)
	}
	ks := bgs.KV().Stats()
	bgRow := CostRow{
		System:        SysByteGraph,
		LiveBytes:     ks.ResidentBytes, // tables deduplicate: resident == live
		ResidentBytes: ks.ResidentBytes,
		WrittenBytes:  ks.BytesFlushed + ks.BytesCompacted,
		Redundancy:    lsmRedundancy,
		PricePerGB:    lsmPricePerGB,
	}

	for _, row := range []*CostRow{&bg3Row, &bgRow} {
		if row.LiveBytes > 0 {
			row.WriteAmp = float64(row.WrittenBytes) / float64(row.LiveBytes)
		}
		row.RelativeCost = float64(row.ResidentBytes) * row.Redundancy * row.PricePerGB
	}
	rows := []CostRow{bg3Row, bgRow}

	if out != nil {
		fmt.Fprintf(out, "\n== Storage cost (§4.2 cost model; constants documented in EXPERIMENTS.md) ==\n")
		var tr [][]string
		for _, r := range rows {
			tr = append(tr, []string{string(r.System), mb(r.LiveBytes), mb(r.WrittenBytes),
				f2(r.WriteAmp) + "x", f1(r.Redundancy) + "x", f1(r.PricePerGB)})
		}
		table(out, []string{"system", "live data", "device writes", "write amp", "redundancy", "price/GB"}, tr)
		if bgRow.RelativeCost > 0 {
			fmt.Fprintf(out, "relative storage cost: BG3 saves %.1f%% vs ByteGraph (paper: ~80%% average)\n",
				100*(1-bg3Row.RelativeCost/bgRow.RelativeCost))
		}
	}
	return rows
}
