package experiments

import (
	"math/rand"
	"sync"
	"time"

	"bg3/internal/gc"
	"bg3/internal/storage"
)

// followGCDriver reproduces the Table 2 "Douyin Follow" regime through the
// real storage and reclamation machinery, with the page-write pattern the
// Bw-tree generates made explicit and controllable (Figure 5's setting):
//
//   - The store holds base-page images; each logical page has exactly one
//     live image at a time.
//   - A page is rewritten (old image invalidated, new image appended)
//     whenever its content changes — for a video's like page this happens
//     at the video's like rate.
//   - Popularity is skewed and *temporal*: a rotating subset of pages is
//     hot (rewritten every few milliseconds, like a newly released video)
//     while the rest is cold (rarely rewritten). Extents therefore mix
//     copies of hot pages (which keep dying while the page stays hot) with
//     cold images (stable survivors).
//
// Under space pressure, a fragmentation-only policy relocates survivors of
// extents that are still burning — images of currently hot pages, which
// the very next rewrite invalidates. The update-gradient policy waits
// burning extents out and compacts plateaued ones, moving fewer bytes for
// the same space reclaimed.
type followGCDriver struct {
	store  *storage.Store
	pages  []storage.Loc // current image location per page
	mu     sync.Mutex    // guards pages against the relocation callback
	img    []byte
	rng    *rand.Rand
	hotLo  int // current hot window [hotLo, hotLo+hotN)
	hotN   int
	nPages int
}

const followPageSize = 1024

func newFollowGCDriver(nPages, hotN int, seed int64) *followGCDriver {
	d := &followGCDriver{
		store:  storage.Open(&storage.Options{ExtentSize: 64 << 10, GradientDecay: 150 * time.Millisecond}),
		pages:  make([]storage.Loc, nPages),
		img:    make([]byte, followPageSize),
		rng:    rand.New(rand.NewSource(seed)),
		hotN:   hotN,
		nPages: nPages,
	}
	for i := range d.pages {
		loc, err := d.store.Append(storage.StreamBase, uint64(i), d.img)
		if err != nil {
			panic(err)
		}
		d.pages[i] = loc
	}
	return d
}

// rewrite supersedes page i's image.
func (d *followGCDriver) rewrite(i int) {
	loc, err := d.store.Append(storage.StreamBase, uint64(i), d.img)
	if err != nil {
		panic(err)
	}
	d.mu.Lock()
	old := d.pages[i]
	d.pages[i] = loc
	d.mu.Unlock()
	d.store.Invalidate(old)
}

// relocate is the GC callback: repoint the page table.
func (d *followGCDriver) relocate(tag uint64, old, new storage.Loc) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pages[tag] != old {
		return false
	}
	d.pages[tag] = new
	return true
}

// run drives rotated hot rewrites for the given duration with a
// space-pressure reclaimer, returning bytes moved by GC.
func (d *followGCDriver) run(policy gc.Policy, duration time.Duration, budget int) (int64, time.Duration) {
	r := gc.NewReclaimer(d.store, storage.StreamBase, policy, d.relocate)
	gcStop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-gcStop:
				return
			default:
			}
			if len(d.store.Usage(storage.StreamBase)) > budget {
				if _, err := r.RunOnce(2); err != nil {
					return
				}
			} else {
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	const (
		rotateEvery = 150 * time.Millisecond
		slot        = time.Millisecond
		hotPerSlot  = 8 // hot rewrites per ms (most traffic)
		coldPerSlot = 1 // background cold rewrites per ms
	)
	start := time.Now()
	lastRotate := start
	for time.Since(start) < duration {
		slotStart := time.Now()
		if slotStart.Sub(lastRotate) >= rotateEvery {
			d.hotLo = (d.hotLo + d.hotN) % d.nPages
			lastRotate = slotStart
		}
		for k := 0; k < hotPerSlot; k++ {
			d.rewrite(d.hotLo + d.rng.Intn(d.hotN))
		}
		for k := 0; k < coldPerSlot; k++ {
			d.rewrite(d.rng.Intn(d.nPages))
		}
		if rem := slot - time.Since(slotStart); rem > 0 {
			time.Sleep(rem)
		}
	}
	elapsed := time.Since(start)
	close(gcStop)
	wg.Wait()
	return r.Stats().BytesMoved, elapsed
}

// runFollowGC executes the workload-1 half of Table 2 for one policy.
func runFollowGC(policy gc.Policy, s Scale, seed int64) Table2Row {
	nPages := pick(s, 1_500, 3_000, 6_000)
	hotN := nPages / 10
	duration := pick(s, 1500*time.Millisecond, 4*time.Second, 10*time.Second)
	// Capacity: live data plus enough slack that extents can age through
	// a few hotness rotations before pressure forces their reclamation.
	liveExtents := nPages * followPageSize / (64 << 10)
	budget := liveExtents + pick(s, 60, 80, 120)

	d := newFollowGCDriver(nPages, hotN, seed)
	moved, elapsed := d.run(policy, duration, budget)
	return Table2Row{
		Workload:     "douyin-follow (workload 1)",
		Policy:       policy.Name(),
		MovedBytes:   moved,
		Duration:     elapsed,
		MBPerSec:     float64(moved) / (1 << 20) / elapsed.Seconds(),
		BaseMBPerSec: float64(moved) / (1 << 20) / elapsed.Seconds(),
	}
}
