package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/bytegraph"
	"bg3/internal/cluster"
	"bg3/internal/core"
	"bg3/internal/forest"
	"bg3/internal/graph"
	"bg3/internal/lsm"
	"bg3/internal/neptunesim"
	"bg3/internal/storage"
	"bg3/internal/workload"
)

// System identifies an engine under comparison.
type System string

// Systems compared in Fig. 8.
const (
	SysBG3       System = "BG3"
	SysByteGraph System = "ByteGraph"
	SysNeptune   System = "Neptune-sim"
)

// WorkloadKind selects one of the Table 1 workloads.
type WorkloadKind string

// Table 1 workloads.
const (
	WLFollow         WorkloadKind = "douyin-follow"
	WLRiskControl    WorkloadKind = "financial-risk-control"
	WLRecommendation WorkloadKind = "douyin-recommendation"
)

// AllWorkloads lists the Table 1 workloads in paper order.
var AllWorkloads = []WorkloadKind{WLFollow, WLRiskControl, WLRecommendation}

// Fig8Row is one measurement of the overall comparison.
type Fig8Row struct {
	Workload   WorkloadKind
	System     System
	Scale      int // vCPUs (vertical) or nodes (horizontal)
	Throughput float64
}

// fig8Params derives workload sizing from the scale.
type fig8Params struct {
	vertices     int
	preloadEdges int
	runFor       time.Duration
}

func fig8ParamsFor(s Scale) fig8Params {
	return fig8Params{
		vertices:     pick(s, 2_000, 20_000, 100_000),
		preloadEdges: pick(s, 10_000, 100_000, 500_000),
		runFor:       pick(s, 150*time.Millisecond, time.Second, 5*time.Second),
	}
}

// newSystem builds one engine instance (one "node") with the I/O cost
// model of DESIGN.md §3: both persistent substrates answer in milliseconds
// (BG3's shared cloud storage; ByteGraph's *distributed* LSM KV behind a
// proxy), and both memory layers have bounded caches, so the architectural
// difference the paper measures — how many round trips an operation pays
// on a miss, and how lean the path is — determines throughput. The
// returned cleanup must run after measurement.
func newSystem(sys System, p fig8Params) (graph.Store, func()) {
	switch sys {
	case SysBG3:
		e, err := core.New(core.Options{
			Storage: &storage.Options{
				ReadLatency:  time.Millisecond,
				WriteLatency: time.Millisecond,
			},
			Tree: bwtree.Config{
				Policy:        bwtree.ReadOptimized,
				CacheCapacity: 1024, // leaf pages (~128 edges each)
			},
		})
		if err != nil {
			panic(err)
		}
		// The power-law head (low vertex IDs under the zipf generators)
		// gets dedicated Bw-trees up front — dedicating an empty owner is
		// free, whereas threshold-triggered migrations of already-loaded
		// super-vertices would pay per-key storage round trips mid-run.
		// The forest's threshold behaviour itself is evaluated in Fig. 11.
		for i := 0; i < 1024; i++ {
			if err := e.Forest().Dedicate(forest.OwnerID(i)); err != nil {
				panic(err)
			}
		}
		return e, e.Close
	case SysByteGraph:
		s := bytegraph.New(bytegraph.Config{
			KV: lsm.Config{
				MemtableBytes: 256 << 10,
				OpLatency:     time.Millisecond, // RPC to the distributed KV
			},
			CacheTrees: 4096, // edge trees resident in the BGS cache
		})
		return s, func() {}
	case SysNeptune:
		return neptunesim.New(neptunesim.Config{}), func() {}
	default:
		panic("unknown system " + sys)
	}
}

func generatorFor(kind WorkloadKind, vertices int, seed int64) workload.Generator {
	switch kind {
	case WLFollow:
		return workload.NewDouyinFollow(vertices, seed)
	case WLRiskControl:
		return workload.NewRiskControl(vertices, seed)
	case WLRecommendation:
		return workload.NewRecommendation(vertices, seed)
	default:
		panic("unknown workload " + kind)
	}
}

func edgeTypeFor(kind WorkloadKind) graph.EdgeType {
	if kind == WLRiskControl {
		return graph.ETypeTransfer
	}
	return graph.ETypeFollow
}

// Fig8Vertical reproduces the single-machine half of Fig. 8: throughput of
// each system on each workload as the vCPU allocation grows (worker-pool
// cap, per DESIGN.md §3).
func Fig8Vertical(s Scale, vcpus []int, out io.Writer) []Fig8Row {
	if len(vcpus) == 0 {
		vcpus = []int{4, 8, 16}
	}
	p := fig8ParamsFor(s)
	var rows []Fig8Row
	for _, wl := range AllWorkloads {
		for _, sys := range []System{SysBG3, SysByteGraph, SysNeptune} {
			for _, c := range vcpus {
				start := time.Now()
				store, cleanup := newSystem(sys, p)
				if err := workload.PreloadParallel(store, workload.PreloadSpec{
					Vertices: p.vertices, Edges: p.preloadEdges,
					Type: edgeTypeFor(wl), Seed: 1,
				}, 64); err != nil {
					panic(err)
				}
				limited := cluster.Limit(store, c)
				res := workload.RunFor(limited, generatorFor(wl, p.vertices, 7), 2*c, p.runFor, 99)
				cleanup()
				fmt.Fprintf(os.Stderr, "fig8v %s/%s c=%d done in %v (%.0f ops/s)\n",
					wl, sys, c, time.Since(start).Round(time.Second), res.Throughput)
				rows = append(rows, Fig8Row{Workload: wl, System: sys, Scale: c, Throughput: res.Throughput})
			}
		}
	}
	if out != nil {
		printFig8(out, "Figure 8 (vertical): single machine, vCPUs 4-16", "vCPUs", rows)
	}
	return rows
}

// Fig8Horizontal reproduces the multi-node half of Fig. 8: 2-10 nodes,
// each with a 16-vCPU worker cap, writes sharded by vertex hash.
func Fig8Horizontal(s Scale, nodes []int, out io.Writer) []Fig8Row {
	if len(nodes) == 0 {
		nodes = []int{2, 4, 6, 8, 10}
	}
	const vcpusPerNode = 16
	p := fig8ParamsFor(s)
	var rows []Fig8Row
	for _, wl := range AllWorkloads {
		for _, sys := range []System{SysBG3, SysByteGraph, SysNeptune} {
			for _, n := range nodes {
				members := make([]graph.Store, n)
				cleanups := make([]func(), n)
				for i := range members {
					store, cleanup := newSystem(sys, p)
					members[i] = cluster.Limit(store, vcpusPerNode)
					cleanups[i] = cleanup
				}
				cl := cluster.New(members...)
				if err := workload.PreloadParallel(cl, workload.PreloadSpec{
					Vertices: p.vertices, Edges: p.preloadEdges,
					Type: edgeTypeFor(wl), Seed: 1,
				}, 64); err != nil {
					panic(err)
				}
				res := workload.RunFor(cl, generatorFor(wl, p.vertices, 7), 2*n*vcpusPerNode, p.runFor, 99)
				for _, c := range cleanups {
					c()
				}
				fmt.Fprintf(os.Stderr, "fig8h %s/%s n=%d done (%.0f ops/s)\n", wl, sys, n, res.Throughput)
				rows = append(rows, Fig8Row{Workload: wl, System: sys, Scale: n, Throughput: res.Throughput})
			}
		}
	}
	if out != nil {
		printFig8(out, "Figure 8 (horizontal): 2-10 nodes x 16 vCPUs", "nodes", rows)
	}
	return rows
}

func printFig8(out io.Writer, title, scaleName string, rows []Fig8Row) {
	fmt.Fprintf(out, "\n== %s ==\n", title)
	byWL := map[WorkloadKind][]Fig8Row{}
	for _, r := range rows {
		byWL[r.Workload] = append(byWL[r.Workload], r)
	}
	for _, wl := range AllWorkloads {
		sub := byWL[wl]
		if len(sub) == 0 {
			continue
		}
		fmt.Fprintf(out, "\n-- workload: %s --\n", wl)
		var tr [][]string
		for _, r := range sub {
			tr = append(tr, []string{string(r.System), fmt.Sprint(r.Scale), kqps(r.Throughput)})
		}
		table(out, []string{"system", scaleName, "throughput"}, tr)
		// Headline factor: BG3 vs others at the largest scale.
		best := map[System]float64{}
		maxScale := 0
		for _, r := range sub {
			if r.Scale > maxScale {
				maxScale = r.Scale
			}
		}
		for _, r := range sub {
			if r.Scale == maxScale {
				best[r.System] = r.Throughput
			}
		}
		if best[SysByteGraph] > 0 && best[SysNeptune] > 0 {
			fmt.Fprintf(out, "at %s=%d: BG3/ByteGraph = %.2fx, BG3/Neptune-sim = %.2fx\n",
				scaleName, maxScale, best[SysBG3]/best[SysByteGraph], best[SysBG3]/best[SysNeptune])
		}
	}
}
