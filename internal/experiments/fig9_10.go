package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"

	"bg3/internal/bwtree"
	"bg3/internal/storage"
)

// Fig9Result reproduces the read-amplification comparison of Fig. 9:
// with a zero-size cache, every read materializes the page from storage,
// paying one read per base page plus one per durable delta.
type Fig9Result struct {
	System        string
	InputQPS      float64 // nominal client read rate (paper: 20K)
	StorageQPS    float64 // implied storage read rate
	Amplification float64 // storage reads per client read
}

// fig9TreeSetup builds a tree preloaded with Douyin-follow-like data and a
// power-law update phase that leaves delta chains behind, mirroring §4.3.1
// ("restricted from splitting", consolidate after 10 deltas, cache = 0).
func fig9TreeSetup(policy bwtree.DeltaPolicy, keys, updates int, seed int64) (*bwtree.Tree, *storage.Store) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
	m := bwtree.NewMapping(0, true) // zero cache: every read hits storage
	tr, err := bwtree.New(m, st, bwtree.Config{
		Policy:         policy,
		ConsolidateNum: 10,
		DisableSplit:   false, // split on load so pages stay page-sized...
		MaxPageEntries: 64,
	}, nil)
	if err != nil {
		panic(err)
	}
	// Load phase: insert all data (sequential keys split into many pages).
	val := make([]byte, 32)
	for i := 0; i < keys; i++ {
		if err := tr.Put(key64(uint64(i)), val); err != nil {
			panic(err)
		}
	}
	// Update phase: power-law updates build delta chains on hot pages.
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	for i := 0; i < updates; i++ {
		if err := tr.Put(key64(zipf.Uint64()), val); err != nil {
			panic(err)
		}
	}
	return tr, st
}

func key64(v uint64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, v)
	return buf
}

// Fig9ReadAmplification measures storage reads per client read for the
// traditional (SLED-like) and read-optimized trees. The paper reports
// 76K vs 48K storage QPS at a 20K QPS power-law read load (3.87x vs 2.4x).
func Fig9ReadAmplification(s Scale, out io.Writer) []Fig9Result {
	keys := pick(s, 4_000, 40_000, 200_000)
	updates := pick(s, 8_000, 80_000, 400_000)
	reads := pick(s, 5_000, 50_000, 200_000)
	const inputQPS = 20_000 // nominal, as in the paper

	run := func(name string, policy bwtree.DeltaPolicy) Fig9Result {
		tr, st := fig9TreeSetup(policy, keys, updates, 42)
		st.ResetIOStats()
		rng := rand.New(rand.NewSource(7))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
		for i := 0; i < reads; i++ {
			if _, _, err := tr.Get(key64(zipf.Uint64())); err != nil {
				panic(err)
			}
		}
		amp := float64(st.Stats().ReadOps) / float64(reads)
		return Fig9Result{
			System:        name,
			InputQPS:      inputQPS,
			StorageQPS:    amp * inputQPS,
			Amplification: amp,
		}
	}
	results := []Fig9Result{
		run("SLED (traditional Bw-tree)", bwtree.Traditional),
		run("BG3 (read-optimized Bw-tree)", bwtree.ReadOptimized),
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 9: read amplification (cache=0, consolidate=10, power-law) ==\n")
		var tr [][]string
		for _, r := range results {
			tr = append(tr, []string{r.System, kqps(r.InputQPS), kqps(r.StorageQPS), f2(r.Amplification) + "x"})
		}
		table(out, []string{"system", "input QPS", "storage QPS", "amplification"}, tr)
		if len(results) == 2 && results[0].StorageQPS > 0 {
			fmt.Fprintf(out, "read-optimized reduces storage read QPS by %.1f%% (paper: 36.8%%)\n",
				100*(1-results[1].StorageQPS/results[0].StorageQPS))
		}
	}
	return results
}

// Fig10Result reproduces the write-bandwidth comparison of Fig. 10: the
// read-optimized tree rewrites merged deltas, paying modestly more bytes
// (paper: 70MB vs 64.5MB, +9.3%, all sequential appends).
type Fig10Result struct {
	System       string
	BytesWritten int64
}

// Fig10WriteBandwidth runs the write-only power-law benchmark on both
// policies and reports total bytes appended to storage. Page geometry
// matches the paper's description — "the leaf nodes of a single Bw-tree
// typically contain dozens or even hundreds of edges" — so base-page
// consolidations dominate the byte volume and the merged-delta rewrites
// add only a modest overhead, as in the paper (+9.3%).
func Fig10WriteBandwidth(s Scale, out io.Writer) []Fig10Result {
	keys := pick(s, 4_000, 40_000, 200_000)
	writes := pick(s, 10_000, 100_000, 500_000)

	run := func(name string, policy bwtree.DeltaPolicy) Fig10Result {
		st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
		m := bwtree.NewMapping(0, false)
		tr, err := bwtree.New(m, st, bwtree.Config{
			Policy:         policy,
			ConsolidateNum: 10,
			MaxPageEntries: 512,
		}, nil)
		if err != nil {
			panic(err)
		}
		val := make([]byte, 64)
		rng := rand.New(rand.NewSource(21))
		zipf := rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
		for i := 0; i < writes; i++ {
			if err := tr.Put(key64(zipf.Uint64()), val); err != nil {
				panic(err)
			}
		}
		return Fig10Result{System: name, BytesWritten: st.Stats().BytesWritten}
	}
	results := []Fig10Result{
		run("SLED (traditional Bw-tree)", bwtree.Traditional),
		run("BG3 (read-optimized Bw-tree)", bwtree.ReadOptimized),
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 10: write bandwidth (write-only power-law) ==\n")
		var tr [][]string
		for _, r := range results {
			tr = append(tr, []string{r.System, mb(r.BytesWritten)})
		}
		table(out, []string{"system", "bytes written"}, tr)
		if results[0].BytesWritten > 0 {
			fmt.Fprintf(out, "read-optimized writes %.1f%% more bytes (paper: +9.3%%), all sequential appends\n",
				100*(float64(results[1].BytesWritten)/float64(results[0].BytesWritten)-1))
		}
	}
	return results
}
