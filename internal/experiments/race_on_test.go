//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// throughput-shape assertions are skipped under it because instrumentation
// distorts the engines' relative performance.
const raceEnabled = true
