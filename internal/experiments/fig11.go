package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/forest"
	"bg3/internal/storage"
)

// Fig11Row is one point of the Bw-tree forest scaling experiment: write
// throughput and memory cost as the number of Bw-trees grows (paper:
// 50->90->150->289 KQPS and superlinear memory as trees go 1 -> 64 ->
// 100K -> 1M, with diminishing QPS returns at the high end).
type Fig11Row struct {
	Trees       int
	WriteQPS    float64
	MemoryBytes int64
}

// Fig11ForestScaling controls the number of Bw-trees directly (the paper
// tunes it via the split threshold; we pre-dedicate the top-T owners,
// which reaches the same steady state without migration noise inside the
// measurement window) and measures fully-cached concurrent write
// throughput plus resident memory.
//
// The contention mechanism is the paper's Observation 1/2 pair: a user
// never conflicts with itself, but the like-lists of *different* users
// share INIT leaf pages, so concurrently active users serialize on page
// latches — and per Algorithm 1 a latch is held across the inline delta
// flush to (millisecond-class) cloud storage. Dedicating trees to the
// power-law head removes that sharing; pushing dedication deep into the
// cold tail buys little extra QPS while memory keeps growing (Observation
// 3: per-tree structures for users with a handful of likes are waste).
func Fig11ForestScaling(s Scale, treeCounts []int, out io.Writer) []Fig11Row {
	if len(treeCounts) == 0 {
		treeCounts = pick(s,
			[]int{1, 64, 1024, 8192},
			[]int{1, 64, 4096, 32768},
			[]int{1, 64, 16384, 131072},
		)
	}
	owners := pick(s, 16_384, 65_536, 262_144)
	writes := pick(s, 6_000, 16_000, 48_000)
	const workers = 8

	var rows []Fig11Row
	for _, trees := range treeCounts {
		st := storage.Open(&storage.Options{
			ExtentSize: 1 << 20,
			// Algorithm 1 flushes inline while the page latch is held, so a
			// conflicting writer waits out a full storage round trip.
			WriteLatency: time.Millisecond,
		})
		m := bwtree.NewMapping(0, false) // full cache
		fo, err := forest.New(m, st, forest.Config{
			Tree: bwtree.Config{MaxPageEntries: 64},
		}, nil)
		if err != nil {
			panic(err)
		}
		// Dedicate the hottest T-1 owners (the INIT tree is the T-th).
		// Owner IDs are zipf-rank * workers + worker, so dedication covers
		// every worker's head equally.
		for i := 0; i < trees-1 && i < owners; i++ {
			if err := fo.Dedicate(forest.OwnerID(i)); err != nil {
				panic(err)
			}
		}

		// Per Observation 2, one user never writes concurrently with
		// itself: each worker owns a disjoint residue class of owner IDs.
		// The hot owners of different workers have adjacent IDs, so in the
		// shared INIT tree their like-lists land on the same leaves — the
		// write-conflict scenario of Figure 3.
		var wg sync.WaitGroup
		per := writes / workers
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w) + 1))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(owners/workers-1))
				val := make([]byte, 8)
				seq := make(map[forest.OwnerID]uint64)
				for i := 0; i < per; i++ {
					owner := forest.OwnerID(zipf.Uint64()*uint64(workers) + uint64(w))
					seq[owner]++
					if err := fo.Put(owner, key64(seq[owner]), val); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)

		stats := fo.Stats()
		rows = append(rows, Fig11Row{
			Trees:       stats.Trees,
			WriteQPS:    float64(writes) / elapsed.Seconds(),
			MemoryBytes: stats.MemoryBytes,
		})
	}
	if out != nil {
		fmt.Fprintf(out, "\n== Figure 11: Bw-tree forest scaling (write-only power-law, full cache) ==\n")
		var tr [][]string
		for i, r := range rows {
			qpsGain, memGain := "", ""
			if i > 0 {
				qpsGain = fmt.Sprintf("%.2fx", r.WriteQPS/rows[i-1].WriteQPS)
				memGain = fmt.Sprintf("%.2fx", float64(r.MemoryBytes)/float64(rows[i-1].MemoryBytes))
			}
			tr = append(tr, []string{fmt.Sprint(r.Trees), kqps(r.WriteQPS), mb(r.MemoryBytes), qpsGain, memGain})
		}
		table(out, []string{"bw-trees", "write QPS", "memory", "QPS vs prev", "mem vs prev"}, tr)
		fmt.Fprintln(out, "paper shape: QPS grows with tree count but sublinearly at the high end, while memory keeps growing")
	}
	return rows
}
