package forest

import (
	"encoding/binary"
	"fmt"
	"sync"

	"bg3/internal/bwtree"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Replica is the RO-node view of a forest: a bwtree.Replica plus the owner
// directory reconstructed from RecordOwnerAssign WAL records. The first
// tree created in the WAL is taken as the INIT tree, matching Forest.New.
type Replica struct {
	rep *bwtree.Replica

	mu     sync.RWMutex
	owners map[OwnerID]bwtree.TreeID
	init   bwtree.TreeID
}

// NewReplica returns an empty forest replica. capacity bounds the cached
// pages of the underlying bwtree replica (0 = unlimited).
func NewReplica(store *storage.Store, capacity int) *Replica {
	return &Replica{
		rep:    bwtree.NewReplica(store, capacity),
		owners: make(map[OwnerID]bwtree.TreeID),
	}
}

// Apply incorporates one WAL record, maintaining the owner directory on
// assignment records and delegating everything else to the page replica.
func (r *Replica) Apply(rec *wal.Record) error {
	if err := r.applyDirectory(rec); err != nil {
		return err
	}
	return r.rep.Apply(rec)
}

// applyDirectory maintains the owner directory for the records that affect
// routing; all other records are a no-op here.
func (r *Replica) applyDirectory(rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordNewTree:
		r.mu.Lock()
		if r.init == 0 {
			r.init = bwtree.TreeID(rec.TreeID)
		}
		r.mu.Unlock()
	case wal.RecordOwnerAssign:
		if len(rec.Key) != 8 {
			return fmt.Errorf("forest: replica: malformed owner assignment key (%d bytes)", len(rec.Key))
		}
		owner := OwnerID(binary.BigEndian.Uint64(rec.Key))
		r.mu.Lock()
		r.owners[owner] = bwtree.TreeID(rec.TreeID)
		r.mu.Unlock()
	}
	return nil
}

// ApplyAll incorporates records in order.
func (r *Replica) ApplyAll(recs []*wal.Record) error {
	for _, rec := range recs {
		if err := r.Apply(rec); err != nil {
			return err
		}
	}
	return nil
}

// ApplyGroup incorporates one commit group: records apply in order —
// directory and page state interleaved exactly as Apply would — but the
// published high LSN advances only once the whole group is in.
func (r *Replica) ApplyGroup(recs []*wal.Record) error {
	for _, rec := range recs {
		if err := r.applyDirectory(rec); err != nil {
			return err
		}
		if err := r.rep.ApplyDeferred(rec); err != nil {
			return err
		}
	}
	if n := len(recs); n > 0 {
		r.rep.PublishLSN(recs[n-1].LSN)
	}
	return nil
}

// HighLSN reports the newest WAL LSN incorporated.
func (r *Replica) HighLSN() wal.LSN { return r.rep.HighLSN() }

// route returns the tree serving owner and whether it is the INIT tree.
func (r *Replica) route(owner OwnerID) (bwtree.TreeID, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if t, ok := r.owners[owner]; ok {
		return t, false, nil
	}
	if r.init == 0 {
		return 0, false, fmt.Errorf("forest: replica: no INIT tree observed yet")
	}
	return r.init, true, nil
}

// Get returns the value of key under owner.
func (r *Replica) Get(owner OwnerID, key []byte) ([]byte, bool, error) {
	tree, isInit, err := r.route(owner)
	if err != nil {
		return nil, false, err
	}
	if isInit {
		return r.rep.Get(tree, compositeKey(owner, key))
	}
	return r.rep.Get(tree, key)
}

// Scan iterates owner's keys in [from, to), like Forest.Scan.
func (r *Replica) Scan(owner OwnerID, from, to []byte, limit int, fn func(key, value []byte) bool) error {
	tree, isInit, err := r.route(owner)
	if err != nil {
		return err
	}
	if !isInit {
		return r.rep.Scan(tree, from, to, limit, fn)
	}
	lo := compositeKey(owner, from)
	var hi []byte
	if to != nil {
		hi = compositeKey(owner, to)
	} else {
		hi = ownerUpperBound(owner)
	}
	return r.rep.Scan(tree, lo, hi, limit, func(k, v []byte) bool {
		return fn(k[8:], v)
	})
}

// BufferedRecords exposes the lazy-replay backlog of the page replica.
func (r *Replica) BufferedRecords() int { return r.rep.BufferedRecords() }

// LoadSnapshot bootstraps the replica's directories from a snapshot: the
// INIT tree ID and the owner assignments. Per-tree page state is installed
// separately via LoadTreeSnapshot.
func (r *Replica) LoadSnapshot(init bwtree.TreeID, assignments []OwnerAssignment) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init = init
	for _, a := range assignments {
		r.owners[a.Owner] = a.Tree
	}
}

// LoadTreeSnapshot installs one tree's leaf directory and durable page
// locations, delegating to the underlying page replica.
func (r *Replica) LoadTreeSnapshot(tree bwtree.TreeID, leaves []bwtree.LeafInfo) error {
	return r.rep.LoadTreeSnapshot(tree, leaves)
}

// SetHighLSN initializes the WAL horizon after a snapshot bootstrap.
func (r *Replica) SetHighLSN(l wal.LSN) { r.rep.SetHighLSN(l) }
