package forest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"bg3/internal/bwtree"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

func newTestForest(t *testing.T, cfg Config) (*Forest, *storage.Store) {
	t.Helper()
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := bwtree.NewMapping(0, false)
	f, err := New(m, st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return f, st
}

func TestForestPutGet(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	if err := f.Put(1, []byte("video-1"), []byte("liked")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := f.Get(1, []byte("video-1"))
	if err != nil || !ok || string(v) != "liked" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	// Same key under a different owner is distinct.
	if _, ok, _ := f.Get(2, []byte("video-1")); ok {
		t.Fatal("owner isolation violated")
	}
}

func TestForestOwnersShareInitTree(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	for owner := OwnerID(1); owner <= 10; owner++ {
		for i := 0; i < 3; i++ {
			if err := f.Put(owner, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := f.Stats()
	if s.Trees != 1 {
		t.Fatalf("trees = %d, want 1 (no threshold: all owners in INIT)", s.Trees)
	}
	if s.InitKeys != 30 {
		t.Fatalf("init keys = %d, want 30", s.InitKeys)
	}
}

func TestForestSplitThresholdMigratesHotOwner(t *testing.T) {
	f, _ := newTestForest(t, Config{SplitThreshold: 5})
	// Owner 7 is hot: 20 keys. Others are cold.
	for i := 0; i < 20; i++ {
		if err := f.Put(7, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for owner := OwnerID(1); owner <= 3; owner++ {
		if err := f.Put(owner, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Trees != 2 {
		t.Fatalf("trees = %d, want 2 (INIT + owner 7)", s.Trees)
	}
	if s.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", s.Migrations)
	}
	// Everything readable after migration, for both hot and cold owners.
	for i := 0; i < 20; i++ {
		v, ok, err := f.Get(7, []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("hot owner k%02d = %q %v %v", i, v, ok, err)
		}
	}
	for owner := OwnerID(1); owner <= 3; owner++ {
		if _, ok, _ := f.Get(owner, []byte("k")); !ok {
			t.Fatalf("cold owner %d lost its key", owner)
		}
	}
	// INIT no longer holds owner 7's keys.
	if s.InitKeys != 3 {
		t.Fatalf("init keys = %d, want 3", s.InitKeys)
	}
}

func TestForestInitSizeEviction(t *testing.T) {
	f, _ := newTestForest(t, Config{InitSizeThreshold: 10})
	// Owner 1 has 6 keys, owner 2 has 5: total 11 > 10 triggers eviction of
	// the largest INIT owner (owner 1).
	for i := 0; i < 6; i++ {
		if err := f.Put(1, []byte(fmt.Sprintf("a%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := f.Put(2, []byte(fmt.Sprintf("b%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Migrations == 0 {
		t.Fatal("expected INIT-size eviction")
	}
	if f.OwnerCount(1) != 6 || f.OwnerCount(2) != 5 {
		t.Fatalf("counts = %d,%d", f.OwnerCount(1), f.OwnerCount(2))
	}
	for i := 0; i < 6; i++ {
		if _, ok, _ := f.Get(1, []byte(fmt.Sprintf("a%d", i))); !ok {
			t.Fatalf("a%d lost after eviction", i)
		}
	}
}

func TestForestScan(t *testing.T) {
	f, _ := newTestForest(t, Config{SplitThreshold: 8})
	// Cold owner in INIT and hot owner in a dedicated tree; both scans
	// must return per-owner sorted keys without the prefix.
	for i := 0; i < 5; i++ {
		if err := f.Put(100, []byte(fmt.Sprintf("k%02d", i)), []byte("cold")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := f.Put(200, []byte(fmt.Sprintf("k%02d", i)), []byte("hot")); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		owner OwnerID
		want  int
	}{{100, 5}, {200, 20}} {
		var keys []string
		if err := f.Scan(tc.owner, nil, nil, 0, func(k, v []byte) bool {
			keys = append(keys, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(keys) != tc.want {
			t.Fatalf("owner %d scan = %d keys, want %d", tc.owner, len(keys), tc.want)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("owner %d scan out of order: %v", tc.owner, keys)
			}
		}
	}
	// Range scan with bounds and limit.
	var got []string
	if err := f.Scan(200, []byte("k05"), []byte("k10"), 3, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "k05" {
		t.Fatalf("bounded scan = %v", got)
	}
}

func TestForestDelete(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	if err := f.Put(1, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(1, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.Get(1, []byte("k")); ok {
		t.Fatal("deleted key still visible")
	}
	if f.OwnerCount(1) != 0 {
		t.Fatalf("owner count = %d, want 0", f.OwnerCount(1))
	}
}

func TestForestOwnerBoundaries(t *testing.T) {
	// Adjacent owner IDs must never bleed into each other's scans.
	f, _ := newTestForest(t, Config{})
	for _, owner := range []OwnerID{5, 6, ^OwnerID(0)} {
		for i := 0; i < 4; i++ {
			if err := f.Put(owner, []byte{byte(i)}, []byte(fmt.Sprintf("o%d", owner))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, owner := range []OwnerID{5, 6, ^OwnerID(0)} {
		n := 0
		if err := f.Scan(owner, nil, nil, 0, func(k, v []byte) bool {
			if string(v) != fmt.Sprintf("o%d", owner) {
				t.Fatalf("owner %d scan leaked value %q", owner, v)
			}
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("owner %d scan = %d keys, want 4", owner, n)
		}
	}
}

func TestForestConcurrentOwners(t *testing.T) {
	f, _ := newTestForest(t, Config{SplitThreshold: 50})
	var wg sync.WaitGroup
	const owners, per = 16, 120 // several owners cross the threshold
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.Put(OwnerID(o+1), []byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(o)
	}
	wg.Wait()
	s := f.Stats()
	if s.Trees != owners+1 {
		t.Fatalf("trees = %d, want %d", s.Trees, owners+1)
	}
	for o := 1; o <= owners; o++ {
		n := 0
		if err := f.Scan(OwnerID(o), nil, nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != per {
			t.Fatalf("owner %d has %d keys, want %d", o, n, per)
		}
	}
}

// TestPropertyForestMatchesModel compares the forest against a per-owner
// map model under random operations and random thresholds.
func TestPropertyForestMatchesModel(t *testing.T) {
	f := func(seed int64, split, initCap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fo, _ := newTestForest(t, Config{
			SplitThreshold:    int(split % 16),
			InitSizeThreshold: int(initCap % 64),
			Tree:              bwtree.Config{MaxPageEntries: 8, ConsolidateNum: 3},
		})
		model := map[OwnerID]map[string]string{}
		for i := 0; i < 300; i++ {
			owner := OwnerID(rng.Intn(6) + 1)
			key := fmt.Sprintf("k%02d", rng.Intn(20))
			if rng.Intn(4) == 0 {
				if err := fo.Delete(owner, []byte(key)); err != nil {
					return false
				}
				delete(model[owner], key)
			} else {
				val := fmt.Sprintf("v%d", i)
				if err := fo.Put(owner, []byte(key), []byte(val)); err != nil {
					return false
				}
				if model[owner] == nil {
					model[owner] = map[string]string{}
				}
				model[owner][key] = val
			}
		}
		for owner := OwnerID(1); owner <= 6; owner++ {
			got := map[string]string{}
			if err := fo.Scan(owner, nil, nil, 0, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				return false
			}
			want := model[owner]
			if len(got) != len(want) {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
				gv, ok, err := fo.Get(owner, []byte(k))
				if err != nil || !ok || string(gv) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestForestReplicaFollowsMigration(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	m := bwtree.NewMapping(0, false)
	logger := walLoggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) })
	fo, err := New(m, st, Config{
		SplitThreshold: 5,
		Tree:           bwtree.Config{FlushMode: bwtree.FlushAsync},
	}, logger)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(st, 0)
	rd := wal.NewReader(st)

	// Owner 9 crosses the threshold and migrates; owner 1 stays cold.
	for i := 0; i < 12; i++ {
		if err := fo.Put(9, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fo.Put(1, []byte("cold"), []byte("c")); err != nil {
		t.Fatal(err)
	}
	recs, err := rd.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		v, ok, err := rep.Get(9, []byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("replica owner 9 k%02d = %q %v %v", i, v, ok, err)
		}
	}
	if v, ok, _ := rep.Get(1, []byte("cold")); !ok || string(v) != "c" {
		t.Fatal("replica lost cold owner")
	}
	// Replica scans match the forest.
	var a, b []string
	if err := fo.Scan(9, nil, nil, 0, func(k, v []byte) bool { a = append(a, string(k)); return true }); err != nil {
		t.Fatal(err)
	}
	if err := rep.Scan(9, nil, nil, 0, func(k, v []byte) bool { b = append(b, string(k)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 12 {
		t.Fatalf("scan mismatch: forest=%v replica=%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan mismatch at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

type walLoggerFunc func(rec *wal.Record) (wal.LSN, error)

func (f walLoggerFunc) Log(rec *wal.Record) (wal.LSN, error) { return f(rec) }

func TestCompositeKeyOrdering(t *testing.T) {
	f := func(o1, o2 uint64, k1, k2 []byte) bool {
		c1 := compositeKey(OwnerID(o1), k1)
		c2 := compositeKey(OwnerID(o2), k2)
		switch {
		case o1 < o2:
			return bytes.Compare(c1, c2) < 0
		case o1 > o2:
			return bytes.Compare(c1, c2) > 0
		default:
			return bytes.Compare(c1, c2) == bytes.Compare(k1, k2)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerUpperBound(t *testing.T) {
	if ub := ownerUpperBound(5); binary.BigEndian.Uint64(ub) != 6 {
		t.Fatalf("upper bound of 5 = %v", ub)
	}
	if ub := ownerUpperBound(^OwnerID(0)); ub != nil {
		t.Fatalf("upper bound of max owner should be nil (+inf), got %v", ub)
	}
}

func TestDedicate(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	// Data written before dedication migrates with the owner.
	for i := 0; i < 10; i++ {
		if err := f.Put(3, []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Dedicate(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Trees; got != 2 {
		t.Fatalf("trees = %d, want 2", got)
	}
	for i := 0; i < 10; i++ {
		if _, ok, _ := f.Get(3, []byte{byte(i)}); !ok {
			t.Fatalf("key %d lost after Dedicate", i)
		}
	}
	// Dedicating twice is a no-op; dedicating a fresh owner creates an
	// empty dedicated tree.
	if err := f.Dedicate(3); err != nil {
		t.Fatal(err)
	}
	if err := f.Dedicate(99); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Trees; got != 3 {
		t.Fatalf("trees = %d, want 3", got)
	}
	if err := f.Put(99, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.Get(99, []byte("k")); !ok {
		t.Fatal("write to pre-dedicated owner lost")
	}
}
