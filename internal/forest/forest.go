// Package forest implements BG3's space-optimized Bw-tree forest (§3.2.1).
//
// All owners (e.g. users in the Douyin-follow workload) start out sharing a
// single INIT Bw-tree, keyed by owner|key composites. When an owner's edge
// count crosses a configurable threshold, its data migrates to a dedicated
// Bw-tree whose keys drop the owner prefix (the paper's key shortening):
// hot owners stop contending on shared leaf pages, while the long tail of
// cold owners avoids per-tree space overhead. When the INIT tree itself
// grows past a size threshold, the owner with the most edges in it is
// evicted into a dedicated tree to keep INIT queries efficient.
//
// Locking: the forest-wide mutex guards only the owner and tree
// directories (brief map accesses). Write-vs-migration exclusion is
// per-owner, so a migration blocks only its own owner's writers — and the
// data path never holds a forest-wide lock across a tree operation, which
// matters because tree operations can park in WAL group commit.
package forest

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"bg3/internal/bwtree"
	"bg3/internal/metrics"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// OwnerID identifies the entity whose edges group together (a user, a
// vertex). The forest's hash directory is keyed by OwnerID.
type OwnerID uint64

// Config parameterizes a Forest.
type Config struct {
	// Tree configures every Bw-tree in the forest.
	Tree bwtree.Config

	// SplitThreshold is the number of keys an owner accumulates before its
	// data moves to a dedicated tree. 0 disables per-owner splitting
	// (everything stays in INIT — the "1 Bw-tree" end of Fig. 11).
	SplitThreshold int

	// InitSizeThreshold caps the INIT tree's total key count; beyond it,
	// the owner with the most INIT-resident keys is evicted to a dedicated
	// tree. 0 disables the cap.
	InitSizeThreshold int
}

// ownerState tracks one owner's tree assignment and approximate key count.
// Counts are maintained by Put/Delete deltas; in the insert-dominated
// workloads the forest targets (§3.2.1), this tracks edge count closely.
type ownerState struct {
	// mu excludes this owner's writers during its migration. Readers rely
	// on the tree pointer being published only after the dedicated copy is
	// complete.
	mu    sync.RWMutex
	tree  atomic.Pointer[bwtree.Tree] // nil while the owner lives in INIT
	count atomic.Int64
}

// Forest is the RW-side Bw-tree forest. It is safe for concurrent use.
type Forest struct {
	store  *storage.Store
	m      *bwtree.Mapping
	logger bwtree.WALLogger
	cfg    Config

	// mu guards the owner and tree directories (map access only).
	mu     sync.RWMutex
	owners map[OwnerID]*ownerState
	trees  map[bwtree.TreeID]*bwtree.Tree

	// migrateMu serializes migrations (rare, heavyweight).
	migrateMu sync.Mutex

	init       *bwtree.Tree
	initKeys   atomic.Int64
	migrations atomic.Int64
}

// New creates a forest with a fresh INIT tree.
func New(m *bwtree.Mapping, store *storage.Store, cfg Config, logger bwtree.WALLogger) (*Forest, error) {
	f := &Forest{
		store:  store,
		m:      m,
		logger: logger,
		cfg:    cfg,
		owners: make(map[OwnerID]*ownerState),
		trees:  make(map[bwtree.TreeID]*bwtree.Tree),
	}
	// The shared INIT tree never gets a packed edge block: it holds many
	// owners' composite keys and churns through migrations, while blocks
	// target large single-owner dedicated trees.
	initCfg := cfg.Tree
	initCfg.EdgeBlockMinEntries = 0
	initCfg.EdgeBlockRebuildOps = 0
	init, err := bwtree.New(m, store, initCfg, logger)
	if err != nil {
		return nil, err
	}
	f.init = init
	f.trees[init.ID()] = init
	return f, nil
}

// BuildEdgeBlocks synchronously builds (or rebuilds) the packed edge
// block of every dedicated tree that has blocks enabled — the operator
// path benchmarks and bulk loads use to pack super-vertices without
// waiting for the background triggers. It returns how many blocks were
// installed.
func (f *Forest) BuildEdgeBlocks() (int, error) {
	built := 0
	var firstErr error
	f.Trees(func(t *bwtree.Tree) bool {
		if t == f.init {
			return true
		}
		ok, err := t.TryBuildEdgeBlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			built++
		}
		return true
	})
	return built, firstErr
}

// InitTreeID returns the ID of the shared INIT tree.
func (f *Forest) InitTreeID() bwtree.TreeID { return f.init.ID() }

// compositeKey prefixes key with the big-endian owner ID, preserving
// per-owner key order inside the INIT tree.
func compositeKey(owner OwnerID, key []byte) []byte {
	buf := make([]byte, 8+len(key))
	binary.BigEndian.PutUint64(buf, uint64(owner))
	copy(buf[8:], key)
	return buf
}

// ownerUpperBound is the exclusive upper bound of an owner's INIT keyspace.
func ownerUpperBound(owner OwnerID) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(owner)+1)
	if owner == ^OwnerID(0) {
		return nil // +inf
	}
	return buf
}

// lookupOwner returns the owner's state or nil.
func (f *Forest) lookupOwner(owner OwnerID) *ownerState {
	f.mu.RLock()
	st := f.owners[owner]
	f.mu.RUnlock()
	return st
}

// ownerStateFor returns (creating on demand) the owner's state.
func (f *Forest) ownerStateFor(owner OwnerID) *ownerState {
	if st := f.lookupOwner(owner); st != nil {
		return st
	}
	f.mu.Lock()
	st := f.owners[owner]
	if st == nil {
		st = &ownerState{}
		f.owners[owner] = st
	}
	f.mu.Unlock()
	return st
}

// decToFloor atomically decrements v unless it is already at (or somehow
// below) zero — the check and the decrement are one CAS, so concurrent
// decrementers cannot drive the value negative the way a load-then-add
// would.
func decToFloor(v *atomic.Int64) {
	for {
		cur := v.Load()
		if cur <= 0 {
			return
		}
		if v.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// subToFloor atomically subtracts n from v, clamping at zero.
func subToFloor(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		next := cur - n
		if next < 0 {
			next = 0
		}
		if v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Put upserts key=value under owner, migrating the owner to a dedicated
// tree when it crosses the split threshold. Only real inserts adjust the
// owner and INIT counts — an upsert of an existing key must not, or the
// counts drift above true owner size and trigger premature migrations.
func (f *Forest) Put(owner OwnerID, key, value []byte) error {
	return f.putWith(owner, key, value, nil)
}

// PutDeferred is Put with deferred WAL durability: the record's wait
// function is appended to waits instead of being drained inline, so a batch
// of writes shares commit groups (see bwtree.PutExDeferred). Migrations
// triggered by the write still commit synchronously — they are rare and
// structural, and replicas must never route to a tree whose copy is not
// durable.
func (f *Forest) PutDeferred(owner OwnerID, key, value []byte, waits *[]func() error) error {
	return f.putWith(owner, key, value, waits)
}

func (f *Forest) putWith(owner OwnerID, key, value []byte, waits *[]func() error) error {
	st := f.ownerStateFor(owner)
	st.mu.RLock()
	tree := st.tree.Load()
	inInit := tree == nil
	var existed bool
	var err error
	if tree != nil {
		existed, err = tree.PutExDeferred(key, value, waits)
	} else {
		existed, err = f.init.PutExDeferred(compositeKey(owner, key), value, waits)
	}
	// Count adjustments happen before the owner latch is released: a
	// migration (which rewrites both counts under the exclusive latch)
	// cannot interleave with them, and the captured tree pointer stays
	// authoritative for where the write landed.
	var count, initKeys int64
	if err == nil && !existed {
		count = st.count.Add(1)
		if inInit {
			initKeys = f.initKeys.Add(1)
		}
	}
	st.mu.RUnlock()
	if err != nil || existed {
		return err
	}

	needOwnerSplit := inInit && f.cfg.SplitThreshold > 0 && count > int64(f.cfg.SplitThreshold)
	needEvict := inInit && f.cfg.InitSizeThreshold > 0 && initKeys > int64(f.cfg.InitSizeThreshold)
	if !needOwnerSplit && !needEvict {
		return nil
	}
	f.migrateMu.Lock()
	defer f.migrateMu.Unlock()
	if needOwnerSplit {
		return f.migrate(owner)
	}
	// Re-check under the migration lock: a concurrent migration may have
	// already relieved the INIT pressure.
	if f.initKeys.Load() <= int64(f.cfg.InitSizeThreshold) {
		return nil
	}
	return f.migrate(f.largestInitOwner())
}

// Get returns the value of key under owner.
func (f *Forest) Get(owner OwnerID, key []byte) ([]byte, bool, error) {
	if st := f.lookupOwner(owner); st != nil {
		if tree := st.tree.Load(); tree != nil {
			return tree.Get(key)
		}
	}
	return f.init.Get(compositeKey(owner, key))
}

// Delete removes key under owner. Counts shrink only when the key was
// actually present, via CAS decrements that floor at zero — the old
// load-then-add pattern let concurrent deleters (or deletes of absent
// keys) drive counts negative.
func (f *Forest) Delete(owner OwnerID, key []byte) error {
	return f.deleteWith(owner, key, nil)
}

// DeleteDeferred is Delete with PutDeferred's deferred durability contract.
func (f *Forest) DeleteDeferred(owner OwnerID, key []byte, waits *[]func() error) error {
	return f.deleteWith(owner, key, waits)
}

func (f *Forest) deleteWith(owner OwnerID, key []byte, waits *[]func() error) error {
	st := f.ownerStateFor(owner)
	st.mu.RLock()
	tree := st.tree.Load()
	var existed bool
	var err error
	if tree != nil {
		existed, err = tree.DeleteExDeferred(key, waits)
	} else {
		existed, err = f.init.DeleteExDeferred(compositeKey(owner, key), waits)
	}
	if err == nil && existed {
		decToFloor(&st.count)
		if tree == nil {
			decToFloor(&f.initKeys)
		}
	}
	st.mu.RUnlock()
	return err
}

// Scan iterates owner's keys in [from, to) in order. from/to are in the
// owner's (shortened) key space; nil means unbounded.
func (f *Forest) Scan(owner OwnerID, from, to []byte, limit int, fn func(key, value []byte) bool) error {
	if st := f.lookupOwner(owner); st != nil {
		if tree := st.tree.Load(); tree != nil {
			return tree.Scan(from, to, limit, fn)
		}
	}
	lo := compositeKey(owner, from)
	var hi []byte
	if to != nil {
		hi = compositeKey(owner, to)
	} else {
		hi = ownerUpperBound(owner)
	}
	return f.init.Scan(lo, hi, limit, func(k, v []byte) bool {
		return fn(k[8:], v) // strip the owner prefix
	})
}

// largestInitOwner returns the INIT-resident owner with the most keys.
func (f *Forest) largestInitOwner() OwnerID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var best OwnerID
	bestCount := int64(-1)
	for id, st := range f.owners {
		if c := st.count.Load(); st.tree.Load() == nil && c > bestCount {
			best, bestCount = id, c
		}
	}
	return best
}

// migrate moves an owner's keys from INIT into a fresh dedicated tree.
// Caller holds migrateMu. The owner's own writers are excluded via the
// per-owner latch; other owners proceed undisturbed. Readers switch over
// when the tree pointer is published, which happens only after the copy is
// complete and before the INIT originals are deleted, so every read sees a
// complete view on either side of the switch. Replicas get the same
// guarantee from the position of the owner-assignment record in the WAL.
func (f *Forest) migrate(owner OwnerID) error {
	st := f.ownerStateFor(owner)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tree.Load() != nil {
		return nil
	}
	tree, err := bwtree.New(f.m, f.store, f.cfg.Tree, f.logger)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.trees[tree.ID()] = tree
	f.mu.Unlock()

	// Copy the owner's keys out of INIT. The copy is the real I/O cost of
	// a migration; it is intentionally visible in the storage metrics.
	type pair struct{ k, v []byte }
	var pairs []pair
	lo := compositeKey(owner, nil)
	hi := ownerUpperBound(owner)
	err = f.init.Scan(lo, hi, 0, func(k, v []byte) bool {
		pairs = append(pairs, pair{
			k: append([]byte(nil), k[8:]...),
			v: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		return err
	}
	for _, p := range pairs {
		if err := tree.Put(p.k, p.v); err != nil {
			return err
		}
	}
	if f.logger != nil {
		ownerKey := make([]byte, 8)
		binary.BigEndian.PutUint64(ownerKey, uint64(owner))
		if _, err := f.logger.Log(&wal.Record{
			Type: wal.RecordOwnerAssign, TreeID: uint64(tree.ID()), Key: ownerKey,
		}); err != nil {
			return err
		}
	}
	// Publish the assignment, then clean INIT.
	st.tree.Store(tree)
	st.count.Store(int64(len(pairs)))
	subToFloor(&f.initKeys, int64(len(pairs)))
	for _, p := range pairs {
		if err := f.init.Delete(compositeKey(owner, p.k)); err != nil {
			return err
		}
	}
	f.migrations.Add(1)
	return nil
}

// Stats reports forest-level shape metrics (the Fig. 11 measurements).
type Stats struct {
	Trees       int   // total Bw-trees including INIT
	Owners      int   // owners seen
	InitKeys    int   // keys resident in the INIT tree
	Migrations  int   // owners moved to dedicated trees
	MemoryBytes int64 // resident memory estimate (mapping table + caches)
}

// Stats returns a snapshot.
func (f *Forest) Stats() Stats {
	f.mu.RLock()
	s := Stats{
		Trees:      len(f.trees),
		Owners:     len(f.owners),
		InitKeys:   int(f.initKeys.Load()),
		Migrations: int(f.migrations.Load()),
	}
	f.mu.RUnlock()
	s.MemoryBytes = f.m.MemoryUsage()
	return s
}

// OwnerCount returns the forest's key-count estimate for owner.
func (f *Forest) OwnerCount(owner OwnerID) int {
	if st := f.lookupOwner(owner); st != nil {
		return int(st.count.Load())
	}
	return 0
}

// RegisterMetrics exposes the forest's shape accounting (Fig. 11) under
// the "forest." prefix.
func (f *Forest) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("forest.trees", func() int64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return int64(len(f.trees))
	})
	r.GaugeFunc("forest.owners", func() int64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return int64(len(f.owners))
	})
	r.GaugeFunc("forest.init_keys", f.initKeys.Load)
	r.CounterFunc("forest.migrations", f.migrations.Load)
}

// Trees calls fn for every tree in the forest (INIT included) until fn
// returns false. Used by the flusher to sweep dirty pages.
func (f *Forest) Trees(fn func(*bwtree.Tree) bool) {
	f.mu.RLock()
	trees := make([]*bwtree.Tree, 0, len(f.trees))
	for _, t := range f.trees {
		trees = append(trees, t)
	}
	f.mu.RUnlock()
	for _, t := range trees {
		if !fn(t) {
			return
		}
	}
}

// FlushDirty flushes every tree's dirty pages (async mode), returning the
// combined mapping updates.
func (f *Forest) FlushDirty() ([]bwtree.MappingUpdate, error) {
	var all []bwtree.MappingUpdate
	var firstErr error
	f.Trees(func(t *bwtree.Tree) bool {
		ups, err := t.FlushDirty()
		if err != nil {
			firstErr = fmt.Errorf("forest: flush tree %d: %w", t.ID(), err)
			return false
		}
		all = append(all, ups...)
		return true
	})
	return all, firstErr
}

// DirtyCount sums dirty pages across all trees.
func (f *Forest) DirtyCount() int {
	n := 0
	f.Trees(func(t *bwtree.Tree) bool {
		n += t.DirtyCount()
		return true
	})
	return n
}

// OwnerAssignment records one owner served by a dedicated tree.
type OwnerAssignment struct {
	Owner OwnerID
	Tree  bwtree.TreeID
}

// OwnerAssignments returns every owner currently served by a dedicated
// tree — part of the state a snapshot must capture.
func (f *Forest) OwnerAssignments() []OwnerAssignment {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]OwnerAssignment, 0)
	for id, st := range f.owners {
		if tree := st.tree.Load(); tree != nil {
			out = append(out, OwnerAssignment{Owner: id, Tree: tree.ID()})
		}
	}
	return out
}

// Dedicate moves an owner to a dedicated tree immediately, regardless of
// the split threshold — operators pin known-hot users this way, and the
// Fig. 11 experiment uses it to set an exact tree count.
func (f *Forest) Dedicate(owner OwnerID) error {
	f.migrateMu.Lock()
	defer f.migrateMu.Unlock()
	return f.migrate(owner)
}

// Rebuild reconstructs a forest from recovered trees: init is the INIT
// tree, dedicated maps each owner to its recovered tree. Owner counts are
// approximate after recovery (they re-accumulate from zero), which only
// affects future threshold decisions, not correctness.
func Rebuild(m *bwtree.Mapping, store *storage.Store, cfg Config, init *bwtree.Tree, dedicated map[OwnerID]*bwtree.Tree) *Forest {
	f := &Forest{
		store:  store,
		m:      m,
		cfg:    cfg,
		owners: make(map[OwnerID]*ownerState),
		trees:  make(map[bwtree.TreeID]*bwtree.Tree),
	}
	f.init = init
	f.trees[init.ID()] = init
	for owner, tree := range dedicated {
		st := &ownerState{}
		st.tree.Store(tree)
		f.owners[owner] = st
		f.trees[tree.ID()] = tree
	}
	return f
}

// AdoptTree registers a tree created during WAL-suffix replay (a
// RecordNewTree after the snapshot) so a later owner assignment can bind
// it.
func (f *Forest) AdoptTree(t *bwtree.Tree) {
	f.mu.Lock()
	f.trees[t.ID()] = t
	f.mu.Unlock()
}

// TreeByID returns a forest tree by ID (replay routing).
func (f *Forest) TreeByID(id bwtree.TreeID) *bwtree.Tree {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.trees[id]
}

// BindOwner points owner at an existing forest tree (replaying an
// owner-assignment record during recovery).
func (f *Forest) BindOwner(owner OwnerID, id bwtree.TreeID) error {
	f.mu.RLock()
	tree := f.trees[id]
	f.mu.RUnlock()
	if tree == nil {
		return fmt.Errorf("forest: bind owner %d: unknown tree %d", owner, id)
	}
	st := f.ownerStateFor(owner)
	st.mu.Lock()
	st.tree.Store(tree)
	st.mu.Unlock()
	return nil
}

// SetLogger attaches the WAL logger to the forest and every tree —
// recovery replays with no logger, then attaches the real one.
func (f *Forest) SetLogger(l bwtree.WALLogger) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logger = l
	for _, t := range f.trees {
		t.SetLogger(l)
	}
}
