package forest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bg3/internal/bwtree"
	"bg3/internal/metrics"
	"bg3/internal/storage"
)

// scanCount returns the owner's true key count by scanning.
func scanCount(t *testing.T, f *Forest, owner OwnerID) int {
	t.Helper()
	n := 0
	if err := f.Scan(owner, nil, nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestForestUpsertDoesNotInflateCounts(t *testing.T) {
	f, _ := newTestForest(t, Config{SplitThreshold: 100})
	for i := 0; i < 10; i++ {
		if err := f.Put(1, []byte("same-key"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.OwnerCount(1); got != 1 {
		t.Fatalf("owner count after 10 upserts of one key = %d, want 1", got)
	}
	if got := f.Stats().InitKeys; got != 1 {
		t.Fatalf("init keys after 10 upserts of one key = %d, want 1", got)
	}
}

func TestForestUpsertsDoNotTriggerPrematureMigration(t *testing.T) {
	// 3 distinct keys upserted many times must stay below a threshold of 5;
	// pre-fix the count reached 30 and the owner migrated spuriously.
	f, _ := newTestForest(t, Config{SplitThreshold: 5})
	for round := 0; round < 10; round++ {
		for k := 0; k < 3; k++ {
			if err := f.Put(7, []byte(fmt.Sprintf("k%d", k)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := f.Stats().Migrations; got != 0 {
		t.Fatalf("migrations = %d, want 0 (owner holds only 3 distinct keys)", got)
	}
	if got := f.OwnerCount(7); got != 3 {
		t.Fatalf("owner count = %d, want 3", got)
	}
}

func TestForestDeleteAbsentDoesNotDeflateCounts(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	if err := f.Put(1, []byte("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.Put(1, []byte("b"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := f.Delete(1, []byte("never-existed")); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.OwnerCount(1); got != 2 {
		t.Fatalf("owner count after absent deletes = %d, want 2", got)
	}
	if got := f.Stats().InitKeys; got != 2 {
		t.Fatalf("init keys after absent deletes = %d, want 2", got)
	}
	// Drain the owner, then keep deleting: counts must floor at zero.
	for _, k := range []string{"a", "b", "a", "b", "a"} {
		if err := f.Delete(1, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.OwnerCount(1); got != 0 {
		t.Fatalf("owner count after draining = %d, want 0 (never negative)", got)
	}
	if got := f.Stats().InitKeys; got != 0 {
		t.Fatalf("init keys after draining = %d, want 0 (never negative)", got)
	}
}

func TestForestAccountingStress(t *testing.T) {
	// Concurrent upserts of overlapping keys, deletes of present and absent
	// keys, and threshold-driven migrations. Afterward every owner's count
	// must equal its true key count and never be negative. Run with -race.
	const (
		workers      = 8
		opsPerWorker = 400
		owners       = 6
		keySpace     = 12
	)
	f, _ := newTestForest(t, Config{SplitThreshold: 8, InitSizeThreshold: 40})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				owner := OwnerID(rng.Intn(owners) + 1)
				key := []byte(fmt.Sprintf("k%02d", rng.Intn(keySpace)))
				switch rng.Intn(4) {
				case 0:
					if err := f.Delete(owner, key); err != nil {
						t.Error(err)
						return
					}
				case 1:
					// Delete a key that never exists: must not deflate counts.
					if err := f.Delete(owner, []byte("absent")); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := f.Put(owner, key, []byte("v")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()

	totalInit := 0
	for o := OwnerID(1); o <= owners; o++ {
		count := f.OwnerCount(o)
		if count < 0 {
			t.Fatalf("owner %d count = %d, negative", o, count)
		}
		actual := scanCount(t, f, o)
		if count != actual {
			t.Fatalf("owner %d count = %d, actual keys = %d", o, count, actual)
		}
		if st := f.lookupOwner(o); st != nil && st.tree.Load() == nil {
			totalInit += actual
		}
	}
	s := f.Stats()
	if s.InitKeys < 0 {
		t.Fatalf("init keys = %d, negative", s.InitKeys)
	}
	if s.InitKeys != totalInit {
		t.Fatalf("init keys = %d, actual INIT-resident keys = %d", s.InitKeys, totalInit)
	}
}

func TestForestConcurrentDeleteFloorsAtZero(t *testing.T) {
	// Many goroutines race to delete the same single key: exactly one sees
	// it, and the TOCTOU-free decrement keeps the count at zero, not below.
	for round := 0; round < 20; round++ {
		f, _ := newTestForest(t, Config{})
		if err := f.Put(1, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := f.Delete(1, []byte("k")); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		if got := f.OwnerCount(1); got != 0 {
			t.Fatalf("round %d: owner count = %d, want 0", round, got)
		}
		if got := f.Stats().InitKeys; got != 0 {
			t.Fatalf("round %d: init keys = %d, want 0", round, got)
		}
	}
}

func TestForestMigrationPreservesCounts(t *testing.T) {
	f, _ := newTestForest(t, Config{})
	for i := 0; i < 10; i++ {
		if err := f.Put(3, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Upsert half of them, then migrate explicitly.
	for i := 0; i < 5; i++ {
		if err := f.Put(3, []byte(fmt.Sprintf("k%d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Dedicate(3); err != nil {
		t.Fatal(err)
	}
	if got := f.OwnerCount(3); got != 10 {
		t.Fatalf("owner count after migration = %d, want 10", got)
	}
	if got := f.Stats().InitKeys; got != 0 {
		t.Fatalf("init keys after sole owner migrated = %d, want 0", got)
	}
	// Post-migration upserts and absent deletes still must not drift.
	if err := f.Put(3, []byte("k0"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(3, []byte("absent")); err != nil {
		t.Fatal(err)
	}
	if got := f.OwnerCount(3); got != 10 {
		t.Fatalf("owner count after post-migration churn = %d, want 10", got)
	}
}

func TestForestRegisterMetrics(t *testing.T) {
	f, _ := newTestForest(t, Config{SplitThreshold: 3})
	r := metrics.NewRegistry()
	f.RegisterMetrics(r)
	for i := 0; i < 5; i++ {
		if err := f.Put(1, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := r.Snapshot()
	if v := snap["forest.migrations"]; v.Value != 1 {
		t.Fatalf("forest.migrations = %+v, want 1", v)
	}
	if v := snap["forest.trees"]; v.Value != 2 {
		t.Fatalf("forest.trees = %+v, want 2 (INIT + dedicated)", v)
	}
	if v := snap["forest.owners"]; v.Value != 1 {
		t.Fatalf("forest.owners = %+v, want 1", v)
	}
	if v := snap["forest.init_keys"]; v.Value != 0 {
		t.Fatalf("forest.init_keys = %+v, want 0 after migration", v)
	}
}

// Guard against regressions in the underlying tree existence plumbing used
// by the accounting: mixed cache configurations.
func TestForestAccountingNoCache(t *testing.T) {
	st := newTestStoreForCfg(t)
	m := bwtree.NewMapping(0, true)
	f, err := New(m, st, Config{Tree: bwtree.Config{NoCache: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Put(1, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.OwnerCount(1); got != 1 {
		t.Fatalf("owner count = %d, want 1 (no-cache upserts)", got)
	}
}

func newTestStoreForCfg(t *testing.T) *storage.Store {
	t.Helper()
	return storage.Open(&storage.Options{ExtentSize: 1 << 16})
}
