package forest

import (
	"bytes"
	"math"

	"bg3/internal/wal"
)

// horizonAll marks an unpinned read: every committed op is visible. At
// this horizon a dedicated owner can have no INIT residue (migration
// deletes the originals before releasing the owner latch), so the
// fallback/merge paths below are skipped and reads cost exactly what
// they did before MVCC horizons existed.
const horizonAll = wal.LSN(math.MaxUint64)

// Snapshot reads.
//
// A pinned read at horizon h must see the forest as of group-commit
// boundary h even when an owner migrated (INIT → dedicated tree) around
// the pin. Migration order matters here: the owner's keys are copied into
// the dedicated tree, the assignment is published, and only then are the
// INIT originals deleted — all while the owner's per-owner latch is held
// exclusively, so no user write to the dedicated tree can be stamped
// before the INIT deletes. Two consequences:
//
//   - A key visible in both views at h (copied but not yet deleted at h)
//     carries the same value on both sides, so preferring the dedicated
//     copy is always correct.
//   - A key visible only in INIT at h (deleted above h, or never copied
//     because the pin predates the migration) must come from INIT.
//
// GetAt therefore falls back to INIT on a dedicated miss, and ScanAt
// merges the dedicated stream with the owner's INIT residue at h. The
// residue is bounded by the owner's pre-migration size (at most the split
// threshold plus in-flight writes), so materializing it is cheap.

// GetAt returns the value of key under owner as of horizon h.
func (f *Forest) GetAt(owner OwnerID, key []byte, h wal.LSN) ([]byte, bool, error) {
	if st := f.lookupOwner(owner); st != nil {
		if tree := st.tree.Load(); tree != nil {
			v, ok, err := tree.GetAt(key, h)
			if err != nil || ok || h == horizonAll {
				return v, ok, err
			}
			// Miss in the dedicated view: the pin may predate the
			// migration's INIT cleanup (or the migration itself).
		}
	}
	return f.init.GetAt(compositeKey(owner, key), h)
}

// ScanAt iterates owner's keys in [from, to) as of horizon h, in order.
// from/to are in the owner's (shortened) key space; nil means unbounded.
func (f *Forest) ScanAt(owner OwnerID, from, to []byte, limit int, h wal.LSN, fn func(key, value []byte) bool) error {
	lo := compositeKey(owner, from)
	var hi []byte
	if to != nil {
		hi = compositeKey(owner, to)
	} else {
		hi = ownerUpperBound(owner)
	}

	var tree interface {
		ScanAt(from, to []byte, limit int, h wal.LSN, fn func(key, value []byte) bool) error
	}
	if st := f.lookupOwner(owner); st != nil {
		if t := st.tree.Load(); t != nil {
			tree = t
		}
	}
	if tree == nil {
		return f.init.ScanAt(lo, hi, limit, h, func(k, v []byte) bool {
			return fn(k[8:], v) // strip the owner prefix
		})
	}

	if h == horizonAll {
		return tree.ScanAt(from, to, limit, h, fn)
	}

	// Dedicated tree: merge with whatever of the owner's keys is still
	// visible in INIT at h (a migration after h deleted them above the
	// horizon). Bounded by the owner's pre-migration size.
	// Each side needs at most the caller's limit: the merge delivers the
	// first `limit` keys of the union, which can only come from the first
	// `limit` of either side — bounded hops stop decoding past the limit.
	type pair struct{ k, v []byte }
	var residue []pair
	err := f.init.ScanAt(lo, hi, limit, h, func(k, v []byte) bool {
		residue = append(residue, pair{
			k: append([]byte(nil), k[8:]...),
			v: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		return err
	}
	if len(residue) == 0 {
		return tree.ScanAt(from, to, limit, h, fn)
	}

	// Sorted merge, dedicated side preferred on equal keys (the values are
	// identical by the migration ordering argument above; preferring one
	// side just deduplicates).
	delivered := 0
	stopped := false
	deliver := func(k, v []byte) bool {
		if stopped {
			return false
		}
		delivered++
		if !fn(k, v) || (limit > 0 && delivered >= limit) {
			stopped = true
			return false
		}
		return true
	}
	i := 0
	err = tree.ScanAt(from, to, limit, h, func(k, v []byte) bool {
		for i < len(residue) && bytes.Compare(residue[i].k, k) < 0 {
			if !deliver(residue[i].k, residue[i].v) {
				return false
			}
			i++
		}
		if i < len(residue) && bytes.Equal(residue[i].k, k) {
			i++ // duplicate: dedicated copy wins
		}
		return deliver(k, v)
	})
	if err != nil || stopped {
		return err
	}
	for ; i < len(residue); i++ {
		if !deliver(residue[i].k, residue[i].v) {
			break
		}
	}
	return nil
}

// ScanManyAt runs ScanAt for each owner in order at one horizon — the
// batched frontier read behind scatter-gather traversal. limit applies
// per owner (perVertexLimit pushdown into each owner's scan); fn
// returning false stops the whole multi-scan. Owner latching, dedicated
// tree lookup, and INIT-residue merging are exactly ScanAt's, per owner.
func (f *Forest) ScanManyAt(owners []OwnerID, from, to []byte, limit int, h wal.LSN, fn func(owner OwnerID, key, value []byte) bool) error {
	stopped := false
	for _, owner := range owners {
		o := owner
		err := f.ScanAt(o, from, to, limit, h, func(k, v []byte) bool {
			if !fn(o, k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}
