package forest

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/storage"
)

// TestStressForestOwnersReadersGC runs one writer per owner (so hot owners
// migrate out of INIT mid-run), concurrent readers asserting owner
// isolation, and a GC goroutine relocating sealed extents. Run with -race.
func TestStressForestOwnersReadersGC(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	st := storage.Open(&storage.Options{ExtentSize: 1 << 11, ReclaimGrace: time.Hour})
	m := bwtree.NewMapping(0, false)
	f, err := New(m, st, Config{
		SplitThreshold: 40, // half the owners cross it and migrate mid-run
		Tree:           bwtree.Config{MaxPageEntries: 16, ConsolidateNum: 4},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		owners  = 8
		readers = 4
	)
	// Odd owners are hot (cross the split threshold), even owners stay in
	// INIT: the run exercises reads racing both tree kinds and migration.
	opsFor := func(o int) int {
		if o%2 == 1 {
			return 400
		}
		return 60
	}

	models := make([]map[string]string, owners)
	var wg sync.WaitGroup
	for o := 0; o < owners; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			owner := OwnerID(o + 1)
			rng := rand.New(rand.NewSource(int64(o + 1)))
			model := map[string]string{}
			for i := 0; i < opsFor(o); i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(50))
				if rng.Intn(5) == 0 {
					if err := f.Delete(owner, []byte(k)); err != nil {
						t.Errorf("owner %d delete: %v", owner, err)
						return
					}
					delete(model, k)
				} else {
					v := fmt.Sprintf("o%d.%d", owner, i)
					if err := f.Put(owner, []byte(k), []byte(v)); err != nil {
						t.Errorf("owner %d put: %v", owner, err)
						return
					}
					model[k] = v
				}
			}
			models[o] = model
		}(o)
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup
	for r := 0; r < readers; r++ {
		bg.Add(1)
		go func(r int) {
			defer bg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				owner := OwnerID(rng.Intn(owners) + 1)
				prefix := fmt.Sprintf("o%d.", owner)
				k := fmt.Sprintf("k%02d", rng.Intn(50))
				v, ok, err := f.Get(owner, []byte(k))
				if err != nil {
					t.Errorf("reader get owner %d: %v", owner, err)
					return
				}
				if ok && !strings.HasPrefix(string(v), prefix) {
					t.Errorf("owner %d read value %q from another owner", owner, v)
					return
				}
				if rng.Intn(8) == 0 {
					if err := f.Scan(owner, nil, nil, 0, func(k, v []byte) bool {
						if !strings.HasPrefix(string(v), prefix) {
							t.Errorf("owner %d scan leaked %q", owner, v)
							return false
						}
						return true
					}); err != nil {
						t.Errorf("reader scan owner %d: %v", owner, err)
						return
					}
				}
			}
		}(r)
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sid := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
				for _, u := range st.Usage(sid) {
					if u.Sealed {
						if _, err := st.Reclaim(sid, u.Extent, m.Relocate); err != nil {
							t.Errorf("reclaim %v/%d: %v", sid, u.Extent, err)
							return
						}
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		return
	}

	// Hot owners must have migrated out of INIT during the run.
	if s := f.Stats(); s.Migrations == 0 {
		t.Error("no owner migrated despite hot writers crossing the threshold")
	}
	// Quiescent verification against the per-owner models.
	for o, model := range models {
		owner := OwnerID(o + 1)
		got := map[string]string{}
		if err := f.Scan(owner, nil, nil, 0, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(model) {
			t.Fatalf("owner %d has %d keys, model says %d", owner, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("owner %d key %s = %q, want %q", owner, k, got[k], v)
			}
		}
	}
}
