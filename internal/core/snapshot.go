package core

import (
	"bg3/internal/bwtree"
	"bg3/internal/forest"
	"bg3/internal/wal"
)

// TreeSnapshot captures one Bw-tree's durable shape for a snapshot: its
// leaf directory in key order with each leaf's durable locations, plus the
// forest owner it serves (if dedicated).
type TreeSnapshot struct {
	Tree     bwtree.TreeID
	Owner    forest.OwnerID
	HasOwner bool
	Leaves   []bwtree.LeafInfo
}

// SnapshotState is everything a fresh RO node needs to route and read
// without replaying the WAL prefix: the INIT tree, every tree's directory,
// and the owner assignments.
type SnapshotState struct {
	Init  bwtree.TreeID
	Trees []TreeSnapshot
}

// SnapshotState captures the engine's current durable shape. Callers must
// have quiesced writes and flushed dirty pages first (the replication
// layer's WriteSnapshot does both), or the snapshot will lag memory.
func (e *Engine) SnapshotState() SnapshotState {
	owners := map[bwtree.TreeID]forest.OwnerID{}
	for _, a := range e.edges.OwnerAssignments() {
		owners[a.Tree] = a.Owner
	}
	state := SnapshotState{Init: e.edges.InitTreeID()}
	e.edges.Trees(func(t *bwtree.Tree) bool {
		ts := TreeSnapshot{Tree: t.ID(), Leaves: t.LeafDirectory()}
		if owner, ok := owners[t.ID()]; ok {
			ts.Owner = owner
			ts.HasOwner = true
		}
		state.Trees = append(state.Trees, ts)
		return true
	})
	return state
}

// LoadSnapshot bootstraps the replica from a snapshot: directories, owner
// assignments, and per-tree page state, with the WAL horizon the snapshot
// reflects.
func (r *Replica) LoadSnapshot(state SnapshotState, horizon wal.LSN) error {
	var assigns []forest.OwnerAssignment
	for _, ts := range state.Trees {
		if ts.HasOwner {
			assigns = append(assigns, forest.OwnerAssignment{Owner: ts.Owner, Tree: ts.Tree})
		}
	}
	r.rep.LoadSnapshot(state.Init, assigns)
	for _, ts := range state.Trees {
		if err := r.rep.LoadTreeSnapshot(ts.Tree, ts.Leaves); err != nil {
			return err
		}
	}
	r.rep.SetHighLSN(horizon)
	return nil
}
