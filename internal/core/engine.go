// Package core assembles BG3's storage engine from its substrates: the
// Bw-tree forest over append-only shared storage, workload-aware space
// reclamation, and the WAL hooks the leader–follower synchronization of
// §3.4 attaches to. It exposes the property-graph API of graph.Store.
//
// Layout on the forest: every vertex is an owner; its adjacency lists and
// its own property record share the per-owner keyspace. Edge keys are
// etype[2] dst[8]; vertex records use the reserved edge-type 0xFFFF as
// their prefix (applications therefore cannot use edge type 65535).
package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/forest"
	"bg3/internal/gc"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/mvcc"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// vertexPrefix is the reserved edge-type prefix under which a vertex's own
// record is stored in its keyspace.
const vertexPrefix = graph.EdgeType(0xFFFF)

// vertexKey builds the in-owner key of a vertex record.
func vertexKey(typ graph.VertexType) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint16(buf, uint16(vertexPrefix))
	binary.BigEndian.PutUint16(buf[2:], uint16(typ))
	return buf
}

// Options configures a BG3 engine.
type Options struct {
	// Storage configures the shared store created by New. Ignored by
	// NewWithStore.
	Storage *storage.Options

	// Tree configures every Bw-tree (delta policy, flush mode, cache).
	Tree bwtree.Config

	// SplitThreshold and InitSizeThreshold configure the Bw-tree forest
	// (§3.2.1). Zero values disable forest splitting.
	SplitThreshold    int
	InitSizeThreshold int

	// GCPolicy selects the space-reclamation policy; nil defaults to the
	// workload-aware policy of §3.3 (with TTL wired in when TTL is set).
	GCPolicy gc.Policy

	// TTL expires data wholesale after this lifetime; zero keeps data
	// forever.
	TTL time.Duration

	// GCInterval and GCBatch run background reclamation when GCInterval is
	// non-zero.
	GCInterval time.Duration
	GCBatch    int

	// Logger receives WAL records (set by the replication RW node).
	Logger bwtree.WALLogger

	// Epochs is the MVCC epoch clock (set by the replication RW node whose
	// group committer advances it). It is threaded into every Bw-tree (as
	// the consolidation retention floor and snapshot-read horizon source)
	// and into the GC reclaimers (as the pinned-extent gate). Nil disables
	// snapshot reads: views see the latest state, exactly as before.
	Epochs *mvcc.Source

	// Metrics is the registry every subsystem registers into; nil creates
	// a fresh one. Replicated setups pass the node-wide registry in so the
	// WAL and replication gauges land next to the engine's.
	Metrics *metrics.Registry

	// Now overrides the clock for TTL tests.
	Now func() time.Time
}

// Engine is a BG3 storage engine instance (the RW-node role when a Logger
// is attached). It implements graph.Store.
type Engine struct {
	store      *storage.Store
	ownedStore bool
	mapping    *bwtree.Mapping
	edges      *forest.Forest
	opts       Options
	reclaimers []*gc.Reclaimer
	reg        *metrics.Registry
}

var _ graph.Store = (*Engine)(nil)

// New creates an engine with its own shared store.
func New(opts Options) (*Engine, error) {
	so := opts.Storage
	if so == nil {
		so = &storage.Options{}
	}
	if opts.Now != nil && so.Now == nil {
		so.Now = opts.Now
	}
	st := storage.Open(so)
	e, err := NewWithStore(st, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	e.ownedStore = true
	return e, nil
}

// NewWithStore creates an engine on an existing shared store (used when
// RW and RO nodes share one store, and by multi-engine cluster setups).
func NewWithStore(st *storage.Store, opts Options) (*Engine, error) {
	opts.Tree.Epochs = opts.Epochs
	m := bwtree.NewMappingShards(opts.Tree.CacheCapacity, opts.Tree.NoCache, opts.Tree.CacheShards)
	f, err := forest.New(m, st, forest.Config{
		Tree:              opts.Tree,
		SplitThreshold:    opts.SplitThreshold,
		InitSizeThreshold: opts.InitSizeThreshold,
	}, opts.Logger)
	if err != nil {
		return nil, fmt.Errorf("core: create forest: %w", err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e := &Engine{store: st, mapping: m, edges: f, opts: opts, reg: reg}
	policy := opts.GCPolicy
	if policy == nil {
		policy = gc.WorkloadAware{TTL: opts.TTL}
	}
	for _, stream := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
		r := gc.NewReclaimer(st, stream, policy, m.Relocate)
		r.TTL = opts.TTL
		r.Blocks = m
		if opts.Epochs != nil {
			r.Pins = opts.Epochs
		}
		if opts.Now != nil {
			r.Now = opts.Now
		}
		e.reclaimers = append(e.reclaimers, r)
		if opts.GCInterval > 0 {
			batch := opts.GCBatch
			if batch <= 0 {
				batch = 1
			}
			r.Start(opts.GCInterval, batch)
		}
	}
	e.registerMetrics(reg)
	return e, nil
}

// registerMetrics wires every subsystem into the engine's registry.
func (e *Engine) registerMetrics(reg *metrics.Registry) {
	e.store.RegisterMetrics(reg)
	e.mapping.RegisterMetrics(reg)
	e.edges.RegisterMetrics(reg)
	reg.CounterFunc("gc.bytes_moved", func() int64 { return e.GCStats().BytesMoved })
	reg.CounterFunc("gc.runs", func() int64 { return e.GCStats().Runs })
	reg.CounterFunc("gc.extents_expired", func() int64 { return e.GCStats().ExtentsExpired })
	reg.RatioFunc("gc.write_amp", func() float64 { return e.store.Stats().GCWriteAmp() })
	if e.opts.Epochs != nil {
		e.opts.Epochs.RegisterMetrics(reg)
		reg.CounterFunc("gc.pin_deferred", func() int64 { return e.GCStats().PinDeferred })
		reg.GaugeFunc("bwtree.retained_bytes", func() int64 {
			return e.mapping.RetainedBytes(wal.LSN(e.opts.Epochs.Floor()))
		})
	}
	metrics.Faults.Register(reg)
}

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Close stops background work and, if the engine owns its store, closes it.
func (e *Engine) Close() {
	if e.opts.GCInterval > 0 {
		for _, r := range e.reclaimers {
			r.Stop()
		}
	}
	if e.ownedStore {
		e.store.Close()
	}
}

// AddVertex implements graph.Store.
func (e *Engine) AddVertex(v graph.Vertex) error {
	return e.edges.Put(forest.OwnerID(v.ID), vertexKey(v.Type), graph.EncodeProps(v.Props))
}

// GetVertex implements graph.Store.
func (e *Engine) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	val, ok, err := e.edges.Get(forest.OwnerID(id), vertexKey(typ))
	if err != nil || !ok {
		return graph.Vertex{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Vertex{}, false, err
	}
	return graph.Vertex{ID: id, Type: typ, Props: props}, true, nil
}

// AddEdge implements graph.Store.
func (e *Engine) AddEdge(ed graph.Edge) error {
	if ed.Type == vertexPrefix {
		return fmt.Errorf("core: edge type %d is reserved", uint16(vertexPrefix))
	}
	return e.edges.Put(forest.OwnerID(ed.Src), graph.EdgeKey(ed.Type, ed.Dst), graph.EncodeProps(ed.Props))
}

// GetEdge implements graph.Store.
func (e *Engine) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	val, ok, err := e.edges.Get(forest.OwnerID(src), graph.EdgeKey(typ, dst))
	if err != nil || !ok {
		return graph.Edge{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Edge{}, false, err
	}
	return graph.Edge{Src: src, Dst: dst, Type: typ, Props: props}, true, nil
}

// DeleteEdge implements graph.Store.
func (e *Engine) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	return e.edges.Delete(forest.OwnerID(src), graph.EdgeKey(typ, dst))
}

// ApplyBatch implements graph.BatchStore: mutations apply to the forest in
// order with deferred WAL durability, then every record's wait is drained
// at once. Because all records are enqueued on the group committer before
// the first wait begins, the whole batch coalesces into shared commit
// groups — one storage round trip covers many mutations instead of one
// each. Mutations after a failed apply are skipped, but waits already
// collected are still drained so no enqueued record is abandoned; the
// first error (apply or durability) is returned.
func (e *Engine) ApplyBatch(muts []graph.Mutation) error {
	var waits []func() error
	var applyErr error
	for i, m := range muts {
		switch m.Kind {
		case graph.MutAddVertex:
			applyErr = e.edges.PutDeferred(forest.OwnerID(m.Vertex.ID),
				vertexKey(m.Vertex.Type), graph.EncodeProps(m.Vertex.Props), &waits)
		case graph.MutAddEdge:
			if m.Edge.Type == vertexPrefix {
				applyErr = fmt.Errorf("core: edge type %d is reserved", uint16(vertexPrefix))
			} else {
				applyErr = e.edges.PutDeferred(forest.OwnerID(m.Edge.Src),
					graph.EdgeKey(m.Edge.Type, m.Edge.Dst), graph.EncodeProps(m.Edge.Props), &waits)
			}
		case graph.MutDeleteEdge:
			applyErr = e.edges.DeleteDeferred(forest.OwnerID(m.Edge.Src),
				graph.EdgeKey(m.Edge.Type, m.Edge.Dst), &waits)
		default:
			applyErr = fmt.Errorf("core: batch mutation %d: unknown kind %d", i, m.Kind)
		}
		if applyErr != nil {
			break
		}
	}
	err := applyErr
	for _, wait := range waits {
		if werr := wait(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// Neighbors implements graph.Store. The Properties passed to fn are valid
// only for the duration of the callback (one decoder is reused across the
// scan); copy values to retain them.
func (e *Engine) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	lo, hi := graph.EdgeTypeBounds(typ)
	var dec graph.PropDecoder
	return e.edges.Scan(forest.OwnerID(src), lo, hi, limit, func(k, v []byte) bool {
		_, dst, err := graph.DecodeEdgeKey(k)
		if err != nil {
			return true // skip foreign records defensively
		}
		props, err := dec.Decode(v)
		if err != nil {
			return true
		}
		return fn(dst, props)
	})
}

// Degree implements graph.Store.
func (e *Engine) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	n := 0
	err := e.Neighbors(src, typ, 0, func(graph.VertexID, graph.Properties) bool { n++; return true })
	return n, err
}

// RunGC triggers one synchronous reclamation cycle over both data streams
// and returns the bytes moved.
func (e *Engine) RunGC(batch int) (int64, error) {
	var total int64
	for _, r := range e.reclaimers {
		n, err := r.RunOnce(batch)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// GCStats aggregates the reclaimers' accounting.
func (e *Engine) GCStats() gc.ReclaimerStats {
	var out gc.ReclaimerStats
	for _, r := range e.reclaimers {
		s := r.Stats()
		out.BytesMoved += s.BytesMoved
		out.Runs += s.Runs
		out.ExtentsExpired += s.ExtentsExpired
		out.PinDeferred += s.PinDeferred
		out.BlockPinned += s.BlockPinned
	}
	return out
}

// FlushDirty flushes async-mode dirty pages across the forest, returning
// the mapping updates for the checkpoint record.
func (e *Engine) FlushDirty() ([]bwtree.MappingUpdate, error) { return e.edges.FlushDirty() }

// DirtyCount reports pages awaiting a flush (async mode).
func (e *Engine) DirtyCount() int { return e.edges.DirtyCount() }

// Store exposes the shared store (benchmarks, replication plumbing).
func (e *Engine) Store() *storage.Store { return e.store }

// Mapping exposes the shared mapping table (GC relocation, experiments).
func (e *Engine) Mapping() *bwtree.Mapping { return e.mapping }

// Epochs exposes the MVCC epoch clock, or nil when the engine runs without
// snapshot reads.
func (e *Engine) Epochs() *mvcc.Source { return e.opts.Epochs }

// RetainedBytes reports the delta-chain bytes currently retained above the
// MVCC floor for pinned snapshots (0 without an epoch clock).
func (e *Engine) RetainedBytes() int64 {
	if e.opts.Epochs == nil {
		return 0
	}
	return e.mapping.RetainedBytes(wal.LSN(e.opts.Epochs.Floor()))
}

// Forest exposes the Bw-tree forest (experiments).
func (e *Engine) Forest() *forest.Forest { return e.edges }
