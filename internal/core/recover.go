package core

import (
	"fmt"

	"bg3/internal/bwtree"
	"bg3/internal/forest"
	"bg3/internal/gc"
	"bg3/internal/metrics"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// RecoverWithStore reconstructs an engine from a snapshot's durable state
// on an existing store: every tree is rebuilt from its leaf directory
// (with its snapshot ID), the forest's owner assignments are restored, and
// background reclamation is wired as in NewWithStore. The caller replays
// the WAL suffix beyond the snapshot with ReplayRecord before attaching a
// logger and serving writes.
func RecoverWithStore(st *storage.Store, opts Options, state SnapshotState) (*Engine, error) {
	opts.Tree.Epochs = opts.Epochs
	m := bwtree.NewMappingShards(opts.Tree.CacheCapacity, opts.Tree.NoCache, opts.Tree.CacheShards)
	var maxPage bwtree.PageID
	var maxTree bwtree.TreeID
	for _, ts := range state.Trees {
		if ts.Tree > maxTree {
			maxTree = ts.Tree
		}
		for _, lf := range ts.Leaves {
			if lf.Page > maxPage {
				maxPage = lf.Page
			}
		}
	}
	m.EnsureIDsBeyond(maxPage, maxTree)

	var init *bwtree.Tree
	dedicated := make(map[forest.OwnerID]*bwtree.Tree)
	for _, ts := range state.Trees {
		t, err := bwtree.Rebuild(m, st, opts.Tree, nil, ts.Tree, ts.Leaves)
		if err != nil {
			return nil, fmt.Errorf("core: recover tree %d: %w", ts.Tree, err)
		}
		switch {
		case ts.Tree == state.Init:
			init = t
		case ts.HasOwner:
			dedicated[ts.Owner] = t
		default:
			return nil, fmt.Errorf("core: recover: tree %d is neither INIT nor owned", ts.Tree)
		}
	}
	if init == nil {
		return nil, fmt.Errorf("core: recover: snapshot has no INIT tree")
	}
	f := forest.Rebuild(m, st, forest.Config{
		Tree:              opts.Tree,
		SplitThreshold:    opts.SplitThreshold,
		InitSizeThreshold: opts.InitSizeThreshold,
	}, init, dedicated)

	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	e := &Engine{store: st, mapping: m, edges: f, opts: opts, reg: reg}
	policy := opts.GCPolicy
	if policy == nil {
		policy = gc.WorkloadAware{TTL: opts.TTL}
	}
	for _, stream := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
		r := gc.NewReclaimer(st, stream, policy, m.Relocate)
		r.TTL = opts.TTL
		if opts.Epochs != nil {
			r.Pins = opts.Epochs
		}
		if opts.Now != nil {
			r.Now = opts.Now
		}
		e.reclaimers = append(e.reclaimers, r)
		if opts.GCInterval > 0 {
			batch := opts.GCBatch
			if batch <= 0 {
				batch = 1
			}
			r.Start(opts.GCInterval, batch)
		}
	}
	e.registerMetrics(reg)
	return e, nil
}

// ReplayRecord applies one WAL-suffix record to a recovering engine. Data
// records apply logically (by key, through the owning tree, which re-splits
// as needed); tree creations and owner assignments restore the forest
// directory; physical records (splits, new pages, checkpoints) are skipped
// — the rebuilt trees form their own physical structure.
func (e *Engine) ReplayRecord(rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordNewTree:
		e.mapping.EnsureIDsBeyond(bwtree.PageID(rec.AuxPage), bwtree.TreeID(rec.TreeID))
		t, err := bwtree.NewEmptyWithID(e.mapping, e.store, e.opts.Tree, bwtree.TreeID(rec.TreeID))
		if err != nil {
			return err
		}
		e.edges.AdoptTree(t)
		return nil
	case wal.RecordOwnerAssign:
		if len(rec.Key) != 8 {
			return fmt.Errorf("core: replay: malformed owner assignment")
		}
		owner := forest.OwnerID(beUint64(rec.Key))
		return e.edges.BindOwner(owner, bwtree.TreeID(rec.TreeID))
	case wal.RecordPut, wal.RecordDelete:
		t := e.edges.TreeByID(bwtree.TreeID(rec.TreeID))
		if t == nil {
			return fmt.Errorf("core: replay: record for unknown tree %d", rec.TreeID)
		}
		if rec.Type == wal.RecordDelete {
			return t.Delete(rec.Key)
		}
		return t.Put(rec.Key, rec.Value)
	default:
		return nil // structural/checkpoint records: physical, skipped
	}
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// ReplayWAL drains the reader and applies every record with LSN beyond
// horizon to the recovering engine, returning the highest LSN applied (the
// point a resumed WAL writer continues from). Torn entry tails and retry
// duplicates are absorbed by the reader; an LSN gap aborts the recovery —
// a hole beyond the snapshot horizon means acknowledged writes are gone,
// and restarting into silent data loss is worse than failing loudly.
func (e *Engine) ReplayWAL(r *wal.Reader, horizon wal.LSN) (wal.LSN, error) {
	r.SetBase(horizon)
	max := horizon
	for {
		recs, err := r.Poll()
		for _, rec := range recs {
			if rec.LSN > max {
				max = rec.LSN
			}
			if aerr := e.ReplayRecord(rec); aerr != nil {
				return max, fmt.Errorf("core: recover: replay LSN %d: %w", rec.LSN, aerr)
			}
		}
		if err != nil {
			return max, fmt.Errorf("core: recover: WAL suffix beyond lsn %d: %w", horizon, err)
		}
		if len(recs) == 0 {
			return max, nil
		}
	}
}

// AttachLogger wires the WAL logger into the recovered forest once replay
// is complete.
func (e *Engine) AttachLogger(l bwtree.WALLogger) {
	e.opts.Logger = l
	e.edges.SetLogger(l)
}
