package core
