package core

import (
	"fmt"

	"bg3/internal/forest"
	"bg3/internal/graph"
	"bg3/internal/mvcc"
	"bg3/internal/wal"
)

// ReadView is a snapshot-isolated read handle over the engine: every read
// through it observes the graph exactly as of one group-commit boundary
// (the pinned epoch), no matter how many batches commit, pages split,
// owners migrate, or extents get reclaimed while it is open. It implements
// graph.Reader, so traversals (KHop, the pattern matcher) run against it
// unchanged.
//
// On an engine without an epoch clock (no replication / sync flush) the
// view degrades to unpinned latest-state reads — the exact pre-MVCC
// behavior.
//
// A ReadView holds the MVCC retention floor down while open: close it
// promptly, or consolidation and GC back up behind the pin.
type ReadView struct {
	e   *Engine
	pin *mvcc.Pin // nil without an epoch clock
}

var _ graph.Reader = (*ReadView)(nil)

// View pins the current read epoch and returns a snapshot read handle.
// The caller must Close it.
func (e *Engine) View() *ReadView {
	v := &ReadView{e: e}
	if e.opts.Epochs != nil {
		v.pin = e.opts.Epochs.Pin()
	}
	return v
}

// ReadEpoch returns the engine's current released read epoch (0 without
// an epoch clock). It is the component a cross-shard coordinator samples
// into a consistent-cut vector.
func (e *Engine) ReadEpoch() mvcc.Epoch {
	if e.opts.Epochs == nil {
		return 0
	}
	return e.opts.Epochs.Current()
}

// ViewAt pins a specific past epoch and returns a snapshot read handle —
// the re-attach half of a cross-shard consistent cut. It fails closed
// with mvcc.ErrFutureEpoch / ErrRetiredEpoch / ErrNotBoundary when the
// epoch cannot be pinned exactly. On an engine without an epoch clock
// only epoch 0 (latest state) is accepted.
func (e *Engine) ViewAt(epoch mvcc.Epoch) (*ReadView, error) {
	if e.opts.Epochs == nil {
		if epoch != 0 {
			return nil, mvcc.ErrFutureEpoch
		}
		return &ReadView{e: e}, nil
	}
	pin, err := e.opts.Epochs.PinAt(epoch)
	if err != nil {
		return nil, err
	}
	return &ReadView{e: e, pin: pin}, nil
}

// Epoch returns the pinned group-commit boundary (0 when the engine has no
// epoch clock and the view reads latest state).
func (v *ReadView) Epoch() mvcc.Epoch {
	if v.pin == nil {
		return 0
	}
	return v.pin.Epoch()
}

// Close releases the pin, letting the retention floor advance. Idempotent;
// safe on a nil view.
func (v *ReadView) Close() {
	if v == nil {
		return
	}
	v.pin.Close() // nil-safe, idempotent
}

// horizon is the visibility cutoff forest reads filter by.
func (v *ReadView) horizon() wal.LSN {
	return wal.LSN(v.pin.ReadHorizon()) // nil pin → HorizonAll
}

// GetVertex implements graph.Reader at the pinned epoch.
func (v *ReadView) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	val, ok, err := v.e.edges.GetAt(forest.OwnerID(id), vertexKey(typ), v.horizon())
	if err != nil || !ok {
		return graph.Vertex{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Vertex{}, false, err
	}
	return graph.Vertex{ID: id, Type: typ, Props: props}, true, nil
}

// GetEdge implements graph.Reader at the pinned epoch.
func (v *ReadView) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	if typ == vertexPrefix {
		return graph.Edge{}, false, fmt.Errorf("core: edge type %d is reserved", uint16(vertexPrefix))
	}
	val, ok, err := v.e.edges.GetAt(forest.OwnerID(src), graph.EdgeKey(typ, dst), v.horizon())
	if err != nil || !ok {
		return graph.Edge{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Edge{}, false, err
	}
	return graph.Edge{Src: src, Dst: dst, Type: typ, Props: props}, true, nil
}

// Neighbors implements graph.Reader at the pinned epoch. The Properties
// passed to fn are valid only for the duration of the callback (one
// decoder is reused across the scan); copy values to retain them.
func (v *ReadView) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	lo, hi := graph.EdgeTypeBounds(typ)
	var dec graph.PropDecoder
	return v.e.edges.ScanAt(forest.OwnerID(src), lo, hi, limit, v.horizon(), func(k, val []byte) bool {
		_, dst, err := graph.DecodeEdgeKey(k)
		if err != nil {
			return true // skip foreign records defensively
		}
		props, err := dec.Decode(val)
		if err != nil {
			return true
		}
		return fn(dst, props)
	})
}

// NeighborsMany streams the out-neighbors of each src in order, all at
// the pinned epoch, sharing one property decoder across the whole
// frontier — the per-shard read unit of a scatter-gather hop. limit
// applies per source vertex (perVertexLimit pushdown); fn returning false
// stops the entire multi-scan. Properties are callback-scoped, exactly as
// in Neighbors.
func (v *ReadView) NeighborsMany(srcs []graph.VertexID, typ graph.EdgeType, limit int, fn func(src, dst graph.VertexID, props graph.Properties) bool) error {
	lo, hi := graph.EdgeTypeBounds(typ)
	owners := make([]forest.OwnerID, len(srcs))
	for i, s := range srcs {
		owners[i] = forest.OwnerID(s)
	}
	var dec graph.PropDecoder
	return v.e.edges.ScanManyAt(owners, lo, hi, limit, v.horizon(), func(owner forest.OwnerID, k, val []byte) bool {
		_, dst, err := graph.DecodeEdgeKey(k)
		if err != nil {
			return true // skip foreign records defensively
		}
		props, err := dec.Decode(val)
		if err != nil {
			return true
		}
		return fn(graph.VertexID(owner), dst, props)
	})
}

// Degree implements graph.Reader at the pinned epoch.
func (v *ReadView) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	n := 0
	err := v.Neighbors(src, typ, 0, func(graph.VertexID, graph.Properties) bool { n++; return true })
	return n, err
}
