package core

import (
	"errors"
	"testing"

	"bg3/internal/bwtree"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Torn-write recovery table: a node writes a durable base (flushed pages +
// snapshot state), keeps appending WAL records, and dies with the log tail
// in a per-case condition. Recovery must rebuild the base, replay exactly
// the acknowledged suffix, and absorb whatever garbage the death left at
// the tail of the log.
func TestRecoverTornWALTable(t *testing.T) {
	const (
		src  = graph.VertexID(1)
		typ  = graph.ETypeFollow
		base = 5 // edges written before the snapshot
	)
	edge := func(dst int) graph.Edge {
		return graph.Edge{Src: src, Dst: graph.VertexID(dst), Type: typ,
			Props: graph.Properties{{Name: "v", Value: []byte{byte(dst)}}}}
	}

	cases := []struct {
		name string
		// suffix runs the post-snapshot workload; the writer has retries
		// disabled, so every injected fault is terminal for its append.
		suffix func(t *testing.T, e *Engine, w *wal.Writer, plan *storage.FaultPlan)

		wantPresent  []int   // dsts that must exist after recovery
		wantAbsent   []int   // dsts that must not exist after recovery
		wantMaxDelta wal.LSN // durable WAL records beyond the snapshot horizon
		wantTorn     int64   // torn WAL entries the recovery reader must absorb
	}{
		{
			name: "clean tail",
			suffix: func(t *testing.T, e *Engine, w *wal.Writer, plan *storage.FaultPlan) {
				for dst := base + 1; dst <= base+3; dst++ {
					if err := e.AddEdge(edge(dst)); err != nil {
						t.Fatal(err)
					}
				}
			},
			wantPresent:  []int{1, 2, 3, 4, 5, 6, 7, 8},
			wantMaxDelta: 3,
			wantTorn:     0,
		},
		{
			name: "torn last record",
			suffix: func(t *testing.T, e *Engine, w *wal.Writer, plan *storage.FaultPlan) {
				for dst := base + 1; dst <= base+2; dst++ {
					if err := e.AddEdge(edge(dst)); err != nil {
						t.Fatal(err)
					}
				}
				plan.TearNext()
				if err := e.AddEdge(edge(base + 3)); !errors.Is(err, storage.ErrTornWrite) {
					t.Fatalf("torn append err = %v, want ErrTornWrite", err)
				}
			},
			wantPresent:  []int{1, 2, 3, 4, 5, 6, 7},
			wantAbsent:   []int{8},
			wantMaxDelta: 2,
			wantTorn:     1,
		},
		{
			name: "torn checkpoint record",
			suffix: func(t *testing.T, e *Engine, w *wal.Writer, plan *storage.FaultPlan) {
				for dst := base + 1; dst <= base+3; dst++ {
					if err := e.AddEdge(edge(dst)); err != nil {
						t.Fatal(err)
					}
				}
				// The flusher's checkpoint declaration is the record that
				// dies mid-append: data must be unaffected.
				plan.TearNext()
				_, err := w.Append(&wal.Record{Type: wal.RecordCheckpoint, CkptLSN: base})
				if !errors.Is(err, storage.ErrTornWrite) {
					t.Fatalf("torn checkpoint err = %v, want ErrTornWrite", err)
				}
			},
			wantPresent:  []int{1, 2, 3, 4, 5, 6, 7, 8},
			wantMaxDelta: 3,
			wantTorn:     1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 17})
			st := storage.Open(&storage.Options{Faults: plan})
			w := wal.NewWriter(st)
			// No retries: a torn append stays torn, modelling a node that
			// died inside the write instead of one that got to retry it.
			w.SetRetry(storage.RetryPolicy{MaxAttempts: 1})
			opts := Options{
				Tree:   bwtree.Config{FlushMode: bwtree.FlushAsync, MaxPageEntries: 8},
				Logger: loggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) }),
			}
			e, err := NewWithStore(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			for dst := 1; dst <= base; dst++ {
				if err := e.AddEdge(edge(dst)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.FlushDirty(); err != nil {
				t.Fatal(err)
			}
			state := e.SnapshotState()
			horizon := w.NextLSN() - 1 // every record so far is covered by the flush

			tc.suffix(t, e, w, plan)
			e.Close() // the node dies; shared storage survives

			recovered, err := RecoverWithStore(st, Options{
				Tree: bwtree.Config{FlushMode: bwtree.FlushAsync, MaxPageEntries: 8},
			}, state)
			if err != nil {
				t.Fatalf("RecoverWithStore: %v", err)
			}
			defer recovered.Close()
			reader := wal.NewReader(st)
			maxLSN, err := recovered.ReplayWAL(reader, horizon)
			if err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if want := horizon + tc.wantMaxDelta; maxLSN != want {
				t.Errorf("maxLSN = %d, want %d", maxLSN, want)
			}
			if torn, _ := reader.Stats(); torn != tc.wantTorn {
				t.Errorf("torn entries = %d, want %d", torn, tc.wantTorn)
			}
			for _, dst := range tc.wantPresent {
				ed, ok, err := recovered.GetEdge(src, typ, graph.VertexID(dst))
				if err != nil || !ok {
					t.Fatalf("edge %d missing after recovery (err=%v)", dst, err)
				}
				if v, _ := ed.Props.Get("v"); len(v) != 1 || v[0] != byte(dst) {
					t.Errorf("edge %d value = %v", dst, v)
				}
			}
			for _, dst := range tc.wantAbsent {
				if _, ok, _ := recovered.GetEdge(src, typ, graph.VertexID(dst)); ok {
					t.Errorf("unacknowledged edge %d resurrected by recovery", dst)
				}
			}
		})
	}
}

// A hole in the replayed suffix means either acknowledged records vanished
// from the log (trim raced recovery, an extent was destroyed) or a
// pipelined commit failed mid-flight, leaving never-acknowledged debris
// past the gapless prefix. Replay must stop exactly at the prefix and
// surface the parked debris so recovery can fence it — and with reordering
// disabled, refuse to proceed outright.
func TestReplayWALGapAborts(t *testing.T) {
	st := storage.Open(nil)
	w := wal.NewWriter(st)
	opts := Options{
		Tree:   bwtree.Config{FlushMode: bwtree.FlushAsync, MaxPageEntries: 8},
		Logger: loggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) }),
	}
	e, err := NewWithStore(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdge(graph.Edge{Src: 1, Dst: 1, Type: graph.ETypeFollow}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	state := e.SnapshotState()
	e.Close()

	// Forge a suffix with a hole: LSN 2 exists, LSN 3 is missing, LSN 4
	// present. (A real writer can never do this — it fails stop — so this
	// models external log damage.)
	for _, lsn := range []wal.LSN{2, 4} {
		rec := &wal.Record{Type: wal.RecordPut, LSN: lsn, TreeID: uint64(state.Init), Key: []byte("k")}
		if err := wal.NewWriterFrom(st, lsn).AppendAssigned([]*wal.Record{rec}); err != nil {
			t.Fatal(err)
		}
	}

	recovered, err := RecoverWithStore(st, Options{Tree: bwtree.Config{FlushMode: bwtree.FlushAsync}}, state)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	r := wal.NewReader(st)
	maxLSN, err := recovered.ReplayWAL(r, 1)
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if maxLSN != 2 {
		t.Fatalf("replay advanced to LSN %d, want the gapless prefix 2", maxLSN)
	}
	if r.PendingGroups() != 1 {
		t.Fatalf("pending groups after replay = %d, want the post-hole group parked", r.PendingGroups())
	}

	// With reordering disabled (strict depth-1 semantics) the hole aborts
	// the recovery loudly.
	recovered2, err := RecoverWithStore(st, Options{Tree: bwtree.Config{FlushMode: bwtree.FlushAsync}}, state)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered2.Close()
	strict := wal.NewReader(st)
	strict.SetReorderWindow(0)
	var gap *wal.GapError
	if _, err := recovered2.ReplayWAL(strict, 1); !errors.As(err, &gap) {
		t.Fatalf("strict ReplayWAL with a hole returned %v, want *GapError", err)
	}
}
