package core

import (
	"bg3/internal/forest"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Replica is the RO-node view of a BG3 engine: the forest replica plus the
// graph read API. It consumes WAL records (shipped by the replication
// layer) and serves strongly consistent reads.
type Replica struct {
	rep *forest.Replica
}

// NewReplica creates an empty replica reading pages from the shared store.
// capacity bounds its page cache (0 = unlimited).
func NewReplica(st *storage.Store, capacity int) *Replica {
	return &Replica{rep: forest.NewReplica(st, capacity)}
}

// Apply incorporates one WAL record.
func (r *Replica) Apply(rec *wal.Record) error { return r.rep.Apply(rec) }

// ApplyAll incorporates records in order.
func (r *Replica) ApplyAll(recs []*wal.Record) error { return r.rep.ApplyAll(recs) }

// ApplyGroup incorporates one commit group as a unit: the published high
// LSN advances only after every record in the group is in.
func (r *Replica) ApplyGroup(recs []*wal.Record) error { return r.rep.ApplyGroup(recs) }

// HighLSN reports the newest WAL LSN incorporated.
func (r *Replica) HighLSN() wal.LSN { return r.rep.HighLSN() }

// BufferedRecords reports the lazy-replay backlog.
func (r *Replica) BufferedRecords() int { return r.rep.BufferedRecords() }

// GetVertex mirrors Engine.GetVertex.
func (r *Replica) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	val, ok, err := r.rep.Get(forest.OwnerID(id), vertexKey(typ))
	if err != nil || !ok {
		return graph.Vertex{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Vertex{}, false, err
	}
	return graph.Vertex{ID: id, Type: typ, Props: props}, true, nil
}

// GetEdge mirrors Engine.GetEdge.
func (r *Replica) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	val, ok, err := r.rep.Get(forest.OwnerID(src), graph.EdgeKey(typ, dst))
	if err != nil || !ok {
		return graph.Edge{}, false, err
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Edge{}, false, err
	}
	return graph.Edge{Src: src, Dst: dst, Type: typ, Props: props}, true, nil
}

// Neighbors mirrors Engine.Neighbors, including its callback-scoped
// Properties validity.
func (r *Replica) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	lo, hi := graph.EdgeTypeBounds(typ)
	var dec graph.PropDecoder
	return r.rep.Scan(forest.OwnerID(src), lo, hi, limit, func(k, v []byte) bool {
		_, dst, err := graph.DecodeEdgeKey(k)
		if err != nil {
			return true
		}
		props, err := dec.Decode(v)
		if err != nil {
			return true
		}
		return fn(dst, props)
	})
}

// Degree mirrors Engine.Degree.
func (r *Replica) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	n := 0
	err := r.Neighbors(src, typ, 0, func(graph.VertexID, graph.Properties) bool { n++; return true })
	return n, err
}

// readOnlyStore adapts a Replica to graph.Store for traversal helpers and
// pattern matching; write methods fail.
type readOnlyStore struct{ r *Replica }

// AsStore returns a graph.Store view whose write methods return
// graph.ErrCorrupt-free explicit errors (replicas are read-only).
func (r *Replica) AsStore() graph.Store { return readOnlyStore{r} }

func (s readOnlyStore) AddVertex(graph.Vertex) error { return errReadOnly }
func (s readOnlyStore) AddEdge(graph.Edge) error     { return errReadOnly }
func (s readOnlyStore) DeleteEdge(graph.VertexID, graph.EdgeType, graph.VertexID) error {
	return errReadOnly
}
func (s readOnlyStore) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return s.r.GetVertex(id, typ)
}
func (s readOnlyStore) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return s.r.GetEdge(src, typ, dst)
}
func (s readOnlyStore) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return s.r.Neighbors(src, typ, limit, fn)
}
func (s readOnlyStore) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return s.r.Degree(src, typ)
}

type roError string

func (e roError) Error() string { return string(e) }

const errReadOnly = roError("core: replica is read-only")
