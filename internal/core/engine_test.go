package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/graph"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestVertexRoundTrip(t *testing.T) {
	e := newEngine(t, Options{})
	v := graph.Vertex{ID: 42, Type: graph.VTypeUser, Props: graph.Properties{
		{Name: "name", Value: []byte("alice")},
	}}
	if err := e.AddVertex(v); err != nil {
		t.Fatal(err)
	}
	got, ok, err := e.GetVertex(42, graph.VTypeUser)
	if err != nil || !ok {
		t.Fatalf("get vertex = %v %v", ok, err)
	}
	if name, _ := got.Props.Get("name"); string(name) != "alice" {
		t.Fatalf("props = %+v", got.Props)
	}
	if _, ok, _ := e.GetVertex(42, graph.VTypeVideo); ok {
		t.Fatal("wrong-type vertex found")
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	e := newEngine(t, Options{})
	edge := graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeFollow, Props: graph.Properties{
		{Name: "ts", Value: []byte("12345")},
	}}
	if err := e.AddEdge(edge); err != nil {
		t.Fatal(err)
	}
	got, ok, err := e.GetEdge(1, graph.ETypeFollow, 2)
	if err != nil || !ok {
		t.Fatalf("get edge = %v %v", ok, err)
	}
	if ts, _ := got.Props.Get("ts"); string(ts) != "12345" {
		t.Fatalf("edge props = %+v", got.Props)
	}
	if err := e.DeleteEdge(1, graph.ETypeFollow, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.GetEdge(1, graph.ETypeFollow, 2); ok {
		t.Fatal("deleted edge visible")
	}
}

func TestReservedEdgeType(t *testing.T) {
	e := newEngine(t, Options{})
	if err := e.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: 0xFFFF}); err == nil {
		t.Fatal("reserved edge type accepted")
	}
}

func TestNeighborsOrderedAndTyped(t *testing.T) {
	e := newEngine(t, Options{})
	for _, dst := range []graph.VertexID{30, 10, 20} {
		if err := e.AddEdge(graph.Edge{Src: 1, Dst: dst, Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddEdge(graph.Edge{Src: 1, Dst: 99, Type: graph.ETypeLike}); err != nil {
		t.Fatal(err)
	}
	// Vertex record must not leak into neighbor scans.
	if err := e.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser}); err != nil {
		t.Fatal(err)
	}
	var dsts []graph.VertexID
	if err := e.Neighbors(1, graph.ETypeFollow, 0, func(d graph.VertexID, _ graph.Properties) bool {
		dsts = append(dsts, d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(dsts) != 3 || dsts[0] != 10 || dsts[1] != 20 || dsts[2] != 30 {
		t.Fatalf("neighbors = %v", dsts)
	}
	if deg, _ := e.Degree(1, graph.ETypeLike); deg != 1 {
		t.Fatalf("like degree = %d", deg)
	}
	// Limit.
	n := 0
	if err := e.Neighbors(1, graph.ETypeFollow, 2, func(graph.VertexID, graph.Properties) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("limited neighbors = %d", n)
	}
}

func TestSuperVertex(t *testing.T) {
	// A high-degree vertex with forest splitting enabled: adjacency spans
	// many pages and a dedicated tree.
	e := newEngine(t, Options{
		SplitThreshold: 64,
		Tree:           bwtree.Config{MaxPageEntries: 16},
	})
	const degree = 1000
	for i := 0; i < degree; i++ {
		if err := e.AddEdge(graph.Edge{Src: 7, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	if deg, err := e.Degree(7, graph.ETypeLike); err != nil || deg != degree {
		t.Fatalf("degree = %d %v, want %d", deg, err, degree)
	}
	if s := e.Forest().Stats(); s.Trees < 2 {
		t.Fatalf("forest trees = %d, want the super-vertex split out", s.Trees)
	}
}

func TestKHopOnEngine(t *testing.T) {
	e := newEngine(t, Options{})
	edges := []graph.Edge{
		{Src: 1, Dst: 2, Type: graph.ETypeFollow},
		{Src: 1, Dst: 3, Type: graph.ETypeFollow},
		{Src: 2, Dst: 4, Type: graph.ETypeFollow},
		{Src: 3, Dst: 4, Type: graph.ETypeFollow},
		{Src: 4, Dst: 5, Type: graph.ETypeFollow},
	}
	for _, ed := range edges {
		if err := e.AddEdge(ed); err != nil {
			t.Fatal(err)
		}
	}
	reached, err := graph.KHop(e, 1, graph.ETypeFollow, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 3 { // 2,3,4
		t.Fatalf("2-hop reached %d vertices, want 3", len(reached))
	}
}

func TestEngineGC(t *testing.T) {
	e := newEngine(t, Options{
		Storage: &storage.Options{ExtentSize: 1 << 10},
		Tree:    bwtree.Config{ConsolidateNum: 3, MaxPageEntries: 16},
	})
	// Heavy overwrites generate garbage.
	for round := 0; round < 20; round++ {
		for i := 0; i < 30; i++ {
			if err := e.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeLike,
				Props: graph.Properties{{Name: "r", Value: []byte{byte(round)}}}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	moved, err := e.RunGC(4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Store().Stats().ExtentsReclaimed == 0 {
		t.Fatal("GC reclaimed nothing despite heavy overwrites")
	}
	// Data still intact post-GC.
	if deg, _ := e.Degree(1, graph.ETypeLike); deg != 30 {
		t.Fatalf("degree after GC = %d, want 30", deg)
	}
	if e.GCStats().BytesMoved != moved {
		t.Fatalf("GCStats = %+v, moved %d", e.GCStats(), moved)
	}
}

func TestEngineTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	e := newEngine(t, Options{
		Storage: &storage.Options{ExtentSize: 1 << 10, Now: clock},
		Tree:    bwtree.Config{MaxPageEntries: 16},
		TTL:     time.Minute,
		Now:     clock,
	})
	for i := 0; i < 50; i++ {
		if err := e.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeTransfer}); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(time.Hour)
	if _, err := e.RunGC(8); err != nil {
		t.Fatal(err)
	}
	st := e.Store().Stats()
	if st.ExtentsExpired == 0 {
		t.Fatal("no extents expired despite TTL")
	}
	if st.GCBytesMoved != 0 {
		t.Fatalf("TTL expiry moved %d bytes, want 0", st.GCBytesMoved)
	}
}

func TestEngineReplicaEndToEnd(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	e, err := NewWithStore(st, Options{
		Tree:           bwtree.Config{FlushMode: bwtree.FlushAsync, MaxPageEntries: 16},
		SplitThreshold: 32,
		Logger:         loggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(st, 0)
	rd := wal.NewReader(st)

	if err := e.AddVertex(graph.Vertex{ID: 5, Type: graph.VTypeUser,
		Props: graph.Properties{{Name: "n", Value: []byte("bob")}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.AddEdge(graph.Edge{Src: 5, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := rd.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := rep.GetVertex(5, graph.VTypeUser); err != nil || !ok {
		t.Fatalf("replica vertex = %v %v", ok, err)
	} else if n, _ := v.Props.Get("n"); string(n) != "bob" {
		t.Fatalf("replica vertex props = %+v", v.Props)
	}
	if deg, err := rep.Degree(5, graph.ETypeFollow); err != nil || deg != 100 {
		t.Fatalf("replica degree = %d %v, want 100", deg, err)
	}
	// Multi-hop through the read-only Store adapter.
	if _, err := graph.KHop(rep.AsStore(), 5, graph.ETypeFollow, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := rep.AsStore().AddVertex(graph.Vertex{ID: 1}); err == nil {
		t.Fatal("replica accepted a write")
	}
}

type loggerFunc func(rec *wal.Record) (wal.LSN, error)

func (f loggerFunc) Log(rec *wal.Record) (wal.LSN, error) { return f(rec) }

func TestManyVerticesAndEdges(t *testing.T) {
	e := newEngine(t, Options{
		SplitThreshold: 100,
		Tree:           bwtree.Config{MaxPageEntries: 32},
	})
	const users = 50
	for u := 0; u < users; u++ {
		if err := e.AddVertex(graph.Vertex{ID: graph.VertexID(u), Type: graph.VTypeUser}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < u; k++ { // user u follows u users
			if err := e.AddEdge(graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(k), Type: graph.ETypeFollow}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for u := 0; u < users; u++ {
		if _, ok, _ := e.GetVertex(graph.VertexID(u), graph.VTypeUser); !ok {
			t.Fatalf("vertex %d lost", u)
		}
		deg, err := e.Degree(graph.VertexID(u), graph.ETypeFollow)
		if err != nil || deg != u {
			t.Fatalf("degree(%d) = %d %v, want %d", u, deg, err, u)
		}
	}
}

func TestEngineBackgroundGC(t *testing.T) {
	e := newEngine(t, Options{
		Storage:    &storage.Options{ExtentSize: 512},
		Tree:       bwtree.Config{ConsolidateNum: 2},
		GCInterval: 2 * time.Millisecond,
		GCBatch:    2,
	})
	for round := 0; round < 30; round++ {
		for i := 0; i < 10; i++ {
			if err := e.AddEdge(graph.Edge{Src: 2, Dst: graph.VertexID(i), Type: graph.ETypeLike,
				Props: graph.Properties{{Name: "r", Value: []byte(fmt.Sprintf("%d", round))}}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.GCStats().Runs > 0 && e.GCStats().BytesMoved > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if e.GCStats().Runs == 0 {
		t.Fatal("background GC never ran")
	}
	if deg, _ := e.Degree(2, graph.ETypeLike); deg != 10 {
		t.Fatalf("degree = %d after background GC", deg)
	}
}

// TestEngineMixedStress hammers one engine with concurrent mixed
// operations (inserts, deletes, point reads, scans, multi-hop) across
// contended and disjoint vertices, with background GC running, and then
// verifies full data integrity against a recomputed model.
func TestEngineMixedStress(t *testing.T) {
	e := newEngine(t, Options{
		Storage:        &storage.Options{ExtentSize: 8 << 10},
		Tree:           bwtree.Config{MaxPageEntries: 16, ConsolidateNum: 4},
		SplitThreshold: 64,
		GCInterval:     2 * time.Millisecond,
		GCBatch:        2,
	})
	const (
		workers = 6
		perW    = 400
		sources = 8
	)
	// Each worker owns a disjoint destination range per source so the
	// final degree is deterministic: inserts minus deletes.
	type stats struct{ ins, del int }
	results := make([][sources]stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 99))
			for i := 0; i < perW; i++ {
				src := graph.VertexID(rng.Intn(sources))
				dst := graph.VertexID(w*100000 + rng.Intn(200))
				switch rng.Intn(10) {
				case 0:
					if err := e.DeleteEdge(src, graph.ETypeLike, dst); err != nil {
						t.Error(err)
						return
					}
				case 1:
					_, _ = e.Degree(src, graph.ETypeLike)
				case 2:
					_, _, _ = e.GetEdge(src, graph.ETypeLike, dst)
				case 3:
					_, _ = graph.KHopBudget(e, src, graph.ETypeLike, 2, 8, 32)
				default:
					if err := e.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeLike}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	_ = results

	// Rebuild the expected state by replaying each worker's deterministic
	// stream (same seeds), then compare against the engine.
	model := map[graph.VertexID]map[graph.VertexID]bool{}
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 99))
		for i := 0; i < perW; i++ {
			src := graph.VertexID(rng.Intn(sources))
			dst := graph.VertexID(w*100000 + rng.Intn(200))
			switch rng.Intn(10) {
			case 0:
				delete(model[src], dst)
			case 1, 2:
			case 3:
			default:
				if model[src] == nil {
					model[src] = map[graph.VertexID]bool{}
				}
				model[src][dst] = true
			}
		}
	}
	// Caveat: concurrent add/delete of the SAME edge by one worker is
	// sequential within that worker, and workers use disjoint dst ranges,
	// so the replay is exact.
	for src := graph.VertexID(0); src < sources; src++ {
		got := map[graph.VertexID]bool{}
		if err := e.Neighbors(src, graph.ETypeLike, 0, func(d graph.VertexID, _ graph.Properties) bool {
			got[d] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := model[src]
		if len(got) != len(want) {
			t.Fatalf("src %d: %d edges, want %d", src, len(got), len(want))
		}
		for d := range want {
			if !got[d] {
				t.Fatalf("src %d missing dst %d", src, d)
			}
		}
	}
}

func TestSnapshotStateRoundTrip(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	e, err := NewWithStore(st, Options{
		Tree:           bwtree.Config{FlushMode: bwtree.FlushAsync, MaxPageEntries: 16},
		SplitThreshold: 20,
		Logger:         loggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A hot owner (dedicated tree) and cold owners in INIT.
	for i := 0; i < 60; i++ {
		if err := e.AddEdge(graph.Edge{Src: 3, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	for src := 10; src < 15; src++ {
		if err := e.AddEdge(graph.Edge{Src: graph.VertexID(src), Dst: 1, Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	state := e.SnapshotState()
	if state.Init == 0 {
		t.Fatal("no INIT tree in snapshot state")
	}
	if len(state.Trees) < 2 {
		t.Fatalf("trees = %d, want INIT + dedicated", len(state.Trees))
	}
	var sawOwner bool
	for _, ts := range state.Trees {
		if len(ts.Leaves) == 0 {
			t.Fatalf("tree %d snapshot has no leaves", ts.Tree)
		}
		if ts.HasOwner && ts.Owner == 3 {
			sawOwner = true
		}
	}
	if !sawOwner {
		t.Fatal("dedicated owner missing from snapshot state")
	}
	// Load into a fresh replica; all data readable without WAL replay.
	rep := NewReplica(st, 0)
	if err := rep.LoadSnapshot(state, 1<<40); err != nil {
		t.Fatal(err)
	}
	if deg, err := rep.Degree(3, graph.ETypeLike); err != nil || deg != 60 {
		t.Fatalf("replica degree = %d %v", deg, err)
	}
	for src := 10; src < 15; src++ {
		if _, ok, _ := rep.GetEdge(graph.VertexID(src), graph.ETypeFollow, 1); !ok {
			t.Fatalf("edge %d missing from snapshot-loaded replica", src)
		}
	}
	if rep.HighLSN() != 1<<40 {
		t.Fatalf("high LSN = %d", rep.HighLSN())
	}
}

func TestReplicaReadOnlyAdapterSurface(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	e, err := NewWithStore(st, Options{
		Tree:   bwtree.Config{FlushMode: bwtree.FlushAsync},
		Logger: loggerFunc(func(rec *wal.Record) (wal.LSN, error) { return w.Append(rec) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeLike}); err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(st, 0)
	recs, err := wal.NewReader(st).Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
	s := rep.AsStore()
	if _, ok, _ := s.GetVertex(1, graph.VTypeUser); !ok {
		t.Fatal("vertex missing via adapter")
	}
	if _, ok, _ := s.GetEdge(1, graph.ETypeLike, 2); !ok {
		t.Fatal("edge missing via adapter")
	}
	if d, _ := s.Degree(1, graph.ETypeLike); d != 1 {
		t.Fatalf("degree = %d", d)
	}
	if err := s.AddEdge(graph.Edge{}); err == nil {
		t.Fatal("adapter accepted AddEdge")
	}
	if err := s.DeleteEdge(1, graph.ETypeLike, 2); err == nil {
		t.Fatal("adapter accepted DeleteEdge")
	}
}
