package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPropDecoderMatchesDecodeProps checks the reusable scan decoder
// against the allocating one on a spread of shapes, including every
// corruption DecodeProps rejects.
func TestPropDecoderMatchesDecodeProps(t *testing.T) {
	cases := []Properties{
		nil,
		{{Name: "a", Value: []byte("x")}},
		{{Name: "a", Value: nil}, {Name: "bb", Value: []byte("yy")}},
		{{Name: "name", Value: bytes.Repeat([]byte("v"), 300)}},
		{{Name: "", Value: []byte("empty-name")}},
	}
	var dec PropDecoder
	for i, ps := range cases {
		buf := EncodeProps(ps)
		want, err := DecodeProps(buf)
		if err != nil {
			t.Fatalf("case %d: DecodeProps: %v", i, err)
		}
		got, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("case %d: PropDecoder: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("case %d: %d props, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Name != want[j].Name || !bytes.Equal(got[j].Value, want[j].Value) {
				t.Fatalf("case %d prop %d: got %q=%q want %q=%q",
					i, j, got[j].Name, got[j].Value, want[j].Name, want[j].Value)
			}
		}
	}

	corrupt := [][]byte{
		nil,
		{1},
		{1, 0, 5},                  // count 1, truncated name
		{1, 0, 1, 'a'},             // name present, no value length
		{1, 0, 1, 'a', 9, 0, 0, 0}, // value length overruns
	}
	for i, buf := range corrupt {
		if _, err := dec.Decode(buf); err == nil {
			t.Fatalf("corrupt case %d decoded", i)
		}
		if _, err := DecodeProps(buf); err == nil {
			t.Fatalf("corrupt case %d decoded by DecodeProps", i)
		}
	}
}

// TestPropDecoderReuse proves the documented contract: a Decode call
// invalidates the previous result (same backing arrays), and names are
// interned to a single string across records.
func TestPropDecoderReuse(t *testing.T) {
	var dec PropDecoder
	a := EncodeProps(Properties{{Name: "p", Value: []byte("first")}})
	b := EncodeProps(Properties{{Name: "p", Value: []byte("secnd")}})

	got1, err := dec.Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	val1 := got1[0].Value
	got2, err := dec.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2[0].Value) != "secnd" {
		t.Fatalf("second decode: %q", got2[0].Value)
	}
	// Same arena: the first result's value bytes were overwritten.
	if string(val1) == "first" {
		t.Fatal("decoder allocated a fresh value buffer; arena reuse broken")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := dec.Decode(a); err != nil {
			panic(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Decode allocates %.1f times per call", allocs)
	}
}

func BenchmarkDecodeProps(b *testing.B) {
	buf := EncodeProps(Properties{{Name: "ts", Value: []byte{0, 0, 0, 0}}})
	b.Run("alloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := DecodeProps(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		var dec PropDecoder
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = fmt.Sprint()
}
