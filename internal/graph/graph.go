// Package graph defines the property-graph model shared by BG3 and the
// baseline engines (§2.2): typed vertices and edges with binary-encoded
// property lists, the key encodings that map them onto key-value storage,
// and traversal helpers (k-hop expansion) written against a small Store
// interface so every engine — BG3, ByteGraph, the Neptune stand-in — runs
// identical workloads.
package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// VertexID identifies a vertex.
type VertexID uint64

// VertexType partitions vertices (user, video, account, ...).
type VertexType uint16

// EdgeType partitions the adjacency lists of a vertex (follow, like, ...),
// matching ByteGraph's per-type edge grouping.
type EdgeType uint16

// Common types used by the example workloads.
const (
	VTypeUser  VertexType = 1
	VTypeVideo VertexType = 2

	ETypeFollow   EdgeType = 1
	ETypeLike     EdgeType = 2
	ETypeTransfer EdgeType = 3
)

// Property is one named property value.
type Property struct {
	Name  string
	Value []byte
}

// Properties is the ordered property list attached to vertices and edges.
type Properties []Property

// Get returns the value of the named property.
func (ps Properties) Get(name string) ([]byte, bool) {
	for _, p := range ps {
		if p.Name == name {
			return p.Value, true
		}
	}
	return nil, false
}

// Vertex is a typed vertex with properties.
type Vertex struct {
	ID    VertexID
	Type  VertexType
	Props Properties
}

// Edge is a typed, directed edge with properties.
type Edge struct {
	Src   VertexID
	Dst   VertexID
	Type  EdgeType
	Props Properties
}

// ErrCorrupt reports an undecodable graph record.
var ErrCorrupt = errors.New("graph: corrupt record")

// EncodeProps serializes a property list:
//
//	count[2] { nlen[1] name vlen[4] value }*
func EncodeProps(ps Properties) []byte {
	size := 2
	for _, p := range ps {
		size += 5 + len(p.Name) + len(p.Value)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ps)))
	for _, p := range ps {
		buf = append(buf, byte(len(p.Name)))
		buf = append(buf, p.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Value)))
		buf = append(buf, p.Value...)
	}
	return buf
}

// DecodeProps parses a property list.
func DecodeProps(buf []byte) (Properties, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: short property list", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint16(buf)
	buf = buf[2:]
	if n == 0 {
		return nil, nil
	}
	ps := make(Properties, 0, n)
	for i := uint16(0); i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("%w: truncated property %d", ErrCorrupt, i)
		}
		nlen := int(buf[0])
		buf = buf[1:]
		if len(buf) < nlen+4 {
			return nil, fmt.Errorf("%w: truncated property name %d", ErrCorrupt, i)
		}
		name := string(buf[:nlen])
		buf = buf[nlen:]
		vlen := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < vlen {
			return nil, fmt.Errorf("%w: truncated property value %d", ErrCorrupt, i)
		}
		ps = append(ps, Property{Name: name, Value: append([]byte(nil), buf[:vlen]...)})
		buf = buf[vlen:]
	}
	return ps, nil
}

// PropDecoder decodes property lists for a scan without per-record
// allocation: the Properties slice, the value bytes (copied into an
// internal arena), and the interned name strings are all reused across
// Decode calls. The returned Properties are valid only until the next
// Decode — scan paths hand them to a callback and must document that the
// callback copies anything it retains. The zero value is ready to use.
type PropDecoder struct {
	scratch Properties
	arena   []byte
	names   map[string]string
}

// Decode parses a property list with the same validation as DecodeProps.
// The result aliases the decoder's internal buffers and is invalidated by
// the next Decode call.
func (d *PropDecoder) Decode(buf []byte) (Properties, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("%w: short property list", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint16(buf)
	buf = buf[2:]
	if n == 0 {
		return nil, nil
	}
	ps := d.scratch[:0]
	d.arena = d.arena[:0]
	for i := uint16(0); i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("%w: truncated property %d", ErrCorrupt, i)
		}
		nlen := int(buf[0])
		buf = buf[1:]
		if len(buf) < nlen+4 {
			return nil, fmt.Errorf("%w: truncated property name %d", ErrCorrupt, i)
		}
		name, ok := d.names[string(buf[:nlen])]
		if !ok {
			name = string(buf[:nlen])
			if d.names == nil {
				d.names = make(map[string]string, 4)
			}
			d.names[name] = name
		}
		buf = buf[nlen:]
		vlen := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < vlen {
			return nil, fmt.Errorf("%w: truncated property value %d", ErrCorrupt, i)
		}
		// Copy the value into the arena rather than aliasing buf: the
		// source may be a latched page image whose lifetime ends with the
		// scan step, while the arena stays valid until the next Decode.
		// Growth mid-loop is fine — earlier values keep the old array.
		off := len(d.arena)
		d.arena = append(d.arena, buf[:vlen]...)
		ps = append(ps, Property{Name: name, Value: d.arena[off:len(d.arena):len(d.arena)]})
		buf = buf[vlen:]
	}
	d.scratch = ps
	return ps, nil
}

// VertexKey encodes the KV key of a vertex: 'v' id[8] type[2].
func VertexKey(id VertexID, typ VertexType) []byte {
	buf := make([]byte, 11)
	buf[0] = 'v'
	binary.BigEndian.PutUint64(buf[1:], uint64(id))
	binary.BigEndian.PutUint16(buf[9:], uint16(typ))
	return buf
}

// EdgeKey encodes an edge's key within its source vertex's adjacency
// space: etype[2] dst[8]. Big-endian keeps edges of one type contiguous
// and ordered by destination.
func EdgeKey(typ EdgeType, dst VertexID) []byte {
	buf := make([]byte, 10)
	binary.BigEndian.PutUint16(buf, uint16(typ))
	binary.BigEndian.PutUint64(buf[2:], uint64(dst))
	return buf
}

// DecodeEdgeKey parses a key produced by EdgeKey.
func DecodeEdgeKey(key []byte) (EdgeType, VertexID, error) {
	if len(key) != 10 {
		return 0, 0, fmt.Errorf("%w: edge key length %d", ErrCorrupt, len(key))
	}
	return EdgeType(binary.BigEndian.Uint16(key)), VertexID(binary.BigEndian.Uint64(key[2:])), nil
}

// EdgeTypeBounds returns the [lo, hi) key range covering all edges of one
// type in a vertex's adjacency space.
func EdgeTypeBounds(typ EdgeType) (lo, hi []byte) {
	lo = make([]byte, 2)
	binary.BigEndian.PutUint16(lo, uint16(typ))
	if typ == ^EdgeType(0) {
		return lo, nil
	}
	hi = make([]byte, 2)
	binary.BigEndian.PutUint16(hi, uint16(typ)+1)
	return lo, hi
}

// Reader is the read-only half of the graph API. Traversals (KHop, the
// pattern matcher) are written against it so they run equally over a live
// store and over a pinned snapshot view that has no write methods.
type Reader interface {
	// GetVertex fetches a vertex.
	GetVertex(id VertexID, typ VertexType) (Vertex, bool, error)
	// GetEdge fetches one edge.
	GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error)
	// Neighbors streams the out-neighbors of src over edges of the given
	// type, in destination order, until fn returns false or limit edges
	// are delivered (limit <= 0: unlimited).
	Neighbors(src VertexID, typ EdgeType, limit int, fn func(dst VertexID, props Properties) bool) error
	// Degree returns the out-degree of src for the given edge type.
	Degree(src VertexID, typ EdgeType) (int, error)
}

// Store is the engine-neutral graph API all workloads run against.
type Store interface {
	Reader
	// AddVertex upserts a vertex and its properties.
	AddVertex(v Vertex) error
	// AddEdge upserts a directed edge and its properties.
	AddEdge(e Edge) error
	// DeleteEdge removes one edge.
	DeleteEdge(src VertexID, typ EdgeType, dst VertexID) error
}

// MutationKind discriminates batched graph mutations.
type MutationKind uint8

const (
	// MutAddVertex upserts Mutation.Vertex.
	MutAddVertex MutationKind = iota + 1
	// MutAddEdge upserts Mutation.Edge.
	MutAddEdge
	// MutDeleteEdge removes the edge identified by Mutation.Edge's
	// Src/Type/Dst (properties ignored).
	MutDeleteEdge
)

// Mutation is one element of a batched write: a vertex upsert, an edge
// upsert, or an edge deletion.
type Mutation struct {
	Kind   MutationKind
	Vertex Vertex
	Edge   Edge
}

// AddVertexMut builds a vertex-upsert mutation.
func AddVertexMut(v Vertex) Mutation { return Mutation{Kind: MutAddVertex, Vertex: v} }

// AddEdgeMut builds an edge-upsert mutation.
func AddEdgeMut(e Edge) Mutation { return Mutation{Kind: MutAddEdge, Edge: e} }

// DeleteEdgeMut builds an edge-deletion mutation.
func DeleteEdgeMut(src VertexID, typ EdgeType, dst VertexID) Mutation {
	return Mutation{Kind: MutDeleteEdge, Edge: Edge{Src: src, Type: typ, Dst: dst}}
}

// BatchStore is implemented by stores that can commit a group of mutations
// as one WAL commit group — many logical writes, one storage round trip.
type BatchStore interface {
	Store
	// ApplyBatch applies mutations in order. It returns the first error;
	// mutations after a failed one are not applied. Durability is
	// all-at-once: no mutation is acknowledged before the whole batch's
	// WAL records are durable.
	ApplyBatch(muts []Mutation) error
}

// ApplyMutations applies mutations through s, using the batched path when
// the store offers one and falling back to one call per mutation.
func ApplyMutations(s Store, muts []Mutation) error {
	if bs, ok := s.(BatchStore); ok {
		return bs.ApplyBatch(muts)
	}
	for i, m := range muts {
		var err error
		switch m.Kind {
		case MutAddVertex:
			err = s.AddVertex(m.Vertex)
		case MutAddEdge:
			err = s.AddEdge(m.Edge)
		case MutDeleteEdge:
			err = s.DeleteEdge(m.Edge.Src, m.Edge.Type, m.Edge.Dst)
		default:
			err = fmt.Errorf("graph: mutation %d: unknown kind %d", i, m.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// KHop expands hops levels of out-neighbors from start over edges of the
// given type, returning the set of vertices reached (excluding start).
// perVertexLimit bounds the neighbors expanded per vertex (<= 0:
// unlimited) — the multi-hop neighbor query of the Douyin-recommendation
// workload.
func KHop(s Reader, start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	return KHopBudget(s, start, typ, hops, perVertexLimit, 0)
}

// KHopBudget is KHop with a total result budget: expansion stops once
// budget vertices have been reached (<= 0: unlimited). The risk-control
// workload of Table 1 reads "10 hops and 100 edges" — a deep but bounded
// neighborhood probe.
func KHopBudget(s Reader, start VertexID, typ EdgeType, hops, perVertexLimit, budget int) (map[VertexID]struct{}, error) {
	visited := map[VertexID]struct{}{start: {}}
	frontier := []VertexID{start}
	reached := make(map[VertexID]struct{})
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var next []VertexID
		for _, v := range frontier {
			if budget > 0 && len(reached) >= budget {
				return reached, nil
			}
			err := s.Neighbors(v, typ, perVertexLimit, func(dst VertexID, _ Properties) bool {
				if _, seen := visited[dst]; !seen {
					visited[dst] = struct{}{}
					reached[dst] = struct{}{}
					next = append(next, dst)
				}
				return budget <= 0 || len(reached) < budget
			})
			if err != nil {
				return reached, err
			}
		}
		frontier = next
	}
	return reached, nil
}
