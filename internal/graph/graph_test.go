package graph

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPropsRoundTrip(t *testing.T) {
	in := Properties{
		{Name: "ts", Value: []byte{1, 2, 3, 4}},
		{Name: "weight", Value: []byte("0.5")},
		{Name: "empty", Value: nil},
	}
	out, err := DecodeProps(EncodeProps(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Name != "ts" || !bytes.Equal(out[1].Value, []byte("0.5")) {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestPropsEmpty(t *testing.T) {
	out, err := DecodeProps(EncodeProps(nil))
	if err != nil || out != nil {
		t.Fatalf("empty round trip = %+v, %v", out, err)
	}
}

func TestPropsCorrupt(t *testing.T) {
	for _, buf := range [][]byte{nil, {1}, {1, 0, 5}} {
		if _, err := DecodeProps(buf); err == nil {
			t.Fatalf("corrupt input %v decoded", buf)
		}
	}
}

func TestPropertyEncodeDecodeQuick(t *testing.T) {
	f := func(names []string, values [][]byte) bool {
		var ps Properties
		for i, n := range names {
			if len(n) > 255 {
				n = n[:255]
			}
			var v []byte
			if i < len(values) {
				v = values[i]
			}
			ps = append(ps, Property{Name: n, Value: v})
		}
		out, err := DecodeProps(EncodeProps(ps))
		if err != nil {
			return false
		}
		if len(out) != len(ps) {
			return false
		}
		for i := range ps {
			if out[i].Name != ps[i].Name || !bytes.Equal(out[i].Value, ps[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropsGet(t *testing.T) {
	ps := Properties{{Name: "a", Value: []byte("1")}}
	if v, ok := ps.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if _, ok := ps.Get("b"); ok {
		t.Fatal("found missing property")
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(typ uint16, dst uint64) bool {
		key := EdgeKey(EdgeType(typ), VertexID(dst))
		gt, gd, err := DecodeEdgeKey(key)
		return err == nil && gt == EdgeType(typ) && gd == VertexID(dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeEdgeKey([]byte{1, 2, 3}); err == nil {
		t.Fatal("short edge key decoded")
	}
}

func TestEdgeKeyOrdering(t *testing.T) {
	// Edges of one type sort together, ordered by destination.
	k1 := EdgeKey(1, 100)
	k2 := EdgeKey(1, 200)
	k3 := EdgeKey(2, 0)
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("edge key ordering broken")
	}
	lo, hi := EdgeTypeBounds(1)
	if bytes.Compare(lo, k1) > 0 || bytes.Compare(k2, hi) >= 0 || bytes.Compare(k3, hi) < 0 {
		t.Fatal("type bounds do not bracket the type's edges")
	}
	if _, hi := EdgeTypeBounds(^EdgeType(0)); hi != nil {
		t.Fatal("max edge type upper bound should be nil")
	}
}

func TestVertexKeyDistinct(t *testing.T) {
	seen := map[string]bool{}
	for id := VertexID(0); id < 50; id++ {
		for _, typ := range []VertexType{VTypeUser, VTypeVideo} {
			k := string(VertexKey(id, typ))
			if seen[k] {
				t.Fatalf("vertex key collision for id=%d typ=%d", id, typ)
			}
			seen[k] = true
		}
	}
}

// memStore is a trivial in-memory Store used to test the traversal
// helpers independent of any engine.
type memStore struct {
	vertices map[VertexID]Vertex
	adj      map[VertexID]map[EdgeType][]Edge
}

func newMemStore() *memStore {
	return &memStore{
		vertices: map[VertexID]Vertex{},
		adj:      map[VertexID]map[EdgeType][]Edge{},
	}
}

func (m *memStore) AddVertex(v Vertex) error { m.vertices[v.ID] = v; return nil }

func (m *memStore) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	v, ok := m.vertices[id]
	return v, ok, nil
}

func (m *memStore) AddEdge(e Edge) error {
	if m.adj[e.Src] == nil {
		m.adj[e.Src] = map[EdgeType][]Edge{}
	}
	m.adj[e.Src][e.Type] = append(m.adj[e.Src][e.Type], e)
	sort.Slice(m.adj[e.Src][e.Type], func(i, j int) bool {
		return m.adj[e.Src][e.Type][i].Dst < m.adj[e.Src][e.Type][j].Dst
	})
	return nil
}

func (m *memStore) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	for _, e := range m.adj[src][typ] {
		if e.Dst == dst {
			return e, true, nil
		}
	}
	return Edge{}, false, nil
}

func (m *memStore) DeleteEdge(src VertexID, typ EdgeType, dst VertexID) error {
	edges := m.adj[src][typ]
	for i, e := range edges {
		if e.Dst == dst {
			m.adj[src][typ] = append(edges[:i], edges[i+1:]...)
			return nil
		}
	}
	return nil
}

func (m *memStore) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	for i, e := range m.adj[src][typ] {
		if limit > 0 && i >= limit {
			return nil
		}
		if !fn(e.Dst, e.Props) {
			return nil
		}
	}
	return nil
}

func (m *memStore) Degree(src VertexID, typ EdgeType) (int, error) {
	return len(m.adj[src][typ]), nil
}

func TestKHop(t *testing.T) {
	s := newMemStore()
	// 1 -> 2 -> 3 -> 4, plus 1 -> 3 shortcut.
	for _, e := range []Edge{{Src: 1, Dst: 2, Type: 1}, {Src: 2, Dst: 3, Type: 1}, {Src: 3, Dst: 4, Type: 1}, {Src: 1, Dst: 3, Type: 1}} {
		if err := s.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	reached, err := KHop(s, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys(reached), []VertexID{2, 3}) {
		t.Fatalf("1-hop = %v", keys(reached))
	}
	reached, _ = KHop(s, 1, 1, 2, 0)
	if !reflect.DeepEqual(keys(reached), []VertexID{2, 3, 4}) {
		t.Fatalf("2-hop = %v", keys(reached))
	}
	reached, _ = KHop(s, 1, 1, 3, 0)
	if !reflect.DeepEqual(keys(reached), []VertexID{2, 3, 4}) {
		t.Fatalf("3-hop should not revisit: %v", keys(reached))
	}
	// Per-vertex limit caps fan-out.
	reached, _ = KHop(s, 1, 1, 1, 1)
	if len(reached) != 1 {
		t.Fatalf("limited 1-hop = %v", keys(reached))
	}
}

func keys(m map[VertexID]struct{}) []VertexID {
	out := make([]VertexID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestKHopBudget(t *testing.T) {
	s := newMemStore()
	// Star: 1 -> 2..21, then chains onward.
	for i := 2; i <= 21; i++ {
		if err := s.AddEdge(Edge{Src: 1, Dst: VertexID(i), Type: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddEdge(Edge{Src: VertexID(i), Dst: VertexID(i + 100), Type: 1}); err != nil {
			t.Fatal(err)
		}
	}
	reached, err := KHopBudget(s, 1, 1, 10, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 7 {
		t.Fatalf("budgeted khop reached %d, want 7", len(reached))
	}
	// Budget 0 = unlimited: 20 + 20 chain tails.
	reached, err = KHopBudget(s, 1, 1, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 40 {
		t.Fatalf("unbudgeted khop reached %d, want 40", len(reached))
	}
}
