// Package metrics provides lightweight, allocation-free instrumentation
// primitives shared by every BG3 subsystem: atomic counters, fixed-bucket
// latency histograms and windowed rate meters.
//
// All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter. Negative n is permitted so that callers can
// account for reclaimed resources, but most counters only grow.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value. Intended for test setup and resets.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Gauge is a settable atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max updates the gauge to n if n is larger than the current value.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// numHistBuckets is len(histBuckets); kept as a constant so the bucket
// array can live inline in the Histogram struct.
const numHistBuckets = 18

// histBuckets are the upper bounds, in microseconds, of the latency
// histogram buckets. The last bucket is unbounded.
var histBuckets = [numHistBuckets]int64{
	10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

// Histogram records durations into fixed logarithmic buckets and supports
// approximate quantile queries. The zero value is ready to use.
type Histogram struct {
	buckets [numHistBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	max     Gauge
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	idx := sort.Search(len(histBuckets), func(i int) bool { return us <= histBuckets[i] })
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	h.max.Max(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1) using
// linear interpolation inside the winning bucket. The result never exceeds
// Max: interpolating to a bucket's upper bound would otherwise report
// values larger than anything observed (a single 1µs sample must not read
// as p50=10µs).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if cum+c >= target {
			lo := int64(0)
			if i > 0 {
				lo = histBuckets[i-1]
			}
			hi := h.max.Load()
			if i < len(histBuckets) {
				hi = histBuckets[i]
			}
			v := float64(hi)
			if c > 0 {
				frac := float64(target-cum) / float64(c)
				v = float64(lo) + frac*float64(hi-lo)
			}
			if mx := h.max.Load(); v > float64(mx) {
				v = float64(mx)
			}
			return time.Duration(v) * time.Microsecond
		}
		cum += c
	}
	return h.Max()
}

// Snapshot returns a human-readable one-line summary.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// HistogramSnapshot is the JSON-stable summary of a latency histogram, in
// microseconds.
type HistogramSnapshot struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// Summary returns the histogram's JSON-stable summary.
func (h *Histogram) Summary() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		MeanUS: h.Mean().Microseconds(),
		P50US:  h.Quantile(0.50).Microseconds(),
		P99US:  h.Quantile(0.99).Microseconds(),
		MaxUS:  h.Max().Microseconds(),
	}
}

// intHistCap is the largest exactly-tracked IntHistogram value; larger
// observations land in a shared overflow bucket.
const intHistCap = 16

// IntHistogram records small non-negative integer values (per-read storage
// fan-out, batch sizes) into exact buckets 0..intHistCap plus one overflow
// bucket. Quantiles are exact within the tracked range; the overflow bucket
// reports the observed maximum. The zero value is ready to use.
type IntHistogram struct {
	buckets [intHistCap + 2]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

// Observe records one value (negative values clamp to zero).
func (h *IntHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	idx := v
	if idx > intHistCap {
		idx = intHistCap + 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Max(v)
}

// Count returns the number of observations.
func (h *IntHistogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed value.
func (h *IntHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observed value.
func (h *IntHistogram) Max() int64 { return h.max.Load() }

// Quantile returns the q-quantile (0 < q <= 1); exact for values within
// the tracked range, the observed maximum for overflow observations.
func (h *IntHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i > intHistCap {
				return h.max.Load()
			}
			return int64(i)
		}
	}
	return h.max.Load()
}

// IntHistogramSnapshot is the JSON-stable summary of an IntHistogram.
type IntHistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary returns the histogram's JSON-stable summary.
func (h *IntHistogram) Summary() IntHistogramSnapshot {
	return IntHistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// FaultCounters aggregates the fault-injection and resilience accounting
// shared across subsystems: faults injected by the storage fault plan,
// bounded retries spent by the WAL and flush paths absorbing them, and
// successful recoveries (crash recovery, follower resync).
type FaultCounters struct {
	FaultsInjected Counter
	Retries        Counter
	Recoveries     Counter
}

// Snapshot returns a one-line summary.
func (c *FaultCounters) Snapshot() string {
	return fmt.Sprintf("faults_injected=%d retries=%d recoveries=%d",
		c.FaultsInjected.Load(), c.Retries.Load(), c.Recoveries.Load())
}

// Faults is the process-wide fault accounting instance. Counters are
// monotonic, so concurrent tests sharing it stay correct.
var Faults FaultCounters

// Meter measures event throughput over its lifetime.
type Meter struct {
	start time.Time
	n     atomic.Int64
	mu    sync.Mutex
}

// NewMeter returns a meter whose clock starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) { m.n.Add(n) }

// Count returns the number of recorded events.
func (m *Meter) Count() int64 { return m.n.Load() }

// Rate returns events per second since the meter was created.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.n.Load()) / elapsed
}

// Reset zeroes the meter and restarts its clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n.Store(0)
	m.start = time.Now()
}
