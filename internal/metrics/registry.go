package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates the payload of a snapshot Value.
type Kind string

const (
	KindCounter      Kind = "counter"
	KindGauge        Kind = "gauge"
	KindRatio        Kind = "ratio"
	KindHistogram    Kind = "histogram"
	KindIntHistogram Kind = "int_histogram"
)

// Value is one instrument's reading inside a Snapshot. Exactly one of the
// payload fields is meaningful, selected by Kind; the others marshal away.
type Value struct {
	Kind         Kind                  `json:"kind"`
	Value        int64                 `json:"value,omitempty"`
	Ratio        float64               `json:"ratio,omitempty"`
	Histogram    *HistogramSnapshot    `json:"histogram,omitempty"`
	IntHistogram *IntHistogramSnapshot `json:"int_histogram,omitempty"`
}

// Snapshot is a point-in-time reading of every registered instrument,
// keyed by dotted instrument name (e.g. "storage.read_ops").
type Snapshot map[string]Value

// JSON renders the snapshot as stable, indented JSON. Map keys are emitted
// in sorted order by encoding/json, so output is byte-stable for a given
// set of readings.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as sorted "name value" lines for terminals.
func (s Snapshot) Text() string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		v := s[name]
		switch v.Kind {
		case KindRatio:
			fmt.Fprintf(&b, "%-40s %.4f\n", name, v.Ratio)
		case KindHistogram:
			h := v.Histogram
			fmt.Fprintf(&b, "%-40s n=%d mean=%dus p50=%dus p99=%dus max=%dus\n",
				name, h.Count, h.MeanUS, h.P50US, h.P99US, h.MaxUS)
		case KindIntHistogram:
			h := v.IntHistogram
			fmt.Fprintf(&b, "%-40s n=%d mean=%.2f p50=%d p99=%d max=%d\n",
				name, h.Count, h.Mean, h.P50, h.P99, h.Max)
		default:
			fmt.Fprintf(&b, "%-40s %d\n", name, v.Value)
		}
	}
	return b.String()
}

// Registry is the system-wide instrument directory. Subsystems register
// their counters, gauges and histograms (or probe functions over state they
// already maintain) under dotted names; Snapshot reads everything at once.
//
// Registration is cheap and typically happens once at startup; reads of the
// underlying instruments stay lock-free.
type Registry struct {
	mu     sync.RWMutex
	probes map[string]func() Value
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{probes: make(map[string]func() Value)}
}

// register installs a probe, replacing any previous probe with that name.
func (r *Registry) register(name string, probe func() Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.probes == nil {
		r.probes = make(map[string]func() Value)
	}
	r.probes[name] = probe
}

// Counter creates, registers and returns a counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, c)
	return c
}

// RegisterCounter adopts an existing counter.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.register(name, func() Value {
		return Value{Kind: KindCounter, Value: c.Load()}
	})
}

// Gauge creates, registers and returns a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, g)
	return g
}

// RegisterGauge adopts an existing gauge.
func (r *Registry) RegisterGauge(name string, g *Gauge) {
	r.register(name, func() Value {
		return Value{Kind: KindGauge, Value: g.Load()}
	})
}

// Histogram creates, registers and returns a latency histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, h)
	return h
}

// RegisterHistogram adopts an existing latency histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.register(name, func() Value {
		s := h.Summary()
		return Value{Kind: KindHistogram, Histogram: &s}
	})
}

// IntHistogram creates, registers and returns an integer histogram.
func (r *Registry) IntHistogram(name string) *IntHistogram {
	h := &IntHistogram{}
	r.RegisterIntHistogram(name, h)
	return h
}

// RegisterIntHistogram adopts an existing integer histogram.
func (r *Registry) RegisterIntHistogram(name string, h *IntHistogram) {
	r.register(name, func() Value {
		s := h.Summary()
		return Value{Kind: KindIntHistogram, IntHistogram: &s}
	})
}

// CounterFunc registers a counter backed by a read function, for subsystems
// that already maintain their own accounting.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.register(name, func() Value {
		return Value{Kind: KindCounter, Value: fn()}
	})
}

// GaugeFunc registers a gauge backed by a read function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.register(name, func() Value {
		return Value{Kind: KindGauge, Value: fn()}
	})
}

// RatioFunc registers a derived ratio (hit rates, write amplification)
// backed by a read function.
func (r *Registry) RatioFunc(name string, fn func() float64) {
	r.register(name, func() Value {
		return Value{Kind: KindRatio, Ratio: fn()}
	})
}

// Snapshot reads every registered instrument. Instruments are read without
// a global pause, so the snapshot is per-instrument atomic rather than
// globally consistent — fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	probes := make(map[string]func() Value, len(r.probes))
	for name, p := range r.probes {
		probes[name] = p
	}
	r.mu.RUnlock()

	out := make(Snapshot, len(probes))
	for name, p := range probes {
		out[name] = p()
	}
	return out
}

// Names returns the sorted instrument names currently registered.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.probes))
	for name := range r.probes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Register exposes the fault counters under the "faults." prefix.
func (c *FaultCounters) Register(r *Registry) {
	r.RegisterCounter("faults.injected", &c.FaultsInjected)
	r.RegisterCounter("faults.retries", &c.Retries)
	r.RegisterCounter("faults.recoveries", &c.Recoveries)
}
