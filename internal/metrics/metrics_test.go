package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("counter after negative add = %d, want 3", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("counter after store = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(10)
	g.Max(5)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Max(20)
	if got := g.Load(); got != 20 {
		t.Fatalf("gauge = %d, want 20", got)
	}
	g.Set(3)
	g.Add(4)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			g.Max(n)
		}(int64(i))
	}
	wg.Wait()
	if got := g.Load(); got != 100 {
		t.Fatalf("gauge = %d, want 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should report zeros: %s", h.Snapshot())
	}
}

func TestHistogramMeanAndMax(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := h.Mean(); got != 200*time.Microsecond {
		t.Fatalf("mean = %v, want 200µs", got)
	}
	if got := h.Max(); got != 300*time.Microsecond {
		t.Fatalf("max = %v, want 300µs", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// p50 of a uniform 1..1000µs distribution should be near 500µs
	// (bucket interpolation makes it approximate).
	if p50 < 250*time.Microsecond || p50 > 750*time.Microsecond {
		t.Fatalf("p50 = %v, want roughly 500µs", p50)
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if got := h.Quantile(-1); got <= 0 {
		t.Fatalf("Quantile(-1) = %v, want > 0", got)
	}
	if got := h.Quantile(2); got <= 0 {
		t.Fatalf("Quantile(2) = %v, want > 0", got)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	if got := m.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	time.Sleep(10 * time.Millisecond)
	if r := m.Rate(); r <= 0 {
		t.Fatalf("rate = %f, want > 0", r)
	}
	m.Reset()
	if got := m.Count(); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	cases := []struct {
		name    string
		samples []time.Duration
	}{
		{"empty", nil},
		{"single-1us", []time.Duration{1 * time.Microsecond}},
		{"single-sub-bucket", []time.Duration{3 * time.Microsecond}},
		{"single-mid-bucket", []time.Duration{60 * time.Microsecond}},
		{"two-samples", []time.Duration{1 * time.Microsecond, 7 * time.Microsecond}},
		{"overflow-bucket", []time.Duration{10 * time.Second}},
		{"mixed-with-overflow", []time.Duration{5 * time.Microsecond, 20 * time.Second}},
	}
	qs := []float64{0.01, 0.5, 0.9, 0.99, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, d := range tc.samples {
				h.Observe(d)
			}
			for _, q := range qs {
				if got := h.Quantile(q); got > h.Max() {
					t.Fatalf("Quantile(%v) = %v exceeds Max() = %v", q, got, h.Max())
				}
			}
		})
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	// The pre-fix interpolation reported p50=10µs for a single 1µs sample
	// (the first bucket's upper bound).
	var h Histogram
	h.Observe(1 * time.Microsecond)
	if got := h.Quantile(0.5); got != 1*time.Microsecond {
		t.Fatalf("p50 of single 1µs sample = %v, want 1µs", got)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Second) // beyond the last bounded bucket (5s)
	if got := h.Quantile(0.99); got != 10*time.Second {
		t.Fatalf("p99 of single overflow sample = %v, want 10s", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	s := h.Summary()
	if s.Count != 2 || s.MeanUS != 200 || s.MaxUS != 300 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50US > s.P99US || s.P99US > s.MaxUS {
		t.Fatalf("summary quantiles not monotone: %+v", s)
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty int histogram should report zeros")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("p99 = %d, want 2", got)
	}
	if got := h.Max(); got != 2 {
		t.Fatalf("max = %d, want 2", got)
	}
	if got := h.Mean(); got != 1.1 {
		t.Fatalf("mean = %f, want 1.1", got)
	}
}

func TestIntHistogramOverflow(t *testing.T) {
	var h IntHistogram
	h.Observe(1000) // far past the exact range
	if got := h.Quantile(0.5); got != 1000 {
		t.Fatalf("p50 of overflow sample = %d, want 1000", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("max = %d, want 1000", got)
	}
	h.Observe(-5) // clamps to zero
	if got := h.Quantile(0.01); got != 0 {
		t.Fatalf("low quantile = %d, want 0", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Add(7)
	g := r.Gauge("test.gauge")
	g.Set(42)
	h := r.Histogram("test.latency")
	h.Observe(100 * time.Microsecond)
	ih := r.IntHistogram("test.fanout")
	ih.Observe(2)
	r.RatioFunc("test.ratio", func() float64 { return 0.5 })
	r.CounterFunc("test.counter_fn", func() int64 { return 11 })
	r.GaugeFunc("test.gauge_fn", func() int64 { return -3 })

	snap := r.Snapshot()
	if v := snap["test.counter"]; v.Kind != KindCounter || v.Value != 7 {
		t.Fatalf("counter value = %+v", v)
	}
	if v := snap["test.gauge"]; v.Kind != KindGauge || v.Value != 42 {
		t.Fatalf("gauge value = %+v", v)
	}
	if v := snap["test.latency"]; v.Kind != KindHistogram || v.Histogram == nil || v.Histogram.Count != 1 {
		t.Fatalf("histogram value = %+v", v)
	}
	if v := snap["test.fanout"]; v.Kind != KindIntHistogram || v.IntHistogram == nil || v.IntHistogram.P50 != 2 {
		t.Fatalf("int histogram value = %+v", v)
	}
	if v := snap["test.ratio"]; v.Kind != KindRatio || v.Ratio != 0.5 {
		t.Fatalf("ratio value = %+v", v)
	}
	if v := snap["test.counter_fn"]; v.Value != 11 {
		t.Fatalf("counter fn value = %+v", v)
	}
	if v := snap["test.gauge_fn"]; v.Value != -3 {
		t.Fatalf("gauge fn value = %+v", v)
	}

	data, err := snap.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded map[string]Value
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded) != len(snap) {
		t.Fatalf("round-trip lost keys: %d != %d", len(decoded), len(snap))
	}

	text := snap.Text()
	for _, name := range r.Names() {
		if !strings.Contains(text, name) {
			t.Fatalf("Text() missing %q:\n%s", name, text)
		}
	}
}

func TestRegistryFaultCounters(t *testing.T) {
	r := NewRegistry()
	var fc FaultCounters
	fc.Register(r)
	fc.FaultsInjected.Inc()
	fc.Retries.Add(3)
	snap := r.Snapshot()
	if v := snap["faults.injected"]; v.Value != 1 {
		t.Fatalf("faults.injected = %+v", v)
	}
	if v := snap["faults.retries"]; v.Value != 3 {
		t.Fatalf("faults.retries = %+v", v)
	}
	if v := snap["faults.recoveries"]; v.Value != 0 {
		t.Fatalf("faults.recoveries = %+v", v)
	}
}
