package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("counter after negative add = %d, want 3", got)
	}
	c.Store(0)
	if got := c.Load(); got != 0 {
		t.Fatalf("counter after store = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(10)
	g.Max(5)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Max(20)
	if got := g.Load(); got != 20 {
		t.Fatalf("gauge = %d, want 20", got)
	}
	g.Set(3)
	g.Add(4)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			g.Max(n)
		}(int64(i))
	}
	wg.Wait()
	if got := g.Load(); got != 100 {
		t.Fatalf("gauge = %d, want 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should report zeros: %s", h.Snapshot())
	}
}

func TestHistogramMeanAndMax(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := h.Mean(); got != 200*time.Microsecond {
		t.Fatalf("mean = %v, want 200µs", got)
	}
	if got := h.Max(); got != 300*time.Microsecond {
		t.Fatalf("max = %v, want 300µs", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// p50 of a uniform 1..1000µs distribution should be near 500µs
	// (bucket interpolation makes it approximate).
	if p50 < 250*time.Microsecond || p50 > 750*time.Microsecond {
		t.Fatalf("p50 = %v, want roughly 500µs", p50)
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if got := h.Quantile(-1); got <= 0 {
		t.Fatalf("Quantile(-1) = %v, want > 0", got)
	}
	if got := h.Quantile(2); got <= 0 {
		t.Fatalf("Quantile(2) = %v, want > 0", got)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	if got := m.Count(); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	time.Sleep(10 * time.Millisecond)
	if r := m.Rate(); r <= 0 {
		t.Fatalf("rate = %f, want > 0", r)
	}
	m.Reset()
	if got := m.Count(); got != 0 {
		t.Fatalf("count after reset = %d, want 0", got)
	}
}
