package pattern

import (
	"testing"

	"bg3/internal/core"
	"bg3/internal/graph"
)

func newStore(t *testing.T, edges []graph.Edge) graph.Store {
	t.Helper()
	e, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	for _, ed := range edges {
		if err := e.AddEdge(ed); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func tedge(from, to graph.VertexID) graph.Edge {
	return graph.Edge{Src: from, Dst: to, Type: graph.ETypeTransfer}
}

func TestPatternValidate(t *testing.T) {
	ok := Pattern{N: 3, Edges: []PEdge{{0, 1, 1}, {1, 2, 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Pattern{N: 3, Edges: []PEdge{{0, 1, 1}}} // vertex 2 unreachable
	if err := bad.Validate(); err == nil {
		t.Fatal("disconnected pattern validated")
	}
	oob := Pattern{N: 2, Edges: []PEdge{{0, 5, 1}}}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range edge validated")
	}
	if err := (Pattern{N: 0}).Validate(); err == nil {
		t.Fatal("empty pattern validated")
	}
}

func TestMatchPath(t *testing.T) {
	s := newStore(t, []graph.Edge{
		tedge(1, 2), tedge(2, 3), tedge(1, 4), tedge(4, 3),
	})
	// Two-hop path pattern a->b->c anchored at 1: (1,2,3) and (1,4,3).
	p := Pattern{N: 3, Edges: []PEdge{
		{0, 1, graph.ETypeTransfer}, {1, 2, graph.ETypeTransfer},
	}}
	matches, err := Match(s, p, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v, want 2", matches)
	}
	for _, m := range matches {
		if m[0] != 1 || m[2] != 3 {
			t.Fatalf("bad binding %v", m)
		}
	}
}

func TestMatchTriangle(t *testing.T) {
	s := newStore(t, []graph.Edge{
		tedge(1, 2), tedge(2, 3), tedge(3, 1), // triangle
		tedge(1, 5), tedge(5, 6), // dead end
	})
	tri := Pattern{N: 3, Edges: []PEdge{
		{0, 1, graph.ETypeTransfer},
		{1, 2, graph.ETypeTransfer},
		{2, 0, graph.ETypeTransfer}, // closing edge: checked at verify time
	}}
	matches, err := Match(s, tri, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0][0] != 1 || matches[0][1] != 2 || matches[0][2] != 3 {
		t.Fatalf("triangle matches = %v", matches)
	}
}

func TestMatchInjective(t *testing.T) {
	// a->b->c must not bind b and c to the same data vertex.
	s := newStore(t, []graph.Edge{tedge(1, 2), tedge(2, 2)}) // self-loop on 2
	p := Pattern{N: 3, Edges: []PEdge{
		{0, 1, graph.ETypeTransfer}, {1, 2, graph.ETypeTransfer},
	}}
	matches, err := Match(s, p, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("non-injective match accepted: %v", matches)
	}
}

func TestMatchMaxMatches(t *testing.T) {
	var edges []graph.Edge
	for i := 2; i < 12; i++ {
		edges = append(edges, tedge(1, graph.VertexID(i)))
	}
	s := newStore(t, edges)
	p := Pattern{N: 2, Edges: []PEdge{{0, 1, graph.ETypeTransfer}}}
	matches, err := Match(s, p, []graph.VertexID{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("matches = %d, want 3 (capped)", len(matches))
	}
}

func TestMatchTypeSensitive(t *testing.T) {
	s := newStore(t, []graph.Edge{
		{Src: 1, Dst: 2, Type: graph.ETypeFollow},
		{Src: 1, Dst: 3, Type: graph.ETypeTransfer},
	})
	p := Pattern{N: 2, Edges: []PEdge{{0, 1, graph.ETypeTransfer}}}
	matches, err := Match(s, p, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0][1] != 3 {
		t.Fatalf("matches = %v, want only the transfer edge", matches)
	}
}

func TestFindCycles(t *testing.T) {
	s := newStore(t, []graph.Edge{
		tedge(1, 2), tedge(2, 3), tedge(3, 1), // 3-cycle
		tedge(1, 4), tedge(4, 1), // 2-cycle
		tedge(3, 5), tedge(5, 6), // dead end
	})
	cycles, err := FindCycles(s, 1, graph.ETypeTransfer, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v, want 2", cycles)
	}
	lens := map[int]bool{}
	for _, c := range cycles {
		if c[0] != 1 {
			t.Fatalf("cycle %v does not start at 1", c)
		}
		lens[len(c)] = true
	}
	if !lens[2] || !lens[3] {
		t.Fatalf("expected a 2-cycle and a 3-cycle, got %v", cycles)
	}
}

func TestFindCyclesLengthBound(t *testing.T) {
	s := newStore(t, []graph.Edge{
		tedge(1, 2), tedge(2, 3), tedge(3, 4), tedge(4, 1), // 4-cycle
	})
	cycles, err := FindCycles(s, 1, graph.ETypeTransfer, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 0 {
		t.Fatalf("length bound 3 found %v", cycles)
	}
	cycles, _ = FindCycles(s, 1, graph.ETypeTransfer, 4, 0)
	if len(cycles) != 1 {
		t.Fatalf("length bound 4 found %v", cycles)
	}
}

func TestFindCyclesMaxCycles(t *testing.T) {
	var edges []graph.Edge
	for i := 2; i < 10; i++ {
		edges = append(edges, tedge(1, graph.VertexID(i)), tedge(graph.VertexID(i), 1))
	}
	s := newStore(t, edges)
	cycles, err := FindCycles(s, 1, graph.ETypeTransfer, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 4 {
		t.Fatalf("cycles = %d, want 4 (capped)", len(cycles))
	}
}

func TestFindCyclesNoCycle(t *testing.T) {
	s := newStore(t, []graph.Edge{tedge(1, 2), tedge(2, 3)})
	cycles, err := FindCycles(s, 1, graph.ETypeTransfer, 5, 0)
	if err != nil || len(cycles) != 0 {
		t.Fatalf("cycles = %v, %v", cycles, err)
	}
}

func TestMatchMultipleSeeds(t *testing.T) {
	s := newStore(t, []graph.Edge{
		tedge(1, 10), tedge(2, 20), tedge(3, 30),
	})
	p := Pattern{N: 2, Edges: []PEdge{{0, 1, graph.ETypeTransfer}}}
	matches, err := Match(s, p, []graph.VertexID{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("matches = %v", matches)
	}
}

func TestMatchDiamond(t *testing.T) {
	// Diamond: a->b, a->c, b->d, c->d — pattern with two paths converging.
	s := newStore(t, []graph.Edge{
		tedge(1, 2), tedge(1, 3), tedge(2, 4), tedge(3, 4),
	})
	p := Pattern{N: 4, Edges: []PEdge{
		{0, 1, graph.ETypeTransfer},
		{0, 2, graph.ETypeTransfer},
		{1, 3, graph.ETypeTransfer},
		{2, 3, graph.ETypeTransfer},
	}}
	matches, err := Match(s, p, []graph.VertexID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two bindings: (b,c) = (2,3) and (3,2).
	if len(matches) != 2 {
		t.Fatalf("diamond matches = %v", matches)
	}
	for _, m := range matches {
		if m[0] != 1 || m[3] != 4 {
			t.Fatalf("bad diamond binding %v", m)
		}
	}
}
