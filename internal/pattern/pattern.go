// Package pattern implements the subgraph pattern matching and cycle
// (loop) detection used by the financial-risk-control workload (§4.1):
// anti-money-laundering checks run small query patterns — most notably
// transfer loops — against the continuously ingested transaction graph,
// typically on RO nodes so the matching scales out.
//
// The matcher is a backtracking embedder in the style of in-memory
// subgraph matching studies [32]: pattern vertices are bound one at a
// time, each new vertex reached through an out-edge from an already-bound
// vertex, with candidate sets drawn from the data graph's adjacency lists.
package pattern

import (
	"fmt"

	"bg3/internal/graph"
)

// PEdge is one edge of a query pattern between pattern-vertex indices.
type PEdge struct {
	From int
	To   int
	Type graph.EdgeType
}

// Pattern is a small query graph. Pattern vertices are indices 0..N-1;
// vertex 0 is the anchor bound to a seed vertex of the data graph.
type Pattern struct {
	N     int
	Edges []PEdge
}

// Validate checks that the pattern is well-formed and forward-connected:
// every vertex other than the anchor must be reachable from vertex 0
// following pattern edges in their direction (the matcher only expands
// out-edges).
func (p Pattern) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("pattern: need at least one vertex")
	}
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= p.N || e.To < 0 || e.To >= p.N {
			return fmt.Errorf("pattern: edge %d->%d out of range", e.From, e.To)
		}
	}
	reach := make([]bool, p.N)
	reach[0] = true
	for changed := true; changed; {
		changed = false
		for _, e := range p.Edges {
			if reach[e.From] && !reach[e.To] {
				reach[e.To] = true
				changed = true
			}
		}
	}
	for i, r := range reach {
		if !r {
			return fmt.Errorf("pattern: vertex %d unreachable from anchor via forward edges", i)
		}
	}
	return nil
}

// Match finds embeddings of p anchored at each seed, returning up to
// maxMatches bindings (maxMatches <= 0: unlimited). A binding maps pattern
// vertex i to binding[i]. Bindings are injective (isomorphic matching).
func Match(s graph.Reader, p Pattern, seeds []graph.VertexID, maxMatches int) ([][]graph.VertexID, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &matcher{s: s, p: p, max: maxMatches}
	// Matching order: anchor first, then repeatedly pick an unbound vertex
	// reachable via a forward edge from a bound one.
	order, parents := planOrder(p)
	for _, seed := range seeds {
		binding := make([]graph.VertexID, p.N)
		used := map[graph.VertexID]bool{seed: true}
		binding[0] = seed
		if err := m.extend(binding, used, order, parents, 1); err != nil {
			return m.results, err
		}
		if m.max > 0 && len(m.results) >= m.max {
			break
		}
	}
	return m.results, nil
}

// planOrder returns the binding order (starting with 0) and, for each
// position after the first, the pattern edge used to generate candidates.
func planOrder(p Pattern) (order []int, parents []PEdge) {
	bound := make([]bool, p.N)
	bound[0] = true
	order = []int{0}
	parents = []PEdge{{}} // placeholder for the anchor
	for len(order) < p.N {
		for _, e := range p.Edges {
			if bound[e.From] && !bound[e.To] {
				bound[e.To] = true
				order = append(order, e.To)
				parents = append(parents, e)
				break
			}
		}
	}
	return order, parents
}

type matcher struct {
	s       graph.Reader
	p       Pattern
	max     int
	results [][]graph.VertexID
}

func (m *matcher) extend(binding []graph.VertexID, used map[graph.VertexID]bool, order []int, parents []PEdge, pos int) error {
	if m.max > 0 && len(m.results) >= m.max {
		return nil
	}
	if pos == len(order) {
		// All vertices bound; verify the pattern edges not used for
		// candidate generation.
		ok, err := m.verify(binding)
		if err != nil {
			return err
		}
		if ok {
			m.results = append(m.results, append([]graph.VertexID(nil), binding...))
		}
		return nil
	}
	pv := order[pos]
	pe := parents[pos]
	src := binding[pe.From]
	var cands []graph.VertexID
	if err := m.s.Neighbors(src, pe.Type, 0, func(dst graph.VertexID, _ graph.Properties) bool {
		if !used[dst] {
			cands = append(cands, dst)
		}
		return true
	}); err != nil {
		return err
	}
	for _, c := range cands {
		binding[pv] = c
		used[c] = true
		if err := m.extend(binding, used, order, parents, pos+1); err != nil {
			return err
		}
		delete(used, c)
		if m.max > 0 && len(m.results) >= m.max {
			return nil
		}
	}
	return nil
}

// verify checks every pattern edge against the data graph.
func (m *matcher) verify(binding []graph.VertexID) (bool, error) {
	for _, e := range m.p.Edges {
		_, ok, err := m.s.GetEdge(binding[e.From], e.Type, binding[e.To])
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// FindCycles returns simple cycles through start of length 2..maxLen over
// edges of the given type — the anti-money-laundering loop detection. Each
// cycle is reported as the vertex sequence beginning and ending at start
// (the final element is omitted). maxCycles bounds the result (<= 0:
// unlimited).
func FindCycles(s graph.Reader, start graph.VertexID, typ graph.EdgeType, maxLen, maxCycles int) ([][]graph.VertexID, error) {
	var out [][]graph.VertexID
	path := []graph.VertexID{start}
	onPath := map[graph.VertexID]bool{start: true}
	var dfs func(cur graph.VertexID) error
	dfs = func(cur graph.VertexID) error {
		if maxCycles > 0 && len(out) >= maxCycles {
			return nil
		}
		var nexts []graph.VertexID
		if err := s.Neighbors(cur, typ, 0, func(dst graph.VertexID, _ graph.Properties) bool {
			nexts = append(nexts, dst)
			return true
		}); err != nil {
			return err
		}
		for _, nxt := range nexts {
			if nxt == start && len(path) >= 2 {
				out = append(out, append([]graph.VertexID(nil), path...))
				if maxCycles > 0 && len(out) >= maxCycles {
					return nil
				}
				continue
			}
			if onPath[nxt] || len(path) >= maxLen {
				continue
			}
			path = append(path, nxt)
			onPath[nxt] = true
			if err := dfs(nxt); err != nil {
				return err
			}
			onPath[nxt] = false
			path = path[:len(path)-1]
		}
		return nil
	}
	if maxLen < 2 {
		return nil, nil
	}
	if err := dfs(start); err != nil {
		return out, err
	}
	return out, nil
}
