package netsim

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLosslessLinkDeliversEverything(t *testing.T) {
	l := NewLink(0, 0, 0, 1)
	var got atomic.Int64
	for i := 0; i < 100; i++ {
		if !l.Send(func() { got.Add(1) }) {
			t.Fatal("lossless link dropped a message")
		}
	}
	if got.Load() != 100 {
		t.Fatalf("delivered = %d, want 100", got.Load())
	}
	s := l.Stats()
	if s.Sent != 100 || s.Dropped != 0 || s.Delivered != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFullLossDropsEverything(t *testing.T) {
	l := NewLink(1.0, 0, 0, 1)
	for i := 0; i < 50; i++ {
		if l.Send(func() { t.Error("delivered through a 100%-loss link") }) {
			t.Fatal("Send reported survival on a 100%-loss link")
		}
	}
	if s := l.Stats(); s.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", s.Dropped)
	}
}

func TestLossRateApproximation(t *testing.T) {
	const n, p = 20000, 0.1
	l := NewLink(p, 0, 0, 42)
	for i := 0; i < n; i++ {
		l.Send(func() {})
	}
	got := float64(l.Stats().Dropped) / n
	if math.Abs(got-p) > 0.02 {
		t.Fatalf("empirical loss = %.3f, want ~%.2f", got, p)
	}
}

func TestLatencyDefersDelivery(t *testing.T) {
	l := NewLink(0, 20*time.Millisecond, 0, 1)
	var delivered atomic.Bool
	start := time.Now()
	done := make(chan struct{})
	l.Send(func() { delivered.Store(true); close(done) })
	if delivered.Load() {
		t.Fatal("delivery happened synchronously despite latency")
	}
	<-done
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", elapsed)
	}
}

func TestConcurrentSends(t *testing.T) {
	l := NewLink(0.5, 0, 0, 7)
	var wg sync.WaitGroup
	var delivered atomic.Int64
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Send(func() { delivered.Add(1) })
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.Sent != workers*per {
		t.Fatalf("sent = %d, want %d", s.Sent, workers*per)
	}
	if s.Delivered+s.Dropped != s.Sent {
		t.Fatalf("delivered(%d)+dropped(%d) != sent(%d)", s.Delivered, s.Dropped, s.Sent)
	}
	if delivered.Load() != s.Delivered {
		t.Fatalf("callbacks = %d, stats say %d", delivered.Load(), s.Delivered)
	}
}

func TestJitterSpreadsDelivery(t *testing.T) {
	l := NewLink(0, 5*time.Millisecond, 10*time.Millisecond, 3)
	var times []time.Duration
	var mu sync.Mutex
	done := make(chan struct{}, 16)
	start := time.Now()
	for i := 0; i < 16; i++ {
		l.Send(func() {
			mu.Lock()
			times = append(times, time.Since(start))
			mu.Unlock()
			done <- struct{}{}
		})
	}
	for i := 0; i < 16; i++ {
		<-done
	}
	mu.Lock()
	defer mu.Unlock()
	var min, max time.Duration = time.Hour, 0
	for _, d := range times {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min < 2*time.Millisecond {
		t.Fatalf("jitter did not spread deliveries: min=%v max=%v", min, max)
	}
}
