// Package netsim provides a minimal in-process lossy network used to model
// ByteGraph's legacy leader-follower synchronization, which forwards write
// commands from the RW node to RO nodes over the datacenter network. Under
// high load that path drops and reorders packets; the Fig. 12 experiment
// dials the loss rate from 1% to 10% and measures how much data RO nodes
// miss.
package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// Link is a unidirectional, unreliable message channel. It is safe for
// concurrent use.
type Link struct {
	mu       sync.Mutex
	rng      *rand.Rand
	lossRate float64
	latency  time.Duration
	jitter   time.Duration

	sent      int64
	dropped   int64
	delivered int64
}

// NewLink creates a link that drops each message independently with
// probability lossRate and delays delivered messages by latency plus a
// uniform jitter in [0, jitter). seed makes experiments reproducible.
func NewLink(lossRate float64, latency, jitter time.Duration, seed int64) *Link {
	return &Link{
		rng:      rand.New(rand.NewSource(seed)),
		lossRate: lossRate,
		latency:  latency,
		jitter:   jitter,
	}
}

// Send transmits one message. deliver runs on a separate goroutine after
// the link's delay unless the message is dropped. Send returns immediately
// (fire-and-forget, like the asynchronous forwarding it models) and reports
// whether the message survived the loss roll.
func (l *Link) Send(deliver func()) bool {
	l.mu.Lock()
	l.sent++
	drop := l.rng.Float64() < l.lossRate
	var delay time.Duration
	if !drop {
		l.delivered++
		delay = l.latency
		if l.jitter > 0 {
			delay += time.Duration(l.rng.Int63n(int64(l.jitter)))
		}
	} else {
		l.dropped++
	}
	l.mu.Unlock()
	if drop {
		return false
	}
	if delay <= 0 {
		deliver()
		return true
	}
	go func() {
		time.Sleep(delay)
		deliver()
	}()
	return true
}

// LinkStats is a snapshot of a link's counters.
type LinkStats struct {
	Sent      int64
	Dropped   int64
	Delivered int64
}

// Stats returns a snapshot.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{Sent: l.sent, Dropped: l.dropped, Delivered: l.delivered}
}

// LossRate returns the configured loss probability.
func (l *Link) LossRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lossRate
}
