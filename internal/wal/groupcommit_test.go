package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bg3/internal/storage"
)

// TestGroupCommitterProperty drives the committer with random record sizes,
// writer counts, and arrival jitter, and checks the group-commit contract
// from the outside:
//
//   - every record is acked exactly once, successfully, with a distinct LSN;
//   - LSNs are gapless and assigned in enqueue order;
//   - the WAL's group envelopes partition the LSN space contiguously, in
//     order, and no flush exceeds MaxBatch (flush boundaries are externally
//     observable: one AppendAssigned group per storage entry).
func TestGroupCommitterProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		writers := 2 + rng.Intn(8)
		perWriter := 10 + rng.Intn(40)
		maxBatch := 1 + rng.Intn(24)
		var delay time.Duration
		if rng.Intn(2) == 1 {
			delay = time.Duration(rng.Intn(500)) * time.Microsecond
		}
		queueDepth := maxBatch + rng.Intn(64)

		st := storage.Open(&storage.Options{WriteLatency: time.Duration(rng.Intn(300)) * time.Microsecond})
		w := NewWriter(st)
		c := NewGroupCommitter(w, GroupCommitterOptions{
			MaxBatch:   maxBatch,
			MaxDelay:   delay,
			QueueDepth: queueDepth,
		})

		total := writers * perWriter
		type ack struct {
			lsn LSN
			err error
		}
		acks := make(chan ack, total)
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed*1000 + int64(id)))
				for j := 0; j < perWriter; j++ {
					val := bytes.Repeat([]byte{byte(id)}, wrng.Intn(128))
					lsn, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(id), byte(j)}, Value: val})
					acks <- ack{lsn, err}
					if wrng.Intn(4) == 0 {
						time.Sleep(time.Duration(wrng.Intn(200)) * time.Microsecond)
					}
				}
			}(i)
		}
		wg.Wait()
		c.Stop()
		close(acks)

		seen := make(map[LSN]bool)
		for a := range acks {
			if a.err != nil {
				t.Fatalf("seed %d: ack error: %v", seed, a.err)
			}
			if seen[a.lsn] {
				t.Fatalf("seed %d: LSN %d acked twice", seed, a.lsn)
			}
			seen[a.lsn] = true
		}
		if len(seen) != total {
			t.Fatalf("seed %d: acks = %d, want %d", seed, len(seen), total)
		}
		for l := LSN(1); l <= LSN(total); l++ {
			if !seen[l] {
				t.Fatalf("seed %d: LSN %d never acked — sequence has a hole", seed, l)
			}
		}

		groups, err := NewReader(st).PollGroups()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		next := LSN(1)
		for gi, grp := range groups {
			if len(grp) > maxBatch {
				t.Fatalf("seed %d: group %d has %d records, MaxBatch %d", seed, gi, len(grp), maxBatch)
			}
			for _, rec := range grp {
				if rec.LSN != next {
					t.Fatalf("seed %d: group %d: LSN %d, want %d — groups must partition the log in order",
						seed, gi, rec.LSN, next)
				}
				next++
			}
		}
		if next != LSN(total)+1 {
			t.Fatalf("seed %d: WAL holds %d records, want %d", seed, next-1, total)
		}

		flushes, records := c.BatchStats()
		if records != int64(total) {
			t.Fatalf("seed %d: committed records = %d, want %d", seed, records, total)
		}
		if c.GroupSize().Count() != flushes {
			t.Fatalf("seed %d: group_size observations = %d, flushes = %d",
				seed, c.GroupSize().Count(), flushes)
		}
	}
}

// TestGroupCommitterFlushErrorPartition injects a permanent storage failure
// midway and checks the failure fan-out contract: the durable WAL is a
// gapless prefix 1..K, every record with LSN <= K was acked nil, and every
// record with LSN > K — the failed flush and everything queued behind it on
// the poisoned writer — was acked with the error.
func TestGroupCommitterFlushErrorPartition(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 7, AppendFailProb: 1})
	plan.SetEnabled(false)
	st := storage.Open(&storage.Options{Faults: plan, WriteLatency: 100 * time.Microsecond})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.RetryPolicy{MaxAttempts: 1}))
	c := NewGroupCommitter(w, GroupCommitterOptions{MaxBatch: 4})
	defer c.Stop()

	const total = 200
	type ack struct {
		lsn LSN
		err error
	}
	acks := make(chan ack, total)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < total/8; j++ {
				lsn, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(id), byte(j)}})
				acks <- ack{lsn, err}
			}
		}(i)
	}
	// Let some commits land, then fail every append from here on.
	time.Sleep(2 * time.Millisecond)
	plan.SetEnabled(true)
	wg.Wait()
	close(acks)

	recs, err := NewReader(st).Poll()
	if err != nil {
		t.Fatal(err)
	}
	k := LSN(len(recs))
	for i, rec := range recs {
		if rec.LSN != LSN(i+1) {
			t.Fatalf("durable record %d has LSN %d: durable prefix must be gapless", i, rec.LSN)
		}
	}
	failed := 0
	for a := range acks {
		switch {
		case a.err == nil && a.lsn > k:
			t.Fatalf("LSN %d acked durable but the WAL ends at %d", a.lsn, k)
		case a.err != nil && a.lsn != 0 && a.lsn <= k:
			t.Fatalf("LSN %d is durable but was acked with %v", a.lsn, a.err)
		case a.err != nil:
			if !errors.Is(a.err, ErrWriterFailed) && !errors.Is(a.err, ErrCommitterStopped) {
				t.Fatalf("failed ack carries unexpected error: %v", a.err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("fault plan never failed a flush; partition not exercised")
	}
	if k == 0 {
		t.Fatal("no commit landed before the fault; partition not exercised")
	}
}

// TestGroupCommitterSizeTriggerCutsDelay checks that a full batch flushes
// without waiting out a long MaxDelay.
func TestGroupCommitterSizeTriggerCutsDelay(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	c := NewGroupCommitter(w, GroupCommitterOptions{MaxBatch: 8, MaxDelay: time.Hour})
	defer c.Stop()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("size trigger did not fire: %v elapsed", elapsed)
	}
}

// TestGroupCommitterQueueDepthBackpressure checks that writers beyond
// QueueDepth block instead of growing the queue without bound, and that the
// stall is visible in the stall histogram.
func TestGroupCommitterQueueDepthBackpressure(t *testing.T) {
	st := storage.Open(&storage.Options{WriteLatency: 2 * time.Millisecond})
	w := NewWriter(st)
	c := NewGroupCommitter(w, GroupCommitterOptions{MaxBatch: 2, QueueDepth: 2})
	defer c.Stop()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if recs, err := NewReader(st).Poll(); err != nil || len(recs) != 16 {
		t.Fatalf("records = %d (err %v), want 16", len(recs), err)
	}
	// 16 writers against a depth-2 queue must have stalled at least once.
	if c.StallLatency().Summary().Count == 0 {
		t.Fatal("no stall recorded despite queue depth 2 and 16 writers")
	}
}

// TestGroupCommitterStopFailsStalledWriters checks that Stop wakes writers
// blocked on a full queue instead of leaving them waiting forever.
func TestGroupCommitterStopFailsStalledWriters(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 11, AppendFailProb: 1})
	st := storage.Open(&storage.Options{Faults: plan})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.RetryPolicy{MaxAttempts: 1}))
	c := NewGroupCommitter(w, GroupCommitterOptions{MaxBatch: 1, QueueDepth: 1})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(i)}})
			errs <- err
		}(i)
	}
	time.Sleep(time.Millisecond)
	c.Stop()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			continue // landed (poisoned writer still acks the error path; a nil means pre-fault)
		}
		if !errors.Is(err, ErrCommitterStopped) && !errors.Is(err, ErrWriterFailed) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}
