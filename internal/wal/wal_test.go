package wal

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"bg3/internal/storage"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Record{
		LSN: 30, Type: RecordSplit, TreeID: 7, PageID: 12, AuxPage: 13,
		Key: []byte("split-key"), Value: []byte("v"),
	}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestEncodeDecodeEmptyKeyValue(t *testing.T) {
	in := &Record{LSN: 1, Type: RecordCheckpoint, CkptLSN: 34}
	out, err := Decode(Encode(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.CkptLSN != 34 || out.Type != RecordCheckpoint || out.Key != nil || out.Value != nil {
		t.Fatalf("decode = %+v", out)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 49), // shorter than the fixed header
		make([]byte, 57), // type 0
		append(Encode(&Record{Type: RecordPut, Key: []byte("k")}), 0xFF),
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Fatalf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(typ uint8, tree, page, aux uint64, key, value []byte) bool {
		rt := RecordType(typ%7) + 1
		in := &Record{Type: rt, TreeID: tree, PageID: page, AuxPage: aux, Key: key, Value: value}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		return out.Type == rt && out.TreeID == tree && out.PageID == page &&
			out.AuxPage == aux && bytes.Equal(out.Key, key) && bytes.Equal(out.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterAssignsSequentialLSNs(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	for i := 1; i <= 5; i++ {
		lsn, err := w.Append(&Record{Type: RecordPut, Key: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	if w.NextLSN() != 6 {
		t.Fatalf("NextLSN = %d, want 6", w.NextLSN())
	}
}

func TestReaderTailsWriter(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	r := NewReader(st)

	if _, err := w.Append(&Record{Type: RecordPut, PageID: 1, Key: []byte("a"), Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 || string(recs[0].Key) != "a" {
		t.Fatalf("poll 1 = %+v", recs)
	}

	if _, err := w.AppendBatch([]*Record{
		{Type: RecordSplit, PageID: 2, AuxPage: 3},
		{Type: RecordNewPage, PageID: 3},
		{Type: RecordCheckpoint, CkptLSN: 3},
	}); err != nil {
		t.Fatal(err)
	}
	recs, err = r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("poll 2 = %d records, want 3", len(recs))
	}
	if recs[0].LSN != 2 || recs[1].LSN != 3 || recs[2].LSN != 4 {
		t.Fatalf("batch LSNs = %d,%d,%d", recs[0].LSN, recs[1].LSN, recs[2].LSN)
	}
	// Polling again yields nothing.
	recs, _ = r.Poll()
	if len(recs) != 0 {
		t.Fatalf("empty poll returned %d records", len(recs))
	}
}

func TestConcurrentWritersProduceDistinctOrderedLSNs(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := w.Append(&Record{Type: RecordPut, Key: []byte("k")}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	r := NewReader(st)
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != workers*per {
		t.Fatalf("records = %d, want %d", len(recs), workers*per)
	}
	for i, rec := range recs {
		if rec.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d: storage order must equal LSN order", i, rec.LSN)
		}
	}
}

func TestMultipleIndependentReaders(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	r1, r2 := NewReader(st), NewReader(st)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := r1.Poll()
	b, _ := r2.Poll()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("readers saw %d and %d records, want 10 each", len(a), len(b))
	}
}

func TestAppendAssignedRejectsStaleLSN(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	if _, err := w.Append(&Record{Type: RecordPut}); err != nil {
		t.Fatal(err)
	}
	// LSN 1 is already consumed; re-appending it must fail.
	if err := w.AppendAssigned([]*Record{{Type: RecordPut, LSN: 1}}); err == nil {
		t.Fatal("stale assigned LSN accepted")
	}
	if err := w.AppendAssigned(nil); err != nil {
		t.Fatalf("empty assigned batch: %v", err)
	}
}

func TestAppendAssignedSplitsOversizedBatches(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 256})
	w := NewWriter(st)
	recs := make([]*Record, 16)
	for i := range recs {
		recs[i] = &Record{Type: RecordPut, LSN: LSN(i + 1), Key: bytes.Repeat([]byte("k"), 40)}
	}
	if err := w.AppendAssigned(recs); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(st).Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d LSN = %d", i, r.LSN)
		}
	}
}

func TestNewReaderAt(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	cur := st.TailCursor(storage.StreamWAL)
	if _, err := w.Append(&Record{Type: RecordPut, Key: []byte("tail")}); err != nil {
		t.Fatal(err)
	}
	// Snapshot bootstrap: the cursor says where to scan, the base says
	// where the LSN sequence resumes (ReplayWAL always declares it).
	r := NewReaderAt(st, cur)
	r.SetBase(5)
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Key) != "tail" {
		t.Fatalf("reader-at = %v", recs)
	}
}

func TestRecordTypeStrings(t *testing.T) {
	for _, rt := range []RecordType{RecordPut, RecordDelete, RecordSplit, RecordNewPage,
		RecordNewRoot, RecordCheckpoint, RecordNewTree, RecordOwnerAssign, RecordType(99)} {
		if rt.String() == "" {
			t.Fatalf("empty string for %d", rt)
		}
	}
}
