// Package wal implements the write-ahead log that BG3's I/O-efficient
// leader–follower synchronization ships through shared storage (§3.4).
//
// The RW node appends every Bw-tree modification — logical page updates,
// page splits, new-page creations — as WAL records with monotonically
// increasing log sequence numbers (LSNs). RO nodes tail the log from the
// shared store and lazily replay it onto cached pages. After the RW node's
// background flusher persists dirty pages and advances the durable mapping
// table, it appends a checkpoint record ("storage has completed all
// modifications up to LSN x"), letting RO nodes truncate their replay
// buffers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"bg3/internal/metrics"
	"bg3/internal/storage"
)

// LSN is a log sequence number. LSN 0 is reserved and never assigned.
type LSN uint64

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecordPut logs a logical key-value upsert applied to a page.
	RecordPut RecordType = iota + 1
	// RecordDelete logs a logical key deletion applied to a page.
	RecordDelete
	// RecordSplit logs a structural split: page PageID moved all keys >=
	// Key to the new page AuxPage.
	RecordSplit
	// RecordNewPage logs the creation of a page that does not exist in the
	// durable mapping table yet; RO nodes materialize it directly in memory.
	RecordNewPage
	// RecordNewRoot logs a root change for a tree: AuxPage is the new root.
	RecordNewRoot
	// RecordCheckpoint declares that shared storage (pages + mapping table)
	// reflects every modification with LSN <= CheckpointLSN. RO nodes drop
	// buffered records up to that point.
	RecordCheckpoint
	// RecordNewTree logs creation of a Bw-tree (forest growth): TreeID is
	// the new tree, AuxPage its root page.
	RecordNewTree
	// RecordOwnerAssign logs a forest owner migration: the owner encoded in
	// Key (8-byte big endian) is now served by TreeID. It is emitted after
	// the owner's data has been copied into the dedicated tree and before
	// it is deleted from INIT, so replicas that switch routing at this
	// record always observe a complete copy.
	RecordOwnerAssign
)

// String returns the record type's name.
func (t RecordType) String() string {
	switch t {
	case RecordPut:
		return "put"
	case RecordDelete:
		return "delete"
	case RecordSplit:
		return "split"
	case RecordNewPage:
		return "new-page"
	case RecordNewRoot:
		return "new-root"
	case RecordCheckpoint:
		return "checkpoint"
	case RecordNewTree:
		return "new-tree"
	case RecordOwnerAssign:
		return "owner-assign"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	LSN     LSN
	Type    RecordType
	TreeID  uint64
	PageID  uint64
	AuxPage uint64 // split target / new root / new tree root
	CkptLSN LSN    // checkpoint horizon, for RecordCheckpoint
	Key     []byte
	Value   []byte
}

// ErrCorrupt is returned when a WAL record fails to decode.
var ErrCorrupt = errors.New("wal: corrupt record")

// Encode serializes r. Layout (little endian):
//
//	type[1] lsn[8] tree[8] page[8] aux[8] ckpt[8] klen[4] vlen[4] key value
func Encode(r *Record) []byte {
	buf := make([]byte, 1+8*5+4+4+len(r.Key)+len(r.Value))
	buf[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(buf[9:], r.TreeID)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint64(buf[25:], r.AuxPage)
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.CkptLSN))
	binary.LittleEndian.PutUint32(buf[41:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[45:], uint32(len(r.Value)))
	copy(buf[49:], r.Key)
	copy(buf[49+len(r.Key):], r.Value)
	return buf
}

// Decode parses a record previously produced by Encode.
func Decode(buf []byte) (*Record, error) {
	if len(buf) < 49 {
		return nil, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(buf))
	}
	r := &Record{
		Type:    RecordType(buf[0]),
		LSN:     LSN(binary.LittleEndian.Uint64(buf[1:])),
		TreeID:  binary.LittleEndian.Uint64(buf[9:]),
		PageID:  binary.LittleEndian.Uint64(buf[17:]),
		AuxPage: binary.LittleEndian.Uint64(buf[25:]),
		CkptLSN: LSN(binary.LittleEndian.Uint64(buf[33:])),
	}
	klen := binary.LittleEndian.Uint32(buf[41:])
	vlen := binary.LittleEndian.Uint32(buf[45:])
	if int(klen)+int(vlen)+49 != len(buf) {
		return nil, fmt.Errorf("%w: length mismatch klen=%d vlen=%d total=%d", ErrCorrupt, klen, vlen, len(buf))
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[49:49+klen]...)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), buf[49+klen:]...)
	}
	if r.Type == 0 || r.Type > RecordOwnerAssign {
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, buf[0])
	}
	return r, nil
}

// ErrWriterFailed marks a writer poisoned by an append that exhausted its
// retries: allowing later appends to succeed would punch an LSN hole into
// the log that recovery could not tell apart from acknowledged-write loss,
// so the writer fails stop — exactly like a log node losing its lease.
var ErrWriterFailed = errors.New("wal: writer failed")

// Writer appends WAL records to the shared store, assigning LSNs. It is
// safe for concurrent use; LSN order equals storage append order because
// both happen under one mutex (the paper's WAL writes are tiny and the
// shared store guarantees low write latency, so serializing here models the
// same commit point).
//
// Transient storage failures (including torn writes, whose checksummed
// garbage prefix readers discard) are absorbed by a bounded
// retry-with-backoff; a retried torn append leaves duplicate records in the
// stream, which readers deduplicate by LSN. Once retries are exhausted the
// writer fails stop.
type Writer struct {
	store *storage.Store
	retry storage.RetryPolicy

	mu      sync.Mutex
	nextLSN LSN
	failed  error

	appends   metrics.Counter
	appendLat metrics.Histogram // storage round-trip per append, retries included
}

// walRetry is the default policy for WAL appends; retries feed the shared
// fault-accounting counters.
func walRetry() storage.RetryPolicy {
	p := storage.DefaultRetry
	p.OnRetry = func(int, error) { metrics.Faults.Retries.Inc() }
	return p
}

// NewWriter returns a writer that appends to the store's WAL stream.
func NewWriter(store *storage.Store) *Writer {
	return &Writer{store: store, retry: walRetry(), nextLSN: 1}
}

// NewWriterFrom returns a writer whose next LSN is the given value —
// recovery resumes the sequence past the highest LSN already in the WAL.
func NewWriterFrom(store *storage.Store, next LSN) *Writer {
	if next < 1 {
		next = 1
	}
	return &Writer{store: store, retry: walRetry(), nextLSN: next}
}

// SetRetry overrides the writer's retry policy (tests).
func (w *Writer) SetRetry(p storage.RetryPolicy) {
	w.mu.Lock()
	w.retry = p
	w.mu.Unlock()
}

// Err returns the poison error of a failed writer, nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// frameHeader is the per-record framing overhead: length plus CRC32.
const frameHeader = 8

// frame prefixes an encoded record with its length and CRC32 so several
// records can share one storage append (group commit pays one storage round
// trip for the whole batch) and torn prefixes are detectable on read.
func frame(buf []byte, rec []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(rec))
	return append(buf, rec...)
}

// unframe splits a storage entry back into encoded records, stopping at the
// first frame whose header is truncated or whose body fails its checksum —
// the torn tail a failed append leaves behind. It returns the intact
// records and the number of trailing bytes dropped (0 for a clean entry).
func unframe(buf []byte) (frames [][]byte, torn int) {
	for len(buf) > 0 {
		if len(buf) < frameHeader {
			return frames, len(buf)
		}
		n := binary.LittleEndian.Uint32(buf)
		sum := binary.LittleEndian.Uint32(buf[4:])
		body := buf[frameHeader:]
		if uint32(len(body)) < n {
			return frames, len(buf)
		}
		if crc32.ChecksumIEEE(body[:n]) != sum {
			return frames, len(buf)
		}
		frames = append(frames, body[:n])
		buf = body[n:]
	}
	return frames, 0
}

// appendLocked persists one framed buffer covering LSNs [first, last],
// retrying transient failures and poisoning the writer when they exhaust.
// Caller holds w.mu.
func (w *Writer) appendLocked(tag uint64, buf []byte, first, last LSN) error {
	if w.failed != nil {
		return w.failed
	}
	start := time.Now()
	err := w.retry.Do("wal: append", func() error {
		_, aerr := w.store.Append(storage.StreamWAL, tag, buf)
		return aerr
	})
	w.appendLat.Observe(time.Since(start))
	w.appends.Inc()
	if err != nil {
		w.failed = fmt.Errorf("%w: lsn %d..%d (stream %v): %w",
			ErrWriterFailed, first, last, storage.StreamWAL, err)
		return w.failed
	}
	return nil
}

// Append assigns the next LSN to r, persists it, and returns the LSN.
func (w *Writer) Append(r *Record) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r.LSN = w.nextLSN
	if err := w.appendLocked(r.PageID, frame(nil, Encode(r)), r.LSN, r.LSN); err != nil {
		return 0, err
	}
	w.nextLSN++
	return r.LSN, nil
}

// AppendBatch persists records as one atomic group with consecutive LSNs
// and a single storage append — the group-commit path. It returns the LSN
// of the last record.
func (w *Writer) AppendBatch(recs []*Record) (LSN, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var buf []byte
	first := w.nextLSN
	var last LSN
	for _, r := range recs {
		r.LSN = w.nextLSN
		w.nextLSN++
		last = r.LSN
		buf = frame(buf, Encode(r))
	}
	if err := w.appendLocked(0, buf, first, last); err != nil {
		return 0, err
	}
	return last, nil
}

// AppendAssigned persists records whose LSNs were assigned by an external
// authority (the group-commit logger) as one storage append. Records must
// continue the writer's LSN sequence in order; the writer's own counter
// advances past them.
func (w *Writer) AppendAssigned(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// A batch must fit one storage append (an extent); split oversized
	// batches into several appends, preserving order under the lock.
	limit := w.store.ExtentSize() - 64
	if limit < 256 {
		limit = 256
	}
	var buf []byte
	var first LSN
	for _, r := range recs {
		if r.LSN < w.nextLSN {
			return fmt.Errorf("wal: assigned LSN %d behind writer position %d", r.LSN, w.nextLSN)
		}
		w.nextLSN = r.LSN + 1
		encoded := Encode(r)
		if len(buf) > 0 && len(buf)+frameHeader+len(encoded) > limit {
			if err := w.appendLocked(0, buf, first, r.LSN-1); err != nil {
				return err
			}
			buf = nil
		}
		if len(buf) == 0 {
			first = r.LSN
		}
		buf = frame(buf, encoded)
	}
	if len(buf) == 0 {
		return nil
	}
	return w.appendLocked(0, buf, first, recs[len(recs)-1].LSN)
}

// NextLSN returns the LSN the next record will receive.
func (w *Writer) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// AppendLatency returns the writer's per-append storage latency histogram
// (retries included — this is the cost a commit actually pays).
func (w *Writer) AppendLatency() *metrics.Histogram { return &w.appendLat }

// Appends returns the number of storage appends the writer has issued.
func (w *Writer) Appends() int64 { return w.appends.Load() }

// RegisterMetrics exposes the writer's accounting under the "wal." prefix.
func (w *Writer) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounter("wal.appends", &w.appends)
	r.RegisterHistogram("wal.append_us", &w.appendLat)
	r.GaugeFunc("wal.next_lsn", func() int64 { return int64(w.NextLSN()) })
}

// GapError reports a hole in the LSN sequence: a record arrived whose LSN
// is not the successor of the last one seen. Gaps mean the reader's view of
// the log is missing acknowledged records — a trimmed or lost WAL extent —
// and the consumer must resynchronize from a snapshot (followers) or abort
// (crash recovery).
type GapError struct {
	Expected LSN // the LSN the sequence required next
	Got      LSN // the LSN actually observed
}

func (e *GapError) Error() string {
	return fmt.Sprintf("wal: gap in log: expected lsn %d, got %d", e.Expected, e.Got)
}

// Reader tails the WAL stream of a shared store. Each RO node owns one.
//
// The reader tolerates the two artifacts a retried torn write leaves in an
// append-only log: a checksummed-garbage tail on one storage entry (dropped
// and counted) and duplicate records from the retry (deduplicated by LSN).
// What it does not tolerate is a hole in the LSN sequence — Poll surfaces
// those as *GapError.
type Reader struct {
	store *storage.Store
	cur   storage.Cursor
	last  LSN // highest LSN returned; duplicates at or below are dropped

	torn int64 // storage entries with a torn tail encountered
	dups int64 // duplicate records dropped
}

// NewReader returns a reader positioned at the beginning of the WAL.
func NewReader(store *storage.Store) *Reader {
	return &Reader{store: store}
}

// NewReaderAt returns a reader positioned at the given cursor (snapshot
// bootstrap: tail only the WAL suffix the snapshot does not cover).
func NewReaderAt(store *storage.Store, cur storage.Cursor) *Reader {
	return &Reader{store: store, cur: cur}
}

// SetBase declares every LSN at or below lsn already consumed (by a
// snapshot): such records are silently dropped and the sequence check
// starts at lsn+1.
func (r *Reader) SetBase(lsn LSN) { r.last = lsn }

// LastLSN returns the highest LSN the reader has returned.
func (r *Reader) LastLSN() LSN { return r.last }

// Stats returns the torn-entry and duplicate counts absorbed so far.
func (r *Reader) Stats() (torn, dups int64) { return r.torn, r.dups }

// Poll returns all records appended since the previous Poll, in LSN order.
// Torn entry tails are discarded and retry duplicates dropped. On an LSN
// gap Poll returns the records before the hole together with a *GapError
// and does not advance the cursor, so the caller decides how to resync.
func (r *Reader) Poll() ([]*Record, error) {
	entries, next, err := r.store.Scan(storage.StreamWAL, r.cur, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: poll at extent %d: %w", r.cur.Extent, err)
	}
	var recs []*Record
	for _, e := range entries {
		frames, torn := unframe(e.Data)
		if torn > 0 {
			r.torn++
		}
		for _, f := range frames {
			rec, derr := Decode(f)
			if derr != nil {
				// The frame passed its checksum but does not decode: this is
				// real corruption, not a torn tail.
				return recs, fmt.Errorf("wal: entry at %v: %w", e.Loc, derr)
			}
			if rec.LSN <= r.last {
				r.dups++
				continue
			}
			if r.last > 0 && rec.LSN != r.last+1 {
				return recs, &GapError{Expected: r.last + 1, Got: rec.LSN}
			}
			r.last = rec.LSN
			recs = append(recs, rec)
		}
	}
	r.cur = next
	return recs, nil
}
