// Package wal implements the write-ahead log that BG3's I/O-efficient
// leader–follower synchronization ships through shared storage (§3.4).
//
// The RW node appends every Bw-tree modification — logical page updates,
// page splits, new-page creations — as WAL records with monotonically
// increasing log sequence numbers (LSNs). RO nodes tail the log from the
// shared store and lazily replay it onto cached pages. After the RW node's
// background flusher persists dirty pages and advances the durable mapping
// table, it appends a checkpoint record ("storage has completed all
// modifications up to LSN x"), letting RO nodes truncate their replay
// buffers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"bg3/internal/metrics"
	"bg3/internal/storage"
)

// LSN is a log sequence number. LSN 0 is reserved and never assigned.
type LSN uint64

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecordPut logs a logical key-value upsert applied to a page.
	RecordPut RecordType = iota + 1
	// RecordDelete logs a logical key deletion applied to a page.
	RecordDelete
	// RecordSplit logs a structural split: page PageID moved all keys >=
	// Key to the new page AuxPage.
	RecordSplit
	// RecordNewPage logs the creation of a page that does not exist in the
	// durable mapping table yet; RO nodes materialize it directly in memory.
	RecordNewPage
	// RecordNewRoot logs a root change for a tree: AuxPage is the new root.
	RecordNewRoot
	// RecordCheckpoint declares that shared storage (pages + mapping table)
	// reflects every modification with LSN <= CheckpointLSN. RO nodes drop
	// buffered records up to that point.
	RecordCheckpoint
	// RecordNewTree logs creation of a Bw-tree (forest growth): TreeID is
	// the new tree, AuxPage its root page.
	RecordNewTree
	// RecordOwnerAssign logs a forest owner migration: the owner encoded in
	// Key (8-byte big endian) is now served by TreeID. It is emitted after
	// the owner's data has been copied into the dedicated tree and before
	// it is deleted from INIT, so replicas that switch routing at this
	// record always observe a complete copy.
	RecordOwnerAssign
	// RecordTxnPrepare logs a cross-shard transaction prepare on a
	// participant shard's stream: TreeID is the transaction id and Value the
	// TPC1 payload (coordinator shard, participant set, and the sub-batch's
	// mutations as a logical redo intent). The payload is applied only once
	// the coordinator's decision is known; an undecided prepare has no
	// memory effect and is invisible at every released epoch.
	RecordTxnPrepare
	// RecordTxnCommit logs a cross-shard commit decision on the coordinator
	// shard's stream (TreeID = transaction id). Once durable, every
	// participant's prepared sub-batch must be applied; recovery treats a
	// prepare whose coordinator holds a durable commit as committed.
	RecordTxnCommit
	// RecordTxnAbort logs an abort: on the coordinator's stream it is the
	// decision, on a participant's stream a local resolution marker (the
	// prepared payload was discarded). Absence of a durable commit on the
	// coordinator also means abort (presumed abort).
	RecordTxnAbort
	// RecordTxnApplied logs a participant-local completion marker: the
	// prepared sub-batch of transaction TreeID was applied through the
	// normal data path, whose records all precede this one in the LSN
	// sequence. Recovery treats such prepares as resolved.
	RecordTxnApplied
)

// String returns the record type's name.
func (t RecordType) String() string {
	switch t {
	case RecordPut:
		return "put"
	case RecordDelete:
		return "delete"
	case RecordSplit:
		return "split"
	case RecordNewPage:
		return "new-page"
	case RecordNewRoot:
		return "new-root"
	case RecordCheckpoint:
		return "checkpoint"
	case RecordNewTree:
		return "new-tree"
	case RecordOwnerAssign:
		return "owner-assign"
	case RecordTxnPrepare:
		return "txn-prepare"
	case RecordTxnCommit:
		return "txn-commit"
	case RecordTxnAbort:
		return "txn-abort"
	case RecordTxnApplied:
		return "txn-applied"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	LSN     LSN
	Type    RecordType
	TreeID  uint64
	PageID  uint64
	AuxPage uint64 // split target / new root / new tree root
	CkptLSN LSN    // checkpoint horizon, for RecordCheckpoint
	Epoch   uint64 // fence epoch of the writer that appended the record
	Key     []byte
	Value   []byte
}

// ErrCorrupt is returned when a WAL record fails to decode.
var ErrCorrupt = errors.New("wal: corrupt record")

// recFixed is the fixed header size of an encoded record.
const recFixed = 1 + 8*6 + 4 + 4

// Encode serializes r. Layout (little endian):
//
//	type[1] lsn[8] tree[8] page[8] aux[8] ckpt[8] epoch[8] klen[4] vlen[4] key value
func Encode(r *Record) []byte {
	buf := make([]byte, recFixed+len(r.Key)+len(r.Value))
	buf[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(buf[9:], r.TreeID)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint64(buf[25:], r.AuxPage)
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.CkptLSN))
	binary.LittleEndian.PutUint64(buf[41:], r.Epoch)
	binary.LittleEndian.PutUint32(buf[49:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[53:], uint32(len(r.Value)))
	copy(buf[recFixed:], r.Key)
	copy(buf[recFixed+len(r.Key):], r.Value)
	return buf
}

// Decode parses a record previously produced by Encode.
func Decode(buf []byte) (*Record, error) {
	if len(buf) < recFixed {
		return nil, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(buf))
	}
	r := &Record{
		Type:    RecordType(buf[0]),
		LSN:     LSN(binary.LittleEndian.Uint64(buf[1:])),
		TreeID:  binary.LittleEndian.Uint64(buf[9:]),
		PageID:  binary.LittleEndian.Uint64(buf[17:]),
		AuxPage: binary.LittleEndian.Uint64(buf[25:]),
		CkptLSN: LSN(binary.LittleEndian.Uint64(buf[33:])),
		Epoch:   binary.LittleEndian.Uint64(buf[41:]),
	}
	klen := binary.LittleEndian.Uint32(buf[49:])
	vlen := binary.LittleEndian.Uint32(buf[53:])
	if int(klen)+int(vlen)+recFixed != len(buf) {
		return nil, fmt.Errorf("%w: length mismatch klen=%d vlen=%d total=%d", ErrCorrupt, klen, vlen, len(buf))
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[recFixed:recFixed+klen]...)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), buf[recFixed+klen:]...)
	}
	if r.Type == 0 || r.Type > RecordTxnApplied {
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, buf[0])
	}
	return r, nil
}

// ErrWriterFailed marks a writer poisoned by an append that exhausted its
// retries: allowing later appends to succeed would punch an LSN hole into
// the log that recovery could not tell apart from acknowledged-write loss,
// so the writer fails stop — exactly like a log node losing its lease.
var ErrWriterFailed = errors.New("wal: writer failed")

// Writer appends WAL records to the shared store, assigning LSNs. It is
// safe for concurrent use; LSN order equals storage append order because
// both happen under one mutex (the paper's WAL writes are tiny and the
// shared store guarantees low write latency, so serializing here models the
// same commit point).
//
// Transient storage failures (including torn writes, whose checksummed
// garbage prefix readers discard) are absorbed by a bounded
// retry-with-backoff; a retried torn append leaves duplicate records in the
// stream, which readers deduplicate by LSN. Once retries are exhausted the
// writer fails stop.
type Writer struct {
	store *storage.Store
	retry storage.RetryPolicy

	// epoch is the fence token every append carries and every record is
	// stamped with. It is captured from the store's WAL stream at
	// construction and immutable afterwards: a writer IS one epoch's
	// tenure, and losing the fence (storage.ErrFenced) poisons it for good.
	epoch uint64

	mu      sync.Mutex
	nextLSN LSN
	failed  error

	appends   metrics.Counter
	appendLat metrics.Histogram // storage round-trip per append, retries included
}

// walRetry is the default policy for WAL appends; retries feed the shared
// fault-accounting counters.
func walRetry() storage.RetryPolicy {
	p := storage.DefaultRetry
	p.OnRetry = func(int, error) { metrics.Faults.Retries.Inc() }
	return p
}

// NewWriter returns a writer that appends to the store's WAL stream. It
// adopts the stream's current fence epoch, so a writer built after a
// promotion fenced the stream appends at the new epoch, and a writer built
// from a stale view is rejected on its first append.
func NewWriter(store *storage.Store) *Writer {
	return &Writer{store: store, retry: walRetry(), nextLSN: 1,
		epoch: store.StreamEpoch(storage.StreamWAL)}
}

// NewWriterFrom returns a writer whose next LSN is the given value —
// recovery resumes the sequence past the highest LSN already in the WAL.
// Like NewWriter, it adopts the WAL stream's current fence epoch.
func NewWriterFrom(store *storage.Store, next LSN) *Writer {
	if next < 1 {
		next = 1
	}
	return &Writer{store: store, retry: walRetry(), nextLSN: next,
		epoch: store.StreamEpoch(storage.StreamWAL)}
}

// NewWriterFromEpoch is NewWriterFrom with an explicit fence token — for a
// promotion that must append at exactly the epoch it claimed. Adopting the
// stream's current epoch instead would let a candidate that lost a
// concurrent promotion race append under the winner's epoch; with the
// explicit token, the loser's first append fails storage.ErrFenced.
func NewWriterFromEpoch(store *storage.Store, next LSN, epoch uint64) *Writer {
	w := NewWriterFrom(store, next)
	w.epoch = epoch
	return w
}

// Epoch returns the fence token the writer appends under.
func (w *Writer) Epoch() uint64 { return w.epoch }

// SetRetry overrides the writer's retry policy (tests).
func (w *Writer) SetRetry(p storage.RetryPolicy) {
	w.mu.Lock()
	w.retry = p
	w.mu.Unlock()
}

// Err returns the poison error of a failed writer, nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Group envelope framing. One storage append carries exactly one sealed
// group of records:
//
//	plen[4] pcrc[4] magic[1] epoch[8] first[8] count[4] { rlen[4] record }...
//
// The CRC covers the whole payload — meta and records alike — so a torn
// write, which persists some byte prefix of the envelope, invalidates the
// entire group. Readers therefore replay a group completely or not at all,
// which is what makes a crash in the middle of a group-commit flush
// recoverable: every record in the flush shares the envelope's fate.
//
// The meta block is what lets groups complete out of order under the commit
// pipeline: (epoch, first, count) identify the group's place in the LSN
// sequence and the fence tenure it was sealed under without decoding a
// single record, so a reader can hold a group aside until its predecessors
// land and discard a fenced tenure's stragglers wholesale.
const (
	// groupHeader is the envelope overhead: payload length plus CRC32.
	groupHeader = 8
	// metaHeader is the payload's leading meta block: magic, epoch, first
	// LSN, record count.
	metaHeader = 1 + 8 + 8 + 4
	// recHeader is the per-record overhead inside the payload.
	recHeader = 4
	// groupMagic marks the envelope format; CRC-valid payloads with a
	// different first byte are foreign data, reported as corruption.
	groupMagic = 0xB6
)

// GroupMeta is the sealed group's self-description, covered by the
// envelope checksum.
type GroupMeta struct {
	Epoch uint64 // fence epoch the group was sealed under
	First LSN    // LSN of the group's first record
	Count int    // records in the group
}

// frameGroup seals encoded records into one group envelope.
func frameGroup(meta GroupMeta, encoded [][]byte) []byte {
	size := groupHeader + metaHeader
	for _, e := range encoded {
		size += recHeader + len(e)
	}
	buf := make([]byte, groupHeader, size)
	buf = append(buf, groupMagic)
	buf = binary.LittleEndian.AppendUint64(buf, meta.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(meta.First))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.Count))
	for _, e := range encoded {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e)))
		buf = append(buf, e...)
	}
	payload := buf[groupHeader:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return buf
}

// unframeGroup opens a group envelope. ok=false marks a torn envelope — a
// truncated header, short payload, or checksum mismatch, all artifacts of a
// failed append — whose contents must be discarded wholesale. A non-nil
// error means the envelope checksum passed but the payload does not parse:
// real corruption, not a torn tail.
func unframeGroup(buf []byte) (meta GroupMeta, frames [][]byte, ok bool, err error) {
	if len(buf) < groupHeader+metaHeader {
		return meta, nil, false, nil
	}
	plen := binary.LittleEndian.Uint32(buf)
	sum := binary.LittleEndian.Uint32(buf[4:])
	body := buf[groupHeader:]
	if uint64(len(body)) != uint64(plen) {
		return meta, nil, false, nil
	}
	if crc32.ChecksumIEEE(body) != sum {
		return meta, nil, false, nil
	}
	if body[0] != groupMagic {
		return meta, nil, false, fmt.Errorf("%w: sealed group magic %#x", ErrCorrupt, body[0])
	}
	meta.Epoch = binary.LittleEndian.Uint64(body[1:])
	meta.First = LSN(binary.LittleEndian.Uint64(body[9:]))
	meta.Count = int(binary.LittleEndian.Uint32(body[17:]))
	body = body[metaHeader:]
	for len(body) > 0 {
		if len(body) < recHeader {
			return meta, nil, false, fmt.Errorf("%w: truncated record header in sealed group", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(body)
		body = body[recHeader:]
		if uint64(n) > uint64(len(body)) {
			return meta, nil, false, fmt.Errorf("%w: record length %d exceeds group payload", ErrCorrupt, n)
		}
		frames = append(frames, body[:n])
		body = body[n:]
	}
	if len(frames) != meta.Count {
		return meta, nil, false, fmt.Errorf("%w: sealed group holds %d records, meta declares %d",
			ErrCorrupt, len(frames), meta.Count)
	}
	return meta, frames, true, nil
}

// SealedGroup is one framed group envelope ready for a single storage
// append: an immutable unit of durability. Sealing (LSN assignment, epoch
// stamping, envelope framing) is separated from appending so the commit
// pipeline can keep several sealed groups in flight concurrently while the
// LSN sequence itself stays strictly serial.
type SealedGroup struct {
	Data  []byte // the envelope, as frameGroup produced it
	First LSN    // first LSN in the group
	Last  LSN    // last LSN in the group
	Count int    // records sealed
	Epoch uint64 // fence epoch the group was sealed under
}

// ErrRecordTooLarge is returned when a single record cannot fit one storage
// append even in a group of its own: no amount of batch splitting can
// persist it.
var ErrRecordTooLarge = errors.New("wal: record exceeds extent size")

// encodedSize returns len(Encode(r)) without allocating.
func encodedSize(r *Record) int {
	return recFixed + len(r.Key) + len(r.Value)
}

// groupLimit is the largest sealed group one storage append accepts, with
// headroom for the store's own entry bookkeeping.
func (w *Writer) groupLimit() int {
	limit := w.store.ExtentSize() - 64
	if limit < 256 {
		limit = 256
	}
	return limit
}

// MaxRecordSize returns the largest Encode(r) size a record may have and
// still be appendable (in a group of its own if need be). Admission checks
// above the writer (the group committer) reject larger records before an
// LSN is assigned, so the failure is an error on one write instead of a
// poisoned log.
func (w *Writer) MaxRecordSize() int {
	return w.groupLimit() - groupHeader - metaHeader - recHeader
}

// Append assigns the next LSN to r, persists it as a group of one, and
// returns the LSN.
func (w *Writer) Append(r *Record) (LSN, error) {
	if _, err := w.AppendBatch([]*Record{r}); err != nil {
		return 0, err
	}
	return r.LSN, nil
}

// AppendBatch persists records as atomic groups with consecutive LSNs —
// the group-commit path. A batch that fits one extent is a single storage
// append and replays all-or-nothing; an oversized batch is split into
// several sealed groups, each individually atomic. It returns the LSN of
// the last record. If any single record exceeds the extent size the batch
// fails with ErrRecordTooLarge before any LSN is consumed.
func (w *Writer) AppendBatch(recs []*Record) (LSN, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	max := w.MaxRecordSize()
	for _, r := range recs {
		if n := encodedSize(r); n > max {
			// No LSN was consumed, so the sequence has no hole: the writer
			// stays healthy and only this batch fails.
			w.mu.Unlock()
			return 0, fmt.Errorf("%w: %d bytes, extent limit %d", ErrRecordTooLarge, n, w.store.ExtentSize())
		}
	}
	for _, r := range recs {
		r.LSN = w.nextLSN
		w.nextLSN++
	}
	groups := w.sealLocked(recs)
	w.mu.Unlock()
	for _, g := range groups {
		if err := w.AppendSealed(g); err != nil {
			return 0, err
		}
	}
	return recs[len(recs)-1].LSN, nil
}

// AppendAssigned persists records whose LSNs were assigned by an external
// authority (the group committer) as sealed groups, splitting at extent
// boundaries. Records must continue the writer's LSN sequence in order; the
// writer's own counter advances past them. It is SealAssigned followed by a
// serial AppendSealed per group — the depth-1 commit path.
func (w *Writer) AppendAssigned(recs []*Record) error {
	groups, err := w.SealAssigned(recs)
	if err != nil {
		return err
	}
	for _, g := range groups {
		if err := w.AppendSealed(g); err != nil {
			return err
		}
	}
	return nil
}

// SealAssigned validates records whose LSNs were assigned by an external
// authority, stamps them with the writer's fence epoch, advances the
// writer's LSN counter past them, and seals them into group envelopes —
// splitting where a group would outgrow one storage append. It performs no
// I/O: the returned groups are persisted by AppendSealed, possibly
// concurrently, which is how the commit pipeline keeps several appends in
// flight while sealing stays strictly serial in LSN order.
//
// A record too large for an extent poisons the writer: its LSN is already
// assigned, so skipping it would punch a permanent hole into the log that
// recovery could not tell apart from acknowledged-write loss. The committer
// prevents this case by rejecting such records at admission (MaxRecordSize)
// before an LSN exists.
func (w *Writer) SealAssigned(recs []*Record) ([]SealedGroup, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return nil, w.failed
	}
	// Validate the whole batch before sealing anything, so a poisoning
	// record cannot leave a partially sealed batch behind it.
	max := w.MaxRecordSize()
	next := w.nextLSN
	for _, r := range recs {
		if r.LSN < next {
			return nil, fmt.Errorf("wal: assigned LSN %d behind writer position %d", r.LSN, next)
		}
		next = r.LSN + 1
		if n := encodedSize(r); n > max {
			w.failed = fmt.Errorf("%w: lsn %d: %w (%d bytes, extent limit %d)",
				ErrWriterFailed, r.LSN, ErrRecordTooLarge, n, w.store.ExtentSize())
			return nil, w.failed
		}
	}
	w.nextLSN = next
	return w.sealLocked(recs), nil
}

// sealLocked stamps records with the writer's epoch and seals them into
// group envelopes, splitting where a group would outgrow one storage
// append. Records must fit individually (callers validate) and carry their
// final LSNs. Caller holds w.mu.
func (w *Writer) sealLocked(recs []*Record) []SealedGroup {
	limit := w.groupLimit()
	var groups []SealedGroup
	var frames [][]byte
	size := groupHeader + metaHeader
	var first, last LSN
	flush := func() {
		if len(frames) == 0 {
			return
		}
		meta := GroupMeta{Epoch: w.epoch, First: first, Count: len(frames)}
		groups = append(groups, SealedGroup{
			Data:  frameGroup(meta, frames),
			First: first,
			Last:  last,
			Count: len(frames),
			Epoch: w.epoch,
		})
		frames, size = nil, groupHeader+metaHeader
	}
	for _, r := range recs {
		r.Epoch = w.epoch
		encoded := Encode(r)
		if len(frames) > 0 && size+recHeader+len(encoded) > limit {
			flush()
		}
		if len(frames) == 0 {
			first = r.LSN
		}
		frames = append(frames, encoded)
		size += recHeader + len(encoded)
		last = r.LSN
	}
	flush()
	return groups
}

// AppendSealed persists one sealed group with a single storage append,
// retrying transient failures and poisoning the writer when they exhaust.
// It does not hold the writer's mutex across the storage round trip, so
// several sealed groups may be in flight concurrently; the group carries
// its own fence epoch, which storage checks on every append, so a fence
// raised mid-flight fails every outstanding append without persisting a
// byte. Storage completion order may differ from LSN order — readers
// reorder within a bounded window.
func (w *Writer) AppendSealed(g SealedGroup) error {
	w.mu.Lock()
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return err
	}
	retry := w.retry
	w.mu.Unlock()
	start := time.Now()
	err := retry.Do("wal: append", func() error {
		_, aerr := w.store.AppendEpoch(storage.StreamWAL, g.Epoch, 0, g.Data)
		return aerr
	})
	w.appendLat.Observe(time.Since(start))
	w.appends.Inc()
	if err == nil {
		return nil
	}
	ferr := fmt.Errorf("%w: lsn %d..%d (stream %v): %w",
		ErrWriterFailed, g.First, g.Last, storage.StreamWAL, err)
	w.mu.Lock()
	if w.failed == nil {
		w.failed = ferr
	}
	w.mu.Unlock()
	return ferr
}

// NextLSN returns the LSN the next record will receive.
func (w *Writer) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// AppendLatency returns the writer's per-append storage latency histogram
// (retries included — this is the cost a commit actually pays).
func (w *Writer) AppendLatency() *metrics.Histogram { return &w.appendLat }

// Appends returns the number of storage appends the writer has issued.
func (w *Writer) Appends() int64 { return w.appends.Load() }

// RegisterMetrics exposes the writer's accounting under the "wal." prefix.
func (w *Writer) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounter("wal.appends", &w.appends)
	r.RegisterHistogram("wal.append_us", &w.appendLat)
	r.GaugeFunc("wal.next_lsn", func() int64 { return int64(w.NextLSN()) })
	r.GaugeFunc("wal.epoch", func() int64 { return int64(w.epoch) })
}

// GapError reports a hole in the LSN sequence: a record arrived whose LSN
// is not the successor of the last one seen and the hole did not fill
// within the reader's reorder window. Gaps mean the reader's view of the
// log is missing acknowledged records — a trimmed or lost WAL extent — and
// the consumer must resynchronize from a snapshot (followers) or abort
// (crash recovery).
type GapError struct {
	Expected LSN // the LSN the sequence required next
	Got      LSN // the LSN actually observed
}

func (e *GapError) Error() string {
	return fmt.Sprintf("wal: gap in log: expected lsn %d, got %d", e.Expected, e.Got)
}

// Reorder-buffer defaults. Storage completion order may trail LSN order by
// at most the commit pipeline's depth, so a small window suffices; the
// stuck-poll limit bounds how long a reader waits for a hole to fill before
// declaring it permanent.
const (
	defaultReorderWindow = 64
	defaultStuckPolls    = 8
)

// pendingGroup is a decoded group envelope held aside because its first
// LSN does not yet connect to the delivered prefix.
type pendingGroup struct {
	recs  []*Record
	first LSN
	epoch uint64
}

// Reader tails the WAL stream of a shared store. Each RO node owns one.
//
// The reader tolerates the artifacts the write path leaves in an
// append-only log: a checksummed-garbage tail from a torn write (dropped
// and counted), duplicate records from a retried append (deduplicated by
// LSN), and zombie groups stamped with a fence epoch lower than the highest
// epoch observed — left behind by a deposed leader that raced the fence.
//
// Because the commit pipeline keeps several group appends in flight,
// storage completion order may differ from LSN order: a group whose first
// LSN runs ahead of the delivered prefix is held in a bounded reorder
// window until its predecessors land. Only a hole that persists — the
// window overflows, or enough polls pass without progress — is surfaced as
// *GapError, which means acknowledged records are genuinely missing
// (trimmed or lost WAL extent) and the consumer must resynchronize from a
// snapshot (followers) or abort (crash recovery).
type Reader struct {
	store *storage.Store
	cur   storage.Cursor
	last  LSN    // highest LSN returned; duplicates at or below are dropped
	epoch uint64 // highest fence epoch observed; lower-epoch groups are zombies
	based bool   // sequence anchored (SetBase called) even while last == 0

	window     int // max out-of-order groups held; 0 = immediate GapError
	stuckLimit int // polls without progress before a hole is permanent
	stuck      int // consecutive polls with pending groups and no progress

	pending map[LSN]*pendingGroup // keyed by first LSN

	torn   int64 // storage entries with a torn tail encountered
	dups   int64 // duplicate records dropped
	fenced int64 // stale-epoch zombie records skipped
}

// NewReader returns a reader positioned at the beginning of the WAL.
func NewReader(store *storage.Store) *Reader {
	return &Reader{store: store, window: defaultReorderWindow, stuckLimit: defaultStuckPolls}
}

// NewReaderAt returns a reader positioned at the given cursor (snapshot
// bootstrap: tail only the WAL suffix the snapshot does not cover).
func NewReaderAt(store *storage.Store, cur storage.Cursor) *Reader {
	r := NewReader(store)
	r.cur = cur
	return r
}

// SetBase declares every LSN at or below lsn already consumed (by a
// snapshot): such records are silently dropped and the sequence check
// starts at lsn+1.
func (r *Reader) SetBase(lsn LSN) {
	r.last = lsn
	r.based = true
}

// SetReorderWindow bounds how many out-of-order groups the reader holds
// aside waiting for a hole to fill. n = 0 disables reordering entirely: any
// out-of-order group is an immediate GapError (the strict pre-pipeline
// behaviour, for tests and depth-1 deployments).
func (r *Reader) SetReorderWindow(n int) {
	if n < 0 {
		n = 0
	}
	r.window = n
}

// LastLSN returns the highest LSN the reader has returned.
func (r *Reader) LastLSN() LSN { return r.last }

// Stats returns the torn-entry and duplicate counts absorbed so far.
func (r *Reader) Stats() (torn, dups int64) { return r.torn, r.dups }

// FencedSkips returns how many stale-epoch zombie records were discarded.
func (r *Reader) FencedSkips() int64 { return r.fenced }

// PendingGroups returns how many out-of-order groups are currently held in
// the reorder window — durable groups that cannot be delivered because an
// earlier LSN has not been observed. After a full replay, a non-zero value
// means the log tail holds debris from a failed pipelined commit: groups
// past the gapless durable prefix that were never acknowledged.
func (r *Reader) PendingGroups() int { return len(r.pending) }

// Epoch returns the highest fence epoch the reader has observed.
func (r *Reader) Epoch() uint64 { return r.epoch }

// Poll returns all records appended since the previous Poll, in LSN order.
// Torn group envelopes are discarded whole and retry duplicates dropped. On
// a permanent LSN gap Poll returns the records before the hole together
// with a *GapError, so the caller decides how to resync.
func (r *Reader) Poll() ([]*Record, error) {
	groups, err := r.PollGroups()
	var recs []*Record
	for _, g := range groups {
		recs = append(recs, g...)
	}
	return recs, err
}

// anchored reports whether the reader knows where the LSN sequence starts:
// either a base was declared or a record has been delivered.
func (r *Reader) anchored() bool { return r.based || r.last > 0 }

// smallestPending returns the lowest first LSN held in the reorder window
// (0 when empty).
func (r *Reader) smallestPending() LSN {
	var min LSN
	for first := range r.pending {
		if min == 0 || first < min {
			min = first
		}
	}
	return min
}

// purgeFenced drops pending groups sealed under an epoch below the
// reader's, returning how many it removed. Epochs are non-decreasing in
// storage order (the store re-checks the fence under the stream lock that
// orders entries), so once a higher epoch is observed, lower-epoch holes
// can never fill: the groups are debris from a fenced tenure.
func (r *Reader) purgeFenced() int {
	purged := 0
	for first, pg := range r.pending {
		if pg.epoch < r.epoch {
			r.fenced += int64(len(pg.recs))
			delete(r.pending, first)
			purged++
		}
	}
	return purged
}

// deliver appends the group's novel records to the delivered sequence,
// dropping duplicates and fenced zombies. A hole inside a single group is
// structurally impossible for a sealed envelope, so it is an immediate
// GapError, never buffered.
func (r *Reader) deliver(recs []*Record) ([]*Record, error) {
	var grp []*Record
	for _, rec := range recs {
		if rec.Epoch < r.epoch {
			// A zombie from a fenced epoch: the deposed leader's append
			// raced the fence. Skip it without touching r.last so the
			// surviving epoch's sequence stays gapless.
			r.fenced++
			continue
		}
		if rec.Epoch > r.epoch {
			r.epoch = rec.Epoch
			r.purgeFenced()
		}
		if rec.LSN <= r.last {
			r.dups++
			continue
		}
		if r.last > 0 && rec.LSN != r.last+1 {
			return grp, &GapError{Expected: r.last + 1, Got: rec.LSN}
		}
		r.last = rec.LSN
		grp = append(grp, rec)
	}
	return grp, nil
}

// PollGroups is Poll preserving commit-group boundaries: each inner slice
// holds the records one storage append sealed together, so a follower can
// replay a whole group before publishing its high LSN and never expose a
// half-applied batch. Records already consumed (snapshot base, retry
// duplicates) are filtered from their group; groups left empty are elided.
func (r *Reader) PollGroups() ([][]*Record, error) {
	entries, next, err := r.store.Scan(storage.StreamWAL, r.cur, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: poll at extent %d: %w", r.cur.Extent, err)
	}
	var groups [][]*Record
	progressed := false
	for _, e := range entries {
		meta, frames, ok, ferr := unframeGroup(e.Data)
		if ferr != nil {
			// The envelope passed its checksum but does not parse: real
			// corruption, not a torn tail.
			return groups, fmt.Errorf("wal: entry at %v: %w", e.Loc, ferr)
		}
		if !ok {
			// A torn append: the whole group is invalid, by construction —
			// no record of a torn flush is ever replayed.
			r.torn++
			continue
		}
		if meta.Epoch > r.epoch {
			r.epoch = meta.Epoch
			if r.purgeFenced() > 0 {
				progressed = true
			}
		} else if meta.Epoch < r.epoch {
			// The whole group was sealed under a fenced tenure: zombie.
			r.fenced += int64(meta.Count)
			continue
		}
		if meta.Count == 0 {
			continue
		}
		recs := make([]*Record, 0, len(frames))
		for _, f := range frames {
			rec, derr := Decode(f)
			if derr != nil {
				return groups, fmt.Errorf("wal: entry at %v: %w", e.Loc, derr)
			}
			recs = append(recs, rec)
		}
		switch {
		case r.anchored() && meta.First <= r.last+1,
			!r.anchored() && meta.First == 1:
			grp, gerr := r.deliver(recs)
			if len(grp) > 0 {
				groups = append(groups, grp)
				progressed = true
			}
			if gerr != nil {
				return groups, gerr
			}
		default:
			// Out of order: the group ran ahead of the delivered prefix
			// (pipelined completion) or the log head is missing. Hold it.
			if r.window == 0 {
				return groups, &GapError{Expected: r.last + 1, Got: meta.First}
			}
			if r.pending == nil {
				r.pending = make(map[LSN]*pendingGroup)
			}
			// A retried torn append can stash the same group twice; the
			// copies are identical, so overwriting is idempotent.
			r.pending[meta.First] = &pendingGroup{recs: recs, first: meta.First, epoch: meta.Epoch}
		}
		// Drain every held group the delivery just connected.
		if drained, gerr := r.drainPending(&groups); gerr != nil {
			return groups, gerr
		} else if drained {
			progressed = true
		}
	}
	r.cur = next
	if len(r.pending) == 0 {
		r.stuck = 0
		return groups, nil
	}
	if progressed {
		r.stuck = 0
	} else {
		r.stuck++
	}
	if !r.anchored() && (len(r.pending) > r.window || r.stuck > r.stuckLimit) {
		// Nothing ever connected to LSN 1 and the head never arrived: the
		// log's prefix is genuinely gone (trimmed without a declared base).
		// Adopt the smallest held group as the start of the sequence.
		r.last = r.smallestPending() - 1
		r.based = true
		r.stuck = 0
		if _, gerr := r.drainPending(&groups); gerr != nil {
			return groups, gerr
		}
		if len(r.pending) == 0 {
			return groups, nil
		}
	}
	if len(r.pending) > r.window || r.stuck > r.stuckLimit {
		return groups, &GapError{Expected: r.last + 1, Got: r.smallestPending()}
	}
	return groups, nil
}

// drainPending delivers held groups, in LSN order, for as long as the next
// one connects to the delivered prefix. Reports whether anything left the
// window.
func (r *Reader) drainPending(groups *[][]*Record) (bool, error) {
	drained := false
	for r.anchored() {
		var found *pendingGroup
		for _, pg := range r.pending {
			if pg.first <= r.last+1 {
				found = pg
				break
			}
		}
		if found == nil {
			return drained, nil
		}
		delete(r.pending, found.first)
		drained = true
		grp, gerr := r.deliver(found.recs)
		if len(grp) > 0 {
			*groups = append(*groups, grp)
		}
		if gerr != nil {
			return drained, gerr
		}
	}
	return drained, nil
}
