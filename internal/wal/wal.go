// Package wal implements the write-ahead log that BG3's I/O-efficient
// leader–follower synchronization ships through shared storage (§3.4).
//
// The RW node appends every Bw-tree modification — logical page updates,
// page splits, new-page creations — as WAL records with monotonically
// increasing log sequence numbers (LSNs). RO nodes tail the log from the
// shared store and lazily replay it onto cached pages. After the RW node's
// background flusher persists dirty pages and advances the durable mapping
// table, it appends a checkpoint record ("storage has completed all
// modifications up to LSN x"), letting RO nodes truncate their replay
// buffers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"bg3/internal/storage"
)

// LSN is a log sequence number. LSN 0 is reserved and never assigned.
type LSN uint64

// RecordType discriminates WAL records.
type RecordType uint8

const (
	// RecordPut logs a logical key-value upsert applied to a page.
	RecordPut RecordType = iota + 1
	// RecordDelete logs a logical key deletion applied to a page.
	RecordDelete
	// RecordSplit logs a structural split: page PageID moved all keys >=
	// Key to the new page AuxPage.
	RecordSplit
	// RecordNewPage logs the creation of a page that does not exist in the
	// durable mapping table yet; RO nodes materialize it directly in memory.
	RecordNewPage
	// RecordNewRoot logs a root change for a tree: AuxPage is the new root.
	RecordNewRoot
	// RecordCheckpoint declares that shared storage (pages + mapping table)
	// reflects every modification with LSN <= CheckpointLSN. RO nodes drop
	// buffered records up to that point.
	RecordCheckpoint
	// RecordNewTree logs creation of a Bw-tree (forest growth): TreeID is
	// the new tree, AuxPage its root page.
	RecordNewTree
	// RecordOwnerAssign logs a forest owner migration: the owner encoded in
	// Key (8-byte big endian) is now served by TreeID. It is emitted after
	// the owner's data has been copied into the dedicated tree and before
	// it is deleted from INIT, so replicas that switch routing at this
	// record always observe a complete copy.
	RecordOwnerAssign
)

// String returns the record type's name.
func (t RecordType) String() string {
	switch t {
	case RecordPut:
		return "put"
	case RecordDelete:
		return "delete"
	case RecordSplit:
		return "split"
	case RecordNewPage:
		return "new-page"
	case RecordNewRoot:
		return "new-root"
	case RecordCheckpoint:
		return "checkpoint"
	case RecordNewTree:
		return "new-tree"
	case RecordOwnerAssign:
		return "owner-assign"
	default:
		return fmt.Sprintf("record(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	LSN     LSN
	Type    RecordType
	TreeID  uint64
	PageID  uint64
	AuxPage uint64 // split target / new root / new tree root
	CkptLSN LSN    // checkpoint horizon, for RecordCheckpoint
	Key     []byte
	Value   []byte
}

// ErrCorrupt is returned when a WAL record fails to decode.
var ErrCorrupt = errors.New("wal: corrupt record")

// Encode serializes r. Layout (little endian):
//
//	type[1] lsn[8] tree[8] page[8] aux[8] ckpt[8] klen[4] vlen[4] key value
func Encode(r *Record) []byte {
	buf := make([]byte, 1+8*5+4+4+len(r.Key)+len(r.Value))
	buf[0] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(buf[9:], r.TreeID)
	binary.LittleEndian.PutUint64(buf[17:], r.PageID)
	binary.LittleEndian.PutUint64(buf[25:], r.AuxPage)
	binary.LittleEndian.PutUint64(buf[33:], uint64(r.CkptLSN))
	binary.LittleEndian.PutUint32(buf[41:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[45:], uint32(len(r.Value)))
	copy(buf[49:], r.Key)
	copy(buf[49+len(r.Key):], r.Value)
	return buf
}

// Decode parses a record previously produced by Encode.
func Decode(buf []byte) (*Record, error) {
	if len(buf) < 49 {
		return nil, fmt.Errorf("%w: short record (%d bytes)", ErrCorrupt, len(buf))
	}
	r := &Record{
		Type:    RecordType(buf[0]),
		LSN:     LSN(binary.LittleEndian.Uint64(buf[1:])),
		TreeID:  binary.LittleEndian.Uint64(buf[9:]),
		PageID:  binary.LittleEndian.Uint64(buf[17:]),
		AuxPage: binary.LittleEndian.Uint64(buf[25:]),
		CkptLSN: LSN(binary.LittleEndian.Uint64(buf[33:])),
	}
	klen := binary.LittleEndian.Uint32(buf[41:])
	vlen := binary.LittleEndian.Uint32(buf[45:])
	if int(klen)+int(vlen)+49 != len(buf) {
		return nil, fmt.Errorf("%w: length mismatch klen=%d vlen=%d total=%d", ErrCorrupt, klen, vlen, len(buf))
	}
	if klen > 0 {
		r.Key = append([]byte(nil), buf[49:49+klen]...)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), buf[49+klen:]...)
	}
	if r.Type == 0 || r.Type > RecordOwnerAssign {
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, buf[0])
	}
	return r, nil
}

// Writer appends WAL records to the shared store, assigning LSNs. It is
// safe for concurrent use; LSN order equals storage append order because
// both happen under one mutex (the paper's WAL writes are tiny and the
// shared store guarantees low write latency, so serializing here models the
// same commit point).
type Writer struct {
	store *storage.Store

	mu      sync.Mutex
	nextLSN LSN
}

// NewWriter returns a writer that appends to the store's WAL stream.
func NewWriter(store *storage.Store) *Writer {
	return &Writer{store: store, nextLSN: 1}
}

// NewWriterFrom returns a writer whose next LSN is the given value —
// recovery resumes the sequence past the highest LSN already in the WAL.
func NewWriterFrom(store *storage.Store, next LSN) *Writer {
	if next < 1 {
		next = 1
	}
	return &Writer{store: store, nextLSN: next}
}

// frame prefixes an encoded record with its length so several records can
// share one storage append (group commit pays one storage round trip for
// the whole batch).
func frame(buf []byte, rec []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
	return append(buf, rec...)
}

// unframe splits a storage entry back into encoded records.
func unframe(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		n := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return nil, fmt.Errorf("%w: truncated frame body", ErrCorrupt)
		}
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	return out, nil
}

// Append assigns the next LSN to r, persists it, and returns the LSN.
func (w *Writer) Append(r *Record) (LSN, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r.LSN = w.nextLSN
	if _, err := w.store.Append(storage.StreamWAL, r.PageID, frame(nil, Encode(r))); err != nil {
		return 0, err
	}
	w.nextLSN++
	return r.LSN, nil
}

// AppendBatch persists records as one atomic group with consecutive LSNs
// and a single storage append — the group-commit path. It returns the LSN
// of the last record.
func (w *Writer) AppendBatch(recs []*Record) (LSN, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var buf []byte
	var last LSN
	for _, r := range recs {
		r.LSN = w.nextLSN
		w.nextLSN++
		last = r.LSN
		buf = frame(buf, Encode(r))
	}
	if _, err := w.store.Append(storage.StreamWAL, 0, buf); err != nil {
		return 0, err
	}
	return last, nil
}

// AppendAssigned persists records whose LSNs were assigned by an external
// authority (the group-commit logger) as one storage append. Records must
// continue the writer's LSN sequence in order; the writer's own counter
// advances past them.
func (w *Writer) AppendAssigned(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// A batch must fit one storage append (an extent); split oversized
	// batches into several appends, preserving order under the lock.
	limit := w.store.ExtentSize() - 64
	if limit < 256 {
		limit = 256
	}
	var buf []byte
	for _, r := range recs {
		if r.LSN < w.nextLSN {
			return fmt.Errorf("wal: assigned LSN %d behind writer position %d", r.LSN, w.nextLSN)
		}
		w.nextLSN = r.LSN + 1
		encoded := Encode(r)
		if len(buf) > 0 && len(buf)+4+len(encoded) > limit {
			if _, err := w.store.Append(storage.StreamWAL, 0, buf); err != nil {
				return err
			}
			buf = nil
		}
		buf = frame(buf, encoded)
	}
	if len(buf) == 0 {
		return nil
	}
	_, err := w.store.Append(storage.StreamWAL, 0, buf)
	return err
}

// NextLSN returns the LSN the next record will receive.
func (w *Writer) NextLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Reader tails the WAL stream of a shared store. Each RO node owns one.
type Reader struct {
	store *storage.Store
	cur   storage.Cursor
}

// NewReader returns a reader positioned at the beginning of the WAL.
func NewReader(store *storage.Store) *Reader {
	return &Reader{store: store}
}

// NewReaderAt returns a reader positioned at the given cursor (snapshot
// bootstrap: tail only the WAL suffix the snapshot does not cover).
func NewReaderAt(store *storage.Store, cur storage.Cursor) *Reader {
	return &Reader{store: store, cur: cur}
}

// Poll returns all records appended since the previous Poll, in LSN order.
func (r *Reader) Poll() ([]*Record, error) {
	entries, next, err := r.store.Scan(storage.StreamWAL, r.cur, 0)
	if err != nil {
		return nil, err
	}
	recs := make([]*Record, 0, len(entries))
	for _, e := range entries {
		frames, err := unframe(e.Data)
		if err != nil {
			return nil, err
		}
		for _, f := range frames {
			rec, err := Decode(f)
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
		}
	}
	r.cur = next
	return recs, nil
}
