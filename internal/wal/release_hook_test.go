package wal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bg3/internal/storage"
)

// TestOnReleaseOrderedBeforeAck drives a pipelined committer with many
// concurrent writers and asserts the OnRelease hook's contract: it fires
// with strictly increasing group-boundary LSNs, and by the time any
// writer's wait() returns, the hook has already covered that writer's LSN
// (the read epoch includes the writer's own commit).
func TestOnReleaseOrderedBeforeAck(t *testing.T) {
	st := storage.Open(&storage.Options{WriteLatency: time.Millisecond})
	defer st.Close()
	w := NewWriter(st)

	var epoch atomic.Uint64 // mirrors what mvcc.Source.Advance would hold
	var mu sync.Mutex
	var releases []LSN
	c := NewGroupCommitter(w, GroupCommitterOptions{
		MaxBatch:      8,
		PipelineDepth: 4,
		OnRelease: func(last LSN) {
			mu.Lock()
			releases = append(releases, last)
			mu.Unlock()
			epoch.Store(uint64(last))
		},
	})
	defer c.Stop()

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				rec := &Record{Type: RecordPut, Key: []byte{byte(i), byte(j)}, Value: []byte("v")}
				lsn, wait := c.LogAsync(rec)
				if err := wait(); err != nil {
					errs <- err
					return
				}
				if got := epoch.Load(); got < uint64(lsn) {
					t.Errorf("ack released at lsn %d before OnRelease covered it (epoch %d)", lsn, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("commit failed: %v", err)
	default:
	}

	mu.Lock()
	defer mu.Unlock()
	if len(releases) == 0 {
		t.Fatal("OnRelease never fired")
	}
	for i := 1; i < len(releases); i++ {
		if releases[i] <= releases[i-1] {
			t.Fatalf("OnRelease LSNs not strictly increasing: %d then %d", releases[i-1], releases[i])
		}
	}
	if last := releases[len(releases)-1]; last != c.LastLSN() {
		t.Fatalf("final released LSN %d != last assigned LSN %d", last, c.LastLSN())
	}
}
