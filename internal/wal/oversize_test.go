package wal

import (
	"bytes"
	"errors"
	"testing"

	"bg3/internal/storage"
)

// Regression tests for the single-record-larger-than-extent gap: a record
// that cannot fit one storage append even as a group of its own. The
// contract depends on whether an LSN exists yet:
//
//   - Append / AppendBatch reject it before assigning an LSN — plain
//     ErrRecordTooLarge, writer stays healthy, no sequence hole;
//   - AppendAssigned must fail-stop (ErrWriterFailed wrapping
//     ErrRecordTooLarge): the LSN is already assigned, so skipping the
//     record would punch a hole recovery can't tell from data loss;
//   - the GroupCommitter rejects at admission, before an LSN exists, so a
//     caller mistake costs one write, not the log.

func oversizedRecord(st *storage.Store) *Record {
	return &Record{
		Type:  RecordPut,
		Key:   []byte("huge"),
		Value: bytes.Repeat([]byte{0xAB}, st.ExtentSize()+1),
	}
}

func TestAppendRejectsOversizedRecordWithoutPoisoning(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	w := NewWriter(st)

	_, err := w.Append(oversizedRecord(st))
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	if errors.Is(err, ErrWriterFailed) {
		t.Fatalf("oversized Append poisoned the writer: %v", err)
	}

	// No LSN was consumed: the next record must be LSN 1 and the log gapless.
	lsn, err := w.Append(&Record{Type: RecordPut, Key: []byte("ok")})
	if err != nil || lsn != 1 {
		t.Fatalf("Append after rejection = (%d, %v), want (1, nil)", lsn, err)
	}
	recs, err := NewReader(st).Poll()
	if err != nil || len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("WAL = %d records (err %v), want exactly LSN 1", len(recs), err)
	}
}

func TestAppendBatchRejectsOversizedRecordUpfront(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	w := NewWriter(st)

	batch := []*Record{
		{Type: RecordPut, Key: []byte("a")},
		oversizedRecord(st),
		{Type: RecordPut, Key: []byte("b")},
	}
	if _, err := w.AppendBatch(batch); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}

	// Validation is up-front: nothing from the batch persisted, no LSN burned.
	if recs, err := NewReader(st).Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("WAL = %d records (err %v), want empty after rejected batch", len(recs), err)
	}
	if lsn, err := w.Append(&Record{Type: RecordPut, Key: []byte("ok")}); err != nil || lsn != 1 {
		t.Fatalf("Append after rejection = (%d, %v), want (1, nil)", lsn, err)
	}
}

func TestAppendAssignedOversizedRecordFailsStop(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	w := NewWriter(st)

	huge := oversizedRecord(st)
	huge.LSN = 1
	err := w.AppendAssigned([]*Record{huge})
	if !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("err = %v, want ErrWriterFailed", err)
	}
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want wrapped ErrRecordTooLarge", err)
	}

	// Fail-stop: every later append reports the poisoning error.
	if _, err := w.Append(&Record{Type: RecordPut, Key: []byte("x")}); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("writer accepted a record after fail-stop: %v", err)
	}
	if recs, perr := NewReader(st).Poll(); perr != nil || len(recs) != 0 {
		t.Fatalf("WAL = %d records (err %v), want empty", len(recs), perr)
	}
}

func TestAppendAssignedOversizedValidatesBeforePersisting(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	w := NewWriter(st)

	// The oversized record sits behind two valid ones; validation must run
	// before any of them persists, or recovery would see a partial batch.
	huge := oversizedRecord(st)
	huge.LSN = 3
	batch := []*Record{
		{Type: RecordPut, LSN: 1, Key: []byte("a")},
		{Type: RecordPut, LSN: 2, Key: []byte("b")},
		huge,
	}
	if err := w.AppendAssigned(batch); !errors.Is(err, ErrWriterFailed) || !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrWriterFailed wrapping ErrRecordTooLarge", err)
	}
	if recs, err := NewReader(st).Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("WAL = %d records (err %v), want empty — batch must not partially persist", len(recs), err)
	}
}

func TestGroupCommitterRejectsOversizedAtAdmission(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	w := NewWriter(st)
	c := NewGroupCommitter(w, GroupCommitterOptions{})
	defer c.Stop()

	_, err := c.Log(oversizedRecord(st))
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
	if errors.Is(err, ErrWriterFailed) {
		t.Fatalf("admission rejection poisoned the writer: %v", err)
	}

	// The committer never assigned the record an LSN: the log stays gapless
	// and live.
	lsn, err := c.Log(&Record{Type: RecordPut, Key: []byte("ok")})
	if err != nil || lsn != 1 {
		t.Fatalf("Log after rejection = (%d, %v), want (1, nil)", lsn, err)
	}
	recs, err := NewReader(st).Poll()
	if err != nil || len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("WAL = %d records (err %v), want exactly LSN 1", len(recs), err)
	}
}
