package wal

import (
	"errors"
	"testing"

	"bg3/internal/storage"
)

// epochEntry describes one storage append in a crafted WAL tail: a group
// envelope of (lsn, epoch) put records, optionally torn (truncated
// mid-envelope, as a crash or fenced-out flush leaves it).
type epochEntry struct {
	recs []struct{ lsn, epoch uint64 }
	torn bool
}

func env(pairs ...[2]uint64) epochEntry {
	e := epochEntry{}
	for _, p := range pairs {
		e.recs = append(e.recs, struct{ lsn, epoch uint64 }{p[0], p[1]})
	}
	return e
}

func tornEnv(pairs ...[2]uint64) epochEntry {
	e := env(pairs...)
	e.torn = true
	return e
}

// TestReaderSkipsZombieTails pins the reader half of the fencing contract:
// records stamped with a fence epoch below the highest one observed are
// zombies from a deposed leader and must be skipped — counted, invisible,
// and without breaking the surviving epoch's LSN continuity. Epoch bumps
// must not mask genuine holes either: a real LSN gap is still a GapError.
func TestReaderSkipsZombieTails(t *testing.T) {
	cases := []struct {
		name    string
		entries []epochEntry
		want    []uint64 // LSNs delivered
		fenced  int64
		torn    int64
		dups    int64
		epoch   uint64 // reader's final epoch
		gap     bool
		pending int // groups parked in the reorder window
	}{
		{
			name:    "clean epoch handoff",
			entries: []epochEntry{env([2]uint64{1, 0}, [2]uint64{2, 0}), env([2]uint64{3, 1})},
			want:    []uint64{1, 2, 3},
			epoch:   1,
		},
		{
			name: "zombie envelope after the fence",
			entries: []epochEntry{
				env([2]uint64{1, 0}, [2]uint64{2, 0}),
				env([2]uint64{3, 1}),
				env([2]uint64{3, 0}, [2]uint64{4, 0}), // deposed leader's tail
				env([2]uint64{4, 1}),
			},
			want:   []uint64{1, 2, 3, 4},
			fenced: 2,
			epoch:  1,
		},
		{
			name: "zombie record inside a group",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				env([2]uint64{2, 1}, [2]uint64{999, 0}, [2]uint64{3, 1}),
			},
			want:   []uint64{1, 2, 3},
			fenced: 1,
			epoch:  1,
		},
		{
			name: "torn flush then promoted leader reuses the LSN",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				tornEnv([2]uint64{2, 0}), // the kill landed mid-envelope
				env([2]uint64{2, 1}),     // never durable, so the successor resumes at 2
			},
			want:  []uint64{1, 2},
			torn:  1,
			epoch: 1,
		},
		{
			name: "retry duplicate and zombie together",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				env([2]uint64{1, 0}), // torn-append retry duplicate
				env([2]uint64{2, 1}),
				env([2]uint64{2, 0}), // zombie reusing the promoted LSN
			},
			want:   []uint64{1, 2},
			fenced: 1,
			dups:   1,
			epoch:  1,
		},
		{
			name: "multiple failovers interleaved",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				env([2]uint64{2, 2}), // second failover's leader
				env([2]uint64{2, 1}), // first failover's zombie, itself deposed
				env([2]uint64{3, 2}),
			},
			want:   []uint64{1, 2, 3},
			fenced: 1,
			epoch:  2,
		},
		{
			name: "epoch bump does not mask a real hole",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				env([2]uint64{3, 1}), // LSN 2 is genuinely missing
			},
			// The hole could still be an in-flight pipelined append, so the
			// first poll parks the group instead of erroring; only repeated
			// polls without progress escalate to a GapError.
			want:    []uint64{1},
			epoch:   1,
			pending: 1,
		},
		{
			name: "fence purges a parked zombie group",
			entries: []epochEntry{
				env([2]uint64{1, 0}),
				env([2]uint64{3, 0}, [2]uint64{4, 0}), // deposed pipeline debris past a hole
				env([2]uint64{2, 1}),                  // the successor's tenure begins
			},
			// Observing epoch 1 proves the parked epoch-0 group can never
			// connect: the fence ordered it before any epoch-1 append.
			want:   []uint64{1, 2},
			fenced: 2,
			epoch:  1,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := storage.Open(nil)
			defer st.Close()
			for _, e := range tc.entries {
				var frames [][]byte
				var meta GroupMeta
				for i, r := range e.recs {
					if i == 0 {
						meta.First = LSN(r.lsn)
					}
					if r.epoch > meta.Epoch {
						meta.Epoch = r.epoch
					}
					frames = append(frames, Encode(&Record{
						Type: RecordPut, LSN: LSN(r.lsn), Epoch: r.epoch,
						Key: []byte("k"), Value: []byte("v"),
					}))
				}
				meta.Count = len(frames)
				buf := frameGroup(meta, frames)
				if e.torn {
					buf = buf[:len(buf)-3]
				}
				if _, err := st.Append(storage.StreamWAL, 0, buf); err != nil {
					t.Fatal(err)
				}
			}

			r := NewReader(st)
			recs, err := r.Poll()
			var gap *GapError
			if tc.gap != errors.As(err, &gap) {
				t.Fatalf("Poll err = %v, want gap=%v", err, tc.gap)
			}
			if !tc.gap && err != nil {
				t.Fatalf("Poll: %v", err)
			}
			var got []uint64
			for _, rec := range recs {
				got = append(got, uint64(rec.LSN))
			}
			if len(got) != len(tc.want) {
				t.Fatalf("delivered LSNs %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("delivered LSNs %v, want %v", got, tc.want)
				}
			}
			torn, dups := r.Stats()
			if torn != tc.torn || dups != tc.dups || r.FencedSkips() != tc.fenced {
				t.Errorf("torn/dups/fenced = %d/%d/%d, want %d/%d/%d",
					torn, dups, r.FencedSkips(), tc.torn, tc.dups, tc.fenced)
			}
			if r.Epoch() != tc.epoch {
				t.Errorf("reader epoch = %d, want %d", r.Epoch(), tc.epoch)
			}
			if r.PendingGroups() != tc.pending {
				t.Errorf("pending groups = %d, want %d", r.PendingGroups(), tc.pending)
			}
		})
	}
}

// TestWriterFailsStopOnFence pins the writer half: once the stream is
// fenced, the next append fails with an error wrapping storage.ErrFenced
// (never retried — the fence is permanent), the writer is poisoned, and
// every subsequent append reports ErrWriterFailed. A writer built after
// the fence adopts the new epoch and stamps it into its records.
func TestWriterFailsStopOnFence(t *testing.T) {
	st := storage.Open(nil)
	defer st.Close()

	old := NewWriter(st)
	if _, err := old.Append(&Record{Type: RecordPut, Key: []byte("a"), Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AdvanceStreamEpoch(storage.StreamWAL); err != nil {
		t.Fatal(err)
	}

	_, err := old.Append(&Record{Type: RecordPut, Key: []byte("b"), Value: []byte("2")})
	if !errors.Is(err, storage.ErrFenced) {
		t.Fatalf("fenced append err = %v, want ErrFenced", err)
	}
	if _, err := old.Append(&Record{Type: RecordPut, Key: []byte("c"), Value: []byte("3")}); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("post-fence append err = %v, want ErrWriterFailed", err)
	}
	if old.Err() == nil {
		t.Fatal("fenced writer not poisoned")
	}

	succ := NewWriterFrom(st, 2)
	if succ.Epoch() != 1 {
		t.Fatalf("successor epoch = %d, want 1", succ.Epoch())
	}
	if _, err := succ.Append(&Record{Type: RecordPut, Key: []byte("b"), Value: []byte("2")}); err != nil {
		t.Fatal(err)
	}

	r := NewReader(st)
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Epoch != 0 || recs[1].Epoch != 1 {
		t.Fatalf("log contents: %d records", len(recs))
	}
	if r.FencedSkips() != 0 {
		t.Fatal("the storage fence admitted zombie bytes")
	}
}

// TestNewWriterFromEpochRejectsLostRace pins the promotion-race contract: a
// candidate that claimed epoch N but lost to a rival on N+1 builds its
// writer with the explicitly claimed token — so its first append fails with
// ErrFenced instead of silently adopting the rival's epoch and interleaving
// conflicting LSNs into the winner's log.
func TestNewWriterFromEpochRejectsLostRace(t *testing.T) {
	st := storage.Open(nil)
	mine, err := st.AdvanceStreamEpoch(storage.StreamWAL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AdvanceStreamEpoch(storage.StreamWAL); err != nil { // the rival wins
		t.Fatal(err)
	}

	w := NewWriterFromEpoch(st, 1, mine)
	if _, err := w.Append(&Record{Type: RecordPut, Key: []byte("k"), Value: []byte("v")}); !errors.Is(err, storage.ErrFenced) {
		t.Fatalf("loser's append err = %v, want ErrFenced", err)
	}
}
