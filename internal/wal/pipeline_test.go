package wal

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bg3/internal/storage"
)

// fakeAppender implements sealedAppender over an in-memory "storage" whose
// append completions are released one by one from the outside, in any
// order — the scheduler a property test needs to explore out-of-order
// pipelined completion and mid-pipeline failure.
type fakeAppender struct {
	mu      sync.Mutex
	cond    sync.Cond
	next    LSN
	blocked map[LSN]chan error // in-flight appends by first LSN, awaiting release
	durable map[LSN]LSN        // completed appends: first LSN -> last LSN
	drain   bool               // release everything that still arrives
}

func newFakeAppender() *fakeAppender {
	f := &fakeAppender{
		next:    1,
		blocked: make(map[LSN]chan error),
		durable: make(map[LSN]LSN),
	}
	f.cond.L = &f.mu
	return f
}

func (f *fakeAppender) MaxRecordSize() int { return 1 << 20 }

func (f *fakeAppender) NextLSN() LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// SealAssigned seals every batch into exactly one group (no extent
// splitting in the fake).
func (f *fakeAppender) SealAssigned(recs []*Record) ([]SealedGroup, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	first, last := recs[0].LSN, recs[len(recs)-1].LSN
	f.next = last + 1
	return []SealedGroup{{First: first, Last: last, Count: len(recs)}}, nil
}

// AppendSealed parks the append until the scheduler releases it. A nil
// release marks the group durable before the committer learns of the
// completion, exactly like real storage.
func (f *fakeAppender) AppendSealed(g SealedGroup) error {
	ch := make(chan error, 1)
	f.mu.Lock()
	if f.drain {
		ch <- nil
	}
	f.blocked[g.First] = ch
	f.cond.Broadcast()
	f.mu.Unlock()
	err := <-ch
	f.mu.Lock()
	delete(f.blocked, g.First)
	if err == nil {
		f.durable[g.First] = g.Last
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	return err
}

// gaplessPrefix returns the highest LSN such that every LSN up to it is
// durable.
func (f *fakeAppender) gaplessPrefix() LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	var p LSN
	for {
		last, ok := f.durable[p+1]
		if !ok {
			return p
		}
		p = last
	}
}

// releaseLoop keeps picking a random parked append and releasing it —
// failing the group that contains failLSN (0: no failure) — until
// drained() is signaled and nothing is parked.
func (f *fakeAppender) releaseLoop(rng *rand.Rand, failLSN LSN) {
	for {
		f.mu.Lock()
		for len(f.blocked) == 0 && !f.drain {
			f.cond.Wait()
		}
		if len(f.blocked) == 0 && f.drain {
			f.mu.Unlock()
			return
		}
		firsts := make([]LSN, 0, len(f.blocked))
		for first, ch := range f.blocked {
			if ch == nil {
				continue
			}
			firsts = append(firsts, first)
		}
		if len(firsts) == 0 {
			// Everything parked was already released and is finishing up.
			f.cond.Wait()
			f.mu.Unlock()
			continue
		}
		first := firsts[rng.Intn(len(firsts))]
		ch := f.blocked[first]
		f.blocked[first] = nil // released, completion pending
		last := f.durableBoundLocked(first)
		f.mu.Unlock()
		if failLSN != 0 && first <= failLSN && failLSN <= last {
			ch <- errors.New("fake: injected append failure")
		} else {
			ch <- nil
		}
	}
}

// durableBoundLocked is a helper to recover a parked group's last LSN from
// the next parked or durable first (the fake does not store it); the
// committer only parks contiguous groups, so the bound is first..next-1
// capped by what SealAssigned handed out. For failure targeting we only
// need "does the group starting at first contain failLSN", which the
// caller checks against the next group boundary.
func (f *fakeAppender) durableBoundLocked(first LSN) LSN {
	bound := f.next - 1
	for other := range f.blocked {
		if other > first && other-1 < bound {
			bound = other - 1
		}
	}
	for other := range f.durable {
		if other > first && other-1 < bound {
			bound = other - 1
		}
	}
	return bound
}

func (f *fakeAppender) drained() {
	f.mu.Lock()
	f.drain = true
	for first, ch := range f.blocked {
		if ch != nil {
			f.blocked[first] = nil
			ch <- nil
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// TestPipelinedCommitProperty drives the committer against the fake for
// random (depth, batch size, completion order, failure point) schedules and
// checks the durable-prefix contract:
//
//   - an acked record implies its group and every earlier group were
//     durable at ack time (no ack precedes durability, acks release in LSN
//     order);
//   - with a failure injected at some group, the ack/fail partition is
//     exact: every LSN before the failed group's first acks nil, every LSN
//     from it on fails;
//   - after the dust settles, storage's gapless durable prefix ends
//     exactly where the acks did.
func TestPipelinedCommitProperty(t *testing.T) {
	const records = 24
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			depth := 1 + rng.Intn(8)
			maxBatch := 1 + rng.Intn(3)
			var failLSN LSN
			if rng.Intn(2) == 0 {
				failLSN = LSN(1 + rng.Intn(records))
			}

			f := newFakeAppender()
			c := newGroupCommitterFor(f, GroupCommitterOptions{
				PipelineDepth: depth,
				MaxBatch:      maxBatch,
			})
			var schedWG sync.WaitGroup
			schedWG.Add(1)
			go func() {
				defer schedWG.Done()
				f.releaseLoop(rand.New(rand.NewSource(seed+1000)), failLSN)
			}()

			results := make([]error, records+1)
			var assigned atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < records; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lsn, wait := c.LogAsync(&Record{Type: RecordPut, Key: []byte("k")})
					err := wait()
					if lsn == 0 {
						// Rejected after pipeline death, before an LSN existed.
						if err == nil {
							t.Errorf("seed %d: record acked without an LSN", seed)
						}
						return
					}
					assigned.Add(1)
					results[lsn] = err
					if err == nil {
						if p := f.gaplessPrefix(); p < lsn {
							t.Errorf("seed %d: lsn %d acked with durable prefix %d", seed, lsn, p)
						}
					}
				}()
			}
			wg.Wait()
			f.drained()
			schedWG.Wait()
			c.Stop()

			// The partition point: the first LSN of the group containing
			// failLSN. Recover it from the ack results themselves and then
			// verify both sides are pure.
			// LSNs are assigned contiguously from 1, so the count of assigned
			// records is also the highest assigned LSN.
			maxLSN := LSN(assigned.Load())
			cut := maxLSN + 1
			if failLSN != 0 {
				for lsn := LSN(1); lsn <= maxLSN; lsn++ {
					if results[lsn] != nil {
						cut = lsn
						break
					}
				}
				if cut > failLSN {
					t.Fatalf("seed %d: failure at %d but first failed ack is %d", seed, failLSN, cut)
				}
			}
			for lsn := LSN(1); lsn <= maxLSN; lsn++ {
				if lsn < cut && results[lsn] != nil {
					t.Errorf("seed %d: lsn %d before the failed group got %v", seed, lsn, results[lsn])
				}
				if lsn >= cut && results[lsn] == nil {
					t.Errorf("seed %d: lsn %d at/after the failed group acked durable", seed, lsn)
				}
			}
			if p := f.gaplessPrefix(); p < cut-1 {
				t.Errorf("seed %d: durable prefix %d, want at least %d (every acked LSN durable)", seed, p, cut-1)
			}
			if failLSN == 0 {
				if maxLSN != records {
					t.Errorf("seed %d: no failure injected but only %d/%d records assigned", seed, maxLSN, records)
				}
				if p := f.gaplessPrefix(); p != records {
					t.Errorf("seed %d: no failure injected but durable prefix is %d/%d", seed, p, records)
				}
			}
		})
	}
}

// TestPipelineUtilizationOverlapsAppends pins that depth > 1 actually
// overlaps storage round trips: with slow appends and single-record
// groups, the mean in-flight count observed at dispatch exceeds 1, and the
// log remains a gapless, fully-delivered sequence despite out-of-order
// completions.
func TestPipelineUtilizationOverlapsAppends(t *testing.T) {
	const writers, ops = 16, 6
	st := storage.Open(&storage.Options{WriteLatency: 2 * time.Millisecond})
	defer st.Close()
	w := NewWriter(st)
	c := NewGroupCommitter(w, GroupCommitterOptions{PipelineDepth: 4, MaxBatch: 1})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				if _, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(i), byte(j)}}); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	c.Stop()

	if mean := c.InflightUtilization().Mean(); mean <= 1 {
		t.Errorf("mean in-flight = %.2f, want > 1 (pipeline never overlapped)", mean)
	}
	if c.AckReorder().Count() == 0 {
		t.Error("no ack-reorder observations despite pipelined flushes")
	}

	recs, err := NewReader(st).Poll()
	if err != nil {
		t.Fatalf("replay after pipelined commits: %v", err)
	}
	if len(recs) != writers*ops {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*ops)
	}
	for i, rec := range recs {
		if rec.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d: delivery out of order", i, rec.LSN)
		}
	}
}

// TestAdaptiveDepthResizes pins the adaptive controller: sustained queue
// stalls widen the pipeline from its serial start, a calm serial phase
// decays it back to 1, and the effective depth never leaves
// [1, PipelineDepth].
func TestAdaptiveDepthResizes(t *testing.T) {
	st := storage.Open(&storage.Options{WriteLatency: 2 * time.Millisecond})
	defer st.Close()
	w := NewWriter(st)
	c := NewGroupCommitter(w, GroupCommitterOptions{
		PipelineDepth: 8,
		AdaptiveDepth: true,
		MaxBatch:      8,
		QueueDepth:    8,
	})
	if d := c.PipelineDepth(); d != 1 {
		t.Fatalf("adaptive committer starts at depth %d, want 1", d)
	}

	// Pressure phase: 32 writers against an 8-deep queue force stalls,
	// which the controller must answer by widening.
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(i), byte(j)}}); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	grown := c.PipelineDepth()
	if grown < 2 {
		t.Errorf("depth after sustained stalls = %d, want > 1", grown)
	}
	if grown > 8 {
		t.Errorf("depth %d exceeds the configured bound 8", grown)
	}

	// Calm phase: a single serial writer produces near-empty groups and no
	// stalls; the controller must hand the depth back.
	for j := 0; j < 160; j++ {
		if _, err := c.Log(&Record{Type: RecordPut, Key: []byte{byte(j)}}); err != nil {
			t.Fatalf("serial op %d: %v", j, err)
		}
	}
	if d := c.PipelineDepth(); d != 1 {
		t.Errorf("depth after calm serial phase = %d, want decay back to 1", d)
	}
	c.Stop()
}
