package wal

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bg3/internal/storage"
)

// noSleep makes retry backoff free in tests.
func noSleep(p storage.RetryPolicy) storage.RetryPolicy {
	p.Sleep = func(time.Duration) {}
	return p
}

func TestWriterRetriesTransientAppend(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 1})
	st := storage.Open(&storage.Options{Faults: plan})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.DefaultRetry))
	plan.SetEnabled(false)

	// Exactly one transient failure: the retry must absorb it and ack.
	plan.SetEnabled(true)
	plan.TearNext()
	lsn, err := w.Append(&Record{Type: RecordPut, Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		t.Fatalf("append with one torn write: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("lsn = %d, want 1", lsn)
	}
	if w.Err() != nil {
		t.Fatalf("writer poisoned by an absorbed fault: %v", w.Err())
	}

	// The stream now holds a torn prefix plus the retried full copy; a
	// reader must surface the record exactly once.
	plan.SetEnabled(false)
	r := NewReader(st)
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 || string(recs[0].Key) != "k" {
		t.Fatalf("poll after torn retry = %v", recs)
	}
	torn, dups := r.Stats()
	if torn != 1 {
		t.Fatalf("torn entries absorbed = %d, want 1", torn)
	}
	_ = dups // the torn prefix failed its checksum, so no duplicate decoded
}

func TestWriterFailsStopAfterExhaustedRetries(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 2, AppendFailProb: 1})
	st := storage.Open(&storage.Options{Faults: plan})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.RetryPolicy{MaxAttempts: 3}))

	_, err := w.Append(&Record{Type: RecordPut, Key: []byte("k")})
	if !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("err = %v, want ErrWriterFailed", err)
	}
	if !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("poison error %v does not preserve the storage cause", err)
	}
	// Satellite contract: the wrapped error carries LSN and stream context.
	if want := "lsn 1..1"; !contains(err.Error(), want) {
		t.Fatalf("error %q missing %q", err, want)
	}
	if !contains(err.Error(), storage.StreamWAL.String()) {
		t.Fatalf("error %q missing the stream name", err)
	}

	// Fail-stop: the plan is healthy again, but the writer must refuse to
	// continue — a success here would leave LSN 1 as a permanent hole.
	plan.SetEnabled(false)
	if _, err := w.Append(&Record{Type: RecordPut}); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("poisoned writer accepted an append: %v", err)
	}
	if w.Err() == nil {
		t.Fatal("Err() nil on a poisoned writer")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func TestReaderDropsTornBatchTailAndDedups(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 3})
	st := storage.Open(&storage.Options{Faults: plan})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.DefaultRetry))

	recs := make([]*Record, 5)
	for i := range recs {
		recs[i] = &Record{Type: RecordPut, Key: []byte{byte('a' + i)}}
	}
	// Tear the batch append: a prefix of the batch lands (some complete
	// frames plus garbage), then the retry appends the whole batch again.
	plan.TearNext()
	if _, err := w.AppendBatch(recs); err != nil {
		t.Fatalf("batch with torn first attempt: %v", err)
	}

	r := NewReader(st)
	got, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("polled %d records, want %d exactly once each", len(got), len(recs))
	}
	for i, rec := range got {
		if rec.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	torn, dups := r.Stats()
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
	// Whether duplicates appear depends on where the tear cut: complete
	// frames in the torn prefix are re-delivered by the retry.
	t.Logf("dedup absorbed %d duplicate records", dups)
}

func TestReaderReportsGap(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Forge a hole: skip LSN 4 and append 5 directly.
	forged := &Record{Type: RecordPut, LSN: 5, Key: []byte("z")}
	buf := frameGroup(GroupMeta{First: 5, Count: 1}, [][]byte{Encode(forged)})
	if _, err := st.Append(storage.StreamWAL, 0, buf); err != nil {
		t.Fatal(err)
	}

	// With reordering disabled (strict depth-1 semantics) the hole is an
	// immediate GapError.
	strict := NewReader(st)
	strict.SetReorderWindow(0)
	recs, err := strict.Poll()
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("err = %v, want *GapError", err)
	}
	if gap.Expected != 4 || gap.Got != 5 {
		t.Fatalf("gap = %+v, want expected 4 got 5", gap)
	}
	if len(recs) != 3 {
		t.Fatalf("records before the hole = %d, want 3", len(recs))
	}
	// The cursor did not advance past the hole: a second poll re-reports
	// the gap instead of silently skipping it.
	if _, err := strict.Poll(); !errors.As(err, &gap) {
		t.Fatalf("second poll err = %v, want the gap again", err)
	}

	// A windowed reader first parks the group — the hole could be a
	// pipelined append still in flight — and only escalates to a GapError
	// after repeated polls show no progress.
	r := NewReader(st)
	recs, err = r.Poll()
	if err != nil {
		t.Fatalf("windowed first poll: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("windowed poll delivered %d records, want 3", len(recs))
	}
	if r.PendingGroups() != 1 {
		t.Fatalf("pending groups = %d, want the post-hole group parked", r.PendingGroups())
	}
	err = nil
	for i := 0; i < defaultStuckPolls+2 && err == nil; i++ {
		_, err = r.Poll()
	}
	if !errors.As(err, &gap) {
		t.Fatalf("stuck polls err = %v, want *GapError", err)
	}
	if gap.Expected != 4 || gap.Got != 5 {
		t.Fatalf("escalated gap = %+v, want expected 4 got 5", gap)
	}
}

func TestReaderSetBaseSkipsSnapshotPrefix(t *testing.T) {
	st := storage.Open(nil)
	w := NewWriter(st)
	for i := 0; i < 6; i++ {
		if _, err := w.Append(&Record{Type: RecordPut, Key: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(st)
	r.SetBase(4)
	recs, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 5 || recs[1].LSN != 6 {
		t.Fatalf("poll with base 4 = %v, want LSNs 5,6", lsnsOf(recs))
	}
	if _, dups := r.Stats(); dups != 4 {
		t.Fatalf("dups = %d, want the 4 pre-base records dropped", dups)
	}
}

func lsnsOf(recs []*Record) []LSN {
	out := make([]LSN, len(recs))
	for i, r := range recs {
		out[i] = r.LSN
	}
	return out
}

func TestWriterErrWrappingIsMatchable(t *testing.T) {
	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: 9, TornWriteProb: 1})
	st := storage.Open(&storage.Options{Faults: plan})
	w := NewWriter(st)
	w.SetRetry(noSleep(storage.RetryPolicy{MaxAttempts: 2}))
	_, err := w.AppendBatch([]*Record{
		{Type: RecordPut, Key: []byte("a")},
		{Type: RecordPut, Key: []byte("b")},
	})
	for _, target := range []error{ErrWriterFailed, storage.ErrTornWrite} {
		if !errors.Is(err, target) {
			t.Errorf("errors.Is(%v, %v) = false", err, target)
		}
	}
	if want := fmt.Sprintf("lsn %d..%d", 1, 2); !contains(err.Error(), want) {
		t.Errorf("error %q missing batch LSN range %q", err, want)
	}
}
