package wal

import (
	"bytes"
	"testing"
)

// FuzzUnframeGroup throws arbitrary bytes — plus torn and corrupted variants
// of whatever valid envelope the fuzzer discovers — at the group-envelope
// decoder and checks the recovery contract:
//
//   - never panics, on any input;
//   - ok implies a canonical envelope: re-sealing the parsed frames
//     reproduces the input byte for byte;
//   - every strict prefix of a valid envelope reads as torn (ok=false,
//     err=nil) — a crashed append can only leave a prefix, and a torn tail
//     must drop the whole group, never surface as corruption;
//   - every single-byte flip of a valid envelope reads as torn — the CRC
//     covers the full payload and the header is length-checked;
//   - parsed frames survive Record decoding without panicking.
//
// Seed corpus: testdata/fuzz/FuzzUnframeGroup (checked in).
func FuzzUnframeGroup(f *testing.F) {
	// A group of one empty record, a multi-record group, and junk.
	f.Add(frameGroup([][]byte{{}}))
	f.Add(frameGroup([][]byte{
		Encode(&Record{Type: RecordPut, LSN: 1, Key: []byte("k"), Value: []byte("v")}),
		Encode(&Record{Type: RecordDelete, LSN: 2, Key: []byte("k")}),
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		frames, ok, err := unframeGroup(data)
		if ok && err != nil {
			t.Fatalf("ok with error: %v", err)
		}
		if !ok {
			return
		}

		// Canonical round trip.
		resealed := frameGroup(frames)
		if !bytes.Equal(resealed, data) {
			t.Fatalf("re-sealing %d frames does not reproduce the envelope:\n in: %x\nout: %x",
				len(frames), data, resealed)
		}

		// Record decoding must be total (error, never panic).
		for _, fr := range frames {
			_, _ = Decode(fr)
		}

		// Torn-tail property: a failed append persists a byte prefix; every
		// strict prefix must be rejected as torn, not parsed and not flagged
		// as corruption.
		for _, cut := range []int{0, 1, groupHeader - 1, groupHeader, len(data) / 2, len(data) - 1} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if _, pok, perr := unframeGroup(data[:cut]); pok || perr != nil {
				t.Fatalf("prefix of %d/%d bytes: ok=%v err=%v, want torn", cut, len(data), pok, perr)
			}
		}

		// Bit-rot property: any single-byte flip breaks either the length
		// check or the payload CRC.
		for _, i := range []int{0, 4, groupHeader, len(data) / 2, len(data) - 1} {
			if i < 0 || i >= len(data) {
				continue
			}
			mut := bytes.Clone(data)
			mut[i] ^= 0x01
			if _, mok, merr := unframeGroup(mut); mok || merr != nil {
				t.Fatalf("flip at byte %d/%d: ok=%v err=%v, want torn", i, len(data), mok, merr)
			}
		}
	})
}
