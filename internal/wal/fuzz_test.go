package wal

import (
	"bytes"
	"errors"
	"testing"

	"bg3/internal/storage"
)

// FuzzUnframeGroup throws arbitrary bytes — plus torn and corrupted variants
// of whatever valid envelope the fuzzer discovers — at the group-envelope
// decoder and checks the recovery contract:
//
//   - never panics, on any input;
//   - ok implies a canonical envelope: re-sealing the parsed frames
//     reproduces the input byte for byte;
//   - every strict prefix of a valid envelope reads as torn (ok=false,
//     err=nil) — a crashed append can only leave a prefix, and a torn tail
//     must drop the whole group, never surface as corruption;
//   - every single-byte flip of a valid envelope reads as torn — the CRC
//     covers the full payload and the header is length-checked;
//   - parsed frames survive Record decoding without panicking.
//
// Seed corpus: testdata/fuzz/FuzzUnframeGroup (checked in).
func FuzzUnframeGroup(f *testing.F) {
	// A group of one empty record, a multi-record group, and junk.
	f.Add(frameGroup(GroupMeta{First: 1, Count: 1}, [][]byte{{}}))
	f.Add(frameGroup(GroupMeta{Epoch: 3, First: 1, Count: 2}, [][]byte{
		Encode(&Record{Type: RecordPut, LSN: 1, Key: []byte("k"), Value: []byte("v")}),
		Encode(&Record{Type: RecordDelete, LSN: 2, Key: []byte("k")}),
	}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, frames, ok, err := unframeGroup(data)
		if ok && err != nil {
			t.Fatalf("ok with error: %v", err)
		}
		if !ok {
			return
		}
		if len(frames) != meta.Count {
			t.Fatalf("ok envelope: %d frames but meta count %d", len(frames), meta.Count)
		}

		// Canonical round trip.
		resealed := frameGroup(meta, frames)
		if !bytes.Equal(resealed, data) {
			t.Fatalf("re-sealing %d frames does not reproduce the envelope:\n in: %x\nout: %x",
				len(frames), data, resealed)
		}

		// Record decoding must be total (error, never panic).
		for _, fr := range frames {
			_, _ = Decode(fr)
		}

		// Torn-tail property: a failed append persists a byte prefix; every
		// strict prefix must be rejected as torn, not parsed and not flagged
		// as corruption.
		for _, cut := range []int{0, 1, groupHeader - 1, groupHeader, groupHeader + metaHeader - 1, len(data) / 2, len(data) - 1} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if _, _, pok, perr := unframeGroup(data[:cut]); pok || perr != nil {
				t.Fatalf("prefix of %d/%d bytes: ok=%v err=%v, want torn", cut, len(data), pok, perr)
			}
		}

		// Bit-rot property: any single-byte flip breaks either the length
		// check or the payload CRC — the meta block included.
		for _, i := range []int{0, 4, groupHeader, groupHeader + 1, groupHeader + metaHeader, len(data) / 2, len(data) - 1} {
			if i < 0 || i >= len(data) {
				continue
			}
			mut := bytes.Clone(data)
			mut[i] ^= 0x01
			if _, _, mok, merr := unframeGroup(mut); mok || merr != nil {
				t.Fatalf("flip at byte %d/%d: ok=%v err=%v, want torn", i, len(data), mok, merr)
			}
		}
	})
}

// Damage actions a fuzzed multi-group tail can apply per group.
const (
	tailIntact = iota
	tailTorn
	tailFlip
	tailDrop
)

// FuzzReaderMultiGroupTail writes K pipelined group envelopes to raw
// storage — an arbitrary subset torn, bit-flipped, or dropped entirely, as
// a crashed pipelined leader would leave them — and checks the reader's
// durable-prefix contract:
//
//   - exactly the records of the gapless intact prefix are delivered, in
//     LSN order;
//   - no record from a group at or past the first damaged group is ever
//     delivered (no post-gap resurrection), on this poll or any later one;
//   - intact post-gap groups are parked as pending, and a persistent gap
//     escalates to GapError rather than silent loss.
//
// Seed corpus: testdata/fuzz/FuzzReaderMultiGroupTail (checked in).
func FuzzReaderMultiGroupTail(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 2, 0, 0, 0, 0, 7, 13})          // 5 groups, second torn
	f.Add([]byte{2, 0, 0, 0, 3, 1, 5})                    // 3 groups, gap then flip
	f.Add([]byte{4, 2, 2, 2, 2, 0, 0, 0, 0, 0, 99, 3, 1}) // all intact
	f.Add([]byte{0, 0, 1})                                // first group torn: empty prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		at := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		k := 1 + int(at(0))%5

		st := storage.Open(&storage.Options{})
		defer st.Close()

		// Build and append the damaged tail, tracking where the gapless
		// intact prefix ends.
		var (
			lsn       LSN = 1
			prefixEnd LSN
			inPrefix  = true
			pending   int
		)
		for i := 0; i < k; i++ {
			n := 1 + int(at(1+i))%3
			first := lsn
			frames := make([][]byte, n)
			for j := 0; j < n; j++ {
				frames[j] = Encode(&Record{Type: RecordPut, LSN: lsn, Key: []byte{byte(lsn)}})
				lsn++
			}
			env := frameGroup(GroupMeta{First: first, Count: n}, frames)
			action := int(at(1+k+i)) % 4
			entropy := int(at(1 + 2*k + i))
			switch action {
			case tailTorn:
				env = env[:1+entropy%(len(env)-1)]
			case tailFlip:
				env[entropy%len(env)] ^= 0x01
			case tailDrop:
				env = nil
			}
			if action == tailIntact {
				if inPrefix {
					prefixEnd = lsn - 1
				} else {
					pending++
				}
			} else {
				inPrefix = false
			}
			if env != nil {
				if _, err := st.Append(storage.StreamWAL, 0, env); err != nil {
					t.Fatalf("raw append: %v", err)
				}
			}
		}

		// Recovery always declares its base (snapshot horizon, here stream
		// birth), so the reader is anchored: it must never adopt a post-gap
		// group as a new origin.
		r := NewReader(st)
		r.SetBase(0)
		recs, err := r.Poll()
		if err != nil {
			t.Fatalf("first poll: %v", err)
		}
		if len(recs) != int(prefixEnd) {
			t.Fatalf("delivered %d records, want gapless prefix of %d", len(recs), prefixEnd)
		}
		for i, rec := range recs {
			if rec.LSN != LSN(i+1) {
				t.Fatalf("record %d has LSN %d, want in-order prefix", i, rec.LSN)
			}
		}
		if got := r.PendingGroups(); got != pending {
			t.Fatalf("%d groups parked, want %d intact post-gap groups", got, pending)
		}

		// Later polls must hold the line: no post-gap resurrection, and a
		// persistent gap escalates to GapError instead of silence.
		var sawGap bool
		for i := 0; i < defaultStuckPolls+2; i++ {
			more, perr := r.Poll()
			if len(more) != 0 {
				t.Fatalf("poll %d resurrected %d post-gap records (first LSN %d)", i, len(more), more[0].LSN)
			}
			if perr != nil {
				var gap *GapError
				if !errors.As(perr, &gap) {
					t.Fatalf("poll %d: %v, want GapError", i, perr)
				}
				if gap.Expected != prefixEnd+1 {
					t.Fatalf("gap reported at %d, want %d", gap.Expected, prefixEnd+1)
				}
				sawGap = true
			}
		}
		if pending > 0 && !sawGap {
			t.Fatalf("%d groups parked behind a permanent gap but no GapError escalated", pending)
		}
	})
}
