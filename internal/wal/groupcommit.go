package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bg3/internal/metrics"
)

// ErrCommitterStopped is returned for records caught in a committer
// shutdown.
var ErrCommitterStopped = errors.New("wal: group committer stopped")

// GroupCommitterOptions tunes the coalescing triggers of a GroupCommitter.
type GroupCommitterOptions struct {
	// MaxBatch is the size trigger: a flush is cut as soon as this many
	// records are pending, without waiting out MaxDelay. 0 means 64.
	MaxBatch int
	// MaxDelay is the latency trigger: how long the committer lets a group
	// accumulate after the first record arrives before flushing. 0 flushes
	// as soon as the queue drains — every record still shares an append
	// with whatever arrived while the previous flush was in flight.
	MaxDelay time.Duration
	// QueueDepth bounds the pending queue. A writer that would overflow it
	// blocks until a flush makes room (backpressure rather than unbounded
	// memory); the stall is recorded in wal.group_stall_us. 0 means 4096.
	QueueDepth int
}

func (o GroupCommitterOptions) withDefaults() GroupCommitterOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.QueueDepth < o.MaxBatch {
		o.QueueDepth = o.MaxBatch
	}
	return o
}

// commitReq is one record awaiting group commit.
type commitReq struct {
	rec  *Record
	at   time.Time // when the record was enqueued; commit latency base
	done chan error
}

// GroupCommitter batches WAL records into shared storage appends and is the
// node's LSN authority — the paper's §3.4 write-side amortization: many
// logical writes share one ms-latency storage round trip. It sits between
// the forest's bwtree.WALLogger hook and the Writer.
//
// LogAsync assigns the LSN immediately — callers hold their page latch only
// for that instant — and returns a wait function that blocks until the
// record's group is durable; Log is the synchronous convenience wrapper.
// A flush is cut when MaxBatch records are pending or MaxDelay has passed
// since the flusher woke, whichever comes first. A failed flush fans its
// error to every record in that flush (and, because a storage failure
// poisons the Writer fail-stop, to everything behind it).
type GroupCommitter struct {
	w    *Writer
	opts GroupCommitterOptions

	mu      sync.Mutex
	space   sync.Cond // signaled when a flush frees queue room
	nextLSN LSN
	pending []commitReq
	wake    chan struct{}
	full    chan struct{}
	stopped bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	statsMu sync.Mutex
	batches int64
	records int64

	commitLat metrics.Histogram    // enqueue to durable, per record
	groupSize metrics.IntHistogram // records per flush
	flushes   metrics.Counter      // storage flushes issued
	stallLat  metrics.Histogram    // time writers spent blocked on a full queue
}

// NewGroupCommitter starts the committer goroutine against w.
func NewGroupCommitter(w *Writer, opts GroupCommitterOptions) *GroupCommitter {
	c := &GroupCommitter{
		w:       w,
		opts:    opts.withDefaults(),
		nextLSN: w.NextLSN(),
		wake:    make(chan struct{}, 1),
		full:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.space.L = &c.mu
	go c.run()
	return c
}

// LogAsync assigns the next LSN to rec, enqueues it for group commit, and
// returns the LSN plus a wait function that blocks until the record is
// durable. Enqueue order equals LSN order, so the WAL on storage is always
// LSN-sorted. A record too large to ever fit a storage append is rejected
// here, before an LSN exists — the failure stays scoped to this one write
// instead of fail-stopping the log.
func (c *GroupCommitter) LogAsync(rec *Record) (LSN, func() error) {
	if n := encodedSize(rec); n > c.w.MaxRecordSize() {
		err := fmt.Errorf("%w: %d bytes, max %d", ErrRecordTooLarge, n, c.w.MaxRecordSize())
		return 0, func() error { return err }
	}
	req := commitReq{rec: rec, at: time.Now(), done: make(chan error, 1)}
	c.mu.Lock()
	for !c.stopped && len(c.pending) >= c.opts.QueueDepth {
		start := time.Now()
		c.space.Wait()
		c.stallLat.Observe(time.Since(start))
	}
	if c.stopped {
		c.mu.Unlock()
		return 0, func() error { return ErrCommitterStopped }
	}
	rec.LSN = c.nextLSN
	c.nextLSN++
	c.pending = append(c.pending, req)
	n := len(c.pending)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	if n >= c.opts.MaxBatch {
		// Size trigger: cut the flush without waiting out MaxDelay.
		select {
		case c.full <- struct{}{}:
		default:
		}
	}
	return rec.LSN, func() error { return <-req.done }
}

// Log implements bwtree.WALLogger: enqueue and wait for durability.
func (c *GroupCommitter) Log(rec *Record) (LSN, error) {
	lsn, wait := c.LogAsync(rec)
	if err := wait(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// LastLSN returns the most recently assigned LSN (0 if none).
func (c *GroupCommitter) LastLSN() LSN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextLSN - 1
}

func (c *GroupCommitter) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			c.failPending(ErrCommitterStopped)
			return
		case <-c.wake:
		}
		// Let a group accumulate for MaxDelay — or until the size trigger
		// fires — then drain in MaxBatch flushes until the queue is empty.
		if c.opts.MaxDelay > 0 {
			timer := time.NewTimer(c.opts.MaxDelay)
			select {
			case <-timer.C:
			case <-c.full:
				timer.Stop()
			case <-c.stop:
				timer.Stop()
				c.failPending(ErrCommitterStopped)
				return
			}
		}
		for {
			c.mu.Lock()
			n := len(c.pending)
			if n == 0 {
				c.mu.Unlock()
				break
			}
			if n > c.opts.MaxBatch {
				n = c.opts.MaxBatch
			}
			batch := make([]commitReq, n)
			copy(batch, c.pending[:n])
			c.pending = append(c.pending[:0], c.pending[n:]...)
			c.space.Broadcast()
			c.mu.Unlock()

			recs := make([]*Record, n)
			for i, req := range batch {
				recs[i] = req.rec
			}
			err := c.w.AppendAssigned(recs)
			now := time.Now()
			for _, req := range batch {
				c.commitLat.Observe(now.Sub(req.at))
				req.done <- err
			}
			c.groupSize.Observe(int64(n))
			c.flushes.Inc()
			c.statsMu.Lock()
			c.batches++
			c.records += int64(n)
			c.statsMu.Unlock()
		}
	}
}

func (c *GroupCommitter) failPending(err error) {
	c.mu.Lock()
	c.stopped = true
	pending := c.pending
	c.pending = nil
	c.space.Broadcast()
	c.mu.Unlock()
	for _, req := range pending {
		req.done <- err
	}
}

// Stop terminates the committer. Pending records fail.
func (c *GroupCommitter) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// BatchStats returns (flushes committed, records committed).
func (c *GroupCommitter) BatchStats() (int64, int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.batches, c.records
}

// GroupSize returns the records-per-flush histogram: its mean is the
// write-side amortization factor (records acked per storage round trip).
func (c *GroupCommitter) GroupSize() *metrics.IntHistogram { return &c.groupSize }

// CommitLatency returns the enqueue-to-durable latency histogram. It covers
// the full client-visible commit wait: the group window plus the storage
// append (and its retries).
func (c *GroupCommitter) CommitLatency() *metrics.Histogram { return &c.commitLat }

// StallLatency returns the histogram of time writers spent blocked on a
// full queue (backpressure).
func (c *GroupCommitter) StallLatency() *metrics.Histogram { return &c.stallLat }

// RegisterMetrics exposes the committer's accounting under the "wal."
// prefix, next to the writer's per-append metrics.
func (c *GroupCommitter) RegisterMetrics(r *metrics.Registry) {
	r.RegisterHistogram("wal.commit_us", &c.commitLat)
	r.RegisterIntHistogram("wal.group_size", &c.groupSize)
	r.RegisterCounter("wal.group_flushes", &c.flushes)
	r.RegisterHistogram("wal.group_stall_us", &c.stallLat)
	r.CounterFunc("wal.commit_batches", func() int64 { b, _ := c.BatchStats(); return b })
	r.CounterFunc("wal.commit_records", func() int64 { _, n := c.BatchStats(); return n })
	r.GaugeFunc("wal.last_lsn", func() int64 { return int64(c.LastLSN()) })
}
