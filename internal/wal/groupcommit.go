package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bg3/internal/metrics"
)

// ErrCommitterStopped is returned for records caught in a committer
// shutdown.
var ErrCommitterStopped = errors.New("wal: group committer stopped")

// GroupCommitterOptions tunes the coalescing triggers of a GroupCommitter.
type GroupCommitterOptions struct {
	// MaxBatch is the size trigger: a flush is cut as soon as this many
	// records are pending, without waiting out MaxDelay. 0 means 64.
	MaxBatch int
	// MaxDelay is the latency trigger: how long the committer lets a group
	// accumulate after the first record arrives before flushing. 0 flushes
	// as soon as the queue drains — every record still shares an append
	// with whatever arrived while the previous flush was in flight.
	MaxDelay time.Duration
	// QueueDepth bounds the pending queue. A writer that would overflow it
	// blocks until a flush makes room (backpressure rather than unbounded
	// memory); the stall is recorded in wal.group_stall_us. 0 means 4096.
	QueueDepth int
	// PipelineDepth is how many sealed group appends the committer keeps in
	// flight concurrently (BtrLog-style commit pipelining). Storage
	// completions may land out of order, but acks are released strictly in
	// LSN order: a group's writers learn of durability only once every
	// earlier group is durable too. <= 1 preserves the serial
	// one-append-at-a-time behaviour.
	PipelineDepth int
	// AdaptiveDepth lets the committer resize its effective depth and
	// accumulation window between 1 and PipelineDepth, widening under
	// queue-stall pressure and narrowing when groups run near-empty.
	AdaptiveDepth bool
	// OnRelease, when set, is invoked with the last LSN of each group just
	// before that group's writers are acked. Because flights retire from
	// the FIFO strictly in LSN order, successive calls carry strictly
	// increasing LSNs and each marks a gapless durable prefix — the MVCC
	// epoch source hangs off this hook to advance the global read epoch at
	// group-commit boundaries. The callback runs on the release path and
	// must not block.
	OnRelease func(last LSN)
}

func (o GroupCommitterOptions) withDefaults() GroupCommitterOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.QueueDepth < o.MaxBatch {
		o.QueueDepth = o.MaxBatch
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 1
	}
	return o
}

// commitReq is one record awaiting group commit.
type commitReq struct {
	rec  *Record
	at   time.Time // when the record was enqueued; commit latency base
	done chan error
}

// sealedAppender is the slice of *Writer the committer drives: serial LSN
// sealing plus concurrent sealed-group appends. Narrowed to an interface so
// the pipeline's scheduling can be property-tested against a fake storage
// with controlled completion order.
type sealedAppender interface {
	MaxRecordSize() int
	NextLSN() LSN
	SealAssigned(recs []*Record) ([]SealedGroup, error)
	AppendSealed(g SealedGroup) error
}

var _ sealedAppender = (*Writer)(nil)

// flight is one sealed group dispatched to storage and not yet released.
// Flights retire from the FIFO strictly in dispatch (= LSN) order, however
// their storage appends complete.
type flight struct {
	g      SealedGroup
	reqs   []commitReq
	done   bool
	err    error
	doneAt time.Time // when the storage append completed
}

// adaptEvery is how many released groups pass between adaptive-depth
// reassessments.
const adaptEvery = 16

// GroupCommitter batches WAL records into shared storage appends and is the
// node's LSN authority — the paper's §3.4 write-side amortization: many
// logical writes share one ms-latency storage round trip. It sits between
// the forest's bwtree.WALLogger hook and the Writer.
//
// LogAsync assigns the LSN immediately — callers hold their page latch only
// for that instant — and returns a wait function that blocks until the
// record's group is durable; Log is the synchronous convenience wrapper.
// A flush is cut when MaxBatch records are pending or the accumulation
// window has passed since the flusher woke, whichever comes first.
//
// With PipelineDepth > 1 the committer keeps several sealed groups in
// flight at once. Completions may arrive out of order, but release is
// strictly in order: a group acks its writers only when it reaches the head
// of the flight FIFO and everything ahead of it is durable. A failed flight
// partitions the LSN space exactly at the last gapless durable prefix —
// every record before the failed group was acked durable, every record in
// or after it (in flight, sealed, or still queued) fails, and the committer
// fail-stops.
type GroupCommitter struct {
	a    sealedAppender
	opts GroupCommitterOptions

	mu      sync.Mutex
	space   sync.Cond // signaled when a flush frees queue room
	nextLSN LSN
	pending []commitReq
	wake    chan struct{}
	full    chan struct{}
	stopped bool
	poison  error // first failure; records admitted afterwards get it

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// fmu guards the flight FIFO and the pipeline's adaptive state. Lock
	// order is fmu -> mu -> statsMu; never the reverse.
	fmu       sync.Mutex
	slot      sync.Cond // signaled when a flight completes (slot frees)
	flights   []*flight // dispatched, not yet released, FIFO in LSN order
	inflight  int       // dispatched flights whose append has not completed
	effDepth  int       // current pipeline depth (adaptive)
	effWindow time.Duration
	pipeDead  bool
	pipeErr   error
	wg        sync.WaitGroup

	// adaptive sampling state, guarded by fmu
	sinceAdapt   int
	lastStalls   int64
	adaptRecords int64
	adaptFlushes int64

	statsMu sync.Mutex
	batches int64
	records int64

	commitLat    metrics.Histogram    // enqueue to durable, per record
	groupSize    metrics.IntHistogram // records per flush
	flushes      metrics.Counter      // storage flushes issued
	stallLat     metrics.Histogram    // time writers spent blocked on a full queue
	ackReorder   metrics.Histogram    // completion-to-release wait per group
	inflightHist metrics.IntHistogram // in-flight appends observed at dispatch
}

// NewGroupCommitter starts the committer goroutine against w.
func NewGroupCommitter(w *Writer, opts GroupCommitterOptions) *GroupCommitter {
	return newGroupCommitterFor(w, opts)
}

// newGroupCommitterFor is NewGroupCommitter against any sealed appender
// (property tests substitute a fake storage with controlled completions).
func newGroupCommitterFor(a sealedAppender, opts GroupCommitterOptions) *GroupCommitter {
	opts = opts.withDefaults()
	c := &GroupCommitter{
		a:         a,
		opts:      opts,
		nextLSN:   a.NextLSN(),
		wake:      make(chan struct{}, 1),
		full:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		effDepth:  opts.PipelineDepth,
		effWindow: opts.MaxDelay,
	}
	if opts.AdaptiveDepth && opts.PipelineDepth > 1 {
		// Adaptive sizing starts serial and earns its depth: it widens only
		// when queue stalls show the single in-flight append is the
		// bottleneck, so an idle stream keeps the serial committer's
		// amortization.
		c.effDepth = 1
	}
	c.space.L = &c.mu
	c.slot.L = &c.fmu
	go c.run()
	return c
}

// LogAsync assigns the next LSN to rec, enqueues it for group commit, and
// returns the LSN plus a wait function that blocks until the record is
// durable. Enqueue order equals LSN order, so acks release in LSN order
// even when pipelined storage appends complete out of it. A record too
// large to ever fit a storage append is rejected here, before an LSN
// exists — the failure stays scoped to this one write instead of
// fail-stopping the log.
func (c *GroupCommitter) LogAsync(rec *Record) (LSN, func() error) {
	if n := encodedSize(rec); n > c.a.MaxRecordSize() {
		err := fmt.Errorf("%w: %d bytes, max %d", ErrRecordTooLarge, n, c.a.MaxRecordSize())
		return 0, func() error { return err }
	}
	req := commitReq{rec: rec, at: time.Now(), done: make(chan error, 1)}
	c.mu.Lock()
	for !c.stopped && len(c.pending) >= c.opts.QueueDepth {
		start := time.Now()
		c.space.Wait()
		c.stallLat.Observe(time.Since(start))
	}
	if c.stopped {
		err := c.poison
		if err == nil {
			err = ErrCommitterStopped
		}
		c.mu.Unlock()
		return 0, func() error { return err }
	}
	rec.LSN = c.nextLSN
	c.nextLSN++
	c.pending = append(c.pending, req)
	n := len(c.pending)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	if n >= c.opts.MaxBatch {
		// Size trigger: cut the flush without waiting out the window.
		select {
		case c.full <- struct{}{}:
		default:
		}
	}
	return rec.LSN, func() error { return <-req.done }
}

// Log implements bwtree.WALLogger: enqueue and wait for durability.
func (c *GroupCommitter) Log(rec *Record) (LSN, error) {
	lsn, wait := c.LogAsync(rec)
	if err := wait(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// LastLSN returns the most recently assigned LSN (0 if none).
func (c *GroupCommitter) LastLSN() LSN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextLSN - 1
}

// window returns the current accumulation window (adaptive).
func (c *GroupCommitter) window() time.Duration {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.effWindow
}

func (c *GroupCommitter) run() {
	defer close(c.done)
	defer func() {
		// Sealed flights always run to completion and release (ack or
		// partition); only the unsealed queue — a suffix of the LSN space —
		// fails on shutdown, so stopping never punches a hole into the acks.
		c.failPending(ErrCommitterStopped)
		c.wg.Wait()
	}()
	for {
		select {
		case <-c.stop:
			return
		case <-c.wake:
		}
		// Let a group accumulate for the window — or until the size trigger
		// fires — then drain in MaxBatch flushes until the queue is empty.
		if d := c.window(); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-c.full:
				timer.Stop()
			case <-c.stop:
				timer.Stop()
				return
			}
		}
		for {
			// Wait for a free pipeline slot BEFORE cutting the batch, so the
			// queue keeps accumulating while every slot is busy. At depth 1
			// this is exactly the serial committer's amortization — the
			// in-flight append's round trip is the accumulation window — and
			// at depth K the cut happens as late as admission allows.
			c.waitSlot()
			c.mu.Lock()
			if c.stopped {
				// The pipeline failed underneath us: everything is acked or
				// failed already.
				c.mu.Unlock()
				return
			}
			n := len(c.pending)
			if n == 0 {
				c.mu.Unlock()
				break
			}
			if n > c.opts.MaxBatch {
				n = c.opts.MaxBatch
			}
			batch := make([]commitReq, n)
			copy(batch, c.pending[:n])
			c.pending = append(c.pending[:0], c.pending[n:]...)
			c.space.Broadcast()
			c.mu.Unlock()

			recs := make([]*Record, n)
			for i, req := range batch {
				recs[i] = req.rec
			}
			groups, err := c.a.SealAssigned(recs)
			if err != nil {
				now := time.Now()
				for _, req := range batch {
					c.commitLat.Observe(now.Sub(req.at))
					req.done <- err
				}
				c.failPending(err)
				return
			}
			// One cut batch seals into one or more groups (extent splits);
			// each becomes its own flight, dispatched in LSN order.
			rest := batch
			for _, g := range groups {
				f := &flight{g: g, reqs: rest[:g.Count]}
				rest = rest[g.Count:]
				if perr := c.dispatch(f); perr != nil {
					// The pipeline died while we waited for a slot; dispatch
					// acked f's requests, fail the rest of the batch here.
					now := time.Now()
					for _, req := range rest {
						c.commitLat.Observe(now.Sub(req.at))
						req.done <- fmt.Errorf("wal: commit pipeline failed: %w", perr)
					}
					return
				}
			}
		}
	}
}

// waitSlot blocks until the pipeline has a free slot (or has died) without
// admitting anything. The run loop calls it before cutting a batch so the
// queue accumulates for the whole time the pipeline is saturated; dispatch
// then admits without blocking (the run loop is the only dispatcher, so the
// free slot cannot be stolen in between).
func (c *GroupCommitter) waitSlot() {
	c.fmu.Lock()
	for c.inflight >= c.effDepth && !c.pipeDead {
		c.slot.Wait()
	}
	c.fmu.Unlock()
}

// dispatch admits a flight into the pipeline, blocking while every slot is
// taken, and starts its storage append. Returns the pipeline's poison error
// if it died before the flight could be admitted (the flight's requests are
// failed here).
func (c *GroupCommitter) dispatch(f *flight) error {
	c.fmu.Lock()
	for c.inflight >= c.effDepth && !c.pipeDead {
		c.slot.Wait()
	}
	if c.pipeDead {
		err := c.pipeErr
		c.fmu.Unlock()
		now := time.Now()
		for _, req := range f.reqs {
			c.commitLat.Observe(now.Sub(req.at))
			req.done <- fmt.Errorf("wal: commit pipeline failed: %w", err)
		}
		return err
	}
	c.flights = append(c.flights, f)
	c.inflight++
	c.inflightHist.Observe(int64(c.inflight))
	c.fmu.Unlock()
	c.wg.Add(1)
	go c.runFlight(f)
	return nil
}

// runFlight performs one flight's storage append and retires whatever
// contiguous durable prefix of the FIFO its completion unlocked.
func (c *GroupCommitter) runFlight(f *flight) {
	defer c.wg.Done()
	err := c.a.AppendSealed(f.g)
	c.fmu.Lock()
	f.err = err
	f.done = true
	f.doneAt = time.Now()
	c.inflight--
	c.releaseLocked()
	c.slot.Broadcast()
	c.fmu.Unlock()
}

// releaseLocked retires completed flights from the FIFO head, acking their
// writers in LSN order. A failed head fail-stops the pipeline: its own
// requests and those of every flight behind it — durable or not — fail, so
// the set of acked records is exactly the gapless durable prefix. Caller
// holds c.fmu.
func (c *GroupCommitter) releaseLocked() {
	now := time.Now()
	for len(c.flights) > 0 && c.flights[0].done {
		f := c.flights[0]
		c.flights = c.flights[1:]
		if f.err != nil {
			c.pipeDead = true
			c.pipeErr = f.err
			trailing := c.flights
			c.flights = nil
			c.slot.Broadcast()
			for _, req := range f.reqs {
				c.commitLat.Observe(now.Sub(req.at))
				req.done <- f.err
			}
			// Later flights may already be durable, but their predecessors
			// are not: acking them would advertise a hole. They fail with
			// maybe-semantics — recovery delivers only the gapless prefix.
			for _, ff := range trailing {
				for _, req := range ff.reqs {
					c.commitLat.Observe(now.Sub(req.at))
					req.done <- fmt.Errorf("wal: commit pipeline failed at lsn %d..%d: %w",
						f.g.First, f.g.Last, f.err)
				}
			}
			c.failPending(f.err)
			return
		}
		c.ackReorder.Observe(now.Sub(f.doneAt))
		if c.opts.OnRelease != nil {
			// Advance the read epoch before acking: a writer that sees its
			// commit return can immediately pin a snapshot that includes its
			// own write.
			c.opts.OnRelease(f.g.Last)
		}
		for _, req := range f.reqs {
			c.commitLat.Observe(now.Sub(req.at))
			req.done <- nil
		}
		c.groupSize.Observe(int64(len(f.reqs)))
		c.flushes.Inc()
		c.statsMu.Lock()
		c.batches++
		c.records += int64(len(f.reqs))
		c.statsMu.Unlock()
		c.adaptRecords += int64(len(f.reqs))
		c.adaptFlushes++
		c.maybeAdaptLocked()
	}
}

// maybeAdaptLocked reassesses the pipeline's effective depth and window
// every adaptEvery released groups: queue stalls (writers blocked on a full
// queue) mean the pipeline is the bottleneck — widen it and shorten the
// accumulation window; near-empty groups with no stalls mean depth is
// wasted — narrow it and let groups accumulate longer, recovering the
// serial committer's amortization. Caller holds c.fmu.
func (c *GroupCommitter) maybeAdaptLocked() {
	if !c.opts.AdaptiveDepth || c.opts.PipelineDepth <= 1 {
		return
	}
	c.sinceAdapt++
	if c.sinceAdapt < adaptEvery {
		return
	}
	c.sinceAdapt = 0
	stalls := c.stallLat.Count()
	stallsDelta := stalls - c.lastStalls
	c.lastStalls = stalls
	avgGroup := float64(c.adaptRecords) / float64(c.adaptFlushes)
	c.adaptRecords, c.adaptFlushes = 0, 0
	switch {
	case stallsDelta > 0 && c.effDepth < c.opts.PipelineDepth:
		c.effDepth *= 2
		if c.effDepth > c.opts.PipelineDepth {
			c.effDepth = c.opts.PipelineDepth
		}
		if c.opts.MaxDelay > 0 {
			c.effWindow /= 2
			if min := c.opts.MaxDelay / 8; c.effWindow < min {
				c.effWindow = min
			}
		}
		c.slot.Broadcast()
	case stallsDelta == 0 && c.effDepth > 1 && avgGroup*4 < float64(c.opts.MaxBatch):
		c.effDepth--
		if c.opts.MaxDelay > 0 {
			c.effWindow += c.opts.MaxDelay / 8
			if c.effWindow > c.opts.MaxDelay {
				c.effWindow = c.opts.MaxDelay
			}
		}
	}
}

func (c *GroupCommitter) failPending(err error) {
	c.mu.Lock()
	c.stopped = true
	if c.poison == nil && !errors.Is(err, ErrCommitterStopped) {
		// A real failure poisons the committer: records admitted after it
		// keep reporting the original cause (fence, exhausted retries), not
		// a generic shutdown.
		c.poison = err
	}
	pending := c.pending
	c.pending = nil
	c.space.Broadcast()
	c.mu.Unlock()
	for _, req := range pending {
		req.done <- err
	}
}

// Stop terminates the committer. Sealed flights complete and release
// normally; records still queued fail with ErrCommitterStopped.
func (c *GroupCommitter) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// BatchStats returns (flushes committed, records committed).
func (c *GroupCommitter) BatchStats() (int64, int64) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.batches, c.records
}

// GroupSize returns the records-per-flush histogram: its mean is the
// write-side amortization factor (records acked per storage round trip).
func (c *GroupCommitter) GroupSize() *metrics.IntHistogram { return &c.groupSize }

// CommitLatency returns the enqueue-to-durable latency histogram. It covers
// the full client-visible commit wait: the group window plus the storage
// append (and its retries) plus any in-order release wait.
func (c *GroupCommitter) CommitLatency() *metrics.Histogram { return &c.commitLat }

// StallLatency returns the histogram of time writers spent blocked on a
// full queue (backpressure).
func (c *GroupCommitter) StallLatency() *metrics.Histogram { return &c.stallLat }

// AckReorder returns the histogram of how long each durable group waited
// for its predecessors before its acks could release — the price of
// in-order release under out-of-order completion (zero when completions
// arrive in LSN order).
func (c *GroupCommitter) AckReorder() *metrics.Histogram { return &c.ackReorder }

// InflightUtilization returns the distribution of concurrently in-flight
// appends observed at each dispatch; a mean above 1 means the pipeline is
// actually overlapping storage round trips.
func (c *GroupCommitter) InflightUtilization() *metrics.IntHistogram { return &c.inflightHist }

// InflightGroups returns how many sealed groups are in flight right now.
func (c *GroupCommitter) InflightGroups() int {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.inflight
}

// PipelineDepth returns the committer's current effective depth (equal to
// the configured depth unless adaptive sizing resized it).
func (c *GroupCommitter) PipelineDepth() int {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.effDepth
}

// RegisterMetrics exposes the committer's accounting under the "wal."
// prefix, next to the writer's per-append metrics.
func (c *GroupCommitter) RegisterMetrics(r *metrics.Registry) {
	r.RegisterHistogram("wal.commit_us", &c.commitLat)
	r.RegisterIntHistogram("wal.group_size", &c.groupSize)
	r.RegisterCounter("wal.group_flushes", &c.flushes)
	r.RegisterHistogram("wal.group_stall_us", &c.stallLat)
	r.RegisterHistogram("wal.ack_reorder_us", &c.ackReorder)
	r.RegisterIntHistogram("wal.inflight_groups", &c.inflightHist)
	r.GaugeFunc("wal.pipeline_depth", func() int64 { return int64(c.PipelineDepth()) })
	r.GaugeFunc("wal.pipeline_inflight", func() int64 { return int64(c.InflightGroups()) })
	r.CounterFunc("wal.commit_batches", func() int64 { b, _ := c.BatchStats(); return b })
	r.CounterFunc("wal.commit_records", func() int64 { _, n := c.BatchStats(); return n })
	r.GaugeFunc("wal.last_lsn", func() int64 { return int64(c.LastLSN()) })
}
