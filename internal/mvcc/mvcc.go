// Package mvcc implements the coarse multi-version read epochs that give
// BG3 snapshot-isolated scans and traversals (ISSUE 7).
//
// The design piggybacks on the WAL group committer's ordering guarantee:
// every mutation is assigned a WAL LSN under its page latch, and commit
// acks are released strictly in LSN order at group boundaries. The global
// read epoch is therefore simply the highest *released* LSN — the released
// set is always a gapless prefix ending exactly at a group-commit
// boundary. A reader that pins the current epoch H and filters history by
// "op.lsn <= H" observes every group committed at or before H, no effect
// of any later group, and never a partial group.
//
// A Source is the process-wide epoch clock for one writable engine. The
// committer calls Advance just before it releases a group's acks (so a
// writer that saw its ApplyBatch return can immediately pin an epoch that
// includes its own write). Readers call Pin to take a reference-counted
// handle; the minimum pinned epoch is the *retention floor* below which
// Bw-tree consolidation may fold history into page bases and the GC
// reclaimer may drop invalidated extents.
//
// Unreplicated engines run without a Source (all ops are stamped LSN 0
// and every reader sees the latest state), so the single-node fast path
// is untouched.
package mvcc

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/metrics"
)

// PinAt failure modes. Cross-shard snapshot vectors are re-attached with
// PinAt, so each rejection must fail closed: a vector that cannot be
// pinned exactly is refused rather than approximated.
var (
	// ErrFutureEpoch: the requested epoch is above the released horizon —
	// it names a group that has not committed (or a forged LSN).
	ErrFutureEpoch = errors.New("mvcc: epoch not yet released")
	// ErrRetiredEpoch: the requested epoch is below the retention floor —
	// history at it may already be folded into page bases or reclaimed.
	ErrRetiredEpoch = errors.New("mvcc: epoch below retention floor")
	// ErrNotBoundary: the requested epoch is inside a commit group — a
	// read at it could observe a partial group, so it is never pinnable.
	ErrNotBoundary = errors.New("mvcc: epoch is not a group-commit boundary")
)

// Epoch identifies one group-commit boundary: the LSN of the last record
// in the group. Epoch 0 is "before any commit" and, when used as a pin
// horizon of an unreplicated engine, means "no filtering".
type Epoch uint64

// Source is the epoch clock for one writable engine. The zero value is
// not usable; call NewSource.
type Source struct {
	current atomic.Uint64 // highest released epoch

	mu       sync.Mutex
	pins     map[Epoch]*pinState // live pins by epoch
	bounds   []Epoch             // released group boundaries >= floor, ascending
	holds    int                 // live epoch holds (cross-shard prepare windows)
	deferred Epoch               // highest Advance deferred while held

	// metrics
	pinned     metrics.Gauge // live pin handles
	oldestLag  metrics.Gauge // current - oldest pinned epoch (LSN distance)
	advances   metrics.Counter
	pinsTotal  metrics.Counter
	holdsTotal metrics.Counter
}

type pinState struct {
	refs  int
	since time.Time // when the oldest reference at this epoch was taken
}

// NewSource returns a Source whose epoch starts at start (the recovered
// durable LSN on restart, 0 for a fresh engine).
func NewSource(start Epoch) *Source {
	s := &Source{pins: make(map[Epoch]*pinState)}
	s.current.Store(uint64(start))
	s.bounds = []Epoch{start}
	return s
}

// maxTrackedBoundaries caps the boundary history kept for PinAt
// validation. When a pin lags the writer by more than this many groups,
// the oldest tracked boundaries are dropped and PinAt for them fails
// closed with ErrNotBoundary — never the other way around.
const maxTrackedBoundaries = 1 << 16

// Advance moves the released horizon up to e. The committer calls this
// with the last LSN of each group just before acking the group's writers;
// epochs only move forward, so late or duplicate calls are no-ops.
//
// While an epoch hold is live (see Hold) the boundary is still recorded —
// so it stays re-pinnable later — but the published horizon does not move:
// the deferred maximum is published in one jump when the last hold
// releases. This is what keeps a cross-shard prepare window (and the
// decided batch's own apply) invisible to every new Pin.
func (s *Source) Advance(e Epoch) {
	s.mu.Lock()
	if s.holds > 0 {
		if e > s.deferred {
			s.deferred = e
		}
		if n := len(s.bounds); n == 0 || s.bounds[n-1] < e {
			s.bounds = append(s.bounds, e)
		}
		s.pruneBoundsLocked()
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	for {
		cur := s.current.Load()
		if uint64(e) <= cur {
			return
		}
		if s.current.CompareAndSwap(cur, uint64(e)) {
			s.advances.Inc()
			s.recordBoundary(e)
			return
		}
	}
}

// Hold pauses publication of new read epochs until Release. Group
// boundaries released by the committer while held are remembered (and
// remain valid PinAt targets once published) but Current does not move, so
// no reader pins an epoch that could expose state logged inside the hold
// window. Holds nest: the horizon resumes when the last one releases,
// jumping straight to the highest deferred boundary.
//
// The cross-shard 2PC layer takes a hold on each participant before
// logging its PREPARE and releases it only after the decision is fully
// applied (or discarded), making the transaction's visibility atomic per
// shard: readers see either no effect or the whole sub-batch.
func (s *Source) Hold() *Hold {
	s.mu.Lock()
	s.holds++
	s.mu.Unlock()
	s.holdsTotal.Inc()
	return &Hold{src: s}
}

// Hold is a handle pausing epoch publication on its Source. Release is
// idempotent.
type Hold struct {
	src    *Source
	closed atomic.Bool
}

// Release ends the hold. When it is the last live hold, the highest group
// boundary deferred during the window is published immediately.
func (h *Hold) Release() {
	if h == nil || !h.closed.CompareAndSwap(false, true) {
		return
	}
	s := h.src
	s.mu.Lock()
	s.holds--
	var resume Epoch
	if s.holds == 0 {
		resume, s.deferred = s.deferred, 0
	}
	s.mu.Unlock()
	if resume > 0 {
		s.Advance(resume)
	}
}

// recordBoundary remembers e as a released group boundary so PinAt can
// later re-pin it. The committer releases acks (and therefore calls
// Advance) strictly in LSN order, so appends stay sorted.
func (s *Source) recordBoundary(e Epoch) {
	s.mu.Lock()
	if n := len(s.bounds); n == 0 || s.bounds[n-1] < e {
		s.bounds = append(s.bounds, e)
	}
	s.pruneBoundsLocked()
	s.mu.Unlock()
}

// pruneBoundsLocked drops boundaries below the retention floor (no pin
// can ever land there again) and enforces the memory cap.
func (s *Source) pruneBoundsLocked() {
	floor := s.floorLocked()
	i := sort.Search(len(s.bounds), func(i int) bool { return s.bounds[i] >= floor })
	if over := len(s.bounds) - i - maxTrackedBoundaries; over > 0 {
		i += over // cap blown: sacrifice the oldest, PinAt on them fails closed
	}
	if i > 0 {
		s.bounds = append(s.bounds[:0], s.bounds[i:]...)
	}
}

func (s *Source) isBoundaryLocked(e Epoch) bool {
	i := sort.Search(len(s.bounds), func(i int) bool { return s.bounds[i] >= e })
	return i < len(s.bounds) && s.bounds[i] == e
}

// Current returns the latest released epoch.
func (s *Source) Current() Epoch { return Epoch(s.current.Load()) }

// Pin takes a reference on the current epoch and returns a handle. The
// returned pin keeps history at or below its epoch reachable until Close.
func (s *Source) Pin() *Pin {
	s.mu.Lock()
	e := Epoch(s.current.Load()) // read under mu so Floor can't miss us
	st := s.pins[e]
	if st == nil {
		st = &pinState{since: time.Now()}
		s.pins[e] = st
	}
	st.refs++
	s.mu.Unlock()
	s.pinned.Add(1)
	s.pinsTotal.Inc()
	s.updateLag()
	return &Pin{src: s, epoch: e}
}

// PinAt takes a reference on a specific past epoch — the re-attach half
// of a cross-shard consistent cut: a coordinator samples each shard's
// epoch with Pin, ships the vector, and every participant PinAts the
// component for its shard. It fails closed:
//
//   - e above the released horizon → ErrFutureEpoch
//   - e below the retention floor (history may be folded) → ErrRetiredEpoch
//   - e inside a commit group (a read there would tear) → ErrNotBoundary
//
// Note the floor rule: once the last pin at or below e closes, the floor
// advances and e is no longer re-pinnable. Holders transferring a cut
// must keep the original pin open until the transfer lands.
func (s *Source) PinAt(e Epoch) (*Pin, error) {
	s.mu.Lock()
	cur := Epoch(s.current.Load())
	if e > cur {
		s.mu.Unlock()
		return nil, ErrFutureEpoch
	}
	if e < s.floorLocked() {
		s.mu.Unlock()
		return nil, ErrRetiredEpoch
	}
	// cur itself is always a boundary (Advance only ever publishes group
	// boundaries); check the history ring for anything older.
	if e != cur && !s.isBoundaryLocked(e) {
		s.mu.Unlock()
		return nil, ErrNotBoundary
	}
	st := s.pins[e]
	if st == nil {
		st = &pinState{since: time.Now()}
		s.pins[e] = st
	}
	st.refs++
	s.mu.Unlock()
	s.pinned.Add(1)
	s.pinsTotal.Inc()
	s.updateLag()
	return &Pin{src: s, epoch: e}, nil
}

// Floor returns the retention floor: the oldest pinned epoch, or the
// current epoch when nothing is pinned. History with LSN <= Floor may be
// folded away; history above it must be retained.
func (s *Source) Floor() Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floorLocked()
}

func (s *Source) floorLocked() Epoch {
	floor := Epoch(s.current.Load())
	for e := range s.pins {
		if e < floor {
			floor = e
		}
	}
	return floor
}

// OldestPinTime returns the wall-clock time at which the oldest live pin
// was taken, and true, or a zero time and false when nothing is pinned.
// The GC reclaimer uses it to avoid reclaiming extents invalidated after
// the oldest snapshot began (such extents may still back pinned reads).
func (s *Source) OldestPinTime() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest time.Time
	found := false
	for _, st := range s.pins {
		if !found || st.since.Before(oldest) {
			oldest = st.since
			found = true
		}
	}
	return oldest, found
}

// PinnedCount returns the number of live pin handles.
func (s *Source) PinnedCount() int64 { return s.pinned.Load() }

func (s *Source) unpin(e Epoch) {
	s.mu.Lock()
	if st := s.pins[e]; st != nil {
		st.refs--
		if st.refs <= 0 {
			delete(s.pins, e)
		}
	}
	s.mu.Unlock()
	s.pinned.Add(-1)
	s.updateLag()
}

func (s *Source) updateLag() {
	s.mu.Lock()
	floor := s.floorLocked()
	s.mu.Unlock()
	cur := Epoch(s.current.Load())
	if cur >= floor {
		s.oldestLag.Set(int64(cur - floor))
	}
}

// Stats is a point-in-time summary of the epoch clock.
type Stats struct {
	// Current is the latest released epoch (highest group-released LSN).
	Current Epoch
	// Pinned is the number of live pin handles.
	Pinned int64
	// OldestPinned is the lowest pinned epoch (== Current when none).
	OldestPinned Epoch
	// Lag is Current - OldestPinned in LSN distance: how much history the
	// oldest snapshot is holding back from consolidation and GC.
	Lag uint64
	// PinsTotal counts Pin calls over the source's lifetime.
	PinsTotal int64
	// Advances counts epoch advances (group releases observed).
	Advances int64
	// HoldsTotal counts Hold calls (cross-shard prepare windows) over the
	// source's lifetime.
	HoldsTotal int64
}

// Stats returns the current summary.
func (s *Source) Stats() Stats {
	s.mu.Lock()
	floor := s.floorLocked()
	s.mu.Unlock()
	cur := Epoch(s.current.Load())
	lag := uint64(0)
	if cur > floor {
		lag = uint64(cur - floor)
	}
	return Stats{
		Current:      cur,
		Pinned:       s.pinned.Load(),
		OldestPinned: floor,
		Lag:          lag,
		PinsTotal:    s.pinsTotal.Load(),
		Advances:     s.advances.Load(),
		HoldsTotal:   s.holdsTotal.Load(),
	}
}

// RegisterMetrics exposes the epoch clock under the "mvcc." prefix.
func (s *Source) RegisterMetrics(r *metrics.Registry) {
	r.GaugeFunc("mvcc.read_epoch", func() int64 { return int64(s.current.Load()) })
	r.RegisterGauge("mvcc.pinned_epochs", &s.pinned)
	r.RegisterGauge("mvcc.epoch_lag", &s.oldestLag)
	r.RegisterCounter("mvcc.pins_total", &s.pinsTotal)
	r.RegisterCounter("mvcc.advances", &s.advances)
	r.RegisterCounter("mvcc.holds_total", &s.holdsTotal)
}

// Pin is a reference on one epoch. It is safe for concurrent use by
// multiple readers; Close is idempotent.
type Pin struct {
	src    *Source
	epoch  Epoch
	closed atomic.Bool
}

// Epoch returns the pinned epoch.
func (p *Pin) Epoch() Epoch { return p.epoch }

// Close releases the reference. After the last reference at an epoch is
// closed the retention floor may advance past it.
func (p *Pin) Close() {
	if p == nil || !p.closed.CompareAndSwap(false, true) {
		return
	}
	p.src.unpin(p.epoch)
}

// Horizon is the visibility cutoff a reader carries: ops stamped with an
// LSN above the horizon are invisible. HorizonAll (the zero Pin / no
// source case) sees everything.
const HorizonAll = Epoch(math.MaxUint64)

// ReadHorizon returns the visibility horizon for this pin; a nil pin sees
// everything (unpinned latest-state read).
func (p *Pin) ReadHorizon() Epoch {
	if p == nil {
		return HorizonAll
	}
	return p.epoch
}
