package mvcc

import (
	"sync"
	"testing"
)

func TestAdvanceMonotonic(t *testing.T) {
	s := NewSource(0)
	s.Advance(10)
	s.Advance(5) // stale release must not move the clock backwards
	if got := s.Current(); got != 10 {
		t.Fatalf("Current = %d, want 10", got)
	}
	s.Advance(12)
	if got := s.Current(); got != 12 {
		t.Fatalf("Current = %d, want 12", got)
	}
}

func TestPinHoldsFloor(t *testing.T) {
	s := NewSource(0)
	s.Advance(4)
	p := s.Pin()
	if p.Epoch() != 4 {
		t.Fatalf("pinned epoch = %d, want 4", p.Epoch())
	}
	s.Advance(9)
	if got := s.Floor(); got != 4 {
		t.Fatalf("Floor = %d, want 4 while pin is live", got)
	}
	if _, ok := s.OldestPinTime(); !ok {
		t.Fatal("OldestPinTime reported no pins while one is live")
	}
	p.Close()
	p.Close() // idempotent
	if got := s.Floor(); got != 9 {
		t.Fatalf("Floor = %d, want 9 after unpin", got)
	}
	if got := s.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d, want 0", got)
	}
	if _, ok := s.OldestPinTime(); ok {
		t.Fatal("OldestPinTime reported a pin after close")
	}
}

func TestNilPinSeesEverything(t *testing.T) {
	var p *Pin
	if got := p.ReadHorizon(); got != HorizonAll {
		t.Fatalf("nil pin horizon = %d, want HorizonAll", got)
	}
	p.Close() // must not panic
}

func TestConcurrentPinUnpin(t *testing.T) {
	s := NewSource(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Advance(Epoch(w*1000 + i))
				p := s.Pin()
				if p.Epoch() > s.Current() {
					t.Errorf("pin epoch %d above current %d", p.Epoch(), s.Current())
				}
				_ = s.Floor()
				p.Close()
			}
		}(w)
	}
	wg.Wait()
	if got := s.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d, want 0 after all closes", got)
	}
	st := s.Stats()
	if st.Pinned != 0 || st.OldestPinned != st.Current {
		t.Fatalf("Stats = %+v, want no pins and floor at current", st)
	}
}

func TestPinAtBoundaryRules(t *testing.T) {
	s := NewSource(0)
	s.Advance(10) // boundary
	s.Advance(25) // boundary
	s.Advance(40) // boundary

	// Current epoch is always pinnable.
	p, err := s.PinAt(40)
	if err != nil {
		t.Fatalf("PinAt(current): %v", err)
	}
	defer p.Close()

	// A released boundary below the floor is retired: with only epoch 40
	// pinned the floor sits at 40, so 25 is no longer re-pinnable.
	hold := s.Pin() // pins 40, floor stays 40
	q, err := s.PinAt(25)
	if err == nil {
		q.Close()
		t.Fatalf("PinAt(25) below floor should fail, floor=%d", s.Floor())
	}
	if err != ErrRetiredEpoch {
		t.Fatalf("PinAt(25) err = %v, want ErrRetiredEpoch", err)
	}

	// Future epochs fail closed.
	if _, err := s.PinAt(41); err != ErrFutureEpoch {
		t.Fatalf("PinAt(41) err = %v, want ErrFutureEpoch", err)
	}
	hold.Close()
}

func TestPinAtMidGroupFailsClosed(t *testing.T) {
	s := NewSource(0)
	keep := s.Pin() // pin 0 so boundaries 10/25 stay above the floor
	defer keep.Close()
	s.Advance(10)
	s.Advance(25)

	// 10 is a released boundary above the floor: pinnable.
	p, err := s.PinAt(10)
	if err != nil {
		t.Fatalf("PinAt(10): %v", err)
	}
	defer p.Close()

	// 17 is inside the (10,25] group: never pinnable.
	if _, err := s.PinAt(17); err != ErrNotBoundary {
		t.Fatalf("PinAt(17) err = %v, want ErrNotBoundary", err)
	}
}

func TestPinAtTransfersCut(t *testing.T) {
	// The consistent-cut handshake: sample with Pin, re-attach with
	// PinAt while the original stays open, then release the original.
	s := NewSource(0)
	s.Advance(100)
	orig := s.Pin()
	s.Advance(200) // writer moves on

	re, err := s.PinAt(orig.Epoch())
	if err != nil {
		t.Fatalf("PinAt(transfer): %v", err)
	}
	orig.Close()
	if got := re.ReadHorizon(); got != 100 {
		t.Fatalf("transferred horizon = %d, want 100", got)
	}
	re.Close()

	// With every pin gone the floor snaps to current and 100 retires.
	if _, err := s.PinAt(100); err != ErrRetiredEpoch {
		t.Fatalf("PinAt(retired) err = %v, want ErrRetiredEpoch", err)
	}
}
