package mvcc

import (
	"sync"
	"testing"
)

func TestAdvanceMonotonic(t *testing.T) {
	s := NewSource(0)
	s.Advance(10)
	s.Advance(5) // stale release must not move the clock backwards
	if got := s.Current(); got != 10 {
		t.Fatalf("Current = %d, want 10", got)
	}
	s.Advance(12)
	if got := s.Current(); got != 12 {
		t.Fatalf("Current = %d, want 12", got)
	}
}

func TestPinHoldsFloor(t *testing.T) {
	s := NewSource(0)
	s.Advance(4)
	p := s.Pin()
	if p.Epoch() != 4 {
		t.Fatalf("pinned epoch = %d, want 4", p.Epoch())
	}
	s.Advance(9)
	if got := s.Floor(); got != 4 {
		t.Fatalf("Floor = %d, want 4 while pin is live", got)
	}
	if _, ok := s.OldestPinTime(); !ok {
		t.Fatal("OldestPinTime reported no pins while one is live")
	}
	p.Close()
	p.Close() // idempotent
	if got := s.Floor(); got != 9 {
		t.Fatalf("Floor = %d, want 9 after unpin", got)
	}
	if got := s.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d, want 0", got)
	}
	if _, ok := s.OldestPinTime(); ok {
		t.Fatal("OldestPinTime reported a pin after close")
	}
}

func TestNilPinSeesEverything(t *testing.T) {
	var p *Pin
	if got := p.ReadHorizon(); got != HorizonAll {
		t.Fatalf("nil pin horizon = %d, want HorizonAll", got)
	}
	p.Close() // must not panic
}

func TestConcurrentPinUnpin(t *testing.T) {
	s := NewSource(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Advance(Epoch(w*1000 + i))
				p := s.Pin()
				if p.Epoch() > s.Current() {
					t.Errorf("pin epoch %d above current %d", p.Epoch(), s.Current())
				}
				_ = s.Floor()
				p.Close()
			}
		}(w)
	}
	wg.Wait()
	if got := s.PinnedCount(); got != 0 {
		t.Fatalf("PinnedCount = %d, want 0 after all closes", got)
	}
	st := s.Stats()
	if st.Pinned != 0 || st.OldestPinned != st.Current {
		t.Fatalf("Stats = %+v, want no pins and floor at current", st)
	}
}
