package mvcc

import (
	"sync"
	"testing"
)

// A hold freezes the published horizon: advances during the window are
// deferred, and the highest one is published when the hold releases.
func TestHoldDefersAdvance(t *testing.T) {
	s := NewSource(10)
	h := s.Hold()
	s.Advance(20)
	s.Advance(30)
	if got := s.Current(); got != 10 {
		t.Fatalf("Current during hold = %d, want 10", got)
	}
	if p := s.Pin(); p.Epoch() != 10 {
		t.Fatalf("Pin during hold = %d, want 10", p.Epoch())
	}
	h.Release()
	if got := s.Current(); got != 30 {
		t.Fatalf("Current after release = %d, want 30", got)
	}
}

// Boundaries released inside a hold window stay re-pinnable once the
// window closes — PinAt must accept them like any other boundary.
func TestHoldKeepsBoundariesPinnable(t *testing.T) {
	s := NewSource(10)
	floorPin := s.Pin() // keeps the retention floor at 10
	defer floorPin.Close()
	h := s.Hold()
	s.Advance(20)
	s.Advance(30)
	h.Release()
	for _, e := range []Epoch{10, 20, 30} {
		p, err := s.PinAt(e)
		if err != nil {
			t.Fatalf("PinAt(%d) after hold: %v", e, err)
		}
		p.Close()
	}
	if _, err := s.PinAt(25); err == nil {
		t.Fatal("PinAt(25) pinned a non-boundary")
	}
}

// Nested holds release the horizon only when the last one closes.
func TestHoldNesting(t *testing.T) {
	s := NewSource(0)
	h1 := s.Hold()
	h2 := s.Hold()
	s.Advance(5)
	h1.Release()
	if got := s.Current(); got != 0 {
		t.Fatalf("Current with one hold live = %d, want 0", got)
	}
	s.Advance(7)
	h2.Release()
	if got := s.Current(); got != 7 {
		t.Fatalf("Current after last release = %d, want 7", got)
	}
	// Release is idempotent and a released hold stays inert.
	h2.Release()
	s.Advance(9)
	if got := s.Current(); got != 9 {
		t.Fatalf("Current after idempotent release = %d, want 9", got)
	}
}

// A release with nothing deferred publishes nothing.
func TestHoldNoDeferredAdvance(t *testing.T) {
	s := NewSource(42)
	h := s.Hold()
	h.Release()
	if got := s.Current(); got != 42 {
		t.Fatalf("Current = %d, want 42", got)
	}
}

// Concurrent hold/advance/release traffic keeps the horizon monotonic.
// Run with -race.
func TestHoldConcurrent(t *testing.T) {
	s := NewSource(0)
	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		prev := Epoch(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := s.Current()
			if cur < prev {
				t.Errorf("horizon moved backwards: %d -> %d", prev, cur)
				return
			}
			prev = cur
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 200; i++ {
				h := s.Hold()
				s.Advance(Epoch(w*1000 + i))
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-obsDone
	// Every hold released, so the highest advance must be published.
	if got := s.Current(); got != 3200 {
		t.Fatalf("final horizon %d, want 3200", got)
	}
}
