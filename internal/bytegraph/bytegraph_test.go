package bytegraph

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"bg3/internal/graph"
	"bg3/internal/lsm"
)

func TestVertexRoundTrip(t *testing.T) {
	s := New(Config{})
	if err := s.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser,
		Props: graph.Properties{{Name: "n", Value: []byte("a")}}}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.GetVertex(1, graph.VTypeUser)
	if err != nil || !ok {
		t.Fatalf("get = %v %v", ok, err)
	}
	if n, _ := v.Props.Get("n"); string(n) != "a" {
		t.Fatalf("props = %+v", v.Props)
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	s := New(Config{})
	if err := s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeFollow,
		Props: graph.Properties{{Name: "ts", Value: []byte("9")}}}); err != nil {
		t.Fatal(err)
	}
	e, ok, err := s.GetEdge(1, graph.ETypeFollow, 2)
	if err != nil || !ok {
		t.Fatalf("get = %v %v", ok, err)
	}
	if ts, _ := e.Props.Get("ts"); string(ts) != "9" {
		t.Fatalf("props = %+v", e.Props)
	}
	if err := s.DeleteEdge(1, graph.ETypeFollow, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetEdge(1, graph.ETypeFollow, 2); ok {
		t.Fatal("deleted edge visible")
	}
}

func TestPageSplitting(t *testing.T) {
	s := New(Config{EdgesPerPage: 8})
	const degree = 200
	for i := 0; i < degree; i++ {
		if err := s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	deg, err := s.Degree(1, graph.ETypeLike)
	if err != nil || deg != degree {
		t.Fatalf("degree = %d %v", deg, err)
	}
	// The adjacency spans many pages.
	tree, err := s.loadTree(1, graph.ETypeLike)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.pages) < degree/8 {
		t.Fatalf("pages = %d, want >= %d", len(tree.pages), degree/8)
	}
	// Neighbors stream in destination order.
	var prev graph.VertexID
	first := true
	if err := s.Neighbors(1, graph.ETypeLike, 0, func(dst graph.VertexID, _ graph.Properties) bool {
		if !first && dst <= prev {
			t.Fatalf("order violation: %d after %d", dst, prev)
		}
		prev, first = dst, false
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertOrder(t *testing.T) {
	s := New(Config{EdgesPerPage: 4})
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(300)
	for _, i := range perm {
		if err := s.AddEdge(graph.Edge{Src: 9, Dst: graph.VertexID(i), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if _, ok, _ := s.GetEdge(9, graph.ETypeFollow, graph.VertexID(i)); !ok {
			t.Fatalf("edge to %d lost", i)
		}
	}
	if deg, _ := s.Degree(9, graph.ETypeFollow); deg != 300 {
		t.Fatalf("degree = %d", deg)
	}
}

func TestCacheEvictionReloadsFromLSM(t *testing.T) {
	s := New(Config{CacheTrees: 2, EdgesPerPage: 8})
	for src := 1; src <= 10; src++ {
		for d := 0; d < 20; d++ {
			if err := s.AddEdge(graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(d), Type: graph.ETypeFollow}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All trees remain readable despite the tiny cache.
	for src := 1; src <= 10; src++ {
		if deg, _ := s.Degree(graph.VertexID(src), graph.ETypeFollow); deg != 20 {
			t.Fatalf("degree(%d) = %d", src, deg)
		}
	}
	_, misses := s.CacheStats()
	if misses == 0 {
		t.Fatal("no cache misses with capacity 2 and 10 trees")
	}
	// Cache misses reach the LSM.
	if s.KV().Stats().Gets == 0 {
		t.Fatal("LSM never consulted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(Config{EdgesPerPage: 16, CacheTrees: 8})
	var wg sync.WaitGroup
	const writers, per = 8, 150
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				src := graph.VertexID(w % 4) // contended sources
				if err := s.AddEdge(graph.Edge{Src: src, Dst: graph.VertexID(w*1000 + i), Type: graph.ETypeLike}); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.GetEdge(src, graph.ETypeLike, graph.VertexID(w*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for src := 0; src < 4; src++ {
		d, err := s.Degree(graph.VertexID(src), graph.ETypeLike)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	if total != writers*per {
		t.Fatalf("total edges = %d, want %d", total, writers*per)
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(Config{EdgesPerPage: 4})
		model := map[graph.VertexID]map[graph.VertexID]bool{}
		for i := 0; i < 300; i++ {
			src := graph.VertexID(rng.Intn(5))
			dst := graph.VertexID(rng.Intn(40))
			if rng.Intn(4) == 0 {
				if err := s.DeleteEdge(src, graph.ETypeLike, dst); err != nil {
					return false
				}
				delete(model[src], dst)
			} else {
				if err := s.AddEdge(graph.Edge{Src: src, Dst: dst, Type: graph.ETypeLike}); err != nil {
					return false
				}
				if model[src] == nil {
					model[src] = map[graph.VertexID]bool{}
				}
				model[src][dst] = true
			}
		}
		for src := graph.VertexID(0); src < 5; src++ {
			got := map[graph.VertexID]bool{}
			if err := s.Neighbors(src, graph.ETypeLike, 0, func(d graph.VertexID, _ graph.Properties) bool {
				got[d] = true
				return true
			}); err != nil {
				return false
			}
			want := model[src]
			if len(got) != len(want) {
				return false
			}
			for d := range want {
				if !got[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLSMChurnVisible(t *testing.T) {
	// Heavy writes must reach the LSM and trigger its maintenance
	// machinery — this is the cost profile the BG3 comparison measures.
	s := New(Config{KV: lsm.Config{MemtableBytes: 4 << 10, L0Tables: 2}, EdgesPerPage: 16})
	for i := 0; i < 3000; i++ {
		if err := s.AddEdge(graph.Edge{
			Src: graph.VertexID(i % 50), Dst: graph.VertexID(i), Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: "p", Value: []byte(fmt.Sprintf("%032d", i))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	kv := s.KV().Stats()
	if kv.Flushes == 0 || kv.Compactions == 0 {
		t.Fatalf("LSM stats = %+v: expected flushes and compactions", kv)
	}
}
