// Package bytegraph implements the previous-generation ByteGraph baseline
// (§2): a graph-native memory layer (BGS) holding B-tree-like edge trees,
// persisted page-by-page as key-value pairs into an LSM-tree storage
// engine (internal/lsm). It exists so the Fig. 8 comparison measures the
// architecture the paper criticizes — every cache miss walks the memory
// index *and* the multi-level LSM read path, and every page write feeds
// LSM compaction.
//
// Adjacency layout mirrors §2.2: each (vertex, edge-type) pair owns an
// edge tree whose meta node indexes fixed-capacity edge pages; meta and
// pages are separate KV records so super-vertex pages can be fetched
// independently.
package bytegraph

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bg3/internal/graph"
	"bg3/internal/lsm"
)

// Config parameterizes the baseline.
type Config struct {
	// KV configures the underlying LSM engine.
	KV lsm.Config
	// EdgesPerPage is the edge-page capacity (default 64).
	EdgesPerPage int
	// CacheTrees bounds the number of edge trees resident in the BGS
	// cache (0 = unlimited).
	CacheTrees int
}

func (c Config) withDefaults() Config {
	if c.EdgesPerPage <= 0 {
		c.EdgesPerPage = 64
	}
	return c
}

const numStripes = 64

// Store is a single-node ByteGraph instance implementing graph.Store.
type Store struct {
	cfg Config
	kv  *lsm.DB

	// Striped write locks serialize read-modify-write cycles per edge
	// tree.
	stripes [numStripes]sync.Mutex

	cacheMu  sync.Mutex
	cache    map[string]*edgeTree
	lru      *list.List
	lruIndex map[string]*list.Element

	hits   int64
	misses int64
}

var _ graph.Store = (*Store)(nil)

// New creates an empty baseline store.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		cfg:      cfg,
		kv:       lsm.Open(cfg.KV),
		cache:    make(map[string]*edgeTree),
		lru:      list.New(),
		lruIndex: make(map[string]*list.Element),
	}
}

// KV exposes the underlying LSM engine for metrics.
func (s *Store) KV() *lsm.DB { return s.kv }

// CacheStats returns (hits, misses) of the BGS edge-tree cache.
func (s *Store) CacheStats() (int64, int64) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	return s.hits, s.misses
}

// edgeRec is one edge inside a page.
type edgeRec struct {
	dst   graph.VertexID
	props []byte // encoded properties
}

// edgePage is one edge-tree page.
type edgePage struct {
	id    uint32
	edges []edgeRec // sorted by dst
}

// edgeTree is the cached form of one (src, etype) adjacency.
type edgeTree struct {
	pages []*edgePage // sorted by first dst
}

// Key encodings in the KV store.

func vertexKVKey(id graph.VertexID, typ graph.VertexType) []byte {
	buf := make([]byte, 11)
	buf[0] = 'V'
	binary.BigEndian.PutUint64(buf[1:], uint64(id))
	binary.BigEndian.PutUint16(buf[9:], uint16(typ))
	return buf
}

func metaKVKey(src graph.VertexID, typ graph.EdgeType) []byte {
	buf := make([]byte, 11)
	buf[0] = 'M'
	binary.BigEndian.PutUint64(buf[1:], uint64(src))
	binary.BigEndian.PutUint16(buf[9:], uint16(typ))
	return buf
}

func pageKVKey(src graph.VertexID, typ graph.EdgeType, page uint32) []byte {
	buf := make([]byte, 15)
	buf[0] = 'P'
	binary.BigEndian.PutUint64(buf[1:], uint64(src))
	binary.BigEndian.PutUint16(buf[9:], uint16(typ))
	binary.BigEndian.PutUint32(buf[11:], page)
	return buf
}

func treeKey(src graph.VertexID, typ graph.EdgeType) string {
	return string(metaKVKey(src, typ))
}

func (s *Store) stripe(key string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &s.stripes[h%numStripes]
}

// Meta value: count[4] { pageID[4] }  (page first-keys live in the pages).
func encodeMeta(t *edgeTree) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(t.pages)))
	for _, p := range t.pages {
		buf = binary.LittleEndian.AppendUint32(buf, p.id)
	}
	return buf
}

func decodeMetaIDs(buf []byte) ([]uint32, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("bytegraph: corrupt meta")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < n*4 {
		return nil, fmt.Errorf("bytegraph: truncated meta")
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(buf[i*4:])
	}
	return ids, nil
}

// Page value: count[4] { dst[8] plen[4] props }.
func encodePage(p *edgePage) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(p.edges)))
	for _, e := range p.edges {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.dst))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.props)))
		buf = append(buf, e.props...)
	}
	return buf
}

func decodePage(id uint32, buf []byte) (*edgePage, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("bytegraph: corrupt page")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	p := &edgePage{id: id, edges: make([]edgeRec, 0, n)}
	for i := uint32(0); i < n; i++ {
		if len(buf) < 12 {
			return nil, fmt.Errorf("bytegraph: truncated page entry")
		}
		dst := graph.VertexID(binary.LittleEndian.Uint64(buf))
		plen := binary.LittleEndian.Uint32(buf[8:])
		buf = buf[12:]
		if uint32(len(buf)) < plen {
			return nil, fmt.Errorf("bytegraph: truncated page props")
		}
		p.edges = append(p.edges, edgeRec{dst: dst, props: append([]byte(nil), buf[:plen]...)})
		buf = buf[plen:]
	}
	return p, nil
}

// loadTree fetches an edge tree through the cache; a miss reads the meta
// node and every page from the LSM (the elongated read path of §2.4).
func (s *Store) loadTree(src graph.VertexID, typ graph.EdgeType) (*edgeTree, error) {
	key := treeKey(src, typ)
	s.cacheMu.Lock()
	if t, ok := s.cache[key]; ok {
		s.hits++
		if el, ok := s.lruIndex[key]; ok {
			s.lru.MoveToFront(el)
		}
		s.cacheMu.Unlock()
		return t, nil
	}
	s.misses++
	s.cacheMu.Unlock()

	metaVal, ok := s.kv.Get(metaKVKey(src, typ))
	if !ok {
		return &edgeTree{}, nil
	}
	ids, err := decodeMetaIDs(metaVal)
	if err != nil {
		return nil, err
	}
	t := &edgeTree{}
	for _, id := range ids {
		pv, ok := s.kv.Get(pageKVKey(src, typ, id))
		if !ok {
			return nil, fmt.Errorf("bytegraph: meta references missing page %d", id)
		}
		p, err := decodePage(id, pv)
		if err != nil {
			return nil, err
		}
		t.pages = append(t.pages, p)
	}
	s.storeCache(key, t)
	return t, nil
}

func (s *Store) storeCache(key string, t *edgeTree) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.cache[key] = t
	if el, ok := s.lruIndex[key]; ok {
		s.lru.MoveToFront(el)
	} else {
		s.lruIndex[key] = s.lru.PushFront(key)
	}
	if s.cfg.CacheTrees > 0 {
		for s.lru.Len() > s.cfg.CacheTrees {
			el := s.lru.Back()
			victim := el.Value.(string)
			s.lru.Remove(el)
			delete(s.lruIndex, victim)
			delete(s.cache, victim)
		}
	}
}

// AddVertex implements graph.Store.
func (s *Store) AddVertex(v graph.Vertex) error {
	s.kv.Put(vertexKVKey(v.ID, v.Type), graph.EncodeProps(v.Props))
	return nil
}

// GetVertex implements graph.Store.
func (s *Store) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	val, ok := s.kv.Get(vertexKVKey(id, typ))
	if !ok {
		return graph.Vertex{}, false, nil
	}
	props, err := graph.DecodeProps(val)
	if err != nil {
		return graph.Vertex{}, false, err
	}
	return graph.Vertex{ID: id, Type: typ, Props: props}, true, nil
}

// AddEdge implements graph.Store: a read-modify-write cycle on the edge
// tree with page splitting. Trees are updated copy-on-write so concurrent
// readers always see an immutable snapshot.
func (s *Store) AddEdge(e graph.Edge) error {
	key := treeKey(e.Src, e.Type)
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()

	old, err := s.loadTree(e.Src, e.Type)
	if err != nil {
		return err
	}
	rec := edgeRec{dst: e.Dst, props: graph.EncodeProps(e.Props)}
	t := &edgeTree{pages: append([]*edgePage(nil), old.pages...)}
	metaDirty := false
	var page *edgePage
	pos := 0
	if len(t.pages) == 0 {
		page = &edgePage{id: 1}
		t.pages = []*edgePage{page}
		metaDirty = true
	} else {
		pos = s.pageIndexFor(t, e.Dst)
		src := t.pages[pos]
		page = &edgePage{id: src.id, edges: append([]edgeRec(nil), src.edges...)}
		t.pages[pos] = page
	}
	idx := sort.Search(len(page.edges), func(i int) bool { return page.edges[i].dst >= e.Dst })
	if idx < len(page.edges) && page.edges[idx].dst == e.Dst {
		page.edges[idx] = rec
	} else {
		page.edges = append(page.edges, edgeRec{})
		copy(page.edges[idx+1:], page.edges[idx:])
		page.edges[idx] = rec
	}
	dirtyPages := []*edgePage{page}
	if len(page.edges) > s.cfg.EdgesPerPage {
		// Split: upper half moves to a fresh page inserted after.
		mid := len(page.edges) / 2
		maxID := uint32(0)
		for _, p := range t.pages {
			if p.id > maxID {
				maxID = p.id
			}
		}
		right := &edgePage{id: maxID + 1, edges: append([]edgeRec(nil), page.edges[mid:]...)}
		page.edges = page.edges[:mid]
		t.pages = append(t.pages, nil)
		copy(t.pages[pos+2:], t.pages[pos+1:])
		t.pages[pos+1] = right
		dirtyPages = append(dirtyPages, right)
		metaDirty = true
	}
	for _, p := range dirtyPages {
		s.kv.Put(pageKVKey(e.Src, e.Type, p.id), encodePage(p))
	}
	if metaDirty {
		s.kv.Put(metaKVKey(e.Src, e.Type), encodeMeta(t))
	}
	s.storeCache(key, t)
	return nil
}

// pageIndexFor returns the index of the page that should hold dst.
func (s *Store) pageIndexFor(t *edgeTree, dst graph.VertexID) int {
	idx := sort.Search(len(t.pages), func(i int) bool {
		p := t.pages[i]
		return len(p.edges) > 0 && p.edges[0].dst > dst
	})
	if idx == 0 {
		return 0
	}
	return idx - 1
}

// GetEdge implements graph.Store.
func (s *Store) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	t, err := s.loadTree(src, typ)
	if err != nil {
		return graph.Edge{}, false, err
	}
	if len(t.pages) == 0 {
		return graph.Edge{}, false, nil
	}
	page := t.pages[s.pageIndexFor(t, dst)]
	idx := sort.Search(len(page.edges), func(i int) bool { return page.edges[i].dst >= dst })
	if idx >= len(page.edges) || page.edges[idx].dst != dst {
		return graph.Edge{}, false, nil
	}
	props, err := graph.DecodeProps(page.edges[idx].props)
	if err != nil {
		return graph.Edge{}, false, err
	}
	return graph.Edge{Src: src, Dst: dst, Type: typ, Props: props}, true, nil
}

// DeleteEdge implements graph.Store.
func (s *Store) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	key := treeKey(src, typ)
	mu := s.stripe(key)
	mu.Lock()
	defer mu.Unlock()
	old, err := s.loadTree(src, typ)
	if err != nil {
		return err
	}
	if len(old.pages) == 0 {
		return nil
	}
	t := &edgeTree{pages: append([]*edgePage(nil), old.pages...)}
	pos := s.pageIndexFor(t, dst)
	srcPage := t.pages[pos]
	idx := sort.Search(len(srcPage.edges), func(i int) bool { return srcPage.edges[i].dst >= dst })
	if idx >= len(srcPage.edges) || srcPage.edges[idx].dst != dst {
		return nil
	}
	page := &edgePage{id: srcPage.id, edges: append([]edgeRec(nil), srcPage.edges...)}
	page.edges = append(page.edges[:idx], page.edges[idx+1:]...)
	t.pages[pos] = page
	if len(page.edges) == 0 && len(t.pages) > 1 {
		// Drop the emptied page so routing by first-key stays well-defined.
		t.pages = append(t.pages[:pos], t.pages[pos+1:]...)
		s.kv.Delete(pageKVKey(src, typ, page.id))
		s.kv.Put(metaKVKey(src, typ), encodeMeta(t))
	} else {
		s.kv.Put(pageKVKey(src, typ, page.id), encodePage(page))
	}
	s.storeCache(key, t)
	return nil
}

// Neighbors implements graph.Store.
func (s *Store) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	t, err := s.loadTree(src, typ)
	if err != nil {
		return err
	}
	delivered := 0
	for _, p := range t.pages {
		for _, e := range p.edges {
			props, err := graph.DecodeProps(e.props)
			if err != nil {
				return err
			}
			if !fn(e.dst, props) {
				return nil
			}
			delivered++
			if limit > 0 && delivered >= limit {
				return nil
			}
		}
	}
	return nil
}

// Degree implements graph.Store.
func (s *Store) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	t, err := s.loadTree(src, typ)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range t.pages {
		n += len(p.edges)
	}
	return n, nil
}
