package bwtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// walPipe couples a Tree (RW side) to Replicas (RO side) through a real
// wal.Writer on shared storage, mimicking the replication package's
// plumbing at unit-test scale.
type walPipe struct {
	w *wal.Writer
}

func (p *walPipe) Log(rec *wal.Record) (wal.LSN, error) { return p.w.Append(rec) }

func newReplicatedTree(t *testing.T, cfg Config) (*Tree, *Replica, *wal.Reader, *storage.Store, *wal.Writer) {
	t.Helper()
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	m := NewMapping(0, false)
	tr, err := New(m, st, cfg, &walPipe{w: w})
	if err != nil {
		t.Fatal(err)
	}
	return tr, NewReplica(st, 0), wal.NewReader(st), st, w
}

// sync drains the WAL into the replica.
func syncReplica(t *testing.T, rep *Replica, rd *wal.Reader) {
	t.Helper()
	recs, err := rd.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.ApplyAll(recs); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSeesWrites(t *testing.T) {
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync})
	if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	syncReplica(t, rep, rd)
	v, ok, err := rep.Get(tr.ID(), []byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("replica get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := rep.Get(tr.ID(), []byte("nope")); ok {
		t.Fatal("replica found a missing key")
	}
}

func TestReplicaDelete(t *testing.T) {
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync})
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	syncReplica(t, rep, rd)
	if _, ok, _ := rep.Get(tr.ID(), []byte("k")); ok {
		t.Fatal("replica still sees deleted key")
	}
}

// TestReplicaSplitScenario reproduces the paper's Figure 6/7 example: a
// split on the RW node, an RO node with cold cache reading both halves
// before any dirty page was flushed. The RO must reconstruct the new page
// from the old durable image plus the WAL.
func TestReplicaSplitScenario(t *testing.T) {
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync, MaxPageEntries: 4})

	// Insert enough to persist a base page, then flush so a durable image
	// exists (the "initial consistent state" of Figure 6).
	for i := 0; i < 4; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("V%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// The insert of k4 splits the leaf (Put(5, V5) in the paper). Do NOT
	// flush: shared storage still holds only the old page image.
	if err := tr.Put([]byte("k4"), []byte("V4")); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("expected a split")
	}
	syncReplica(t, rep, rd)

	// Get(2) and Get(3) of the paper: keys on both sides of the split.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		v, ok, err := rep.Get(tr.ID(), []byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("V%d", i) {
			t.Fatalf("replica %s = %q %v, want V%d", key, v, ok, i)
		}
	}
}

func TestReplicaCheckpointTruncatesBuffers(t *testing.T) {
	tr, rep, rd, _, w := newReplicatedTree(t, Config{FlushMode: FlushAsync, DisableSplit: true})
	for i := 0; i < 10; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, rep, rd)
	if rep.BufferedRecords() == 0 {
		t.Fatal("expected buffered records before any read")
	}

	// Flush dirty pages and emit the checkpoint (steps 7–8 of Figure 7).
	ckptLSN := w.NextLSN() - 1
	ups, err := tr.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&wal.Record{
		Type: wal.RecordCheckpoint, CkptLSN: ckptLSN, Value: EncodeMappingUpdates(ups),
	}); err != nil {
		t.Fatal(err)
	}
	syncReplica(t, rep, rd)
	if got := rep.BufferedRecords(); got != 0 {
		t.Fatalf("buffered records after checkpoint = %d, want 0", got)
	}
	// Data still correct, now served from the new durable locations.
	for i := 0; i < 10; i++ {
		if _, ok, _ := rep.Get(tr.ID(), []byte(fmt.Sprintf("k%02d", i))); !ok {
			t.Fatalf("k%02d missing after checkpoint", i)
		}
	}
}

func TestReplicaLazyReplayOnlyOnRead(t *testing.T) {
	tr, rep, rd, st, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync, DisableSplit: true})
	for i := 0; i < 20; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, rep, rd)
	reads := st.Stats().ReadOps
	// Applying WAL must not have caused page reads (lazy replay).
	syncReplica(t, rep, rd)
	if got := st.Stats().ReadOps; got != reads {
		t.Fatalf("WAL apply performed %d page reads", got-reads)
	}
	if _, ok, _ := rep.Get(tr.ID(), []byte("k00")); !ok {
		t.Fatal("k00 missing")
	}
}

func TestReplicaScanMatchesTree(t *testing.T) {
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync, MaxPageEntries: 8})
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 300; i++ { // some unflushed tail
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, rep, rd)

	collect := func(scan func(fn func(k, v []byte) bool) error) []string {
		var out []string
		if err := scan(func(k, v []byte) bool {
			out = append(out, string(k)+"="+string(v))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	fromTree := collect(func(fn func(k, v []byte) bool) error {
		return tr.Scan(nil, nil, 0, fn)
	})
	fromRep := collect(func(fn func(k, v []byte) bool) error {
		return rep.Scan(tr.ID(), nil, nil, 0, fn)
	})
	if len(fromTree) != 300 {
		t.Fatalf("tree scan = %d entries", len(fromTree))
	}
	if !reflect.DeepEqual(fromTree, fromRep) {
		t.Fatalf("replica scan diverges from tree:\ntree=%d entries\nrep=%d entries", len(fromTree), len(fromRep))
	}

	// Range + limit variants.
	var ranged []string
	if err := rep.Scan(tr.ID(), []byte("k0010"), []byte("k0015"), 0, func(k, v []byte) bool {
		ranged = append(ranged, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ranged) != 5 || ranged[0] != "k0010" {
		t.Fatalf("replica range scan = %v", ranged)
	}
}

func TestReplicaCacheEviction(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	w := wal.NewWriter(st)
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 4}, &walPipe{w: w})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(st, 2) // tiny replica cache
	rd := wal.NewReader(st)

	for i := 0; i < 64; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ups, err := tr.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&wal.Record{
		Type: wal.RecordCheckpoint, CkptLSN: w.NextLSN() - 1, Value: EncodeMappingUpdates(ups),
	}); err != nil {
		t.Fatal(err)
	}
	syncReplica(t, rep, rd)
	// Read everything twice; with capacity 2 the replica must evict and
	// re-fetch, and results must stay correct.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 64; i++ {
			if _, ok, err := rep.Get(tr.ID(), []byte(fmt.Sprintf("k%03d", i))); err != nil || !ok {
				t.Fatalf("pass %d k%03d = %v %v", pass, i, ok, err)
			}
		}
	}
}

func TestReplicaChainedSplitOrigins(t *testing.T) {
	// Multiple splits before any flush: new pages form an origin chain
	// that the replica must follow to reconstruct content.
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync, MaxPageEntries: 2})
	for i := 0; i < 2; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// These inserts cause repeated splits, all unflushed.
	for i := 2; i < 16; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, rep, rd)
	for i := 0; i < 16; i++ {
		if _, ok, err := rep.Get(tr.ID(), []byte(fmt.Sprintf("k%02d", i))); err != nil || !ok {
			t.Fatalf("k%02d = %v %v", i, ok, err)
		}
	}
}

func TestMappingUpdatesEncodeDecode(t *testing.T) {
	in := []MappingUpdate{
		{Tree: 1, Page: 2, Base: storage.Loc{Stream: storage.StreamBase, Extent: 3, Offset: 4, Length: 5}},
		{Tree: 1, Page: 7, Base: storage.Loc{Stream: storage.StreamBase, Extent: 8, Offset: 9, Length: 10},
			Deltas: []storage.Loc{
				{Stream: storage.StreamDelta, Extent: 11, Offset: 12, Length: 13},
				{Stream: storage.StreamDelta, Extent: 14, Offset: 15, Length: 16},
			}},
	}
	out, err := DecodeMappingUpdates(EncodeMappingUpdates(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if _, err := DecodeMappingUpdates([]byte{1, 2}); err == nil {
		t.Fatal("truncated input decoded")
	}
}

func TestReplicaHighLSN(t *testing.T) {
	tr, rep, rd, _, _ := newReplicatedTree(t, Config{FlushMode: FlushAsync})
	if rep.HighLSN() != 0 {
		t.Fatal("fresh replica has nonzero LSN")
	}
	for i := 0; i < 5; i++ {
		if err := tr.Put([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	syncReplica(t, rep, rd)
	if got := rep.HighLSN(); got < 5 {
		t.Fatalf("HighLSN = %d, want >= 5", got)
	}
}

func TestReplicaDirectoryAfterManyRandomSplits(t *testing.T) {
	// Fuzz the split-replay machinery: random keys force splits at random
	// separators across checkpointed and unflushed states; the replica
	// directory must stay a partition of the key space with exact
	// contents.
	for seed := int64(0); seed < 4; seed++ {
		tr, rep, rd, _, w := newReplicatedTree(t, Config{
			FlushMode: FlushAsync, MaxPageEntries: 4, MaxInnerEntries: 4,
		})
		rng := rand.New(rand.NewSource(seed))
		model := map[string]string{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("%08x", rng.Uint32())
			v := fmt.Sprintf("v%d", i)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
			if i%37 == 0 {
				ups, err := tr.FlushDirty()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Append(&wal.Record{
					Type: wal.RecordCheckpoint, CkptLSN: w.NextLSN() - 1,
					Value: EncodeMappingUpdates(ups),
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		syncReplica(t, rep, rd)
		got := map[string]string{}
		if err := rep.Scan(tr.ID(), nil, nil, 0, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(model) {
			t.Fatalf("seed %d: replica has %d keys, model %d", seed, len(got), len(model))
		}
		for k, v := range model {
			if got[k] != v {
				t.Fatalf("seed %d: key %s = %q, want %q", seed, k, got[k], v)
			}
		}
	}
}
