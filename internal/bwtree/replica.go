package bwtree

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Replica is the RO-node view of a Bw-tree forest (§3.4). It consumes the
// RW node's WAL records and serves reads with strong consistency:
//
//   - Structural records (new tree, new page, split) are applied eagerly to
//     the replica's routing directory — they are tiny.
//   - Data records (put/delete) are applied immediately when the target
//     page is cached, and otherwise buffered in a per-page replay log (the
//     paper's "lazy replay mechanism", indexed by page number).
//   - On a cache miss, the replica fetches the page's *old* durable version
//     via the old mapping and replays the buffered records on top. Pages
//     created by splits that have no durable image yet are reconstructed
//     from their split origin's image restricted to the new key range.
//   - Checkpoint records carry the new durable locations (mapping-table
//     update, §3.4 step 8); the replica adopts them and discards buffered
//     records at or below the checkpoint LSN.
type Replica struct {
	store *storage.Store

	mu    sync.RWMutex
	trees map[TreeID]*replicaTree
	pages map[PageID]*replicaPage

	cacheMu  sync.Mutex
	lru      *list.List
	lruIndex map[PageID]*list.Element
	capacity int // cached pages; 0 = unlimited

	lsnMu   sync.Mutex
	highLSN wal.LSN // highest LSN applied or buffered
}

// replicaTree holds the routing directory of one tree: leaves sorted by
// low key; leaves[0] covers (−∞, leaves[1].lo).
type replicaTree struct {
	leaves []replicaLeafRef
}

type replicaLeafRef struct {
	lo   []byte // nil on the first leaf
	page PageID
}

// replicaPage mirrors one leaf page on the RO node.
type replicaPage struct {
	mu     sync.Mutex
	id     PageID
	base   storage.Loc
	deltas []storage.Loc
	origin PageID // reconstruct from this page's image when base is zero
	lo, hi []byte

	buffer []*wal.Record // lazy replay log, LSN order; empty when cached
	cached []kv
}

// NewReplica returns an empty replica reading page data from store.
// capacity bounds the cached leaf pages (0 = unlimited).
func NewReplica(store *storage.Store, capacity int) *Replica {
	return &Replica{
		store:    store,
		trees:    make(map[TreeID]*replicaTree),
		pages:    make(map[PageID]*replicaPage),
		lru:      list.New(),
		lruIndex: make(map[PageID]*list.Element),
		capacity: capacity,
	}
}

// HighLSN returns the highest WAL LSN the replica has incorporated.
func (r *Replica) HighLSN() wal.LSN {
	r.lsnMu.Lock()
	defer r.lsnMu.Unlock()
	return r.highLSN
}

func (r *Replica) noteLSN(l wal.LSN) {
	r.lsnMu.Lock()
	if l > r.highLSN {
		r.highLSN = l
	}
	r.lsnMu.Unlock()
}

// Apply incorporates one WAL record. Records must arrive in LSN order.
func (r *Replica) Apply(rec *wal.Record) error {
	defer r.noteLSN(rec.LSN)
	return r.applyRecord(rec)
}

// ApplyGroup incorporates one commit group. Records apply in order, but the
// published high LSN advances only after the whole group is in, so readers
// gated on HighLSN (WaitVisible) never observe a half-applied batch — the
// follower-side counterpart of the leader's all-or-nothing group append.
func (r *Replica) ApplyGroup(recs []*wal.Record) error {
	for _, rec := range recs {
		if err := r.applyRecord(rec); err != nil {
			return err
		}
	}
	if n := len(recs); n > 0 {
		r.noteLSN(recs[n-1].LSN)
	}
	return nil
}

// ApplyDeferred incorporates one record without advancing the published
// high LSN. Layered replicas (the forest) replay a group record by record
// this way and call PublishLSN once at the group boundary.
func (r *Replica) ApplyDeferred(rec *wal.Record) error { return r.applyRecord(rec) }

// PublishLSN advances the published high LSN to l (group boundary).
func (r *Replica) PublishLSN(l wal.LSN) { r.noteLSN(l) }

func (r *Replica) applyRecord(rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordNewTree:
		return r.applyNewTree(rec)
	case wal.RecordNewPage:
		return r.applyNewPage(rec)
	case wal.RecordSplit:
		return r.applySplit(rec)
	case wal.RecordPut, wal.RecordDelete:
		return r.applyData(rec)
	case wal.RecordNewRoot:
		return nil // routing is directory-based; inner structure not mirrored
	case wal.RecordOwnerAssign:
		return nil // consumed by the forest-level replica wrapper
	case wal.RecordTxnPrepare, wal.RecordTxnCommit, wal.RecordTxnAbort, wal.RecordTxnApplied:
		// Cross-shard transaction control records: decided payloads are
		// re-logged as ordinary data records, so replicas track nothing here.
		return nil
	case wal.RecordCheckpoint:
		return r.applyCheckpoint(rec)
	default:
		return fmt.Errorf("bwtree: replica: unknown record type %v", rec.Type)
	}
}

// ApplyAll incorporates a batch of records in order.
func (r *Replica) ApplyAll(recs []*wal.Record) error {
	for _, rec := range recs {
		if err := r.Apply(rec); err != nil {
			return err
		}
	}
	return nil
}

func (r *Replica) applyNewTree(rec *wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	root := PageID(rec.AuxPage)
	r.trees[TreeID(rec.TreeID)] = &replicaTree{
		leaves: []replicaLeafRef{{lo: nil, page: root}},
	}
	if _, ok := r.pages[root]; !ok {
		r.pages[root] = &replicaPage{id: root}
	}
	return nil
}

func (r *Replica) applyNewPage(rec *wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := PageID(rec.PageID)
	if _, ok := r.pages[id]; !ok {
		r.pages[id] = &replicaPage{id: id}
	}
	return nil
}

func (r *Replica) applySplit(rec *wal.Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	tree := r.trees[TreeID(rec.TreeID)]
	left := r.pages[PageID(rec.PageID)]
	right := r.pages[PageID(rec.AuxPage)]
	if tree == nil || left == nil || right == nil {
		return fmt.Errorf("bwtree: replica: split %d->%d references unknown state", rec.PageID, rec.AuxPage)
	}
	sep := rec.Key

	left.mu.Lock()
	right.mu.Lock()
	right.lo = sep
	right.hi = left.hi
	left.hi = sep
	if right.base.IsZero() {
		right.origin = left.id
	}
	if left.cached != nil {
		// Eager replay on a cached page (§3.4 step 4): split the resident
		// content; the right page becomes resident for free.
		idx, _ := searchKV(left.cached, sep)
		right.cached = append([]kv(nil), left.cached[idx:]...)
		left.cached = left.cached[:idx]
		r.noteCachedPage(right)
	} else {
		// Re-route buffered records that now belong to the right page.
		var keep, moved []*wal.Record
		for _, b := range left.buffer {
			if bytes.Compare(b.Key, sep) >= 0 {
				moved = append(moved, b)
			} else {
				keep = append(keep, b)
			}
		}
		left.buffer = keep
		right.buffer = append(right.buffer, moved...)
	}
	right.mu.Unlock()
	left.mu.Unlock()

	// Insert the new leaf into the routing directory.
	idx := sort.Search(len(tree.leaves), func(i int) bool {
		return tree.leaves[i].lo != nil && bytes.Compare(tree.leaves[i].lo, sep) > 0
	})
	tree.leaves = append(tree.leaves, replicaLeafRef{})
	copy(tree.leaves[idx+1:], tree.leaves[idx:])
	tree.leaves[idx] = replicaLeafRef{lo: sep, page: right.id}
	return nil
}

func (r *Replica) applyData(rec *wal.Record) error {
	r.mu.RLock()
	p := r.pages[PageID(rec.PageID)]
	r.mu.RUnlock()
	if p == nil {
		return fmt.Errorf("bwtree: replica: data record for unknown page %d", rec.PageID)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cached != nil {
		p.cached = applyOp(p.cached, recordOp(rec))
		return nil
	}
	p.buffer = append(p.buffer, rec)
	return nil
}

func recordOp(rec *wal.Record) op {
	return op{del: rec.Type == wal.RecordDelete, key: rec.Key, val: rec.Value}
}

func (r *Replica) applyCheckpoint(rec *wal.Record) error {
	updates, err := DecodeMappingUpdates(rec.Value)
	if err != nil {
		return err
	}
	for _, up := range updates {
		r.mu.RLock()
		p := r.pages[up.Page]
		r.mu.RUnlock()
		if p == nil {
			// The checkpoint may describe pages of trees created before
			// this replica attached; register them lazily.
			r.mu.Lock()
			p = r.pages[up.Page]
			if p == nil {
				p = &replicaPage{id: up.Page}
				r.pages[up.Page] = p
			}
			r.mu.Unlock()
		}
		p.mu.Lock()
		p.base = up.Base
		p.deltas = append(p.deltas[:0], up.Deltas...)
		p.origin = 0
		p.mu.Unlock()
	}
	// Drop buffered records the durable state now covers.
	r.mu.RLock()
	pages := make([]*replicaPage, 0, len(r.pages))
	for _, p := range r.pages {
		pages = append(pages, p)
	}
	r.mu.RUnlock()
	for _, p := range pages {
		p.mu.Lock()
		n := 0
		for _, b := range p.buffer {
			if b.LSN > rec.CkptLSN {
				p.buffer[n] = b
				n++
			}
		}
		p.buffer = p.buffer[:n]
		p.mu.Unlock()
	}
	return nil
}

// routeLeaf finds the page covering key in the tree's directory.
func (r *Replica) routeLeaf(tree TreeID, key []byte) (*replicaPage, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t := r.trees[tree]
	if t == nil {
		return nil, fmt.Errorf("bwtree: replica: unknown tree %d", tree)
	}
	// Find the last leaf whose lo <= key.
	idx := sort.Search(len(t.leaves), func(i int) bool {
		return t.leaves[i].lo != nil && bytes.Compare(t.leaves[i].lo, key) > 0
	})
	ref := t.leaves[idx-1]
	p := r.pages[ref.page]
	if p == nil {
		return nil, fmt.Errorf("bwtree: replica: dangling leaf %d", ref.page)
	}
	return p, nil
}

// materializeDurable reads the durable image backing page p, following
// split origins when p has no image of its own yet. Intermediate pages on
// the origin chain may have been narrowed by later splits, so NO clipping
// happens along the chain — the caller clips the result to p's own range.
// It does not consult any replay buffer. p.mu must be held by the caller;
// origin pages' durable fields are copied under their own locks (origin
// edges point strictly to older pages, so child-before-parent ordering is
// deadlock-free).
func (r *Replica) materializeDurable(p *replicaPage) ([]kv, error) {
	base := p.base
	deltas := append([]storage.Loc(nil), p.deltas...)
	origin := p.origin
	hops := 0
	for base.IsZero() && origin != 0 {
		r.mu.RLock()
		orig := r.pages[origin]
		r.mu.RUnlock()
		if orig == nil {
			return nil, fmt.Errorf("bwtree: replica: page %d lost split origin %d", p.id, origin)
		}
		orig.mu.Lock()
		base = orig.base
		deltas = append(deltas[:0], orig.deltas...)
		origin = orig.origin
		orig.mu.Unlock()
		if hops++; hops > 1<<20 {
			return nil, fmt.Errorf("bwtree: replica: origin cycle at page %d", p.id)
		}
	}
	// Base + delta chain in one batched call: the streams differ, so the
	// two round trips overlap just like on the RW node's read path.
	locs := make([]storage.Loc, 0, len(deltas)+1)
	if !base.IsZero() {
		locs = append(locs, base)
	}
	locs = append(locs, deltas...)
	entries := make([]kv, 0)
	if len(locs) == 0 {
		return entries, nil
	}
	bufs, err := r.store.ReadBatch(locs)
	if err != nil {
		return nil, fmt.Errorf("bwtree: replica: read page %d: %w", p.id, err)
	}
	i := 0
	if !base.IsZero() {
		entries, err = decodeLeaf(bufs[0])
		if err != nil {
			return nil, err
		}
		i = 1
	}
	for ; i < len(bufs); i++ {
		ops, err := decodeOps(bufs[i])
		if err != nil {
			return nil, err
		}
		entries = mergeOps(entries, ops)
	}
	return entries, nil
}

// materialize brings p fully up to date in memory: durable image plus the
// lazy-replay buffer (§3.4 steps 5–6). p.mu must be held.
func (r *Replica) materialize(p *replicaPage) ([]kv, error) {
	if p.cached != nil {
		r.touchPage(p)
		return p.cached, nil
	}
	entries, err := r.materializeDurable(p)
	if err != nil {
		return nil, err
	}
	// The durable image may predate splits that narrowed this page (the
	// shared store still holds the old version until the next checkpoint),
	// so clip it to the page's current key range — out-of-range keys now
	// belong to a right sibling.
	entries = clipRange(entries, p.lo, p.hi)
	for _, b := range p.buffer {
		entries = applyOp(entries, recordOp(b))
	}
	p.buffer = nil
	p.cached = entries
	r.noteCachedPage(p)
	return entries, nil
}

// clipRange filters sorted entries to [lo, hi).
func clipRange(entries []kv, lo, hi []byte) []kv {
	out := entries[:0]
	for _, e := range entries {
		if lo != nil && bytes.Compare(e.key, lo) < 0 {
			continue
		}
		if hi != nil && bytes.Compare(e.key, hi) >= 0 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Get returns the value of key in tree, reflecting every WAL record the
// replica has incorporated.
func (r *Replica) Get(tree TreeID, key []byte) ([]byte, bool, error) {
	for {
		p, err := r.routeLeaf(tree, key)
		if err != nil {
			return nil, false, err
		}
		p.mu.Lock()
		// A concurrent split may have narrowed the page after routing.
		if p.hi != nil && bytes.Compare(key, p.hi) >= 0 {
			p.mu.Unlock()
			continue
		}
		entries, err := r.materialize(p)
		if err != nil {
			p.mu.Unlock()
			return nil, false, err
		}
		idx, found := searchKV(entries, key)
		var out []byte
		if found {
			out = append([]byte(nil), entries[idx].val...)
		}
		p.mu.Unlock()
		return out, found, nil
	}
}

// Scan iterates keys of tree in [from, to) in order, like Tree.Scan. Each
// page is snapshotted under its latch and the latch released before
// callbacks run, so fn may safely re-enter the replica.
func (r *Replica) Scan(tree TreeID, from, to []byte, limit int, fn func(key, value []byte) bool) error {
	if from == nil {
		from = []byte{}
	}
	delivered := 0
	cur := from
	for {
		p, err := r.routeLeaf(tree, cur)
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.hi != nil && bytes.Compare(cur, p.hi) >= 0 {
			p.mu.Unlock()
			continue
		}
		entries, err := r.materialize(p)
		if err != nil {
			p.mu.Unlock()
			return err
		}
		start, _ := searchKV(entries, cur)
		snapshot := append([]kv(nil), entries[start:]...)
		hi := append([]byte(nil), p.hi...)
		atEnd := p.hi == nil
		p.mu.Unlock()

		for _, pair := range snapshot {
			if to != nil && bytes.Compare(pair.key, to) >= 0 {
				return nil
			}
			if !fn(pair.key, pair.val) {
				return nil
			}
			delivered++
			if limit > 0 && delivered >= limit {
				return nil
			}
		}
		if atEnd {
			return nil
		}
		cur = hi
	}
}

// BufferedRecords returns the total number of records waiting in lazy
// replay buffers — the memory the checkpoint mechanism bounds.
func (r *Replica) BufferedRecords() int {
	r.mu.RLock()
	pages := make([]*replicaPage, 0, len(r.pages))
	for _, p := range r.pages {
		pages = append(pages, p)
	}
	r.mu.RUnlock()
	n := 0
	for _, p := range pages {
		p.mu.Lock()
		n += len(p.buffer)
		p.mu.Unlock()
	}
	return n
}

// noteCachedPage registers p as resident and evicts beyond capacity.
func (r *Replica) noteCachedPage(p *replicaPage) {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if el, ok := r.lruIndex[p.id]; ok {
		r.lru.MoveToFront(el)
	} else {
		r.lruIndex[p.id] = r.lru.PushFront(p)
	}
	if r.capacity <= 0 {
		return
	}
	for r.lru.Len() > r.capacity {
		el := r.lru.Back()
		if el == nil {
			break
		}
		victim := el.Value.(*replicaPage)
		r.lru.Remove(el)
		delete(r.lruIndex, victim.id)
		if victim == p {
			continue
		}
		if victim.mu.TryLock() {
			victim.cached = nil
			victim.mu.Unlock()
		}
	}
}

func (r *Replica) touchPage(p *replicaPage) {
	if r.capacity <= 0 {
		return
	}
	r.cacheMu.Lock()
	if el, ok := r.lruIndex[p.id]; ok {
		r.lru.MoveToFront(el)
	}
	r.cacheMu.Unlock()
}

// EncodeMappingUpdates serializes mapping updates for a checkpoint record:
//
//	count[4] { tree[8] page[8] base[17] ndeltas[2] deltas[17]* }
//
// where a Loc is stream[1] extent[8] offset[4] length[4].
func EncodeMappingUpdates(ups []MappingUpdate) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ups)))
	for _, up := range ups {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(up.Tree))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(up.Page))
		buf = appendLoc(buf, up.Base)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(up.Deltas)))
		for _, d := range up.Deltas {
			buf = appendLoc(buf, d)
		}
	}
	return buf
}

func appendLoc(buf []byte, l storage.Loc) []byte {
	buf = append(buf, byte(l.Stream))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Extent))
	buf = binary.LittleEndian.AppendUint32(buf, l.Offset)
	buf = binary.LittleEndian.AppendUint32(buf, l.Length)
	return buf
}

func readLoc(buf []byte) (storage.Loc, []byte, error) {
	if len(buf) < 17 {
		return storage.Loc{}, nil, fmt.Errorf("%w: truncated loc", ErrCorruptPage)
	}
	l := storage.Loc{
		Stream: storage.StreamID(buf[0]),
		Extent: storage.ExtentID(binary.LittleEndian.Uint64(buf[1:])),
		Offset: binary.LittleEndian.Uint32(buf[9:]),
		Length: binary.LittleEndian.Uint32(buf[13:]),
	}
	return l, buf[17:], nil
}

// DecodeMappingUpdates parses the payload of a checkpoint record.
func DecodeMappingUpdates(buf []byte) ([]MappingUpdate, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: truncated mapping updates", ErrCorruptPage)
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	ups := make([]MappingUpdate, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 16 {
			return nil, fmt.Errorf("%w: truncated mapping update %d", ErrCorruptPage, i)
		}
		up := MappingUpdate{
			Tree: TreeID(binary.LittleEndian.Uint64(buf)),
			Page: PageID(binary.LittleEndian.Uint64(buf[8:])),
		}
		buf = buf[16:]
		var err error
		up.Base, buf, err = readLoc(buf)
		if err != nil {
			return nil, err
		}
		if len(buf) < 2 {
			return nil, fmt.Errorf("%w: truncated delta count %d", ErrCorruptPage, i)
		}
		nd := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		for j := uint16(0); j < nd; j++ {
			var d storage.Loc
			d, buf, err = readLoc(buf)
			if err != nil {
				return nil, err
			}
			up.Deltas = append(up.Deltas, d)
		}
		ups = append(ups, up)
	}
	return ups, nil
}
