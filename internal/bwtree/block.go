package bwtree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// Packed edge blocks (ISSUE 8): the sequential-adjacency layout for
// super-vertex dedicated trees. Once a tree's adjacency outgrows
// EdgeBlockMinEntries, its whole content as of a sealed LSN (the MVCC
// retention floor) is materialized into one immutable, sorted, packed
// array — scanned with a binary-search entry and a branch-free linear
// walk instead of page-at-a-time delta-chain reconstruction. Writes since
// the seal accumulate in a small overlay patched over the block at read
// time; when the overlay outgrows EdgeBlockRebuildOps the block is
// rebuilt at a newer seal. The encoded block is persisted to the base
// stream as CRC-framed parts whose extents GC treats as pinned until the
// block is superseded.
//
// Correctness protocol (MVCC, PR 7 semantics preserved exactly):
//
//   - Seal S = retention floor at build time. Every live pin's horizon is
//     >= the floor, so pinned readers never fall below the block; reads at
//     h < S (defensive) fall back to the legacy merged path.
//   - The overlay holds every op with LSN > S. The first build turns on
//     capture, drains writers that entered before capture (preGate), and
//     seeds the overlay from the leaf chains' retained history above S;
//     rebuilds inherit the continuously captured overlay, filtered to the
//     new seal.
//   - A writer between LSN assignment and its overlay append is counted
//     in blockWriters; readers observing a nonzero count fall back to the
//     merged path, so an op can never be visible at a released epoch
//     without being in the overlay.
//   - During a build, consolidation is clamped to fold nothing above S
//     (buildClamp), so the content scan at S stays reconstructible even
//     if every pin is released mid-build.
//
// Blocks are an RW-node read-path acceleration: they are rebuilt lazily
// after recovery rather than restored, and replicas (which apply WAL
// records through their own page structures) never build them.

// ErrCorruptBlock reports an undecodable edge-block part. Decoding is
// fail-stop: a truncated or bit-flipped part yields this error and the
// reader stays on the delta path — never a wrong scan.
var ErrCorruptBlock = errors.New("bwtree: corrupt edge block")

// edgeBlockMagic heads every encoded part ("EBK2": edge block, v2 frame).
var edgeBlockMagic = [4]byte{'E', 'B', 'K', '2'}

// edgeBlockHeaderSize = magic[4] crc[4] seal[8] part[4] nparts[4] count[4].
const edgeBlockHeaderSize = 28

// edgeBlock is an immutable packed snapshot of a tree's full content at
// the sealed LSN. entries are sorted and private to the block; readers
// iterate them with no per-entry decode or branching.
type edgeBlock struct {
	seal    wal.LSN
	entries []kv
	tags    []uint64 // storage tags of the durable parts (PageID space)
	bytes   int64    // total encoded size of all parts
}

// blockState is the per-tree edge-block machinery embedded in Tree.
type blockState struct {
	block        atomic.Pointer[edgeBlock]
	blockCapture atomic.Bool
	preGate      atomic.Int64 // writers that entered before capture was on
	blockWriters atomic.Int64 // capturing writers between LSN assignment and overlay append

	overlayMu  sync.Mutex
	overlay    []op // append order; rebuilds rely on indices (scanStart)
	overlayLen atomic.Int64

	// sorted is a read-side snapshot of overlay stably sorted by key
	// (per-key append order preserved), refreshed lazily in blockView so
	// scans binary-search their range instead of filtering and sorting
	// the whole overlay per read. sortedN is the overlay length it covers;
	// -1 forces a full rebuild after the overlay is structurally replaced.
	sorted  []op
	sortedN int

	blockBuildMu sync.Mutex    // serializes builds (TryLock)
	buildSpawned atomic.Bool   // one background build goroutine at a time
	buildClamp   atomic.Uint64 // seal+1 while a build is in flight (0 = none)
	lastSkipSeal atomic.Uint64 // seal+1 of the last pin-skipped build (0 = none)
}

// encodeEdgeBlockPart encodes one part:
//
//	magic[4] crc[4] seal[8] part[4] nparts[4] count[4] { klen[4] vlen[4] key val }*
//
// crc is IEEE over everything after the crc field, so a flip anywhere —
// header or payload — is caught.
func encodeEdgeBlockPart(entries []kv, seal wal.LSN, part, nparts uint32) []byte {
	size := edgeBlockHeaderSize
	for _, e := range entries {
		size += 8 + len(e.key) + len(e.val)
	}
	buf := make([]byte, 8, size)
	copy(buf, edgeBlockMagic[:])
	buf = binary.LittleEndian.AppendUint64(buf, uint64(seal))
	buf = binary.LittleEndian.AppendUint32(buf, part)
	buf = binary.LittleEndian.AppendUint32(buf, nparts)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.key)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.val)))
		buf = append(buf, e.key...)
		buf = append(buf, e.val...)
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// decodeEdgeBlockPart is the fail-stop inverse: any framing violation —
// short buffer, bad magic, CRC mismatch, inconsistent count, trailing
// garbage, unsorted keys — returns ErrCorruptBlock.
func decodeEdgeBlockPart(buf []byte) (entries []kv, seal wal.LSN, part, nparts uint32, err error) {
	fail := func(what string) ([]kv, wal.LSN, uint32, uint32, error) {
		return nil, 0, 0, 0, fmt.Errorf("%w: %s", ErrCorruptBlock, what)
	}
	if len(buf) < edgeBlockHeaderSize {
		return fail("short header")
	}
	if !bytes.Equal(buf[:4], edgeBlockMagic[:]) {
		return fail("bad magic")
	}
	if crc32.ChecksumIEEE(buf[8:]) != binary.LittleEndian.Uint32(buf[4:8]) {
		return fail("crc mismatch")
	}
	seal = wal.LSN(binary.LittleEndian.Uint64(buf[8:16]))
	part = binary.LittleEndian.Uint32(buf[16:20])
	nparts = binary.LittleEndian.Uint32(buf[20:24])
	count := binary.LittleEndian.Uint32(buf[24:28])
	if nparts == 0 || part >= nparts {
		return fail("part index out of range")
	}
	rest := buf[edgeBlockHeaderSize:]
	entries = make([]kv, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 8 {
			return fail("truncated entry header")
		}
		klen := binary.LittleEndian.Uint32(rest)
		vlen := binary.LittleEndian.Uint32(rest[4:])
		rest = rest[8:]
		if uint64(len(rest)) < uint64(klen)+uint64(vlen) {
			return fail("truncated entry body")
		}
		key := append([]byte(nil), rest[:klen]...)
		val := append([]byte(nil), rest[klen:klen+vlen]...)
		rest = rest[klen+vlen:]
		if len(entries) > 0 && bytes.Compare(entries[len(entries)-1].key, key) >= 0 {
			return fail("keys out of order")
		}
		entries = append(entries, kv{key: key, val: val})
	}
	if len(rest) != 0 {
		return fail("trailing bytes")
	}
	return entries, seal, part, nparts, nil
}

// splitEdgeBlockParts greedily packs entries into encoded parts no larger
// than maxPart bytes each, so every part fits one storage extent.
func splitEdgeBlockParts(entries []kv, seal wal.LSN, maxPart int) ([][]byte, error) {
	var ranges [][]kv
	start, size := 0, edgeBlockHeaderSize
	for i, e := range entries {
		es := 8 + len(e.key) + len(e.val)
		if edgeBlockHeaderSize+es > maxPart {
			return nil, fmt.Errorf("bwtree: edge block entry of %d bytes exceeds extent size %d", es, maxPart)
		}
		if size+es > maxPart {
			ranges = append(ranges, entries[start:i])
			start, size = i, edgeBlockHeaderSize
		}
		size += es
	}
	ranges = append(ranges, entries[start:]) // possibly empty: a block always has >= 1 part
	parts := make([][]byte, len(ranges))
	for i, r := range ranges {
		parts[i] = encodeEdgeBlockPart(r, seal, uint32(i), uint32(len(ranges)))
	}
	return parts, nil
}

// blockView returns the packed block and the key-sorted overlay snapshot
// serving horizon h, or ok=false when the read must take the legacy
// merged path: no block, a writer mid-capture, or a (defensive) horizon
// below the seal.
func (t *Tree) blockView(h wal.LSN) (*edgeBlock, []op, bool) {
	if t.blocks.block.Load() == nil {
		return nil, nil, false
	}
	t.blocks.overlayMu.Lock()
	if t.blocks.blockWriters.Load() != 0 {
		t.blocks.overlayMu.Unlock()
		t.m.blockFallbacks.Add(1)
		return nil, nil, false
	}
	blk := t.blocks.block.Load()
	ov := t.sortedOverlayLocked()
	t.blocks.overlayMu.Unlock()
	if blk == nil {
		return nil, nil, false
	}
	if h < blk.seal {
		t.m.blockFallbacks.Add(1)
		return nil, nil, false
	}
	t.m.blockHits.Add(1)
	return blk, ov, true
}

// sortedOverlayLocked returns the overlay stably sorted by key, refreshing
// the cached snapshot incrementally: the unsorted tail since the last
// refresh is sorted and merged into the previous snapshot (equal keys keep
// the old ops first, preserving per-key append = LSN order). Must be
// called with overlayMu held. A fresh slice is built on every refresh —
// the previous one may still be walked by in-flight readers.
func (t *Tree) sortedOverlayLocked() []op {
	st := &t.blocks
	n := len(st.overlay)
	if st.sortedN == n {
		return st.sorted
	}
	if st.sortedN < 0 || st.sortedN > n {
		st.sorted, st.sortedN = nil, 0
	}
	tail := append([]op(nil), st.overlay[st.sortedN:]...)
	sort.SliceStable(tail, func(i, j int) bool { return bytes.Compare(tail[i].key, tail[j].key) < 0 })
	merged := make([]op, 0, len(st.sorted)+len(tail))
	i, j := 0, 0
	for i < len(st.sorted) && j < len(tail) {
		if bytes.Compare(st.sorted[i].key, tail[j].key) <= 0 {
			merged = append(merged, st.sorted[i])
			i++
		} else {
			merged = append(merged, tail[j])
			j++
		}
	}
	merged = append(merged, st.sorted[i:]...)
	merged = append(merged, tail[j:]...)
	st.sorted, st.sortedN = merged, n
	return merged
}

// scanEdgeBlock is ScanAt over the packed array: binary-search the entry
// point, then a linear walk. With an empty overlay range (the common case
// for a sealed super-vertex) the loop touches each entry with no
// per-entry branching beyond the callback; otherwise it streams a
// two-pointer merge of block and key-sorted overlay, collapsing each
// overlay key run to its last op visible at h (per-key order is LSN
// order) on the fly — nothing is materialized, and a limited read stops
// after limit entries no matter how large the overlay is.
func (t *Tree) scanEdgeBlock(blk *edgeBlock, ov []op, from, to []byte, limit int, h wal.LSN, fn func(key, value []byte) bool) error {
	entries := blk.entries
	start := 0
	if len(from) > 0 {
		start, _ = searchKV(entries, from)
	}
	end := len(entries)
	if to != nil {
		if i, _ := searchKV(entries, to); i < end {
			end = i
		}
	}
	lo := 0
	if len(from) > 0 {
		lo = sort.Search(len(ov), func(i int) bool { return bytes.Compare(ov[i].key, from) >= 0 })
	}
	hi := len(ov)
	if to != nil {
		hi = lo + sort.Search(len(ov)-lo, func(i int) bool { return bytes.Compare(ov[lo+i].key, to) >= 0 })
	}
	if lo == hi {
		if limit > 0 && end-start > limit {
			end = start + limit
		}
		for _, e := range entries[start:end] {
			if !fn(e.key, e.val) {
				return nil
			}
		}
		return nil
	}
	// cur is the next overlay patch op: the last instance visible at h of
	// the key run starting at j. Runs with no visible instance drop out.
	j := lo
	var cur op
	curOK := false
	advance := func() {
		curOK = false
		for j < hi && !curOK {
			k, last := j, -1
			for ; k < hi && bytes.Equal(ov[k].key, ov[j].key); k++ {
				if ov[k].lsn <= h {
					last = k
				}
			}
			if last >= 0 {
				cur = ov[last]
				curOK = true
			}
			j = k
		}
	}
	advance()
	delivered := 0
	emit := func(k, v []byte) bool {
		delivered++
		if !fn(k, v) {
			return false
		}
		return limit <= 0 || delivered < limit
	}
	i := start
	for i < end && curOK {
		switch c := bytes.Compare(entries[i].key, cur.key); {
		case c < 0:
			if !emit(entries[i].key, entries[i].val) {
				return nil
			}
			i++
		case c == 0:
			if !cur.del && !emit(cur.key, cur.val) {
				return nil
			}
			i++
			advance()
		default:
			if !cur.del && !emit(cur.key, cur.val) {
				return nil
			}
			advance()
		}
	}
	for ; i < end; i++ {
		if !emit(entries[i].key, entries[i].val) {
			return nil
		}
	}
	for ; curOK; advance() {
		if !cur.del && !emit(cur.key, cur.val) {
			return nil
		}
	}
	return nil
}

// blockWriteEnter is called by applyWrite before the op's WAL record is
// logged (before its LSN exists). It returns which gate the writer holds:
// 0 = none (blocks disabled), 1 = preGate, 2 = capturing.
func (t *Tree) blockWriteEnter() int {
	if t.cfg.EdgeBlockMinEntries <= 0 {
		return 0
	}
	if t.blocks.blockCapture.Load() {
		t.blocks.blockWriters.Add(1)
		return 2
	}
	t.blocks.preGate.Add(1)
	return 1
}

// blockWriteExit completes the capture protocol after the op was applied
// (applied=false on error paths: the gate is released, nothing captured).
// Called with the page latch still held, so per-key overlay order is
// per-key latch order — LSN order.
func (t *Tree) blockWriteExit(gate int, o op, applied bool) {
	switch gate {
	case 1:
		t.blocks.preGate.Add(-1)
	case 2:
		if applied {
			t.blocks.overlayMu.Lock()
			t.blocks.overlay = append(t.blocks.overlay, o)
			t.blocks.overlayLen.Store(int64(len(t.blocks.overlay)))
			t.blocks.overlayMu.Unlock()
		}
		t.blocks.blockWriters.Add(-1)
	}
}

// collectRetainedAbove walks the leaf chain (left to right, per-leaf
// latch, structure read-locked like LeafDirectory) collecting every
// retained op with LSN above seal, clipped to each leaf's key range so
// split-seeded history duplicates drop out.
func (t *Tree) collectRetainedAbove(seal wal.LSN) []op {
	t.structMu.RLock()
	defer t.structMu.RUnlock()
	id := t.root
	for {
		e := t.m.get(id)
		if e == nil {
			return nil
		}
		e.mu.Lock()
		if e.isLeaf {
			e.mu.Unlock()
			break
		}
		next := e.inner.children[0]
		e.mu.Unlock()
		id = next
	}
	var out []op
	for id != 0 {
		e := t.m.get(id)
		if e == nil {
			break
		}
		e.mu.Lock()
		for _, ops := range [2][]op{e.deltaOps, e.pending} {
			for _, o := range ops {
				if o.lsn > seal && e.covers(o.key) {
					out = append(out, o)
				}
			}
		}
		id = e.next
		e.mu.Unlock()
	}
	return out
}

// maybeBuildEdgeBlock is the flush-time build trigger: it checks the
// thresholds cheaply and runs the build inline (the flusher's goroutine).
func (t *Tree) maybeBuildEdgeBlock() {
	if !t.edgeBlockWanted() {
		return
	}
	_, _ = t.TryBuildEdgeBlock()
}

// maybeSpawnEdgeBlockBuild is the write-path trigger (the only one a
// sync-flushed tree has): when the thresholds say a build is due, it
// spawns at most one background build goroutine.
func (t *Tree) maybeSpawnEdgeBlockBuild() {
	if !t.edgeBlockWanted() {
		return
	}
	if !t.blocks.buildSpawned.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.blocks.buildSpawned.Store(false)
		_, _ = t.TryBuildEdgeBlock()
	}()
}

// blockRebuildThreshold is the overlay size that justifies folding the
// overlay into a fresh block over `entries` packed entries: the configured
// floor, or a quarter of the entry count when that is larger, so rebuild
// write amplification stays bounded (~4 entry copies per overlay op) on
// big trees instead of scaling with tree size.
func (t *Tree) blockRebuildThreshold(entries int) int {
	th := t.cfg.EdgeBlockRebuildOps
	if q := entries / 4; q > th {
		th = q
	}
	return th
}

// edgeBlockWanted reports whether the build thresholds are crossed: no
// block yet and the tree's live-entry estimate passed EdgeBlockMinEntries,
// or a block exists and the overlay passed the rebuild threshold.
func (t *Tree) edgeBlockWanted() bool {
	if t.cfg.EdgeBlockMinEntries <= 0 {
		return false
	}
	blk := t.blocks.block.Load()
	if blk == nil {
		if t.puts.Load()-t.deletes.Load() < int64(t.cfg.EdgeBlockMinEntries) {
			return false
		}
		// After a pin-skip, retry only once the floor has moved past the
		// seal that was skipped — nothing changed until then.
		if s := t.blocks.lastSkipSeal.Load(); s != 0 && t.retentionFloor() <= wal.LSN(s-1) {
			return false
		}
		return true
	}
	return t.blocks.overlayLen.Load() >= int64(t.blockRebuildThreshold(len(blk.entries)))
}

// TryBuildEdgeBlock builds (or rebuilds) the tree's packed edge block if
// no other build is in flight. It returns whether a block was installed.
// Safe to call on any tree; trees with blocks disabled return false.
func (t *Tree) TryBuildEdgeBlock() (bool, error) {
	if t.cfg.EdgeBlockMinEntries <= 0 {
		return false, nil
	}
	if !t.blocks.blockBuildMu.TryLock() {
		return false, nil
	}
	defer t.blocks.blockBuildMu.Unlock()
	return t.buildEdgeBlockLocked()
}

func (t *Tree) buildEdgeBlockLocked() (bool, error) {
	old := t.blocks.block.Load()
	first := old == nil

	// Seal at the retention floor and clamp consolidation there for the
	// duration of the build: the content scan at the seal must stay
	// reconstructible even if every pin is released mid-build. Sync trees
	// (no epoch clock) stamp every op LSN 0 and seal at 0.
	var seal wal.LSN
	if t.cfg.Epochs != nil {
		seal = wal.LSN(t.cfg.Epochs.Floor())
		t.blocks.buildClamp.Store(uint64(seal) + 1)
		defer t.blocks.buildClamp.Store(0)
	}
	if old != nil && seal < old.seal {
		seal = old.seal
	}

	var scanStart int
	if first {
		// Clear debris from any previously aborted capture, then turn
		// capture on and drain the writers that entered before they could
		// see it; from here every applied op lands in the overlay.
		t.blocks.overlayMu.Lock()
		t.blocks.overlay = nil
		t.blocks.overlayLen.Store(0)
		t.blocks.sorted, t.blocks.sortedN = nil, 0
		t.blocks.overlayMu.Unlock()
		t.blocks.blockCapture.Store(true)
		for t.blocks.preGate.Load() != 0 {
			runtime.Gosched()
		}
		// Seed the overlay with history already applied above the seal.
		seeded := t.collectRetainedAbove(seal)
		if len(seeded) >= t.blockRebuildThreshold(int(t.puts.Load()-t.deletes.Load())) {
			t.blocks.blockCapture.Store(false)
			t.noteBlockSkip(seal, len(seeded))
			return false, nil
		}
		if len(seeded) > 0 {
			t.blocks.overlayMu.Lock()
			t.blocks.overlay = append(seeded, t.blocks.overlay...)
			t.blocks.overlayLen.Store(int64(len(t.blocks.overlay)))
			t.blocks.sorted, t.blocks.sortedN = nil, -1 // indices shifted
			t.blocks.overlayMu.Unlock()
		}
	} else {
		// A rebuild that cannot shrink the overlay below the rebuild
		// threshold (pins holding the floor down) would retrigger forever;
		// skip it until the floor moves.
		above := 0
		t.blocks.overlayMu.Lock()
		for _, o := range t.blocks.overlay {
			if o.lsn > seal {
				above++
			}
		}
		t.blocks.overlayMu.Unlock()
		if above >= t.blockRebuildThreshold(len(old.entries)) {
			t.noteBlockSkip(seal, above)
			return false, nil
		}
	}

	abort := func() {
		if first {
			t.blocks.blockCapture.Store(false)
		}
	}

	// Content scan at the seal. MVCC makes this a consistent cut for
	// epoch trees; for sync trees any op racing the scan is captured in
	// the overlay, and replaying it over the block is idempotent.
	t.blocks.overlayMu.Lock()
	scanStart = len(t.blocks.overlay)
	t.blocks.overlayMu.Unlock()
	var entries []kv
	err := t.ScanAt(nil, nil, 0, seal, func(k, v []byte) bool {
		entries = append(entries, kv{
			key: append([]byte(nil), k...),
			val: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		abort()
		return false, err
	}

	// Persist the packed layout: CRC-framed parts, one extent each at
	// most, tagged from the page-ID space so GC relocation can find them.
	parts, err := splitEdgeBlockParts(entries, seal, t.store.ExtentSize())
	if err != nil {
		abort()
		return false, err
	}
	tags := make([]uint64, len(parts))
	locs := make([]storage.Loc, len(parts))
	var total int64
	for i, p := range parts {
		tags[i] = uint64(t.m.allocPageID())
		loc, err := t.flushAppend(storage.StreamBase, tags[i], p)
		if err != nil {
			for j := 0; j < i; j++ {
				t.store.Invalidate(locs[j])
			}
			abort()
			return false, err
		}
		locs[i] = loc
		total += int64(len(p))
	}
	t.m.registerBlockParts(tags, locs)

	// Install: swap the block in and cut the overlay down to the ops the
	// new seal still needs — everything above it, plus everything that
	// arrived once the content scan was underway (a racing writer's op
	// may or may not be in the scan; replaying it is idempotent). The old
	// slice may be referenced by in-flight readers, so build a fresh one.
	blk := &edgeBlock{seal: seal, entries: entries, tags: tags, bytes: total}
	t.blocks.overlayMu.Lock()
	if !first {
		kept := make([]op, 0, len(t.blocks.overlay)-scanStart+8)
		for i, o := range t.blocks.overlay {
			if o.lsn > seal || i >= scanStart {
				kept = append(kept, o)
			}
		}
		t.blocks.overlay = kept
		t.blocks.sorted, t.blocks.sortedN = nil, -1 // indices shifted
	}
	t.blocks.overlayLen.Store(int64(len(t.blocks.overlay)))
	t.blocks.block.Store(blk)
	t.blocks.overlayMu.Unlock()
	t.blocks.lastSkipSeal.Store(0)

	t.m.noteBlockBuilt(len(entries), total, len(tags))
	if old != nil {
		for _, loc := range t.m.dropBlockParts(old.tags) {
			t.store.Invalidate(loc)
		}
		t.m.noteBlockDropped(len(old.entries), old.bytes, len(old.tags))
	}
	return true, nil
}

// noteBlockSkip records a pin-skipped build: the metric always, the log
// line once per distinct seal (a silent skip would mask why p99 never
// improves while an old pin is held).
func (t *Tree) noteBlockSkip(seal wal.LSN, retained int) {
	t.m.blockSkips.Add(1)
	if t.blocks.lastSkipSeal.Swap(uint64(seal)+1) != uint64(seal)+1 {
		log.Printf("bwtree: tree %d: edge block build skipped: %d retained ops above floor %d (active pins hold the floor; will retry once it advances)", t.id, retained, seal)
	}
}

// EdgeBlockInfo is a diagnostic snapshot of a tree's packed block.
type EdgeBlockInfo struct {
	Seal    wal.LSN
	Entries int
	Parts   int
	Bytes   int64
	Overlay int
}

// EdgeBlock returns the current block's shape, or ok=false when the tree
// has none.
func (t *Tree) EdgeBlock() (EdgeBlockInfo, bool) {
	blk := t.blocks.block.Load()
	if blk == nil {
		return EdgeBlockInfo{}, false
	}
	return EdgeBlockInfo{
		Seal:    blk.seal,
		Entries: len(blk.entries),
		Parts:   len(blk.tags),
		Bytes:   blk.bytes,
		Overlay: int(t.blocks.overlayLen.Load()),
	}, true
}
