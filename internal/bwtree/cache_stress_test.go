package bwtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bg3/internal/storage"
)

// TestRemoveClearsRelocated is a regression test: remove() used to drop a
// page from the mapping table and LRU but leave its entry in m.relocated, so
// the next checkpoint drain carried a note for a page that no longer exists.
func TestRemoveClearsRelocated(t *testing.T) {
	m := NewMapping(0, false)
	id := m.allocPageID()
	old := storage.Loc{Stream: storage.StreamBase, Extent: 1, Offset: 0, Length: 8}
	e := &pageEntry{id: id, isLeaf: true, baseLoc: old}
	m.register(e)

	moved := storage.Loc{Stream: storage.StreamBase, Extent: 2, Offset: 0, Length: 8}
	if !m.Relocate(uint64(id), old, moved) {
		t.Fatal("Relocate refused a live base location")
	}
	m.relocMu.Lock()
	_, noted := m.relocated[id]
	m.relocMu.Unlock()
	if !noted {
		t.Fatal("Relocate did not note the page for checkpointing")
	}

	m.remove(id)

	m.relocMu.Lock()
	_, stale := m.relocated[id]
	m.relocMu.Unlock()
	if stale {
		t.Fatal("remove left a stale relocated entry behind")
	}
	if ups := m.TakeRelocated(); len(ups) != 0 {
		t.Fatalf("TakeRelocated returned %d updates for a removed page", len(ups))
	}
}

// TestStressShardedCache hammers the lock-striped page cache with concurrent
// point reads, writes, deletes, async flushes, LRU evictions (capacity far
// below the working set), and GC relocations. Run with -race. After the
// storm it verifies that no dirty page content was lost to eviction, that
// evictions actually happened, and — in a quiesced read-only phase — that
// every Get counts exactly one cache hit or miss.
func TestStressShardedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	st := storage.Open(&storage.Options{ExtentSize: 1 << 12, ReclaimGrace: time.Hour})
	m := NewMappingShards(32, false, 8)
	if m.ShardCount() != 8 {
		t.Fatalf("shard count = %d, want 8", m.ShardCount())
	}
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 8, ConsolidateNum: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		readers  = 4
		opsPerW  = 500
		keysPerW = 80
	)
	key := func(w, i int) []byte { return []byte(fmt.Sprintf("w%d-k%03d", w, i)) }

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Async flusher: dirty pages race evictions; eviction must skip them.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tr.FlushDirty(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// GC: relocate sealed extents underneath the cache.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sid := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
				for _, u := range st.Usage(sid) {
					if u.Sealed {
						if _, err := st.Reclaim(sid, u.Extent, m.Relocate); err != nil {
							t.Errorf("reclaim %v/%d: %v", sid, u.Extent, err)
							return
						}
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Readers: point gets and scans across every writer's range.
	for r := 0; r < readers; r++ {
		bg.Add(1)
		go func(r int) {
			defer bg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := key(rng.Intn(writers), rng.Intn(keysPerW))
				if v, ok, err := tr.Get(k); err != nil {
					t.Errorf("reader get %s: %v", k, err)
					return
				} else if ok && len(v) == 0 {
					t.Errorf("reader got empty value for %s", k)
					return
				}
				if rng.Intn(16) == 0 {
					if err := tr.Scan(nil, nil, 64, func(k, v []byte) bool { return true }); err != nil {
						t.Errorf("reader scan: %v", err)
						return
					}
				}
			}
		}(r)
	}

	// Writers own disjoint key ranges so their local models are exact.
	models := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			model := map[string]string{}
			for i := 0; i < opsPerW; i++ {
				k := key(w, rng.Intn(keysPerW))
				if rng.Intn(5) == 0 {
					if err := tr.Delete(k); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					delete(model, string(k))
				} else {
					v := fmt.Sprintf("w%d.%d", w, i)
					if err := tr.Put(k, []byte(v)); err != nil {
						t.Errorf("writer %d put: %v", w, err)
						return
					}
					model[string(k)] = v
				}
			}
			models[w] = model
		}(w)
	}

	wg.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		return
	}

	// Drain async state, then check nothing dirty was lost to eviction.
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if n := tr.DirtyCount(); n != 0 {
		t.Fatalf("dirty pages after final flush: %d", n)
	}
	want := 0
	for w, model := range models {
		want += len(model)
		for k, v := range model {
			got, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("writer %d key %s = %q %v %v, want %q", w, k, got, ok, err, v)
			}
		}
	}
	n, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("tree has %d keys, models say %d", n, want)
	}
	if m.Evictions() == 0 {
		t.Fatal("capacity 32 with ~40 leaves should have evicted at least once")
	}

	// Quiesced read-only phase: with no structural changes racing, every Get
	// is accounted exactly once as a hit or a miss — even with concurrent
	// readers sharing miss-coalescing flights.
	h0, ms0 := m.CacheStats()
	const roReaders, roGets = 4, 300
	var ro sync.WaitGroup
	for r := 0; r < roReaders; r++ {
		ro.Add(1)
		go func(r int) {
			defer ro.Done()
			rng := rand.New(rand.NewSource(int64(900 + r)))
			for i := 0; i < roGets; i++ {
				k := key(rng.Intn(writers), rng.Intn(keysPerW))
				if _, _, err := tr.Get(k); err != nil {
					t.Errorf("quiesced get %s: %v", k, err)
					return
				}
			}
		}(r)
	}
	ro.Wait()
	if t.Failed() {
		return
	}
	h1, ms1 := m.CacheStats()
	if got, wantGets := (h1+ms1)-(h0+ms0), int64(roReaders*roGets); got != wantGets {
		t.Fatalf("quiesced phase counted %d hits+misses for %d Gets", got, wantGets)
	}
}
