package bwtree

import (
	"fmt"

	"bg3/internal/metrics"
	"bg3/internal/storage"
)

// flushRetry bounds the retries a flush spends absorbing transient storage
// failures before giving up and leaving the page dirty for the next cycle.
func flushRetry() storage.RetryPolicy {
	p := storage.DefaultRetry
	p.OnRetry = func(int, error) { metrics.Faults.Retries.Inc() }
	return p
}

// flushAppend persists one record on the flush path with bounded retry.
func (t *Tree) flushAppend(stream storage.StreamID, tag uint64, data []byte) (storage.Loc, error) {
	var loc storage.Loc
	err := flushRetry().Do("bwtree: flush append", func() error {
		var aerr error
		loc, aerr = t.store.Append(stream, tag, data)
		return aerr
	})
	return loc, err
}

// MappingUpdate describes the new durable location of one page after a
// group-commit flush. The RW node encodes these into the checkpoint WAL
// record (§3.4 step 8) so RO nodes can advance their page tables.
type MappingUpdate struct {
	Tree   TreeID
	Page   PageID
	Base   storage.Loc
	Deltas []storage.Loc
}

// DirtyCount returns the number of pages awaiting a flush. Only meaningful
// in FlushAsync mode. The mode check (immutable after construction) gates
// entry; the map itself is only touched under dirtyMu and is never
// replaced, so concurrent flushers cannot race on its header.
func (t *Tree) DirtyCount() int {
	if t.cfg.FlushMode != FlushAsync {
		return 0
	}
	t.dirtyMu.Lock()
	defer t.dirtyMu.Unlock()
	return len(t.dirtySet)
}

// FlushDirty persists every dirty page (the group commit of §3.4: "dirty
// pages are flushed by a background thread once they reach a threshold")
// and returns the mapping updates describing the new durable locations.
// Only meaningful in FlushAsync mode; in sync mode it returns nil. Safe
// for concurrent callers (the background flusher and a manual checkpoint
// or snapshot may overlap).
func (t *Tree) FlushDirty() ([]MappingUpdate, error) {
	if t.cfg.FlushMode != FlushAsync {
		return nil, nil
	}
	t.dirtyMu.Lock()
	ids := make([]PageID, 0, len(t.dirtySet))
	for id := range t.dirtySet {
		ids = append(ids, id)
	}
	clear(t.dirtySet)
	t.dirtyMu.Unlock()

	updates := make([]MappingUpdate, 0, len(ids))
	for i, id := range ids {
		e := t.m.get(id)
		if e == nil {
			continue
		}
		e.mu.Lock()
		up, err := t.flushPageLocked(e)
		e.mu.Unlock()
		if err != nil {
			// Put the failed page and every page not yet attempted back in
			// the dirty set: a flush aborted by a storage failure must stay
			// retryable, or those pages would never reach durable storage.
			t.dirtyMu.Lock()
			for _, rid := range ids[i:] {
				t.dirtySet[rid] = struct{}{}
			}
			t.dirtyMu.Unlock()
			return updates, fmt.Errorf("bwtree: flush page %d: %w", id, err)
		}
		if up != nil {
			updates = append(updates, *up)
		}
	}
	// Consolidation time is also edge-block time: a dedicated tree that
	// outgrew the block threshold (or whose overlay outgrew the rebuild
	// threshold) is packed here, on the flusher's goroutine.
	t.maybeBuildEdgeBlock()
	return updates, nil
}

// flushPageLocked persists one dirty page. e.mu must be held.
//
// Consolidation respects the MVCC retention floor: only history ops at or
// below the oldest pinned epoch may be folded into the new base; newer
// ("retained") ops stay on the delta chain, stamps intact, so pinned
// snapshots can keep reconstructing the versions between the floor and
// the head. Without an epoch clock the floor is +inf and the whole
// history folds, exactly as before.
func (t *Tree) flushPageLocked(e *pageEntry) (*MappingUpdate, error) {
	if !e.dirty {
		return nil, nil
	}
	if e.cached == nil {
		return nil, fmt.Errorf("bwtree: dirty page %d lost its content", e.id)
	}
	floor := t.retentionFloor()
	histLen := len(e.deltaOps) + len(e.pending)
	// After a split the left half's history still covers the full
	// pre-split range; the right sibling carries its own copies
	// (seedRightHistory / rightContent). The durable delta written here
	// must hold only in-range ops: an out-of-range op that reaches
	// storage would be resurrected as a phantom key beyond e.hi by a
	// cache reload or a snapshot rebuild, and a later split of that
	// content could pick a separator at or past e.hi — an empty-range
	// sibling that corrupts the leaf chain.
	retained := opsInRange(histRetained(e, floor), e.lo, e.hi)
	rewriteBase := e.splitPending ||
		e.baseLoc.IsZero() ||
		(histLen > t.cfg.ConsolidateNum && len(retained) < histLen)

	if rewriteBase {
		base := e.cached
		if len(retained) == 0 {
			// The whole history folds, so the cached content is the new
			// stable image — but it must be detached from e.cached, whose
			// backing array later writes mutate in place (stableCopy is a
			// no-op without an epoch clock).
			base = t.stableCopy(base)
		} else {
			// Fold only the releasable prefix of history into the base;
			// the stable image plus the foldable ops, clipped to the
			// page's current range (post-split pages carry wider images).
			stable, err := t.stableLocked(e)
			if err != nil {
				return nil, err
			}
			foldable := make([]op, 0, histLen-len(retained))
			for _, o := range e.deltaOps {
				if o.lsn <= floor {
					foldable = append(foldable, o)
				}
			}
			for _, o := range e.pending {
				if o.lsn <= floor {
					foldable = append(foldable, o)
				}
			}
			base = clipRangeView(mergeOpsCopy(stable, foldable), e.lo, e.hi)
			base = append([]kv(nil), base...)
		}
		loc, err := t.flushAppend(storage.StreamBase, uint64(e.id), encodeLeaf(base))
		if err != nil {
			return nil, err
		}
		var dloc storage.Loc
		if len(retained) > 0 {
			// The retained suffix must be durable alongside the new base,
			// or a crash would roll the page back past released commits.
			dloc, err = t.flushAppend(storage.StreamDelta, uint64(e.id), encodeOps(retained))
			if err != nil {
				t.store.Invalidate(loc) // orphan the just-written base
				return nil, err
			}
		}
		if !e.baseLoc.IsZero() {
			t.store.Invalidate(e.baseLoc)
		}
		for _, old := range e.deltaLocs {
			t.store.Invalidate(old)
		}
		e.baseLoc = loc
		e.deltaLocs = nil
		e.deltaOps = nil
		e.stable = base
		if len(retained) > 0 {
			e.deltaLocs = []storage.Loc{dloc}
			e.deltaOps = retained
		}
		if !e.splitPending {
			t.consolidations.Add(1)
		}
	} else if t.cfg.Policy == ReadOptimized {
		merged := make([]op, 0, len(e.deltaOps)+len(e.pending))
		merged = append(merged, e.deltaOps...)
		merged = append(merged, e.pending...)
		merged = opsInRange(merged, e.lo, e.hi) // see retained above
		loc, err := t.flushAppend(storage.StreamDelta, uint64(e.id), encodeOps(merged))
		if err != nil {
			return nil, err
		}
		for _, old := range e.deltaLocs {
			t.store.Invalidate(old)
		}
		e.deltaLocs = e.deltaLocs[:0]
		e.deltaLocs = append(e.deltaLocs, loc)
		e.deltaOps = merged
	} else {
		// Traditional policy under async flushing: one delta per pending op.
		// Ops already persisted are shifted out of pending as we go, so a
		// mid-loop failure leaves exactly the unflushed suffix for retry.
		for len(e.pending) > 0 {
			o := e.pending[0]
			if !keyInRange(o.key, e.lo, e.hi) {
				e.pending = e.pending[1:] // split debris; see retained above
				continue
			}
			loc, err := t.flushAppend(storage.StreamDelta, uint64(e.id), encodeOps([]op{o}))
			if err != nil {
				return nil, err
			}
			e.pending = e.pending[1:]
			e.deltaLocs = append(e.deltaLocs, loc)
			e.deltaOps = append(e.deltaOps, o)
		}
	}

	e.pending = nil
	e.dirty = false
	e.splitPending = false
	up := &MappingUpdate{
		Tree: t.id, Page: e.id, Base: e.baseLoc,
		Deltas: append([]storage.Loc(nil), e.deltaLocs...),
	}
	return up, nil
}

// LeafDirectory returns every leaf's (lowKey, pageID) pair in key order —
// the routing table a replica bootstraps from. The first leaf's low key is
// nil (−∞).
func (t *Tree) LeafDirectory() []LeafInfo {
	t.structMu.RLock()
	defer t.structMu.RUnlock()
	// Descend to the leftmost leaf, then walk the sibling chain.
	id := t.root
	for {
		e := t.m.get(id)
		if e == nil {
			return nil
		}
		if e.isLeaf {
			break
		}
		id = e.inner.children[0]
	}
	var out []LeafInfo
	for id != 0 {
		e := t.m.get(id)
		if e == nil {
			break
		}
		e.mu.Lock()
		out = append(out, LeafInfo{
			Page: e.id,
			Lo:   append([]byte(nil), e.lo...),
			Base: e.baseLoc,
			Deltas: append([]storage.Loc(nil),
				e.deltaLocs...),
		})
		id = e.next
		e.mu.Unlock()
	}
	return out
}

// LeafInfo describes one leaf for replica bootstrap.
type LeafInfo struct {
	Page   PageID
	Lo     []byte // nil on the leftmost leaf
	Base   storage.Loc
	Deltas []storage.Loc
}
