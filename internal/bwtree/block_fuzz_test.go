package bwtree

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeEdgeBlock drives the fail-stop decoder with arbitrary bytes:
// every input either decodes to a well-formed, sorted part that re-encodes
// byte-for-byte (the framing is canonical: no padding, derived count, no
// trailing slack), or fails with ErrCorruptBlock. Any other outcome —
// a panic, a foreign error, an unsorted result — means a bit flip could
// turn into a wrong scan instead of a clean fallback to the delta path.
func FuzzDecodeEdgeBlock(f *testing.F) {
	valid := encodeEdgeBlockPart([]kv{
		{key: []byte("k000001"), val: []byte("alpha")},
		{key: []byte("k000002"), val: []byte("beta")},
		{key: []byte("k000003"), val: []byte("")},
	}, 42, 0, 1)
	f.Add(valid)
	f.Add(encodeEdgeBlockPart(nil, 0, 0, 1))
	f.Add(valid[:len(valid)-3]) // truncated tail
	f.Add(valid[:edgeBlockHeaderSize])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40 // seal bit flip: caught by the CRC
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("EBK2 but nothing like a real part"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, seal, part, nparts, err := decodeEdgeBlockPart(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptBlock) {
				t.Fatalf("decode error %v is not ErrCorruptBlock", err)
			}
			return
		}
		for i := 1; i < len(entries); i++ {
			if bytes.Compare(entries[i-1].key, entries[i].key) >= 0 {
				t.Fatalf("decoded entries unsorted at %d", i)
			}
		}
		if again := encodeEdgeBlockPart(entries, seal, part, nparts); !bytes.Equal(again, data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(again))
		}
	})
}
