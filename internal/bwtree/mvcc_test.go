package bwtree

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bg3/internal/mvcc"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// stubAsyncLogger hands out LSNs immediately and "commits" when the wait
// runs, advancing the epoch clock the way the RW node's group committer
// does at ack release. Single-threaded tests call writes in order, so
// advances are in order too.
type stubAsyncLogger struct {
	mu  sync.Mutex
	lsn wal.LSN
	src *mvcc.Source
}

func (l *stubAsyncLogger) Log(rec *wal.Record) (wal.LSN, error) {
	lsn, w := l.LogAsync(rec)
	return lsn, w()
}

func (l *stubAsyncLogger) LogAsync(rec *wal.Record) (wal.LSN, func() error) {
	l.mu.Lock()
	l.lsn++
	lsn := l.lsn
	l.mu.Unlock()
	return lsn, func() error {
		if l.src != nil {
			l.src.Advance(mvcc.Epoch(lsn))
		}
		return nil
	}
}

// newEpochTree builds an async-flushed tree wired to a fresh epoch clock.
func newEpochTree(t *testing.T, cfg Config) (*Tree, *mvcc.Source, *storage.Store) {
	t.Helper()
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(cfg.CacheCapacity, false)
	src := mvcc.NewSource(0)
	cfg.FlushMode = FlushAsync
	cfg.Epochs = src
	tr, err := New(m, st, cfg, &stubAsyncLogger{src: src})
	if err != nil {
		t.Fatal(err)
	}
	return tr, src, st
}

func collectAt(t *testing.T, tr *Tree, h wal.LSN) map[string]string {
	t.Helper()
	out := make(map[string]string)
	if err := tr.ScanAt(nil, nil, 0, h, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEpochsRequireAsyncFlush(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(0, false)
	_, err := New(m, st, Config{Epochs: mvcc.NewSource(0)}, nil)
	if err == nil {
		t.Fatal("sync tree with an epoch clock should be rejected")
	}
}

func TestGetAtScanAtSnapshot(t *testing.T) {
	tr, src, _ := newEpochTree(t, Config{})
	for i, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if err := tr.Put([]byte(kv[0]), []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	p := src.Pin()
	defer p.Close()
	h := wal.LSN(p.Epoch())

	// Mutate past the pin: overwrite, insert, delete.
	if err := tr.Put([]byte("b"), []byte("2-new")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("d"), []byte("4")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}

	if v, ok, _ := tr.GetAt([]byte("b"), h); !ok || string(v) != "2" {
		t.Fatalf("GetAt(b, %d) = %q %v, want 2", h, v, ok)
	}
	if v, ok, _ := tr.GetAt([]byte("a"), h); !ok || string(v) != "1" {
		t.Fatalf("GetAt(a, %d) = %q %v, want 1 (deleted after pin)", h, v, ok)
	}
	if _, ok, _ := tr.GetAt([]byte("d"), h); ok {
		t.Fatal("GetAt(d) visible below its commit epoch")
	}
	got := collectAt(t, tr, h)
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	if len(got) != len(want) {
		t.Fatalf("ScanAt view = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ScanAt view[%q] = %q, want %q", k, got[k], v)
		}
	}

	// The unpinned present sees everything.
	if v, ok, _ := tr.Get([]byte("b")); !ok || string(v) != "2-new" {
		t.Fatalf("Get(b) = %q %v, want 2-new", v, ok)
	}
	if _, ok, _ := tr.Get([]byte("a")); ok {
		t.Fatal("Get(a) should be deleted at the head")
	}
}

func TestFlushRetainsPinnedHistory(t *testing.T) {
	tr, src, _ := newEpochTree(t, Config{ConsolidateNum: 4, DisableSplit: true})
	for i := 0; i < 5; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	p := src.Pin()
	h := wal.LSN(p.Epoch())
	for i := 0; i < 15; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i+5)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	// Consolidating flush under the pin: ops above the floor must stay on
	// the delta chain.
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if rb := tr.m.RetainedBytes(h); rb == 0 {
		t.Fatal("no retained delta bytes after a pinned consolidation")
	}
	got := collectAt(t, tr, h)
	if len(got) != 5 {
		t.Fatalf("pinned view has %d keys after flush, want 5: %v", len(got), got)
	}
	for i := 0; i < 5; i++ {
		if got[fmt.Sprintf("k%02d", i)] != "old" {
			t.Fatalf("pinned view lost k%02d: %v", i, got)
		}
	}
	if n, err := tr.Len(); err != nil || n != 20 {
		t.Fatalf("head Len = %d %v, want 20", n, err)
	}

	// Release the pin: the next consolidating flush folds everything.
	p.Close()
	if err := tr.Put([]byte("k99"), []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if rb := tr.m.RetainedBytes(h); rb != 0 {
		t.Fatalf("retained bytes = %d after the pin closed and a fold ran", rb)
	}
	if n, _ := tr.Len(); n != 21 {
		t.Fatalf("Len = %d after fold, want 21", n)
	}
}

func TestSplitPreservesPinnedView(t *testing.T) {
	tr, src, _ := newEpochTree(t, Config{MaxPageEntries: 8, MaxInnerEntries: 4, ConsolidateNum: 4})
	for i := 0; i < 6; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	p := src.Pin()
	defer p.Close()
	h := wal.LSN(p.Epoch())

	// Drive repeated splits (and flushes mid-way) past the pin.
	for i := 0; i < 60; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i+6)), []byte("post")); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if _, err := tr.FlushDirty(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Stats().Splits == 0 {
		t.Fatal("test expected splits to occur")
	}
	got := collectAt(t, tr, h)
	if len(got) != 6 {
		t.Fatalf("pinned view has %d keys across splits, want 6: %v", len(got), got)
	}
	for i := 0; i < 6; i++ {
		k := fmt.Sprintf("k%03d", i)
		if got[k] != "pre" {
			t.Fatalf("pinned view[%s] = %q, want pre", k, got[k])
		}
		if v, ok, _ := tr.GetAt([]byte(k), h); !ok || string(v) != "pre" {
			t.Fatalf("GetAt(%s) = %q %v across splits", k, v, ok)
		}
	}
	if n, _ := tr.Len(); n != 66 {
		t.Fatalf("head Len = %d, want 66", n)
	}
}

// TestScanRestartsAfterUnmap reproduces the torn-scan bug: the right
// sibling disappears from the mapping between leaves (as a concurrent
// structural change retiring the page would do) and the scan must re-route
// from its cursor instead of silently ending early.
func TestScanRestartsAfterUnmap(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 8, MaxInnerEntries: 4})
	const n = 40
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	leaves := tr.LeafDirectory()
	if len(leaves) < 3 {
		t.Fatalf("need >= 3 leaves, got %d", len(leaves))
	}

	// While the scan is delivering the first leaf, retire the second leaf:
	// clone it under a fresh page ID, swap the sibling link, and unmap the
	// original — the scan's captured next pointer now dangles.
	victim := leaves[1].Page
	sabotaged := false
	sabotage := func() {
		old := tr.m.get(victim)
		old.mu.Lock()
		clone := &pageEntry{
			id: tr.m.allocPageID(), tree: tr, isLeaf: true,
			baseLoc:   old.baseLoc,
			deltaLocs: append([]storage.Loc(nil), old.deltaLocs...),
			deltaOps:  append([]op(nil), old.deltaOps...),
			cached:    old.cached,
			lo:        old.lo, hi: old.hi, next: old.next,
		}
		tr.m.register(clone)
		tr.m.remove(victim)
		old.mu.Unlock()
		first := tr.m.get(leaves[0].Page)
		first.mu.Lock()
		first.next = clone.id
		first.mu.Unlock()
	}

	before := tr.m.ScanRestarts()
	var got []string
	err := tr.Scan(nil, nil, 0, func(k, v []byte) bool {
		got = append(got, string(k))
		if !sabotaged && len(got) == 1 {
			sabotage()
			sabotaged = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scan delivered %d keys, want %d (truncated at the unmapped sibling)", len(got), n)
	}
	for i, k := range got {
		if want := fmt.Sprintf("k%03d", i); k != want {
			t.Fatalf("scan[%d] = %s, want %s", i, k, want)
		}
	}
	if tr.m.ScanRestarts() == before {
		t.Fatal("scan did not record a restart")
	}
}

// TestPrefetchBounded pins the read-ahead cap: launches beyond the
// in-flight budget are dropped and counted, never queued or spawned.
func TestPrefetchBounded(t *testing.T) {
	tr, _ := newTestTree(t, Config{ReadaheadLimit: 2})
	// Saturate the in-flight budget.
	tr.prefetchSem <- struct{}{}
	tr.prefetchSem <- struct{}{}
	tr.launchPrefetch(PageID(1))
	tr.launchPrefetch(PageID(1))
	if got := tr.m.ReadaheadRejected(); got != 2 {
		t.Fatalf("readahead rejected = %d, want 2", got)
	}
	// Free the budget: launches go through again and return their token.
	<-tr.prefetchSem
	<-tr.prefetchSem
	tr.launchPrefetch(PageID(1 << 60)) // unknown page: prefetch exits at once
	deadline := time.Now().Add(2 * time.Second)
	for len(tr.prefetchSem) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch token never returned")
		}
		time.Sleep(time.Millisecond)
	}
	if got := tr.m.ReadaheadRejected(); got != 2 {
		t.Fatalf("readahead rejected moved to %d, want 2", got)
	}
}

// TestStressLenUnderSplits races Len against concurrent writers. Len pins
// an epoch, so keys relocating rightward mid-walk can be neither skipped
// nor double-counted: successive calls are monotone and the final count is
// exact. (Runs under -race in CI's stress step.)
func TestStressLenUnderSplits(t *testing.T) {
	tr, _, _ := newEpochTree(t, Config{MaxPageEntries: 8, MaxInnerEntries: 4, ConsolidateNum: 4})
	const writers, perWriter = 4, 120
	var writerWG, lenWG sync.WaitGroup
	stop := make(chan struct{})
	var lenErr error
	var lenMu sync.Mutex
	lenWG.Add(1)
	go func() {
		defer lenWG.Done()
		prev := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := tr.Len()
			if err != nil {
				lenMu.Lock()
				lenErr = err
				lenMu.Unlock()
				return
			}
			if n < prev || n > writers*perWriter {
				lenMu.Lock()
				lenErr = fmt.Errorf("Len = %d (prev %d, max %d)", n, prev, writers*perWriter)
				lenMu.Unlock()
				return
			}
			prev = n
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				if err := tr.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if i%40 == 0 {
					if _, err := tr.FlushDirty(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	lenWG.Wait()
	lenMu.Lock()
	defer lenMu.Unlock()
	if lenErr != nil {
		t.Fatal(lenErr)
	}
	if n, _ := tr.Len(); n != writers*perWriter {
		t.Fatalf("final Len = %d, want %d", n, writers*perWriter)
	}
}
