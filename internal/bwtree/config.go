// Package bwtree implements BG3's Bw-tree-like graph storage engine (§3.2):
// a B-tree of logical pages indirected through a mapping table, with
// out-of-place base+delta persistence on append-only shared storage.
//
// Two delta policies are provided:
//
//   - Traditional: the classic Bw-tree (and SLED) behaviour. Every update
//     appends one delta record to the page's chain; a page with n deltas
//     costs 1+n random storage reads to materialize on a cache miss.
//   - ReadOptimized: BG3's Algorithm 1. Updates are merged with the page's
//     existing delta so each page carries at most one delta; a cache miss
//     costs at most two storage reads, at the price of slightly more bytes
//     written (the delta is rewritten on every update).
//
// Concurrency follows the paper: classic lightweight latches (one per
// mapping-table entry) rather than lock-free CAS chains, plus a tree-level
// RW latch protecting the inner-node structure during splits.
package bwtree

import "bg3/internal/mvcc"

// DeltaPolicy selects how updates are persisted.
type DeltaPolicy int

const (
	// ReadOptimized keeps at most one (merged) delta per page — BG3's
	// policy (§3.2.2, Algorithm 1).
	ReadOptimized DeltaPolicy = iota
	// Traditional chains one delta per update, consolidating after
	// ConsolidateNum deltas — the SLED-like baseline.
	Traditional
)

// String returns the policy name.
func (p DeltaPolicy) String() string {
	if p == Traditional {
		return "traditional"
	}
	return "read-optimized"
}

// FlushMode selects when page modifications reach storage.
type FlushMode int

const (
	// FlushSync persists every update before Put returns (Algorithm 1's
	// inline Flush calls). Used by standalone trees and the
	// micro-benchmarks.
	FlushSync FlushMode = iota
	// FlushAsync applies updates in memory and lets a background flusher
	// (group commit, §3.4 "I/O Efficiency") persist dirty pages. Used by
	// the replicated RW node; requires the WAL for durability.
	FlushAsync
)

// Config parameterizes a Tree. The zero value gives a read-optimized,
// synchronously flushed tree with an unlimited cache.
type Config struct {
	// Policy is the delta policy (default ReadOptimized).
	Policy DeltaPolicy

	// FlushMode selects sync or async persistence (default FlushSync).
	FlushMode FlushMode

	// ConsolidateNum is the delta count that triggers consolidation into a
	// fresh base page. The paper's micro-benchmarks use 10. Default 10.
	ConsolidateNum int

	// MaxPageEntries is the number of keys a leaf holds before splitting.
	// Default 128.
	MaxPageEntries int

	// MaxInnerEntries is the fan-out of inner nodes before they split.
	// Default 128.
	MaxInnerEntries int

	// CacheCapacity bounds the number of leaf pages with resident content.
	// 0 means unlimited.
	CacheCapacity int

	// CacheShards is the number of lock stripes the page cache is split
	// into (rounded up to a power of two). 0 derives the count from
	// GOMAXPROCS — see NewMappingShards. Only consulted by whoever builds
	// the shared Mapping (the engine); trees joining an existing mapping
	// inherit its sharding.
	CacheShards int

	// NoCache disables the page cache entirely so that every read hits
	// storage — the configuration of the Fig. 9 read-amplification
	// experiment.
	NoCache bool

	// DisableSplit prevents page splits ("we restricted BG3 from splitting
	// the Bw-tree", §4.3.1). Pages grow without bound; use only in
	// controlled experiments.
	DisableSplit bool

	// ReadaheadLimit bounds the scan read-ahead goroutines in flight per
	// tree; launches beyond it are dropped (counted in
	// bwtree.readahead_rejected) rather than queued, so a long scan over a
	// cold tree cannot pile unbounded prefetchers onto shared storage.
	// Default 4.
	ReadaheadLimit int

	// Epochs, when set, is the MVCC read-epoch clock the tree serves
	// snapshot reads against: ops are stamped with their WAL LSN, ScanAt /
	// GetAt filter history by a pinned horizon, and consolidation folds
	// only ops at or below the clock's retention floor (the oldest pinned
	// epoch) into page bases. Nil disables retention entirely — every
	// reader sees the latest state and consolidation folds everything,
	// today's single-node behaviour.
	Epochs *mvcc.Source

	// EdgeBlockMinEntries, when positive, enables the packed edge-block
	// layout (block.go): once the tree's live-entry estimate crosses it,
	// the whole tree is materialized into an immutable sorted array sealed
	// at the retention floor and scans iterate it branch-free, with writes
	// since the seal patched from a small overlay. 0 disables blocks (the
	// forest keeps them off for the shared INIT tree; dedicated
	// super-vertex trees are the target).
	EdgeBlockMinEntries int

	// EdgeBlockRebuildOps is the overlay size that triggers rebuilding the
	// block at a newer seal. Default max(64, EdgeBlockMinEntries/4).
	EdgeBlockRebuildOps int
}

func (c Config) withDefaults() Config {
	if c.ConsolidateNum <= 0 {
		c.ConsolidateNum = 10
	}
	if c.MaxPageEntries <= 0 {
		c.MaxPageEntries = 128
	}
	if c.MaxInnerEntries <= 0 {
		c.MaxInnerEntries = 128
	}
	if c.ReadaheadLimit <= 0 {
		c.ReadaheadLimit = 4
	}
	if c.EdgeBlockMinEntries > 0 && c.EdgeBlockRebuildOps <= 0 {
		c.EdgeBlockRebuildOps = c.EdgeBlockMinEntries / 4
		if c.EdgeBlockRebuildOps < 64 {
			c.EdgeBlockRebuildOps = 64
		}
	}
	return c
}
