package bwtree

import (
	"fmt"

	"bg3/internal/storage"
)

// EnsureIDsBeyond advances the mapping's ID allocators past the given page
// and tree IDs — required before rebuilding trees whose IDs come from a
// snapshot, so freshly allocated IDs never collide.
func (m *Mapping) EnsureIDsBeyond(page PageID, tree TreeID) {
	for {
		cur := m.nextPage.Load()
		if cur >= uint64(page) || m.nextPage.CompareAndSwap(cur, uint64(page)) {
			break
		}
	}
	for {
		cur := m.nextTree.Load()
		if cur >= uint64(tree) || m.nextTree.CompareAndSwap(cur, uint64(tree)) {
			break
		}
	}
}

// Rebuild reconstructs a tree from a snapshot's leaf directory: leaf page
// entries keep their snapshot IDs and durable locations (content loads
// lazily from storage), the delta mirrors are read back eagerly so the
// read-optimized merge path stays correct, and fresh inner nodes are built
// bottom-up over the directory. The tree keeps its snapshot ID so
// subsequent WAL records stay routable. The caller must have called
// EnsureIDsBeyond over every snapshot ID first.
func Rebuild(m *Mapping, store *storage.Store, cfg Config, logger WALLogger, id TreeID, leaves []LeafInfo) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("bwtree: rebuild tree %d: empty leaf directory", id)
	}
	cfg = cfg.withDefaults()
	t := &Tree{
		id:          id,
		store:       store,
		m:           m,
		cfg:         cfg,
		logger:      logger,
		prefetchSem: make(chan struct{}, cfg.ReadaheadLimit),
	}
	if cfg.FlushMode == FlushAsync {
		t.dirtySet = make(map[PageID]struct{})
	}

	// Leaf level: entries with snapshot IDs, ranges, sibling links.
	entries := make([]*pageEntry, len(leaves))
	for i, lf := range leaves {
		e := &pageEntry{
			id:      lf.Page,
			tree:    t,
			isLeaf:  true,
			baseLoc: lf.Base,
			lo:      append([]byte(nil), lf.Lo...),
		}
		if i+1 < len(leaves) {
			e.hi = append([]byte(nil), leaves[i+1].Lo...)
			e.next = leaves[i+1].Page
		}
		if len(e.lo) == 0 {
			e.lo = nil
		}
		if len(e.hi) == 0 {
			e.hi = nil
		}
		// Restore the in-memory delta mirror; Algorithm 1's merge path
		// depends on it. Clip to the leaf's directory range: a delta
		// record written by a pre-clip flush may carry ops beyond hi
		// (keys a split moved to the right sibling), and replaying them
		// here would plant phantom out-of-range keys in the rebuilt tree.
		for _, dl := range lf.Deltas {
			data, err := store.Read(dl)
			if err != nil {
				return nil, fmt.Errorf("bwtree: rebuild tree %d: read delta of page %d: %w", id, lf.Page, err)
			}
			ops, err := decodeOps(data)
			if err != nil {
				return nil, err
			}
			e.deltaLocs = append(e.deltaLocs, dl)
			e.deltaOps = append(e.deltaOps, opsInRange(ops, e.lo, e.hi)...)
		}
		m.register(e)
		entries[i] = e
	}

	// Inner levels: group children into nodes of at most MaxInnerEntries,
	// promoting each group's first low key, until one root remains.
	type child struct {
		id PageID
		lo []byte
	}
	level := make([]child, len(entries))
	for i, e := range entries {
		level[i] = child{id: e.id, lo: e.lo}
	}
	for len(level) > 1 {
		var next []child
		for start := 0; start < len(level); start += cfg.MaxInnerEntries {
			end := start + cfg.MaxInnerEntries
			if end > len(level) {
				end = len(level)
			}
			group := level[start:end]
			n := &innerNode{}
			for i, c := range group {
				n.children = append(n.children, c.id)
				if i > 0 {
					n.keys = append(n.keys, c.lo)
				}
			}
			inner := &pageEntry{id: m.allocPageID(), tree: t, inner: n}
			m.register(inner)
			if err := t.flushInner(inner); err != nil {
				return nil, err
			}
			next = append(next, child{id: inner.id, lo: group[0].lo})
		}
		level = next
	}
	t.root = level[0].id
	return t, nil
}

// SetLogger attaches (or replaces) the tree's WAL logger. Used by recovery:
// the WAL suffix replays with no logger, then the real logger attaches
// before the tree serves writes.
func (t *Tree) SetLogger(l WALLogger) { t.logger = l }

// NewEmptyWithID creates an empty tree carrying a predetermined ID —
// recovery uses it to replay RecordNewTree entries from the WAL suffix so
// later records keep routing. Nothing is logged. The caller must have
// called EnsureIDsBeyond(.., id) first.
func NewEmptyWithID(m *Mapping, store *storage.Store, cfg Config, id TreeID) (*Tree, error) {
	cfg = cfg.withDefaults()
	t := &Tree{
		id:          id,
		store:       store,
		m:           m,
		cfg:         cfg,
		prefetchSem: make(chan struct{}, cfg.ReadaheadLimit),
	}
	if cfg.FlushMode == FlushAsync {
		if cfg.NoCache {
			return nil, fmt.Errorf("bwtree: async flushing requires the page cache")
		}
		t.dirtySet = make(map[PageID]struct{})
	}
	rootEntry := &pageEntry{
		id:     m.allocPageID(),
		tree:   t,
		isLeaf: true,
		cached: make([]kv, 0),
	}
	m.register(rootEntry)
	t.root = rootEntry.id
	return t, nil
}
