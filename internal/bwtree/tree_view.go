package bwtree

import (
	"bytes"
	"fmt"
	"math"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// horizonAll is the visibility horizon of an unpinned read: every op is
// visible, regardless of stamp. Reads at horizonAll take the exact code
// path the tree had before MVCC epochs existed.
const horizonAll = wal.LSN(math.MaxUint64)

// retentionFloor returns the LSN at or below which history may be folded
// into page bases: the oldest pinned epoch of the tree's clock, or
// everything when no clock is wired (single-node / sync trees). An edge
// block build in flight clamps the floor to its seal so the content scan
// at the seal stays reconstructible even if every pin closes mid-build.
func (t *Tree) retentionFloor() wal.LSN {
	if t.cfg.Epochs == nil {
		return horizonAll
	}
	f := wal.LSN(t.cfg.Epochs.Floor())
	if c := t.blocks.buildClamp.Load(); c != 0 && wal.LSN(c-1) < f {
		f = wal.LSN(c - 1)
	}
	return f
}

// histNewestLSN returns the stamp of the page's newest history op (0 when
// the history is empty). History is deltaOps followed by pending, each
// LSN-ascending because ops are stamped and appended under the page latch,
// so the last op carries the maximum.
func histNewestLSN(e *pageEntry) wal.LSN {
	if n := len(e.pending); n > 0 {
		return e.pending[n-1].lsn
	}
	if n := len(e.deltaOps); n > 0 {
		return e.deltaOps[n-1].lsn
	}
	return 0
}

// histRetained returns a copy of the page's history ops stamped above
// floor, oldest first — the suffix consolidation must keep on the delta
// chain for pinned snapshots.
func histRetained(e *pageEntry, floor wal.LSN) []op {
	if floor == horizonAll {
		return nil
	}
	var out []op
	for _, o := range e.deltaOps {
		if o.lsn > floor {
			out = append(out, o)
		}
	}
	for _, o := range e.pending {
		if o.lsn > floor {
			out = append(out, o)
		}
	}
	return out
}

// keyInRange reports whether k lies inside [lo, hi); nil bounds are open.
func keyInRange(k, lo, hi []byte) bool {
	return (lo == nil || bytes.Compare(k, lo) >= 0) &&
		(hi == nil || bytes.Compare(k, hi) < 0)
}

// opsInRange filters ops to those whose key lies inside [lo, hi),
// preserving order. Returns the input slice unchanged (no allocation)
// when nothing is dropped — the common case: history ops stray outside a
// page's range only between a split (which narrows hi but leaves the
// left sibling's history covering the full pre-split range) and that
// page's next flush.
func opsInRange(ops []op, lo, hi []byte) []op {
	for i, o := range ops {
		if keyInRange(o.key, lo, hi) {
			continue
		}
		out := append([]op(nil), ops[:i]...)
		for _, o := range ops[i+1:] {
			if keyInRange(o.key, lo, hi) {
				out = append(out, o)
			}
		}
		return out
	}
	return ops
}

// visibleOps returns the page's history ops stamped at or below h, oldest
// first. The result aliases the underlying slices when possible.
func visibleOps(e *pageEntry, h wal.LSN) []op {
	// Both lists are LSN-ascending: binary-search-free prefix scans.
	d := e.deltaOps
	for len(d) > 0 && d[len(d)-1].lsn > h {
		d = d[:len(d)-1]
	}
	if len(d) < len(e.deltaOps) {
		// A delta op is above the horizon; nothing in pending (all newer)
		// can be visible.
		return d
	}
	p := e.pending
	for len(p) > 0 && p[len(p)-1].lsn > h {
		p = p[:len(p)-1]
	}
	if len(p) == 0 {
		return d
	}
	out := make([]op, 0, len(d)+len(p))
	out = append(out, d...)
	return append(out, p...)
}

// mergeOpsCopy is mergeOps guaranteed never to mutate entries: the
// single-op fast path of mergeOps edits the input slice in place, which
// is fine for freshly decoded content but would corrupt a shared stable
// image.
func mergeOpsCopy(entries []kv, ops []op) []kv {
	if len(ops) == 1 {
		return applyOp(append([]kv(nil), entries...), ops[0])
	}
	return mergeOps(entries, ops)
}

// clipRangeView returns the sub-slice of sorted entries inside [lo, hi);
// nil bounds are open. Unlike clipRange it never mutates the input, so it
// is safe on shared stable images. Snapshot reconstruction merges a
// page's stable image with its visible history and both may predate a
// split that narrowed the page, so the merged view must be clipped to the
// page's current range or a scan would deliver keys the right sibling
// also owns.
func clipRangeView(entries []kv, lo, hi []byte) []kv {
	start := 0
	if lo != nil {
		start, _ = searchKV(entries, lo)
	}
	end := len(entries)
	if hi != nil {
		if n, _ := searchKV(entries[start:], hi); start+n < end {
			end = start + n
		}
	}
	return entries[start:end]
}

// stableCopy returns content for use as a page's stable image. With an
// epoch clock wired it is a private copy: the cached slice is mutated in
// place by later writes (applyOp rebinds values and shifts entries on
// delete), so a stable image sharing the cached slice's backing array
// would silently absorb ops stamped above its fold point — and snapshot
// reconstruction would leak future versions into pinned reads. Without a
// clock the stable image is never consulted, so the slice is returned
// as-is and the pre-MVCC zero-copy behaviour is preserved.
func (t *Tree) stableCopy(content []kv) []kv {
	if t.cfg.Epochs == nil {
		return content
	}
	return append([]kv(nil), content...)
}

// stableLocked returns the page's content at its last base fold point,
// loading it from the base location on first use. e.mu must be held; the
// read happens under the latch (GC relocations also take e.mu, so the
// location cannot move mid-read). The returned slice must not be mutated.
func (t *Tree) stableLocked(e *pageEntry) ([]kv, error) {
	if e.stable != nil {
		return e.stable, nil
	}
	if e.baseLoc.IsZero() {
		e.stable = make([]kv, 0)
		return e.stable, nil
	}
	bufs, err := t.store.ReadBatch([]storage.Loc{e.baseLoc})
	if err != nil {
		return nil, fmt.Errorf("bwtree: read stable base of page %d: %w", e.id, err)
	}
	entries, err := decodeLeaf(bufs[0])
	if err != nil {
		return nil, err
	}
	e.stable = entries
	return entries, nil
}

// viewShared materializes the page and returns its content as of horizon
// h. At horizonAll (or when the whole history is at or below h — the
// common case, since the horizon trails live commits by at most the
// in-flight pipeline) this is exactly materializeShared. Otherwise the
// view is rebuilt from the stable image plus the visible history, clipped
// to the page's current range. e.mu must be held; like materializeShared
// it may be released during a cold load, so callers must re-validate
// anything derived from the entry beforehand.
func (t *Tree) viewShared(e *pageEntry, h wal.LSN) ([]kv, int, error) {
	entries, reads, err := t.materializeShared(e)
	if err != nil || h == horizonAll {
		return entries, reads, err
	}
	if histNewestLSN(e) <= h {
		return entries, reads, nil
	}
	stable, err := t.stableLocked(e)
	if err != nil {
		return nil, reads, err
	}
	view := mergeOpsCopy(stable, visibleOps(e, h))
	return clipRangeView(view, e.lo, e.hi), reads, nil
}

// GetAt returns the value stored under key as of horizon h: the effect of
// every op committed at or below h and nothing newer. h == horizonAll is
// Get.
func (t *Tree) GetAt(key []byte, h wal.LSN) ([]byte, bool, error) {
	t.gets.Add(1)
	for {
		e := t.latchLeaf(key)
		entries, reads, err := t.viewShared(e, h)
		if err != nil {
			e.mu.Unlock()
			return nil, false, err
		}
		if !e.covers(key) {
			// A split narrowed the leaf while the latch was dropped for the
			// shared load; re-route from the top.
			e.mu.Unlock()
			continue
		}
		t.m.fanout.Observe(int64(reads))
		idx, found := searchKV(entries, key)
		var out []byte
		if found {
			out = append([]byte(nil), entries[idx].val...)
		}
		e.mu.Unlock()
		return out, found, nil
	}
}

// seedRightHistory carries the parent page's snapshot-relevant state onto
// the right half of a split: the history ops covering the right range
// (stamps intact) and the stable image's right portion. Without this, a
// reader pinned below the split point would reconstruct the right page as
// empty — its history would have stayed behind on the left sibling.
// rightContent is the right half's creation content. Caller holds e.mu;
// right is not yet published.
func (t *Tree) seedRightHistory(e, right *pageEntry, sep []byte, rightContent []kv) error {
	if t.cfg.Epochs == nil {
		return nil
	}
	if histNewestLSN(e) <= t.retentionFloor() {
		// Every history op is already visible to the oldest possible pin, so
		// none needs to be carried — but the right page's fold point must
		// still be recorded: its history starts empty and its baseLoc is
		// zero, so without a stable image a reconstruction forced by a
		// later in-flight write (stamped above some reader's horizon) would
		// rebuild the page from nothing and drop every pre-split key.
		// Copied: the caller installs rightContent as right.cached, which
		// later writes mutate in place.
		right.stable = append([]kv(nil), rightContent...)
		return nil
	}
	stable, err := t.stableLocked(e)
	if err != nil {
		return err
	}
	rs := clipRangeView(stable, sep, nil)
	right.stable = append([]kv(nil), rs...)
	for _, o := range e.deltaOps {
		if bytes.Compare(o.key, sep) >= 0 {
			right.pending = append(right.pending, o)
		}
	}
	for _, o := range e.pending {
		if bytes.Compare(o.key, sep) >= 0 {
			right.pending = append(right.pending, o)
		}
	}
	// The left half keeps its baseLoc, deltaOps and pending untouched:
	// they cover the full pre-split range, and snapshot reconstruction
	// clips to the page's narrowed bounds. deltaOps may momentarily hold
	// ops above the split key that the durable delta records also carry;
	// both are rewritten at the left page's next flush (splitPending).
	return nil
}
