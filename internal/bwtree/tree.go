package bwtree

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// WALLogger receives the tree's write-ahead records. The RW node of §3.4
// plugs a wal.Writer-backed implementation in; standalone trees leave it
// nil.
type WALLogger interface {
	Log(rec *wal.Record) (wal.LSN, error)
}

// AsyncWALLogger is an optional WALLogger extension for group commit: the
// LSN is assigned immediately (so the caller's page latch is held only for
// an instant) and the returned wait function blocks until the record is
// durable. The tree invokes the wait after releasing the page latch, which
// lets concurrent writers to the same page share one commit round trip
// instead of serializing on it.
type AsyncWALLogger interface {
	WALLogger
	LogAsync(rec *wal.Record) (wal.LSN, func() error)
}

// Stats is a snapshot of a tree's operation counters.
type Stats struct {
	Puts           int64
	Gets           int64
	Deletes        int64
	Consolidations int64
	Splits         int64
}

// Tree is one Bw-tree. Multiple trees (a forest) share a Mapping and a
// storage.Store. All methods are safe for concurrent use.
type Tree struct {
	id     TreeID
	store  *storage.Store
	m      *Mapping
	cfg    Config
	logger WALLogger

	// structMu guards the inner-node structure and root pointer: readers
	// (routing) take the read lock, splits take the write lock.
	structMu sync.RWMutex
	root     PageID

	puts           atomic.Int64
	gets           atomic.Int64
	deletes        atomic.Int64
	consolidations atomic.Int64
	splits         atomic.Int64

	// dirty pages awaiting the async flusher; nil in sync mode.
	dirtyMu  sync.Mutex
	dirtySet map[PageID]struct{}

	// prefetchSem bounds scan read-ahead goroutines in flight for this
	// tree (cap = cfg.ReadaheadLimit); launches that would exceed it are
	// dropped and counted in readahead_rejected.
	prefetchSem chan struct{}

	// blocks is the packed edge-block state (block.go); inert unless
	// cfg.EdgeBlockMinEntries is set.
	blocks blockState
}

// New creates an empty tree registered in m, persisting to store.
func New(m *Mapping, store *storage.Store, cfg Config, logger WALLogger) (*Tree, error) {
	cfg = cfg.withDefaults()
	t := &Tree{
		id:          m.allocTreeID(),
		store:       store,
		m:           m,
		cfg:         cfg,
		logger:      logger,
		prefetchSem: make(chan struct{}, cfg.ReadaheadLimit),
	}
	if cfg.FlushMode == FlushAsync {
		if cfg.NoCache {
			return nil, fmt.Errorf("bwtree: async flushing requires the page cache")
		}
		t.dirtySet = make(map[PageID]struct{})
	} else if cfg.Epochs != nil {
		// Sync flushing folds every op into a base inline, which cannot
		// honor a retention floor; the epoch clock rides the group-commit
		// (async) pipeline only.
		return nil, fmt.Errorf("bwtree: epoch clock requires async flushing")
	}
	rootEntry := &pageEntry{
		id:     m.allocPageID(),
		tree:   t,
		isLeaf: true,
		cached: make([]kv, 0),
	}
	m.register(rootEntry)
	t.root = rootEntry.id
	if logger != nil {
		if _, err := logger.Log(&wal.Record{
			Type: wal.RecordNewTree, TreeID: uint64(t.id), AuxPage: uint64(rootEntry.id),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ID returns the tree's identifier.
func (t *Tree) ID() TreeID { return t.id }

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Stats returns a snapshot of the operation counters.
func (t *Tree) Stats() Stats {
	return Stats{
		Puts:           t.puts.Load(),
		Gets:           t.gets.Load(),
		Deletes:        t.deletes.Load(),
		Consolidations: t.consolidations.Load(),
		Splits:         t.splits.Load(),
	}
}

// covers reports whether e's key range contains key.
func (e *pageEntry) covers(key []byte) bool {
	if e.lo != nil && bytes.Compare(key, e.lo) < 0 {
		return false
	}
	if e.hi != nil && bytes.Compare(key, e.hi) >= 0 {
		return false
	}
	return true
}

// childIndex returns the index of the child covering key.
func (n *innerNode) childIndex(key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return bytes.Compare(n.keys[i], key) > 0
	})
}

// route descends from the root to the leaf whose range covers key.
// The returned entry is unlatched; callers must latch it and re-check
// coverage (a racing split may have narrowed the leaf).
func (t *Tree) route(key []byte) *pageEntry {
	t.structMu.RLock()
	defer t.structMu.RUnlock()
	id := t.root
	for {
		e := t.m.get(id)
		if e == nil {
			panic(fmt.Sprintf("bwtree: dangling page %d in tree %d", id, t.id))
		}
		if e.isLeaf {
			return e
		}
		id = e.inner.children[e.inner.childIndex(key)]
	}
}

// latchLeaf routes to and latches the leaf covering key, chasing right
// siblings if a concurrent split moved the key. The caller must unlock the
// returned entry's mutex.
func (t *Tree) latchLeaf(key []byte) *pageEntry {
	for {
		e := t.route(key)
		e.mu.Lock()
		for !e.covers(key) {
			next := e.next
			e.mu.Unlock()
			if next == 0 {
				e = nil
				break
			}
			ne := t.m.get(next)
			if ne == nil {
				e = nil
				break
			}
			ne.mu.Lock()
			e = ne
		}
		if e != nil {
			return e
		}
	}
}

// searchKV binary-searches sorted entries for key.
func searchKV(entries []kv, key []byte) (int, bool) {
	idx := sort.Search(len(entries), func(i int) bool {
		return bytes.Compare(entries[i].key, key) >= 0
	})
	return idx, idx < len(entries) && bytes.Equal(entries[idx].key, key)
}

// applyOp applies one logical op to sorted content, returning the slice.
func applyOp(entries []kv, o op) []kv {
	idx, found := searchKV(entries, o.key)
	switch {
	case o.del && found:
		entries = append(entries[:idx], entries[idx+1:]...)
	case o.del:
		// deleting an absent key: no-op
	case found:
		entries[idx].val = o.val
	default:
		entries = append(entries, kv{})
		copy(entries[idx+1:], entries[idx:])
		entries[idx] = kv{key: o.key, val: o.val}
	}
	return entries
}

// mergeOps applies a batch of logical ops to sorted content in a single
// merge pass. Equivalent to folding applyOp over ops, but the per-op O(n)
// insertion memmoves made that the second-hottest site of cold-page
// materialization; here the batch is sorted once (newest op per key wins)
// and zipped with the entries. The input slice is not mutated; with an
// empty batch it is returned as-is.
func mergeOps(entries []kv, ops []op) []kv {
	switch len(ops) {
	case 0:
		return entries
	case 1:
		return applyOp(entries, ops[0])
	}
	sorted := make([]op, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].key, sorted[j].key) < 0
	})
	dedup := sorted[:0]
	for i, o := range sorted {
		if i+1 < len(sorted) && bytes.Equal(sorted[i+1].key, o.key) {
			continue // a newer op for the same key follows
		}
		dedup = append(dedup, o)
	}
	out := make([]kv, 0, len(entries)+len(dedup))
	i, j := 0, 0
	for i < len(entries) && j < len(dedup) {
		switch c := bytes.Compare(entries[i].key, dedup[j].key); {
		case c < 0:
			out = append(out, entries[i])
			i++
		case c > 0:
			if !dedup[j].del {
				out = append(out, kv{key: dedup[j].key, val: dedup[j].val})
			}
			j++
		default:
			if !dedup[j].del {
				out = append(out, kv{key: entries[i].key, val: dedup[j].val})
			}
			i++
			j++
		}
	}
	out = append(out, entries[i:]...)
	for ; j < len(dedup); j++ {
		if !dedup[j].del {
			out = append(out, kv{key: dedup[j].key, val: dedup[j].val})
		}
	}
	return out
}

// loadDurable fetches and applies a page's durable images — the base page
// plus the delta chain at the given locations — through one batched storage
// call, so the base and delta round trips overlap instead of paying
// ReadLatency sequentially (base and delta live in different streams and
// therefore different extents). The returned read count is the logical
// fan-out Fig. 9 measures: one per Loc — the traditional policy pays 1+n,
// the read-optimized policy at most 2 — regardless of how many round trips
// the batch coalesced them into.
func (t *Tree) loadDurable(pageID PageID, base storage.Loc, deltas []storage.Loc) ([]kv, int, error) {
	nlocs := len(deltas)
	if !base.IsZero() {
		nlocs++
	}
	if nlocs == 0 {
		return make([]kv, 0), 0, nil
	}
	locs := make([]storage.Loc, 0, nlocs)
	if !base.IsZero() {
		locs = append(locs, base)
	}
	locs = append(locs, deltas...)
	bufs, err := t.store.ReadBatch(locs)
	if err != nil {
		return nil, nlocs, fmt.Errorf("bwtree: read page %d: %w", pageID, err)
	}
	entries := make([]kv, 0)
	i := 0
	if !base.IsZero() {
		entries, err = decodeLeaf(bufs[0])
		if err != nil {
			return nil, nlocs, err
		}
		i = 1
	}
	for ; i < len(bufs); i++ {
		ops, err := decodeOps(bufs[i])
		if err != nil {
			return nil, nlocs, err
		}
		entries = mergeOps(entries, ops)
	}
	return entries, nlocs, nil
}

// materialize returns the page's full content, reading the base page and
// durable delta records from storage on a cache miss, plus the number of
// storage reads issued (0 on a cache hit). e.mu must be held for the whole
// call; the write path and splits use it because they cannot let go of the
// latch mid-update. Readers use materializeShared instead, which drops the
// latch during the storage round trip. The returned slice is resident in
// the cache unless the cache is disabled, in which case it is a transient
// copy owned by the caller.
func (t *Tree) materialize(e *pageEntry) ([]kv, int, error) {
	if e.cached != nil {
		t.m.hits.Add(1)
		t.m.touch(e)
		return e.cached, 0, nil
	}
	t.m.misses.Add(1)
	entries, reads, err := t.loadDurable(e.id, e.baseLoc, e.deltaLocs)
	if err != nil {
		return nil, reads, err
	}
	// Clip to the page's range: durable deltas written before a split can
	// carry ops beyond a since-narrowed hi (the right sibling owns those
	// keys), and resurrecting them here would hand phantom out-of-range
	// keys to scans and the split separator choice.
	entries = clipRangeView(mergeOps(entries, e.pending), e.lo, e.hi)
	e.cached = entries
	t.m.noteCached(e) // clears e.cached again when the cache is disabled
	return entries, reads, nil
}

// materializeShared is the Get/Scan-path materialization: on a cache miss
// it releases the page latch for the duration of the storage round trip and
// coalesces with every other reader missing on the same page, so N
// concurrent cold reads of one page cost one set of storage reads instead
// of N serialized behind the latch.
//
// e.mu is held on entry and on return, but NOT across the load, so the
// entry's range may change while the flight runs — callers must re-validate
// anything derived from the entry beforehand (Get re-checks key coverage).
// Correctness of the install is guarded by snapshot validation: the flight
// records the (base, deltas) locations it read, and a member only installs
// the result if the entry still carries exactly those locations when it
// re-latches; otherwise it retries with a fresh snapshot, falling back to a
// fully latched load after a few failed rounds so progress is guaranteed.
func (t *Tree) materializeShared(e *pageEntry) ([]kv, int, error) {
	if e.cached != nil {
		t.m.hits.Add(1)
		t.m.touch(e)
		return e.cached, 0, nil
	}
	t.m.misses.Add(1)
	start := time.Now()
	if !t.m.disabled {
		for attempt := 0; attempt < 3; attempt++ {
			base := e.baseLoc
			deltas := append([]storage.Loc(nil), e.deltaLocs...)
			e.mu.Unlock()
			f, leader := t.m.joinFlight(e.id, base, deltas)
			if leader {
				f.entries, f.reads, f.err = t.loadDurable(e.id, f.base, f.deltas)
				t.m.finishFlight(e.id, f)
			} else {
				t.m.coalesced.Add(1)
				<-f.done
			}
			e.mu.Lock()
			if e.cached != nil {
				// Another flight member (or a writer) installed content
				// while we were away; our storage reads, if any, are moot.
				t.m.materializeLat.Observe(time.Since(start))
				t.m.touch(e)
				return e.cached, 0, nil
			}
			if f.err != nil {
				// Transient by design: a GC relocation can invalidate the
				// snapshot's locations mid-flight. Retry against the
				// repointed entry; a persistent error surfaces through the
				// latched fallback below.
				continue
			}
			if e.baseLoc != f.base || !locsEqual(e.deltaLocs, f.deltas) {
				continue // durable state moved on; the flight's content is stale
			}
			entries := clipRangeView(mergeOps(f.entries, e.pending), e.lo, e.hi)
			e.cached = entries
			t.m.noteCached(e)
			t.m.materializeLat.Observe(time.Since(start))
			reads := 0
			if leader {
				reads = f.reads
			}
			return entries, reads, nil
		}
	}
	// Latched load: no coalescing, but no snapshot to invalidate either.
	// This is the only path when the cache is disabled (a flight would be
	// pointless — nothing gets installed for others to reuse).
	entries, reads, err := t.loadDurable(e.id, e.baseLoc, e.deltaLocs)
	if err != nil {
		return nil, reads, err
	}
	entries = clipRangeView(mergeOps(entries, e.pending), e.lo, e.hi)
	e.cached = entries
	t.m.noteCached(e)
	t.m.materializeLat.Observe(time.Since(start))
	return entries, reads, nil
}

func locsEqual(a, b []storage.Loc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	return t.GetAt(key, horizonAll)
}

// Put upserts a key-value pair.
func (t *Tree) Put(key, value []byte) error {
	t.puts.Add(1)
	_, err := t.write(op{key: append([]byte(nil), key...), val: append([]byte(nil), value...)}, false)
	return err
}

// PutEx upserts a key-value pair and reports whether the key already
// existed — callers that maintain size accounting (the forest) must not
// count an upsert as growth.
func (t *Tree) PutEx(key, value []byte) (existed bool, err error) {
	t.puts.Add(1)
	return t.write(op{key: append([]byte(nil), key...), val: append([]byte(nil), value...)}, true)
}

// Delete removes key. Deleting an absent key is not an error.
func (t *Tree) Delete(key []byte) error {
	t.deletes.Add(1)
	_, err := t.write(op{del: true, key: append([]byte(nil), key...)}, false)
	return err
}

// DeleteEx removes key and reports whether it was present.
func (t *Tree) DeleteEx(key []byte) (existed bool, err error) {
	t.deletes.Add(1)
	return t.write(op{del: true, key: append([]byte(nil), key...)}, true)
}

// PutExDeferred upserts like PutEx but, when the logger commits
// asynchronously, appends the record's durability wait to waits instead of
// blocking — the batched-mutation path. The caller applies a whole group of
// writes back to back and drains the waits once, so every record is already
// enqueued before the first wait starts and the group shares storage
// appends. The write is NOT durable until its wait returns nil.
func (t *Tree) PutExDeferred(key, value []byte, waits *[]func() error) (existed bool, err error) {
	t.puts.Add(1)
	return t.writeWith(op{key: append([]byte(nil), key...), val: append([]byte(nil), value...)}, true, waits)
}

// DeleteExDeferred removes like DeleteEx with PutExDeferred's deferred
// durability contract.
func (t *Tree) DeleteExDeferred(key []byte, waits *[]func() error) (existed bool, err error) {
	t.deletes.Add(1)
	return t.writeWith(op{del: true, key: append([]byte(nil), key...)}, true, waits)
}

func (t *Tree) write(o op, track bool) (existed bool, err error) {
	return t.writeWith(o, track, nil)
}

func (t *Tree) writeWith(o op, track bool, waits *[]func() error) (existed bool, err error) {
	e := t.latchLeaf(o.key)
	needSplit, existed, wait, err := t.applyWrite(e, o, track)
	id := e.id
	e.mu.Unlock()
	if err != nil {
		return existed, err
	}
	if wait != nil {
		if waits != nil {
			// Deferred durability: the caller collects waits across a batch
			// and drains them together.
			*waits = append(*waits, wait)
		} else if err := wait(); err != nil {
			// Group commit: block for WAL durability only after releasing the
			// page latch so concurrent same-page writers batch together.
			return existed, err
		}
	}
	if needSplit {
		if err := t.splitPage(id); err != nil {
			return existed, err
		}
	}
	t.maybeSpawnEdgeBlockBuild()
	return existed, nil
}

// opsExistence resolves key's presence from a delta-op chain alone: the
// newest op for the key wins. known is false when the chain never mentions
// the key and the base page must be consulted.
func opsExistence(ops []op, key []byte) (exists, known bool) {
	for i := len(ops) - 1; i >= 0; i-- {
		if bytes.Equal(ops[i].key, key) {
			return !ops[i].del, true
		}
	}
	return false, false
}

// applyWrite performs Algorithm 1 on a latched leaf. It returns true when
// the page outgrew MaxPageEntries and should split (the caller performs the
// split after releasing the latch, since splits take the structure lock),
// whether the key existed before the write (only resolved when track is
// set — resolution can cost a page materialization), plus a non-nil
// durability wait when the logger commits asynchronously.
func (t *Tree) applyWrite(e *pageEntry, o op, track bool) (needSplit, existed bool, wait func() error, err error) {
	// Edge-block capture gate: must open before the LSN is assigned so a
	// block reader seeing no writer in flight knows every released op has
	// reached the overlay (block.go).
	gate := t.blockWriteEnter()

	// Write-ahead: the record enters the WAL (and receives its LSN) before
	// any page state changes (§3.4 step 2).
	if t.logger != nil {
		typ := wal.RecordPut
		if o.del {
			typ = wal.RecordDelete
		}
		rec := &wal.Record{
			Type: typ, TreeID: uint64(t.id), PageID: uint64(e.id), Key: o.key, Value: o.val,
		}
		if async, ok := t.logger.(AsyncWALLogger); ok {
			lsn, w := async.LogAsync(rec)
			if lsn == 0 {
				// Admission failed (stopped or poisoned committer, or an
				// oversized record): no LSN exists and nothing was enqueued,
				// so the write must fail before any page state changes. An
				// op stamped 0 would otherwise sit below every snapshot
				// horizon and leak an unlogged write into pinned reads.
				t.blockWriteExit(gate, o, false)
				return false, false, nil, w()
			}
			e.lsn = lsn
			o.lsn = lsn
			wait = w
		} else {
			lsn, err := t.logger.Log(rec)
			if err != nil {
				t.blockWriteExit(gate, o, false)
				return false, false, nil, err
			}
			e.lsn = lsn
			o.lsn = lsn
		}
	}

	if t.cfg.FlushMode == FlushAsync {
		needSplit, existed, err = t.applyWriteAsync(e, o, track)
	} else {
		needSplit, existed, err = t.applyWriteSync(e, o, track)
	}
	// Still under the page latch: the overlay append (when capturing)
	// keeps per-key LSN order, and the gate closes only after it.
	t.blockWriteExit(gate, o, err == nil)
	return needSplit, existed, wait, err
}

// applyWriteAsync applies the op in memory and defers persistence to the
// background flusher (group commit).
func (t *Tree) applyWriteAsync(e *pageEntry, o op, track bool) (bool, bool, error) {
	if _, _, err := t.materialize(e); err != nil {
		return false, false, err
	}
	existed := false
	if track {
		_, existed = searchKV(e.cached, o.key)
	}
	e.cached = applyOp(e.cached, o)
	e.pending = append(e.pending, o)
	e.dirty = true
	t.dirtyMu.Lock()
	t.dirtySet[e.id] = struct{}{}
	t.dirtyMu.Unlock()
	return !t.cfg.DisableSplit && len(e.cached) > t.cfg.MaxPageEntries, existed, nil
}

// applyWriteSync is Algorithm 1 with inline flushes.
func (t *Tree) applyWriteSync(e *pageEntry, o op, track bool) (bool, bool, error) {
	existed := false
	switch {
	case e.baseLoc.IsZero() && len(e.deltaOps) == 0:
		// Lines 2–8: the page has no durable image yet. Write the whole
		// (small) page as a fresh base.
		content := e.cached
		if content == nil {
			content = make([]kv, 0)
		}
		if track {
			_, existed = searchKV(content, o.key)
		}
		content = applyOp(content, o)
		needSplit, err := t.writeBaseLocked(e, content)
		return needSplit, existed, err

	case len(e.deltaOps)+1 > t.cfg.ConsolidateNum:
		// Lines 21–27: the chain is full; consolidate base+deltas+new op
		// into a fresh base page.
		content, _, err := t.materialize(e)
		if err != nil {
			return false, false, err
		}
		if track {
			_, existed = searchKV(content, o.key)
		}
		content = applyOp(content, o)
		t.consolidations.Add(1)
		needSplit, err := t.writeBaseLocked(e, content)
		return needSplit, existed, err

	default:
		if track {
			// Resolve existence as cheaply as possible: the cached image,
			// then the in-memory delta chain (newest op wins), and only if
			// neither mentions the key a full materialization.
			if e.cached != nil {
				_, existed = searchKV(e.cached, o.key)
			} else if ex, known := opsExistence(e.deltaOps, o.key); known {
				existed = ex
			} else {
				content, _, err := t.materialize(e)
				if err != nil {
					return false, false, err
				}
				_, existed = searchKV(content, o.key)
			}
		}
		if t.cfg.Policy == ReadOptimized {
			// Lines 19–31 (read-optimized): merge the existing delta with
			// the new op into a single delta record.
			merged := make([]op, 0, len(e.deltaOps)+1)
			merged = append(merged, e.deltaOps...)
			merged = append(merged, o)
			loc, err := t.store.Append(storage.StreamDelta, uint64(e.id), encodeOps(merged))
			if err != nil {
				return false, existed, err
			}
			for _, old := range e.deltaLocs {
				t.store.Invalidate(old)
			}
			e.deltaLocs = e.deltaLocs[:0]
			e.deltaLocs = append(e.deltaLocs, loc)
			e.deltaOps = merged
		} else {
			// Traditional: append one more delta to the chain.
			loc, err := t.store.Append(storage.StreamDelta, uint64(e.id), encodeOps([]op{o}))
			if err != nil {
				return false, existed, err
			}
			e.deltaLocs = append(e.deltaLocs, loc)
			e.deltaOps = append(e.deltaOps, o)
		}
		if e.cached != nil {
			e.cached = applyOp(e.cached, o)
		}
		return false, existed, nil
	}
}

// writeBaseLocked persists content as e's new base page, invalidates the
// old base and delta records, and resets the chain. e.mu must be held.
func (t *Tree) writeBaseLocked(e *pageEntry, content []kv) (bool, error) {
	loc, err := t.store.Append(storage.StreamBase, uint64(e.id), encodeLeaf(content))
	if err != nil {
		return false, err
	}
	if !e.baseLoc.IsZero() {
		t.store.Invalidate(e.baseLoc)
	}
	for _, old := range e.deltaLocs {
		t.store.Invalidate(old)
	}
	e.baseLoc = loc
	e.deltaLocs = nil
	e.deltaOps = nil
	e.cached = content
	e.stable = t.stableCopy(content) // the new base IS the fold point
	t.m.noteCached(e)
	return !t.cfg.DisableSplit && len(content) > t.cfg.MaxPageEntries, nil
}

// Len returns the total number of live keys (walks every leaf; intended
// for tests and small trees). When the tree has an epoch clock it counts
// under a pinned snapshot, so concurrent splits cannot double-count keys
// relocated rightward mid-walk.
func (t *Tree) Len() (int, error) {
	h := horizonAll
	if t.cfg.Epochs != nil {
		p := t.cfg.Epochs.Pin()
		defer p.Close()
		h = wal.LSN(p.Epoch())
	}
	n := 0
	err := t.ScanAt(nil, nil, 0, h, func(k, v []byte) bool { n++; return true })
	return n, err
}

// Scan iterates keys in [from, to) in order, invoking fn for each pair
// until fn returns false or limit pairs have been delivered (limit <= 0
// means unlimited). Each leaf is snapshotted under its latch and the latch
// released before callbacks run, so fn may safely re-enter the tree (e.g.
// a traversal that looks up the vertices it discovers). The callback must
// not retain its arguments.
func (t *Tree) Scan(from, to []byte, limit int, fn func(key, value []byte) bool) error {
	return t.ScanAt(from, to, limit, horizonAll, fn)
}

// ScanAt is Scan as of horizon h: every leaf's content is reconstructed
// at the same commit point, so the whole iteration observes one
// group-commit boundary. If a right sibling is unmapped mid-scan (its
// page was retired by a concurrent structural change), the scan re-routes
// from the last delivered key instead of silently truncating.
func (t *Tree) ScanAt(from, to []byte, limit int, h wal.LSN, fn func(key, value []byte) bool) error {
	if from == nil {
		from = []byte{}
	}
	// Block fast path: a packed super-vertex tree serves the whole scan
	// from its immutable sorted array plus the overlay patch (block.go).
	if blk, ov, ok := t.blockView(h); ok {
		return t.scanEdgeBlock(blk, ov, from, to, limit, h, fn)
	}
	// cursor is the resume point: the first key still owed to the caller
	// is the first key >= cursor (> cursor once started, because cursor
	// then names the last key already delivered).
	cursor := from
	started := false
	e := t.latchLeaf(cursor)
	delivered := 0
	for {
		entries, reads, err := t.viewShared(e, h)
		if err != nil {
			e.mu.Unlock()
			return err
		}
		t.m.fanout.Observe(int64(reads))
		if e.prefetched {
			e.prefetched = false
			t.m.readaheadHits.Add(1)
		}
		start, found := searchKV(entries, cursor)
		if started && found {
			start++ // cursor itself was already delivered
		}
		// Snapshot only what this scan can still deliver: the upper bound
		// and the remaining limit both cap it. Graph traversals scan many
		// short adjacency ranges out of wide leaves, so copying the whole
		// leaf tail here dominated their scan cost.
		end := len(entries)
		if to != nil {
			if n, _ := searchKV(entries[start:], to); start+n < end {
				end = start + n
			}
		}
		if limit > 0 && end-start > limit-delivered {
			end = start + (limit - delivered)
		}
		if end < start {
			end = start
		}
		snapshot := append([]kv(nil), entries[start:end]...)
		ended := end < len(entries) // the bound or the limit falls inside this leaf
		next := e.next
		e.mu.Unlock()

		// Read-ahead: warm the right sibling while this leaf's callbacks
		// run, overlapping the next cold materialization with consumption —
		// but only when the scan will actually get there.
		if next != 0 && !ended {
			t.launchPrefetch(next)
		}

		for _, pair := range snapshot {
			if !fn(pair.key, pair.val) {
				return nil
			}
			cursor = pair.key
			started = true
			delivered++
		}
		if limit > 0 && delivered >= limit {
			return nil
		}
		if ended || next == 0 {
			return nil
		}
		ne := t.m.get(next)
		if ne == nil {
			// The right sibling was unmapped while the latch was down.
			// Earlier the scan silently ended here, truncating results;
			// re-route from the cursor instead — every key at or below it
			// was already delivered, so the restart is exactly-once.
			t.m.scanRestarts.Add(1)
			e = t.latchLeaf(cursor)
			continue
		}
		ne.mu.Lock()
		e = ne
	}
}

// launchPrefetch starts a read-ahead goroutine for page id unless the
// per-tree in-flight cap is already saturated, in which case the launch is
// dropped (and counted): scan speed never creates unbounded goroutine
// pileups against cold storage.
func (t *Tree) launchPrefetch(id PageID) {
	select {
	case t.prefetchSem <- struct{}{}:
		go func() {
			defer func() { <-t.prefetchSem }()
			t.prefetch(id)
		}()
	default:
		t.m.readaheadRejected.Add(1)
	}
}

// prefetch warms the cache with leaf id's content ahead of a scan. Best
// effort on every axis: it gives up rather than contend for the latch, and
// it skips pages that are already resident. Read-ahead loads count in the
// readahead_* metrics but never in the hit/miss statistics — those track
// demand traffic only, so speculative loads cannot flatter the hit ratio.
func (t *Tree) prefetch(id PageID) {
	if t.m.disabled {
		return
	}
	e := t.m.get(id)
	if e == nil || !e.isLeaf {
		return
	}
	if !e.mu.TryLock() {
		return
	}
	defer e.mu.Unlock()
	if e.cached != nil {
		return
	}
	t.m.readaheadIssued.Add(1)
	entries, _, err := t.loadDurable(e.id, e.baseLoc, e.deltaLocs)
	if err != nil {
		return
	}
	e.cached = clipRangeView(mergeOps(entries, e.pending), e.lo, e.hi)
	e.prefetched = true
	t.m.noteCached(e)
}

// logStructural appends a structural WAL record, deferring the durability
// wait into waits when the logger supports group commit — the structure
// lock is released before the caller blocks, so splits do not stall the
// whole tree for a commit round trip.
func (t *Tree) logStructural(rec *wal.Record, waits *[]func() error) (wal.LSN, error) {
	if async, ok := t.logger.(AsyncWALLogger); ok {
		lsn, w := async.LogAsync(rec)
		if lsn == 0 {
			// Admission failed: surface the rejection now, before the
			// structural change mutates any in-memory state.
			return 0, w()
		}
		*waits = append(*waits, w)
		return lsn, nil
	}
	return t.logger.Log(rec)
}

// splitPage splits the (oversized) leaf id, updating parents and, when the
// root splits, growing the tree by one level. It re-checks the size under
// the structure lock, so spurious calls are harmless.
func (t *Tree) splitPage(id PageID) error {
	var waits []func() error
	err := t.splitPageLocked(id, &waits)
	for _, w := range waits {
		if werr := w(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func (t *Tree) splitPageLocked(id PageID, waits *[]func() error) error {
	t.structMu.Lock()
	defer t.structMu.Unlock()
	e := t.m.get(id)
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	content, _, err := t.materialize(e)
	if err != nil {
		return err
	}
	// Clip to the page's current range before choosing a separator.
	// Content is normally in-range, but a phantom key resurrected from a
	// stale durable delta (written before the flush path clipped retained
	// history) would sit at or beyond e.hi — and a separator chosen among
	// phantoms would create an empty-range sibling, permanently breaking
	// range scans over the leaf chain.
	content = clipRangeView(content, e.lo, e.hi)
	if len(content) <= t.cfg.MaxPageEntries {
		return nil // a concurrent split already handled it
	}

	mid := len(content) / 2
	sep := content[mid].key
	right := &pageEntry{
		id:     t.m.allocPageID(),
		tree:   t,
		isLeaf: true,
		lo:     sep,
		hi:     e.hi,
		next:   e.next,
	}
	rightContent := append([]kv(nil), content[mid:]...)
	leftContent := append([]kv(nil), content[:mid]...)

	// Carry the right range's history and stable image onto the new page
	// before any state moves, so pinned snapshots can still reconstruct
	// pre-split versions of keys that migrate right. (No-op without an
	// epoch clock or when the whole history is below the retention floor.)
	if err := t.seedRightHistory(e, right, sep, rightContent); err != nil {
		return err
	}

	if t.logger != nil {
		if _, err := t.logStructural(&wal.Record{
			Type: wal.RecordNewPage, TreeID: uint64(t.id), PageID: uint64(right.id),
		}, waits); err != nil {
			return err
		}
		lsn, err := t.logStructural(&wal.Record{
			Type: wal.RecordSplit, TreeID: uint64(t.id),
			PageID: uint64(e.id), AuxPage: uint64(right.id), Key: sep,
		}, waits)
		if err != nil {
			return err
		}
		e.lsn = lsn
		right.lsn = lsn
	}

	if t.cfg.FlushMode == FlushSync {
		// Persist both halves as fresh base pages immediately.
		rloc, err := t.store.Append(storage.StreamBase, uint64(right.id), encodeLeaf(rightContent))
		if err != nil {
			return err
		}
		right.baseLoc = rloc
		lloc, err := t.store.Append(storage.StreamBase, uint64(e.id), encodeLeaf(leftContent))
		if err != nil {
			return err
		}
		if !e.baseLoc.IsZero() {
			t.store.Invalidate(e.baseLoc)
		}
		for _, old := range e.deltaLocs {
			t.store.Invalidate(old)
		}
		e.baseLoc = lloc
		e.deltaLocs = nil
		e.deltaOps = nil
		e.stable = t.stableCopy(leftContent)
		right.stable = t.stableCopy(rightContent)
		// A sync split folds everything into fresh bases; drop any seeded
		// history so "stable + hist = content" still holds for the halves.
		right.pending = nil
	} else {
		// Dirty pages; the flusher rewrites both bases at the next group
		// commit (§3.4 step 7).
		e.dirty = true
		e.splitPending = true
		right.dirty = true
		right.splitPending = true
		t.dirtyMu.Lock()
		t.dirtySet[e.id] = struct{}{}
		t.dirtySet[right.id] = struct{}{}
		t.dirtyMu.Unlock()
	}

	e.cached = leftContent
	right.cached = rightContent
	e.hi = sep
	e.next = right.id
	t.m.register(right)
	t.m.noteCached(e)
	t.m.noteCached(right)
	t.splits.Add(1)

	return t.insertParent(e.id, sep, right.id, waits)
}

// insertParent inserts the separator (sep -> right) into the parent of
// leaf/inner page left, splitting inner nodes upward as needed. Caller
// holds structMu exclusively.
func (t *Tree) insertParent(left PageID, sep []byte, right PageID, waits *[]func() error) error {
	// Collect the path from root to the node `left` by routing on sep;
	// before the parent is updated, sep still routes into `left`'s subtree.
	var path []*pageEntry
	id := t.root
	for id != left {
		e := t.m.get(id)
		if e == nil || e.isLeaf {
			break
		}
		path = append(path, e)
		id = e.inner.children[e.inner.childIndex(sep)]
	}

	if len(path) == 0 {
		// left is the root: grow a new root.
		newRoot := &pageEntry{
			id:   t.m.allocPageID(),
			tree: t,
			inner: &innerNode{
				keys:     [][]byte{sep},
				children: []PageID{left, right},
			},
		}
		t.m.register(newRoot)
		t.root = newRoot.id
		if t.logger != nil {
			if _, err := t.logStructural(&wal.Record{
				Type: wal.RecordNewRoot, TreeID: uint64(t.id),
				PageID: uint64(left), AuxPage: uint64(newRoot.id),
			}, waits); err != nil {
				return err
			}
		}
		return t.flushInner(newRoot)
	}

	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		parent := path[lvl]
		n := parent.inner
		idx := n.childIndex(sep)
		n.keys = append(n.keys, nil)
		copy(n.keys[idx+1:], n.keys[idx:])
		n.keys[idx] = sep
		n.children = append(n.children, 0)
		copy(n.children[idx+2:], n.children[idx+1:])
		n.children[idx+1] = right
		if err := t.flushInner(parent); err != nil {
			return err
		}
		if len(n.children) <= t.cfg.MaxInnerEntries {
			return nil
		}
		// Split the inner node and continue upward with the promoted key.
		mid := len(n.keys) / 2
		promoted := n.keys[mid]
		rightInner := &pageEntry{
			id:   t.m.allocPageID(),
			tree: t,
			inner: &innerNode{
				keys:     append([][]byte(nil), n.keys[mid+1:]...),
				children: append([]PageID(nil), n.children[mid+1:]...),
			},
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		t.m.register(rightInner)
		if err := t.flushInner(parent); err != nil {
			return err
		}
		if err := t.flushInner(rightInner); err != nil {
			return err
		}
		sep, right = promoted, rightInner.id
		if lvl == 0 {
			// The root inner node split: grow a new root above it.
			newRoot := &pageEntry{
				id:   t.m.allocPageID(),
				tree: t,
				inner: &innerNode{
					keys:     [][]byte{sep},
					children: []PageID{parent.id, right},
				},
			}
			t.m.register(newRoot)
			t.root = newRoot.id
			if t.logger != nil {
				if _, err := t.logger.Log(&wal.Record{
					Type: wal.RecordNewRoot, TreeID: uint64(t.id),
					PageID: uint64(parent.id), AuxPage: uint64(newRoot.id),
				}); err != nil {
					return err
				}
			}
			return t.flushInner(newRoot)
		}
	}
	return nil
}

// flushInner persists an inner node's image. Inner nodes change only
// during splits, so they are flushed synchronously in both flush modes.
func (t *Tree) flushInner(e *pageEntry) error {
	loc, err := t.store.Append(storage.StreamBase, uint64(e.id), encodeInner(e.inner))
	if err != nil {
		return err
	}
	if !e.inner.loc.IsZero() {
		t.store.Invalidate(e.inner.loc)
	}
	e.inner.loc = loc
	return nil
}

// Height returns the number of levels in the tree (1 = a single leaf).
func (t *Tree) Height() int {
	t.structMu.RLock()
	defer t.structMu.RUnlock()
	h := 1
	id := t.root
	for {
		e := t.m.get(id)
		if e == nil || e.isLeaf {
			return h
		}
		h++
		id = e.inner.children[0]
	}
}
