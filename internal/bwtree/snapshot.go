package bwtree

import (
	"fmt"

	"bg3/internal/storage"
	"bg3/internal/wal"
)

// LoadTreeSnapshot installs one tree's state into the replica from a
// snapshot: the leaf directory in key order (leaves[i].Lo is the low key,
// nil on the first leaf) with each leaf's durable locations. Used when an
// RO node bootstraps from a snapshot instead of replaying the WAL from the
// beginning.
func (r *Replica) LoadTreeSnapshot(tree TreeID, leaves []LeafInfo) error {
	if len(leaves) == 0 {
		return fmt.Errorf("bwtree: replica: snapshot of tree %d has no leaves", tree)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rt := &replicaTree{leaves: make([]replicaLeafRef, 0, len(leaves))}
	for i, lf := range leaves {
		p := &replicaPage{
			id:     PageID(lf.Page),
			base:   lf.Base,
			deltas: append([]storage.Loc(nil), lf.Deltas...),
			lo:     append([]byte(nil), lf.Lo...),
		}
		if i+1 < len(leaves) {
			p.hi = append([]byte(nil), leaves[i+1].Lo...)
		}
		r.pages[p.id] = p
		rt.leaves = append(rt.leaves, replicaLeafRef{lo: p.lo, page: p.id})
	}
	// The first leaf covers (-inf, ...): normalize an empty low key to nil.
	if len(rt.leaves) > 0 && len(rt.leaves[0].lo) == 0 {
		rt.leaves[0].lo = nil
		r.pages[rt.leaves[0].page].lo = nil
	}
	r.trees[tree] = rt
	return nil
}

// SetHighLSN initializes the replica's WAL horizon (snapshot bootstrap):
// records at or below it are already reflected in the loaded state.
func (r *Replica) SetHighLSN(l wal.LSN) {
	r.lsnMu.Lock()
	if l > r.highLSN {
		r.highLSN = l
	}
	r.lsnMu.Unlock()
}
