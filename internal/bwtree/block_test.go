package bwtree

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"bg3/internal/gc"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

func blockEntries(n int) []kv {
	out := make([]kv, n)
	for i := range out {
		out[i] = kv{
			key: []byte(fmt.Sprintf("k%06d", i)),
			val: []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return out
}

func TestEdgeBlockEncodeDecodeRoundTrip(t *testing.T) {
	entries := blockEntries(100)
	buf := encodeEdgeBlockPart(entries, 42, 3, 7)
	got, seal, part, nparts, err := decodeEdgeBlockPart(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seal != 42 || part != 3 || nparts != 7 {
		t.Fatalf("header = (%d, %d, %d), want (42, 3, 7)", seal, part, nparts)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if !bytes.Equal(got[i].key, entries[i].key) || !bytes.Equal(got[i].val, entries[i].val) {
			t.Fatalf("entry %d = %q=%q, want %q=%q", i, got[i].key, got[i].val, entries[i].key, entries[i].val)
		}
	}

	// An empty part (a block over an empty tree) round-trips too.
	buf = encodeEdgeBlockPart(nil, 0, 0, 1)
	if got, _, _, _, err = decodeEdgeBlockPart(buf); err != nil || len(got) != 0 {
		t.Fatalf("empty part decode = %v entries, err %v", len(got), err)
	}
}

func TestEdgeBlockSplitParts(t *testing.T) {
	entries := blockEntries(200)
	parts, err := splitEdgeBlockParts(entries, 9, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("got %d parts, want a multi-part split", len(parts))
	}
	var all []kv
	for i, p := range parts {
		if len(p) > 512 {
			t.Fatalf("part %d is %d bytes, exceeds the 512-byte cap", i, len(p))
		}
		got, seal, part, nparts, err := decodeEdgeBlockPart(p)
		if err != nil {
			t.Fatal(err)
		}
		if seal != 9 || part != uint32(i) || nparts != uint32(len(parts)) {
			t.Fatalf("part %d header = (%d, %d, %d)", i, seal, part, nparts)
		}
		all = append(all, got...)
	}
	if len(all) != len(entries) {
		t.Fatalf("parts union has %d entries, want %d", len(all), len(entries))
	}
	for i := range all {
		if !bytes.Equal(all[i].key, entries[i].key) {
			t.Fatalf("entry %d out of order after split", i)
		}
	}

	// An entry too large for any part is a hard error, not silent truncation.
	huge := []kv{{key: []byte("k"), val: make([]byte, 1024)}}
	if _, err := splitEdgeBlockParts(huge, 0, 512); err == nil {
		t.Fatal("oversized entry should fail the split")
	}
}

func TestEdgeBlockDecodeCorrupt(t *testing.T) {
	valid := encodeEdgeBlockPart(blockEntries(10), 5, 0, 1)
	cases := map[string][]byte{
		"empty":        {},
		"short header": valid[:edgeBlockHeaderSize-1],
		"truncated":    valid[:len(valid)-4],
		"trailing":     append(append([]byte(nil), valid...), 0xAA),
	}
	// One bit flip in every byte position class: magic, crc, seal, counts,
	// entry header, key, value.
	for _, pos := range []int{0, 5, 9, 17, 21, 25, edgeBlockHeaderSize + 1, edgeBlockHeaderSize + 9, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x10
		cases[fmt.Sprintf("bitflip@%d", pos)] = flipped
	}
	for name, buf := range cases {
		if _, _, _, _, err := decodeEdgeBlockPart(buf); !errors.Is(err, ErrCorruptBlock) {
			t.Fatalf("%s: err = %v, want ErrCorruptBlock", name, err)
		}
	}
	if _, _, _, _, err := decodeEdgeBlockPart(valid); err != nil {
		t.Fatalf("pristine part failed to decode: %v", err)
	}
}

// collectScan gathers a ranged scan through whatever path the tree picks.
func collectScan(t *testing.T, tr *Tree, from, to []byte, limit int) []string {
	t.Helper()
	var out []string
	if err := tr.Scan(from, to, limit, func(k, v []byte) bool {
		out = append(out, string(k)+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEdgeBlockSyncTreeScanEquality builds a block on a sync-flushed tree
// and checks every scan shape (full, ranged, limited) against a twin tree
// with blocks disabled, through overlay writes, deletes, and a rebuild.
func TestEdgeBlockSyncTreeScanEquality(t *testing.T) {
	blocked, _ := newTestTree(t, Config{EdgeBlockMinEntries: 16, EdgeBlockRebuildOps: 8})
	control, _ := newTestTree(t, Config{})
	put := func(k, v string) {
		t.Helper()
		if err := blocked.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		if err := control.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	del := func(k string) {
		t.Helper()
		if err := blocked.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		if err := control.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		put(fmt.Sprintf("k%06d", i), fmt.Sprintf("v%d", i))
	}
	if built, err := blocked.TryBuildEdgeBlock(); err != nil || !built {
		t.Fatalf("build = %v, %v", built, err)
	}
	info, ok := blocked.EdgeBlock()
	if !ok || info.Entries != 200 {
		t.Fatalf("block info = %+v ok=%v, want 200 entries", info, ok)
	}

	check := func(stage string) {
		t.Helper()
		shapes := []struct {
			from, to []byte
			limit    int
		}{
			{nil, nil, 0},
			{nil, nil, 17},
			{[]byte("k000050"), nil, 0},
			{nil, []byte("k000100"), 0},
			{[]byte("k000050"), []byte("k000150"), 0},
			{[]byte("k000050"), []byte("k000150"), 13},
			{[]byte("zz"), nil, 0}, // past the end
		}
		for i, s := range shapes {
			got := collectScan(t, blocked, s.from, s.to, s.limit)
			want := collectScan(t, control, s.from, s.to, s.limit)
			if len(got) != len(want) {
				t.Fatalf("%s shape %d: %d results, want %d", stage, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s shape %d result %d: %q, want %q", stage, i, j, got[j], want[j])
				}
			}
		}
	}
	check("sealed")

	// Overlay: overwrites, inserts, deletes patched over the block.
	put("k000050", "patched")
	put("a-before-all", "front")
	put("k999999", "tail")
	del("k000100")
	del("a-before-all")
	check("overlaid")

	// Rebuild folds the overlay into a fresh block.
	if built, err := blocked.TryBuildEdgeBlock(); err != nil || !built {
		t.Fatalf("rebuild = %v, %v", built, err)
	}
	if info, ok = blocked.EdgeBlock(); !ok || info.Entries != 200 {
		t.Fatalf("rebuilt block info = %+v ok=%v, want 200 entries", info, ok)
	}
	check("rebuilt")
}

// TestEdgeBlockMVCCSnapshot pins an epoch before the block is built and
// checks the pinned view reads the pre-block history exactly, while the
// head sees the latest state through the overlay.
func TestEdgeBlockMVCCSnapshot(t *testing.T) {
	tr, src, _ := newEpochTree(t, Config{EdgeBlockMinEntries: 4, EdgeBlockRebuildOps: 64})
	for i := 0; i < 20; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	p := src.Pin()
	defer p.Close()
	h := wal.LSN(p.Epoch())
	want := collectAt(t, tr, h)

	// Mutations past the pin: they must stay above the block's seal.
	if err := tr.Put([]byte("k05"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("k10")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k99"), []byte("added")); err != nil {
		t.Fatal(err)
	}

	// The pin holds the floor at h, so the build seals there and the three
	// mutations land in the overlay.
	if built, err := tr.TryBuildEdgeBlock(); err != nil || !built {
		t.Fatalf("build = %v, %v", built, err)
	}
	info, ok := tr.EdgeBlock()
	if !ok {
		t.Fatal("no block after build")
	}
	if info.Seal != h {
		t.Fatalf("seal = %d, want the pinned floor %d", info.Seal, h)
	}
	if info.Overlay != 3 {
		t.Fatalf("overlay = %d ops, want the 3 post-pin mutations", info.Overlay)
	}

	got := collectAt(t, tr, h)
	if len(got) != len(want) {
		t.Fatalf("pinned view has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("pinned view[%q] = %q, want %q", k, got[k], v)
		}
	}

	head := collectAt(t, tr, horizonAll)
	if head["k05"] != "new" || head["k99"] != "added" {
		t.Fatalf("head view = %v, missing post-pin writes", head)
	}
	if _, present := head["k10"]; present {
		t.Fatal("head view still has the deleted k10")
	}
}

// TestEdgeBlockSkipOnOldPins holds a pin while many ops accumulate above
// it: the build must refuse (the overlay would immediately exceed the
// rebuild threshold) and record the skip.
func TestEdgeBlockSkipOnOldPins(t *testing.T) {
	tr, src, _ := newEpochTree(t, Config{EdgeBlockMinEntries: 4, EdgeBlockRebuildOps: 8})
	for i := 0; i < 10; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	p := src.Pin()
	defer p.Close()
	for i := 0; i < 20; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("x%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if built, err := tr.TryBuildEdgeBlock(); err != nil || built {
		t.Fatalf("build = %v, %v; want a pin skip", built, err)
	}
	if _, ok := tr.EdgeBlock(); ok {
		t.Fatal("a block was installed despite the skip")
	}
	if got := tr.m.BlockStatsSnapshot().SkippedPins; got == 0 {
		t.Fatal("skip was not recorded in block stats")
	}
	// The skip also suppresses retries until the floor advances.
	if tr.edgeBlockWanted() {
		t.Fatal("build still wanted at the same floor after a skip")
	}
	// Release the pin and advance the floor: the build goes through.
	p.Close()
	if err := tr.Put([]byte("zz"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if built, err := tr.TryBuildEdgeBlock(); err != nil || !built {
		t.Fatalf("post-release build = %v, %v", built, err)
	}
}

// TestEdgeBlockGCPinning checks GC treats the block's extents as pinned
// until the block is superseded.
func TestEdgeBlockGCPinning(t *testing.T) {
	tr, st := newTestTree(t, Config{EdgeBlockMinEntries: 16, EdgeBlockRebuildOps: 8})
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if built, err := tr.TryBuildEdgeBlock(); err != nil || !built {
		t.Fatalf("build = %v, %v", built, err)
	}
	pinned := tr.m.BlockExtents(storage.StreamBase)
	if len(pinned) == 0 {
		t.Fatal("no pinned extents for a live block")
	}
	r := gc.NewReclaimer(st, storage.StreamBase, gc.FIFO{}, tr.m.Relocate)
	r.Blocks = tr.m
	if _, err := r.RunOnce(4); err != nil {
		t.Fatal(err)
	}
	if r.Stats().BlockPinned == 0 {
		t.Fatal("reclaimer did not defer the block's extents")
	}
}
