package bwtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"bg3/internal/wal"
)

// kv is one key-value pair in a materialized page.
type kv struct {
	key []byte
	val []byte
}

// op is one logical update carried by a delta record. lsn is the WAL LSN
// the update committed under (0 on trees without a logger): snapshot reads
// at horizon H reconstruct a page's content by applying only ops with
// lsn <= H on top of the stable base image.
type op struct {
	del bool
	key []byte
	val []byte
	lsn wal.LSN
}

// ErrCorruptPage is returned when a durable page image fails to decode.
var ErrCorruptPage = errors.New("bwtree: corrupt page image")

// encodeLeaf serializes a materialized leaf page:
//
//	count[4] { klen[4] vlen[4] key val }*
func encodeLeaf(entries []kv) []byte {
	size := 4
	for _, e := range entries {
		size += 8 + len(e.key) + len(e.val)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.key)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.val)))
		buf = append(buf, e.key...)
		buf = append(buf, e.val...)
	}
	return buf
}

// decodeLeaf parses a leaf image. The returned entries alias buf rather
// than copying each key and value: decode is the hottest allocation site of
// the read path, page content is never mutated in place (updates replace
// slice headers), and every storage read hands back a freshly owned buffer,
// so aliasing is safe. Callers that decode from a shared or reused buffer
// must copy first. Sub-slices are capacity-capped so an append through one
// can never bleed into its neighbor.
func decodeLeaf(buf []byte) ([]kv, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short leaf", ErrCorruptPage)
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	entries := make([]kv, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(buf) < 8 {
			return nil, fmt.Errorf("%w: truncated leaf entry %d", ErrCorruptPage, i)
		}
		klen := binary.LittleEndian.Uint32(buf)
		vlen := binary.LittleEndian.Uint32(buf[4:])
		buf = buf[8:]
		if uint32(len(buf)) < klen+vlen {
			return nil, fmt.Errorf("%w: truncated leaf payload %d", ErrCorruptPage, i)
		}
		entries = append(entries, kv{
			key: buf[:klen:klen],
			val: buf[klen : klen+vlen : klen+vlen],
		})
		buf = buf[klen+vlen:]
	}
	return entries, nil
}

// stampedOpsFlag marks the LSN-stamped delta format in the count word.
// Legacy records (count without the flag) decode with every stamp zero,
// i.e. visible at any snapshot horizon.
const stampedOpsFlag = 0x8000_0000

// encodeOps serializes a delta record (one op for the traditional policy,
// the whole merged history for the read-optimized policy):
//
//	count[4]|flag { del[1] lsn[8] klen[4] vlen[4] key val }*
//
// Per-op LSN stamps survive the round trip so a rebuilt or replicated
// delta chain keeps the visibility boundaries snapshot reads filter by.
func encodeOps(ops []op) []byte {
	size := 4
	for _, o := range ops {
		size += 17 + len(o.key) + len(o.val)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops))|stampedOpsFlag)
	for _, o := range ops {
		if o.del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o.lsn))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.key)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.val)))
		buf = append(buf, o.key...)
		buf = append(buf, o.val...)
	}
	return buf
}

func decodeOps(buf []byte) ([]op, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short delta", ErrCorruptPage)
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	stamped := n&stampedOpsFlag != 0
	n &^= stampedOpsFlag
	hdr := uint32(9)
	if stamped {
		hdr = 17
	}
	ops := make([]op, 0, n)
	for i := uint32(0); i < n; i++ {
		if uint32(len(buf)) < hdr {
			return nil, fmt.Errorf("%w: truncated delta op %d", ErrCorruptPage, i)
		}
		del := buf[0] == 1
		var lsn wal.LSN
		rest := buf[1:]
		if stamped {
			lsn = wal.LSN(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		klen := binary.LittleEndian.Uint32(rest)
		vlen := binary.LittleEndian.Uint32(rest[4:])
		buf = buf[hdr:]
		if uint32(len(buf)) < klen+vlen {
			return nil, fmt.Errorf("%w: truncated delta payload %d", ErrCorruptPage, i)
		}
		// Like decodeLeaf, ops alias buf: delta payloads are applied, never
		// edited, and readers own the buffer they decode from.
		o := op{del: del, key: buf[:klen:klen], lsn: lsn}
		if vlen > 0 {
			o.val = buf[klen : klen+vlen : klen+vlen]
		}
		ops = append(ops, o)
		buf = buf[klen+vlen:]
	}
	return ops, nil
}

// encodeInner serializes an inner node:
//
//	nchildren[4] { child[8] }* { klen[4] key }*   (nkeys = nchildren-1)
func encodeInner(n *innerNode) []byte {
	size := 4 + 8*len(n.children)
	for _, k := range n.keys {
		size += 4 + len(k)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.children)))
	for _, c := range n.children {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c))
	}
	for _, k := range n.keys {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

func decodeInner(buf []byte) (*innerNode, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("%w: short inner", ErrCorruptPage)
	}
	nc := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if nc == 0 || uint32(len(buf)) < nc*8 {
		return nil, fmt.Errorf("%w: truncated inner children", ErrCorruptPage)
	}
	n := &innerNode{children: make([]PageID, nc), keys: make([][]byte, 0, nc-1)}
	for i := range n.children {
		n.children[i] = PageID(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	for i := uint32(0); i+1 < nc; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: truncated inner key %d", ErrCorruptPage, i)
		}
		klen := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint32(len(buf)) < klen {
			return nil, fmt.Errorf("%w: truncated inner key payload %d", ErrCorruptPage, i)
		}
		n.keys = append(n.keys, append([]byte(nil), buf[:klen]...))
		buf = buf[klen:]
	}
	return n, nil
}
