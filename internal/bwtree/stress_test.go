package bwtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bg3/internal/storage"
)

// TestStressParallelReadersWritersGC hammers one tree with concurrent
// writers (disjoint key ranges), readers (point gets and scans), and a GC
// goroutine relocating sealed extents underneath them. Run with -race; the
// grace period keeps superseded locations readable for in-flight readers.
func TestStressParallelReadersWritersGC(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	st := storage.Open(&storage.Options{ExtentSize: 1 << 10, ReclaimGrace: time.Hour})
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{MaxPageEntries: 16, ConsolidateNum: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		readers  = 4
		opsPerW  = 600
		keysPerW = 80
	)
	key := func(w, i int) []byte { return []byte(fmt.Sprintf("w%d-k%03d", w, i)) }

	// Each writer owns a disjoint key range, so its local model is exact.
	models := make([]map[string]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			model := map[string]string{}
			for i := 0; i < opsPerW; i++ {
				k := key(w, rng.Intn(keysPerW))
				if rng.Intn(5) == 0 {
					if err := tr.Delete(k); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					delete(model, string(k))
				} else {
					v := fmt.Sprintf("w%d.%d", w, i)
					if err := tr.Put(k, []byte(v)); err != nil {
						t.Errorf("writer %d put: %v", w, err)
						return
					}
					model[string(k)] = v
				}
			}
			models[w] = model
		}(w)
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup
	for r := 0; r < readers; r++ {
		bg.Add(1)
		go func(r int) {
			defer bg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := key(rng.Intn(writers), rng.Intn(keysPerW))
				if v, ok, err := tr.Get(k); err != nil {
					t.Errorf("reader get %s: %v", k, err)
					return
				} else if ok && len(v) == 0 {
					t.Errorf("reader got empty value for %s", k)
					return
				}
				if rng.Intn(16) == 0 {
					if err := tr.Scan(nil, nil, 64, func(k, v []byte) bool { return true }); err != nil {
						t.Errorf("reader scan: %v", err)
						return
					}
				}
			}
		}(r)
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sid := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
				for _, u := range st.Usage(sid) {
					if u.Sealed {
						if _, err := st.Reclaim(sid, u.Extent, m.Relocate); err != nil {
							t.Errorf("reclaim %v/%d: %v", sid, u.Extent, err)
							return
						}
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent verification: the tree matches the union of writer models.
	want := 0
	for w, model := range models {
		want += len(model)
		for k, v := range model {
			got, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("writer %d key %s = %q %v %v, want %q", w, k, got, ok, err, v)
			}
		}
	}
	n, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("tree has %d keys, models say %d", n, want)
	}
}

// TestStressConcurrentFlushAsync exercises the async flusher racing live
// writes: dirty pages are flushed while new deltas land on them.
func TestStressConcurrentFlushAsync(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	st := storage.Open(&storage.Options{ExtentSize: 1 << 12})
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tr.FlushDirty(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const writers, per = 3, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-%03d", w, i%60))
				if err := tr.Put(k, []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	bg.Wait()
	if t.Failed() {
		return
	}
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if tr.DirtyCount() != 0 {
		t.Fatalf("dirty pages after final flush: %d", tr.DirtyCount())
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < 60; i++ {
			k := []byte(fmt.Sprintf("w%d-%03d", w, i))
			if _, ok, err := tr.Get(k); err != nil || !ok {
				t.Fatalf("%s missing after flush race (err=%v)", k, err)
			}
		}
	}
}
