package bwtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"bg3/internal/storage"
)

func newTestTree(t *testing.T, cfg Config) (*Tree, *storage.Store) {
	t.Helper()
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(cfg.CacheCapacity, cfg.NoCache)
	tr, err := New(m, st, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func TestPutGet(t *testing.T) {
	for _, policy := range []DeltaPolicy{ReadOptimized, Traditional} {
		t.Run(policy.String(), func(t *testing.T) {
			tr, _ := newTestTree(t, Config{Policy: policy})
			if err := tr.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := tr.Get([]byte("k1"))
			if err != nil || !ok || string(v) != "v1" {
				t.Fatalf("get = %q %v %v", v, ok, err)
			}
			if _, ok, _ := tr.Get([]byte("missing")); ok {
				t.Fatal("found a missing key")
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	tr, _ := newTestTree(t, Config{})
	for i := 0; i < 5; i++ {
		if err := tr.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "v4" {
		t.Fatalf("get = %q %v, want v4", v, ok)
	}
	if n, _ := tr.Len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTestTree(t, Config{})
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	// Deleting an absent key is fine.
	if err := tr.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	for _, policy := range []DeltaPolicy{ReadOptimized, Traditional} {
		t.Run(policy.String(), func(t *testing.T) {
			tr, _ := newTestTree(t, Config{Policy: policy, MaxPageEntries: 16, MaxInnerEntries: 4})
			const n = 2000
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key-%06d", i))
				if err := tr.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if tr.Stats().Splits == 0 {
				t.Fatal("expected splits")
			}
			if tr.Height() < 3 {
				t.Fatalf("height = %d, want >= 3 with tiny fanout", tr.Height())
			}
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key-%06d", i))
				v, ok, err := tr.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("key %s = %q %v", key, v, ok)
				}
			}
			if n2, _ := tr.Len(); n2 != n {
				t.Fatalf("len = %d, want %d", n2, n)
			}
		})
	}
}

func TestRandomOrderInsertion(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 8})
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(1000)
	for _, i := range perm {
		if err := tr.Put([]byte(fmt.Sprintf("k%05d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Scan must return sorted order.
	var prev []byte
	err := tr.Scan(nil, nil, 0, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan order violation: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 1000 {
		t.Fatalf("len = %d, want 1000", n)
	}
}

func TestScanRangeAndLimit(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 8})
	for i := 0; i < 100; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan([]byte("k010"), []byte("k020"), 0, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range scan = %v", got)
	}
	got = got[:0]
	if err := tr.Scan(nil, nil, 7, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("limit scan returned %d", len(got))
	}
	// Early termination by callback.
	count := 0
	if err := tr.Scan(nil, nil, 0, func(k, v []byte) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("callback stop at %d, want 3", count)
	}
}

// TestDeltaChainShape verifies the core Fig. 4 distinction: the traditional
// policy accumulates one durable delta per update while the read-optimized
// policy keeps at most one.
func TestDeltaChainShape(t *testing.T) {
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%02d", i)) }

	tradTree, _ := newTestTree(t, Config{Policy: Traditional, ConsolidateNum: 10, DisableSplit: true})
	roTree, _ := newTestTree(t, Config{Policy: ReadOptimized, ConsolidateNum: 10, DisableSplit: true})

	for _, tr := range []*Tree{tradTree, roTree} {
		// First put creates the base page; the next 5 create deltas.
		for i := 0; i < 6; i++ {
			if err := tr.Put(key(i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	tradLeaf := tradTree.m.get(tradTree.root)
	roLeaf := roTree.m.get(roTree.root)
	if got := len(tradLeaf.deltaLocs); got != 5 {
		t.Fatalf("traditional delta chain = %d, want 5", got)
	}
	if got := len(roLeaf.deltaLocs); got != 1 {
		t.Fatalf("read-optimized delta count = %d, want 1", got)
	}
	if got := len(roLeaf.deltaOps); got != 5 {
		t.Fatalf("read-optimized merged ops = %d, want 5", got)
	}
}

// TestReadAmplification measures storage reads per Get with a disabled
// cache — the Fig. 9 experiment in miniature.
func TestReadAmplification(t *testing.T) {
	run := func(policy DeltaPolicy) float64 {
		st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
		m := NewMapping(0, true) // cache disabled
		tr, err := New(m, st, Config{Policy: policy, ConsolidateNum: 10, DisableSplit: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Base + 5 deltas on one page.
		for i := 0; i < 6; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		st.ResetIOStats()
		const gets = 10
		for i := 0; i < gets; i++ {
			if _, _, err := tr.Get([]byte("k00")); err != nil {
				t.Fatal(err)
			}
		}
		return float64(st.Stats().ReadOps) / gets
	}
	trad := run(Traditional)
	ro := run(ReadOptimized)
	if trad != 6 { // 1 base + 5 deltas
		t.Fatalf("traditional read amp = %.1f, want 6", trad)
	}
	if ro != 2 { // 1 base + 1 merged delta
		t.Fatalf("read-optimized read amp = %.1f, want 2", ro)
	}
}

// TestWriteBandwidth verifies the Fig. 10 trade-off: the read-optimized
// policy writes more delta bytes (it rewrites the merged history).
func TestWriteBandwidth(t *testing.T) {
	run := func(policy DeltaPolicy) int64 {
		st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
		m := NewMapping(0, false)
		tr, err := New(m, st, Config{Policy: policy, ConsolidateNum: 10, DisableSplit: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 16)); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats().BytesWritten
	}
	trad := run(Traditional)
	ro := run(ReadOptimized)
	if ro <= trad {
		t.Fatalf("read-optimized bytes (%d) should exceed traditional (%d)", ro, trad)
	}
}

func TestConsolidation(t *testing.T) {
	tr, st := newTestTree(t, Config{Policy: ReadOptimized, ConsolidateNum: 5, DisableSplit: true})
	// 1 base write + 5 delta updates + the 6th triggers consolidation.
	for i := 0; i < 7; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Stats().Consolidations; got != 1 {
		t.Fatalf("consolidations = %d, want 1", got)
	}
	leaf := tr.m.get(tr.root)
	if len(leaf.deltaOps) != 0 {
		t.Fatalf("delta ops after consolidation = %d, want 0", len(leaf.deltaOps))
	}
	// All 7 keys remain readable.
	for i := 0; i < 7; i++ {
		if _, ok, _ := tr.Get([]byte(fmt.Sprintf("k%02d", i))); !ok {
			t.Fatalf("key %d lost after consolidation", i)
		}
	}
	// Old base and deltas were invalidated: some extents carry garbage.
	var invalid int
	for _, id := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
		for _, u := range st.Usage(id) {
			invalid += u.InvalidRecords
		}
	}
	if invalid == 0 {
		t.Fatal("consolidation should invalidate superseded records")
	}
}

func TestCacheEviction(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(2, false) // at most 2 resident leaves
	tr, err := New(m, st, Config{MaxPageEntries: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// More leaves than capacity: some must be evicted.
	resident := 0
	m.mu.RLock()
	for _, e := range m.pages {
		if e.isLeaf && e.cached != nil {
			resident++
		}
	}
	m.mu.RUnlock()
	if resident > 2 {
		t.Fatalf("resident leaves = %d, want <= 2", resident)
	}
	// Everything still readable (from storage).
	for i := 0; i < 64; i++ {
		if _, ok, _ := tr.Get([]byte(fmt.Sprintf("k%03d", i))); !ok {
			t.Fatalf("key %d unreadable after eviction", i)
		}
	}
	hits, misses := m.CacheStats()
	if misses == 0 {
		t.Fatalf("expected cache misses, got hits=%d misses=%d", hits, misses)
	}
}

func TestNoCacheEveryReadHitsStorage(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(0, true)
	tr, err := New(m, st, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st.ResetIOStats()
	for i := 0; i < 3; i++ {
		if _, ok, _ := tr.Get([]byte("k")); !ok {
			t.Fatal("key missing")
		}
	}
	if got := st.Stats().ReadOps; got != 3 {
		t.Fatalf("storage reads = %d, want 3 (one per get)", got)
	}
}

func TestConcurrentWriters(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 32})
	var wg sync.WaitGroup
	const workers, per = 8, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := tr.Put(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := tr.Len(); n != workers*per {
		t.Fatalf("len = %d, want %d", n, workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 37 {
			key := []byte(fmt.Sprintf("w%d-k%04d", w, i))
			if _, ok, _ := tr.Get(key); !ok {
				t.Fatalf("missing %s", key)
			}
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 16})
	for i := 0; i < 500; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("base-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("base-%04d", rng.Intn(500)))
				if _, ok, err := tr.Get(k); err != nil || !ok {
					t.Errorf("get %s = %v %v", k, ok, err)
					return
				}
			}
		}(int64(r))
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := tr.Put([]byte(fmt.Sprintf("new-%d-%04d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Wait for writers (the last 4 goroutines) by a separate group trick:
	// simplest is to sleep on a channel after writers complete.
	done := make(chan struct{})
	go func() {
		// writers are wg participants; poll until all new keys are in.
		for {
			n, _ := tr.Len()
			if n >= 500+4*200 {
				close(done)
				return
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()
}

// TestPropertyModelCheck drives the tree and a map reference model with the
// same random operations and compares full contents.
func TestPropertyModelCheck(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := ReadOptimized
		if seed%2 == 0 {
			policy = Traditional
		}
		tr, _ := newTestTree(t, Config{
			Policy: policy, MaxPageEntries: 8, MaxInnerEntries: 4, ConsolidateNum: 3,
		})
		model := map[string]string{}
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(100))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				model[k] = v
			case 2:
				if err := tr.Delete([]byte(k)); err != nil {
					return false
				}
				delete(model, k)
			}
		}
		// Compare via scan.
		got := map[string]string{}
		if err := tr.Scan(nil, nil, 0, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		// Spot-check Gets too.
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, ok, err := tr.Get([]byte(k))
			if err != nil || !ok || string(v) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncFlushCycle(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing persisted yet except inner images from splits.
	if tr.DirtyCount() == 0 {
		t.Fatal("expected dirty pages before flush")
	}
	updates, err := tr.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("flush produced no mapping updates")
	}
	if tr.DirtyCount() != 0 {
		t.Fatalf("dirty pages after flush = %d", tr.DirtyCount())
	}
	for _, up := range updates {
		if up.Base.IsZero() {
			t.Fatalf("page %d flushed without a base location", up.Page)
		}
	}
	// Everything readable; now evict-proof: drop caches and re-read from
	// storage only.
	m.mu.RLock()
	for _, e := range m.pages {
		e.mu.Lock()
		if e.isLeaf && !e.dirty {
			e.cached = nil
		}
		e.mu.Unlock()
	}
	m.mu.RUnlock()
	for i := 0; i < 50; i++ {
		v, ok, err := tr.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("k%03d after flush+evict = %q %v %v", i, v, ok, err)
		}
	}
}

func TestAsyncRequiresCache(t *testing.T) {
	st := storage.Open(nil)
	m := NewMapping(0, true)
	if _, err := New(m, st, Config{FlushMode: FlushAsync, NoCache: true}, nil); err == nil {
		t.Fatal("async + no-cache should be rejected")
	}
}

func TestGCRelocationKeepsTreeReadable(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 512})
	m := NewMapping(0, true) // no cache: reads always hit storage
	tr, err := New(m, st, Config{MaxPageEntries: 8, ConsolidateNum: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%04d", i%50)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Reclaim every sealed extent in both streams.
	for _, sid := range []storage.StreamID{storage.StreamBase, storage.StreamDelta} {
		for _, u := range st.Usage(sid) {
			if u.Sealed {
				if _, err := st.Reclaim(sid, u.Extent, m.Relocate); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// The tree must still be fully readable after mass relocation.
	for i := 0; i < 50; i++ {
		if _, ok, err := tr.Get([]byte(fmt.Sprintf("k%04d", i))); err != nil || !ok {
			t.Fatalf("k%04d unreadable after GC: %v %v", i, ok, err)
		}
	}
}

func TestMemoryUsageGrowsWithTrees(t *testing.T) {
	st := storage.Open(nil)
	m := NewMapping(0, false)
	var trees []*Tree
	for i := 0; i < 10; i++ {
		tr, err := New(m, st, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	base := m.MemoryUsage()
	for _, tr := range trees {
		for i := 0; i < 20; i++ {
			if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := m.MemoryUsage(); after <= base {
		t.Fatalf("memory usage %d -> %d, want growth", base, after)
	}
}

func TestHeightSingleLeaf(t *testing.T) {
	tr, _ := newTestTree(t, Config{})
	if h := tr.Height(); h != 1 {
		t.Fatalf("height = %d, want 1", h)
	}
}

// TestScanReentrantCallback locks in that Scan callbacks may re-enter the
// tree (graph traversals look up vertices while iterating adjacency).
func TestScanReentrantCallback(t *testing.T) {
	tr, _ := newTestTree(t, Config{MaxPageEntries: 8})
	for i := 0; i < 50; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	err := tr.Scan(nil, nil, 0, func(k, v []byte) bool {
		// Re-enter with a Get on an arbitrary key, including keys on the
		// same leaf currently being scanned.
		if _, ok, err := tr.Get([]byte("k000")); err != nil || !ok {
			t.Errorf("re-entrant get failed: %v %v", ok, err)
			return false
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("scanned %d entries, want 50", n)
	}
}

// TestConcurrentFlushersAndWriters hammers FlushDirty from several
// goroutines while writers run — the background flusher, manual
// checkpoints and snapshots all overlap in production.
func TestConcurrentFlushersAndWriters(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for f := 0; f < 3; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := tr.FlushDirty(); err != nil {
						t.Error(err)
						return
					}
					_ = tr.DirtyCount()
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if err := tr.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Wait for writers (the last 4 added), then stop flushers.
	done := make(chan struct{})
	go func() {
		for {
			if n, _ := tr.Len(); n >= 4*400 {
				close(done)
				return
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 1600 {
		t.Fatalf("len = %d", n)
	}
}

// TestCacheEvictionFullyPinned verifies the eviction sweep terminates and
// stays safe when the cache holds more pinned (dirty) pages than its
// capacity allows — a fully dirty async-mode cache must not spin or evict
// unflushed content.
func TestCacheEvictionFullyPinned(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(2, false) // capacity far below the dirty page count
	tr, err := New(m, st, Config{FlushMode: FlushAsync, MaxPageEntries: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // many dirty pages, none flushable
		if err := tr.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// All data must still be readable (dirty content was never evicted).
	for i := 0; i < 64; i++ {
		if _, ok, err := tr.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil || !ok {
			t.Fatalf("k%03d = %v %v", i, ok, err)
		}
	}
	// After a flush, eviction can finally make progress.
	if _, err := tr.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("post"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != 65 {
		t.Fatalf("len = %d", n)
	}
}

func TestPutExDeleteExExistence(t *testing.T) {
	configs := map[string]Config{
		"read-optimized":  {Policy: ReadOptimized},
		"traditional":     {Policy: Traditional},
		"no-cache":        {Policy: ReadOptimized, NoCache: true},
		"tiny-cache":      {Policy: Traditional, CacheCapacity: 1},
		"low-consolidate": {Policy: Traditional, ConsolidateNum: 2},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			tr, _ := newTestTree(t, cfg)
			if existed, err := tr.PutEx([]byte("k"), []byte("v1")); err != nil || existed {
				t.Fatalf("first put: existed=%v err=%v, want false nil", existed, err)
			}
			if existed, err := tr.PutEx([]byte("k"), []byte("v2")); err != nil || !existed {
				t.Fatalf("upsert: existed=%v err=%v, want true nil", existed, err)
			}
			if existed, err := tr.DeleteEx([]byte("k")); err != nil || !existed {
				t.Fatalf("delete present: existed=%v err=%v, want true nil", existed, err)
			}
			if existed, err := tr.DeleteEx([]byte("k")); err != nil || existed {
				t.Fatalf("delete absent: existed=%v err=%v, want false nil", existed, err)
			}
			if existed, err := tr.PutEx([]byte("k"), []byte("v3")); err != nil || existed {
				t.Fatalf("re-insert after delete: existed=%v err=%v, want false nil", existed, err)
			}
			v, ok, err := tr.Get([]byte("k"))
			if err != nil || !ok || string(v) != "v3" {
				t.Fatalf("get = %q %v %v", v, ok, err)
			}
		})
	}
}

func TestPutExManyKeysAcrossConsolidations(t *testing.T) {
	// Drive the page through delta appends and consolidations; existence
	// answers must stay correct in every state of the chain.
	tr, _ := newTestTree(t, Config{Policy: Traditional, ConsolidateNum: 3, NoCache: true})
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("k%02d", i%10))
		wantExisted := i >= 10
		existed, err := tr.PutEx(key, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if existed != wantExisted {
			t.Fatalf("op %d: existed=%v, want %v", i, existed, wantExisted)
		}
	}
	if n, _ := tr.Len(); n != 10 {
		t.Fatalf("len = %d, want 10", n)
	}
}

func TestReadFanoutHistogram(t *testing.T) {
	st := storage.Open(&storage.Options{ExtentSize: 1 << 16})
	m := NewMapping(0, true) // no cache: every Get pays the durable fan-out
	tr, err := New(m, st, Config{Policy: ReadOptimized}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, _, err := tr.Get([]byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f := m.ReadFanout()
	if f.Count() != 20 {
		t.Fatalf("fanout observations = %d, want 20", f.Count())
	}
	// Read-optimized policy: at most base + one merged delta = 2 reads.
	if mx := f.Max(); mx < 1 || mx > 2 {
		t.Fatalf("read-optimized fanout max = %d, want 1..2", mx)
	}

	// With the cache enabled, hits must observe zero fan-out.
	m2 := NewMapping(0, false)
	tr2, err := New(m2, st, Config{Policy: ReadOptimized}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Put([]byte("a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr2.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if p50 := m2.ReadFanout().Quantile(0.5); p50 != 0 {
		t.Fatalf("cached fanout p50 = %d, want 0", p50)
	}
}
