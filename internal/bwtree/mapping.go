package bwtree

import (
	"container/list"
	"sync"
	"sync/atomic"

	"bg3/internal/metrics"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// PageID identifies a logical page across all trees sharing one mapping
// table. 0 is never assigned.
type PageID uint64

// TreeID identifies a Bw-tree within a forest. 0 is never assigned.
type TreeID uint64

// innerNode is the always-resident content of an inner (index) page:
// children[i] routes keys in [keys[i-1], keys[i]).
type innerNode struct {
	keys     [][]byte
	children []PageID
	loc      storage.Loc // durable image in the base stream
}

// pageEntry is one slot of the Bw-tree mapping table. The per-entry mutex
// is the paper's "classic lightweight locking mechanism": writers latch the
// page for the duration of the update; concurrent writers to the same page
// serialize here, which is exactly the write-conflict phenomenon the
// Bw-tree forest (§3.2.1) is designed to dilute.
type pageEntry struct {
	mu   sync.Mutex
	id   PageID
	tree *Tree

	isLeaf bool
	inner  *innerNode // inner pages only

	// Durable state (leaf pages).
	baseLoc   storage.Loc
	deltaLocs []storage.Loc // oldest first
	deltaOps  []op          // ops carried by the durable deltas, oldest first

	// Volatile state (leaf pages).
	cached       []kv // fully applied content; nil when evicted
	pending      []op // applied in memory, not yet durable (async mode)
	dirty        bool // has non-durable changes (async mode)
	splitPending bool // the page split in memory; next flush must rewrite its base

	lo, hi []byte // key range covered: [lo, hi), hi == nil means +inf
	next   PageID // right sibling, 0 at the rightmost leaf

	lsn wal.LSN // LSN of the newest update applied to this page
}

// Mapping is the shared mapping table: PageID -> page entry. A forest of
// trees shares a single Mapping (and its page cache), mirroring BG3 where
// the mapping table is a node-wide structure.
type Mapping struct {
	mu    sync.RWMutex
	pages map[PageID]*pageEntry

	nextPage atomic.Uint64
	nextTree atomic.Uint64

	// Leaf-content cache (LRU). Guarded by cacheMu. Entries hold their
	// content in pageEntry.cached; the LRU only tracks recency.
	cacheMu  sync.Mutex
	lru      *list.List               // front = most recent
	lruIndex map[PageID]*list.Element // page -> element
	capacity int                      // 0 = unlimited
	disabled bool

	hits   atomic.Int64
	misses atomic.Int64

	// fanout records the storage reads each Get paid to materialize its
	// leaf — Fig. 9's per-read I/O: 0 on a cache hit, 1 + chain length on
	// a miss (at most 2 under the read-optimized delta policy).
	fanout metrics.IntHistogram

	// relocated tracks pages whose durable locations GC moved since the
	// last TakeRelocated call; checkpoints ship them to replicas.
	relocMu   sync.Mutex
	relocated map[PageID]struct{}
}

// NewMapping returns an empty mapping table. capacity bounds the number of
// leaf pages with resident content (0 = unlimited); disabled turns the
// cache off entirely.
func NewMapping(capacity int, disabled bool) *Mapping {
	return &Mapping{
		pages:     make(map[PageID]*pageEntry),
		lru:       list.New(),
		lruIndex:  make(map[PageID]*list.Element),
		capacity:  capacity,
		disabled:  disabled,
		relocated: make(map[PageID]struct{}),
	}
}

// allocPageID reserves a fresh page ID.
func (m *Mapping) allocPageID() PageID {
	return PageID(m.nextPage.Add(1))
}

// allocTreeID reserves a fresh tree ID.
func (m *Mapping) allocTreeID() TreeID {
	return TreeID(m.nextTree.Add(1))
}

func (m *Mapping) register(e *pageEntry) {
	m.mu.Lock()
	m.pages[e.id] = e
	m.mu.Unlock()
}

func (m *Mapping) get(id PageID) *pageEntry {
	m.mu.RLock()
	e := m.pages[id]
	m.mu.RUnlock()
	return e
}

func (m *Mapping) remove(id PageID) {
	m.mu.Lock()
	delete(m.pages, id)
	m.mu.Unlock()
	m.cacheMu.Lock()
	if el, ok := m.lruIndex[id]; ok {
		m.lru.Remove(el)
		delete(m.lruIndex, id)
	}
	m.cacheMu.Unlock()
}

// PageCount returns the number of registered pages.
func (m *Mapping) PageCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// CacheStats returns cache hit and miss counts.
func (m *Mapping) CacheStats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// ReadFanout returns the per-Get storage read fan-out histogram.
func (m *Mapping) ReadFanout() *metrics.IntHistogram { return &m.fanout }

// RegisterMetrics exposes the mapping table's cache and fan-out accounting
// under the "bwtree." prefix.
func (m *Mapping) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("bwtree.cache_hits", m.hits.Load)
	r.CounterFunc("bwtree.cache_misses", m.misses.Load)
	r.RatioFunc("bwtree.cache_hit_ratio", func() float64 {
		h, ms := m.CacheStats()
		if h+ms == 0 {
			return 0
		}
		return float64(h) / float64(h+ms)
	})
	r.RegisterIntHistogram("bwtree.read_fanout", &m.fanout)
	r.GaugeFunc("bwtree.pages", func() int64 { return int64(m.PageCount()) })
	r.GaugeFunc("bwtree.memory_bytes", m.MemoryUsage)
}

// noteCached records that e's content is resident and evicts LRU victims
// beyond capacity. Caller must NOT hold e.mu of potential victims — we
// only evict entries whose latch we can take without blocking, skipping
// busy or dirty pages.
func (m *Mapping) noteCached(e *pageEntry) {
	if m.disabled {
		e.cached = nil // caller materialized transiently; drop content
		return
	}
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	if el, ok := m.lruIndex[e.id]; ok {
		m.lru.MoveToFront(el)
	} else {
		m.lruIndex[e.id] = m.lru.PushFront(e)
	}
	if m.capacity <= 0 {
		return
	}
	// Bounded sweep: pinned (dirty or latch-busy) victims re-enter the
	// front, so without a bound a fully pinned cache would spin here.
	for attempts := m.lru.Len(); m.lru.Len() > m.capacity && attempts > 0; attempts-- {
		el := m.lru.Back()
		if el == nil {
			break
		}
		victim := el.Value.(*pageEntry)
		m.lru.Remove(el)
		delete(m.lruIndex, victim.id)
		if victim == e {
			continue // never evict the page we just touched
		}
		if victim.mu.TryLock() {
			if !victim.dirty {
				victim.cached = nil
			} else {
				// Dirty pages are pinned; re-insert at the front so they
				// are not immediately re-considered.
				m.lruIndex[victim.id] = m.lru.PushFront(victim)
			}
			victim.mu.Unlock()
		} else {
			// The victim's latch is busy (a writer holds it): keep it
			// tracked at the front — dropping it here would leave its
			// content resident but invisible to future eviction.
			m.lruIndex[victim.id] = m.lru.PushFront(victim)
		}
	}
}

// touch moves a page to the LRU front on access.
func (m *Mapping) touch(e *pageEntry) {
	if m.disabled || m.capacity <= 0 {
		return
	}
	m.cacheMu.Lock()
	if el, ok := m.lruIndex[e.id]; ok {
		m.lru.MoveToFront(el)
	}
	m.cacheMu.Unlock()
}

// Relocate is the storage.RelocateFunc for GC: it repoints the durable
// location tag -> old to new in the owning page entry. It returns false if
// the page no longer references old (the record went stale mid-move).
// Relocated leaf pages are remembered for TakeRelocated.
func (m *Mapping) Relocate(tag uint64, old, new storage.Loc) bool {
	e := m.get(PageID(tag))
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.isLeaf {
		moved := false
		if e.baseLoc == old {
			e.baseLoc = new
			moved = true
		} else {
			for i, l := range e.deltaLocs {
				if l == old {
					e.deltaLocs[i] = new
					moved = true
					break
				}
			}
		}
		if moved {
			m.relocMu.Lock()
			m.relocated[e.id] = struct{}{}
			m.relocMu.Unlock()
		}
		return moved
	}
	if e.inner != nil && e.inner.loc == old {
		e.inner.loc = new
		return true
	}
	return false
}

// TakeRelocated drains the set of pages GC has moved since the last call
// and returns their current durable locations — the RW node folds them
// into its next checkpoint so replicas repoint before the condemned
// extents are released.
func (m *Mapping) TakeRelocated() []MappingUpdate {
	m.relocMu.Lock()
	ids := make([]PageID, 0, len(m.relocated))
	for id := range m.relocated {
		ids = append(ids, id)
	}
	m.relocated = make(map[PageID]struct{})
	m.relocMu.Unlock()

	out := make([]MappingUpdate, 0, len(ids))
	for _, id := range ids {
		e := m.get(id)
		if e == nil || !e.isLeaf {
			continue
		}
		e.mu.Lock()
		up := MappingUpdate{
			Page: e.id, Base: e.baseLoc,
			Deltas: append([]storage.Loc(nil), e.deltaLocs...),
		}
		if e.tree != nil {
			up.Tree = e.tree.id
		}
		e.mu.Unlock()
		out = append(out, up)
	}
	return out
}

// MemoryUsage estimates the resident bytes of the mapping table and all
// cached page content — the space measurement of the Fig. 11 experiment.
func (m *Mapping) MemoryUsage() int64 {
	const entryOverhead = 160 // struct, map slot, latch
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, e := range m.pages {
		total += entryOverhead
		e.mu.Lock()
		for _, p := range e.cached {
			total += int64(len(p.key) + len(p.val) + 32)
		}
		for _, o := range e.deltaOps {
			total += int64(len(o.key) + len(o.val) + 33)
		}
		for _, o := range e.pending {
			total += int64(len(o.key) + len(o.val) + 33)
		}
		total += int64(len(e.lo) + len(e.hi) + 16*len(e.deltaLocs))
		if e.inner != nil {
			total += int64(8 * len(e.inner.children))
			for _, k := range e.inner.keys {
				total += int64(len(k) + 24)
			}
		}
		e.mu.Unlock()
	}
	return total
}
