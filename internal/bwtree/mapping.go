package bwtree

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"

	"bg3/internal/metrics"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// PageID identifies a logical page across all trees sharing one mapping
// table. 0 is never assigned.
type PageID uint64

// TreeID identifies a Bw-tree within a forest. 0 is never assigned.
type TreeID uint64

// innerNode is the always-resident content of an inner (index) page:
// children[i] routes keys in [keys[i-1], keys[i]).
type innerNode struct {
	keys     [][]byte
	children []PageID
	loc      storage.Loc // durable image in the base stream
}

// pageEntry is one slot of the Bw-tree mapping table. The per-entry mutex
// is the paper's "classic lightweight locking mechanism": writers latch the
// page for the duration of the update; concurrent writers to the same page
// serialize here, which is exactly the write-conflict phenomenon the
// Bw-tree forest (§3.2.1) is designed to dilute.
type pageEntry struct {
	mu   sync.Mutex
	id   PageID
	tree *Tree

	isLeaf bool
	inner  *innerNode // inner pages only

	// Durable state (leaf pages).
	baseLoc   storage.Loc
	deltaLocs []storage.Loc // oldest first
	deltaOps  []op          // ops carried by the durable deltas, oldest first

	// Volatile state (leaf pages).
	cached       []kv // fully applied content; nil when evicted
	pending      []op // applied in memory, not yet durable (async mode)
	dirty        bool // has non-durable changes (async mode)
	splitPending bool // the page split in memory; next flush must rewrite its base
	prefetched   bool // content was installed by scan read-ahead, not a demand miss

	// stable is the page's content at its last base fold point — the image
	// snapshot reads rebuild old views from by replaying only history ops
	// at or below their horizon. When nil it is lazily re-derived by
	// decoding baseLoc (the two are equivalent by construction: every base
	// rewrite installs the folded content here). The one exception is the
	// right half of an in-memory split, whose baseLoc is still zero: its
	// stable is seeded from the parent's and pinned in memory by the dirty
	// flag until the first flush writes a real base.
	stable []kv

	lo, hi []byte // key range covered: [lo, hi), hi == nil means +inf
	next   PageID // right sibling, 0 at the rightmost leaf

	lsn wal.LSN // LSN of the newest update applied to this page
}

// flight is one in-progress cold-page load shared by every reader that
// misses on the same page while it runs (miss coalescing). The loc fields
// snapshot the page's durable state at flight creation; members validate
// their page against that snapshot before installing the result, so a
// flight whose page changed mid-load (writer appended a delta, GC
// relocated a record) is simply discarded and retried.
type flight struct {
	done   chan struct{}
	base   storage.Loc
	deltas []storage.Loc

	// Results, valid once done is closed.
	entries []kv
	reads   int
	err     error
}

// cacheShard is one lock stripe of the leaf-content cache. Hashing pages
// across shards replaces the old global cacheMu: cache touches on different
// shards never contend, and each shard evicts independently against its
// slice of the total capacity.
type cacheShard struct {
	mu       sync.Mutex
	lru      *list.List               // front = most recent
	lruIndex map[PageID]*list.Element // page -> element
	capacity int                      // per-shard slice of the budget; 0 = unlimited

	// In-progress cold loads for pages hashing to this shard, keyed by
	// page. Striped together with the LRU so coalescing adds no global lock.
	flights map[PageID]*flight
}

// Mapping is the shared mapping table: PageID -> page entry. A forest of
// trees shares a single Mapping (and its page cache), mirroring BG3 where
// the mapping table is a node-wide structure.
type Mapping struct {
	mu    sync.RWMutex
	pages map[PageID]*pageEntry

	nextPage atomic.Uint64
	nextTree atomic.Uint64

	// Leaf-content cache, lock-striped by page ID. Entries hold their
	// content in pageEntry.cached; the shards only track recency and
	// in-flight loads.
	shards    []*cacheShard
	shardMask uint64
	disabled  bool

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64 // misses that piggybacked on another reader's flight
	evictions atomic.Int64

	readaheadIssued   atomic.Int64
	readaheadHits     atomic.Int64
	readaheadRejected atomic.Int64 // launches dropped by the per-tree in-flight cap
	scanRestarts      atomic.Int64 // scans re-routed after an unmapped right sibling

	// fanout records the storage reads each Get paid to materialize its
	// leaf — Fig. 9's per-read I/O: 0 on a cache hit, 1 + chain length on
	// a miss (at most 2 under the read-optimized delta policy).
	fanout metrics.IntHistogram

	// materializeLat records the wall time of every Get/Scan-path cache
	// miss, flight waits included — the latency a reader actually paid for
	// a cold page.
	materializeLat metrics.Histogram

	// relocated tracks pages whose durable locations GC moved since the
	// last TakeRelocated call; checkpoints ship them to replicas.
	relocMu   sync.Mutex
	relocated map[PageID]struct{}

	// Edge-block accounting (block.go): live part locations by tag (GC
	// pins their extents and relocation repoints them) plus the block_*
	// counters and gauges of the registry.
	blockPartMu    sync.Mutex
	blockParts     map[uint64]storage.Loc
	blockBuilds    atomic.Int64
	blockSkips     atomic.Int64 // builds skipped: pins held the floor too low
	blockHits      atomic.Int64
	blockFallbacks atomic.Int64
	blockEntries   atomic.Int64 // live packed entries across all blocks
	blockBytes     atomic.Int64 // live encoded bytes across all blocks
	blockPartCount atomic.Int64 // live durable parts across all blocks
}

// defaultShardCount derives the lock-stripe count from the host's
// parallelism: the next power of two at or above 2×GOMAXPROCS, clamped to
// [2, 64]. Twice the core count keeps collision probability low when every
// core runs a reader; the power-of-two lets shard selection mask instead of
// divide.
func defaultShardCount() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewMapping returns an empty mapping table with the shard count derived
// from GOMAXPROCS. capacity bounds the number of leaf pages with resident
// content (0 = unlimited); disabled turns the cache off entirely.
func NewMapping(capacity int, disabled bool) *Mapping {
	return NewMappingShards(capacity, disabled, 0)
}

// NewMappingShards is NewMapping with an explicit cache shard count.
// shards is rounded up to a power of two; <= 0 selects the GOMAXPROCS
// heuristic. The capacity budget is split evenly across shards.
func NewMappingShards(capacity int, disabled bool, shards int) *Mapping {
	if shards <= 0 {
		shards = defaultShardCount()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	// A shard needs a capacity slice of at least 2: page splits note both
	// halves while the left one is latched, and a single-slot shard has no
	// headroom to absorb that without overflowing its budget. Tiny caches
	// therefore collapse to fewer shards (capacity 2 = one shard = the
	// classic single LRU).
	for capacity > 0 && n > 1 && capacity/n < 2 {
		n >>= 1
	}
	m := &Mapping{
		pages:     make(map[PageID]*pageEntry),
		shards:    make([]*cacheShard, n),
		shardMask: uint64(n - 1),
		disabled:  disabled,
		relocated: make(map[PageID]struct{}),
	}
	perShard := 0
	if capacity > 0 {
		perShard = (capacity + n - 1) / n
	}
	for i := range m.shards {
		m.shards[i] = &cacheShard{
			lru:      list.New(),
			lruIndex: make(map[PageID]*list.Element),
			capacity: perShard,
			flights:  make(map[PageID]*flight),
		}
	}
	return m
}

// shard selects the stripe for a page. The Fibonacci multiplier spreads the
// sequential IDs the allocator hands out; the high bits feed the mask
// because the low bits of the product mix poorly.
func (m *Mapping) shard(id PageID) *cacheShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return m.shards[(h>>32)&m.shardMask]
}

// ShardCount returns the number of cache lock stripes.
func (m *Mapping) ShardCount() int { return len(m.shards) }

// allocPageID reserves a fresh page ID.
func (m *Mapping) allocPageID() PageID {
	return PageID(m.nextPage.Add(1))
}

// allocTreeID reserves a fresh tree ID.
func (m *Mapping) allocTreeID() TreeID {
	return TreeID(m.nextTree.Add(1))
}

func (m *Mapping) register(e *pageEntry) {
	m.mu.Lock()
	m.pages[e.id] = e
	m.mu.Unlock()
}

func (m *Mapping) get(id PageID) *pageEntry {
	m.mu.RLock()
	e := m.pages[id]
	m.mu.RUnlock()
	return e
}

func (m *Mapping) remove(id PageID) {
	m.mu.Lock()
	delete(m.pages, id)
	m.mu.Unlock()
	s := m.shard(id)
	s.mu.Lock()
	if el, ok := s.lruIndex[id]; ok {
		s.lru.Remove(el)
		delete(s.lruIndex, id)
	}
	s.mu.Unlock()
	// Drop any pending relocation note: shipping a relocation record for a
	// page that no longer exists would have checkpoints advertise dangling
	// locations to replicas.
	m.relocMu.Lock()
	delete(m.relocated, id)
	m.relocMu.Unlock()
}

// joinFlight returns the in-progress load for page id, creating one from
// the given durable-state snapshot if none exists. leader is true for the
// creator, who must perform the load and call finishFlight; everyone else
// waits on f.done.
func (m *Mapping) joinFlight(id PageID, base storage.Loc, deltas []storage.Loc) (f *flight, leader bool) {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[id]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{}), base: base, deltas: deltas}
	s.flights[id] = f
	return f, true
}

// finishFlight publishes the flight's results: it is unlinked first so a
// reader missing after this point starts a fresh load rather than adopting
// a result that may already be stale.
func (m *Mapping) finishFlight(id PageID, f *flight) {
	s := m.shard(id)
	s.mu.Lock()
	delete(s.flights, id)
	s.mu.Unlock()
	close(f.done)
}

// PageCount returns the number of registered pages.
func (m *Mapping) PageCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// CacheStats returns cache hit and miss counts.
func (m *Mapping) CacheStats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}

// CoalescedMisses returns how many cache misses were served by another
// reader's in-flight load instead of their own storage reads.
func (m *Mapping) CoalescedMisses() int64 { return m.coalesced.Load() }

// ReadaheadStats returns how many scan read-ahead loads were issued and how
// many scans subsequently arrived at a leaf the read-ahead had populated.
func (m *Mapping) ReadaheadStats() (issued, hits int64) {
	return m.readaheadIssued.Load(), m.readaheadHits.Load()
}

// ReadaheadRejected returns how many read-ahead launches were dropped
// because the owning tree already had its full quota of prefetchers in
// flight.
func (m *Mapping) ReadaheadRejected() int64 { return m.readaheadRejected.Load() }

// ScanRestarts returns how many times a scan re-routed from its cursor
// after finding its right sibling unmapped mid-scan.
func (m *Mapping) ScanRestarts() int64 { return m.scanRestarts.Load() }

// Evictions returns how many cached pages the LRU sweeps have dropped.
func (m *Mapping) Evictions() int64 { return m.evictions.Load() }

// ReadFanout returns the per-Get storage read fan-out histogram.
func (m *Mapping) ReadFanout() *metrics.IntHistogram { return &m.fanout }

// MaterializeLatency returns the cache-miss materialization latency
// histogram.
func (m *Mapping) MaterializeLatency() *metrics.Histogram { return &m.materializeLat }

// shardEntrySpread returns the smallest and largest resident-entry counts
// across shards — a live view of how evenly the hash spreads the working
// set.
func (m *Mapping) shardEntrySpread() (min, max int64) {
	for i, s := range m.shards {
		s.mu.Lock()
		n := int64(s.lru.Len())
		s.mu.Unlock()
		if i == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

// RegisterMetrics exposes the mapping table's cache and fan-out accounting
// under the "bwtree." prefix.
func (m *Mapping) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("bwtree.cache_hits", m.hits.Load)
	r.CounterFunc("bwtree.cache_misses", m.misses.Load)
	r.CounterFunc("bwtree.cache_coalesced_misses", m.coalesced.Load)
	r.CounterFunc("bwtree.cache_evictions", m.evictions.Load)
	r.RatioFunc("bwtree.cache_hit_ratio", func() float64 {
		h, ms := m.CacheStats()
		if h+ms == 0 {
			return 0
		}
		return float64(h) / float64(h+ms)
	})
	r.GaugeFunc("bwtree.cache_shard_count", func() int64 { return int64(len(m.shards)) })
	r.GaugeFunc("bwtree.cache_shard_entries_min", func() int64 { min, _ := m.shardEntrySpread(); return min })
	r.GaugeFunc("bwtree.cache_shard_entries_max", func() int64 { _, max := m.shardEntrySpread(); return max })
	r.CounterFunc("bwtree.readahead_issued", m.readaheadIssued.Load)
	r.CounterFunc("bwtree.readahead_hits", m.readaheadHits.Load)
	r.CounterFunc("bwtree.readahead_rejected", m.readaheadRejected.Load)
	r.CounterFunc("bwtree.scan_restarts", m.scanRestarts.Load)
	r.RegisterIntHistogram("bwtree.read_fanout", &m.fanout)
	r.RegisterHistogram("bwtree.materialize_us", &m.materializeLat)
	r.GaugeFunc("bwtree.pages", func() int64 { return int64(m.PageCount()) })
	r.GaugeFunc("bwtree.memory_bytes", m.MemoryUsage)
	r.CounterFunc("bwtree.block_builds", m.blockBuilds.Load)
	r.CounterFunc("bwtree.block_build_skipped_pins", m.blockSkips.Load)
	r.CounterFunc("bwtree.block_hits", m.blockHits.Load)
	r.CounterFunc("bwtree.block_fallbacks", m.blockFallbacks.Load)
	r.GaugeFunc("bwtree.block_entries", m.blockEntries.Load)
	r.GaugeFunc("bwtree.block_bytes", m.blockBytes.Load)
	r.GaugeFunc("bwtree.block_parts", m.blockPartCount.Load)
}

// registerBlockParts records the durable locations of a freshly built
// edge block so GC pins their extents and relocation can repoint them.
func (m *Mapping) registerBlockParts(tags []uint64, locs []storage.Loc) {
	m.blockPartMu.Lock()
	defer m.blockPartMu.Unlock()
	if m.blockParts == nil {
		m.blockParts = make(map[uint64]storage.Loc)
	}
	for i, tag := range tags {
		m.blockParts[tag] = locs[i]
	}
}

// dropBlockParts unregisters a superseded block's parts and returns their
// current locations for invalidation.
func (m *Mapping) dropBlockParts(tags []uint64) []storage.Loc {
	m.blockPartMu.Lock()
	defer m.blockPartMu.Unlock()
	locs := make([]storage.Loc, 0, len(tags))
	for _, tag := range tags {
		if loc, ok := m.blockParts[tag]; ok {
			locs = append(locs, loc)
			delete(m.blockParts, tag)
		}
	}
	return locs
}

// BlockExtents returns the extents of one stream currently backing live
// edge blocks. gc.Reclaimer treats them as pinned until superseded:
// blocks are immutable, so moving their records buys nothing, and the
// parts are invalidated wholesale on rebuild anyway.
func (m *Mapping) BlockExtents(stream storage.StreamID) map[storage.ExtentID]struct{} {
	m.blockPartMu.Lock()
	defer m.blockPartMu.Unlock()
	if len(m.blockParts) == 0 {
		return nil
	}
	out := make(map[storage.ExtentID]struct{})
	for _, loc := range m.blockParts {
		if loc.Stream == stream {
			out[loc.Extent] = struct{}{}
		}
	}
	return out
}

func (m *Mapping) noteBlockBuilt(entries int, bytes int64, parts int) {
	m.blockBuilds.Add(1)
	m.blockEntries.Add(int64(entries))
	m.blockBytes.Add(bytes)
	m.blockPartCount.Add(int64(parts))
}

func (m *Mapping) noteBlockDropped(entries int, bytes int64, parts int) {
	m.blockEntries.Add(-int64(entries))
	m.blockBytes.Add(-bytes)
	m.blockPartCount.Add(-int64(parts))
}

// BlockStats is a snapshot of the edge-block counters shared by all trees
// of the mapping.
type BlockStats struct {
	Builds      int64 // blocks built or rebuilt
	SkippedPins int64 // builds skipped because pins held the floor too low
	Hits        int64 // scans served from a packed block
	Fallbacks   int64 // block-backed scans that fell back to the merged path
	Entries     int64 // live packed entries
	Bytes       int64 // live encoded bytes
	Parts       int64 // live durable parts
}

// BlockStatsSnapshot returns the current edge-block counters.
func (m *Mapping) BlockStatsSnapshot() BlockStats {
	return BlockStats{
		Builds:      m.blockBuilds.Load(),
		SkippedPins: m.blockSkips.Load(),
		Hits:        m.blockHits.Load(),
		Fallbacks:   m.blockFallbacks.Load(),
		Entries:     m.blockEntries.Load(),
		Bytes:       m.blockBytes.Load(),
		Parts:       m.blockPartCount.Load(),
	}
}

// noteCached records that e's content is resident and evicts LRU victims
// beyond the shard's capacity. Caller must NOT hold e.mu of potential
// victims — we only evict entries whose latch we can take without blocking,
// skipping busy or dirty pages.
func (m *Mapping) noteCached(e *pageEntry) {
	if m.disabled {
		e.cached = nil // caller materialized transiently; drop content
		return
	}
	s := m.shard(e.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.lruIndex[e.id]; ok {
		s.lru.MoveToFront(el)
	} else {
		s.lruIndex[e.id] = s.lru.PushFront(e)
	}
	if s.capacity <= 0 {
		return
	}
	// Bounded sweep: pinned (dirty or latch-busy) victims re-enter the
	// front, so without a bound a fully pinned shard would spin here.
	for attempts := s.lru.Len(); s.lru.Len() > s.capacity && attempts > 0; attempts-- {
		el := s.lru.Back()
		if el == nil {
			break
		}
		victim := el.Value.(*pageEntry)
		s.lru.Remove(el)
		delete(s.lruIndex, victim.id)
		if victim == e {
			// Never evict the page we just touched — but keep it tracked,
			// or its content would stay resident yet invisible to every
			// future sweep.
			s.lruIndex[victim.id] = s.lru.PushFront(victim)
			continue
		}
		if victim.mu.TryLock() {
			if !victim.dirty {
				victim.cached = nil
				victim.prefetched = false
				// A clean page's stable image is re-derivable from its
				// base location, so eviction may drop it too. (Dirty
				// pages — including unflushed split halves whose stable
				// is not yet durable — are never evicted.)
				victim.stable = nil
				m.evictions.Add(1)
			} else {
				// Dirty pages are pinned; re-insert at the front so they
				// are not immediately re-considered.
				s.lruIndex[victim.id] = s.lru.PushFront(victim)
			}
			victim.mu.Unlock()
		} else {
			// The victim's latch is busy (a writer holds it): keep it
			// tracked at the front — dropping it here would leave its
			// content resident but invisible to future eviction.
			s.lruIndex[victim.id] = s.lru.PushFront(victim)
		}
	}
}

// touch moves a page to its shard's LRU front on access.
func (m *Mapping) touch(e *pageEntry) {
	if m.disabled {
		return
	}
	s := m.shard(e.id)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	if el, ok := s.lruIndex[e.id]; ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
}

// Relocate is the storage.RelocateFunc for GC: it repoints the durable
// location tag -> old to new in the owning page entry. It returns false if
// the page no longer references old (the record went stale mid-move).
// Relocated leaf pages are remembered for TakeRelocated.
func (m *Mapping) Relocate(tag uint64, old, new storage.Loc) bool {
	// Edge-block parts share the page-ID tag space but live in their own
	// registry; repoint them here so a manual Reclaim of a block extent
	// stays safe even though GC normally pins those extents.
	m.blockPartMu.Lock()
	if cur, ok := m.blockParts[tag]; ok {
		moved := cur == old
		if moved {
			m.blockParts[tag] = new
		}
		m.blockPartMu.Unlock()
		return moved
	}
	m.blockPartMu.Unlock()
	e := m.get(PageID(tag))
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.isLeaf {
		moved := false
		if e.baseLoc == old {
			e.baseLoc = new
			moved = true
		} else {
			for i, l := range e.deltaLocs {
				if l == old {
					e.deltaLocs[i] = new
					moved = true
					break
				}
			}
		}
		if moved {
			m.relocMu.Lock()
			m.relocated[e.id] = struct{}{}
			m.relocMu.Unlock()
		}
		return moved
	}
	if e.inner != nil && e.inner.loc == old {
		e.inner.loc = new
		return true
	}
	return false
}

// TakeRelocated drains the set of pages GC has moved since the last call
// and returns their current durable locations — the RW node folds them
// into its next checkpoint so replicas repoint before the condemned
// extents are released.
func (m *Mapping) TakeRelocated() []MappingUpdate {
	m.relocMu.Lock()
	ids := make([]PageID, 0, len(m.relocated))
	for id := range m.relocated {
		ids = append(ids, id)
	}
	m.relocated = make(map[PageID]struct{})
	m.relocMu.Unlock()

	out := make([]MappingUpdate, 0, len(ids))
	for _, id := range ids {
		e := m.get(id)
		if e == nil || !e.isLeaf {
			continue
		}
		e.mu.Lock()
		up := MappingUpdate{
			Page: e.id, Base: e.baseLoc,
			Deltas: append([]storage.Loc(nil), e.deltaLocs...),
		}
		if e.tree != nil {
			up.Tree = e.tree.id
		}
		e.mu.Unlock()
		out = append(out, up)
	}
	return out
}

// RetainedBytes sums the bytes of history ops stamped above h — the delta
// memory the retention floor is holding back from consolidation for the
// benefit of pinned snapshots. O(pages); intended for metrics snapshots.
func (m *Mapping) RetainedBytes(h wal.LSN) int64 {
	// Snapshot the page list before taking any page latch: a splitter
	// holds its page latch while registering the new sibling (which needs
	// m.mu), so holding m.mu across e.mu here would deadlock against it.
	m.mu.RLock()
	pages := make([]*pageEntry, 0, len(m.pages))
	for _, e := range m.pages {
		if e.isLeaf {
			pages = append(pages, e)
		}
	}
	m.mu.RUnlock()
	var total int64
	for _, e := range pages {
		e.mu.Lock()
		for _, o := range e.deltaOps {
			if o.lsn > h {
				total += int64(len(o.key) + len(o.val) + 33)
			}
		}
		for _, o := range e.pending {
			if o.lsn > h {
				total += int64(len(o.key) + len(o.val) + 33)
			}
		}
		e.mu.Unlock()
	}
	return total
}

// MemoryUsage estimates the resident bytes of the mapping table and all
// cached page content — the space measurement of the Fig. 11 experiment.
func (m *Mapping) MemoryUsage() int64 {
	const entryOverhead = 160 // struct, map slot, latch
	// Same lock-order discipline as RetainedBytes: never hold m.mu across
	// a page latch, or a splitter (page latch held, registering its new
	// sibling under m.mu) deadlocks against this walk.
	m.mu.RLock()
	pages := make([]*pageEntry, 0, len(m.pages))
	for _, e := range m.pages {
		pages = append(pages, e)
	}
	m.mu.RUnlock()
	var total int64
	for _, e := range pages {
		total += entryOverhead
		e.mu.Lock()
		for _, p := range e.cached {
			total += int64(len(p.key) + len(p.val) + 32)
		}
		for _, o := range e.deltaOps {
			total += int64(len(o.key) + len(o.val) + 33)
		}
		for _, o := range e.pending {
			total += int64(len(o.key) + len(o.val) + 33)
		}
		for _, p := range e.stable {
			total += int64(len(p.key) + len(p.val) + 32)
		}
		total += int64(len(e.lo) + len(e.hi) + 16*len(e.deltaLocs))
		if e.inner != nil {
			total += int64(8 * len(e.inner.children))
			for _, k := range e.inner.keys {
				total += int64(len(k) + 24)
			}
		}
		e.mu.Unlock()
	}
	return total
}
