package bwtree

import (
	"bytes"
	"testing"
	"testing/quick"

	"bg3/internal/storage"
)

func TestLeafEncodeDecodeRoundTrip(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		var entries []kv
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			entries = append(entries, kv{key: k, val: v})
		}
		out, err := decodeLeaf(encodeLeaf(entries))
		if err != nil {
			return false
		}
		if len(out) != len(entries) {
			return false
		}
		for i := range entries {
			if !bytes.Equal(out[i].key, entries[i].key) || !bytes.Equal(out[i].val, entries[i].val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsEncodeDecodeRoundTrip(t *testing.T) {
	f := func(dels []bool, keys [][]byte) bool {
		var ops []op
		for i, k := range keys {
			del := i < len(dels) && dels[i]
			o := op{del: del, key: k}
			if !del {
				o.val = k
			}
			ops = append(ops, o)
		}
		out, err := decodeOps(encodeOps(ops))
		if err != nil {
			return false
		}
		if len(out) != len(ops) {
			return false
		}
		for i := range ops {
			if out[i].del != ops[i].del || !bytes.Equal(out[i].key, ops[i].key) || !bytes.Equal(out[i].val, ops[i].val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerEncodeDecodeRoundTrip(t *testing.T) {
	in := &innerNode{
		keys:     [][]byte{[]byte("m"), []byte("t")},
		children: []PageID{1, 2, 3},
	}
	out, err := decodeInner(encodeInner(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.children) != 3 || out.children[2] != 3 {
		t.Fatalf("children = %v", out.children)
	}
	if len(out.keys) != 2 || string(out.keys[0]) != "m" || string(out.keys[1]) != "t" {
		t.Fatalf("keys = %q", out.keys)
	}
}

func TestDecodeCorruptImages(t *testing.T) {
	leafCases := [][]byte{
		nil,
		{1, 2},
		{5, 0, 0, 0},                    // claims 5 entries, no payload
		{1, 0, 0, 0, 10, 0, 0, 0, 0, 0}, // truncated lengths
		append(encodeLeaf([]kv{{key: []byte("k"), val: []byte("v")}}), 0xFF), // trailing... still decodes first entry
	}
	for i, buf := range leafCases[:4] {
		if _, err := decodeLeaf(buf); err == nil {
			t.Fatalf("leaf case %d decoded", i)
		}
	}
	opCases := [][]byte{
		nil,
		{9, 0, 0, 0},
		{1, 0, 0, 0, 1, 5, 0, 0, 0},
	}
	for i, buf := range opCases {
		if _, err := decodeOps(buf); err == nil {
			t.Fatalf("ops case %d decoded", i)
		}
	}
	innerCases := [][]byte{
		nil,
		{0, 0, 0, 0},          // zero children
		{2, 0, 0, 0, 1, 2, 3}, // truncated children
	}
	for i, buf := range innerCases {
		if _, err := decodeInner(buf); err == nil {
			t.Fatalf("inner case %d decoded", i)
		}
	}
}

func TestPutAfterStoreClose(t *testing.T) {
	st := storage.Open(nil)
	m := NewMapping(0, false)
	tr, err := New(m, st, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := tr.Put([]byte("b"), []byte("2")); err == nil {
		t.Fatal("put against a closed store succeeded")
	}
	// Cached reads still serve.
	if _, ok, err := tr.Get([]byte("a")); err != nil || !ok {
		t.Fatalf("cached read after close = %v %v", ok, err)
	}
}
