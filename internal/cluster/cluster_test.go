package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bg3/internal/core"
	"bg3/internal/graph"
)

func newNodes(t *testing.T, n int) []graph.Store {
	t.Helper()
	out := make([]graph.Store, n)
	for i := range out {
		e, err := core.New(core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		out[i] = e
	}
	return out
}

func TestClusterRoutesConsistently(t *testing.T) {
	nodes := newNodes(t, 4)
	c := New(nodes...)
	for i := 0; i < 200; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	// Every edge is retrievable through the cluster.
	for i := 0; i < 200; i++ {
		if _, ok, _ := c.GetEdge(graph.VertexID(i), graph.ETypeFollow, graph.VertexID(i+1)); !ok {
			t.Fatalf("edge %d lost", i)
		}
	}
	// Data is actually spread: each node holds a strict subset.
	spread := 0
	for _, n := range nodes {
		local := 0
		for i := 0; i < 200; i++ {
			if _, ok, _ := n.GetEdge(graph.VertexID(i), graph.ETypeFollow, graph.VertexID(i+1)); ok {
				local++
			}
		}
		if local > 0 && local < 200 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("data not sharded: %d nodes hold partial data", spread)
	}
}

func TestClusterVertexOps(t *testing.T) {
	c := New(newNodes(t, 3)...)
	for i := 0; i < 30; i++ {
		if err := c.AddVertex(graph.Vertex{ID: graph.VertexID(i), Type: graph.VTypeUser}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, ok, _ := c.GetVertex(graph.VertexID(i), graph.VTypeUser); !ok {
			t.Fatalf("vertex %d lost", i)
		}
	}
}

func TestClusterKHopSpansShards(t *testing.T) {
	c := New(newNodes(t, 4)...)
	// Chain 0->1->2->...->9 crosses shard boundaries.
	for i := 0; i < 9; i++ {
		if err := c.AddEdge(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Type: graph.ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	reached, err := graph.KHop(c, 0, graph.ETypeFollow, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reached) != 9 {
		t.Fatalf("k-hop across shards reached %d vertices, want 9", len(reached))
	}
}

// slowStore counts concurrent operations to verify the Limited wrapper.
type slowStore struct {
	graph.Store
	cur, max atomic.Int64
}

func (s *slowStore) AddEdge(e graph.Edge) error {
	c := s.cur.Add(1)
	for {
		m := s.max.Load()
		if c <= m || s.max.CompareAndSwap(m, c) {
			break
		}
	}
	time.Sleep(time.Millisecond)
	s.cur.Add(-1)
	return nil
}

func TestLimitedCapsConcurrency(t *testing.T) {
	inner := &slowStore{}
	l := Limit(inner, 3)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = l.AddEdge(graph.Edge{Src: graph.VertexID(i)})
		}(i)
	}
	wg.Wait()
	if got := inner.max.Load(); got > 3 {
		t.Fatalf("max concurrency = %d, want <= 3", got)
	}
}

func TestLimitFloorsAtOne(t *testing.T) {
	nodes := newNodes(t, 1)
	l := Limit(nodes[0], 0)
	if err := l.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l.GetVertex(1, graph.VTypeUser); !ok {
		t.Fatal("vertex lost through limiter")
	}
}

func TestLimitedFullSurface(t *testing.T) {
	nodes := newNodes(t, 1)
	l := Limit(nodes[0], 2)
	if err := l.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeFollow}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l.GetEdge(1, graph.ETypeFollow, 2); !ok {
		t.Fatal("edge missing through limiter")
	}
	if d, _ := l.Degree(1, graph.ETypeFollow); d != 1 {
		t.Fatalf("degree = %d", d)
	}
	n := 0
	if err := l.Neighbors(1, graph.ETypeFollow, 0, func(graph.VertexID, graph.Properties) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("neighbors = %d", n)
	}
	if err := l.DeleteEdge(1, graph.ETypeFollow, 2); err != nil {
		t.Fatal(err)
	}
	if d, _ := l.Degree(1, graph.ETypeFollow); d != 0 {
		t.Fatalf("degree after delete = %d", d)
	}
}

func TestClusterDeleteAndDegree(t *testing.T) {
	c := New(newNodes(t, 2)...)
	if err := c.AddEdge(graph.Edge{Src: 5, Dst: 6, Type: graph.ETypeLike}); err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Degree(5, graph.ETypeLike); d != 1 {
		t.Fatalf("degree = %d", d)
	}
	n := 0
	if err := c.Neighbors(5, graph.ETypeLike, 0, func(graph.VertexID, graph.Properties) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("neighbors = %d", n)
	}
	if err := c.DeleteEdge(5, graph.ETypeLike, 6); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.GetEdge(5, graph.ETypeLike, 6); ok {
		t.Fatal("deleted edge visible")
	}
}
