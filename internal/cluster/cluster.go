// Package cluster simulates BG3's multi-node deployment for the Fig. 8
// scaling experiments: write requests are distributed across nodes by
// hashing the source vertex (the paper's "distribute write requests across
// distinct RW nodes using hashing"), and each node's compute is modelled
// as a bounded worker pool standing in for its vCPU allocation.
package cluster

import (
	"bg3/internal/graph"
	"bg3/internal/shard"
)

// Cluster shards a graph across member stores by source-vertex hash. It
// implements graph.Store, so workloads run unchanged against 1..N nodes.
type Cluster struct {
	nodes  []graph.Store
	router *shard.Router
}

// New builds a cluster over the given member stores.
func New(nodes ...graph.Store) *Cluster {
	if len(nodes) == 0 {
		panic("cluster: need at least one node")
	}
	return &Cluster{nodes: nodes, router: shard.NewRouter(len(nodes))}
}

// Nodes returns the member count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// route picks the node owning a vertex — the same Fibonacci-hash router
// the sharded engine uses, so the simulation places vertices exactly
// where a real shard group would.
func (c *Cluster) route(id graph.VertexID) graph.Store {
	return c.nodes[c.router.Owner(id)]
}

// AddVertex implements graph.Store.
func (c *Cluster) AddVertex(v graph.Vertex) error { return c.route(v.ID).AddVertex(v) }

// GetVertex implements graph.Store.
func (c *Cluster) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	return c.route(id).GetVertex(id, typ)
}

// AddEdge implements graph.Store: edges live with their source vertex.
func (c *Cluster) AddEdge(e graph.Edge) error { return c.route(e.Src).AddEdge(e) }

// GetEdge implements graph.Store.
func (c *Cluster) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	return c.route(src).GetEdge(src, typ, dst)
}

// DeleteEdge implements graph.Store.
func (c *Cluster) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	return c.route(src).DeleteEdge(src, typ, dst)
}

// Neighbors implements graph.Store.
func (c *Cluster) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	return c.route(src).Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Store.
func (c *Cluster) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	return c.route(src).Degree(src, typ)
}

var _ graph.Store = (*Cluster)(nil)

// Limited wraps a store with a vCPU-style concurrency cap: at most n
// operations execute inside the store simultaneously; excess callers
// queue. Fig. 8's vertical scaling varies this cap from 4 to 16.
type Limited struct {
	inner graph.Store
	sem   chan struct{}
}

// Limit wraps store with a concurrency cap of n.
func Limit(store graph.Store, n int) *Limited {
	if n < 1 {
		n = 1
	}
	return &Limited{inner: store, sem: make(chan struct{}, n)}
}

func (l *Limited) acquire() func() {
	l.sem <- struct{}{}
	return func() { <-l.sem }
}

// AddVertex implements graph.Store.
func (l *Limited) AddVertex(v graph.Vertex) error {
	defer l.acquire()()
	return l.inner.AddVertex(v)
}

// GetVertex implements graph.Store.
func (l *Limited) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	defer l.acquire()()
	return l.inner.GetVertex(id, typ)
}

// AddEdge implements graph.Store.
func (l *Limited) AddEdge(e graph.Edge) error {
	defer l.acquire()()
	return l.inner.AddEdge(e)
}

// GetEdge implements graph.Store.
func (l *Limited) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	defer l.acquire()()
	return l.inner.GetEdge(src, typ, dst)
}

// DeleteEdge implements graph.Store.
func (l *Limited) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	defer l.acquire()()
	return l.inner.DeleteEdge(src, typ, dst)
}

// Neighbors implements graph.Store.
func (l *Limited) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	defer l.acquire()()
	return l.inner.Neighbors(src, typ, limit, fn)
}

// Degree implements graph.Store.
func (l *Limited) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	defer l.acquire()()
	return l.inner.Degree(src, typ)
}

var _ graph.Store = (*Limited)(nil)
