package storage

import "fmt"

// Cursor marks a position in a stream for sequential tailing. The zero
// Cursor points at the beginning of the stream. Cursors remain valid across
// extent reclamation and TTL expiry: scanning simply resumes at the next
// surviving extent.
type Cursor struct {
	Extent ExtentID
	Index  int // record index within the extent
}

// Entry is one record yielded by Scan.
type Entry struct {
	Loc  Loc
	Tag  uint64
	Data []byte
}

// Scan returns up to max records appended at or after the cursor, in append
// order, along with the cursor positioned after the last returned record.
// max <= 0 means no limit. A scan counts as a single sequential read
// operation regardless of batch size — tailing a log is the cheap access
// pattern the WAL design of §3.4 exploits.
func (s *Store) Scan(id StreamID, cur Cursor, max int) ([]Entry, Cursor, error) {
	st, err := s.stream(id)
	if err != nil {
		return nil, cur, err
	}
	var lost func(ExtentID) bool
	if p := s.opts.Faults; p != nil {
		spike, ferr := p.readDecision(id, cur.Extent)
		pause(spike)
		if ferr != nil {
			return nil, cur, ferr
		}
		lost = func(ext ExtentID) bool { return p.extentLost(id, ext) }
	}
	pause(s.opts.ReadLatency)
	entries, next, err := st.scan(cur, max, lost)
	if err != nil {
		return entries, next, err
	}
	var bytes int64
	for _, e := range entries {
		bytes += int64(len(e.Data))
	}
	if len(entries) > 0 {
		s.readOps.Add(1)
		s.bytesRead.Add(bytes)
	}
	return entries, next, nil
}

// TailCursor returns the cursor positioned after the last record currently
// in the stream: a Scan from it yields only records appended later.
func (s *Store) TailCursor(id StreamID) Cursor {
	st, err := s.stream(id)
	if err != nil {
		return Cursor{}
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if len(st.order) == 0 {
		return Cursor{}
	}
	last := st.order[len(st.order)-1]
	e := st.extents[last]
	if e == nil {
		return Cursor{Extent: last + 1}
	}
	if e.sealed {
		return Cursor{Extent: last + 1}
	}
	return Cursor{Extent: last, Index: len(e.records)}
}

// DropBefore removes every sealed extent of the stream with ID below
// bound — WAL truncation once a snapshot covers the prefix. It returns the
// dropped extent IDs.
func (s *Store) DropBefore(id StreamID, bound ExtentID) []ExtentID {
	st, err := s.stream(id)
	if err != nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var dropped []ExtentID
	remaining := st.order[:0]
	for _, eid := range st.order {
		e := st.extents[eid]
		if e != nil && e.sealed && eid < bound {
			delete(st.extents, eid)
			dropped = append(dropped, eid)
			st.extentsExpired++
			continue
		}
		remaining = append(remaining, eid)
	}
	st.order = remaining
	return dropped
}

// scan collects records at or after cur. lost, when non-nil, reports
// extents the fault plan has destroyed: hitting one aborts the scan with
// ErrExtentLost and a cursor parked on the lost extent, so the caller can
// surface the gap (a tailing follower resyncs from a snapshot).
func (s *stream) scan(cur Cursor, max int, lost func(ExtentID) bool) ([]Entry, Cursor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, id := range s.order {
		if id < cur.Extent {
			continue
		}
		if lost != nil && lost(id) {
			return out, Cursor{Extent: id}, fmt.Errorf("storage: scan %v/%d: %w", s.id, id, ErrExtentLost)
		}
		e := s.extents[id]
		if e == nil {
			continue
		}
		start := 0
		if id == cur.Extent {
			start = cur.Index
		}
		for i := start; i < len(e.records); i++ {
			r := e.records[i]
			data := make([]byte, r.len)
			copy(data, e.buf[r.off:r.off+r.len])
			out = append(out, Entry{
				Loc:  Loc{Stream: s.id, Extent: id, Offset: r.off, Length: r.len},
				Tag:  r.tag,
				Data: data,
			})
			cur = Cursor{Extent: id, Index: i + 1}
			if max > 0 && len(out) >= max {
				return out, cur, nil
			}
		}
		if e.sealed {
			cur = Cursor{Extent: id + 1, Index: 0}
		} else {
			// The active extent may still grow; leave the cursor parked
			// after its last record so later appends are picked up.
			cur = Cursor{Extent: id, Index: len(e.records)}
		}
	}
	return out, cur, nil
}
