package storage

import (
	"sort"
	"sync"
)

// batchGroup is the unit of one storage round trip inside a ReadBatch: all
// requested records that live in the same extent of the same stream. The
// group is served by a single extent access (one latency charge, one lock
// acquisition, one backing allocation) regardless of how many records it
// covers.
type batchGroup struct {
	stream StreamID
	extent ExtentID
	idx    []int // positions in the caller's loc slice
}

// ReadBatch reads every record in locs and returns their contents in the
// same order. It is the concurrent multi-read API of the read path: Locs
// that land in the same extent are coalesced into one extent access, and
// distinct extents are fetched by parallel goroutines, so the caller pays
// the simulated cloud-storage ReadLatency once per overlapping round trip
// instead of once per Loc. The Bw-tree materialize path uses it to fetch a
// page's base image and delta chain in a single overlapped round trip.
//
// Like Read, ReadBatch works on a closed store so draining readers can
// finish. An error on any round trip fails the whole batch; the first
// failing group (in group order) wins.
func (s *Store) ReadBatch(locs []Loc) ([][]byte, error) {
	if len(locs) == 0 {
		return nil, nil
	}
	out := make([][]byte, len(locs))
	groups := groupLocs(locs)

	s.batchReads.Add(1)
	s.batchLocs.Add(int64(len(locs)))
	s.batchRoundTrips.Add(int64(len(groups)))

	if len(groups) == 1 || (s.opts.ReadLatency == 0 && s.opts.Faults == nil) {
		// Nothing to overlap: a single round trip, or a store with no
		// simulated latency (and no fault plan that could inject spikes).
		// Spawning goroutines would only add scheduling cost.
		for _, g := range groups {
			if err := s.readGroup(locs, g, out); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	// Each group is an independent round trip against the storage service;
	// issuing them from separate goroutines overlaps their latency exactly
	// like concurrent requests would.
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g batchGroup) {
			defer wg.Done()
			errs[i] = s.readGroup(locs, g, out)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// groupLocs buckets locs by (stream, extent), preserving first-appearance
// order of the groups and input order within each group.
func groupLocs(locs []Loc) []batchGroup {
	if len(locs) == 1 {
		return []batchGroup{{stream: locs[0].Stream, extent: locs[0].Extent, idx: []int{0}}}
	}
	groups := make([]batchGroup, 0, len(locs))
	for i, l := range locs {
		found := false
		for gi := range groups {
			if groups[gi].stream == l.Stream && groups[gi].extent == l.Extent {
				groups[gi].idx = append(groups[gi].idx, i)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, batchGroup{stream: l.Stream, extent: l.Extent, idx: []int{i}})
		}
	}
	return groups
}

// readGroup performs one coalesced round trip: fault decision and latency
// are charged once for the group, then every record is copied out of the
// extent under a single lock acquisition. ReadOps still counts one per
// record — it is the logical read-amplification measure the Fig. 9
// experiments compare policies with; the coalescing shows up in
// BatchRoundTrips (and in wall time, via the single latency charge).
func (s *Store) readGroup(locs []Loc, g batchGroup, out [][]byte) error {
	st, err := s.stream(g.stream)
	if err != nil {
		return err
	}
	if p := s.opts.Faults; p != nil {
		spike, ferr := p.readDecision(g.stream, g.extent)
		pause(spike)
		if ferr != nil {
			return ferr
		}
	}
	pause(s.opts.ReadLatency)
	var total int64
	if err := st.readMulti(locs, g.idx, out, &total); err != nil {
		return err
	}
	s.readOps.Add(int64(len(g.idx)))
	s.bytesRead.Add(total)
	return nil
}

// readMulti copies the records at locs[idx...] out of one extent under a
// single lock acquisition, backed by one shared allocation sized to the sum
// of the record lengths (the coalesced read). Results land in out at the
// same positions; total accumulates the bytes copied.
func (s *stream) readMulti(locs []Loc, idx []int, out [][]byte, total *int64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.extents[locs[idx[0]].Extent]
	if !ok {
		return ErrReclaimed
	}
	var size int
	for _, i := range idx {
		size += int(locs[i].Length)
	}
	backing := make([]byte, 0, size)
	for _, i := range idx {
		loc := locs[i]
		end := int(loc.Offset) + int(loc.Length)
		if end > len(e.buf) {
			return ErrNotFound
		}
		start := len(backing)
		backing = append(backing, e.buf[loc.Offset:end]...)
		out[i] = backing[start:len(backing):len(backing)]
		*total += int64(loc.Length)
	}
	return nil
}

// SortLocs orders locs by (stream, extent, offset) — read-ahead callers use
// it so extent grouping sees adjacent records together. Order of results
// from ReadBatch always follows the (possibly sorted) input slice.
func SortLocs(locs []Loc) {
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Stream != locs[j].Stream {
			return locs[i].Stream < locs[j].Stream
		}
		if locs[i].Extent != locs[j].Extent {
			return locs[i].Extent < locs[j].Extent
		}
		return locs[i].Offset < locs[j].Offset
	})
}
