package storage

import (
	"fmt"
	"sync"
	"time"
)

// record tracks one appended record inside an extent.
type record struct {
	off   uint32
	len   uint32
	tag   uint64
	valid bool
}

// extent is one fixed-size segment of a stream.
type extent struct {
	id     ExtentID
	buf    []byte
	sealed bool

	records      []record
	validCount   int
	invalidCount int
	validBytes   int64

	// Usage tracking for workload-aware reclamation (§3.3).
	lastUpdate time.Time // timestamp of the most recent append/invalidate

	// Update-gradient sampling: an EWMA of the invalidation rate, fed by
	// consecutive (time, invalidCount) observations. The snapshot value
	// additionally decays with idle time so long-quiet extents read as
	// cold even if they churned in the past.
	gradPrevTime    time.Time
	gradPrevInvalid int
	gradRate        float64 // EWMA invalid records per second
}

func (e *extent) noteUpdate(now time.Time) {
	if e.gradPrevTime.IsZero() {
		e.gradPrevTime = now
		e.gradPrevInvalid = e.invalidCount
		e.lastUpdate = now
		return
	}
	dt := now.Sub(e.gradPrevTime).Seconds()
	if dt > 0 {
		instant := float64(e.invalidCount-e.gradPrevInvalid) / dt
		if e.gradRate == 0 {
			e.gradRate = instant
		} else {
			e.gradRate = 0.5*e.gradRate + 0.5*instant
		}
		e.gradPrevTime = now
		e.gradPrevInvalid = e.invalidCount
	}
	e.lastUpdate = now
}

// gradient returns the update gradient at time now. An extent that has
// seen no update for a full decay window is cold by definition — its
// remaining records have demonstrably stopped dying — so its gradient
// reads zero regardless of how violently it churned in the past.
func (e *extent) gradient(now time.Time, decay time.Duration) float64 {
	if e.gradRate == 0 {
		return 0
	}
	if now.Sub(e.lastUpdate) >= decay {
		return 0
	}
	return e.gradRate
}

// ExtentUsage is the in-memory "Extent Usage Tracking" structure of §3.3,
// exposed to GC policies.
type ExtentUsage struct {
	Stream         StreamID
	Extent         ExtentID
	Sealed         bool
	LastUpdate     time.Time // timestamp of the newest record or invalidation
	ValidRecords   int
	InvalidRecords int
	ValidBytes     int64
	CapacityBytes  int64
	UpdateGradient float64 // invalid records per second (most recent sample)
}

// FragmentationRate returns the fraction of records in the extent that are
// invalid, the classic reclamation metric.
func (u ExtentUsage) FragmentationRate() float64 {
	total := u.ValidRecords + u.InvalidRecords
	if total == 0 {
		return 0
	}
	return float64(u.InvalidRecords) / float64(total)
}

type streamStats struct {
	GCBytesMoved     int64
	GCBytesReclaimed int64
	GCRecordsMoved   int64
	ExtentsReclaimed int64
	ExtentsExpired   int64
	LiveBytes        int64
	TotalBytes       int64
	ExtentCount      int64
}

// stream is one append-only sequence of extents.
type stream struct {
	id   StreamID
	opts Options

	mu      sync.RWMutex
	extents map[ExtentID]*extent
	order   []ExtentID // resident extents, oldest first
	active  *extent
	nextID  ExtentID

	// epoch is the stream's fence token (BtrLog-style). An append is
	// admitted iff it carries exactly this value; opening a higher epoch
	// permanently invalidates every lower token. 0 is the unfenced state
	// all streams start in, and plain Append carries token 0.
	epoch uint64

	// condemned extents stay readable until the grace period lapses.
	condemned map[ExtentID]time.Time

	gcBytesMoved     int64
	gcBytesReclaimed int64
	gcRecordsMoved   int64
	extentsReclaimed int64
	extentsExpired   int64
}

func newStream(id StreamID, opts Options) *stream {
	return &stream{
		id:        id,
		opts:      opts,
		extents:   make(map[ExtentID]*extent),
		condemned: make(map[ExtentID]time.Time),
	}
}

// newExtentLocked opens a fresh active extent. Caller holds mu.
func (s *stream) newExtentLocked() *extent {
	e := &extent{
		id:         s.nextID,
		buf:        make([]byte, 0, s.opts.ExtentSize),
		lastUpdate: s.opts.Now(),
	}
	s.nextID++
	s.extents[e.id] = e
	s.order = append(s.order, e.id)
	s.active = e
	return e
}

// checkEpoch reports ErrFenced when the token would be rejected right now.
// Callers use it as a cheap pre-check; append re-verifies under the write
// lock, which is the authoritative fence-vs-append serialization point.
func (s *stream) checkEpoch(epoch uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epochErrLocked(epoch)
}

func (s *stream) epochErrLocked(epoch uint64) error {
	if epoch != s.epoch {
		return fmt.Errorf("%w: token %d, stream %v at epoch %d", ErrFenced, epoch, s.id, s.epoch)
	}
	return nil
}

// openEpoch installs a new fence epoch. Opening an epoch below the current
// one fails ErrFenced (the caller itself has been deposed); re-opening the
// current epoch is an idempotent no-op.
func (s *stream) openEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch < s.epoch {
		return fmt.Errorf("%w: cannot open epoch %d, stream %v already at %d", ErrFenced, epoch, s.id, s.epoch)
	}
	s.epoch = epoch
	return nil
}

// advanceEpoch atomically opens current+1 and returns it.
func (s *stream) advanceEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

func (s *stream) currentEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

func (s *stream) append(epoch, tag uint64, data []byte) (Loc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The fence check shares the extent lock with the byte append: once
	// OpenStreamEpoch returns, no stale-token append can land, not even one
	// already past the store-level pre-checks.
	if err := s.epochErrLocked(epoch); err != nil {
		return Loc{}, err
	}
	e := s.active
	if e == nil || len(e.buf)+len(data) > s.opts.ExtentSize {
		if e != nil {
			e.sealed = true
			if p := s.opts.Faults; p != nil {
				p.noteSeal(s.id, e.id)
			}
		}
		e = s.newExtentLocked()
	}
	off := uint32(len(e.buf))
	e.buf = append(e.buf, data...)
	e.records = append(e.records, record{off: off, len: uint32(len(data)), tag: tag, valid: true})
	e.validCount++
	e.validBytes += int64(len(data))
	e.noteUpdate(s.opts.Now())
	return Loc{Stream: s.id, Extent: e.id, Offset: off, Length: uint32(len(data))}, nil
}

func (s *stream) read(loc Loc) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.extents[loc.Extent]
	if !ok {
		return nil, ErrReclaimed
	}
	end := int(loc.Offset) + int(loc.Length)
	if end > len(e.buf) {
		return nil, ErrNotFound
	}
	out := make([]byte, loc.Length)
	copy(out, e.buf[loc.Offset:end])
	return out, nil
}

// findRecord locates the record starting at loc.Offset. Records are stored
// in offset order, so binary search would work; extents hold at most a few
// thousand records and this is off the hot path, so linear search from a
// bisected start keeps the code simple.
func (e *extent) findRecord(off uint32) *record {
	lo, hi := 0, len(e.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.records[mid].off < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.records) && e.records[lo].off == off {
		return &e.records[lo]
	}
	return nil
}

func (s *stream) invalidate(loc Loc, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.extents[loc.Extent]
	if !ok {
		return
	}
	r := e.findRecord(loc.Offset)
	if r == nil || !r.valid {
		return
	}
	r.valid = false
	e.validCount--
	e.invalidCount++
	e.validBytes -= int64(r.len)
	e.noteUpdate(now)
}

func (s *stream) usage() []ExtentUsage {
	now := s.opts.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ExtentUsage, 0, len(s.order))
	for _, id := range s.order {
		e, ok := s.extents[id]
		if !ok {
			continue
		}
		out = append(out, ExtentUsage{
			Stream:         s.id,
			Extent:         e.id,
			Sealed:         e.sealed,
			LastUpdate:     e.lastUpdate,
			ValidRecords:   e.validCount,
			InvalidRecords: e.invalidCount,
			ValidBytes:     e.validBytes,
			CapacityBytes:  int64(s.opts.ExtentSize),
			UpdateGradient: e.gradient(now, s.opts.GradientDecay),
		})
	}
	return out
}

func (s *stream) stats() streamStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := streamStats{
		GCBytesMoved:     s.gcBytesMoved,
		GCBytesReclaimed: s.gcBytesReclaimed,
		GCRecordsMoved:   s.gcRecordsMoved,
		ExtentsReclaimed: s.extentsReclaimed,
		ExtentsExpired:   s.extentsExpired,
		ExtentCount:      int64(len(s.order)),
	}
	for _, id := range s.order {
		if e, ok := s.extents[id]; ok {
			st.LiveBytes += e.validBytes
			st.TotalBytes += int64(s.opts.ExtentSize)
		}
	}
	return st
}

// liveRecord is a snapshot of a valid record taken while planning a reclaim.
type liveRecord struct {
	tag  uint64
	off  uint32
	data []byte
}

func (s *stream) reclaim(store *Store, ext ExtentID, relocate RelocateFunc) (int64, error) {
	// Phase 1: snapshot the extent's live records under the lock.
	s.mu.Lock()
	if _, dead := s.condemned[ext]; dead {
		s.mu.Unlock()
		return 0, ErrReclaimed
	}
	e, ok := s.extents[ext]
	if !ok {
		s.mu.Unlock()
		return 0, ErrReclaimed
	}
	if e == s.active {
		e.sealed = true
		s.active = nil
	}
	live := make([]liveRecord, 0, e.validCount)
	for _, r := range e.records {
		if r.valid {
			data := make([]byte, r.len)
			copy(data, e.buf[r.off:r.off+r.len])
			live = append(live, liveRecord{tag: r.tag, off: r.off, data: data})
		}
	}
	s.mu.Unlock()

	// Phase 2: rewrite live records to the stream tail and repoint owners.
	// Appends go through the Store so write metrics and latency apply: the
	// data movement of GC is real I/O, which is exactly what Table 2
	// measures.
	var moved int64
	for _, lr := range live {
		newLoc, err := store.Append(s.id, lr.tag, lr.data)
		if err != nil {
			return moved, err
		}
		oldLoc := Loc{Stream: s.id, Extent: ext, Offset: lr.off, Length: uint32(len(lr.data))}
		if relocate == nil || !relocate(lr.tag, oldLoc, newLoc) {
			// Owner no longer references the record (it was superseded
			// while we copied); the fresh copy is garbage already.
			s.invalidate(newLoc, s.opts.Now())
			continue
		}
		moved += int64(len(lr.data))
	}

	// Phase 3: retire the extent. With a grace period it stays readable
	// (condemned) so lagging readers holding old locations — RO replicas
	// awaiting a checkpoint — do not break; its space no longer counts.
	now := s.opts.Now()
	s.mu.Lock()
	for i, id := range s.order {
		if id == ext {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.opts.ReclaimGrace > 0 {
		s.condemned[ext] = now
	} else {
		delete(s.extents, ext)
	}
	s.purgeCondemnedLocked(now)
	s.gcBytesMoved += moved
	if freed := int64(len(e.buf)) - moved; freed > 0 {
		s.gcBytesReclaimed += freed
	}
	s.gcRecordsMoved += int64(len(live))
	s.extentsReclaimed++
	s.mu.Unlock()
	return moved, nil
}

// purgeCondemnedLocked releases condemned extents older than the grace
// period. Caller holds s.mu.
func (s *stream) purgeCondemnedLocked(now time.Time) {
	if len(s.condemned) == 0 {
		return
	}
	for id, since := range s.condemned {
		if now.Sub(since) >= s.opts.ReclaimGrace {
			delete(s.condemned, id)
			delete(s.extents, id)
		}
	}
}

func (s *stream) dropExpired(deadline time.Time) []ExtentID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var dropped []ExtentID
	remaining := s.order[:0]
	for _, id := range s.order {
		e := s.extents[id]
		if e != nil && e.sealed && e.lastUpdate.Before(deadline) {
			delete(s.extents, id)
			dropped = append(dropped, id)
			s.extentsExpired++
			s.gcBytesReclaimed += int64(len(e.buf))
			continue
		}
		remaining = append(remaining, id)
	}
	s.order = remaining
	return dropped
}
