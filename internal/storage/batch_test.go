package storage

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestReadBatchOrderAndCoalescing writes records across several extents,
// reads them back in scrambled order, and checks that results follow input
// order while round trips follow extent count.
func TestReadBatchOrderAndCoalescing(t *testing.T) {
	s := Open(&Options{ExtentSize: 64})
	var locs []Loc
	var want [][]byte
	for i := 0; i < 12; i++ {
		data := []byte(fmt.Sprintf("record-%02d-%s", i, string(make([]byte, i))))
		loc, err := s.Append(StreamBase, uint64(i), data)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
		want = append(want, data)
	}

	// Scramble: interleave front and back so same-extent records are not
	// adjacent in the request.
	perm := make([]int, 0, len(locs))
	for i, j := 0, len(locs)-1; i <= j; i, j = i+1, j-1 {
		perm = append(perm, i)
		if i != j {
			perm = append(perm, j)
		}
	}
	req := make([]Loc, len(perm))
	for i, p := range perm {
		req[i] = locs[p]
	}

	before := s.Stats()
	got, err := s.ReadBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if !bytes.Equal(got[i], want[p]) {
			t.Fatalf("result %d = %q, want %q", i, got[i], want[p])
		}
	}
	after := s.Stats()

	extents := map[ExtentID]bool{}
	for _, l := range locs {
		extents[l.Extent] = true
	}
	if rt := after.BatchRoundTrips - before.BatchRoundTrips; rt != int64(len(extents)) {
		t.Fatalf("round trips = %d, want %d (one per extent)", rt, len(extents))
	}
	// ReadOps stays per-record: it is the logical read-amplification measure.
	if ro := after.ReadOps - before.ReadOps; ro != int64(len(req)) {
		t.Fatalf("read ops = %d, want %d (one per record)", ro, len(req))
	}
	if after.BatchReads-before.BatchReads != 1 {
		t.Fatalf("batch reads = %d, want 1", after.BatchReads-before.BatchReads)
	}
}

// TestReadBatchParallelPath forces the goroutine-per-group path (non-zero
// read latency, multiple extents) and checks results and errors still land
// correctly.
func TestReadBatchParallelPath(t *testing.T) {
	s := Open(&Options{ExtentSize: 32, ReadLatency: 100 * time.Microsecond})
	var locs []Loc
	for i := 0; i < 6; i++ {
		loc, err := s.Append(StreamBase, uint64(i), []byte(fmt.Sprintf("par-%d-0123456789", i)))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	got, err := s.ReadBatch(locs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range locs {
		if want := fmt.Sprintf("par-%d-0123456789", i); string(got[i]) != want {
			t.Fatalf("result %d = %q, want %q", i, got[i], want)
		}
	}

	// A bogus loc in any group fails the whole batch.
	bad := locs[0]
	bad.Offset = 1 << 20
	if _, err := s.ReadBatch([]Loc{locs[1], bad, locs[2]}); err == nil {
		t.Fatal("expected error for out-of-range loc")
	}
}

// TestReadBatchEmptyAndSingle covers the trivial shapes.
func TestReadBatchEmptyAndSingle(t *testing.T) {
	s := Open(&Options{ExtentSize: 1 << 16})
	if out, err := s.ReadBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
	loc, err := s.Append(StreamDelta, 1, []byte("solo"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ReadBatch([]Loc{loc})
	if err != nil || string(out[0]) != "solo" {
		t.Fatalf("single batch = %q, %v", out, err)
	}
}

// TestSortLocs checks the (stream, extent, offset) ordering contract.
func TestSortLocs(t *testing.T) {
	locs := []Loc{
		{Stream: StreamDelta, Extent: 1, Offset: 0},
		{Stream: StreamBase, Extent: 2, Offset: 8},
		{Stream: StreamBase, Extent: 1, Offset: 16},
		{Stream: StreamBase, Extent: 1, Offset: 4},
	}
	SortLocs(locs)
	want := []Loc{
		{Stream: StreamBase, Extent: 1, Offset: 4},
		{Stream: StreamBase, Extent: 1, Offset: 16},
		{Stream: StreamBase, Extent: 2, Offset: 8},
		{Stream: StreamDelta, Extent: 1, Offset: 0},
	}
	for i := range want {
		if locs[i] != want[i] {
			t.Fatalf("locs[%d] = %+v, want %+v", i, locs[i], want[i])
		}
	}
}
