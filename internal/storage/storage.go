// Package storage implements the append-only shared cloud storage substrate
// that BG3 persists to (the paper uses ByteDance's internal Pangu-like
// service; see DESIGN.md §4 for the substitution).
//
// The store exposes several independent append-only streams (base pages,
// delta pages, WAL, mapping table snapshots). Each stream is divided into
// uniformly sized extents, mirroring ArkDB's layout, and every extent tracks
// the usage statistics that workload-aware space reclamation needs: latest
// update time, valid/invalid record counts, and the update-gradient samples
// of §3.3.
//
// The store is strongly consistent: a record returned by Append is
// immediately visible to every reader, which is the property the
// I/O-efficient synchronization mechanism of §3.4 relies on. Millisecond
// cloud-storage latency can be injected per operation via Options.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StreamID identifies one append-only stream inside the store.
type StreamID uint8

// The streams BG3 uses. Separating base and delta data into distinct
// streams follows ArkDB: delta pages die young, so segregating them keeps
// extent-level reclamation cheap.
const (
	StreamBase StreamID = iota
	StreamDelta
	StreamWAL
	StreamMeta
	numStreams
)

// String returns the stream's conventional name.
func (s StreamID) String() string {
	switch s {
	case StreamBase:
		return "base"
	case StreamDelta:
		return "delta"
	case StreamWAL:
		return "wal"
	case StreamMeta:
		return "meta"
	default:
		return fmt.Sprintf("stream(%d)", uint8(s))
	}
}

// ExtentID identifies an extent within a stream. IDs increase monotonically
// in append order, so they double as a coarse timestamp.
type ExtentID uint64

// Loc is the durable address of one record.
type Loc struct {
	Stream StreamID
	Extent ExtentID
	Offset uint32
	Length uint32
}

// IsZero reports whether l is the zero location (never returned by Append,
// usable as a sentinel for "not persisted").
func (l Loc) IsZero() bool { return l == Loc{} }

func (l Loc) String() string {
	return fmt.Sprintf("%s/%d@%d+%d", l.Stream, l.Extent, l.Offset, l.Length)
}

// Errors returned by the store.
var (
	ErrNotFound    = errors.New("storage: record not found")
	ErrReclaimed   = errors.New("storage: extent has been reclaimed")
	ErrRecordStale = errors.New("storage: record invalidated")
	ErrTooLarge    = errors.New("storage: record larger than extent size")
	ErrClosed      = errors.New("storage: store closed")
	// ErrFenced rejects an append whose epoch token is not the stream's
	// current epoch. It is permanent for the holder of the stale token —
	// retrying cannot help, a newer epoch has been opened — so IsTransient
	// deliberately excludes it and writers fail-stop on it.
	ErrFenced = errors.New("storage: append epoch fenced")
)

// Options configures a Store.
type Options struct {
	// ExtentSize is the capacity, in bytes, of each extent. Appends that
	// would overflow the active extent seal it and open a new one.
	ExtentSize int

	// ReadLatency and WriteLatency simulate the round-trip time of the
	// cloud storage service. Zero disables the simulation (the default for
	// unit tests); replication experiments use millisecond values.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// Now supplies timestamps for extent usage tracking. Tests inject a
	// fake clock to exercise TTL expiry without sleeping. Nil means
	// time.Now.
	Now func() time.Time

	// GradientDecay is the idle half-scale of the update gradient: an
	// extent untouched for GradientDecay reads at half its last
	// invalidation rate, so long-quiet extents classify as cold.
	// Default 10s.
	GradientDecay time.Duration

	// ReclaimGrace keeps reclaimed extents readable (condemned, excluded
	// from usage and space accounting) for this long before their memory
	// is released. Replicated deployments need it: RO nodes keep reading
	// old page versions until a checkpoint ships the relocated locations
	// (§3.4), so the old extent must outlive that window. 0 frees
	// immediately (single-node default).
	ReclaimGrace time.Duration

	// Faults, when non-nil, injects seeded faults (transient errors, torn
	// writes, latency spikes, extent loss, crash points) into every
	// operation. Nil disables injection with zero overhead on the hot path.
	Faults *FaultPlan
}

const defaultExtentSize = 1 << 20 // 1 MiB

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.ExtentSize <= 0 {
		out.ExtentSize = defaultExtentSize
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	if out.GradientDecay <= 0 {
		out.GradientDecay = 10 * time.Second
	}
	return out
}

// Metrics aggregates the store's I/O accounting. All fields are safe for
// concurrent access through the Stats snapshot.
type Metrics struct {
	ReadOps          int64
	WriteOps         int64
	BytesRead        int64
	BytesWritten     int64
	BatchReads       int64 // ReadBatch calls
	BatchLocs        int64 // records requested through ReadBatch
	BatchRoundTrips  int64 // extent round trips those calls coalesced into
	GCBytesMoved     int64 // bytes relocated by space reclamation
	GCBytesReclaimed int64 // bytes freed by reclamation and TTL expiry
	GCRecordsMoved   int64
	ExtentsReclaimed int64
	ExtentsExpired   int64 // extents dropped wholesale by TTL
	LiveBytes        int64 // valid record bytes currently stored
	TotalBytes       int64 // capacity of all resident extents
	ExtentCount      int64
	FencedAppends    int64 // appends rejected with ErrFenced
}

// GCWriteAmp returns the write amplification of space reclamation: bytes
// rewritten per byte freed. Zero until something has been reclaimed.
func (m Metrics) GCWriteAmp() float64 {
	if m.GCBytesReclaimed == 0 {
		return 0
	}
	return float64(m.GCBytesMoved) / float64(m.GCBytesReclaimed)
}

// Store is an in-process, strongly consistent, append-only shared store.
// It is safe for concurrent use by any number of goroutines; the paper's
// RW node and all RO nodes share a single Store instance.
type Store struct {
	opts    Options
	streams [numStreams]*stream

	mu     sync.Mutex
	closed bool

	// I/O accounting. Lock-free atomics: with the batched read path issuing
	// overlapping round trips from many goroutines, a shared counter mutex
	// would serialize exactly the operations ReadBatch parallelizes.
	readOps         atomic.Int64
	writeOps        atomic.Int64
	bytesRead       atomic.Int64
	bytesWritten    atomic.Int64
	batchReads      atomic.Int64
	batchLocs       atomic.Int64
	batchRoundTrips atomic.Int64
	fencedAppends   atomic.Int64
}

// pause injects simulated storage latency by blocking the calling
// goroutine. Blocking (rather than spinning) matters: concurrent callers
// overlap their waits exactly like concurrent requests against a real
// storage service, independent of host core count. Note that the OS timer
// floor (~1ms) makes sub-millisecond values behave as roughly 1ms;
// experiments use millisecond-class latencies, like the paper's storage.
func pause(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d)
}

// Open creates an empty store.
func Open(opts *Options) *Store {
	o := opts.withDefaults()
	s := &Store{opts: o}
	for i := range s.streams {
		s.streams[i] = newStream(StreamID(i), o)
	}
	return s
}

// Close marks the store closed. Subsequent appends fail; reads of already
// written data continue to work so that draining readers can finish.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Store) stream(id StreamID) (*stream, error) {
	if int(id) >= len(s.streams) {
		return nil, fmt.Errorf("storage: unknown stream %d", id)
	}
	return s.streams[id], nil
}

// Append durably writes data to the tail of the given stream and returns
// its location. tag is an opaque owner token (BG3 uses the page ID) that
// space reclamation hands back through RelocateFunc. Append carries epoch
// token 0, so it works on any stream that has never been fenced and fails
// ErrFenced afterwards.
func (s *Store) Append(id StreamID, tag uint64, data []byte) (Loc, error) {
	return s.AppendEpoch(id, 0, tag, data)
}

// AppendEpoch is Append carrying an explicit fence token. The append is
// admitted iff epoch equals the stream's current epoch (see
// OpenStreamEpoch); a mismatch fails ErrFenced and persists nothing — not
// even a torn prefix, since the fence check precedes fault injection. This
// is the BtrLog-style single-writer guarantee: a deposed leader's token is
// rejected by the storage service itself, no cooperation required.
func (s *Store) AppendEpoch(id StreamID, epoch, tag uint64, data []byte) (Loc, error) {
	if s.isClosed() {
		return Loc{}, ErrClosed
	}
	st, err := s.stream(id)
	if err != nil {
		return Loc{}, err
	}
	if len(data) > s.opts.ExtentSize {
		return Loc{}, fmt.Errorf("%w: %d > extent size %d (stream %v, tag %d)", ErrTooLarge, len(data), s.opts.ExtentSize, id, tag)
	}
	if err := st.checkEpoch(epoch); err != nil {
		s.fencedAppends.Add(1)
		return Loc{}, err
	}
	if p := s.opts.Faults; p != nil {
		out := p.appendDecision(id, len(data))
		pause(out.spike)
		if out.err != nil {
			if out.torn > 0 {
				// Persist the torn prefix: it occupies the extent tail as a
				// checksummed-garbage record that readers must detect. The
				// prefix carries the same token, so an append that loses the
				// fence race persists nothing at all.
				pause(s.opts.WriteLatency)
				if _, terr := st.append(epoch, tag, data[:out.torn]); terr == nil {
					s.writeOps.Add(1)
					s.bytesWritten.Add(int64(out.torn))
				}
			}
			return Loc{}, out.err
		}
	}
	pause(s.opts.WriteLatency)
	loc, err := st.append(epoch, tag, data)
	if err != nil {
		if errors.Is(err, ErrFenced) {
			s.fencedAppends.Add(1)
		}
		return Loc{}, err
	}
	s.writeOps.Add(1)
	s.bytesWritten.Add(int64(len(data)))
	return loc, nil
}

// OpenStreamEpoch installs epoch as the stream's fence token, invalidating
// every lower token: subsequent appends carrying a smaller epoch fail
// ErrFenced. Opening an epoch below the current one fails ErrFenced
// (the opener itself has been deposed); re-opening the current epoch is an
// idempotent no-op. The fence is serialized with in-flight appends on the
// stream lock — once OpenStreamEpoch returns, no stale-token bytes can land.
func (s *Store) OpenStreamEpoch(id StreamID, epoch uint64) error {
	st, err := s.stream(id)
	if err != nil {
		return err
	}
	return st.openEpoch(epoch)
}

// AdvanceStreamEpoch atomically fences the stream at current+1 and returns
// the new epoch. Promotion uses it to claim a fresh epoch without a
// read-then-open race between competing candidates.
func (s *Store) AdvanceStreamEpoch(id StreamID) (uint64, error) {
	st, err := s.stream(id)
	if err != nil {
		return 0, err
	}
	return st.advanceEpoch(), nil
}

// StreamEpoch returns the stream's current fence epoch (0 = never fenced).
func (s *Store) StreamEpoch(id StreamID) uint64 {
	st, err := s.stream(id)
	if err != nil {
		return 0
	}
	return st.currentEpoch()
}

// Read returns a copy of the record at loc. Reading an invalidated record
// succeeds as long as its extent is still resident: BG3's RO nodes depend
// on old page versions remaining readable until the mapping table advances
// (§3.4); reclamation is what finally destroys them.
func (s *Store) Read(loc Loc) ([]byte, error) {
	st, err := s.stream(loc.Stream)
	if err != nil {
		return nil, err
	}
	if p := s.opts.Faults; p != nil {
		spike, ferr := p.readDecision(loc.Stream, loc.Extent)
		pause(spike)
		if ferr != nil {
			return nil, ferr
		}
	}
	pause(s.opts.ReadLatency)
	data, err := st.read(loc)
	if err != nil {
		return nil, err
	}
	s.readOps.Add(1)
	s.bytesRead.Add(int64(len(data)))
	return data, nil
}

// Invalidate marks the record at loc dead, updating its extent's
// fragmentation statistics and update-gradient samples. Invalidating a
// record twice, or a record in an already reclaimed extent, is a no-op.
func (s *Store) Invalidate(loc Loc) {
	st, err := s.stream(loc.Stream)
	if err != nil {
		return
	}
	st.invalidate(loc, s.opts.Now())
}

// Stats returns a snapshot of the store's metrics.
func (s *Store) Stats() Metrics {
	m := Metrics{
		ReadOps:         s.readOps.Load(),
		WriteOps:        s.writeOps.Load(),
		BytesRead:       s.bytesRead.Load(),
		BytesWritten:    s.bytesWritten.Load(),
		BatchReads:      s.batchReads.Load(),
		BatchLocs:       s.batchLocs.Load(),
		BatchRoundTrips: s.batchRoundTrips.Load(),
		FencedAppends:   s.fencedAppends.Load(),
	}
	for _, st := range s.streams {
		sm := st.stats()
		m.GCBytesMoved += sm.GCBytesMoved
		m.GCBytesReclaimed += sm.GCBytesReclaimed
		m.GCRecordsMoved += sm.GCRecordsMoved
		m.ExtentsReclaimed += sm.ExtentsReclaimed
		m.ExtentsExpired += sm.ExtentsExpired
		m.LiveBytes += sm.LiveBytes
		m.TotalBytes += sm.TotalBytes
		m.ExtentCount += sm.ExtentCount
	}
	return m
}

// ResetIOStats zeroes the read/write operation counters (extent-level usage
// tracking is untouched). Benchmarks call this after loading a dataset so
// measurements cover only the steady state.
func (s *Store) ResetIOStats() {
	for _, c := range []*atomic.Int64{
		&s.readOps, &s.writeOps, &s.bytesRead, &s.bytesWritten,
		&s.batchReads, &s.batchLocs, &s.batchRoundTrips,
	} {
		c.Store(0)
	}
}

// Usage returns the usage records of all resident extents in a stream,
// ordered by extent ID (oldest first). GC policies consume this.
func (s *Store) Usage(id StreamID) []ExtentUsage {
	st, err := s.stream(id)
	if err != nil {
		return nil
	}
	return st.usage()
}

// RelocateFunc is invoked by Reclaim for every valid record moved out of a
// reclaimed extent. The callback must atomically repoint the owner's
// reference from old to new (BG3 updates the Bw-tree mapping table) and
// report whether it did; returning false means the record went stale while
// being moved, and the new copy is immediately invalidated.
type RelocateFunc func(tag uint64, old, new Loc) bool

// Reclaim rewrites all still-valid records of the given extent to the tail
// of its stream, then drops the extent. It returns the number of bytes
// relocated (the write amplification the GC experiments measure).
func (s *Store) Reclaim(id StreamID, ext ExtentID, relocate RelocateFunc) (movedBytes int64, err error) {
	st, errs := s.stream(id)
	if errs != nil {
		return 0, errs
	}
	return st.reclaim(s, ext, relocate)
}

// DropExpired removes whole extents whose newest record is older than
// deadline — the TTL fast path of §3.3 ("allow it to expire naturally"):
// no data is moved, so expiry contributes zero write amplification.
// It returns the IDs of the dropped extents. The active (unsealed) extent
// is never dropped.
func (s *Store) DropExpired(id StreamID, deadline time.Time) []ExtentID {
	st, err := s.stream(id)
	if err != nil {
		return nil
	}
	return st.dropExpired(deadline)
}

// ExtentSize returns the configured extent capacity.
func (s *Store) ExtentSize() int { return s.opts.ExtentSize }

// Faults returns the store's fault plan (nil when injection is disabled).
func (s *Store) Faults() *FaultPlan { return s.opts.Faults }
