package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestEpochFencingContract pins the admission rule: an append is admitted
// iff its epoch token exactly equals the stream's current epoch. Plain
// Append carries token 0, so fencing a stream cuts off every legacy writer
// at once; tokens above the current epoch are just as dead as ones below —
// an epoch must be claimed through OpenStreamEpoch/AdvanceStreamEpoch
// before anyone may append under it.
func TestEpochFencingContract(t *testing.T) {
	s := Open(nil)
	defer s.Close()

	if _, err := s.Append(StreamWAL, 0, []byte("pre")); err != nil {
		t.Fatalf("append at epoch 0: %v", err)
	}
	if err := s.OpenStreamEpoch(StreamWAL, 2); err != nil {
		t.Fatalf("open epoch 2: %v", err)
	}
	if got := s.StreamEpoch(StreamWAL); got != 2 {
		t.Fatalf("StreamEpoch = %d, want 2", got)
	}

	for _, tc := range []struct {
		token uint64
		ok    bool
	}{
		{0, false}, // legacy writer, fenced
		{1, false}, // stale epoch
		{2, true},  // current epoch
		{3, false}, // unclaimed future epoch
	} {
		_, err := s.AppendEpoch(StreamWAL, tc.token, 0, []byte("x"))
		if tc.ok && err != nil {
			t.Errorf("token %d: append failed: %v", tc.token, err)
		}
		if !tc.ok && !errors.Is(err, ErrFenced) {
			t.Errorf("token %d: err = %v, want ErrFenced", tc.token, err)
		}
	}
	if errors.Is(errTake(s.Append(StreamWAL, 0, []byte("x"))), ErrTransient) {
		t.Error("ErrFenced must not look transient")
	}
	if IsTransient(fmt.Errorf("wrapped: %w", ErrFenced)) {
		t.Error("IsTransient(ErrFenced) = true; fenced appends must fail-stop, not retry")
	}

	// Re-opening the current epoch is idempotent; opening below it fails;
	// fencing never moves backwards.
	if err := s.OpenStreamEpoch(StreamWAL, 2); err != nil {
		t.Fatalf("idempotent reopen: %v", err)
	}
	if err := s.OpenStreamEpoch(StreamWAL, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("open stale epoch: err = %v, want ErrFenced", err)
	}
	if got := s.StreamEpoch(StreamWAL); got != 2 {
		t.Fatalf("failed open moved the epoch to %d", got)
	}

	// Epochs are per stream: fencing the WAL leaves page streams writable.
	if _, err := s.Append(StreamBase, 1, []byte("page")); err != nil {
		t.Fatalf("base stream caught the WAL fence: %v", err)
	}

	st := s.Stats()
	if st.FencedAppends != 4 {
		t.Errorf("FencedAppends = %d, want 4", st.FencedAppends)
	}
}

// TestEpochMonotonicityProperty is the promotion-safety property: under any
// interleaving of OpenStreamEpoch and AdvanceStreamEpoch calls from
// competing promoters, exactly one epoch can append afterwards — the
// highest ever claimed — and every AdvanceStreamEpoch call returns a
// distinct epoch (no two promoters are ever told they own the same one).
func TestEpochMonotonicityProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := Open(nil)
		var max uint64
		claimed := make(map[uint64]bool)
		for op := 0; op < 30; op++ {
			if rng.Intn(2) == 0 {
				e, err := s.AdvanceStreamEpoch(StreamWAL)
				if err != nil {
					t.Fatalf("seed %d: advance: %v", seed, err)
				}
				if claimed[e] {
					t.Fatalf("seed %d: epoch %d claimed twice", seed, e)
				}
				claimed[e] = true
				if e <= max {
					t.Fatalf("seed %d: advance returned %d, not above %d", seed, e, max)
				}
				max = e
			} else {
				e := uint64(rng.Intn(12))
				err := s.OpenStreamEpoch(StreamWAL, e)
				switch {
				case e < max && !errors.Is(err, ErrFenced):
					t.Fatalf("seed %d: open stale %d (max %d): err = %v, want ErrFenced", seed, e, max, err)
				case e >= max && err != nil:
					t.Fatalf("seed %d: open %d (max %d): %v", seed, e, max, err)
				case e > max:
					max = e
				}
			}
			// Invariant after every step: exactly one token can append.
			for tok := uint64(0); tok <= max+1; tok++ {
				_, err := s.AppendEpoch(StreamWAL, tok, 0, []byte("probe"))
				if (tok == max) != (err == nil) {
					t.Fatalf("seed %d op %d: token %d at epoch %d: err = %v", seed, op, tok, max, err)
				}
			}
		}
		s.Close()
	}
}

// TestEpochAdvanceConcurrent races promoters claiming epochs with writers
// appending under the ones they won: every claim is unique, and once the
// dust settles only the final epoch can append. Run under -race this also
// checks the fence's synchronization against concurrent appends.
func TestEpochAdvanceConcurrent(t *testing.T) {
	s := Open(nil)
	defer s.Close()

	const promoters = 8
	epochs := make([]uint64, promoters)
	var wg sync.WaitGroup
	for i := 0; i < promoters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := s.AdvanceStreamEpoch(StreamWAL)
			if err != nil {
				t.Errorf("promoter %d: %v", i, err)
				return
			}
			epochs[i] = e
			// Append under the claimed epoch: legal only while still the
			// holder; a later claim turns this into ErrFenced. Either way it
			// must never be a silent partial admission.
			if _, err := s.AppendEpoch(StreamWAL, e, 0, []byte("tenure")); err != nil && !errors.Is(err, ErrFenced) {
				t.Errorf("promoter %d append: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	seen := make(map[uint64]bool)
	for i, e := range epochs {
		if e == 0 || seen[e] {
			t.Fatalf("promoter %d got epoch %d (duplicate or unclaimed)", i, e)
		}
		seen[e] = true
	}
	final := s.StreamEpoch(StreamWAL)
	if final != promoters {
		t.Fatalf("final epoch %d, want %d", final, promoters)
	}
	for tok := uint64(0); tok <= promoters; tok++ {
		_, err := s.AppendEpoch(StreamWAL, tok, 0, []byte("probe"))
		if (tok == final) != (err == nil) {
			t.Fatalf("token %d after the race: err = %v", tok, err)
		}
	}
}

// TestFencedAppendLeavesNoBytes pins the fail-stop guarantee that makes
// zombie writes invisible rather than merely failed: a fenced append
// persists nothing — not even a torn prefix — so a deposed leader cannot
// leave bytes for a reader to trip over, and the stream's contents are
// exactly the admitted appends.
func TestFencedAppendLeavesNoBytes(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{})
	s := Open(&Options{Faults: plan})
	defer s.Close()

	if _, err := s.Append(StreamWAL, 0, []byte("pre-fence")); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenStreamEpoch(StreamWAL, 1); err != nil {
		t.Fatal(err)
	}
	// Even with a forced torn write armed, the fence check runs first: the
	// zombie append persists zero bytes and the tear stays armed for the
	// next admitted append.
	plan.TearNext()
	if _, err := s.AppendEpoch(StreamWAL, 0, 7, []byte("zombie")); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced append err = %v", err)
	}
	if _, err := s.AppendEpoch(StreamWAL, 1, 0, []byte("post-fence")); !errors.Is(err, ErrTornWrite) {
		t.Fatal("armed tear should have hit the first admitted append")
	}

	entries, _, err := s.Scan(StreamWAL, Cursor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, string(e.Data))
	}
	for _, d := range got {
		if d == "zombie" {
			t.Fatalf("fenced append became durable: %q", got)
		}
	}
	if len(got) == 0 || got[0] != "pre-fence" {
		t.Fatalf("stream contents = %q", got)
	}
}
