package storage

import (
	"errors"
	"testing"
	"time"
)

// fixedRand returns a deterministic sequence of values in [0, 1).
func fixedRand(vals ...float64) func() float64 {
	i := 0
	return func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	}
}

func TestRetryJitterBounds(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  10 * time.Millisecond,
		Jitter:      0.5,
		Rand:        fixedRand(0, 0.5, 0.999),
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	err := p.Do("test", func() error { return ErrTransient })
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if len(sleeps) != 3 {
		t.Fatalf("slept %d times, want 3", len(sleeps))
	}
	// Backoffs 100µs, 200µs, 400µs with rand 0, 0.5, 0.999 and jitter 0.5:
	// factor = 0.5 + rand, so sleeps land at 50µs, 200µs, ~400µs.
	bases := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond}
	for i, d := range sleeps {
		lo := time.Duration(float64(bases[i]) * 0.5)
		hi := time.Duration(float64(bases[i]) * 1.5)
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v outside jitter bounds [%v, %v]", i, d, lo, hi)
		}
	}
	if sleeps[0] != 50*time.Microsecond {
		t.Fatalf("sleep 0 = %v, want 50µs (rand=0 must be deterministic)", sleeps[0])
	}
	if sleeps[1] != 200*time.Microsecond {
		t.Fatalf("sleep 1 = %v, want 200µs (rand=0.5 is the midpoint)", sleeps[1])
	}
}

func TestRetryJitterDeterministicWithInjectedRand(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: 100 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			Jitter:      0.5,
			Rand:        fixedRand(0.25, 0.75),
			Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
		}
		p.Do("test", func() error { return ErrTransient })
		return sleeps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sleep %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRetryJitterCappedAtMaxBackoff(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 1 * time.Millisecond,
		MaxBackoff:  1 * time.Millisecond,
		Jitter:      1.0,
		Rand:        fixedRand(0.999), // jitter factor ~2x
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	p.Do("test", func() error { return ErrTransient })
	for i, d := range sleeps {
		if d > time.Millisecond {
			t.Fatalf("sleep %d = %v exceeds MaxBackoff", i, d)
		}
	}
}

func TestRetryJitterDisabledByDefaultZero(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	p.Do("test", func() error { return ErrTransient })
	want := []time.Duration{100 * time.Microsecond, 200 * time.Microsecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times, want %d", len(sleeps), len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (no jitter requested)", i, sleeps[i], want[i])
		}
	}
}

func TestRetryDefaultPolicyHasJitter(t *testing.T) {
	if DefaultRetry.Jitter <= 0 {
		t.Fatalf("DefaultRetry.Jitter = %f, want > 0 to avoid retry storms", DefaultRetry.Jitter)
	}
	// With no injected Rand the policy must still work (math/rand/v2 path).
	var sleeps []time.Duration
	p := DefaultRetry
	p.Sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	p.Do("test", func() error { return ErrTransient })
	for i, d := range sleeps {
		if d <= 0 || d > p.MaxBackoff {
			t.Fatalf("sleep %d = %v outside (0, %v]", i, d, p.MaxBackoff)
		}
	}
}
